(* Graceful degradation under circuit-level defects: the testing track of
   the NANOxCOMP project (paper reference [1]) applied to this
   repository's lattices, end to end.

   1. Run the full fault campaign on a lattice: every stuck-open,
      stuck-short, bridge, broken-terminal and gate-leak defect is
      injected at transistor level, DC-simulated over all input states,
      and classified functional / degraded / faulty / non-convergent.
   2. Cross-check which logical test vectors catch each circuit defect.
   3. For a detected structural defect, remap the function around the
      pinned site (Exhaustive.find_with_pins, widening by a spare column
      when the minimal fabric has no slack) and re-verify the repaired
      lattice at circuit level with the defect still present.

   Run with: dune exec examples/defect_tolerance.exe *)

module Fc = Lattice_flow.Fault_campaign
module Defects = Lattice_spice.Defects
module Faults = Lattice_synthesis.Faults
module Grid = Lattice_core.Grid

let () =
  let maj3 = Lattice_boolfn.Truthtable.majority_n 3 in
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let names = Lattice_boolfn.Sop.alpha_names in
  Printf.printf "majority-3 on the minimal 2x3 lattice:\n%s\n\n" (Grid.to_string ~names grid);

  (* 1. the campaign: the whole single-defect universe, all five defect
     families, one spare column available for repair *)
  let report = Fc.run grid ~target:maj3 in
  Printf.printf "campaign: %d single-defect samples (14 per site)\n"
    (Array.length report.Fc.samples);
  Printf.printf "  functional      %3d  (defect present but masked)\n"
    report.Fc.counts.Fc.functional;
  Printf.printf "  degraded        %3d  (correct logic, weak margins)\n"
    report.Fc.counts.Fc.degraded;
  Printf.printf "  faulty          %3d  (wrong boolean output)\n" report.Fc.counts.Fc.faulty;
  Printf.printf "  non-convergent  %3d  (simulation failed, diagnostics kept)\n"
    report.Fc.counts.Fc.non_convergent;
  Array.iter
    (fun (s : Fc.sample) ->
      match s.Fc.failure with
      | None -> ()
      | Some f ->
        Printf.printf "  ! %s: %s\n"
          (String.concat " + " (List.map Defects.name s.Fc.defects))
          (Lattice_spice.Dcop.pp_failure f))
    report.Fc.samples;
  print_newline ();

  (* 2. detection: the logical test set vs the circuit-level outcomes *)
  Printf.printf "logical test set (%d vectors):\n" (List.length report.Fc.test_set);
  List.iter
    (fun m ->
      Printf.printf "  a=%d b=%d c=%d\n" (m land 1) ((m lsr 1) land 1) ((m lsr 2) land 1))
    report.Fc.test_set;
  Printf.printf "detected %d/%d samples at circuit level; %d silent\n\n" report.Fc.detected
    (Array.length report.Fc.samples) report.Fc.silent;

  (* 3. repair: every detected stuck defect remapped and re-verified *)
  Printf.printf "repairs (remap around the pinned defect, then re-simulate with it):\n";
  List.iter
    (fun (r : Fc.repair) ->
      match r.Fc.remapped with
      | None -> Printf.printf "  %s: no remapping found\n" (Defects.name r.Fc.defect)
      | Some g ->
        Printf.printf "  %s -> %dx%d fabric (%s), circuit re-verification %s\n%s\n"
          (Defects.name r.Fc.defect) g.Grid.rows g.Grid.cols
          (if r.Fc.spare_cols_used = 0 then "same size"
           else Printf.sprintf "+%d spare col" r.Fc.spare_cols_used)
          (if r.Fc.reverified then "PASS" else "FAIL")
          (Grid.to_string ~names g))
    report.Fc.repairs;

  (* the acceptance bar: at least one stuck-open defect detected, remapped
     and re-verified at transistor level *)
  let repaired_open =
    List.exists
      (fun (r : Fc.repair) ->
        r.Fc.defect.Defects.kind = Defects.Stuck_open
        && r.Fc.remapped <> None && r.Fc.reverified)
      report.Fc.repairs
  in
  Printf.printf "\nstuck-open defect detected, remapped and re-verified: %s\n"
    (if repaired_open then "PASS" else "FAIL");
  if not repaired_open then exit 1
