* four-terminal switching lattice for a^b^c
.MODEL NMOD1 NMOS (LEVEL=1 KP=17.7u VTO=155m LAMBDA=50m)
VVDD vdd 0 DC 1.2
RRpull vdd out 500k
CCout out 0 1e-14
VVin0 in_0 0 PULSE(0 1.2 0.1u 2e-21t 2e-21t 97.99999999999999n 0.2u)
VVin0_bar in_0_bar 0 PULSE(1.2 0 0.1u 2e-21t 2e-21t 97.99999999999999n 0.2u)
VVin1 in_1 0 PULSE(0 1.2 0.2u 2e-21t 2e-21t 198n 0.4u)
VVin1_bar in_1_bar 0 PULSE(1.2 0 0.2u 2e-21t 2e-21t 198n 0.4u)
VVin2 in_2 0 PULSE(0 1.2 0.4u 2e-21t 2e-21t 0.398u 0.8u)
VVin2_bar in_2_bar 0 PULSE(1.2 0 0.4u 2e-21t 2e-21t 0.398u 0.8u)
Mpd.X_0_0.MA_ne out in_0 pd.v_0_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_0.MA_es pd.v_0_1 in_0 pd.h_1_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_0.MA_sw pd.h_1_0 in_0 pd.v_0_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_0.MA_wn pd.v_0_0 in_0 out 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_0.MB_ns out in_0 pd.h_1_0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_0_0.MB_ew pd.v_0_1 in_0 pd.v_0_0 0 NMOD1 W=0.7u L=0.5u
Cpd.X_0_0.Cn out 0 1f
Cpd.X_0_0.Ce pd.v_0_1 0 1f
Cpd.X_0_0.Cs pd.h_1_0 0 1f
Cpd.X_0_0.Cw pd.v_0_0 0 1f
Mpd.X_0_1.MA_ne out in_2_bar pd.v_0_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_1.MA_es pd.v_0_2 in_2_bar pd.h_1_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_1.MA_sw pd.h_1_1 in_2_bar pd.v_0_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_1.MA_wn pd.v_0_1 in_2_bar out 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_1.MB_ns out in_2_bar pd.h_1_1 0 NMOD1 W=0.7u L=0.5u
Mpd.X_0_1.MB_ew pd.v_0_2 in_2_bar pd.v_0_1 0 NMOD1 W=0.7u L=0.5u
Cpd.X_0_1.Cn out 0 1f
Cpd.X_0_1.Ce pd.v_0_2 0 1f
Cpd.X_0_1.Cs pd.h_1_1 0 1f
Cpd.X_0_1.Cw pd.v_0_1 0 1f
Mpd.X_0_2.MA_ne out in_1_bar pd.v_0_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_2.MA_es pd.v_0_3 in_1_bar pd.h_1_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_2.MA_sw pd.h_1_2 in_1_bar pd.v_0_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_2.MA_wn pd.v_0_2 in_1_bar out 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_2.MB_ns out in_1_bar pd.h_1_2 0 NMOD1 W=0.7u L=0.5u
Mpd.X_0_2.MB_ew pd.v_0_3 in_1_bar pd.v_0_2 0 NMOD1 W=0.7u L=0.5u
Cpd.X_0_2.Cn out 0 1f
Cpd.X_0_2.Ce pd.v_0_3 0 1f
Cpd.X_0_2.Cs pd.h_1_2 0 1f
Cpd.X_0_2.Cw pd.v_0_2 0 1f
Mpd.X_0_3.MA_ne out in_0 pd.v_0_4 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_3.MA_es pd.v_0_4 in_0 pd.h_1_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_3.MA_sw pd.h_1_3 in_0 pd.v_0_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_3.MA_wn pd.v_0_3 in_0 out 0 NMOD1 W=0.7u L=0.35u
Mpd.X_0_3.MB_ns out in_0 pd.h_1_3 0 NMOD1 W=0.7u L=0.5u
Mpd.X_0_3.MB_ew pd.v_0_4 in_0 pd.v_0_3 0 NMOD1 W=0.7u L=0.5u
Cpd.X_0_3.Cn out 0 1f
Cpd.X_0_3.Ce pd.v_0_4 0 1f
Cpd.X_0_3.Cs pd.h_1_3 0 1f
Cpd.X_0_3.Cw pd.v_0_3 0 1f
Mpd.X_1_0.MA_ne pd.h_1_0 in_2_bar pd.v_1_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_0.MA_es pd.v_1_1 in_2_bar pd.h_2_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_0.MA_sw pd.h_2_0 in_2_bar pd.v_1_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_0.MA_wn pd.v_1_0 in_2_bar pd.h_1_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_0.MB_ns pd.h_1_0 in_2_bar pd.h_2_0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_1_0.MB_ew pd.v_1_1 in_2_bar pd.v_1_0 0 NMOD1 W=0.7u L=0.5u
Cpd.X_1_0.Cn pd.h_1_0 0 1f
Cpd.X_1_0.Ce pd.v_1_1 0 1f
Cpd.X_1_0.Cs pd.h_2_0 0 1f
Cpd.X_1_0.Cw pd.v_1_0 0 1f
Mpd.X_1_1.MA_ne pd.h_1_1 in_1 pd.v_1_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_1.MA_es pd.v_1_2 in_1 pd.h_2_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_1.MA_sw pd.h_2_1 in_1 pd.v_1_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_1.MA_wn pd.v_1_1 in_1 pd.h_1_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_1.MB_ns pd.h_1_1 in_1 pd.h_2_1 0 NMOD1 W=0.7u L=0.5u
Mpd.X_1_1.MB_ew pd.v_1_2 in_1 pd.v_1_1 0 NMOD1 W=0.7u L=0.5u
Cpd.X_1_1.Cn pd.h_1_1 0 1f
Cpd.X_1_1.Ce pd.v_1_2 0 1f
Cpd.X_1_1.Cs pd.h_2_1 0 1f
Cpd.X_1_1.Cw pd.v_1_1 0 1f
Mpd.X_1_2.MA_ne pd.h_1_2 in_0_bar pd.v_1_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_2.MA_es pd.v_1_3 in_0_bar pd.h_2_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_2.MA_sw pd.h_2_2 in_0_bar pd.v_1_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_2.MA_wn pd.v_1_2 in_0_bar pd.h_1_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_2.MB_ns pd.h_1_2 in_0_bar pd.h_2_2 0 NMOD1 W=0.7u L=0.5u
Mpd.X_1_2.MB_ew pd.v_1_3 in_0_bar pd.v_1_2 0 NMOD1 W=0.7u L=0.5u
Cpd.X_1_2.Cn pd.h_1_2 0 1f
Cpd.X_1_2.Ce pd.v_1_3 0 1f
Cpd.X_1_2.Cs pd.h_2_2 0 1f
Cpd.X_1_2.Cw pd.v_1_2 0 1f
Mpd.X_1_3.MA_ne pd.h_1_3 in_1 pd.v_1_4 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_3.MA_es pd.v_1_4 in_1 pd.h_2_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_3.MA_sw pd.h_2_3 in_1 pd.v_1_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_3.MA_wn pd.v_1_3 in_1 pd.h_1_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_1_3.MB_ns pd.h_1_3 in_1 pd.h_2_3 0 NMOD1 W=0.7u L=0.5u
Mpd.X_1_3.MB_ew pd.v_1_4 in_1 pd.v_1_3 0 NMOD1 W=0.7u L=0.5u
Cpd.X_1_3.Cn pd.h_1_3 0 1f
Cpd.X_1_3.Ce pd.v_1_4 0 1f
Cpd.X_1_3.Cs pd.h_2_3 0 1f
Cpd.X_1_3.Cw pd.v_1_3 0 1f
Mpd.X_2_0.MA_ne pd.h_2_0 in_1_bar pd.v_2_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_0.MA_es pd.v_2_1 in_1_bar pd.h_3_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_0.MA_sw pd.h_3_0 in_1_bar pd.v_2_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_0.MA_wn pd.v_2_0 in_1_bar pd.h_2_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_0.MB_ns pd.h_2_0 in_1_bar pd.h_3_0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_2_0.MB_ew pd.v_2_1 in_1_bar pd.v_2_0 0 NMOD1 W=0.7u L=0.5u
Cpd.X_2_0.Cn pd.h_2_0 0 1f
Cpd.X_2_0.Ce pd.v_2_1 0 1f
Cpd.X_2_0.Cs pd.h_3_0 0 1f
Cpd.X_2_0.Cw pd.v_2_0 0 1f
Mpd.X_2_1.MA_ne pd.h_2_1 in_0_bar pd.v_2_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_1.MA_es pd.v_2_2 in_0_bar pd.h_3_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_1.MA_sw pd.h_3_1 in_0_bar pd.v_2_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_1.MA_wn pd.v_2_1 in_0_bar pd.h_2_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_1.MB_ns pd.h_2_1 in_0_bar pd.h_3_1 0 NMOD1 W=0.7u L=0.5u
Mpd.X_2_1.MB_ew pd.v_2_2 in_0_bar pd.v_2_1 0 NMOD1 W=0.7u L=0.5u
Cpd.X_2_1.Cn pd.h_2_1 0 1f
Cpd.X_2_1.Ce pd.v_2_2 0 1f
Cpd.X_2_1.Cs pd.h_3_1 0 1f
Cpd.X_2_1.Cw pd.v_2_1 0 1f
Mpd.X_2_2.MA_ne pd.h_2_2 in_2 pd.v_2_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_2.MA_es pd.v_2_3 in_2 pd.h_3_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_2.MA_sw pd.h_3_2 in_2 pd.v_2_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_2.MA_wn pd.v_2_2 in_2 pd.h_2_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_2.MB_ns pd.h_2_2 in_2 pd.h_3_2 0 NMOD1 W=0.7u L=0.5u
Mpd.X_2_2.MB_ew pd.v_2_3 in_2 pd.v_2_2 0 NMOD1 W=0.7u L=0.5u
Cpd.X_2_2.Cn pd.h_2_2 0 1f
Cpd.X_2_2.Ce pd.v_2_3 0 1f
Cpd.X_2_2.Cs pd.h_3_2 0 1f
Cpd.X_2_2.Cw pd.v_2_2 0 1f
Mpd.X_2_3.MA_ne pd.h_2_3 in_2 pd.v_2_4 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_3.MA_es pd.v_2_4 in_2 pd.h_3_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_3.MA_sw pd.h_3_3 in_2 pd.v_2_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_3.MA_wn pd.v_2_3 in_2 pd.h_2_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_2_3.MB_ns pd.h_2_3 in_2 pd.h_3_3 0 NMOD1 W=0.7u L=0.5u
Mpd.X_2_3.MB_ew pd.v_2_4 in_2 pd.v_2_3 0 NMOD1 W=0.7u L=0.5u
Cpd.X_2_3.Cn pd.h_2_3 0 1f
Cpd.X_2_3.Ce pd.v_2_4 0 1f
Cpd.X_2_3.Cs pd.h_3_3 0 1f
Cpd.X_2_3.Cw pd.v_2_3 0 1f
Mpd.X_3_0.MA_ne pd.h_3_0 in_0 pd.v_3_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_0.MA_es pd.v_3_1 in_0 0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_0.MA_sw 0 in_0 pd.v_3_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_0.MA_wn pd.v_3_0 in_0 pd.h_3_0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_0.MB_ns pd.h_3_0 in_0 0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_3_0.MB_ew pd.v_3_1 in_0 pd.v_3_0 0 NMOD1 W=0.7u L=0.5u
Cpd.X_3_0.Cn pd.h_3_0 0 1f
Cpd.X_3_0.Ce pd.v_3_1 0 1f
Cpd.X_3_0.Cs 0 0 1f
Cpd.X_3_0.Cw pd.v_3_0 0 1f
Mpd.X_3_1.MA_ne pd.h_3_1 in_1 pd.v_3_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_1.MA_es pd.v_3_2 in_1 0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_1.MA_sw 0 in_1 pd.v_3_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_1.MA_wn pd.v_3_1 in_1 pd.h_3_1 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_1.MB_ns pd.h_3_1 in_1 0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_3_1.MB_ew pd.v_3_2 in_1 pd.v_3_1 0 NMOD1 W=0.7u L=0.5u
Cpd.X_3_1.Cn pd.h_3_1 0 1f
Cpd.X_3_1.Ce pd.v_3_2 0 1f
Cpd.X_3_1.Cs 0 0 1f
Cpd.X_3_1.Cw pd.v_3_1 0 1f
Mpd.X_3_2.MA_ne pd.h_3_2 in_2 pd.v_3_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_2.MA_es pd.v_3_3 in_2 0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_2.MA_sw 0 in_2 pd.v_3_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_2.MA_wn pd.v_3_2 in_2 pd.h_3_2 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_2.MB_ns pd.h_3_2 in_2 0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_3_2.MB_ew pd.v_3_3 in_2 pd.v_3_2 0 NMOD1 W=0.7u L=0.5u
Cpd.X_3_2.Cn pd.h_3_2 0 1f
Cpd.X_3_2.Ce pd.v_3_3 0 1f
Cpd.X_3_2.Cs 0 0 1f
Cpd.X_3_2.Cw pd.v_3_2 0 1f
Mpd.X_3_3.MA_ne pd.h_3_3 in_0 pd.v_3_4 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_3.MA_es pd.v_3_4 in_0 0 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_3.MA_sw 0 in_0 pd.v_3_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_3.MA_wn pd.v_3_3 in_0 pd.h_3_3 0 NMOD1 W=0.7u L=0.35u
Mpd.X_3_3.MB_ns pd.h_3_3 in_0 0 0 NMOD1 W=0.7u L=0.5u
Mpd.X_3_3.MB_ew pd.v_3_4 in_0 pd.v_3_3 0 NMOD1 W=0.7u L=0.5u
Cpd.X_3_3.Cn pd.h_3_3 0 1f
Cpd.X_3_3.Ce pd.v_3_4 0 1f
Cpd.X_3_3.Cs 0 0 1f
Cpd.X_3_3.Cw pd.v_3_3 0 1f
.OP
.TRAN 5n 0.8u
.PRINT v(out)
.END
