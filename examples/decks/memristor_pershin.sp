* pershin-di ventra threshold memristor (solid-state memcapacitive
* switch, PRB 78 113309) -- NOT supported by this simulator.
* `ftl run` rejects this deck with a pointed line:col error instead of
* silently dropping the element; kept as the error-path showcase.
.model memr memristor (ron=100 roff=16k vt=4.6 alpha=0 beta=62.5meg)
vdrive in 0 sin(0 2.5 50)
ym1 in out memr
rload out 0 1k
.tran 0.1m 40m
.print tran v(out)
.end
