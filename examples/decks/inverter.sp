* nmos inverter with resistive load
* cards are case-insensitive; engineering suffixes use spice rules
* (155m = 0.155, 17.7u = 17.7e-6, 500k = 5e5, 10f = 1e-14)
.model mn nmos (level=1 kp=17.7u vto=155m
+ lambda=0.05)          $ continuation line, inline comment
vdd vdd 0 dc 1.2
vin in 0 dc 0
rload vdd out 500k      ; pull-up
m1 out in 0 0 mn w=0.7u l=0.35u
cout out 0 10f
.op
.dc vin 0 1.2 0.1
.print dc v(out) v(in)
.end
