* three-stage rc ladder, built from a parameterized subcircuit
.subckt stage in out r=1k c=1n
rs in out {r}
cs out 0 {c}
.ends
vin src 0 dc 1 ac 1
x1 src n1 stage
x2 n1 n2 stage r=2k
x3 n2 out stage c=2n
.op
.ac dec 10 1 1meg
.print ac v(out)
.end
