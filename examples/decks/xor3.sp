* xor3 as a discrete sum-of-products pull-down network
* f = a'b'c + a'bc' + ab'c' + abc; out is pulled LOW when f = 1
* (compare examples/decks/lattice_4x4.sp: the same function as a
*  synthesized four-terminal switching lattice)
.model mn nmos (level=1 kp=17.7u vto=155m lambda=0.05)
vdd vdd 0 dc 1.2
* true and complemented input rails for the state a=1 b=0 c=0 -> f=1
va  a  0 dc 1.2
vb  b  0 dc 0
vc  c  0 dc 0
van an 0 dc 0
vbn bn 0 dc 1.2
vcn cn 0 dc 1.2
rpull vdd out 500k
* branch 1: a'b'c
m11 out an  n11 0 mn w=0.7u l=0.35u
m12 n11 bn  n12 0 mn w=0.7u l=0.35u
m13 n12 c   0   0 mn w=0.7u l=0.35u
* branch 2: a'bc'
m21 out an  n21 0 mn w=0.7u l=0.35u
m22 n21 b   n22 0 mn w=0.7u l=0.35u
m23 n22 cn  0   0 mn w=0.7u l=0.35u
* branch 3: ab'c'
m31 out a   n31 0 mn w=0.7u l=0.35u
m32 n31 bn  n32 0 mn w=0.7u l=0.35u
m33 n32 cn  0   0 mn w=0.7u l=0.35u
* branch 4: abc
m41 out a   n41 0 mn w=0.7u l=0.35u
m42 n41 b   n42 0 mn w=0.7u l=0.35u
m43 n42 c   0   0 mn w=0.7u l=0.35u
.op
* sweeping a with b=0, c=0 walks f from 0 to 1: out swings high -> low
.dc va 0 1.2 0.2
.print v(out)
.end
