(* Deck interop tour: parse every deck in examples/decks/, prove the
   emit/parse roundtrip is a fixed point, and run each one's analyses
   through the shared batch engine.

   The memristor deck is the deliberate failure: `Deck.parse` rejects it
   with a line:col error instead of silently dropping the unsupported
   element — exactly what `ftl run` and the daemon's `run_deck` request
   report to their callers. *)

module Deck = Lattice_deck.Deck
module Runner = Lattice_deck.Runner

let deck_dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "examples/decks"

let () =
  let files =
    Sys.readdir deck_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sp")
    |> List.sort compare
  in
  let engine = Lattice_engine.Engine.create () in
  List.iter
    (fun file ->
      let path = Filename.concat deck_dir file in
      Printf.printf "=== %s ===\n" file;
      let src = In_channel.with_open_bin path In_channel.input_all in
      match Deck.parse src with
      | Error e -> Printf.printf "rejected: %s\n\n" (Deck.error_to_string ~file e)
      | Ok deck -> (
        (* canonical form must be a fixed point of parse/emit *)
        let once = Deck.emit deck in
        (match Deck.parse once with
        | Error e -> failwith ("canonical form failed to reparse: " ^ Deck.error_to_string e)
        | Ok deck2 ->
          assert (Deck.emit deck2 = once);
          assert (
            Lattice_spice.Netlist.structural_digest deck.Deck.netlist
            = Lattice_spice.Netlist.structural_digest deck2.Deck.netlist));
        Printf.printf "roundtrip: stable (%d bytes canonical)\n" (String.length once);
        match Runner.run ~engine ~smoke:true deck with
        | Ok r -> print_string (Runner.render r); print_newline ()
        | Error msg -> Printf.printf "analysis failed: %s\n\n" msg))
    files;
  print_endline (Lattice_engine.Engine.summary engine)
