(** Bounded on-disk telemetry sinks.

    Two disciplines, one invariant: telemetry output is capped by
    size/count with oldest-first eviction, and filesystem failures are
    reported (or swallowed), never raised — a full disk must not take a
    request down.

    {2 Spool directory}

    Flight-recorder dumps land in a spool dir ([FTL_FLIGHT_DIR]) as
    self-describing timestamped files; after each write the oldest
    files are evicted until the dir is back under both caps. *)

val write :
  dir:string ->
  ?prefix:string ->
  ?max_files:int ->
  ?max_bytes:int ->
  string ->
  (string, string) result
(** [write ~dir content] creates the dir if needed, writes [content] to
    a fresh [prefix-<ms>-<pid>-<seq>.jsonl] file (names sort
    chronologically), prunes oldest-first to [max_files] files /
    [max_bytes] total, and returns the path written. Defaults: 64 files,
    16 MiB. *)

(** {2 Rotating line log}

    Append-oriented JSONL log (the daemon access log): when the live
    file would exceed [max_bytes] it is renamed to [.1], prior
    generations shift up, and the one past [keep] is deleted. *)

type log

val open_log : path:string -> ?max_bytes:int -> ?keep:int -> unit -> log
(** Defaults: 8 MiB per generation, 2 rotated generations kept. *)

val line : log -> string -> unit
(** Append one line (newline added), rotating first if it would
    overflow the cap. Thread-safe; errors are swallowed. *)

val close_log : log -> unit
