let now_ns () = Int64.to_int (Monotonic_clock.now ())

let ns_to_s ns = float_of_int ns *. 1e-9
