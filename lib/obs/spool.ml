(* Bounded on-disk telemetry sinks: a spool directory for flight-
   recorder dumps and a rotating appender for the JSONL access log.
   Both enforce size/count caps with oldest-first eviction so a
   long-lived daemon cannot fill the disk, and both swallow filesystem
   errors — telemetry must never take a request down with it. *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let file_size path = try (Unix.stat path).Unix.st_size with _ -> 0

(* --- spool directory ---------------------------------------------------- *)

(* Sequence number folded into filenames so two dumps in the same
   millisecond (or two daemons sharing a dir, via the pid) never
   collide; names sort chronologically. *)
let seq = Atomic.make 0

let spool_entries ~dir ~prefix =
  match Sys.readdir dir with
  | exception _ -> [||]
  | names ->
    let keep n = String.length n >= String.length prefix && String.sub n 0 (String.length prefix) = prefix in
    let names = Array.of_list (List.filter keep (Array.to_list names)) in
    Array.sort String.compare names;
    names

let prune_spool ~dir ~prefix ~max_files ~max_bytes =
  let names = spool_entries ~dir ~prefix in
  let sizes = Array.map (fun n -> file_size (Filename.concat dir n)) names in
  let total = ref (Array.fold_left ( + ) 0 sizes) in
  let count = ref (Array.length names) in
  let i = ref 0 in
  (* oldest first: names embed a ms timestamp + sequence number *)
  while !i < Array.length names && (!count > max_files || !total > max_bytes) do
    (try Sys.remove (Filename.concat dir names.(!i)) with _ -> ());
    total := !total - sizes.(!i);
    decr count;
    incr i
  done

let write ~dir ?(prefix = "flight") ?(max_files = 64) ?(max_bytes = 16 * 1024 * 1024) content =
  try
    mkdir_p dir;
    let name =
      Printf.sprintf "%s-%013.0f-%06d-%05d.jsonl" prefix
        (Unix.gettimeofday () *. 1e3)
        (Unix.getpid ())
        (Atomic.fetch_and_add seq 1)
    in
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    prune_spool ~dir ~prefix ~max_files ~max_bytes;
    Ok path
  with e -> Error (Printexc.to_string e)

(* --- rotating line log -------------------------------------------------- *)

type log = {
  path : string;
  max_bytes : int;
  keep : int;  (* rotated generations kept: path.1 .. path.keep *)
  lock : Mutex.t;
  mutable oc : out_channel option;
  mutable size : int;
}

let open_log ~path ?(max_bytes = 8 * 1024 * 1024) ?(keep = 2) () =
  mkdir_p (Filename.dirname path);
  { path; max_bytes; keep; lock = Mutex.create (); oc = None; size = file_size path }

let rotated log i = Printf.sprintf "%s.%d" log.path i

let close_channel log =
  match log.oc with
  | None -> ()
  | Some oc ->
    (try close_out oc with _ -> ());
    log.oc <- None

let rotate log =
  close_channel log;
  (try Sys.remove (rotated log log.keep) with _ -> ());
  for i = log.keep - 1 downto 1 do
    try Sys.rename (rotated log i) (rotated log (i + 1)) with _ -> ()
  done;
  (try Sys.rename log.path (rotated log 1) with _ -> ());
  log.size <- 0

let line log s =
  Mutex.lock log.lock;
  (try
     if log.size + String.length s + 1 > log.max_bytes && log.size > 0 then rotate log;
     let oc =
       match log.oc with
       | Some oc -> oc
       | None ->
         let oc = open_out_gen [ Open_append; Open_creat ] 0o644 log.path in
         log.oc <- Some oc;
         oc
     in
     output_string oc s;
     output_char oc '\n';
     flush oc;
     log.size <- log.size + String.length s + 1
   with _ -> ());
  Mutex.unlock log.lock

let close_log log =
  Mutex.lock log.lock;
  close_channel log;
  Mutex.unlock log.lock
