type kind = Span | Instant

type event = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  tid : int;
  ts_ns : int;
  mutable dur_ns : int;
  args : (string * string) list;
  kind : kind;
}

let enabled =
  let from_env =
    match Sys.getenv_opt "FTL_TRACE" with
    | Some s when String.trim s <> "" && String.trim s <> "0" -> true
    | Some _ | None -> false
  in
  Atomic.make from_env

let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

(* All timestamps are relative to this process-wide epoch so exported
   traces start near t = 0. *)
let epoch = Clock.now_ns ()
let next_id = Atomic.make 0

type buf = {
  dom : int;
  mutable events : event array;
  mutable len : int;
  mutable stack : event list; (* open spans, innermost first *)
}

let dummy =
  { id = -1; parent = -1; name = ""; cat = ""; tid = 0; ts_ns = 0; dur_ns = 0; args = []; kind = Instant }

(* Buffers of every domain that ever recorded, for {!events}/{!reset}.
   Registration happens once per domain (DLS init), so the mutex is
   never on a hot path. *)
let registry : buf list ref = ref []
let registry_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); events = Array.make 256 dummy; len = 0; stack = [] }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buf () = Domain.DLS.get dls_key

let push b e =
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) dummy in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- e;
  b.len <- b.len + 1

type token = int

let null = -1

let begin_span ?(cat = "") ?(args = []) name =
  if not (on ()) then null
  else begin
    let b = buf () in
    let parent = match b.stack with [] -> -1 | p :: _ -> p.id in
    let e =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        cat;
        tid = b.dom;
        ts_ns = Clock.now_ns () - epoch;
        dur_ns = -1;
        args;
        kind = Span;
      }
    in
    push b e;
    b.stack <- e :: b.stack;
    e.id
  end

let end_span tok =
  if tok <> null then begin
    let b = buf () in
    let t1 = Clock.now_ns () - epoch in
    (* pop to the matching span, closing anything an exception left open *)
    let rec pop = function
      | [] -> []
      | e :: rest ->
        e.dur_ns <- t1 - e.ts_ns;
        if e.id = tok then rest else pop rest
    in
    b.stack <- pop b.stack
  end

let with_span ?cat ?args name f =
  if not (on ()) then f ()
  else begin
    let tok = begin_span ?cat ?args name in
    Fun.protect ~finally:(fun () -> end_span tok) f
  end

let complete ?(cat = "") ?(args = []) ~name ~t0_ns ~t1_ns () =
  if on () then begin
    let b = buf () in
    let parent = match b.stack with [] -> -1 | p :: _ -> p.id in
    push b
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        cat;
        tid = b.dom;
        ts_ns = t0_ns - epoch;
        dur_ns = t1_ns - t0_ns;
        args;
        kind = Span;
      }
  end

let instant ?(cat = "") ?(args = []) name =
  if on () then begin
    let b = buf () in
    let parent = match b.stack with [] -> -1 | p :: _ -> p.id in
    push b
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        cat;
        tid = b.dom;
        ts_ns = Clock.now_ns () - epoch;
        dur_ns = 0;
        args;
        kind = Instant;
      }
  end

let events () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  let out = ref [] in
  List.iter
    (fun b ->
      for i = b.len - 1 downto 0 do
        out := b.events.(i) :: !out
      done)
    bufs;
  List.sort
    (fun a b -> match Int.compare a.ts_ns b.ts_ns with 0 -> Int.compare a.id b.id | c -> c)
    !out

let reset () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun b ->
      Array.fill b.events 0 b.len dummy;
      b.len <- 0;
      b.stack <- [])
    bufs
