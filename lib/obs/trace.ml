type kind = Span | Instant

type event = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  tid : int;
  ts_ns : int;
  mutable dur_ns : int;
  args : (string * string) list;
  kind : kind;
}

let enabled =
  let from_env =
    match Sys.getenv_opt "FTL_TRACE" with
    | Some s when String.trim s <> "" && String.trim s <> "0" -> true
    | Some _ | None -> false
  in
  Atomic.make from_env

let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

(* All timestamps are relative to this process-wide epoch so exported
   traces start near t = 0. *)
let epoch = Clock.now_ns ()
let next_id = Atomic.make 0

type buf = {
  dom : int;
  mutable events : event array;
  mutable len : int;
  mutable stack : event list; (* open spans, innermost first *)
}

let dummy =
  { id = -1; parent = -1; name = ""; cat = ""; tid = 0; ts_ns = 0; dur_ns = 0; args = []; kind = Instant }

(* Buffers of every domain that ever recorded, for {!events}/{!reset}.
   Registration happens once per domain (DLS init), so the mutex is
   never on a hot path. *)
let registry : buf list ref = ref []
let registry_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); events = Array.make 256 dummy; len = 0; stack = [] }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buf () = Domain.DLS.get dls_key

(* --- ambient request context -------------------------------------------- *)

type remote_context = {
  trace_id : string option;
  parent_span : string option;
  req_id : string option;
  ctx_dc_solves : int Atomic.t;
  ctx_cache_hits : int Atomic.t;
  ctx_retries : int Atomic.t;
}

let make_context ?trace_id ?parent_span ?req_id () =
  {
    trace_id;
    parent_span;
    req_id;
    ctx_dc_solves = Atomic.make 0;
    ctx_cache_hits = Atomic.make 0;
    ctx_retries = Atomic.make 0;
  }

(* Keyed by (domain, systhread): the serve workers are threads sharing
   domain 0, pool workers are the first thread of a spawned domain.
   Lookups happen per span only while tracing is on, and per
   request-level flight-recorder record otherwise — never in solver
   inner loops. *)
let ctx_table : (int * int, remote_context) Hashtbl.t = Hashtbl.create 16
let ctx_lock = Mutex.create ()
let ctx_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current_context () =
  Mutex.lock ctx_lock;
  let c = Hashtbl.find_opt ctx_table (ctx_key ()) in
  Mutex.unlock ctx_lock;
  c

let set_context key v =
  Mutex.lock ctx_lock;
  (match v with
  | None -> Hashtbl.remove ctx_table key
  | Some c -> Hashtbl.replace ctx_table key c);
  Mutex.unlock ctx_lock

let with_remote_context ctx f =
  let key = ctx_key () in
  Mutex.lock ctx_lock;
  let prev = Hashtbl.find_opt ctx_table key in
  Hashtbl.replace ctx_table key ctx;
  Mutex.unlock ctx_lock;
  Fun.protect ~finally:(fun () -> set_context key prev) f

let with_context_opt ctx f =
  match ctx with None -> f () | Some ctx -> with_remote_context ctx f

let attribute_dc_solve () =
  match current_context () with
  | None -> ()
  | Some c -> Atomic.incr c.ctx_dc_solves

let attribute_cache_hit () =
  match current_context () with
  | None -> ()
  | Some c -> Atomic.incr c.ctx_cache_hits

let attribute_retries n =
  match current_context () with
  | None -> ()
  | Some c -> ignore (Atomic.fetch_and_add c.ctx_retries n)

let context_dc_solves c = Atomic.get c.ctx_dc_solves
let context_cache_hits c = Atomic.get c.ctx_cache_hits
let context_retries c = Atomic.get c.ctx_retries

(* request ids are stamped into every span recorded under a context *)
let ctx_args args =
  match current_context () with
  | None -> args
  | Some c ->
    let args = match c.req_id with None -> args | Some r -> ("req_id", r) :: args in
    let args =
      match c.parent_span with None -> args | Some p -> ("parent_span", p) :: args
    in
    (match c.trace_id with None -> args | Some tid -> ("trace_id", tid) :: args)

let push b e =
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) dummy in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- e;
  b.len <- b.len + 1

type token = int

let null = -1

(* Spans are created when either sink wants them: the opt-in trace
   buffers ([on ()]) or the always-on flight recorder ([Ring.on ()]).
   Buffer pushes stay gated on [on ()] so {!events} is unchanged when
   tracing is off; the ring is fed at close time, when the duration is
   known. *)
let recording () = on () || Ring.on ()

let ring_record e =
  if Ring.on () then
    Ring.record
      { Ring.name = e.name; cat = e.cat; dom = e.tid; ts_ns = e.ts_ns; dur_ns = e.dur_ns; args = e.args }

let begin_span ?(cat = "") ?(args = []) name =
  if not (recording ()) then null
  else begin
    let b = buf () in
    let parent = match b.stack with [] -> -1 | p :: _ -> p.id in
    let e =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        cat;
        tid = b.dom;
        ts_ns = Clock.now_ns () - epoch;
        dur_ns = -1;
        args = ctx_args args;
        kind = Span;
      }
    in
    if on () then push b e;
    b.stack <- e :: b.stack;
    e.id
  end

let end_span tok =
  if tok <> null then begin
    let b = buf () in
    let t1 = Clock.now_ns () - epoch in
    (* pop to the matching span, closing anything an exception left open *)
    let rec pop = function
      | [] -> []
      | e :: rest ->
        e.dur_ns <- t1 - e.ts_ns;
        ring_record e;
        if e.id = tok then rest else pop rest
    in
    b.stack <- pop b.stack
  end

let with_span ?cat ?args name f =
  if not (recording ()) then f ()
  else begin
    let tok = begin_span ?cat ?args name in
    Fun.protect ~finally:(fun () -> end_span tok) f
  end

let complete ?(cat = "") ?(args = []) ~name ~t0_ns ~t1_ns () =
  if recording () then begin
    let b = buf () in
    let parent = match b.stack with [] -> -1 | p :: _ -> p.id in
    let e =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        cat;
        tid = b.dom;
        ts_ns = t0_ns - epoch;
        dur_ns = t1_ns - t0_ns;
        args = ctx_args args;
        kind = Span;
      }
    in
    if on () then push b e;
    ring_record e
  end

let instant ?(cat = "") ?(args = []) name =
  if on () then begin
    let b = buf () in
    let parent = match b.stack with [] -> -1 | p :: _ -> p.id in
    push b
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        name;
        cat;
        tid = b.dom;
        ts_ns = Clock.now_ns () - epoch;
        dur_ns = 0;
        args = ctx_args args;
        kind = Instant;
      }
  end

let events () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  let out = ref [] in
  List.iter
    (fun b ->
      for i = b.len - 1 downto 0 do
        out := b.events.(i) :: !out
      done)
    bufs;
  List.sort
    (fun a b -> match Int.compare a.ts_ns b.ts_ns with 0 -> Int.compare a.id b.id | c -> c)
    !out

let reset () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun b ->
      Array.fill b.events 0 b.len dummy;
      b.len <- 0;
      b.stack <- [])
    bufs
