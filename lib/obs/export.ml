let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args_object b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_char b '}'

(* Chrome wants microsecond floats; ns / 1e3 keeps sub-us precision. *)
let us ns = float_of_int ns /. 1e3

let chrome_json () =
  let evs = Trace.events () in
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let tids = Hashtbl.create 8 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n"
  in
  List.iter
    (fun (e : Trace.event) ->
      if not (Hashtbl.mem tids e.Trace.tid) then begin
        Hashtbl.replace tids e.Trace.tid ();
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
             e.Trace.tid e.Trace.tid)
      end;
      sep ();
      (match e.Trace.kind with
      | Trace.Span ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":"
             (json_escape e.Trace.name)
             (json_escape (if e.Trace.cat = "" then "default" else e.Trace.cat))
             (us e.Trace.ts_ns)
             (us (Int.max 0 e.Trace.dur_ns))
             e.Trace.tid)
      | Trace.Instant ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":"
             (json_escape e.Trace.name)
             (json_escape (if e.Trace.cat = "" then "default" else e.Trace.cat))
             (us e.Trace.ts_ns) e.Trace.tid));
      add_args_object b (("span_id", string_of_int e.Trace.id)
                        :: ("parent", string_of_int e.Trace.parent)
                        :: e.Trace.args);
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let jsonl () =
  let b = Buffer.create 65536 in
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"type\":\"%s\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"tid\":%d,\"ts_ns\":%d,\"dur_ns\":%d,\"args\":"
           (match e.Trace.kind with Trace.Span -> "span" | Trace.Instant -> "instant")
           e.Trace.id e.Trace.parent (json_escape e.Trace.name) (json_escape e.Trace.cat)
           e.Trace.tid e.Trace.ts_ns
           (Int.max 0 e.Trace.dur_ns));
      add_args_object b e.Trace.args;
      Buffer.add_string b "}\n")
    (Trace.events ());
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_value n ->
        Buffer.add_string b
          (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n" (json_escape name) n)
      | Metrics.Gauge_value g ->
        Buffer.add_string b
          (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%g}\n" (json_escape name) g)
      | Metrics.Histogram_value h ->
        let count = Metrics.Histogram.count h in
        if count > 0 then
          Buffer.add_string b
            (Printf.sprintf
               "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g,\"p50\":%g,\"p90\":%g,\"p95\":%g,\"p99\":%g}\n"
               (json_escape name) count (Metrics.Histogram.sum h)
               (Metrics.Histogram.min_value h) (Metrics.Histogram.max_value h)
               (Metrics.Histogram.percentile h 50.0) (Metrics.Histogram.percentile h 90.0)
               (Metrics.Histogram.percentile h 95.0) (Metrics.Histogram.percentile h 99.0)))
    (Metrics.snapshot ());
  Buffer.contents b

let summary () = Metrics.render ()

let write_string ~path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_chrome ~path = write_string ~path (chrome_json ())
let write_jsonl ~path = write_string ~path (jsonl ())

let write ~path =
  if Filename.check_suffix path ".jsonl" then write_jsonl ~path else write_chrome ~path
