(** Named counters, gauges and log-scale histograms, zero-cost when
    disabled.

    Instruments live in one global registry keyed by name: the first
    [counter]/[gauge]/[histogram] call for a name creates it, later
    calls return the same instrument (asking for an existing name with
    a different kind raises [Invalid_argument]). Recording calls check
    a global enabled flag first — one atomic load, nothing recorded and
    nothing allocated while metrics are off.

    Counters are Domain-safe atomics. Histograms use fixed power-of-two
    buckets (log scale, ~1e-12 .. 5e8 with under/overflow buckets), so
    an observation is a handful of arithmetic ops plus a short
    mutex-protected bucket bump — cheap enough for once-per-solve and
    once-per-factor call sites, and exact [min]/[max] are kept so tail
    percentiles clamp to really-observed values. *)

val on : unit -> bool
val set_enabled : bool -> unit

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val add : t -> float -> unit
  (** [add g dv] shifts the gauge by [dv] (no-op while disabled) — the
      primitive for level gauges maintained by concurrent inc/dec pairs,
      e.g. a server's live queue depth or in-flight request count, where
      [set] from several threads would lose updates. *)

  val get : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Record a sample (no-op while disabled). Non-positive values land
      in the underflow bucket. *)

  val count : t -> int
  val sum : t -> float
  val min_value : t -> float
  (** [nan] when empty. *)

  val max_value : t -> float
  (** [nan] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100]: nearest-rank over the
      buckets. The first and last ranks return the exact observed
      [min]/[max]; interior ranks return the geometric midpoint of the
      selected bucket clamped to [[min, max]]. [nan] when empty. *)

  val buckets : t -> (float * float * int) list
  (** Non-empty buckets as [(lower, upper, count)], ascending. *)
end

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : string -> Histogram.t

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of Histogram.t

val snapshot : unit -> (string * value) list
(** Every registered instrument, sorted by name. *)

val reset : unit -> unit
(** Zero every registered instrument (registry entries survive). *)

val render : unit -> string
(** Human-readable summary: counters, gauges, then one block per
    histogram with count/mean/percentiles and a bucket bar chart. *)
