type t = { name : string; cat : string; args : (string * string) list; hist : Metrics.Histogram.t }

let make ?(cat = "") ?(args = []) ~hist name = { name; cat; args; hist = Metrics.histogram hist }

let enter _t = if Trace.on () || Metrics.on () then Clock.now_ns () else -1

let leave t t0 =
  if t0 >= 0 then begin
    let t1 = Clock.now_ns () in
    if Metrics.on () then Metrics.Histogram.observe t.hist (Clock.ns_to_s (t1 - t0));
    if Trace.on () then Trace.complete ~cat:t.cat ~args:t.args ~name:t.name ~t0_ns:t0 ~t1_ns:t1 ()
  end
