(** Monotonic nanosecond clock.

    All observability timestamps come from here so spans and histogram
    samples share one time base. Backed by the OS monotonic clock
    (CLOCK_MONOTONIC), so durations are immune to wall-clock steps. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary (boot-time) origin. A 63-bit OCaml
    [int] holds monotonic nanoseconds for ~292 years, so plain ints are
    safe and allocation-free. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds. *)
