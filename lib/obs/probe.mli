(** A preallocated leaf instrumentation site: one span name + one
    duration histogram, sharing a single clock read per edge.

    Made for allocation-sensitive hot loops (LU factor/solve inside
    Newton): [enter] returns [-1] without touching the clock when both
    tracing and metrics are off, so the disabled cost is two atomic
    loads and a compare. The span's category and static args live in
    the probe, so nothing is allocated per call on the enabled path
    either (beyond the trace event itself). *)

type t

val make : ?cat:string -> ?args:(string * string) list -> hist:string -> string -> t
(** [make ~hist name] — [name] is the span name, [hist] the histogram
    (seconds) registered in {!Metrics}. *)

val enter : t -> int
(** Start timestamp, or [-1] when both subsystems are disabled. *)

val leave : t -> int -> unit
(** [leave p t0] with [t0] from [enter p]: observes the duration into
    the histogram (when metrics are on) and appends a completed span
    (when tracing is on). Callers on exception paths must call this
    before re-raising. *)
