(** Hierarchical tracing spans, zero-cost when disabled.

    Every recording call first checks a global enabled flag (one atomic
    load); when tracing is off the hot paths pay only that branch and
    allocate nothing. When on, events land in per-Domain buffers
    (Domain-local storage), so {!Lattice_engine.Pool} workers record
    without contention; {!events} merges the buffers afterwards.

    Spans form a tree per domain: {!begin_span} pushes onto a
    domain-local stack, {!end_span} pops, and each event records its
    parent's span id. Leaf work that must stay allocation-free on the
    untraced path (LU factor/solve) uses {!complete} to append an
    already-timed span retroactively; its parent is whatever span is
    open on the recording domain's stack at that moment.

    Tracing starts disabled. Setting the [FTL_TRACE] environment
    variable to anything but [""] or ["0"] enables it at program start
    (used by CI to exercise the instrumented paths); the [ftl] CLI's
    [--trace FILE] flag enables it and exports on exit.

    Call-site rule for hot paths: guard argument construction with
    {!on}, e.g.
    [let sp = if Trace.on () then Trace.begin_span ~args:[...] "step"
              else Trace.null in ... Trace.end_span sp]
    so the [args] list is never allocated while tracing is off. *)

type kind = Span | Instant

type event = {
  id : int;  (** unique across domains, allocation order *)
  parent : int;  (** span id of the enclosing span, [-1] for roots *)
  name : string;
  cat : string;
  tid : int;  (** id of the recording domain *)
  ts_ns : int;  (** start time, ns since the trace epoch *)
  mutable dur_ns : int;
      (** span duration; [-1] while still open, [0] for instants *)
  args : (string * string) list;
  kind : kind;
}

val on : unit -> bool
(** One atomic load; safe from any domain. *)

val set_enabled : bool -> unit

(** {2 Remote request context}

    The serve layer runs each request under a {!remote_context} so that
    every span recorded while handling it — on the worker systhread and
    on any {!Lattice_engine.Pool} domain it fans out to — is stamped
    with the request's id and the client's [trace_id]/[parent_span].
    That stamping is what lets [ftl client --trace] stitch client and
    daemon spans into one Perfetto timeline, and what ties flight-
    recorder dumps back to the request that triggered them.

    The context also carries per-request attribution counters
    (dc solves, cache hits, retries) that the engine increments and the
    server's access log reads back. *)

type remote_context

val make_context :
  ?trace_id:string -> ?parent_span:string -> ?req_id:string -> unit -> remote_context

val with_remote_context : remote_context -> (unit -> 'a) -> 'a
(** Install the context for the calling thread for the duration of [f];
    exception-safe, restores any previously installed context. *)

val with_context_opt : remote_context option -> (unit -> 'a) -> 'a
(** [with_context_opt None f] is [f ()]; used by pool workers to
    inherit the submitting thread's context. *)

val current_context : unit -> remote_context option

val attribute_dc_solve : unit -> unit
(** Count one real DC solve against the current context (no-op without
    one). *)

val attribute_cache_hit : unit -> unit

val attribute_retries : int -> unit

val context_dc_solves : remote_context -> int
val context_cache_hits : remote_context -> int
val context_retries : remote_context -> int

type token = int
(** Handle returned by {!begin_span}; compare against {!null}. *)

val null : token
(** The token of a span that was never started (tracing disabled). *)

val begin_span : ?cat:string -> ?args:(string * string) list -> string -> token
(** Open a span on the calling domain. Returns {!null} when neither
    tracing nor the {!Ring} flight recorder wants spans. Must be closed
    by {!end_span} on the same domain. *)

val end_span : token -> unit
(** Close a span. Spans left open above [token] on the domain's stack
    (abandoned by an exception) are closed at the same instant, and
    every closed span is fed to the {!Ring} flight recorder when it is
    enabled. A {!null} token is ignored. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; exception-safe. When
    both tracing and the flight recorder are disabled this is [f ()]
    with no allocation beyond the closure the caller already built. *)

val complete :
  ?cat:string -> ?args:(string * string) list -> name:string -> t0_ns:int -> t1_ns:int -> unit -> unit
(** Append an already-timed span ([t0_ns]/[t1_ns] from {!Clock.now_ns});
    parented under the domain's currently open span. Also fed to the
    flight recorder. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration point event (step halvings, cache evictions,
    fallback-strategy transitions). *)

val events : unit -> event list
(** Merge every domain's buffer, sorted by [(ts_ns, id)] so the order is
    stable for identical timestamps. Call from a quiescent point (no
    domain actively recording). *)

val reset : unit -> unit
(** Drop all recorded events (buffers stay registered). Quiescent
    points only. *)
