(* Flight recorder: an always-on, fixed-size per-domain ring of the
   most recently completed spans. Unlike the opt-in {!Trace} buffers,
   the rings never grow and never stop recording, so when a request
   fails there is retroactive evidence of what the process was doing.

   Each domain owns one ring; serve workers are systhreads sharing
   domain 0's ring, so the write cursor is an atomic fetch-and-add.
   Slot writes themselves are unsynchronized — a lost race overwrites
   one record with a newer one, which is exactly the ring's contract.
   The only allocation on the recording path is the span record
   itself. *)

type span = {
  name : string;
  cat : string;
  dom : int;  (** recording domain *)
  ts_ns : int;  (** start, ns since the trace epoch *)
  dur_ns : int;
  args : (string * string) list;
}

(* power of two so the cursor wraps with a mask, not a division *)
let capacity = 512
let mask = capacity - 1

let enabled =
  let from_env =
    match Sys.getenv_opt "FTL_FLIGHT" with
    | Some s when String.trim s = "0" -> false
    | Some _ | None -> true
  in
  Atomic.make from_env

let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

let dummy = { name = ""; cat = ""; dom = -1; ts_ns = 0; dur_ns = 0; args = [] }

type ring = { slots : span array; cursor : int Atomic.t }

(* rings of every domain that ever recorded; registration happens once
   per domain (DLS init), never on a hot path *)
let registry : ring list ref = ref []
let registry_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let r = { slots = Array.make capacity dummy; cursor = Atomic.make 0 } in
      Mutex.lock registry_lock;
      registry := r :: !registry;
      Mutex.unlock registry_lock;
      r)

let record span =
  if Atomic.get enabled then begin
    let r = Domain.DLS.get dls_key in
    let i = Atomic.fetch_and_add r.cursor 1 in
    r.slots.(i land mask) <- span
  end

let rings () =
  Mutex.lock registry_lock;
  let rs = !registry in
  Mutex.unlock registry_lock;
  rs

let dump ?last_n () =
  let out = ref [] in
  List.iter
    (fun r ->
      let c = Atomic.get r.cursor in
      let n = Int.min c capacity in
      (* oldest surviving slot first *)
      for k = c - n to c - 1 do
        let s = r.slots.(k land mask) in
        if s != dummy then out := s :: !out
      done)
    (rings ());
  let sorted = List.sort (fun a b -> Int.compare a.ts_ns b.ts_ns) !out in
  match last_n with
  | None -> sorted
  | Some n when n < 0 -> invalid_arg "Ring.dump: negative last_n"
  | Some n ->
    let len = List.length sorted in
    if len <= n then sorted else List.filteri (fun i _ -> i >= len - n) sorted

let recorded () =
  List.fold_left (fun acc r -> acc + Int.min (Atomic.get r.cursor) capacity) 0 (rings ())

let reset () =
  List.iter
    (fun r ->
      Atomic.set r.cursor 0;
      Array.fill r.slots 0 capacity dummy)
    (rings ())

(* --- serialization ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One Chrome-trace "X" event per line: the same shape Export.chrome_json
   puts in [traceEvents], so a dump opens in Perfetto after wrapping the
   lines in a JSON array. *)
let span_to_json s =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
       (json_escape s.name)
       (json_escape (if s.cat = "" then "default" else s.cat))
       s.dom
       (float_of_int s.ts_ns /. 1e3)
       (float_of_int s.dur_ns /. 1e3));
  if s.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      s.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let dump_jsonl ?last_n () =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string b (span_to_json s);
      Buffer.add_char b '\n')
    (dump ?last_n ());
  Buffer.contents b
