(** Time-windowed SLO metrics: rolling counters and log-scale latency
    histograms over the last [buckets x bucket_s] seconds.

    The window is a circular array of epoch-tagged buckets; stale
    buckets are recycled lazily on the next observation, so there is no
    background thread and expiry costs nothing. Percentiles come from
    the merged log-scale histogram with exact min/max endpoints — the
    same bucketing as {!Metrics.Histogram}, so interior ranks carry at
    most ~sqrt(2) relative error.

    The caller supplies timestamps ([now_ns], from {!Clock.now_ns});
    injecting the clock keeps the window algebra testable against a
    reference computation. Thread-safe. *)

type outcome = Ok | Error | Timeout

type t

val create : ?buckets:int -> ?bucket_s:float -> unit -> t
(** Default window: 6 buckets x 10 s = 60 s. *)

val window_s : t -> float

val observe : t -> now_ns:int -> dur_s:float -> outcome:outcome -> unit

type snap = {
  count : int;
  errors : int;
  timeouts : int;
  rate_per_s : float;  (** completions per second over the full window *)
  mean_s : float;  (** [nan] when empty *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

val snapshot : t -> now_ns:int -> snap
(** Merge every bucket still inside the window ending at [now_ns]. *)

val reset : t -> unit
