(* Rolling SLO metrics: a time-windowed histogram/counter set built
   from N fixed-width buckets addressed by wall-clock epoch. Bucket
   [e mod n] belongs to epoch [e = now / bucket_ns]; an observation
   landing in a bucket tagged with a stale epoch first clears it, so
   old data ages out lazily with zero background work. A snapshot
   merges every bucket whose epoch is still inside the window.

   Durations use the same power-of-two log-scale bucketing as
   {!Metrics.Histogram} (exact min/max per time bucket, geometric
   midpoint for interior ranks), so windowed percentiles carry the
   same <= sqrt(2) relative bucketing error.

   The clock is injected ([now_ns] arguments) rather than read
   internally, which keeps the window algebra deterministic under
   test. *)

type outcome = Ok | Error | Timeout

let hbuckets = 72
let bias = 40

let bucket_of v =
  if not (v > 0.0) then 0
  else begin
    let _, e = Float.frexp v in
    let i = e + bias in
    if i < 1 then 0 else if i > hbuckets - 2 then hbuckets - 1 else i
  end

let lower i = Float.ldexp 1.0 (i - bias - 1)
let upper i = Float.ldexp 1.0 (i - bias)

type bucket = {
  mutable epoch : int;  (* -1 = never used *)
  counts : int array;
  mutable n : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable sum_s : float;
  mutable min_s : float;
  mutable max_s : float;
}

type t = {
  bucket_ns : int;
  nbuckets : int;
  lock : Mutex.t;
  buckets : bucket array;
}

let create ?(buckets = 6) ?(bucket_s = 10.0) () =
  if buckets < 1 then invalid_arg "Rolling.create: buckets must be >= 1";
  if not (bucket_s > 0.0) then invalid_arg "Rolling.create: bucket_s must be > 0";
  {
    bucket_ns = int_of_float (bucket_s *. 1e9);
    nbuckets = buckets;
    lock = Mutex.create ();
    buckets =
      Array.init buckets (fun _ ->
          {
            epoch = -1;
            counts = Array.make hbuckets 0;
            n = 0;
            errors = 0;
            timeouts = 0;
            sum_s = 0.0;
            min_s = infinity;
            max_s = neg_infinity;
          });
  }

let window_s t = float_of_int (t.nbuckets * t.bucket_ns) /. 1e9

let clear_bucket b epoch =
  Array.fill b.counts 0 hbuckets 0;
  b.n <- 0;
  b.errors <- 0;
  b.timeouts <- 0;
  b.sum_s <- 0.0;
  b.min_s <- infinity;
  b.max_s <- neg_infinity;
  b.epoch <- epoch

let observe t ~now_ns ~dur_s ~outcome =
  let epoch = now_ns / t.bucket_ns in
  Mutex.lock t.lock;
  let b = t.buckets.(epoch mod t.nbuckets) in
  if b.epoch <> epoch then clear_bucket b epoch;
  let i = bucket_of dur_s in
  b.counts.(i) <- b.counts.(i) + 1;
  b.n <- b.n + 1;
  b.sum_s <- b.sum_s +. dur_s;
  if dur_s < b.min_s then b.min_s <- dur_s;
  if dur_s > b.max_s then b.max_s <- dur_s;
  (match outcome with
  | Ok -> ()
  | Error -> b.errors <- b.errors + 1
  | Timeout -> b.timeouts <- b.timeouts + 1);
  Mutex.unlock t.lock

type snap = {
  count : int;
  errors : int;
  timeouts : int;
  rate_per_s : float;  (** completions per second over the full window *)
  mean_s : float;  (** [nan] when empty *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

let empty_snap ~rate =
  {
    count = 0;
    errors = 0;
    timeouts = 0;
    rate_per_s = rate;
    mean_s = Float.nan;
    p50_s = Float.nan;
    p95_s = Float.nan;
    p99_s = Float.nan;
    max_s = Float.nan;
  }

let percentile_merged counts ~count ~min_s ~max_s p =
  let rank =
    let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int count)) in
    Int.max 1 (Int.min count r)
  in
  if rank = 1 then min_s
  else if rank = count then max_s
  else begin
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < hbuckets do
      seen := !seen + counts.(!i);
      if !seen < rank then incr i
    done;
    let i = !i in
    if i = 0 then min_s
    else if i >= hbuckets - 1 then max_s
    else Float.sqrt (lower i *. upper i)
  end

let snapshot t ~now_ns =
  let current = now_ns / t.bucket_ns in
  let oldest = current - t.nbuckets + 1 in
  Mutex.lock t.lock;
  let counts = Array.make hbuckets 0 in
  let n = ref 0 and errors = ref 0 and timeouts = ref 0 in
  let sum = ref 0.0 and min_s = ref infinity and max_s = ref neg_infinity in
  Array.iter
    (fun b ->
      if b.epoch >= oldest && b.epoch <= current then begin
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
        n := !n + b.n;
        errors := !errors + b.errors;
        timeouts := !timeouts + b.timeouts;
        sum := !sum +. b.sum_s;
        if b.min_s < !min_s then min_s := b.min_s;
        if b.max_s > !max_s then max_s := b.max_s
      end)
    t.buckets;
  Mutex.unlock t.lock;
  let w = window_s t in
  if !n = 0 then empty_snap ~rate:0.0
  else
    {
      count = !n;
      errors = !errors;
      timeouts = !timeouts;
      rate_per_s = float_of_int !n /. w;
      mean_s = !sum /. float_of_int !n;
      p50_s = percentile_merged counts ~count:!n ~min_s:!min_s ~max_s:!max_s 50.0;
      p95_s = percentile_merged counts ~count:!n ~min_s:!min_s ~max_s:!max_s 95.0;
      p99_s = percentile_merged counts ~count:!n ~min_s:!min_s ~max_s:!max_s 99.0;
      max_s = !max_s;
    }

let reset t =
  Mutex.lock t.lock;
  Array.iter (fun b -> clear_bucket b (-1)) t.buckets;
  Mutex.unlock t.lock
