let enabled = Atomic.make false
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

module Counter = struct
  type t = int Atomic.t

  let incr t = if on () then Atomic.incr t
  let add t n = if on () then ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let make () = Atomic.make 0
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = { lock : Mutex.t; mutable v : float }

  let make () = { lock = Mutex.create (); v = 0.0 }

  let set t v =
    if on () then begin
      Mutex.lock t.lock;
      t.v <- v;
      Mutex.unlock t.lock
    end

  let add t dv =
    if on () then begin
      Mutex.lock t.lock;
      t.v <- t.v +. dv;
      Mutex.unlock t.lock
    end

  let get t =
    Mutex.lock t.lock;
    let v = t.v in
    Mutex.unlock t.lock;
    v

  let reset t =
    Mutex.lock t.lock;
    t.v <- 0.0;
    Mutex.unlock t.lock
end

module Histogram = struct
  (* Power-of-two buckets: bucket [i] for 1 <= i <= 70 covers
     [2^(i-41), 2^(i-40)), i.e. ~1e-12 .. ~1e9; bucket 0 is underflow
     (v <= 0 included), bucket 71 overflow. *)
  let nbuckets = 72
  let bias = 40

  type t = {
    lock : Mutex.t;
    counts : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let make () =
    {
      lock = Mutex.create ();
      counts = Array.make nbuckets 0;
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let bucket_of v =
    if not (v > 0.0) then 0
    else begin
      let _, e = Float.frexp v in
      let i = e + bias in
      if i < 1 then 0 else if i > nbuckets - 2 then nbuckets - 1 else i
    end

  let lower i = Float.ldexp 1.0 (i - bias - 1)
  let upper i = Float.ldexp 1.0 (i - bias)

  let observe t v =
    if on () then begin
      let i = bucket_of v in
      Mutex.lock t.lock;
      t.counts.(i) <- t.counts.(i) + 1;
      t.count <- t.count + 1;
      t.sum <- t.sum +. v;
      if v < t.min_v then t.min_v <- v;
      if v > t.max_v then t.max_v <- v;
      Mutex.unlock t.lock
    end

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let count t = locked t (fun () -> t.count)
  let sum t = locked t (fun () -> t.sum)
  let min_value t = locked t (fun () -> if t.count = 0 then Float.nan else t.min_v)
  let max_value t = locked t (fun () -> if t.count = 0 then Float.nan else t.max_v)

  let percentile t p =
    locked t (fun () ->
        if t.count = 0 then Float.nan
        else begin
          let rank =
            let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)) in
            Int.max 1 (Int.min t.count r)
          in
          (* the extreme ranks are known exactly — don't approximate them
             with a bucket midpoint *)
          if rank = 1 then t.min_v
          else if rank = t.count then t.max_v
          else begin
            let i = ref 0 and seen = ref 0 in
            while !seen < rank && !i < nbuckets do
              seen := !seen + t.counts.(!i);
              if !seen < rank then incr i
            done;
            let repr =
              if !i = 0 then t.min_v
              else if !i = nbuckets - 1 then t.max_v
              else sqrt (lower !i *. upper !i)
            in
            Float.min t.max_v (Float.max t.min_v repr)
          end
        end)

  let buckets t =
    locked t (fun () ->
        let out = ref [] in
        for i = nbuckets - 1 downto 0 do
          if t.counts.(i) > 0 then out := (lower i, upper i, t.counts.(i)) :: !out
        done;
        !out)

  let reset t =
    locked t (fun () ->
        Array.fill t.counts 0 nbuckets 0;
        t.count <- 0;
        t.sum <- 0.0;
        t.min_v <- infinity;
        t.max_v <- neg_infinity)
end

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of Histogram.t

type instrument = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let counter name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some (G _ | H _) ->
        invalid_arg (Printf.sprintf "Metrics.counter: %S is registered as another kind" name)
      | None ->
        let c = Counter.make () in
        Hashtbl.replace registry name (C c);
        c)

let gauge name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (G g) -> g
      | Some (C _ | H _) ->
        invalid_arg (Printf.sprintf "Metrics.gauge: %S is registered as another kind" name)
      | None ->
        let g = Gauge.make () in
        Hashtbl.replace registry name (G g);
        g)

let histogram name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> h
      | Some (C _ | G _) ->
        invalid_arg (Printf.sprintf "Metrics.histogram: %S is registered as another kind" name)
      | None ->
        let h = Histogram.make () in
        Hashtbl.replace registry name (H h);
        h)

let snapshot () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [] in
  Mutex.unlock registry_lock;
  entries
  |> List.map (fun (name, i) ->
         ( name,
           match i with
           | C c -> Counter_value (Counter.get c)
           | G g -> Gauge_value (Gauge.get g)
           | H h -> Histogram_value h ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun _ i acc -> i :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.iter
    (function C c -> Counter.reset c | G g -> Gauge.reset g | H h -> Histogram.reset h)
    entries

let render () =
  let buf = Buffer.create 1024 in
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, v) ->
        match v with
        | Counter_value n -> ((name, n) :: cs, gs, hs)
        | Gauge_value g -> (cs, (name, g) :: gs, hs)
        | Histogram_value h -> (cs, gs, (name, h) :: hs))
      ([], [], []) (List.rev (snapshot ()))
  in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" n v)) counters
  end;
  if gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %g\n" n v)) gauges
  end;
  List.iter
    (fun (name, h) ->
      let count = Histogram.count h in
      if count = 0 then Buffer.add_string buf (Printf.sprintf "histogram %s: empty\n" name)
      else begin
        let mean = Histogram.sum h /. float_of_int count in
        Buffer.add_string buf
          (Printf.sprintf
             "histogram %s: count %d  mean %.4g  p50 %.4g  p90 %.4g  p95 %.4g  p99 %.4g  max %.4g\n"
             name count mean (Histogram.percentile h 50.0) (Histogram.percentile h 90.0)
             (Histogram.percentile h 95.0) (Histogram.percentile h 99.0) (Histogram.max_value h));
        let bs = Histogram.buckets h in
        let biggest = List.fold_left (fun m (_, _, c) -> Int.max m c) 1 bs in
        List.iter
          (fun (lo, hi, c) ->
            let bar = String.make (Int.max 1 (c * 40 / biggest)) '#' in
            Buffer.add_string buf (Printf.sprintf "  [%9.3g, %9.3g) %8d %s\n" lo hi c bar))
          bs
      end)
    hists;
  Buffer.contents buf
