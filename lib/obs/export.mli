(** Exporters over {!Trace.events} and {!Metrics.snapshot}.

    [chrome_json] emits the Chrome trace-event format (JSON object with
    a ["traceEvents"] array of ["ph":"X"] complete events and
    ["ph":"i"] instants, timestamps in microseconds) — load the file in
    Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
    [chrome://tracing]. Each recording domain appears as its own track
    via [tid], with a thread-name metadata record.

    [jsonl] emits one self-describing JSON object per line: every trace
    event (with nanosecond timestamps and explicit [parent] span ids),
    then every metric. Suited to [jq]-style post-processing.

    [summary] is the human-readable metrics rendering
    ({!Metrics.render}). *)

val chrome_json : unit -> string
val jsonl : unit -> string
val summary : unit -> string

val write_chrome : path:string -> unit
val write_jsonl : path:string -> unit

val write : path:string -> unit
(** Chrome format, unless [path] ends in [.jsonl]. *)
