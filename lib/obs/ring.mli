(** Flight recorder: always-on fixed-size per-domain rings of the most
    recently completed spans.

    {!Trace} records nothing unless tracing is enabled; the ring is the
    opposite — it records every completed span (not instants) into a
    bounded ring regardless, so a failing or slow request leaves
    retroactive evidence. Overwrite is the contract: each domain keeps
    only its last {!capacity} spans.

    Recording costs one atomic fetch-and-add plus one array store; the
    only allocation on that path is the span record itself. Within a
    domain, concurrent systhreads claim slots with the atomic cursor;
    a racing slot write can drop one record, never corrupt the ring.

    Enabled by default; set [FTL_FLIGHT=0] to disable at startup (used
    by the A/A overhead bench). *)

type span = {
  name : string;
  cat : string;
  dom : int;  (** recording domain *)
  ts_ns : int;  (** start, ns since the trace epoch *)
  dur_ns : int;
  args : (string * string) list;
}

val capacity : int
(** Slots per domain (power of two). *)

val on : unit -> bool
(** One atomic load; safe from any domain. *)

val set_enabled : bool -> unit

val record : span -> unit
(** Store a completed span in the calling domain's ring, overwriting
    the oldest; a no-op while disabled. Callers normally go through
    {!Trace}, which feeds the ring from [end_span]/[complete]
    automatically. *)

val dump : ?last_n:int -> unit -> span list
(** Merge every domain's surviving spans, sorted by start time; with
    [last_n], only the most recent [n]. Concurrent recording during a
    dump may drop or duplicate a handful of in-flight records — dumps
    are diagnostics, not ledgers. *)

val dump_jsonl : ?last_n:int -> unit -> string
(** {!dump} rendered one Chrome-trace ["X"] event per line (JSONL);
    wrapping the lines in a JSON array yields a Perfetto-loadable
    trace. *)

val recorded : unit -> int
(** Number of spans currently held across all rings. *)

val reset : unit -> unit
(** Clear every ring (tests). Quiescent points only. *)
