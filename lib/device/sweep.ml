type curve = { label : string; xs : float array; ys : float array }

type iv_set = {
  model : Device_model.t;
  case : Op_case.t;
  ids_vgs_low : curve list;
  ids_vgs_high : curve list;
  ids_vds : curve list;
}

let terminal_labels = [| "T1"; "T2"; "T3"; "T4" |]

let run ?engine model ~case ~points ~sweep =
  if points < 2 then invalid_arg "Sweep: need at least 2 points";
  let xs = Lattice_numerics.Vec.linspace 0.0 5.0 points in
  let point i =
    let vgs, vds = sweep xs.(i) in
    Device_model.terminal_currents model ~case ~vgs ~vds
  in
  let currents =
    (* Each bias point is independent; results merge by index, so the
       curves are bit-identical to the serial sweep at any domain count. *)
    Lattice_obs.Trace.with_span ~cat:"device" "iv-sweep" (fun () ->
        match engine with
        | Some e -> Lattice_engine.Engine.map e ~phase:"iv-sweep" ~n:points point
        | None -> Array.init points point)
  in
  List.map
    (fun t ->
      {
        label = terminal_labels.(t);
        xs = Array.copy xs;
        ys = Array.map (fun i -> Float.abs i.(t)) currents;
      })
    [ 0; 1; 2; 3 ]

let ids_vgs ?engine model ~case ~vds ~points =
  run ?engine model ~case ~points ~sweep:(fun vgs -> (vgs, vds))

let ids_vds ?engine model ~case ~vgs ~points =
  run ?engine model ~case ~points ~sweep:(fun vds -> (vgs, vds))

let standard ?engine model =
  let case = Op_case.dsss in
  let points = 51 in
  {
    model;
    case;
    ids_vgs_low = ids_vgs ?engine model ~case ~vds:0.01 ~points;
    ids_vgs_high = ids_vgs ?engine model ~case ~vds:5.0 ~points;
    ids_vds = ids_vds ?engine model ~case ~vgs:5.0 ~points;
  }

let drain_curve set which =
  let curves =
    match which with
    | `Vgs_low -> set.ids_vgs_low
    | `Vgs_high -> set.ids_vgs_high
    | `Vds -> set.ids_vds
  in
  match curves with
  | t1 :: _ -> t1
  | [] -> invalid_arg "Sweep.drain_curve: empty set"

let threshold_from_sweep curve ~icrit =
  Lattice_numerics.Interp.first_crossing curve.xs curve.ys icrit
