type solver = Auto | Cg | Multigrid

let solver_name = function Auto -> "auto" | Cg -> "cg" | Multigrid -> "multigrid"

(* grids at or above this edge go through multigrid under [Auto]; below it
   plain CG is already fast and stays the reference *)
let mg_threshold = 32

type result = {
  n : int;
  potential : float array;
  sigma : float array;
  jx : float array;
  jy : float array;
  terminal_currents : float array;
  channel_cv : float;
  source_share_cv : float;
  cg_iterations : int;
  v_cycles : int;
  solver_used : solver;
  converged : bool;
}

type cell_kind = Electrode of int | Channel | Access | Background

let sigma_electrode = 1e3
let sigma_background = 1e-6

(* gate-controlled channel conductivity (arbitrary units; Fig 8 is a
   qualitative profile) *)
let channel_sigma model ~vgs =
  let vth = model.Device_model.vth in
  if Geometry.is_depletion model.Device_model.geometry then begin
    let span = Threshold.phi_ms_junctionless -. vth in
    Float.max 0.01 (Float.min 2.0 ((vgs -. vth) /. span))
  end
  else Float.max 0.01 (vgs -. vth)

(* classify cell (x, y) in normalized [0,1)^2 coordinates; T1 = north
   (y near 0), T2 = east, T3 = south, T4 = west *)
let classify geometry ~x ~y =
  let g = geometry in
  let df = g.Geometry.electrode_d /. g.Geometry.device_x in
  (* cap the electrode band so adjacent electrodes never meet at corners
     (the physical device separates them in depth) *)
  let wf =
    Float.min (g.Geometry.electrode_w /. g.Geometry.device_x) (1.0 -. (4.0 *. df))
  in
  let within_band c = Float.abs (c -. 0.5) < wf /. 2.0 in
  if y < df && within_band x then Electrode 0
  else if x > 1.0 -. df && within_band y then Electrode 1
  else if y > 1.0 -. df && within_band x then Electrode 2
  else if x < df && within_band y then Electrode 3
  else begin
    let gf = g.Geometry.gate_extent /. g.Geometry.device_x in
    match g.Geometry.shape with
    | Geometry.Square ->
      let in_gate = Float.abs (x -. 0.5) < gf /. 2.0 && Float.abs (y -. 0.5) < gf /. 2.0 in
      if in_gate then Channel
      else begin
        (* access regions between each electrode's inner face and the gate *)
        let in_access =
          (within_band x && (y < (1.0 -. gf) /. 2.0 || y > (1.0 +. gf) /. 2.0))
          || (within_band y && (x < (1.0 -. gf) /. 2.0 || x > (1.0 +. gf) /. 2.0))
        in
        if in_access then Access else Background
      end
    | Geometry.Cross ->
      let arm = gf /. 2.0 in
      if Float.abs (x -. 0.5) < arm || Float.abs (y -. 0.5) < arm then Channel else Background
    | Geometry.Junctionless -> Channel
  end

let solve ?(n = 48) ?(solver = Auto) ?(tol = 1e-10) (variant : Presets.variant) ~case ~vgs ~vds =
  if not (Op_case.is_valid case) then invalid_arg "Field2d.solve: case needs a drain and a source";
  if n < 8 then invalid_arg "Field2d.solve: grid too coarse";
  let geometry = variant.Presets.geometry in
  let model = variant.Presets.model in
  let sigma_ch = channel_sigma model ~vgs in
  let kinds = Array.make (n * n) Background in
  let sigma = Array.make (n * n) sigma_background in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let x = (float_of_int c +. 0.5) /. float_of_int n in
      let y = (float_of_int r +. 0.5) /. float_of_int n in
      let k = classify geometry ~x ~y in
      kinds.((r * n) + c) <- k;
      sigma.((r * n) + c) <-
        (match k with
        | Electrode _ -> sigma_electrode
        | Channel -> sigma_ch
        | Access -> 0.3 *. sigma_ch
        | Background -> sigma_background)
    done
  done;
  (* terminal potentials; floating electrodes stay as unknowns *)
  let fixed_potential = Array.make (n * n) nan in
  Array.iteri
    (fun i k ->
      match k with
      | Electrode t -> (
        match case.(t) with
        | Op_case.Drain -> fixed_potential.(i) <- vds
        | Op_case.Source -> fixed_potential.(i) <- 0.0
        | Op_case.Floating -> ())
      | Channel | Access | Background -> ())
    kinds;
  let is_fixed i = not (Float.is_nan fixed_potential.(i)) in
  (* free-cell index map *)
  let free_index = Array.make (n * n) (-1) in
  let nfree = ref 0 in
  Array.iteri
    (fun i _ ->
      if not (is_fixed i) then begin
        free_index.(i) <- !nfree;
        incr nfree
      end)
    kinds;
  let nfree = !nfree in
  let face_g a b = 2.0 *. sigma.(a) *. sigma.(b) /. (sigma.(a) +. sigma.(b)) in
  let neighbors i =
    let r = i / n and c = i mod n in
    List.filter_map Fun.id
      [
        (if r > 0 then Some (i - n) else None);
        (if r < n - 1 then Some (i + n) else None);
        (if c > 0 then Some (i - 1) else None);
        (if c < n - 1 then Some (i + 1) else None);
      ]
  in
  let b = Array.make nfree 0.0 in
  Array.iteri
    (fun i k ->
      ignore k;
      if not (is_fixed i) then
        List.iter
          (fun j -> if is_fixed j then b.(free_index.(i)) <- b.(free_index.(i)) +. (face_g i j *. fixed_potential.(j)))
          (neighbors i))
    kinds;
  let solver_used =
    match solver with
    | Auto -> if n >= mg_threshold then Multigrid else Cg
    | (Cg | Multigrid) as s -> s
  in
  let potential = Array.make (n * n) 0.0 in
  let iterations, v_cycles, converged =
    match solver_used with
    | Cg ->
      let apply x out =
        Array.fill out 0 nfree 0.0;
        for i = 0 to (n * n) - 1 do
          if not (is_fixed i) then begin
            let fi = free_index.(i) in
            let acc = ref 0.0 in
            List.iter
              (fun j ->
                let g = face_g i j in
                acc := !acc +. g;
                if not (is_fixed j) then out.(fi) <- out.(fi) -. (g *. x.(free_index.(j))))
              (neighbors i);
            out.(fi) <- out.(fi) +. (!acc *. x.(fi))
          end
        done
      in
      let cg = Lattice_numerics.Cg.solve ~apply ~b ~tol ~max_iter:(8 * nfree) () in
      Array.iteri
        (fun i _ ->
          potential.(i) <-
            (if is_fixed i then fixed_potential.(i)
             else cg.Lattice_numerics.Cg.solution.(free_index.(i))))
        kinds;
      (cg.Lattice_numerics.Cg.iterations, 0, cg.Lattice_numerics.Cg.converged)
    | Multigrid | Auto ->
      let module Mg = Lattice_numerics.Multigrid in
      let nn = n * n in
      let gx = Mg.vec nn and gy = Mg.vec nn in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          let i = (r * n) + c in
          if c < n - 1 then gx.{i} <- face_g i (i + 1);
          if r < n - 1 then gy.{i} <- face_g i (i + n)
        done
      done;
      let fixed = Bytes.make nn '\000' in
      let dirichlet = Mg.vec nn in
      for i = 0 to nn - 1 do
        if is_fixed i then begin
          Bytes.set fixed i '\001';
          dirichlet.{i} <- fixed_potential.(i)
        end
      done;
      let mg = Mg.create ~n ~gx ~gy ~fixed in
      let x, st = Mg.solve_dirichlet mg ~dirichlet ~tol () in
      for i = 0 to nn - 1 do
        potential.(i) <- x.{i}
      done;
      (st.Mg.iterations, st.Mg.v_cycles, st.Mg.converged)
  in
  (* current density: J = -sigma grad V (central differences, grid units) *)
  let jx = Array.make (n * n) 0.0 and jy = Array.make (n * n) 0.0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let i = (r * n) + c in
      let vxm = if c > 0 then potential.(i - 1) else potential.(i) in
      let vxp = if c < n - 1 then potential.(i + 1) else potential.(i) in
      let vym = if r > 0 then potential.(i - n) else potential.(i) in
      let vyp = if r < n - 1 then potential.(i + n) else potential.(i) in
      jx.(i) <- -.sigma.(i) *. (vxp -. vxm) /. 2.0;
      jy.(i) <- -.sigma.(i) *. (vyp -. vym) /. 2.0
    done
  done;
  (* terminal currents: flux across electrode boundary faces, positive into
     the electrode *)
  let terminal_currents = Array.make 4 0.0 in
  for i = 0 to (n * n) - 1 do
    match kinds.(i) with
    | Electrode t ->
      List.iter
        (fun j ->
          match kinds.(j) with
          | Electrode t' when t' = t -> ()
          | Electrode _ | Channel | Access | Background ->
            terminal_currents.(t) <-
              terminal_currents.(t) +. (face_g i j *. (potential.(j) -. potential.(i))))
        (neighbors i)
    | Channel | Access | Background -> ()
  done;
  (* uniformity of |J| over channel cells *)
  let mags = ref [] in
  Array.iteri
    (fun i k ->
      match k with
      | Channel ->
        let m = sqrt ((jx.(i) *. jx.(i)) +. (jy.(i) *. jy.(i))) in
        if m > 0.0 then mags := m :: !mags
      | Electrode _ | Access | Background -> ())
    kinds;
  let mags = Array.of_list !mags in
  let channel_cv =
    if Array.length mags < 2 then 0.0
    else Lattice_numerics.Stats.stddev mags /. Lattice_numerics.Stats.mean mags
  in
  let source_currents =
    List.map (fun s -> Float.abs terminal_currents.(s)) (Op_case.sources case)
  in
  let source_share_cv =
    match source_currents with
    | [] | [ _ ] -> 0.0
    | _ ->
      let arr = Array.of_list source_currents in
      Lattice_numerics.Stats.stddev arr /. Lattice_numerics.Stats.mean arr
  in
  {
    n;
    potential;
    sigma;
    jx;
    jy;
    terminal_currents;
    channel_cv;
    source_share_cv;
    cg_iterations = iterations;
    v_cycles;
    solver_used;
    converged;
  }

let ascii result ~width =
  let n = result.n in
  let width = Int.max 8 (Int.min width n) in
  let chars = " .:-=+*#%@" in
  let mag i = sqrt ((result.jx.(i) *. result.jx.(i)) +. (result.jy.(i) *. result.jy.(i))) in
  let mmax = ref 0.0 in
  for i = 0 to (n * n) - 1 do
    mmax := Float.max !mmax (mag i)
  done;
  let buf = Buffer.create (width * width) in
  for rr = 0 to width - 1 do
    for cc = 0 to width - 1 do
      let r = rr * n / width and c = cc * n / width in
      let m = mag ((r * n) + c) in
      let level =
        if !mmax = 0.0 then 0
        else Int.min 9 (int_of_float (sqrt (m /. !mmax) *. 9.99))
      in
      Buffer.add_char buf chars.[level];
      Buffer.add_char buf chars.[level]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
