(** Two-dimensional finite-difference conduction solver — the substitute
    for the paper's TCAD current-density vector profiles (Fig 8).

    The device footprint is discretized into an [n x n] cell-centred grid
    with a per-cell conductivity: high in the four electrodes, gate-bias
    dependent in the channel region (whose shape follows the gate: square
    block, cross arms, or the whole wire), and near-insulating elsewhere.
    Solving [div (sigma grad V) = 0] with Dirichlet conditions on the
    electrodes (drain at [vds], sources at 0) by conjugate gradients yields
    the potential, the current-density field [J = -sigma grad V], the
    per-terminal currents and a uniformity metric — the paper's qualitative
    claim being that the cross gate spreads the current far more uniformly
    across terminals than the square gate. *)

(** Linear-solver selection. [Auto] (the default) uses geometric multigrid
    ([Lattice_numerics.Multigrid], V-cycle-preconditioned flexible CG) for
    grids with [n >= 32] and plain conjugate gradients below that; [Cg]
    forces the matrix-free reference path, [Multigrid] forces the
    multigrid path. Both paths solve the same discrete system to the same
    relative-residual tolerance, so results agree to solver precision. *)
type solver = Auto | Cg | Multigrid

val solver_name : solver -> string

type result = {
  n : int;  (** grid edge (cells) *)
  potential : float array;  (** n*n, row-major, volts *)
  sigma : float array;  (** per-cell conductivity used in the solve *)
  jx : float array;  (** current density x-component per cell *)
  jy : float array;
  terminal_currents : float array;  (** into T1..T4, A (per unit depth) *)
  channel_cv : float;  (** coefficient of variation of |J| over channel cells *)
  source_share_cv : float;  (** CV of the per-source current split *)
  cg_iterations : int;  (** CG iterations, or PCG iterations for multigrid *)
  v_cycles : int;  (** multigrid V-cycles run (0 on the CG path) *)
  solver_used : solver;  (** the resolved solver ([Cg] or [Multigrid]) *)
  converged : bool;
}

(** [solve ?n ?solver ?tol variant ~case ~vgs ~vds] runs the solver
    ([n] defaults to 48, [solver] to [Auto], [tol] to [1e-10] relative
    residual). Raises [Invalid_argument] for an invalid case. *)
val solve :
  ?n:int ->
  ?solver:solver ->
  ?tol:float ->
  Presets.variant ->
  case:Op_case.t ->
  vgs:float ->
  vds:float ->
  result

(** [ascii result ~width] renders the current-density magnitude as an ASCII
    heat map (characters [" .:-=+*#%@"]), for terminal output. *)
val ascii : result -> width:int -> string
