(** I-V sweep engine reproducing the paper's three TCAD set-ups
    (Section III-B):

    + IDS-VGS curves at VDS = 10 mV,
    + IDS-VGS curves at VDS = 5 V,
    + IDS-VDS curves at VGS = 5 V,

    with the source voltage at 0 V, reported per terminal T1..T4 (current
    magnitudes, as the paper plots them). *)

type curve = {
  label : string;  (** e.g. ["T1"] *)
  xs : float array;  (** swept voltage, V *)
  ys : float array;  (** |terminal current|, A *)
}

type iv_set = {
  model : Device_model.t;
  case : Op_case.t;
  ids_vgs_low : curve list;  (** VDS = 10 mV *)
  ids_vgs_high : curve list;  (** VDS = 5 V *)
  ids_vds : curve list;  (** VGS = 5 V *)
}

(** [ids_vgs model ~case ~vds ~points] sweeps VGS from 0 to 5 V. With
    [engine], the bias points evaluate in parallel on the engine's Domain
    pool (phase ["iv-sweep"]); curves are bit-identical to the serial
    sweep. *)
val ids_vgs :
  ?engine:Lattice_engine.Engine.t ->
  Device_model.t -> case:Op_case.t -> vds:float -> points:int -> curve list

(** [ids_vds model ~case ~vgs ~points] sweeps VDS from 0 to 5 V. *)
val ids_vds :
  ?engine:Lattice_engine.Engine.t ->
  Device_model.t -> case:Op_case.t -> vgs:float -> points:int -> curve list

(** [standard model] runs the paper's three set-ups in the DSSS case with
    51 points per sweep. *)
val standard : ?engine:Lattice_engine.Engine.t -> Device_model.t -> iv_set

(** [drain_curve set which] extracts the T1 (drain) curve of one set-up:
    [`Vgs_low], [`Vgs_high] or [`Vds]. *)
val drain_curve : iv_set -> [ `Vgs_low | `Vgs_high | `Vds ] -> curve

(** [threshold_from_sweep curve ~icrit] estimates Vth as the gate voltage
    where the current first crosses [icrit] (constant-current method). *)
val threshold_from_sweep : curve -> icrit:float -> float option
