(** Graceful-degradation campaign over the paper's XOR3 3x3 lattice: every
    stuck-open / stuck-short circuit defect simulated, classified, and
    cross-checked against the logical test set (restrict or widen the
    universe with [classes]). *)

val default_classes : Lattice_spice.Defects.kind_class list

val run :
  ?engine:Lattice_engine.Engine.t ->
  ?classes:Lattice_spice.Defects.kind_class list ->
  unit ->
  Lattice_flow.Fault_campaign.report

val report :
  ?engine:Lattice_engine.Engine.t ->
  ?classes:Lattice_spice.Defects.kind_class list ->
  unit ->
  Report.t
