(** Experiments F5/F6/F7 — paper Figs 5, 6, 7 and the Section III-B text:
    I-V characteristics of the square, cross and junctionless devices with
    HfO2 and SiO2 gates in the DSSS case, with threshold voltage and on/off
    ratio figures of merit. *)

type variant_result = {
  name : string;
  vth_model : float;  (** electrostatic model *)
  vth_paper : float;
  ion : float;
  ioff : float;
  ratio : float;
  ratio_paper : float;
  iv : Lattice_device.Sweep.iv_set;  (** the three sweep set-ups *)
}

(** Peak currents read off the paper's HfO2 figures:
    [(shape, ids_vgs @ 10 mV peak, ids_vgs @ 5 V peak)]. *)
val paper_peak_currents : (Lattice_device.Geometry.shape * float * float) list

(** [run_variant ~shape ~dielectric ()] evaluates one device variant.
    With [engine], the I-V bias points fan out over the engine's Domain
    pool. *)
val run_variant :
  ?engine:Lattice_engine.Engine.t ->
  shape:Lattice_device.Geometry.shape ->
  dielectric:Lattice_device.Material.gate_dielectric ->
  unit ->
  variant_result

(** [report shape] is the figure-level report (Fig 5 = square, Fig 6 =
    cross, Fig 7 = junctionless) covering both dielectrics, with sampled
    HfO2 curves in the body. *)
val report : ?engine:Lattice_engine.Engine.t -> Lattice_device.Geometry.shape -> Report.t
