module D = Lattice_device

type variant_result = {
  name : string;
  vth_model : float;
  vth_paper : float;
  ion : float;
  ioff : float;
  ratio : float;
  ratio_paper : float;
  iv : D.Sweep.iv_set;
}

let paper_peak_currents =
  [
    (D.Geometry.Square, 1.5e-5, 1.2e-3);
    (D.Geometry.Cross, 6e-6, 4e-4);
    (D.Geometry.Junctionless, 1.4e-6, 6e-5);
  ]

let run_variant ?engine ~shape ~dielectric () =
  let v = D.Presets.find ~shape ~dielectric in
  let name = D.Presets.variant_name v in
  let vth_paper, ratio_paper =
    match List.assoc_opt name (List.map (fun (n, a, b) -> (n, (a, b))) D.Presets.paper_figures_of_merit) with
    | Some (a, b) -> (a, b)
    | None -> (nan, nan)
  in
  {
    name;
    vth_model = v.D.Presets.model.D.Device_model.vth;
    vth_paper;
    ion = D.Device_model.ion v.D.Presets.model;
    ioff = D.Device_model.ioff v.D.Presets.model;
    ratio = D.Device_model.on_off_ratio v.D.Presets.model;
    ratio_paper;
    iv = D.Sweep.standard ?engine v.D.Presets.model;
  }

let figure_id = function
  | D.Geometry.Square -> "Fig5"
  | D.Geometry.Cross -> "Fig6"
  | D.Geometry.Junctionless -> "Fig7"

let sample_table iv =
  let t1 which = D.Sweep.drain_curve iv which in
  let a = t1 `Vgs_low and b = t1 `Vgs_high and c = t1 `Vds in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "  V      a) Ids(Vgs)@Vds=10mV   b) Ids(Vgs)@Vds=5V    c) Ids(Vds)@Vgs=5V\n";
  let sample curve x = Lattice_numerics.Interp.lookup curve.D.Sweep.xs curve.D.Sweep.ys x in
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf "  %-5.1f  %18.4g   %18.4g   %18.4g\n" x (sample a x) (sample b x) (sample c x)))
    [ 0.0; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0; 4.5; 5.0 ];
  Buffer.contents buf

let report ?engine shape =
  let hf = run_variant ?engine ~shape ~dielectric:D.Material.HfO2 () in
  let si = run_variant ?engine ~shape ~dielectric:D.Material.SiO2 () in
  let id = figure_id shape in
  let peak_low, peak_high =
    match List.assoc_opt shape (List.map (fun (s, a, b) -> (s, (a, b))) paper_peak_currents) with
    | Some p -> p
    | None -> (nan, nan)
  in
  let t1_peak which =
    let c = D.Sweep.drain_curve hf.iv which in
    Array.fold_left Float.max 0.0 c.D.Sweep.ys
  in
  let rows =
    [
      Report.row_f ~id ~metric:"Vth (HfO2), V" ~paper:hf.vth_paper ~measured:hf.vth_model ();
      Report.row_f ~id ~metric:"Vth (SiO2), V" ~paper:si.vth_paper ~measured:si.vth_model ();
      Report.row_f ~id ~metric:"Ion/Ioff (HfO2)" ~paper:hf.ratio_paper ~measured:hf.ratio ();
      Report.row_f ~id ~metric:"Ion/Ioff (SiO2)" ~paper:si.ratio_paper ~measured:si.ratio ();
      Report.row_f ~id ~metric:"peak Ids @ Vds=10mV (HfO2), A" ~paper:peak_low
        ~measured:(t1_peak `Vgs_low) ();
      Report.row_f ~id ~metric:"peak Ids @ Vds=5V (HfO2), A" ~paper:peak_high
        ~measured:(t1_peak `Vgs_high) ();
    ]
  in
  {
    Report.title =
      Printf.sprintf "%s: %s device I-V (DSSS case)" id (D.Geometry.shape_name shape);
    rows;
    body = "T1 drain current, HfO2 gate:\n" ^ sample_table hf.iv;
  }
