let reports () =
  [
    Exp_table1.report ();
    Exp_lattice_function.report ();
    Exp_xor3.report ();
    Exp_table2.report ();
    Exp_cases.report ();
    Exp_iv.report Lattice_device.Geometry.Square;
    Exp_iv.report Lattice_device.Geometry.Cross;
    Exp_iv.report Lattice_device.Geometry.Junctionless;
    Exp_field.report ();
    Exp_fit.report ();
    Exp_transient.report ();
    Exp_series.report ();
    Exp_complementary.report ();
    Exp_frequency.report ();
    Exp_defects.report ();
  ]

let print_all () =
  List.iter (fun r -> print_string (Report.render r); print_newline ()) (reports ())
