module S = Lattice_synthesis
module Fc = Lattice_flow.Fault_campaign
module Defects = Lattice_spice.Defects

let default_classes = [ Defects.Opens; Defects.Shorts ]

let run ?engine ?(classes = default_classes) () =
  let options = { Fc.default_options with Fc.classes; attempt_repair = false } in
  Fc.run ?engine ~options S.Library.xor3_3x3 ~target:S.Library.xor3

let report ?engine ?classes () =
  let r = run ?engine ?classes () in
  let n = Array.length r.Fc.samples in
  let pct k = 100.0 *. float_of_int k /. float_of_int n in
  let rows =
    [
      Report.row ~id:"SecVI" ~metric:"XOR3 3x3 single-defect samples" ~paper:"-"
        ~measured:(string_of_int n) ~note:"stuck-open + stuck-short universe" ();
      Report.row ~id:"SecVI" ~metric:"samples classified (no exceptions)" ~paper:"-"
        ~measured:
          (Printf.sprintf "%d"
             (r.Fc.counts.Fc.functional + r.Fc.counts.Fc.degraded + r.Fc.counts.Fc.faulty
            + r.Fc.counts.Fc.non_convergent))
        ();
      Report.row_f ~id:"SecVI" ~metric:"faulty fraction (%)" ~paper:Float.nan
        ~measured:(pct r.Fc.counts.Fc.faulty) ();
      Report.row_f ~id:"SecVI" ~metric:"test-set detection (%)" ~paper:Float.nan
        ~measured:(pct r.Fc.detected)
        ~note:"circuit-level defects caught by the logical test set" ();
      Report.row ~id:"SecVI" ~metric:"logical test-set size" ~paper:"-"
        ~measured:(string_of_int (List.length r.Fc.test_set)) ();
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "defect                    class           v_low     v_high    mism  newton\n";
  Array.iter
    (fun (s : Fc.sample) ->
      let name = String.concat " + " (List.map Defects.name s.Fc.defects) in
      Buffer.add_string buf
        (Printf.sprintf "%-25s %-14s %8.3f %9.3f %5d %7d\n" name
           (Fc.classification_name s.Fc.classification)
           s.Fc.worst_v_low
           (if Float.is_finite s.Fc.worst_v_high then s.Fc.worst_v_high else Float.nan)
           (List.length s.Fc.mismatches) s.Fc.newton_iterations))
    r.Fc.samples;
  Buffer.add_string buf
    (Printf.sprintf
       "\nclasses: %d functional, %d degraded, %d faulty, %d non-convergent; %d Newton iterations total\n"
       r.Fc.counts.Fc.functional r.Fc.counts.Fc.degraded r.Fc.counts.Fc.faulty
       r.Fc.counts.Fc.non_convergent r.Fc.total_newton);
  {
    Report.title = "Defect campaign: XOR3 3x3 under circuit-level stuck defects";
    rows;
    body = Buffer.contents buf;
  }
