(** Experiment T1 — paper Table I: number of products of the m x n lattice
    function. *)

type result = {
  max_dim : int;
  mismatches : (int * int * int * int) list;  (** rows, cols, got, want *)
  table_text : string;
}

(** [run ?max_dim ()] recomputes Table I up to [max_dim] (default 8, full
    paper table with [max_dim:9] or the [FTL_TABLE1_FULL] environment
    variable). Counting runs on the path-family ZDD, so [max_dim] may
    extend past the published table up to 12; entries beyond 9 are
    printed but have no paper value to compare against. *)
val run : ?max_dim:int -> unit -> result

val report : ?max_dim:int -> unit -> Report.t
