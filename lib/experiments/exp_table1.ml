module Table1 = Lattice_core.Table1

type result = {
  max_dim : int;
  mismatches : (int * int * int * int) list;
  table_text : string;
}

let default_max_dim () =
  match Sys.getenv_opt "FTL_TABLE1_FULL" with Some ("1" | "true") -> 9 | Some _ | None -> 8

let run ?max_dim () =
  let max_dim = match max_dim with Some m -> m | None -> default_max_dim () in
  let max_dim = Int.max 2 (Int.min 12 max_dim) in
  let mismatches = ref [] in
  (* entries past the published 9 x 9 are computed but have no paper
     reference to compare against *)
  let cmp_dim = Int.min 9 max_dim in
  for m = 2 to cmp_dim do
    for n = 2 to cmp_dim do
      let got = Table1.count ~rows:m ~cols:n in
      let want = Table1.paper_value ~rows:m ~cols:n in
      if got <> want then mismatches := (m, n, got, want) :: !mismatches
    done
  done;
  {
    max_dim;
    mismatches = List.rev !mismatches;
    table_text = Table1.render ~max_dim ~compute:true ();
  }

let report ?max_dim () =
  let r = run ?max_dim () in
  let cells =
    let d = Int.min 9 r.max_dim in
    (d - 1) * (d - 1)
  in
  let rows =
    [
      Report.row ~id:"TableI" ~metric:(Printf.sprintf "matching cells (of %d checked)" cells)
        ~paper:(string_of_int cells)
        ~measured:(string_of_int (cells - List.length r.mismatches))
        ~note:(if r.max_dim < 9 then "set FTL_TABLE1_FULL=1 for the full 9x9 table" else "full table")
        ();
    ]
  in
  {
    Report.title = "Table I: products of the m x n lattice function";
    rows;
    body = r.table_text;
  }
