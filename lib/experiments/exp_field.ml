module D = Lattice_device

type result = {
  square : D.Field2d.result;
  cross : D.Field2d.result;
  junctionless : D.Field2d.result;
  cross_more_uniform : bool;
}

let solve_shape ?n shape =
  let v = D.Presets.find ~shape ~dielectric:D.Material.HfO2 in
  D.Field2d.solve ?n v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0

let run ?n () =
  let square = solve_shape ?n D.Geometry.Square in
  let cross = solve_shape ?n D.Geometry.Cross in
  let junctionless = solve_shape ?n D.Geometry.Junctionless in
  {
    square;
    cross;
    junctionless;
    cross_more_uniform = cross.D.Field2d.source_share_cv < square.D.Field2d.source_share_cv;
  }

let describe name (r : D.Field2d.result) =
  let solver =
    match r.D.Field2d.solver_used with
    | D.Field2d.Multigrid ->
      Printf.sprintf "MG %d iters, %d V-cycles" r.D.Field2d.cg_iterations r.D.Field2d.v_cycles
    | D.Field2d.Cg | D.Field2d.Auto -> Printf.sprintf "CG %d iters" r.D.Field2d.cg_iterations
  in
  let sigma =
    let mn = Array.fold_left Float.min infinity r.D.Field2d.sigma in
    let mx = Array.fold_left Float.max neg_infinity r.D.Field2d.sigma in
    let contrast = if mn > 0.0 then Float.log10 (mx /. mn) else infinity in
    Printf.sprintf "sigma %.2g..%.2g S/m, %.1f decades" mn mx contrast
  in
  Printf.sprintf
    "%-13s terminals [%8.3g %8.3g %8.3g %8.3g]  source-split CV %.3f  |J| CV %.3f  (%s; %s)"
    name r.D.Field2d.terminal_currents.(0) r.D.Field2d.terminal_currents.(1)
    r.D.Field2d.terminal_currents.(2) r.D.Field2d.terminal_currents.(3)
    r.D.Field2d.source_share_cv r.D.Field2d.channel_cv solver sigma

let report ?n () =
  let r = run ?n () in
  let rows =
    [
      Report.row ~id:"Fig8" ~metric:"cross profile more uniform than square" ~paper:"yes"
        ~measured:(if r.cross_more_uniform then "yes" else "NO")
        ~note:"per-source current-split CV" ();
      Report.row_f ~id:"Fig8" ~metric:"square source-split CV" ~paper:nan
        ~measured:r.square.D.Field2d.source_share_cv ();
      Report.row_f ~id:"Fig8" ~metric:"cross source-split CV" ~paper:nan
        ~measured:r.cross.D.Field2d.source_share_cv ();
    ]
  in
  let body =
    String.concat "\n"
      [
        describe "square" r.square;
        describe "cross" r.cross;
        describe "junctionless" r.junctionless;
        "";
        "cross |J| map (DSSS, drain at top):";
        D.Field2d.ascii r.cross ~width:24;
      ]
  in
  { Report.title = "Fig 8: current-density profiles (2-D field solve)"; rows; body }
