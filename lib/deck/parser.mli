(** Recursive-descent SPICE deck parser.

    Grammar subset (case-insensitive keywords, case-preserving names):
    element cards [R]/[C]/[V]/[I]/[M]/[X], sources [DC]/[PULSE]/[SIN]/
    [PWL] with an optional unit [AC 1] tag, [.model] NMOS/PMOS level 1
    and 3, hierarchical [.subckt]/[.ends] with [{param}] substitution
    flattened at parse time (instance [Xfoo] prefixes inner element
    names with [foo.] and internal nodes with [foo.]), analyses
    [.op]/[.dc]/[.tran]/[.ac dec], probes [.print]/[.probe], and
    [.end]. Everything else is a structured error.

    Validation is strict and total: card arity, positive R/C values,
    known models/subcircuits/parameters, probe and sweep targets
    resolved against the elaborated netlist. Errors carry the 1-based
    line and column of the offending token; no exception ever escapes
    {!parse}. *)

val parse : string -> (Ast.deck, Ast.error) result
