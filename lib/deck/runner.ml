module Sp = Lattice_spice
module N = Sp.Netlist
module E = Lattice_engine.Engine

type limits = { max_sweep_points : int; max_tran_steps : int }

let default_limits = { max_sweep_points = 10_000; max_tran_steps = 2_000_000 }

type analysis_result =
  | Op_result of { strategy : string; rows : (string * float) list }
  | Dc_result of {
      source : string;
      probes : string list;
      rows : (float * (string * float) list) list;
    }
  | Tran_result of {
      times : float array;
      nodes : (string * float array) list;
      currents : (string * float array) list;
      newton_iterations : int;
    }
  | Ac_result of {
      source : string;
      output : string;
      dc_gain : float;
      f_3db : float option;
      points : (float * float * float) list;  (* freq, |H|, phase deg *)
    }

type t = {
  title : string;
  digest : string;
  results : (Ast.analysis * analysis_result) list;
}

exception Run_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Run_error msg)) fmt

let is_ground name = name = "0" || String.lowercase_ascii name = "gnd"

let run ~engine ?cancel ?(smoke = false) ?(limits = default_limits) (deck : Ast.deck) =
  let net = deck.Ast.netlist in
  let v_probes =
    List.filter_map (function Ast.Vprobe n -> Some n | Ast.Iprobe _ -> None)
      deck.Ast.prints
  in
  let i_probes =
    List.filter_map (function Ast.Iprobe n -> Some n | Ast.Vprobe _ -> None)
      deck.Ast.prints
  in
  (* Probed nodes, or every non-ground node when the deck has no .print. *)
  let watch_nodes =
    let names =
      if v_probes <> [] then v_probes else Array.to_list (N.all_node_names net)
    in
    List.filter (fun n -> not (is_ground n)) names
  in
  let node_of name =
    match N.find_node net name with
    | Some n -> n
    | None -> fail "unknown node %S" name
  in
  let read_rows x = List.map (fun name -> (name, Sp.Mna.voltage x (node_of name))) in
  let run_op () =
    match E.dc_op engine ?cancel net with
    | Ok (x, diag) ->
      Op_result
        {
          strategy = Sp.Dcop.strategy_name diag.Sp.Dcop.strategy;
          rows = read_rows x watch_nodes;
        }
    | Error f -> fail "operating point failed: %s" (Sp.Dcop.pp_failure f)
  in
  let run_dc source start stop step =
    let n = int_of_float (Float.floor (((stop -. start) /. step) +. 1e-9)) + 1 in
    let n = if smoke then Int.min n 5 else n in
    if n > limits.max_sweep_points then
      fail "dc sweep has %d points (limit %d)" n limits.max_sweep_points;
    let rows =
      List.init n (fun i ->
          let v = start +. (step *. float_of_int i) in
          let net_i = Deck.clone_with_wave net ~vsource:source ~wave:(Sp.Source.Dc v) in
          match E.dc_op engine ?cancel net_i with
          | Ok (x, _) ->
            ( v,
              List.map
                (fun name ->
                  (name, Sp.Mna.voltage x (Option.get (N.find_node net_i name))))
                watch_nodes )
          | Error f -> fail "dc sweep at %g V: %s" v (Sp.Dcop.pp_failure f))
    in
    Dc_result { source; probes = watch_nodes; rows }
  in
  let run_tran step t_stop =
    let t_stop = if smoke then Float.min t_stop (step *. 50.0) else t_stop in
    let nsteps = int_of_float (Float.ceil (t_stop /. step)) in
    if nsteps > limits.max_tran_steps then
      fail "transient has %d steps (limit %d)" nsteps limits.max_tran_steps;
    match
      Sp.Transient.run_diag ?cancel net ~h:step ~t_stop ~record:watch_nodes
        ~record_currents:i_probes ()
    with
    | Ok r ->
      let combine names arrays =
        List.init (Array.length names) (fun i -> (names.(i), arrays.(i)))
      in
      Tran_result
        {
          times = r.Sp.Transient.times;
          nodes = combine r.Sp.Transient.node_names r.Sp.Transient.voltages;
          currents = combine r.Sp.Transient.current_names r.Sp.Transient.currents;
          newton_iterations = r.Sp.Transient.newton_iterations_total;
        }
    | Error f ->
      fail "transient failed at t=%g (dt=%g): %s" f.Sp.Transient.at_time
        f.Sp.Transient.dt
        (Sp.Dcop.pp_failure f.Sp.Transient.dc_failure)
  in
  let run_ac points_per_decade f_start f_stop =
    let source =
      match deck.Ast.ac_source with
      | Some s -> s
      | None -> fail ".ac without an AC source (add 'AC 1' to a V card)"
    in
    let output =
      match List.filter (fun n -> not (is_ground n)) v_probes with
      | o :: _ -> o
      | [] -> fail ".ac needs a v(node) probe to select the output"
    in
    let points_per_decade = if smoke then Int.min points_per_decade 3 else points_per_decade in
    let response =
      try Sp.Ac.sweep net ~source ~output ~f_start ~f_stop ~points_per_decade with
      | Invalid_argument msg -> fail "ac sweep: %s" msg
      | Sp.Dcop.Convergence_failure msg -> fail "ac operating point failed: %s" msg
    in
    Ac_result
      {
        source;
        output;
        dc_gain = response.Sp.Ac.dc_gain;
        f_3db = Sp.Ac.f_3db response;
        points =
          List.map
            (fun (p : Sp.Ac.point) -> (p.freq_hz, p.magnitude, p.phase_deg))
            response.Sp.Ac.points;
      }
  in
  try
    if N.elements net = [] then fail "deck has no elements";
    let analyses = if deck.Ast.analyses = [] then [ Ast.Op ] else deck.Ast.analyses in
    let results =
      List.map
        (fun a ->
          let r =
            match a with
            | Ast.Op -> run_op ()
            | Ast.Dc_sweep { source; start; stop; step } -> run_dc source start stop step
            | Ast.Tran { step; t_stop } -> run_tran step t_stop
            | Ast.Ac { points_per_decade; f_start; f_stop } ->
              run_ac points_per_decade f_start f_stop
          in
          (a, r))
        analyses
    in
    Ok { title = deck.Ast.title; digest = N.structural_digest net; results }
  with
  | Run_error msg -> Error msg
  | Invalid_argument msg | Failure msg -> Error ("internal: " ^ msg)

(* Deterministic human-readable transcript shared by `ftl run` and the
   examples; row caps keep large sweeps readable. *)
let render (r : t) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "deck: %s\n" r.title;
  out "digest: %s\n" r.digest;
  List.iter
    (fun (_, res) ->
      match res with
      | Op_result { strategy; rows } ->
        out "[op] converged via %s\n" strategy;
        let shown = List.filteri (fun i _ -> i < 24) rows in
        List.iter (fun (name, v) -> out "  v(%s) = %.6g\n" name v) shown;
        let extra = List.length rows - List.length shown in
        if extra > 0 then out "  ... (%d more nodes)\n" extra
      | Dc_result { source; probes; rows } ->
        out "[dc] sweep V%s, %d points: %s\n" source (List.length rows)
          (String.concat " " (List.map (fun p -> "v(" ^ p ^ ")") probes));
        let shown = List.filteri (fun i _ -> i < 20) rows in
        List.iter
          (fun (v, cols) ->
            out "  %-10.6g" v;
            List.iter (fun (_, x) -> out " %12.6g" x) cols;
            out "\n")
          shown;
        let extra = List.length rows - List.length shown in
        if extra > 0 then out "  ... (%d more points)\n" extra
      | Tran_result { times; nodes; currents; newton_iterations } ->
        out "[tran] %d samples to t=%.6g, %d newton iters\n" (Array.length times)
          (if Array.length times = 0 then 0.0 else times.(Array.length times - 1))
          newton_iterations;
        List.iter
          (fun (name, samples) ->
            let mn = Array.fold_left Float.min Float.infinity samples in
            let mx = Array.fold_left Float.max Float.neg_infinity samples in
            out "  v(%s): min=%.6g max=%.6g final=%.6g\n" name mn mx
              samples.(Array.length samples - 1))
          nodes;
        List.iter
          (fun (name, samples) ->
            out "  i(V%s): final=%.6g\n" name samples.(Array.length samples - 1))
          currents
      | Ac_result { source; output; dc_gain; f_3db; points } ->
        out "[ac] V%s -> v(%s), %d points\n" source output (List.length points);
        out "  dc gain = %.6g\n" dc_gain;
        (match f_3db with
         | Some f -> out "  f_3db = %.6g Hz\n" f
         | None -> out "  f_3db = beyond sweep\n"))
    r.results;
  Buffer.contents buf
