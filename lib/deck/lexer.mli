(** SPICE deck lexer: physical lines to logical token lines.

    Handles the classic surface syntax — the mandatory title line,
    [*] comment lines, [$]/[;] inline comments, [+] continuation lines,
    comma-or-whitespace token separation — and splits [(], [)] and [=]
    into their own tokens so ["PULSE(0 1.2"] and ["W=700n"] need no
    lookahead in the parser. Tokens keep raw text (keyword matching is
    the parser's, case-insensitively; names keep their case) and the
    1-based physical line/column they started at. *)

type token = { text : string; line : int; col : int }

(** [lex src] returns the title (first line, leading [*] stripped) and
    the logical card lines in order, each a non-empty token list.
    Errors: an empty input, or a [+] continuation with no card before
    it. Never raises. *)
val lex : string -> (string * token list list, Ast.error) result
