(** SPICE deck interop facade: parse deck text to an elaborated
    {!Lattice_spice.Netlist.t} plus analyses, and emit canonical deck
    text back. See {!Parser} for the accepted grammar subset and
    {!Emitter} for the canonical form and its roundtrip guarantees;
    {!Runner} executes a parsed deck's analyses through the engine. *)

type probe = Ast.probe = Vprobe of string | Iprobe of string

type analysis = Ast.analysis =
  | Op
  | Dc_sweep of { source : string; start : float; stop : float; step : float }
  | Tran of { step : float; t_stop : float }
  | Ac of { points_per_decade : int; f_start : float; f_stop : float }

type t = Ast.deck = {
  title : string;
  netlist : Lattice_spice.Netlist.t;
  analyses : analysis list;
  prints : probe list;
  ac_source : string option;
}

type error = Ast.error = { line : int; col : int; msg : string }

(** [error_to_string ?file e] renders ["file:line:col: msg"]. *)
val error_to_string : ?file:string -> error -> string

(** [parse src] — see {!Parser.parse}. Never raises. *)
val parse : string -> (t, error) result

(** [emit d] — canonical deck text, see {!Emitter.emit}. *)
val emit : t -> string

(** [of_netlist ~title netlist] wraps a programmatically built circuit
    as a deck ready for {!emit} — the [ftl export] path. *)
val of_netlist :
  title:string ->
  ?analyses:analysis list ->
  ?prints:probe list ->
  ?ac_source:string ->
  Lattice_spice.Netlist.t ->
  t

(** [clone_with_wave net ~vsource ~wave] rebuilds [net] (same node
    names and ids, same element order) with the wave of the voltage
    source named [vsource] replaced — how {!Runner} realizes each
    [.dc] sweep point as a distinct cacheable circuit. *)
val clone_with_wave :
  Lattice_spice.Netlist.t ->
  vsource:string ->
  wave:Lattice_spice.Source.t ->
  Lattice_spice.Netlist.t
