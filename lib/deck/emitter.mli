(** Deterministic canonical deck emitter.

    Canonical form, in order: the [* title] line; [.MODEL] cards named
    [NMOD1..] in first-use order (deduplicated on electrical parameters
    — instance W/L stay on the M card); elements in netlist insertion
    order, card name = type letter + element name, every value rendered
    by {!Lattice_spice.Units.print_spice} (shortest exact round-trip,
    so no precision is lost); analyses in deck order; one [.PRINT] line;
    [.END]. MOSFET bulk is always ["0"].

    Stability property (the CedarSim roundtrip contract): for any deck
    [d] accepted by {!Parser.parse},
    [emit (parse (emit (parse d))) = emit (parse d)] byte for byte, and
    parsing an emitted deck preserves
    {!Lattice_spice.Netlist.structural_digest}. *)

val emit : Ast.deck -> string
