type token = { text : string; line : int; col : int }

exception Lex_error of Ast.error

let err line col fmt =
  Printf.ksprintf (fun msg -> raise (Lex_error { Ast.line; col; msg })) fmt

let is_space c = c = ' ' || c = '\t' || c = ','
let is_punct c = c = '(' || c = ')' || c = '='
let is_delim c = is_space c || is_punct c

(* Inline comments run from '$' or ';' to end of line. *)
let strip_inline_comment s =
  match String.index_opt s '$', String.index_opt s ';' with
  | None, None -> s
  | Some i, None | None, Some i -> String.sub s 0 i
  | Some i, Some j -> String.sub s 0 (Int.min i j)

let first_nonblank s =
  let n = String.length s in
  let rec go i = if i >= n then None else if s.[i] = ' ' || s.[i] = '\t' then go (i + 1) else Some i in
  go 0

let tokenize line_no s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if is_space c then incr i
    else if is_punct c then begin
      toks := { text = String.make 1 c; line = line_no; col = !i + 1 } :: !toks;
      incr i
    end
    else begin
      let start = !i in
      while !i < n && not (is_delim s.[!i]) do incr i done;
      toks := { text = String.sub s start (!i - start); line = line_no; col = start + 1 }
              :: !toks
    end
  done;
  List.rev !toks

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let title_of_line s =
  let s = String.trim s in
  let s = if String.length s > 0 && s.[0] = '*' then String.sub s 1 (String.length s - 1) else s in
  String.trim s

(* Logical lines: physical lines with comments dropped and '+'
   continuations spliced onto their predecessor. Tokens keep the
   physical line/column they came from, so errors inside a continuation
   point at the right place. *)
let lex src =
  match String.split_on_char '\n' src with
  | [] | [ "" ] -> Error { Ast.line = 1; col = 1; msg = "empty deck (first line is the title)" }
  | title_line :: rest ->
    (try
       let title = title_of_line (strip_cr title_line) in
       let logical = ref [] in  (* each entry: token list in reverse order *)
       List.iteri
         (fun i raw ->
           let line_no = i + 2 in
           let s = strip_cr raw in
           match first_nonblank s with
           | None -> ()
           | Some fb when s.[fb] = '*' -> ()
           | Some fb when s.[fb] = '+' ->
             let body = strip_inline_comment s in
             (* the '+' itself is a splice marker, not a token *)
             let body = Bytes.of_string body in
             if fb < Bytes.length body then Bytes.set body fb ' ';
             let toks = tokenize line_no (Bytes.to_string body) in
             (match !logical with
              | [] -> err line_no (fb + 1) "continuation line with nothing to continue"
              | prev :: others -> logical := List.rev_append toks prev :: others)
           | Some _ ->
             let toks = tokenize line_no (strip_inline_comment s) in
             if toks <> [] then logical := List.rev toks :: !logical)
         rest;
       Ok (title, List.rev_map List.rev !logical)
     with Lex_error e -> Error e)
