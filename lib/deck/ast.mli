(** Parsed-deck representation shared by the lexer, parser, emitter and
    runner. A deck is a {!Lattice_spice.Netlist.t} plus the analysis and
    probe cards that tell the engine what to do with it. *)

(** [Vprobe node] is a [v(node)] card; [Iprobe name] is [i(V<name>)] —
    the branch current of the voltage source whose {e element} name is
    [name] (card names carry the type letter, element names do not). *)
type probe = Vprobe of string | Iprobe of string

type analysis =
  | Op  (** [.op] *)
  | Dc_sweep of { source : string; start : float; stop : float; step : float }
      (** [.dc V<source> start stop step]; [source] is the swept voltage
          source's element name *)
  | Tran of { step : float; t_stop : float }  (** [.tran step tstop] *)
  | Ac of { points_per_decade : int; f_start : float; f_stop : float }
      (** [.ac dec n fstart fstop]; the excitation is the deck's
          [ac_source] *)

type deck = {
  title : string;  (** the deck's first line, leading [*] stripped *)
  netlist : Lattice_spice.Netlist.t;  (** fully elaborated (subckts flattened) *)
  analyses : analysis list;  (** in card order *)
  prints : probe list;  (** union of [.print]/[.probe] cards, in order *)
  ac_source : string option;
      (** element name of the voltage source carrying the [AC 1] token *)
}

type error = { line : int; col : int; msg : string }
(** Positions are 1-based and point into the deck {e source} text —
    continuation lines keep their own physical line numbers. *)

(** [error_to_string ?file e] renders ["file:line:col: msg"] — the
    compiler-style form CLI diagnostics use. *)
val error_to_string : ?file:string -> error -> string
