module Sp = Lattice_spice
module N = Sp.Netlist

type probe = Ast.probe = Vprobe of string | Iprobe of string

type analysis = Ast.analysis =
  | Op
  | Dc_sweep of { source : string; start : float; stop : float; step : float }
  | Tran of { step : float; t_stop : float }
  | Ac of { points_per_decade : int; f_start : float; f_stop : float }

type t = Ast.deck = {
  title : string;
  netlist : Sp.Netlist.t;
  analyses : analysis list;
  prints : probe list;
  ac_source : string option;
}

type error = Ast.error = { line : int; col : int; msg : string }

let error_to_string = Ast.error_to_string
let parse = Parser.parse
let emit = Emitter.emit

let of_netlist ~title ?(analyses = []) ?(prints = []) ?ac_source netlist =
  { title; netlist; analyses; prints; ac_source }

let clone_with_wave src ~vsource ~wave =
  let dst = N.create () in
  (* Recreate nodes in id order first so the clone's ids match [src]. *)
  Array.iter (fun name -> ignore (N.node dst name)) (N.all_node_names src);
  let conv n = if n = N.ground then N.ground else N.node dst (N.node_name src n) in
  List.iter
    (fun e ->
      match e with
      | N.Resistor { name; n1; n2; ohms } -> N.resistor dst name (conv n1) (conv n2) ohms
      | N.Capacitor { name; n1; n2; farads } ->
        N.capacitor dst name (conv n1) (conv n2) farads
      | N.Vsource { name; npos; nneg; wave = w; _ } ->
        N.vsource dst name (conv npos) (conv nneg) (if name = vsource then wave else w)
      | N.Isource { name; npos; nneg; wave = w } ->
        N.isource dst name (conv npos) (conv nneg) w
      | N.Mosfet { name; drain; gate; source; model } ->
        N.mosfet_model dst name ~drain:(conv drain) ~gate:(conv gate)
          ~source:(conv source) model)
    (N.elements src);
  dst
