module Sp = Lattice_spice
module N = Sp.Netlist
module M = Lattice_mosfet
module U = Sp.Units

(* Model cards describe the electrical parameters only; W/L live on the
   M card, so deduplication must ignore instance geometry. *)
let model_key (m : M.Model.t) =
  match m with
  | M.Model.L1 p -> (1, p.M.Level1.kp, p.M.Level1.vth, p.M.Level1.lambda, 0.0, 0.0)
  | M.Model.L3 p3 ->
    let p = p3.M.Level3.base in
    (3, p.M.Level1.kp, p.M.Level1.vth, p.M.Level1.lambda, p3.M.Level3.theta,
     p3.M.Level3.vc)

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) name

let wave_str ~ac wave =
  let v = U.print_spice in
  let base =
    match wave with
    | Sp.Source.Dc x -> Printf.sprintf "DC %s" (v x)
    | Sp.Source.Pulse { v1; v2; delay; rise; fall; width; period } ->
      Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (v v1) (v v2) (v delay) (v rise)
        (v fall) (v width) (v period)
    | Sp.Source.Sin { offset; amplitude; freq; delay; damping } ->
      Printf.sprintf "SIN(%s %s %s %s %s)" (v offset) (v amplitude) (v freq) (v delay)
        (v damping)
    | Sp.Source.Pwl points ->
      "PWL("
      ^ String.concat " " (List.map (fun (t, x) -> Printf.sprintf "%s %s" (v t) (v x)) points)
      ^ ")"
  in
  if ac then base ^ " AC 1" else base

let emit (deck : Ast.deck) =
  let net = deck.netlist in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "* %s\n" deck.title;
  let els = N.elements net in
  (* .MODEL cards first, named NMOD1.. in first-use order over the
     element list — deterministic, no Hashtbl iteration order. *)
  let model_names = Hashtbl.create 8 in
  let model_order = ref [] in
  List.iter
    (function
      | N.Mosfet { model; _ } ->
        let key = model_key model in
        if not (Hashtbl.mem model_names key) then begin
          Hashtbl.replace model_names key
            (Printf.sprintf "NMOD%d" (Hashtbl.length model_names + 1));
          model_order := model :: !model_order
        end
      | N.Resistor _ | N.Capacitor _ | N.Vsource _ | N.Isource _ -> ())
    els;
  List.iter
    (fun model ->
      let name = Hashtbl.find model_names (model_key model) in
      match model with
      | M.Model.L1 p ->
        out ".MODEL %s NMOS (LEVEL=1 KP=%s VTO=%s LAMBDA=%s)\n" name
          (U.print_spice p.M.Level1.kp) (U.print_spice p.M.Level1.vth)
          (U.print_spice p.M.Level1.lambda)
      | M.Model.L3 p3 ->
        let p = p3.M.Level3.base in
        out ".MODEL %s NMOS (LEVEL=3 KP=%s VTO=%s LAMBDA=%s THETA=%s VC=%s)\n" name
          (U.print_spice p.M.Level1.kp) (U.print_spice p.M.Level1.vth)
          (U.print_spice p.M.Level1.lambda) (U.print_spice p3.M.Level3.theta)
          (U.print_spice p3.M.Level3.vc))
    (List.rev !model_order);
  let node_str n = if n = N.ground then "0" else sanitize (N.node_name net n) in
  List.iter
    (fun e ->
      match e with
      | N.Resistor { name; n1; n2; ohms } ->
        out "R%s %s %s %s\n" (sanitize name) (node_str n1) (node_str n2)
          (U.print_spice ohms)
      | N.Capacitor { name; n1; n2; farads } ->
        out "C%s %s %s %s\n" (sanitize name) (node_str n1) (node_str n2)
          (U.print_spice farads)
      | N.Vsource { name; npos; nneg; wave; _ } ->
        out "V%s %s %s %s\n" (sanitize name) (node_str npos) (node_str nneg)
          (wave_str ~ac:(deck.ac_source = Some name) wave)
      | N.Isource { name; npos; nneg; wave } ->
        out "I%s %s %s %s\n" (sanitize name) (node_str npos) (node_str nneg)
          (wave_str ~ac:false wave)
      | N.Mosfet { name; drain; gate; source; model } ->
        let base =
          match model with
          | M.Model.L1 p -> p
          | M.Model.L3 p3 -> p3.M.Level3.base
        in
        out "M%s %s %s %s 0 %s W=%s L=%s\n" (sanitize name) (node_str drain)
          (node_str gate) (node_str source)
          (Hashtbl.find model_names (model_key model))
          (U.print_spice base.M.Level1.w) (U.print_spice base.M.Level1.l))
    els;
  List.iter
    (fun a ->
      match a with
      | Ast.Op -> out ".OP\n"
      | Ast.Dc_sweep { source; start; stop; step } ->
        out ".DC V%s %s %s %s\n" (sanitize source) (U.print_spice start)
          (U.print_spice stop) (U.print_spice step)
      | Ast.Tran { step; t_stop } ->
        out ".TRAN %s %s\n" (U.print_spice step) (U.print_spice t_stop)
      | Ast.Ac { points_per_decade; f_start; f_stop } ->
        out ".AC DEC %d %s %s\n" points_per_decade (U.print_spice f_start)
          (U.print_spice f_stop))
    deck.analyses;
  if deck.prints <> [] then begin
    out ".PRINT";
    List.iter
      (function
        | Ast.Vprobe node -> out " v(%s)" (sanitize node)
        | Ast.Iprobe src -> out " i(V%s)" (sanitize src))
      deck.prints;
    out "\n"
  end;
  out ".END\n";
  Buffer.contents buf
