type probe = Vprobe of string | Iprobe of string

type analysis =
  | Op
  | Dc_sweep of { source : string; start : float; stop : float; step : float }
  | Tran of { step : float; t_stop : float }
  | Ac of { points_per_decade : int; f_start : float; f_stop : float }

type deck = {
  title : string;
  netlist : Lattice_spice.Netlist.t;
  analyses : analysis list;
  prints : probe list;
  ac_source : string option;
}

type error = { line : int; col : int; msg : string }

let error_to_string ?file { line; col; msg } =
  match file with
  | Some f -> Printf.sprintf "%s:%d:%d: %s" f line col msg
  | None -> Printf.sprintf "%d:%d: %s" line col msg
