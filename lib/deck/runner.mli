(** Deck analysis runner: executes a parsed deck's analysis cards
    through the batch engine, so CLI and daemon share one code path.

    [.op] and every [.dc] sweep point go through
    {!Lattice_engine.Engine.dc_op} — memoized under the content key, so
    identical decks (or an exported deck re-run from text) hit the cache
    and the persistent store. [.tran] runs {!Lattice_spice.Transient},
    [.ac] runs {!Lattice_spice.Ac}. *)

type limits = { max_sweep_points : int; max_tran_steps : int }

val default_limits : limits
(** [{ max_sweep_points = 10_000; max_tran_steps = 2_000_000 }] —
    servers pass something tighter. *)

type analysis_result =
  | Op_result of { strategy : string; rows : (string * float) list }
      (** probed (or all) node voltages; [strategy] is the winning
          {!Lattice_spice.Dcop.strategy} name *)
  | Dc_result of {
      source : string;
      probes : string list;
      rows : (float * (string * float) list) list;
    }  (** one row per sweep value of [V<source>] *)
  | Tran_result of {
      times : float array;
      nodes : (string * float array) list;
      currents : (string * float array) list;
      newton_iterations : int;
    }
  | Ac_result of {
      source : string;
      output : string;
      dc_gain : float;
      f_3db : float option;
      points : (float * float * float) list;  (** (freq_hz, |H|, phase_deg) *)
    }

type t = {
  title : string;
  digest : string;  (** {!Lattice_spice.Netlist.structural_digest} of the deck *)
  results : (Ast.analysis * analysis_result) list;
}

(** [run ~engine deck] executes the deck's analyses in card order (a
    deck with none gets an implicit [.op]). [cancel] is threaded into
    every solve, so deadlines abort mid-analysis ({!Lattice_spice.Cancel.Cancelled}
    propagates — a deadline is not a failure). [smoke] caps the work for
    CI smoke runs (transients truncated to 50 steps, sweeps to 5 points,
    AC to 3 points/decade); [limits] rejects oversized analyses with a
    structured error instead of truncating. Convergence failures and
    limit violations return [Error msg]; no other exception escapes. *)
val run :
  engine:Lattice_engine.Engine.t ->
  ?cancel:Lattice_spice.Cancel.t ->
  ?smoke:bool ->
  ?limits:limits ->
  Ast.deck ->
  (t, string) result

(** [render r] is the deterministic human-readable transcript printed by
    [ftl run] and the examples (row-capped for large sweeps). *)
val render : t -> string
