module Sp = Lattice_spice
module N = Sp.Netlist
module M = Lattice_mosfet

exception Fail of Ast.error

let err line col fmt =
  Printf.ksprintf (fun msg -> raise (Fail { Ast.line; col; msg })) fmt

let err_tok (t : Lexer.token) fmt = err t.line t.col fmt
let lower = String.lowercase_ascii

(* ---------- values ---------- *)

(* A value token is either a SPICE number ("4.7k", "10pF") or a {param}
   reference resolved against the enclosing subcircuit instance. *)
let parse_value env (t : Lexer.token) =
  let s = t.text in
  let n = String.length s in
  if n >= 2 && s.[0] = '{' && s.[n - 1] = '}' then begin
    let name = lower (String.trim (String.sub s 1 (n - 2))) in
    match List.assoc_opt name env with
    | Some v -> v
    | None -> err_tok t "unknown parameter {%s}" name
  end
  else
    match Sp.Units.parse_spice s with
    | Some v -> v
    | None -> err_tok t "malformed value %S" s

let parse_positive env what t =
  let v = parse_value env t in
  if (not (Float.is_finite v)) || v <= 0.0 then
    err_tok t "%s must be positive and finite (got %s)" what t.Lexer.text;
  v

(* Split a token list into leading positional tokens and trailing
   name=value pairs (the first token followed by '=' starts the pairs). *)
let split_params toks =
  let rec pairs acc = function
    | [] -> List.rev acc
    | name :: { Lexer.text = "="; _ } :: value :: rest -> pairs ((name, value) :: acc) rest
    | (name : Lexer.token) :: { Lexer.text = "="; _ } :: [] ->
      err_tok name "missing value after '='"
    | t :: _ -> err_tok t "expected name=value"
  in
  let rec pos acc = function
    | a :: ({ Lexer.text = "="; _ } :: _ as rest) -> (List.rev acc, pairs [] (a :: rest))
    | a :: rest -> pos (a :: acc) rest
    | [] -> (List.rev acc, [])
  in
  pos [] toks

(* ---------- .model cards ---------- *)

type model_spec = {
  level : int;
  kp : float;
  vto : float;
  lambda : float;
  theta : float;
  vc : float option;  (* explicit VC=; otherwise derived from vmax *)
  vmax : float;
  def_w : float;
  def_l : float;
}

let default_model_spec =
  (* Berkeley SPICE level-1 defaults; W/L only apply when the M card
     gives no instance geometry. *)
  { level = 1; kp = 2e-5; vto = 0.0; lambda = 0.0; theta = 0.1; vc = None;
    vmax = 1e5; def_w = 100e-6; def_l = 100e-6 }

let parse_model models toks =
  match toks with
  | _dot :: name :: mtype :: param_toks ->
    (match lower mtype.Lexer.text with
     | "nmos" | "pmos" -> ()
     | other -> err_tok mtype "unsupported model type %S (NMOS and PMOS only)" other);
    let key = lower name.Lexer.text in
    if Hashtbl.mem models key then err_tok name "duplicate .model %s" name.Lexer.text;
    let param_toks =
      List.filter (fun (t : Lexer.token) -> t.text <> "(" && t.text <> ")") param_toks
    in
    let pos, pairs = split_params param_toks in
    (match pos with
     | [] -> ()
     | t :: _ -> err_tok t "expected name=value in .model parameters");
    let spec = ref default_model_spec in
    List.iter
      (fun ((pn : Lexer.token), pv) ->
        let v () = parse_value [] pv in
        match lower pn.text with
        | "level" ->
          let l = v () in
          if l <> 1.0 && l <> 3.0 then err_tok pv "only LEVEL=1 and LEVEL=3 are supported";
          spec := { !spec with level = int_of_float l }
        | "kp" -> spec := { !spec with kp = v () }
        | "vto" -> spec := { !spec with vto = v () }
        | "lambda" | "kappa" -> spec := { !spec with lambda = v () }
        | "theta" -> spec := { !spec with theta = v () }
        | "vc" -> spec := { !spec with vc = Some (v ()) }
        | "vmax" -> spec := { !spec with vmax = v () }
        | "w" -> spec := { !spec with def_w = parse_positive [] "model W" pv }
        | "l" -> spec := { !spec with def_l = parse_positive [] "model L" pv }
        | other -> err_tok pn "unsupported .model parameter %S" other)
      pairs;
    Hashtbl.replace models key !spec
  | _dot :: _ -> err_tok (List.hd toks) ".model syntax: .model NAME NMOS|PMOS (p=v ...)"
  | [] -> assert false

(* ---------- .subckt collection ---------- *)

type subckt = {
  pins : string list;  (* lowercased, matched case-insensitively *)
  defaults : (string * float) list;  (* lowercased parameter names *)
  body : Lexer.token list list;
}

let collect_subckt subckts header rest =
  match header with
  | sub_tok :: name :: arg_toks ->
    let key = lower name.Lexer.text in
    if Hashtbl.mem subckts key then err_tok name "duplicate .subckt %s" name.Lexer.text;
    let pin_toks, pairs = split_params arg_toks in
    let pins = List.map (fun (t : Lexer.token) -> lower t.text) pin_toks in
    let defaults =
      List.map (fun ((pn : Lexer.token), pv) -> (lower pn.text, parse_value [] pv)) pairs
    in
    let rec body acc = function
      | [] -> err_tok sub_tok "unterminated .subckt %s (missing .ends)" name.Lexer.text
      | ((t : Lexer.token) :: _) :: more when lower t.text = ".ends" -> (List.rev acc, more)
      | ((t : Lexer.token) :: _) :: _ when lower t.text = ".subckt" ->
        err_tok t "nested .subckt is not supported"
      | line :: more -> body (line :: acc) more
    in
    let body_lines, remaining = body [] rest in
    Hashtbl.replace subckts key { pins; defaults; body = body_lines };
    remaining
  | _ -> err_tok (List.hd header) ".subckt syntax: .subckt NAME pin... [p=v ...]"

(* First pass: pull .model and .subckt definitions out (both have global
   scope, whatever their position), stop at .end, keep everything else
   in order for elaboration. *)
let scan_cards lines =
  let models = Hashtbl.create 8 in
  let subckts = Hashtbl.create 8 in
  let cards = ref [] in
  let rec go = function
    | [] -> ()
    | ((tok0 : Lexer.token) :: _ as toks) :: rest ->
      (match lower tok0.text with
       | ".end" -> ()
       | ".ends" -> err_tok tok0 ".ends without a matching .subckt"
       | ".model" ->
         parse_model models toks;
         go rest
       | ".subckt" -> go (collect_subckt subckts toks rest)
       | _ ->
         cards := toks :: !cards;
         go rest)
    | [] :: _ -> assert false
  in
  go lines;
  (models, subckts, List.rev !cards)

(* ---------- sources ---------- *)

let parse_ac env = function
  | [] -> false
  | (t : Lexer.token) :: rest when lower t.text = "ac" ->
    (match rest with
     | [] -> true
     | [ m ] ->
       let v = parse_value env m in
       if v <> 1.0 then err_tok m "only unit AC magnitude is supported (got %s)" m.Lexer.text;
       true
     | _ :: extra :: _ -> err_tok (extra : Lexer.token) "unexpected token after AC magnitude")
  | (t : Lexer.token) :: _ -> err_tok t "unexpected token %S after source value" t.text

let paren_args env (kw : Lexer.token) toks =
  match toks with
  | { Lexer.text = "("; _ } :: rest ->
    let rec go acc = function
      | [] -> err_tok kw "missing ')' in %s(...)" (String.uppercase_ascii kw.text)
      | { Lexer.text = ")"; _ } :: more -> (List.rev acc, more)
      | t :: more -> go (parse_value env t :: acc) more
    in
    go [] rest
  | (t : Lexer.token) :: _ -> err_tok t "expected '(' after %s" (String.uppercase_ascii kw.text)
  | [] -> err_tok kw "expected '(' after %s" (String.uppercase_ascii kw.text)

let parse_source env toks (head : Lexer.token) =
  match toks with
  | [] -> err_tok head "source card is missing its value"
  | (t : Lexer.token) :: rest ->
    (match lower t.text with
     | "dc" ->
       (match rest with
        | v :: more -> (Sp.Source.Dc (parse_value env v), parse_ac env more)
        | [] -> err_tok t "DC needs a value")
     | "pulse" ->
       let args, more = paren_args env t rest in
       (match args with
        | [ v1; v2; delay; rise; fall; width; period ] ->
          (Sp.Source.Pulse { v1; v2; delay; rise; fall; width; period }, parse_ac env more)
        | _ ->
          err_tok t "PULSE needs 7 arguments (v1 v2 td tr tf pw per), got %d"
            (List.length args))
     | "sin" ->
       let args, more = paren_args env t rest in
       let wave =
         match args with
         | [ offset; amplitude; freq ] ->
           Sp.Source.Sin { offset; amplitude; freq; delay = 0.0; damping = 0.0 }
         | [ offset; amplitude; freq; delay ] ->
           Sp.Source.Sin { offset; amplitude; freq; delay; damping = 0.0 }
         | [ offset; amplitude; freq; delay; damping ] ->
           Sp.Source.Sin { offset; amplitude; freq; delay; damping }
         | _ ->
           err_tok t "SIN needs 3 to 5 arguments (vo va freq [td [theta]]), got %d"
             (List.length args)
       in
       (wave, parse_ac env more)
     | "pwl" ->
       let args, more = paren_args env t rest in
       if args = [] || List.length args mod 2 <> 0 then
         err_tok t "PWL needs a positive, even number of values (t v pairs)";
       let rec pair = function
         | [] -> []
         | a :: b :: rest -> (a, b) :: pair rest
         | [ _ ] -> assert false
       in
       (Sp.Source.Pwl (pair args), parse_ac env more)
     | _ -> (Sp.Source.Dc (parse_value env t), parse_ac env rest))

(* ---------- elaboration ---------- *)

let parse_lines title lines =
  let models, subckts, cards = scan_cards lines in
  let net = N.create () in
  let used = Hashtbl.create 64 in
  let ac_source = ref None in
  let analysis_cards = ref [] in
  let print_cards = ref [] in
  let resolve_top (t : Lexer.token) =
    let s = t.text in
    if s = "0" || lower s = "gnd" then N.ground else N.node net s
  in
  let elem_name (head : Lexer.token) ~prefix =
    if String.length head.text < 2 then
      err_tok head "element card needs a name after the type letter";
    let full = prefix ^ String.sub head.text 1 (String.length head.text - 1) in
    let key =
      Printf.sprintf "%c:%s" (Char.lowercase_ascii head.text.[0]) (lower full)
    in
    if Hashtbl.mem used key then
      err_tok head "duplicate element name %c%s"
        (Char.uppercase_ascii head.text.[0]) full;
    Hashtbl.replace used key ();
    full
  in
  let rec elab ~prefix ~resolve ~env ~depth toks =
    let head = List.hd toks and args = List.tl toks in
    match Char.lowercase_ascii head.Lexer.text.[0] with
    | 'r' ->
      let full = elem_name head ~prefix in
      (match args with
       | [ n1; n2; v ] ->
         let ohms = parse_positive env "resistance" v in
         N.resistor net full (resolve n1) (resolve n2) ohms
       | _ -> err_tok head "R card syntax: R<name> n1 n2 value")
    | 'c' ->
      let full = elem_name head ~prefix in
      (match args with
       | [ n1; n2; v ] ->
         let farads = parse_positive env "capacitance" v in
         N.capacitor net full (resolve n1) (resolve n2) farads
       | _ -> err_tok head "C card syntax: C<name> n1 n2 value")
    | ('v' | 'i') as kind ->
      let full = elem_name head ~prefix in
      (match args with
       | np :: nn :: src_toks ->
         let wave, ac = parse_source env src_toks head in
         if ac then begin
           if kind = 'i' then
             err_tok head "AC excitation is only supported on V sources";
           match !ac_source with
           | Some other -> err_tok head "multiple AC sources (already on V%s)" other
           | None -> ac_source := Some full
         end;
         if kind = 'v' then N.vsource net full (resolve np) (resolve nn) wave
         else N.isource net full (resolve np) (resolve nn) wave
       | _ ->
         err_tok head "%c card syntax: %c<name> n+ n- <source>"
           (Char.uppercase_ascii kind) (Char.uppercase_ascii kind))
    | 'm' ->
      let full = elem_name head ~prefix in
      (match args with
       | d :: g :: s :: (b : Lexer.token) :: (model_tok : Lexer.token) :: param_toks ->
         if not (b.text = "0" || lower b.text = "gnd") then
           err_tok b "only grounded bulk (0) is supported";
         let spec =
           match Hashtbl.find_opt models (lower model_tok.text) with
           | Some spec -> spec
           | None -> err_tok model_tok "unknown model %S" model_tok.text
         in
         let pos, pairs = split_params param_toks in
         (match pos with
          | [] -> ()
          | t :: _ -> err_tok t "expected name=value after the model name");
         let w = ref spec.def_w and l = ref spec.def_l in
         List.iter
           (fun ((pn : Lexer.token), pv) ->
             match lower pn.text with
             | "w" -> w := parse_positive env "W" pv
             | "l" -> l := parse_positive env "L" pv
             | other -> err_tok pn "unsupported M instance parameter %S (W and L only)" other)
           pairs;
         let base =
           { M.Level1.kp = spec.kp; vth = spec.vto; lambda = spec.lambda; w = !w; l = !l }
         in
         let model =
           if spec.level = 1 then M.Model.L1 base
           else
             match spec.vc with
             | Some vc -> M.Model.L3 { M.Level3.base; theta = spec.theta; vc }
             | None -> M.Model.L3 (M.Level3.of_level1 ~theta:spec.theta ~vmax:spec.vmax base)
         in
         N.mosfet_model net full ~drain:(resolve d) ~gate:(resolve g) ~source:(resolve s)
           model
       | _ -> err_tok head "M card syntax: M<name> d g s b model [W=v] [L=v]")
    | 'x' ->
      let full = elem_name head ~prefix in
      let pos, param_toks = split_params args in
      (match List.rev pos with
       | [] -> err_tok head "X card syntax: X<name> node... subckt [p=v ...]"
       | (sub_tok : Lexer.token) :: rev_nodes ->
         let node_toks = List.rev rev_nodes in
         let sub =
           match Hashtbl.find_opt subckts (lower sub_tok.text) with
           | Some sub -> sub
           | None -> err_tok sub_tok "unknown subcircuit %S" sub_tok.text
         in
         if List.length node_toks <> List.length sub.pins then
           err_tok sub_tok "subcircuit %s expects %d pins, got %d" sub_tok.text
             (List.length sub.pins) (List.length node_toks);
         if depth >= 32 then
           err_tok head "subcircuit nesting too deep (recursive definition?)";
         let outer_nodes = List.map resolve node_toks in
         let pin_map = List.combine sub.pins outer_nodes in
         let given =
           List.map
             (fun ((pn : Lexer.token), pv) ->
               let name = lower pn.text in
               if not (List.mem_assoc name sub.defaults) then
                 err_tok pn "unknown parameter %S for subcircuit %s" pn.text sub_tok.text;
               (name, parse_value env pv))
             param_toks
         in
         let env' =
           List.map
             (fun (name, default) ->
               (name, Option.value (List.assoc_opt name given) ~default))
             sub.defaults
         in
         let inst_prefix = full ^ "." in
         let resolve' (t : Lexer.token) =
           let s = t.text in
           if s = "0" || lower s = "gnd" then N.ground
           else
             match List.assoc_opt (lower s) pin_map with
             | Some n -> n
             | None -> N.node net (inst_prefix ^ s)
         in
         List.iter
           (fun body_toks ->
             elab ~prefix:inst_prefix ~resolve:resolve' ~env:env' ~depth:(depth + 1)
               body_toks)
           sub.body)
    | _ ->
      err_tok head "unsupported card %S (element cards are R C V I M X)" head.Lexer.text
  in
  List.iter
    (fun toks ->
      let head : Lexer.token = List.hd toks in
      let t = lower head.text in
      if String.length t > 0 && t.[0] = '.' then
        match t with
        | ".op" | ".dc" | ".tran" | ".ac" -> analysis_cards := toks :: !analysis_cards
        | ".print" | ".probe" -> print_cards := toks :: !print_cards
        | _ -> err_tok head "unknown card %S" head.text
      else elab ~prefix:"" ~resolve:resolve_top ~env:[] ~depth:0 toks)
    cards;
  (* Analyses and probes are validated only now, against the fully
     elaborated netlist, so cards may precede the elements they name. *)
  let parse_analysis toks =
    let head : Lexer.token = List.hd toks and args = List.tl toks in
    match lower head.text with
    | ".op" ->
      (match args with
       | [] -> Ast.Op
       | t :: _ -> err_tok (t : Lexer.token) ".op takes no arguments")
    | ".dc" ->
      (match args with
       | [ (src : Lexer.token); a; b; c ] ->
         if String.length src.text < 2 || Char.lowercase_ascii src.text.[0] <> 'v' then
           err_tok src ".dc sweeps a voltage source (V<name>)";
         let elem = String.sub src.text 1 (String.length src.text - 1) in
         if N.vsource_index net elem = None then
           err_tok src "unknown voltage source %S" src.text;
         let start = parse_value [] a and stop = parse_value [] b in
         let step = parse_value [] c in
         if step = 0.0 || not (Float.is_finite step) then
           err_tok c ".dc step must be nonzero and finite";
         if (stop -. start) *. step < 0.0 then
           err_tok c ".dc step has the wrong sign for this range";
         Ast.Dc_sweep { source = elem; start; stop; step }
       | _ -> err_tok head ".dc syntax: .dc V<name> start stop step")
    | ".tran" ->
      (match args with
       | step :: tstop :: _ ->
         (* extra tstart/tmax fields are accepted and ignored *)
         let h = parse_positive [] "step" step in
         let t_stop = parse_positive [] "stop time" tstop in
         if h > t_stop then err_tok step ".tran step exceeds the stop time";
         Ast.Tran { step = h; t_stop }
       | _ -> err_tok head ".tran syntax: .tran step tstop")
    | ".ac" ->
      (match args with
       | [ (kind : Lexer.token); np; f1; f2 ] ->
         if lower kind.text <> "dec" then
           err_tok kind "only .ac DEC sweeps are supported";
         let nv = parse_value [] np in
         let n = int_of_float nv in
         if Float.of_int n <> nv || n <= 0 then
           err_tok np ".ac points per decade must be a positive integer";
         let f_start = parse_positive [] "start frequency" f1 in
         let f_stop = parse_positive [] "stop frequency" f2 in
         if f_start > f_stop then err_tok f1 ".ac start frequency exceeds the stop";
         if !ac_source = None then
           err_tok head ".ac needs an AC source (add 'AC 1' to a V card)";
         Ast.Ac { points_per_decade = n; f_start; f_stop }
       | _ -> err_tok head ".ac syntax: .ac dec points fstart fstop")
    | _ -> assert false
  in
  let parse_print toks =
    let args = List.tl toks in
    let args =
      match args with
      | (t : Lexer.token) :: rest
        when List.mem (lower t.text) [ "op"; "dc"; "tran"; "ac" ] ->
        rest
      | _ -> args
    in
    let rec go acc = function
      | [] -> List.rev acc
      | (f : Lexer.token)
        :: { Lexer.text = "("; _ }
        :: (name : Lexer.token)
        :: { Lexer.text = ")"; _ }
        :: rest -> (
        match lower f.text with
        | "v" ->
          if N.find_node net name.text = None && not (name.text = "0" || lower name.text = "gnd")
          then err_tok name "unknown node %S in probe" name.text;
          go (Ast.Vprobe name.text :: acc) rest
        | "i" ->
          if String.length name.text < 2 || Char.lowercase_ascii name.text.[0] <> 'v' then
            err_tok name "current probes support voltage sources only (i(V<name>))";
          let elem = String.sub name.text 1 (String.length name.text - 1) in
          if N.vsource_index net elem = None then
            err_tok name "unknown voltage source %S in probe" name.text;
          go (Ast.Iprobe elem :: acc) rest
        | _ -> err_tok f "probes are v(node) or i(Vsource)")
      | (t : Lexer.token) :: _ -> err_tok t "probes are v(node) or i(Vsource)"
    in
    go [] args
  in
  let analyses = List.rev_map parse_analysis !analysis_cards in
  let prints = List.concat_map parse_print (List.rev !print_cards) in
  { Ast.title; netlist = net; analyses; prints; ac_source = !ac_source }

let parse src =
  match Lexer.lex src with
  | Error e -> Error e
  | Ok (title, lines) -> (
    try Ok (parse_lines title lines) with
    | Fail e -> Error e
    | Invalid_argument msg | Failure msg ->
      Error { Ast.line = 0; col = 0; msg = "internal: " ^ msg })
