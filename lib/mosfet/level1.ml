type params = { kp : float; vth : float; lambda : float; w : float; l : float }

type region = Cutoff | Triode | Saturation

let[@inline] beta p = p.kp *. p.w /. p.l

let vdsat p ~vgs = Float.max 0.0 (vgs -. p.vth)

let[@inline] check_vds vds =
  if vds < 0.0 then invalid_arg "Level1: vds must be >= 0 (use ids_signed)"

let[@inline] region p ~vgs ~vds =
  check_vds vds;
  let vov = vgs -. p.vth in
  if vov <= 0.0 then Cutoff else if vds <= vov then Triode else Saturation

let[@inline] ids p ~vgs ~vds =
  match region p ~vgs ~vds with
  | Cutoff -> 0.0
  | Triode ->
    let vov = vgs -. p.vth in
    beta p *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. (1.0 +. (p.lambda *. vds))
  | Saturation ->
    let vov = vgs -. p.vth in
    0.5 *. beta p *. vov *. vov *. (1.0 +. (p.lambda *. vds))

let ids_signed p ~vg ~vd ~vs =
  if vd >= vs then ids p ~vgs:(vg -. vs) ~vds:(vd -. vs)
  else -.ids p ~vgs:(vg -. vd) ~vds:(vs -. vd)

let[@inline] gm p ~vgs ~vds =
  match region p ~vgs ~vds with
  | Cutoff -> 0.0
  | Triode -> beta p *. vds *. (1.0 +. (p.lambda *. vds))
  | Saturation ->
    let vov = vgs -. p.vth in
    beta p *. vov *. (1.0 +. (p.lambda *. vds))

let[@inline] gds p ~vgs ~vds =
  match region p ~vgs ~vds with
  | Cutoff -> 0.0
  | Triode ->
    let vov = vgs -. p.vth in
    let b = beta p in
    (b *. (vov -. vds) *. (1.0 +. (p.lambda *. vds)))
    +. (b *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. p.lambda)
  | Saturation ->
    let vov = vgs -. p.vth in
    0.5 *. beta p *. vov *. vov *. p.lambda

(* All-float workspace so inputs and outputs cross function boundaries as
   unboxed record fields instead of boxed float arguments: the circuit
   engine's Newton inner loop runs linearization allocation-free. The
   bodies below restate ids/gm/gds with identical expressions (same
   operation order, so results are bit-identical to the functions above);
   the unit tests pin the equivalence. *)
type workspace = {
  mutable w_vgs : float;
  mutable w_vds : float;
  mutable w_ids : float;
  mutable w_gm : float;
  mutable w_gds : float;
}

let workspace_create () = { w_vgs = 0.0; w_vds = 0.0; w_ids = 0.0; w_gm = 0.0; w_gds = 0.0 }

let linearize (w : workspace) p =
  let vgs = w.w_vgs and vds = w.w_vds in
  if vds < 0.0 then invalid_arg "Level1: vds must be >= 0 (use ids_signed)";
  let vov = vgs -. p.vth in
  if vov <= 0.0 then begin
    w.w_ids <- 0.0;
    w.w_gm <- 0.0;
    w.w_gds <- 0.0
  end
  else begin
    let b = p.kp *. p.w /. p.l in
    if vds <= vov then begin
      w.w_ids <- b *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. (1.0 +. (p.lambda *. vds));
      w.w_gm <- b *. vds *. (1.0 +. (p.lambda *. vds));
      w.w_gds <-
        (b *. (vov -. vds) *. (1.0 +. (p.lambda *. vds)))
        +. (b *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. p.lambda)
    end
    else begin
      w.w_ids <- 0.5 *. b *. vov *. vov *. (1.0 +. (p.lambda *. vds));
      w.w_gm <- b *. vov *. (1.0 +. (p.lambda *. vds));
      w.w_gds <- 0.5 *. b *. vov *. vov *. p.lambda
    end
  end

let pp_params fmt p =
  Format.fprintf fmt "{kp=%.4g A/V^2; vth=%.4g V; lambda=%.4g 1/V; W=%.3g m; L=%.3g m}" p.kp p.vth
    p.lambda p.w p.l
