(** Level-1 (Shichman-Hodges) MOSFET equations, exactly as printed in the
    paper's Section IV:

    {v
      IDS = 0                                                   VGS <= Vth
      IDS = Kp W/L [(VGS-Vth) VDS - VDS^2/2] (1 + lambda VDS)   triode
      IDS = 1/2 Kp W/L (VGS-Vth)^2 (1 + lambda VDS)             saturation
    v}

    Shared by the parameter-extraction code ([Lattice_fit]) and the circuit
    simulator ([Lattice_spice]). All quantities are SI: amperes, volts,
    metres. *)

type params = {
  kp : float;  (** transconductance parameter [mu_n * Cox], A/V^2 *)
  vth : float;  (** threshold voltage, V (negative for depletion devices) *)
  lambda : float;  (** channel-length modulation, 1/V *)
  w : float;  (** channel width, m *)
  l : float;  (** channel length, m *)
}

type region = Cutoff | Triode | Saturation

(** [region p ~vgs ~vds] classifies the operating point (expects
    [vds >= 0]). *)
val region : params -> vgs:float -> vds:float -> region

(** [ids p ~vgs ~vds] is the drain-source current for [vds >= 0]; raises
    [Invalid_argument] on negative [vds] (use [ids_signed]). *)
val ids : params -> vgs:float -> vds:float -> float

(** [ids_signed p ~vg ~vd ~vs] handles source/drain reversal the SPICE way:
    when [vd < vs] the physical source is the drain terminal, so the device
    is evaluated with the terminals swapped and the current negated.
    Voltages are node potentials relative to any common reference. Returns
    the current flowing into the [vd] terminal. *)
val ids_signed : params -> vg:float -> vd:float -> vs:float -> float

(** [gm p ~vgs ~vds] is the analytic transconductance [d IDS / d VGS]
    ([vds >= 0]). *)
val gm : params -> vgs:float -> vds:float -> float

(** [gds p ~vgs ~vds] is the analytic output conductance [d IDS / d VDS]
    ([vds >= 0]). *)
val gds : params -> vgs:float -> vds:float -> float

(** [beta p] is the gain factor [Kp * W / L], A/V^2. *)
val beta : params -> float

(** All-float linearization workspace: write [w_vgs]/[w_vds], call
    {!linearize}, read [w_ids]/[w_gm]/[w_gds]. Passing operands through
    unboxed record fields (instead of boxed float arguments) lets the
    circuit engine's Newton inner loop run without allocating. *)
type workspace = {
  mutable w_vgs : float;
  mutable w_vds : float;
  mutable w_ids : float;  (** = [ids p ~vgs ~vds], bit-identical *)
  mutable w_gm : float;  (** = [gm p ~vgs ~vds], bit-identical *)
  mutable w_gds : float;  (** = [gds p ~vgs ~vds], bit-identical *)
}

val workspace_create : unit -> workspace

(** [linearize w p] evaluates ids/gm/gds at ([w.w_vgs], [w.w_vds]) into
    the output fields, allocation-free. Raises [Invalid_argument] on
    negative [w_vds]. *)
val linearize : workspace -> params -> unit

(** [vdsat p ~vgs] is the saturation voltage [max 0 (vgs - vth)]. *)
val vdsat : params -> vgs:float -> float

val pp_params : Format.formatter -> params -> unit
