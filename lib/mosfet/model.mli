(** First-class MOSFET model: level-1 or level-3 behind one interface, so
    the circuit engine can stamp either. *)

type t = L1 of Level1.params | L3 of Level3.params

(** [ids m ~vgs ~vds] / [gm] / [gds] — current and conductances,
    [vds >= 0]. *)
val ids : t -> vgs:float -> vds:float -> float

val gm : t -> vgs:float -> vds:float -> float
val gds : t -> vgs:float -> vds:float -> float

(** [linearize w m] evaluates ids/gm/gds at ([w.w_vgs], [w.w_vds]) into
    [w]'s output fields — results identical to the functions above.
    Allocation-free for level-1 models (see {!Level1.workspace}). *)
val linearize : Level1.workspace -> t -> unit

(** [vth m] — the model's threshold voltage. *)
val vth : t -> float

(** [w_over_l m] — channel aspect ratio. *)
val w_over_l : t -> float

(** [on_conductance m ~vdd] — small-signal channel conductance at
    [vgs = vdd], [vds -> 0]; used by analytic delay estimates. *)
val on_conductance : t -> vdd:float -> float

val pp : Format.formatter -> t -> unit
