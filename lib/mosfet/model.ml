type t = L1 of Level1.params | L3 of Level3.params

let[@inline] ids m ~vgs ~vds =
  match m with L1 p -> Level1.ids p ~vgs ~vds | L3 p -> Level3.ids p ~vgs ~vds

let[@inline] gm m ~vgs ~vds =
  match m with L1 p -> Level1.gm p ~vgs ~vds | L3 p -> Level3.gm p ~vgs ~vds

let[@inline] gds m ~vgs ~vds =
  match m with L1 p -> Level1.gds p ~vgs ~vds | L3 p -> Level3.gds p ~vgs ~vds

let linearize (w : Level1.workspace) m =
  match m with
  | L1 p -> Level1.linearize w p
  | L3 p ->
    (* level-3 curves go through the generic entry points (they allocate;
       the default lattice switch types are level-1) *)
    let vgs = w.Level1.w_vgs and vds = w.Level1.w_vds in
    w.Level1.w_ids <- Level3.ids p ~vgs ~vds;
    w.Level1.w_gm <- Level3.gm p ~vgs ~vds;
    w.Level1.w_gds <- Level3.gds p ~vgs ~vds

let base = function L1 p -> p | L3 p -> p.Level3.base

let vth m = (base m).Level1.vth

let w_over_l m =
  let p = base m in
  p.Level1.w /. p.Level1.l

let on_conductance m ~vdd =
  let dv = 1e-3 in
  ids m ~vgs:vdd ~vds:dv /. dv

let pp fmt = function
  | L1 p -> Format.fprintf fmt "level1 %a" Level1.pp_params p
  | L3 p ->
    Format.fprintf fmt "level3 %a theta=%.3g vc=%.3g" Level1.pp_params p.Level3.base
      p.Level3.theta p.Level3.vc
