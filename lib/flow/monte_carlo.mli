(** Monte-Carlo process-variation analysis of lattice circuits.

    Emerging-device lattices live or die by variability, and the paper's
    planned fabrication step makes yield the first question its simulation
    flow must answer. This module samples per-switch threshold-voltage and
    gain variations (independent Gaussians, the standard local-mismatch
    model), re-simulates the lattice at DC over every input combination,
    and reports functional yield plus output-level statistics. *)

type variation = {
  sigma_vth : float;  (** absolute Vth sigma, V *)
  sigma_kp_rel : float;  (** relative Kp sigma (e.g. 0.1 = 10%) *)
}

(** 30 mV Vth sigma, 10% Kp sigma — typical nano-device local mismatch. *)
val default_variation : variation

type outcome = {
  functional : bool;  (** output matches NOT f on every combination *)
  worst_v_low : float;  (** highest logic-0 output over the combinations *)
  worst_v_high : float;  (** lowest logic-1 output *)
}

type result = {
  samples : int;
  yield : float;  (** fraction of functional samples *)
  outcomes : outcome array;
  v_low_mean : float;
  v_low_std : float;
  v_high_mean : float;
}

(** [run ?engine ?config ?variation ?samples ?seed grid ~target] runs the
    campaign: each sample perturbs every switch independently and checks
    the DC response against [target] (the function the lattice should
    realize; the circuit output is its complement). Defaults: 100
    samples, seed 42, [default_variation]. Requires
    [Truthtable.nvars target <= 5].

    Sample [k]'s perturbations come from an index-derived RNG stream
    ({!Lattice_engine.Engine.sample_rng}), so the result is a pure
    function of [(seed, k)] — independent of how many samples run and in
    what order. With [engine], samples fan out over the engine's
    fault-isolated {!Lattice_engine.Engine.run_jobs} and per-state DC
    solves go through its content-addressed cache; the result is
    bit-identical to the serial run at any domain count. A die whose
    worker crashes, blows its [policy] deadline, or is cancelled is
    scored as a failed (non-functional) die instead of raising —
    retries under [policy] re-draw the {e same} perturbations, so a
    retried die that completes is indistinguishable from one that
    never faulted. On the engine-less serial path a fired [cancel]
    token raises {!Lattice_engine.Cancel.Cancelled}. *)
val run :
  ?engine:Lattice_engine.Engine.t ->
  ?policy:Lattice_engine.Engine.job_policy ->
  ?cancel:Lattice_engine.Cancel.t ->
  ?config:Lattice_spice.Lattice_circuit.config ->
  ?variation:variation ->
  ?samples:int ->
  ?seed:int ->
  Lattice_core.Grid.t ->
  target:Lattice_boolfn.Truthtable.t ->
  result
