module Sp = Lattice_spice
module Grid = Lattice_core.Grid
module Tt = Lattice_boolfn.Truthtable
module L1 = Lattice_mosfet.Level1
module Model = Lattice_mosfet.Model
module Engine = Lattice_engine.Engine
module Pool = Lattice_engine.Pool
module Cancel = Lattice_engine.Cancel

type variation = { sigma_vth : float; sigma_kp_rel : float }

let default_variation = { sigma_vth = 0.03; sigma_kp_rel = 0.10 }

type outcome = { functional : bool; worst_v_low : float; worst_v_high : float }

type result = {
  samples : int;
  yield : float;
  outcomes : outcome array;
  v_low_mean : float;
  v_low_std : float;
  v_high_mean : float;
}

let gaussian rng =
  (* Box-Muller *)
  let u1 = Float.max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let perturb_params rng variation (p : L1.params) =
  {
    p with
    L1.vth = p.L1.vth +. (variation.sigma_vth *. gaussian rng);
    kp = Float.max 1e-9 (p.L1.kp *. (1.0 +. (variation.sigma_kp_rel *. gaussian rng)));
  }

let perturb_model rng variation = function
  | Model.L1 p -> Model.L1 (perturb_params rng variation p)
  | Model.L3 p3 ->
    Model.L3 { p3 with Lattice_mosfet.Level3.base = perturb_params rng variation p3.Lattice_mosfet.Level3.base }

let perturb_types rng variation (t : Sp.Fts.mosfet_types) =
  {
    Sp.Fts.type_a = perturb_model rng variation t.Sp.Fts.type_a;
    type_b = perturb_model rng variation t.Sp.Fts.type_b;
  }

let run ?engine ?(policy = Engine.default_policy) ?(cancel = Cancel.none)
    ?(config = Sp.Lattice_circuit.default_config) ?(variation = default_variation)
    ?(samples = 100) ?(seed = 42) grid ~target =
  let nvars = Tt.nvars target in
  if nvars > 5 then invalid_arg "Monte_carlo.run: too many inputs";
  if samples < 1 then invalid_arg "Monte_carlo.run: need at least one sample";
  let vdd = config.Sp.Lattice_circuit.vdd in
  let states = 1 lsl nvars in
  let one_sample ~cancel index =
    (* One die: a fixed per-site perturbation reused across input states.
       Each die draws from an index-derived RNG stream (seed-splitting by
       hash of [seed, index]) instead of one sequential stream, so die k
       is identical whether or not dies 0..k-1 ran — the property that
       makes the Domain pool's out-of-order execution bit-identical to
       the serial loop. *)
    let rng = Engine.sample_rng ~seed ~index in
    let site_types =
      Array.init (Grid.size grid) (fun _ -> perturb_types rng variation config.Sp.Lattice_circuit.types)
    in
    let types_of_site r c = site_types.((r * grid.Grid.cols) + c) in
    let worst_low = ref 0.0 and worst_high = ref infinity and ok = ref true in
    for m = 0 to states - 1 do
      (* per-state checkpoint: deadlines bite on warm caches too *)
      Cancel.check cancel;
      let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
      let lc = Sp.Lattice_circuit.build ~config ~types_of_site grid ~stimulus in
      let solved =
        match engine with
        | Some e -> Engine.dc_op e ~cancel lc.Sp.Lattice_circuit.netlist
        | None -> Sp.Dcop.solve_diag ~cancel lc.Sp.Lattice_circuit.netlist
      in
      match solved with
      | Error _ ->
        (* an unsimulatable die counts as a failed die *)
        ok := false
      | Ok (x, _) ->
        let v = Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out") in
        let expected_high = not (Tt.eval target m) in
        if not (Bool.equal (v > vdd /. 2.0) expected_high) then ok := false;
        if expected_high then worst_high := Float.min !worst_high v
        else worst_low := Float.max !worst_low v
    done;
    { functional = !ok; worst_v_low = !worst_low; worst_v_high = !worst_high }
  in
  let outcomes =
    (* campaign span covers the serial path too; the engine path nests
       its own "monte-carlo" phase span inside. Engine dispatch is
       fault-isolated: a die whose worker crashes or blows its deadline
       is scored as a failed die, never an exception out of the yield
       run. Retrying a die never changes its perturbations (the RNG
       stream is a pure function of (seed, index)). *)
    Lattice_obs.Trace.with_span ~cat:"flow" "monte-carlo" (fun () ->
        match engine with
        | Some e ->
          Engine.run_jobs e ~policy ~cancel ~phase:"monte-carlo" ~n:samples
            (fun ~attempt:_ ~cancel i -> one_sample ~cancel i)
          |> Array.map (function
               | Pool.Done o -> o
               | Pool.Failed _ | Pool.Timed_out | Pool.Cancelled ->
                 (* an unscorable die counts against yield *)
                 { functional = false; worst_v_low = 0.0; worst_v_high = infinity })
        | None -> Array.init samples (one_sample ~cancel))
  in
  let functional_count =
    Array.fold_left (fun acc o -> if o.functional then acc + 1 else acc) 0 outcomes
  in
  let v_lows = Array.map (fun o -> o.worst_v_low) outcomes in
  let v_highs =
    Array.map (fun o -> if Float.is_finite o.worst_v_high then o.worst_v_high else vdd) outcomes
  in
  {
    samples;
    yield = float_of_int functional_count /. float_of_int samples;
    outcomes;
    v_low_mean = Lattice_numerics.Stats.mean v_lows;
    v_low_std = Lattice_numerics.Stats.stddev v_lows;
    v_high_mean = Lattice_numerics.Stats.mean v_highs;
  }
