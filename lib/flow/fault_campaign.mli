(** Graceful-degradation fault campaign: simulate a lattice under every
    circuit-level defect, classify the outcomes, and close the loop with
    logical test generation and defect-aware remapping.

    The campaign enumerates the single-defect universe of
    {!Lattice_spice.Defects.single_defects} (plus optional randomly
    sampled multi-defect combinations), builds the defective netlist for
    every input state, and solves each DC operating point with
    {!Lattice_spice.Dcop.solve_diag} — so a sample that refuses to
    converge is {e classified}, never an exception, and carries the full
    structured failure (failed strategy ladder, residual norm, worst
    nodes).

    {2 Outcome classes}

    - [Functional]: every input state produces the boolean-correct output
      with healthy noise margins;
    - [Degraded]: boolean-correct, but some output level comes within
      [noise_margin] volts of the [vdd/2] decision threshold;
    - [Faulty]: at least one input state produces the wrong boolean
      output; the offending vectors are recorded in [mismatches];
    - [Non_convergent]: some state failed to solve (or the sample ran out
      of Newton budget); [failure] holds the diagnostics.

    {2 Budget semantics}

    [budget.newton_per_sample] caps the {e total} Newton iterations one
    sample may spend across all of its input states (every rung of every
    fallback ladder counts). The cap is checked before each state's
    solve; exhaustion classifies the sample [Non_convergent] with a
    synthetic failure record, and the campaign moves on. This bounds the
    runtime of a campaign whose pathological samples would otherwise
    grind through the whole fallback ladder at every state.

    {2 Detection and repair}

    Each sample's circuit-level [mismatches] are cross-checked against
    the logical test set of {!Lattice_synthesis.Faults.analyze}:
    [detected_by] lists the test vectors that catch the defect at circuit
    level. For detected single defects with a logical counterpart
    (stuck-open = stuck-OFF, stuck-short = stuck-ON), the campaign remaps
    the function around the pinned defect site with
    {!Lattice_synthesis.Exhaustive.find_with_pins} — first in the
    original fabric, then widening by up to [spare_cols] spare columns —
    and re-verifies the remapped lattice at circuit level {e with the
    defect still injected}. *)

type classification = Functional | Degraded | Faulty | Non_convergent

val classification_name : classification -> string

type budget = { newton_per_sample : int }

type options = {
  config : Lattice_spice.Lattice_circuit.config;
  params : Lattice_spice.Defects.params;
  dc : Lattice_spice.Dcop.options;
  budget : budget;
  noise_margin : float;  (** V from [vdd/2] below which a level is degraded (default 0.15) *)
  classes : Lattice_spice.Defects.kind_class list;  (** universe restriction (default: all) *)
  multi_defect_samples : int;  (** sampled multi-defect combos (default 0) *)
  multi_defect_order : int;  (** defects per combo (default 2) *)
  seed : int;  (** RNG seed for multi-defect sampling (default 42) *)
  attempt_repair : bool;  (** remap detected structural defects (default true) *)
  spare_cols : int;  (** extra columns the remapper may use (default 1) *)
}

val default_options : options

type sample = {
  defects : Lattice_spice.Defects.t list;
  classification : classification;
  worst_v_low : float;  (** highest output voltage over the logic-low states *)
  worst_v_high : float;  (** lowest output voltage over the logic-high states ([infinity] if none) *)
  mismatches : int list;  (** input vectors with the wrong boolean output *)
  detected_by : int list;  (** logical test vectors among [mismatches] *)
  failure : Lattice_spice.Dcop.failure option;  (** present iff [Non_convergent] *)
  newton_iterations : int;  (** total spent across the sample's states *)
}

(** [simulate grid ~target ~test_set defects] runs one sample: the grid
    with [defects] injected, DC-solved over all [2^nvars] input states
    under the Newton budget. Never raises on convergence trouble. With
    [engine], DC solves go through the engine's content-addressed cache;
    cached hits replay the original diagnostics, so Newton-budget
    accounting is identical on warm and cold caches. [cancel] is checked
    before every input state (and inside every solve); a fired token
    raises {!Lattice_engine.Cancel.Cancelled} — inside {!run}'s engine
    path that exception is converted to a classified sample. *)
val simulate :
  ?engine:Lattice_engine.Engine.t ->
  ?cancel:Lattice_engine.Cancel.t ->
  ?options:options ->
  Lattice_core.Grid.t ->
  target:Lattice_boolfn.Truthtable.t ->
  test_set:int list ->
  Lattice_spice.Defects.t list ->
  sample

val logical_of_defect :
  Lattice_spice.Defects.t -> Lattice_synthesis.Faults.fault option
(** The logical fault a circuit defect projects to: stuck-open is
    stuck-OFF, stuck-short is stuck-ON, the analog defect kinds have no
    logical counterpart. *)

(** [verify_with_defects grid ~target ~defects] checks every input state
    boolean-correct at circuit level with the defects injected (treating
    any convergence failure as incorrect). *)
val verify_with_defects :
  ?engine:Lattice_engine.Engine.t ->
  ?options:options ->
  Lattice_core.Grid.t ->
  target:Lattice_boolfn.Truthtable.t ->
  defects:Lattice_spice.Defects.t list ->
  bool

type repair = {
  defect : Lattice_spice.Defects.t;
  fault : Lattice_synthesis.Faults.fault;
  remapped : Lattice_core.Grid.t option;  (** [None] when no remapping exists in the window *)
  spare_cols_used : int;
  reverified : bool;  (** circuit-level re-verification with the defect injected *)
}

type class_counts = {
  functional : int;
  degraded : int;
  faulty : int;
  non_convergent : int;
}

type report = {
  samples : sample array;  (** single-defect samples first, then multi-defect combos *)
  counts : class_counts;
  logical : Lattice_synthesis.Faults.analysis;
  test_set : int list;
  detected : int;  (** samples caught by the test set (non-convergent count as caught) *)
  silent : int;  (** faulty or degraded samples the logical test set misses *)
  repairs : repair list;
  total_newton : int;
}

(** [run ?engine ?policy ?cancel ?options ?universe grid ~target] runs
    the whole campaign. [universe] overrides the enumerated
    single-defect list (the multi-defect combos are sampled from it
    too). Continues past every failure; the only exceptions raised are
    argument errors (and, on the engine-less serial path, a fired
    [cancel] token).

    With [engine], the independent defect samples fan out over the
    engine's fault-isolated {!Lattice_engine.Engine.run_jobs} (phase
    ["fault-campaign"]) and repairs are timed under ["campaign-repair"];
    results merge by sample index, so the report is bit-identical to
    the serial run at any domain count. A sample whose worker crashes,
    blows its [policy] deadline, or is cancelled becomes a
    [Non_convergent] sample whose failure message says why
    (["worker exception: …"], ["deadline exceeded"], ["cancelled"]) —
    no exception escapes. With [policy.attempts > 1], [Non_convergent]
    samples (budget exhaustion included) are retried under a Newton
    budget and deadline grown by [policy.backoff] per attempt. *)
val run :
  ?engine:Lattice_engine.Engine.t ->
  ?policy:Lattice_engine.Engine.job_policy ->
  ?cancel:Lattice_engine.Cancel.t ->
  ?options:options ->
  ?universe:Lattice_spice.Defects.t list ->
  Lattice_core.Grid.t ->
  target:Lattice_boolfn.Truthtable.t ->
  report
