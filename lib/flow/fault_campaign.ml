module Sp = Lattice_spice
module Grid = Lattice_core.Grid
module Tt = Lattice_boolfn.Truthtable
module Faults = Lattice_synthesis.Faults
module Exhaustive = Lattice_synthesis.Exhaustive
module Defects = Sp.Defects
module Engine = Lattice_engine.Engine
module Pool = Lattice_engine.Pool
module Cancel = Lattice_engine.Cancel

type classification = Functional | Degraded | Faulty | Non_convergent

let classification_name = function
  | Functional -> "functional"
  | Degraded -> "degraded"
  | Faulty -> "faulty"
  | Non_convergent -> "non-convergent"

type budget = { newton_per_sample : int }

type options = {
  config : Sp.Lattice_circuit.config;
  params : Defects.params;
  dc : Sp.Dcop.options;
  budget : budget;
  noise_margin : float;
  classes : Defects.kind_class list;
  multi_defect_samples : int;
  multi_defect_order : int;
  seed : int;
  attempt_repair : bool;
  spare_cols : int;
}

let default_options =
  {
    config = Sp.Lattice_circuit.default_config;
    params = Defects.default_params;
    dc = Sp.Dcop.default_options;
    budget = { newton_per_sample = 20_000 };
    noise_margin = 0.15;
    classes = Defects.all_classes;
    multi_defect_samples = 0;
    multi_defect_order = 2;
    seed = 42;
    attempt_repair = true;
    spare_cols = 1;
  }

type sample = {
  defects : Defects.t list;
  classification : classification;
  worst_v_low : float;
  worst_v_high : float;
  mismatches : int list;
  detected_by : int list;
  failure : Sp.Dcop.failure option;
  newton_iterations : int;
}

let iterations_of_attempts attempts = List.fold_left (fun acc (_, n) -> acc + n) 0 attempts

(* DC solve routed through the engine's content-addressed cache when one
   is given. Cached hits replay the original diagnostics (including
   Newton counts), so budget accounting is identical on warm caches. *)
let solve_state ?engine ?cancel ~options netlist =
  match engine with
  | Some e -> Engine.dc_op e ~options:options.dc ?cancel netlist
  | None -> Sp.Dcop.solve_diag ~options:options.dc ?cancel netlist

let simulate ?engine ?(cancel = Cancel.none) ?(options = default_options) grid ~target ~test_set
    defects =
  let nvars = Tt.nvars target in
  if nvars > 5 then invalid_arg "Fault_campaign.simulate: too many inputs";
  if options.budget.newton_per_sample <= 0 then
    invalid_arg "Fault_campaign.simulate: newton_per_sample must be positive";
  let vdd = options.config.Sp.Lattice_circuit.vdd in
  let states = 1 lsl nvars in
  let used = ref 0 in
  let worst_low = ref 0.0 and worst_high = ref infinity in
  let mismatches = ref [] in
  let failure = ref None in
  (try
     for m = 0 to states - 1 do
       (* per-state checkpoint so deadlines bite even when every solve
          is a cache hit (the solver's own per-iteration checks never
          run on a warm cache) *)
       Cancel.check cancel;
       if !used >= options.budget.newton_per_sample then begin
         failure :=
           Some
             {
               Sp.Dcop.message =
                 Printf.sprintf "Newton budget exhausted (%d/%d iterations) before input state %d"
                   !used options.budget.newton_per_sample m;
               attempts = [];
               residual_norm = Float.nan;
               worst_nodes = [];
             };
         raise Exit
       end;
       let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
       let lc = Defects.build ~config:options.config ~params:options.params ~defects grid ~stimulus in
       match solve_state ?engine ~cancel ~options lc.Sp.Lattice_circuit.netlist with
       | Error f ->
         used := !used + iterations_of_attempts f.Sp.Dcop.attempts;
         failure := Some f;
         raise Exit
       | Ok (x, diag) ->
         used := !used + diag.Sp.Dcop.newton_iterations;
         let v =
           Sp.Mna.voltage x
             (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist lc.Sp.Lattice_circuit.output_node)
         in
         (* pull-down lattice: the circuit output is the complement of the
            lattice function *)
         let expected_high = not (Tt.eval target m) in
         if not (Bool.equal (v > vdd /. 2.0) expected_high) then mismatches := m :: !mismatches;
         if expected_high then worst_high := Float.min !worst_high v
         else worst_low := Float.max !worst_low v
     done
   with Exit -> ());
  let mismatches = List.rev !mismatches in
  let classification =
    match !failure with
    | Some _ -> Non_convergent
    | None ->
      if mismatches <> [] then Faulty
      else begin
        let low_bad = !worst_low > (vdd /. 2.0) -. options.noise_margin in
        let high_bad = Float.is_finite !worst_high && !worst_high < (vdd /. 2.0) +. options.noise_margin in
        if low_bad || high_bad then Degraded else Functional
      end
  in
  let detected_by = List.filter (fun v -> List.mem v mismatches) test_set in
  {
    defects;
    classification;
    worst_v_low = !worst_low;
    worst_v_high = !worst_high;
    mismatches;
    detected_by;
    failure = !failure;
    newton_iterations = !used;
  }

let logical_of_defect (d : Defects.t) =
  match d.Defects.kind with
  | Defects.Stuck_open ->
    Some { Faults.row = d.Defects.row; col = d.Defects.col; kind = Faults.Stuck_off }
  | Defects.Stuck_short ->
    Some { Faults.row = d.Defects.row; col = d.Defects.col; kind = Faults.Stuck_on }
  | Defects.Bridge _ | Defects.Broken_terminal _ | Defects.Gate_leak _ -> None

let verify_with_defects ?engine ?(options = default_options) grid ~target ~defects =
  let nvars = Tt.nvars target in
  let vdd = options.config.Sp.Lattice_circuit.vdd in
  let ok = ref true in
  (try
     for m = 0 to (1 lsl nvars) - 1 do
       let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
       let lc = Defects.build ~config:options.config ~params:options.params ~defects grid ~stimulus in
       match solve_state ?engine ~options lc.Sp.Lattice_circuit.netlist with
       | Error _ ->
         ok := false;
         raise Exit
       | Ok (x, _) ->
         let v =
           Sp.Mna.voltage x
             (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist lc.Sp.Lattice_circuit.output_node)
         in
         if not (Bool.equal (v > vdd /. 2.0) (not (Tt.eval target m))) then begin
           ok := false;
           raise Exit
         end
     done
   with Exit -> ());
  !ok

type repair = {
  defect : Defects.t;
  fault : Faults.fault;
  remapped : Grid.t option;
  spare_cols_used : int;
  reverified : bool;
}

(* exhaustive remapping is only feasible for small instances; outside the
   window the repair record simply reports no remapping was found *)
let remap_feasible ~rows ~cols ~nvars = rows * cols <= 12 && nvars <= 4

let repair_defect ?engine options grid ~target (d : Defects.t) (fault : Faults.fault) =
  let rows = grid.Grid.rows and cols = grid.Grid.cols in
  let nvars = Tt.nvars target in
  let entry =
    match fault.Faults.kind with
    | Faults.Stuck_off -> Grid.Const false
    | Faults.Stuck_on -> Grid.Const true
  in
  let try_cols c =
    if not (remap_feasible ~rows ~cols:c ~nvars) then None
    else
      Exhaustive.find_with_pins ~rows ~cols:c ~alphabet:Exhaustive.Literals_and_constants
        ~pins:[ ((fault.Faults.row * c) + fault.Faults.col, entry) ]
        target
  in
  let rec search c =
    if c > cols + options.spare_cols then None
    else match try_cols c with Some g -> Some (g, c - cols) | None -> search (c + 1)
  in
  match search cols with
  | None -> { defect = d; fault; remapped = None; spare_cols_used = 0; reverified = false }
  | Some (g, spare) ->
    (* re-verify at circuit level with the physical defect still present in
       the remapped lattice *)
    let reverified = verify_with_defects ?engine ~options g ~target ~defects:[ d ] in
    { defect = d; fault; remapped = Some g; spare_cols_used = spare; reverified }

type class_counts = {
  functional : int;
  degraded : int;
  faulty : int;
  non_convergent : int;
}

type report = {
  samples : sample array;
  counts : class_counts;
  logical : Faults.analysis;
  test_set : int list;
  detected : int;
  silent : int;
  repairs : repair list;
  total_newton : int;
}

let sample_detected s = s.detected_by <> [] || s.classification = Non_convergent

let multi_defect_sets rng universe ~samples ~order =
  let arr = Array.of_list universe in
  let n = Array.length arr in
  if n < 2 || samples <= 0 || order < 2 then []
  else
    List.init samples (fun _ ->
        let order = Int.min order n in
        let chosen = ref [] in
        while List.length !chosen < order do
          let i = Random.State.int rng n in
          if not (List.mem i !chosen) then chosen := i :: !chosen
        done;
        List.map (fun i -> arr.(i)) (List.sort Int.compare !chosen))

(* a sample the engine could not classify normally: worker crash,
   deadline, cancellation — reported as [Non_convergent] with a
   synthetic failure record so the campaign report stays total *)
let synthetic_sample ~defects message =
  {
    defects;
    classification = Non_convergent;
    worst_v_low = 0.0;
    worst_v_high = infinity;
    mismatches = [];
    detected_by = [];
    failure =
      Some { Sp.Dcop.message; attempts = []; residual_norm = Float.nan; worst_nodes = [] };
    newton_iterations = 0;
  }

(* retry escalation: attempt [k] runs under a Newton budget grown by
   [backoff^k] — a budget-exhausted sample gets a real second chance,
   not a replay of the same starvation *)
let options_for_attempt ~policy ~attempt options =
  if attempt = 0 then options
  else
    let factor = policy.Engine.backoff ** float_of_int attempt in
    let grown =
      int_of_float (Float.ceil (float_of_int options.budget.newton_per_sample *. factor))
    in
    { options with budget = { newton_per_sample = Int.max 1 grown } }

let run ?engine ?(policy = Engine.default_policy) ?(cancel = Cancel.none)
    ?(options = default_options) ?universe grid ~target =
  let nvars = Tt.nvars target in
  if nvars > 5 then invalid_arg "Fault_campaign.run: too many inputs";
  let universe =
    match universe with
    | Some u -> u
    | None -> Defects.single_defects ~classes:options.classes grid
  in
  let rng = Random.State.make [| options.seed |] in
  let multi =
    multi_defect_sets rng universe ~samples:options.multi_defect_samples
      ~order:options.multi_defect_order
  in
  let logical = Faults.analyze grid in
  let test_set = logical.Faults.test_set in
  let sets = Array.of_list (List.map (fun d -> [ d ]) universe @ multi) in
  let samples =
    (* Each defect set is an independent job: results merge by index, so
       the report is bit-identical to the serial loop at any domain
       count. The engine path is fault-isolated: a crashing, stalling or
       cancelled sample becomes a synthetic Non_convergent record, and
       Non_convergent samples are retried under an escalated Newton
       budget when the policy allows. *)
    Lattice_obs.Trace.with_span ~cat:"flow" "fault-campaign" (fun () ->
        match engine with
        | Some e ->
          let outcomes =
            Engine.run_jobs e ~policy ~cancel ~phase:"fault-campaign"
              ~retryable:(fun s -> s.classification = Non_convergent)
              ~n:(Array.length sets)
              (fun ~attempt ~cancel i ->
                let options = options_for_attempt ~policy ~attempt options in
                simulate ~engine:e ~cancel ~options grid ~target ~test_set sets.(i))
          in
          Array.mapi
            (fun i -> function
              | Pool.Done s -> s
              | Pool.Failed e ->
                synthetic_sample ~defects:sets.(i) ("worker exception: " ^ e.Pool.printed)
              | Pool.Timed_out -> synthetic_sample ~defects:sets.(i) "deadline exceeded"
              | Pool.Cancelled -> synthetic_sample ~defects:sets.(i) "cancelled")
            outcomes
        | None -> Array.map (fun ds -> simulate ~cancel ~options grid ~target ~test_set ds) sets)
  in
  let count c =
    Array.fold_left (fun acc s -> if s.classification = c then acc + 1 else acc) 0 samples
  in
  let counts =
    {
      functional = count Functional;
      degraded = count Degraded;
      faulty = count Faulty;
      non_convergent = count Non_convergent;
    }
  in
  let detected =
    Array.fold_left (fun acc s -> if sample_detected s then acc + 1 else acc) 0 samples
  in
  let silent =
    Array.fold_left
      (fun acc s ->
        match s.classification with
        | (Faulty | Degraded) when s.detected_by = [] -> acc + 1
        | Functional | Degraded | Faulty | Non_convergent -> acc)
      0 samples
  in
  let repairs =
    if not options.attempt_repair then []
    else begin
      let attempt () =
        Array.to_list samples
        |> List.filter_map (fun s ->
               match (s.defects, s.classification) with
               | [ d ], (Faulty | Degraded | Non_convergent) when sample_detected s ->
                 Option.map (repair_defect ?engine options grid ~target d) (logical_of_defect d)
               | _ -> None)
      in
      Lattice_obs.Trace.with_span ~cat:"flow" "campaign-repair" (fun () ->
          match engine with
          | Some e -> Engine.timed e ~phase:"campaign-repair" attempt
          | None -> attempt ())
    end
  in
  let total_newton = Array.fold_left (fun acc s -> acc + s.newton_iterations) 0 samples in
  { samples; counts; logical; test_set; detected; silent; repairs; total_newton }
