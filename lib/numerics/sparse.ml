exception Singular of int

let pivot_floor = 1e-300 (* matches Lu.pivot_floor *)

type pattern = {
  n : int;
  col_ptr : int array; (* length n+1 *)
  row_ind : int array; (* length nnz; rows ascending within a column *)
  index : (int, int) Hashtbl.t; (* (col * n + row) -> slot *)
}

type t = { pattern : pattern; values : float array }

module Builder = struct
  type b = { bn : int; cells : (int, unit) Hashtbl.t }

  let create n =
    if n < 0 then invalid_arg "Sparse.Builder.create: negative dimension";
    { bn = n; cells = Hashtbl.create (Int.max 16 (4 * n)) }

  let add b r c =
    if r < 0 || r >= b.bn || c < 0 || c >= b.bn then
      invalid_arg (Printf.sprintf "Sparse.Builder.add: (%d, %d) out of range for n=%d" r c b.bn);
    Hashtbl.replace b.cells ((c * b.bn) + r) ()

  let compile b =
    let keys = Hashtbl.fold (fun k () acc -> k :: acc) b.cells [] in
    (* ascending (col * n + row) = column-major with rows ascending *)
    let keys = List.sort compare keys in
    let nnz = List.length keys in
    let col_ptr = Array.make (b.bn + 1) 0 in
    let row_ind = Array.make nnz 0 in
    let index = Hashtbl.create (Int.max 16 (2 * nnz)) in
    List.iteri
      (fun s k ->
        let c = k / b.bn and r = k mod b.bn in
        row_ind.(s) <- r;
        col_ptr.(c + 1) <- s + 1;
        Hashtbl.replace index k s)
      keys;
    (* columns without entries inherit the running offset *)
    for c = 1 to b.bn do
      if col_ptr.(c) < col_ptr.(c - 1) then col_ptr.(c) <- col_ptr.(c - 1)
    done;
    { n = b.bn; col_ptr; row_ind; index }
end

let dim p = p.n
let nnz p = Array.length p.row_ind

let slot p ~row ~col =
  match Hashtbl.find_opt p.index ((col * p.n) + row) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sparse.slot: (%d, %d) not in pattern" row col)

let mem p ~row ~col = Hashtbl.mem p.index ((col * p.n) + row)

let create pattern = { pattern; values = Array.make (nnz pattern) 0.0 }
let clear m = Array.fill m.values 0 (Array.length m.values) 0.0

let add m r c v =
  let s = slot m.pattern ~row:r ~col:c in
  m.values.(s) <- m.values.(s) +. v

let get m r c =
  match Hashtbl.find_opt m.pattern.index ((c * m.pattern.n) + r) with
  | Some s -> m.values.(s)
  | None -> 0.0

let iteri m f =
  let p = m.pattern in
  for c = 0 to p.n - 1 do
    for s = p.col_ptr.(c) to p.col_ptr.(c + 1) - 1 do
      f s p.row_ind.(s) c m.values.(s)
    done
  done

let of_matrix (dm : Matrix.t) =
  if dm.Matrix.rows <> dm.Matrix.cols then invalid_arg "Sparse.of_matrix: matrix not square";
  let n = dm.Matrix.rows in
  let b = Builder.create n in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if Matrix.get dm r c <> 0.0 then Builder.add b r c
    done
  done;
  let m = create (Builder.compile b) in
  iteri m (fun s r c _ -> m.values.(s) <- Matrix.get dm r c);
  m

let to_matrix m =
  let n = m.pattern.n in
  let dm = Matrix.create n n in
  iteri m (fun _ r c v -> Matrix.set dm r c v);
  dm

(* --- pattern-reusing LU ------------------------------------------------ *)

type lu = {
  ln : int;
  perm : int array; (* perm.(k) = original row pivoting elimination step k *)
  pinv : int array; (* inverse: pinv.(orig_row) = elimination step *)
  (* CSC fill-in patterns in permuted row space. L is unit lower
     triangular with the diagonal implicit (entries strictly below);
     each U column stores its sub-diagonal rows ascending with the
     diagonal as the LAST entry, so a forward scan is elimination
     order. *)
  lp : int array;
  li : int array;
  lx : float array;
  up : int array;
  ui : int array;
  ux : float array;
  work : float array; (* dense column accumulator, length n *)
  for_pattern : pattern;
}

(* Observability probes: "factor"/"solve" spans tagged with the engine,
   folded into the factor.seconds / solve.seconds histograms shared with
   the dense {!Lu} path. Disabled cost: two atomic loads per call. *)
let refactor_probe =
  Lattice_obs.Probe.make ~cat:"numerics"
    ~args:[ ("engine", "sparse"); ("mode", "refactor") ]
    ~hist:"factor.seconds" "factor"

let factorize_probe =
  Lattice_obs.Probe.make ~cat:"numerics"
    ~args:[ ("engine", "sparse"); ("mode", "full") ]
    ~hist:"factor.seconds" "factor"

let solve_probe =
  Lattice_obs.Probe.make ~cat:"numerics" ~args:[ ("engine", "sparse") ] ~hist:"solve.seconds"
    "solve"

(* Numeric-only left-looking refactorization over the frozen pattern. *)
let refactor_numeric lu (m : t) =
  if not (lu.for_pattern == m.pattern) then
    invalid_arg "Sparse.refactor: matrix pattern differs from the analyzed one";
  let { col_ptr; row_ind; _ } = m.pattern in
  let work = lu.work in
  let lp = lu.lp and li = lu.li and lx = lu.lx in
  let up = lu.up and ui = lu.ui and ux = lu.ux in
  let pinv = lu.pinv in
  let values = m.values in
  for j = 0 to lu.ln - 1 do
    (* zero this column's fill pattern, then scatter A(:, j) into it *)
    for s = up.(j) to up.(j + 1) - 1 do
      work.(ui.(s)) <- 0.0
    done;
    for s = lp.(j) to lp.(j + 1) - 1 do
      work.(li.(s)) <- 0.0
    done;
    for s = col_ptr.(j) to col_ptr.(j + 1) - 1 do
      work.(pinv.(row_ind.(s))) <- values.(s)
    done;
    (* eliminate with already-finished columns; ascending row order of
       the U pattern is a topological order for the triangular updates *)
    for s = up.(j) to up.(j + 1) - 2 do
      let k = ui.(s) in
      let ukj = work.(k) in
      ux.(s) <- ukj;
      if ukj <> 0.0 then
        for t = lp.(k) to lp.(k + 1) - 1 do
          work.(li.(t)) <- work.(li.(t)) -. (lx.(t) *. ukj)
        done
    done;
    let pivot = work.(j) in
    if Float.abs pivot < pivot_floor then raise (Singular j);
    ux.(up.(j + 1) - 1) <- pivot;
    for t = lp.(j) to lp.(j + 1) - 1 do
      lx.(t) <- work.(li.(t)) /. pivot
    done
  done

let refactor lu m =
  let t0 = Lattice_obs.Probe.enter refactor_probe in
  match refactor_numeric lu m with
  | () -> Lattice_obs.Probe.leave refactor_probe t0
  | exception e ->
    Lattice_obs.Probe.leave refactor_probe t0;
    raise e

let factorize_impl (m : t) =
  let p = m.pattern in
  let n = p.n in
  (* 1. choose the row permutation with a dense partially-pivoted
     elimination on the scattered values (once per topology; the sparse
     refactorization then freezes this order, KLU-style) *)
  let d = Array.make (n * n) 0.0 in
  iteri m (fun _ r c v -> d.((r * n) + c) <- v);
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let best = ref k in
    let best_mag = ref (Float.abs d.((k * n) + k)) in
    for r = k + 1 to n - 1 do
      let mag = Float.abs d.((r * n) + k) in
      if mag > !best_mag then begin
        best := r;
        best_mag := mag
      end
    done;
    if !best_mag < pivot_floor then raise (Singular k);
    if !best <> k then begin
      let b = !best in
      for c = 0 to n - 1 do
        let tmp = d.((k * n) + c) in
        d.((k * n) + c) <- d.((b * n) + c);
        d.((b * n) + c) <- tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(b);
      perm.(b) <- tmp
    end;
    let pivot = d.((k * n) + k) in
    for r = k + 1 to n - 1 do
      let f = d.((r * n) + k) /. pivot in
      d.((r * n) + k) <- f;
      if f <> 0.0 then
        for c = k + 1 to n - 1 do
          d.((r * n) + c) <- d.((r * n) + c) -. (f *. d.((k * n) + c))
        done
    done
  done;
  let pinv = Array.make n 0 in
  Array.iteri (fun k orig -> pinv.(orig) <- k) perm;
  (* 2. symbolic fill-in for the fixed order: the pattern of column j of
     L+U is the set of rows reachable from the structural entries of
     A(:, j) through the columns of L already computed (Gilbert-Peierls
     reachability; a plain transitive-closure mark suffices because the
     numeric pass consumes U rows in ascending = topological order) *)
  let lpat = Array.make n [||] in
  let upat = Array.make n [||] in
  let flag = Array.make n (-1) in
  let stack = Array.make n 0 in
  for j = 0 to n - 1 do
    let visited = ref [] in
    let top = ref 0 in
    let push i =
      if flag.(i) <> j then begin
        flag.(i) <- j;
        visited := i :: !visited;
        stack.(!top) <- i;
        incr top
      end
    in
    for s = p.col_ptr.(j) to p.col_ptr.(j + 1) - 1 do
      push pinv.(p.row_ind.(s))
    done;
    while !top > 0 do
      decr top;
      let i = stack.(!top) in
      if i < j then
        (* fill spreads through column i of L *)
        Array.iter push lpat.(i)
    done;
    let us = List.sort compare (List.filter (fun i -> i < j) !visited) in
    let ls = List.sort compare (List.filter (fun i -> i > j) !visited) in
    upat.(j) <- Array.of_list (us @ [ j ]);
    lpat.(j) <- Array.of_list ls
  done;
  let flatten pats =
    let ptr = Array.make (n + 1) 0 in
    for j = 0 to n - 1 do
      ptr.(j + 1) <- ptr.(j) + Array.length pats.(j)
    done;
    let ind = Array.make ptr.(n) 0 in
    for j = 0 to n - 1 do
      Array.blit pats.(j) 0 ind ptr.(j) (Array.length pats.(j))
    done;
    (ptr, ind)
  in
  let lp, li = flatten lpat in
  let up, ui = flatten upat in
  let lu =
    {
      ln = n;
      perm;
      pinv;
      lp;
      li;
      lx = Array.make (Array.length li) 0.0;
      up;
      ui;
      ux = Array.make (Array.length ui) 0.0;
      work = Array.make n 0.0;
      for_pattern = p;
    }
  in
  (* 3. numeric values through the same code path used on every reuse *)
  refactor_numeric lu m;
  lu

let factorize m =
  let t0 = Lattice_obs.Probe.enter factorize_probe in
  match factorize_impl m with
  | lu ->
    Lattice_obs.Probe.leave factorize_probe t0;
    lu
  | exception e ->
    Lattice_obs.Probe.leave factorize_probe t0;
    raise e

let solve_in_place_impl lu b =
  let n = lu.ln in
  if Array.length b <> n then invalid_arg "Sparse.solve_in_place: size mismatch";
  let work = lu.work in
  for i = 0 to n - 1 do
    work.(i) <- b.(lu.perm.(i))
  done;
  (* forward substitution, unit lower triangle, column-oriented *)
  for j = 0 to n - 1 do
    let xj = work.(j) in
    if xj <> 0.0 then
      for t = lu.lp.(j) to lu.lp.(j + 1) - 1 do
        work.(lu.li.(t)) <- work.(lu.li.(t)) -. (lu.lx.(t) *. xj)
      done
  done;
  (* backward substitution, column-oriented; diagonal is last per column *)
  for j = n - 1 downto 0 do
    let xj = work.(j) /. lu.ux.(lu.up.(j + 1) - 1) in
    work.(j) <- xj;
    if xj <> 0.0 then
      for t = lu.up.(j) to lu.up.(j + 1) - 2 do
        work.(lu.ui.(t)) <- work.(lu.ui.(t)) -. (lu.ux.(t) *. xj)
      done
  done;
  Array.blit work 0 b 0 n

let solve_in_place lu b =
  let t0 = Lattice_obs.Probe.enter solve_probe in
  solve_in_place_impl lu b;
  Lattice_obs.Probe.leave solve_probe t0

let solve lu b =
  let out = Array.copy b in
  solve_in_place lu out;
  out

let lu_nnz lu = (Array.length lu.li, Array.length lu.ui)
