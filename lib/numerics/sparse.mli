(** Compressed-sparse-column matrices with a frozen pattern, plus a
    pattern-reusing sparse LU (KLU-style split).

    The intended workflow is the circuit-simulator one: the nonzero
    pattern of the MNA matrix is fixed by the netlist topology, so it is
    built {e once} (through {!Builder}), values are rewritten in place on
    every Newton iteration through precomputed {e slot} indices, and the
    factorization is split into a one-time analysis ({!factorize}:
    pivot-order selection plus symbolic fill-in computation) and a cheap
    numeric-only {!refactor} that reuses the frozen elimination pattern.

    [refactor] and [solve_in_place] allocate nothing, which is what makes
    an allocation-free Newton inner loop possible upstream. *)

exception Singular of int
(** Raised when elimination hits a pivot below the absolute floor
    ([1e-300], matching {!Lu.Singular}); the payload is the elimination
    column. *)

type pattern
(** The frozen nonzero structure of an [n * n] matrix. *)

type t = {
  pattern : pattern;
  values : float array;
      (** one value per structural nonzero, column-major; index with the
          slot numbers handed out by {!slot}. Safe to [Array.blit] into. *)
}

module Builder : sig
  type b

  val create : int -> b
  (** [create n] starts a pattern for an [n * n] matrix. *)

  val add : b -> int -> int -> unit
  (** [add b row col] reserves a structural nonzero; duplicates are
      merged. Raises [Invalid_argument] out of range. *)

  val compile : b -> pattern
  (** Freeze into a CSC pattern. The builder may be reused afterwards. *)
end

val dim : pattern -> int
val nnz : pattern -> int

val slot : pattern -> row:int -> col:int -> int
(** Index into [values] of a reserved entry. Raises [Invalid_argument]
    if [(row, col)] was not reserved. *)

val mem : pattern -> row:int -> col:int -> bool

val create : pattern -> t
(** A zero matrix over a compiled pattern. *)

val clear : t -> unit

val add : t -> int -> int -> float -> unit
(** [add m row col v] accumulates into a reserved slot (hash lookup; use
    {!slot} ahead of time in hot loops). *)

val get : t -> int -> int -> float
(** 0 outside the pattern. *)

val iteri : t -> (int -> int -> int -> float -> unit) -> unit
(** [iteri m f] calls [f slot row col value] for every structural
    nonzero. *)

val of_matrix : Matrix.t -> t
(** Pattern from the nonzero entries of a dense matrix (test helper). *)

val to_matrix : t -> Matrix.t

(** {1 Pattern-reusing LU} *)

type lu
(** A sparse LU factorization: row permutation (partial pivoting chosen
    during {!factorize}), fill-in pattern, and numeric values. All
    buffers are owned by the [lu] and reused by {!refactor}. *)

val factorize : t -> lu
(** Full analysis + numeric factorization. The pivot order is chosen by
    a dense partially-pivoted elimination on the scattered matrix (run
    once per topology), then the fill-in pattern of L and U is computed
    symbolically for that fixed order, and the numeric values are filled
    by {!refactor}. Raises {!Singular}. *)

val refactor : lu -> t -> unit
(** Numeric-only refactorization: the matrix must share the [pattern]
    the [lu] was analyzed for (physical equality); the pivot order and
    fill pattern are reused, only the values are recomputed. Allocates
    nothing. Raises {!Singular} when a pivot drops below the floor (the
    caller should then redo {!factorize}, which re-picks pivots). *)

val solve_in_place : lu -> float array -> unit
(** Overwrite [b] with the solution of [A x = b]. Allocates nothing. *)

val solve : lu -> float array -> float array
(** Allocating convenience wrapper over {!solve_in_place}. *)

val lu_nnz : lu -> int * int
(** [(nnz L, nnz U)] including fill-in (L's unit diagonal excluded,
    U's diagonal included) — observability for benches and docs. *)
