(** Matrix-free conjugate-gradient solver for symmetric positive-definite
    operators.

    Used by the 2-D field solver ([Lattice_device.Field2d]) as the
    reference path (the production path for large grids is
    [Multigrid.pcg]), where the five-point operator is applied on the fly
    rather than assembled. *)

(** Why a solve ended. [converged] below is [status = Converged]; the
    other constructors disambiguate the old "[converged = false] at
    [max_iter]" case:
    - [Max_iterations]: the iteration cap was reached while the residual
      was still shrinking — raising [max_iter] may converge.
    - [Stagnated]: the residual failed to set a new best (improving on it
      by at least 0.1%) for 1000 consecutive iterations — more iterations
      will not help (round-off floor, or an inconsistent/indefinite
      system).
    - [Indefinite]: a search direction had non-positive curvature
      ([p' A p <= 0]); the operator is not SPD and CG is the wrong tool.

    Every solve increments the [cg.solves_total] obs counter and records
    its iteration count in the [cg.iterations] histogram; stagnated solves
    additionally increment [cg.stagnations_total]. *)
type status = Converged | Max_iterations | Stagnated | Indefinite

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
  status : status;
}

val status_name : status -> string

(** [solve ~apply ~b ?x0 ?tol ?max_iter ()] solves [A x = b] where
    [apply x out] writes [A x] into [out]. The operator must be symmetric
    positive definite for convergence guarantees.

    @param x0 initial guess (defaults to zero)
    @param tol relative residual target on [||r|| / ||b||] (default [1e-10])
    @param max_iter iteration cap (default [4 * length b]) *)
val solve :
  apply:(Vec.t -> Vec.t -> unit) ->
  b:Vec.t ->
  ?x0:Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
