type status = Converged | Max_iterations | Stagnated | Indefinite

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
  status : status;
}

let status_name = function
  | Converged -> "converged"
  | Max_iterations -> "max-iterations"
  | Stagnated -> "stagnated"
  | Indefinite -> "indefinite"

let solves_total = Lattice_obs.Metrics.counter "cg.solves_total"
let stagnations_total = Lattice_obs.Metrics.counter "cg.stagnations_total"
let iterations_hist = Lattice_obs.Metrics.histogram "cg.iterations"

(* the residual must set a new best (improved by at least the factor)
   within [stagnation_window] iterations of the previous best, or the
   solve is declared stagnated. The window is deliberately generous:
   ill-conditioned CG residuals plateau (even rise) for long stretches
   before dropping. *)
let stagnation_window = 1000
let stagnation_factor = 0.999

let solve ~apply ~b ?x0 ?(tol = 1e-10) ?max_iter () =
  Lattice_obs.Metrics.Counter.incr solves_total;
  let n = Array.length b in
  let max_iter = match max_iter with Some m -> m | None -> 4 * n in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let ax = Vec.zeros n in
  apply x ax;
  let r = Vec.sub b ax in
  let p = Vec.copy r in
  let ap = Vec.zeros n in
  let b_norm = Vec.norm2 b in
  let target = if b_norm = 0.0 then tol else tol *. b_norm in
  let rs_old = ref (Vec.dot r r) in
  let best = ref infinity in
  let best_iter = ref 0 in
  let finish iter r_norm status =
    if status = Stagnated then Lattice_obs.Metrics.Counter.incr stagnations_total;
    Lattice_obs.Metrics.Histogram.observe iterations_hist (float_of_int iter);
    { solution = x; iterations = iter; residual_norm = r_norm;
      converged = (status = Converged); status }
  in
  let rec loop iter =
    let r_norm = sqrt !rs_old in
    if r_norm <= target then finish iter r_norm Converged
    else if iter >= max_iter then finish iter r_norm Max_iterations
    else if
      (if r_norm < stagnation_factor *. !best then begin
         best := r_norm;
         best_iter := iter;
         false
       end
       else iter - !best_iter >= stagnation_window)
    then finish iter r_norm Stagnated
    else begin
      apply p ap;
      let p_ap = Vec.dot p ap in
      if p_ap <= 0.0 then
        (* operator not SPD along p; stop rather than diverge *)
        finish iter r_norm Indefinite
      else begin
        let alpha = !rs_old /. p_ap in
        Vec.axpy alpha p x;
        Vec.axpy (-.alpha) ap r;
        let rs_new = Vec.dot r r in
        let beta = rs_new /. !rs_old in
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done;
        rs_old := rs_new;
        loop (iter + 1)
      end
    end
  in
  loop 0
