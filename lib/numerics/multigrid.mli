(** Geometric multigrid for the cell-centred variable-coefficient operator
    [div (sigma grad V)] on an [n x n] grid, described by per-face
    conductances and a Dirichlet mask.

    Every level solves the homogeneous-Dirichlet correction equation
    (fixed cells hold 0 and are never written); Dirichlet boundary values
    are lifted into the right-hand side with {!dirichlet_rhs} /
    {!solve_dirichlet}. The cycle is V(2,2): red-black Gauss-Seidel
    smoothing (colour order reversed on the post-sweeps) and aggregation
    (piecewise-constant) transfers over 2x2 blocks — restriction sums the
    four fine residuals, prolongation injects the coarse correction, an
    exact transpose pair that never interpolates across a coefficient
    jump; coarse face conductances are the half-sum of the two fine faces
    crossing each coarse interface. Grids halve while even and [>= 8];
    the coarsest level is relaxed with a fixed number of sweeps.

    The production driver is {!pcg}: flexible (Polak-Ribiere)
    preconditioned conjugate gradients with one V-cycle per iteration,
    robust to the mild asymmetry the boundary clamping introduces.
    {!vcycle_solve} iterates plain V-cycles, for ablation and tests.

    Observability: each V-cycle runs under the [mg.vcycle] probe
    (histogram [mg.vcycle.seconds]) and bumps [mg.v_cycles_total]; every
    smoother sweep bumps [mg.smoother_sweeps_total]. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

type stats = {
  iterations : int;  (** PCG iterations ({!pcg}) or V-cycle count ({!vcycle_solve}) *)
  v_cycles : int;  (** V-cycles run by this hierarchy since {!create} *)
  sweeps : int;  (** smoother sweeps (one sweep = both colours) since {!create} *)
  residual_norm : float;
  converged : bool;
}

val vec : int -> vec
(** Zero-filled Bigarray vector helper. *)

(** [create ~n ~gx ~gy ~fixed] builds the level hierarchy.
    [gx.(r*n + c)] is the face conductance between cells [(r, c)] and
    [(r, c+1)] (ignored for [c = n-1]); [gy.(r*n + c)] between [(r, c)]
    and [(r+1, c)] (ignored for [r = n-1]); [fixed] marks Dirichlet cells
    with a non-zero byte. Coefficients are copied; a coarse cell is
    Dirichlet when any of its four children is. Raises [Invalid_argument]
    on size mismatches or [n < 3]. *)
val create : n:int -> gx:vec -> gy:vec -> fixed:Bytes.t -> t

val n_levels : t -> int

(** [pcg t ~b ?tol ?max_iter ()] solves [A x = b] with zero values on
    Dirichlet cells, by V-cycle-preconditioned flexible CG. [tol] is the
    relative residual target on free cells (default [1e-10], matching
    {!Cg.solve}); [max_iter] defaults to 400. Returns the solution (0 at
    fixed cells) and the run's stats. *)
val pcg : t -> b:vec -> ?tol:float -> ?max_iter:int -> unit -> vec * stats

(** [vcycle_solve t ~b ?tol ?max_cycles ()] iterates stationary V-cycles
    ([x <- x + MG(b - A x)]) to the same tolerance semantics. *)
val vcycle_solve : t -> b:vec -> ?tol:float -> ?max_cycles:int -> unit -> vec * stats

(** [dirichlet_rhs t ~dirichlet] lifts boundary values into the
    correction right-hand side: [b_i = sum_j g_ij * dirichlet_j] over the
    fixed neighbours [j] of each free cell [i]. *)
val dirichlet_rhs : t -> dirichlet:vec -> vec

(** [solve_dirichlet t ~dirichlet ?tol ?max_iter ()] runs {!pcg} on
    {!dirichlet_rhs} and writes the Dirichlet values back into the
    returned solution, so the result is the full potential field. *)
val solve_dirichlet : t -> dirichlet:vec -> ?tol:float -> ?max_iter:int -> unit -> vec * stats
