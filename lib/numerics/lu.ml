exception Singular of int

type factored = {
  n : int;
  lu : float array; (* row-major; unit lower triangle below diagonal, U on and above *)
  perm : int array; (* row permutation applied during elimination *)
  sign : float; (* parity of the permutation, for the determinant *)
}

let pivot_floor = 1e-300

(* Observability probes shared (by histogram name) with the sparse
   engine, so "factor.seconds" aggregates whichever engine ran. *)
let factor_probe =
  Lattice_obs.Probe.make ~cat:"numerics" ~args:[ ("engine", "dense") ] ~hist:"factor.seconds"
    "factor"

let solve_probe =
  Lattice_obs.Probe.make ~cat:"numerics" ~args:[ ("engine", "dense") ] ~hist:"solve.seconds"
    "solve"

(* Doolittle elimination with partial pivoting on a scratch copy. *)
let factor_impl (m : Matrix.t) =
  if m.Matrix.rows <> m.Matrix.cols then invalid_arg "Lu.factor: matrix not square";
  let n = m.Matrix.rows in
  let lu = Array.copy m.Matrix.data in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* choose pivot row *)
    let best = ref k in
    let best_mag = ref (Float.abs lu.((k * n) + k)) in
    for r = k + 1 to n - 1 do
      let mag = Float.abs lu.((r * n) + k) in
      if mag > !best_mag then begin
        best := r;
        best_mag := mag
      end
    done;
    if !best_mag < pivot_floor then raise (Singular k);
    if !best <> k then begin
      let b = !best in
      for c = 0 to n - 1 do
        let tmp = lu.((k * n) + c) in
        lu.((k * n) + c) <- lu.((b * n) + c);
        lu.((b * n) + c) <- tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(b);
      perm.(b) <- tmp;
      sign := -. !sign
    end;
    let pivot = lu.((k * n) + k) in
    for r = k + 1 to n - 1 do
      let factor = lu.((r * n) + k) /. pivot in
      lu.((r * n) + k) <- factor;
      if factor <> 0.0 then
        for c = k + 1 to n - 1 do
          lu.((r * n) + c) <- lu.((r * n) + c) -. (factor *. lu.((k * n) + c))
        done
    done
  done;
  { n; lu; perm; sign = !sign }

let factor m =
  let t0 = Lattice_obs.Probe.enter factor_probe in
  match factor_impl m with
  | f ->
    Lattice_obs.Probe.leave factor_probe t0;
    f
  | exception e ->
    Lattice_obs.Probe.leave factor_probe t0;
    raise e

let solve_in_place_impl f b =
  let { n; lu; perm; _ } = f in
  if Array.length b <> n then invalid_arg "Lu.solve: size mismatch";
  (* apply permutation *)
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* backward substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc /. lu.((i * n) + i)
  done;
  Array.blit x 0 b 0 n

let solve_in_place f b =
  let t0 = Lattice_obs.Probe.enter solve_probe in
  solve_in_place_impl f b;
  Lattice_obs.Probe.leave solve_probe t0

let solve f b =
  let out = Array.copy b in
  solve_in_place f out;
  out

let solve_dense m b = solve (factor m) b

let determinant f =
  let acc = ref f.sign in
  for i = 0 to f.n - 1 do
    acc := !acc *. f.lu.((i * f.n) + i)
  done;
  !acc

let condition_estimate f =
  let mx = ref 0.0 and mn = ref infinity in
  for i = 0 to f.n - 1 do
    let p = Float.abs f.lu.((i * f.n) + i) in
    if p > !mx then mx := p;
    if p < !mn then mn := p
  done;
  if !mn = 0.0 then infinity else !mx /. !mn
