(* Geometric multigrid for the cell-centred variable-coefficient operator
   div (sigma grad V) on an n x n grid.

   The operator is described by per-face conductances (gx between
   horizontally adjacent cells, gy between vertically adjacent cells) and
   a Dirichlet mask. All levels solve the homogeneous-Dirichlet
   *correction* equation: fixed cells hold 0 and are never written, so
   the smoother can read neighbour values branchlessly. The caller lifts
   Dirichlet boundary values into the right-hand side ([dirichlet_rhs])
   and adds them back after the solve ([solve_dirichlet] does both).

   V-cycle schedule: V(2,2) with red-black Gauss-Seidel smoothing
   (red/black pre-sweeps, black/red post-sweeps, so one cycle is a
   symmetric operator up to the grid-transfer pair) and aggregation
   (piecewise-constant) transfers over 2x2 blocks: restriction sums the
   four fine residuals, prolongation injects the coarse correction into
   the children — an exact transpose pair that never interpolates across
   a coefficient jump. Coarse face conductances are the half-sum of the
   two fine faces crossing the coarse interface (the resistor-network
   coarsening: doubled cross-section over doubled path length), which
   keeps the coarse operator consistent with the restricted smooth-error
   equation. Grids halve while the size is even and >= 8; the coarsest
   level is relaxed with a fixed number of sweeps.

   Because the cycle is only symmetric up to the Dirichlet masking in the
   transfers, the PCG driver uses the *flexible* (Polak-Ribiere) beta, so
   one V-cycle per iteration is a safe preconditioner even where the
   cycle deviates from an exact SPD operator. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let vcycle_probe =
  Lattice_obs.Probe.make ~cat:"numerics" ~hist:"mg.vcycle.seconds" "mg.vcycle"

let sweeps_total = Lattice_obs.Metrics.counter "mg.smoother_sweeps_total"
let vcycles_total = Lattice_obs.Metrics.counter "mg.v_cycles_total"

let vec n : vec =
  let v = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill v 0.0;
  v

let g = Bigarray.Array1.unsafe_get
let s = Bigarray.Array1.unsafe_set

type level = {
  n : int;
  gx : vec;  (* face (r,c)-(r,c+1) at r*n+c; 0 when c = n-1 *)
  gy : vec;  (* face (r,c)-(r+1,c) at r*n+c; 0 when r = n-1 *)
  diag : vec;  (* sum of the cell's face conductances; 0 marks "skip" *)
  fixed : Bytes.t;  (* '\001' = Dirichlet cell *)
  x : vec;  (* correction iterate on this level *)
  b : vec;  (* right-hand side on this level *)
  r : vec;  (* residual scratch *)
}

type t = {
  levels : level array;
  mutable v_cycles : int;
  mutable sweep_count : int;
}

type stats = {
  iterations : int;
  v_cycles : int;
  sweeps : int;
  residual_norm : float;
  converged : bool;
}

let coarsest_min = 8
let pre_sweeps = 2
let post_sweeps = 2
let coarse_sweeps = 60

let is_fixed l i = Bytes.unsafe_get l.fixed i <> '\000'

let make_level n gx gy fixed =
  let nn = n * n in
  let diag = vec nn in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let i = (r * n) + c in
      let d =
        (if c < n - 1 then g gx i else 0.0)
        +. (if c > 0 then g gx (i - 1) else 0.0)
        +. (if r < n - 1 then g gy i else 0.0)
        +. (if r > 0 then g gy (i - n) else 0.0)
      in
      s diag i d;
      (* a free cell with no coupling has no equation: freeze it *)
      if d <= 0.0 then Bytes.set fixed i '\001'
    done
  done;
  { n; gx; gy; diag; fixed; x = vec nn; b = vec nn; r = vec nn }

let coarsen (l : level) =
  let n = l.n in
  let nc = n / 2 in
  let gxc = vec (nc * nc) and gyc = vec (nc * nc) in
  let fixedc = Bytes.make (nc * nc) '\000' in
  for rr = 0 to nc - 1 do
    for cc = 0 to nc - 1 do
      let ic = (rr * nc) + cc in
      let i00 = (2 * rr * n) + (2 * cc) in
      if cc < nc - 1 then
        (* the two fine faces crossing the coarse vertical interface *)
        s gxc ic (0.5 *. (g l.gx (i00 + 1) +. g l.gx (i00 + n + 1)));
      if rr < nc - 1 then
        s gyc ic (0.5 *. (g l.gy (i00 + n) +. g l.gy (i00 + n + 1)));
      if
        is_fixed l i00 || is_fixed l (i00 + 1) || is_fixed l (i00 + n)
        || is_fixed l (i00 + n + 1)
      then Bytes.set fixedc ic '\001'
    done
  done;
  make_level nc gxc gyc fixedc

let create ~n ~gx ~gy ~fixed =
  if n < 3 then invalid_arg "Multigrid.create: grid too coarse";
  if Bigarray.Array1.dim gx <> n * n || Bigarray.Array1.dim gy <> n * n then
    invalid_arg "Multigrid.create: coefficient arrays must have n*n entries";
  if Bytes.length fixed <> n * n then
    invalid_arg "Multigrid.create: fixed mask must have n*n entries";
  let copy_vec (v : vec) =
    let c = vec (Bigarray.Array1.dim v) in
    Bigarray.Array1.blit v c;
    c
  in
  let finest = make_level n (copy_vec gx) (copy_vec gy) (Bytes.copy fixed) in
  let rec build acc l =
    if l.n mod 2 = 0 && l.n >= coarsest_min then begin
      let c = coarsen l in
      build (c :: acc) c
    end
    else List.rev acc
  in
  { levels = Array.of_list (build [ finest ] finest); v_cycles = 0; sweep_count = 0 }

let n_levels t = Array.length t.levels
let finest t = t.levels.(0)

(* one Gauss-Seidel half-sweep over the cells of one color (0 = red) *)
let half_sweep (l : level) color =
  let n = l.n in
  let x = l.x and b = l.b and gx = l.gx and gy = l.gy and diag = l.diag in
  for r = 0 to n - 1 do
    let row = r * n in
    let c0 = (color + r) land 1 in
    let c = ref c0 in
    while !c < n do
      let i = row + !c in
      let d = g diag i in
      if d > 0.0 && not (is_fixed l i) then begin
        let acc = ref (g b i) in
        if !c > 0 then acc := !acc +. (g gx (i - 1) *. g x (i - 1));
        if !c < n - 1 then acc := !acc +. (g gx i *. g x (i + 1));
        if r > 0 then acc := !acc +. (g gy (i - n) *. g x (i - n));
        if r < n - 1 then acc := !acc +. (g gy i *. g x (i + n));
        s x i (!acc /. d)
      end;
      c := !c + 2
    done
  done

let smooth t l ~reversed count =
  for _ = 1 to count do
    if reversed then begin
      half_sweep l 1;
      half_sweep l 0
    end
    else begin
      half_sweep l 0;
      half_sweep l 1
    end;
    t.sweep_count <- t.sweep_count + 1;
    Lattice_obs.Metrics.Counter.incr sweeps_total
  done

(* residual r = b - A x on free cells (0 on fixed cells) *)
let residual (l : level) =
  let n = l.n in
  let x = l.x and b = l.b and gx = l.gx and gy = l.gy and diag = l.diag and res = l.r in
  for r = 0 to n - 1 do
    let row = r * n in
    for c = 0 to n - 1 do
      let i = row + c in
      if is_fixed l i then s res i 0.0
      else begin
        let acc = ref (g b i -. (g diag i *. g x i)) in
        if c > 0 then acc := !acc +. (g gx (i - 1) *. g x (i - 1));
        if c < n - 1 then acc := !acc +. (g gx i *. g x (i + 1));
        if r > 0 then acc := !acc +. (g gy (i - n) *. g x (i - n));
        if r < n - 1 then acc := !acc +. (g gy i *. g x (i + n));
        s res i !acc
      end
    done
  done

(* Aggregation (piecewise-constant) transfers over 2x2 blocks:
   restriction sums the four fine residuals of each block, prolongation
   injects the coarse correction into each free child. The pair is an
   exact transpose, and — crucially for the 9-decade conductivity
   contrasts of the device grids — never interpolates across a
   coefficient jump: a child inherits its own aggregate's value exactly.
   Together with the half-sum face coarsening this is the resistor-network
   aggregation, which keeps the smooth-error scaling of the coarse
   operator consistent (the sum of the four child equations of a smooth
   error equals the coarse equation with half-sum conductances). *)
let restrict (fine : level) (coarse : level) =
  let n = fine.n and nc = coarse.n in
  Bigarray.Array1.fill coarse.x 0.0;
  for rr = 0 to nc - 1 do
    for cc = 0 to nc - 1 do
      let i00 = (2 * rr * n) + (2 * cc) in
      s coarse.b ((rr * nc) + cc)
        (g fine.r i00 +. g fine.r (i00 + 1) +. g fine.r (i00 + n) +. g fine.r (i00 + n + 1))
    done
  done

let prolong_add (coarse : level) (fine : level) =
  let n = fine.n and nc = coarse.n in
  for rr = 0 to nc - 1 do
    for cc = 0 to nc - 1 do
      let v = g coarse.x ((rr * nc) + cc) in
      if v <> 0.0 then begin
        let i00 = (2 * rr * n) + (2 * cc) in
        let add i = if not (is_fixed fine i) then s fine.x i (g fine.x i +. v) in
        add i00;
        add (i00 + 1);
        add (i00 + n);
        add (i00 + n + 1)
      end
    done
  done

let rec cycle t depth =
  let l = t.levels.(depth) in
  if depth = Array.length t.levels - 1 then smooth t l ~reversed:false coarse_sweeps
  else begin
    smooth t l ~reversed:false pre_sweeps;
    residual l;
    restrict l t.levels.(depth + 1);
    cycle t (depth + 1);
    prolong_add t.levels.(depth + 1) l;
    smooth t l ~reversed:true post_sweeps
  end

(* one V-cycle improving levels.(0).x for the rhs in levels.(0).b *)
let v_cycle t =
  let t0 = Lattice_obs.Probe.enter vcycle_probe in
  cycle t 0;
  t.v_cycles <- t.v_cycles + 1;
  Lattice_obs.Metrics.Counter.incr vcycles_total;
  Lattice_obs.Probe.leave vcycle_probe t0

(* --- drivers ---------------------------------------------------------- *)

let dot (a : vec) (b : vec) =
  let acc = ref 0.0 in
  for i = 0 to Bigarray.Array1.dim a - 1 do
    acc := !acc +. (g a i *. g b i)
  done;
  !acc

let norm2 v = sqrt (dot v v)

let stats_of (t : t) ~iterations ~residual_norm ~converged =
  let v_cycles = t.v_cycles and sweeps = t.sweep_count in
  { iterations; v_cycles; sweeps; residual_norm; converged }

(* stationary V-cycle iteration: x_{k+1} = x_k + MG(b - A x_k) *)
let vcycle_solve t ~b ?(tol = 1e-10) ?(max_cycles = 100) () =
  let l = finest t in
  let nn = l.n * l.n in
  if Bigarray.Array1.dim b <> nn then invalid_arg "Multigrid.vcycle_solve: rhs size";
  Bigarray.Array1.blit b l.b;
  Bigarray.Array1.fill l.x 0.0;
  let x = vec nn in
  let b_norm = norm2 b in
  let target = if b_norm = 0.0 then tol else tol *. b_norm in
  let rec go k =
    (* accumulated solution lives in [x]; each cycle solves for a
       correction against the current residual *)
    residual { l with x };
    let r_norm = norm2 l.r in
    if r_norm <= target then stats_of t ~iterations:k ~residual_norm:r_norm ~converged:true
    else if k >= max_cycles then
      stats_of t ~iterations:k ~residual_norm:r_norm ~converged:false
    else begin
      Bigarray.Array1.blit l.r l.b;
      Bigarray.Array1.fill l.x 0.0;
      v_cycle t;
      for i = 0 to nn - 1 do
        s x i (g x i +. g l.x i)
      done;
      Bigarray.Array1.blit b l.b;
      go (k + 1)
    end
  in
  let st = go 0 in
  (x, st)

(* operator application on the finest level (free cells; fixed rows are 0) *)
let apply_fine (l : level) (p : vec) (out : vec) =
  let n = l.n in
  let gx = l.gx and gy = l.gy and diag = l.diag in
  for r = 0 to n - 1 do
    let row = r * n in
    for c = 0 to n - 1 do
      let i = row + c in
      if is_fixed l i then s out i 0.0
      else begin
        let acc = ref (g diag i *. g p i) in
        if c > 0 then acc := !acc -. (g gx (i - 1) *. g p (i - 1));
        if c < n - 1 then acc := !acc -. (g gx i *. g p (i + 1));
        if r > 0 then acc := !acc -. (g gy (i - n) *. g p (i - n));
        if r < n - 1 then acc := !acc -. (g gy i *. g p (i + n));
        s out i !acc
      end
    done
  done

(* flexible PCG (Polak-Ribiere beta) with one V-cycle as preconditioner *)
let pcg t ~b ?(tol = 1e-10) ?(max_iter = 400) () =
  let l = finest t in
  let nn = l.n * l.n in
  if Bigarray.Array1.dim b <> nn then invalid_arg "Multigrid.pcg: rhs size";
  let x = vec nn and r = vec nn and z = vec nn and z_prev = vec nn in
  let p = vec nn and ap = vec nn in
  (* zero initial guess; mask the rhs at fixed cells so norms only see
     free-cell equations *)
  for i = 0 to nn - 1 do
    s r i (if is_fixed l i then 0.0 else g b i)
  done;
  let b_norm = norm2 r in
  let target = if b_norm = 0.0 then tol else tol *. b_norm in
  let precondition () =
    Bigarray.Array1.blit r l.b;
    Bigarray.Array1.fill l.x 0.0;
    v_cycle t;
    l.x
  in
  let rz = ref 0.0 in
  let rec go k r_norm =
    if r_norm <= target then stats_of t ~iterations:k ~residual_norm:r_norm ~converged:true
    else if k >= max_iter then
      stats_of t ~iterations:k ~residual_norm:r_norm ~converged:false
    else begin
      let mz = precondition () in
      Bigarray.Array1.blit mz z;
      let rz_new = dot r z in
      if rz_new <= 0.0 then
        (* preconditioner lost positivity: keep the current iterate *)
        stats_of t ~iterations:k ~residual_norm:r_norm ~converged:false
      else begin
        if k = 0 then Bigarray.Array1.blit z p
        else begin
          (* flexible beta: r . (z - z_prev) / rz_old *)
          let num = ref 0.0 in
          for i = 0 to nn - 1 do
            num := !num +. (g r i *. (g z i -. g z_prev i))
          done;
          let beta = Float.max 0.0 (!num /. !rz) in
          for i = 0 to nn - 1 do
            s p i (g z i +. (beta *. g p i))
          done
        end;
        Bigarray.Array1.blit z z_prev;
        rz := rz_new;
        apply_fine l p ap;
        let p_ap = dot p ap in
        if p_ap <= 0.0 then stats_of t ~iterations:k ~residual_norm:r_norm ~converged:false
        else begin
          let alpha = rz_new /. p_ap in
          for i = 0 to nn - 1 do
            s x i (g x i +. (alpha *. g p i));
            s r i (g r i -. (alpha *. g ap i))
          done;
          go (k + 1) (norm2 r)
        end
      end
    end
  in
  let st = go 0 b_norm in
  (x, st)

(* rhs of the homogeneous-correction system for Dirichlet boundary values:
   b_i = sum over fixed neighbours j of g_ij * dirichlet_j *)
let dirichlet_rhs t ~dirichlet =
  let l = finest t in
  let n = l.n in
  let nn = n * n in
  if Bigarray.Array1.dim dirichlet <> nn then
    invalid_arg "Multigrid.dirichlet_rhs: dirichlet size";
  let b = vec nn in
  for r = 0 to n - 1 do
    let row = r * n in
    for c = 0 to n - 1 do
      let i = row + c in
      if not (is_fixed l i) then begin
        let acc = ref 0.0 in
        if c > 0 && is_fixed l (i - 1) then
          acc := !acc +. (g l.gx (i - 1) *. g dirichlet (i - 1));
        if c < n - 1 && is_fixed l (i + 1) then
          acc := !acc +. (g l.gx i *. g dirichlet (i + 1));
        if r > 0 && is_fixed l (i - n) then
          acc := !acc +. (g l.gy (i - n) *. g dirichlet (i - n));
        if r < n - 1 && is_fixed l (i + n) then
          acc := !acc +. (g l.gy i *. g dirichlet (i + n));
        s b i !acc
      end
    done
  done;
  b

let solve_dirichlet t ~dirichlet ?tol ?max_iter () =
  let l = finest t in
  let nn = l.n * l.n in
  let b = dirichlet_rhs t ~dirichlet in
  let x, st = pcg t ~b ?tol ?max_iter () in
  for i = 0 to nn - 1 do
    if is_fixed l i then s x i (g dirichlet i)
  done;
  (x, st)
