type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  chunk : bytes;
  buf : Buffer.t;  (* bytes read past previously returned frames *)
  mutable scanned : int;  (* prefix of [buf] already known newline-free *)
  mutable eof : bool;
}

let reader ?(max_frame = 65536) fd =
  if max_frame < 1 then invalid_arg "Framing.reader: max_frame must be >= 1";
  { fd; max_frame; chunk = Bytes.create 8192; buf = Buffer.create 256; scanned = 0; eof = false }

type frame = Frame of string | Too_long of int | Nul | Eof

(* index of '\n' in [r.buf] at or past [r.scanned], advancing [scanned]
   so repeated scans of a growing partial line stay linear *)
let find_newline r =
  let s = Buffer.contents r.buf in
  match String.index_from_opt s r.scanned '\n' with
  | Some i -> Some (s, i)
  | None ->
    r.scanned <- String.length s;
    None

let refill r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> r.eof <- true
  | n -> Buffer.add_subbytes r.buf r.chunk 0 n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> r.eof <- true

(* extract the line ending at [s.[i] = '\n'], keep the tail buffered *)
let take_line r s i =
  let rest_start = i + 1 in
  let rest = String.sub s rest_start (String.length s - rest_start) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf rest;
  r.scanned <- 0;
  if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1) else String.sub s 0 i

(* drop pending bytes until a newline goes by, so the connection stays
   framed after an overlong line; returns the total bytes dropped *)
let discard_through_newline r already =
  let dropped = ref already in
  Buffer.clear r.buf;
  r.scanned <- 0;
  let result = ref None in
  while !result = None do
    match find_newline r with
    | Some (s, i) ->
      dropped := !dropped + i + 1;
      ignore (take_line r s i);
      result := Some (Too_long !dropped)
    | None ->
      let pending = Buffer.length r.buf in
      dropped := !dropped + pending;
      Buffer.clear r.buf;
      r.scanned <- 0;
      if r.eof then result := Some Eof else refill r
  done;
  Option.get !result

let rec read_frame r =
  match find_newline r with
  | Some (s, i) ->
    let line = take_line r s i in
    if String.length line > r.max_frame then Too_long (String.length line)
    else if String.contains line '\000' then Nul
    else Frame line
  | None ->
    if Buffer.length r.buf > r.max_frame then
      (* the unterminated line already blew the cap *)
      discard_through_newline r (Buffer.length r.buf)
    else if r.eof then Eof  (* a trailing unterminated line is dropped *)
    else begin
      refill r;
      read_frame r
    end

let write_frame fd s =
  let payload = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length payload in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd payload !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
