(** The `ftl serve` daemon: simulation-as-a-service over a Unix-domain
    (and optionally TCP) socket, multiplexing jobs onto one long-lived
    {!Lattice_engine.Engine}.

    {2 Architecture}

    One reader thread per connection parses newline-delimited JSON
    frames ({!Framing}, {!Protocol}). Control requests ([ping],
    [stats], [shutdown]) answer inline from the reader; compute
    requests are {e admitted} — per-client in-flight quota, then a
    bounded FIFO admission queue — and picked up by a fixed pool of
    worker threads that run the handler against the shared engine and
    write the response under the connection's write lock. Admission
    failure is an immediate structured error ([quota_exceeded] /
    [overloaded] — explicit backpressure, never a silent drop), and no
    request of any shape can kill the daemon: handler exceptions come
    back as [internal] errors, deadline overruns as [timeout].

    The engine — Domain pool, content-addressed DC cache, persistent
    {!Lattice_engine.Store} spill directory — lives for the daemon's
    lifetime, so the warm-cache hit rate compounds {e across requests
    and across clients}, and with a store directory also across daemon
    restarts: a restarted daemon answers repeat requests from disk with
    zero DC solves.

    {2 Shutdown}

    [shutdown] requests and SIGINT/SIGTERM (wired by {!run}) share one
    graceful path: stop admitting, drain queued and in-flight jobs
    (their responses are delivered), then close connections and
    listeners. Readers that race the drain get [shutting_down] errors.

    {2 Observability}

    Spans per phase ([serve.parse], [serve.handle]); process-wide
    counters [serve.requests] / [serve.responses.ok] /
    [serve.responses.error] / [serve.overloaded] /
    [serve.quota_rejected] / [serve.malformed]; histograms
    [serve.queue_wait.seconds] and [serve.handle.seconds]; level gauges
    [serve.queue.depth] and [serve.inflight]. The [stats] request
    returns the same numbers (plus engine/cache/store telemetry) as
    JSON, and {!Lattice_engine.Engine.publish_gauges} refreshes the
    [engine.live.*] gauges on every [stats] call and metrics export. *)

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** TCP listener on [tcp_host] *)
  tcp_host : string;  (** default 127.0.0.1 *)
  domains : int option;  (** engine Domain-pool width *)
  cache_capacity : int;
  store_dir : string option;  (** persistent DC-result store root *)
  workers : int;  (** worker threads executing compute requests *)
  queue_capacity : int;  (** admission-queue bound *)
  max_inflight_per_client : int;  (** per-connection quota *)
  default_deadline_s : float option;
      (** per-request budget when the request names none *)
  max_frame : int;  (** request-line byte cap *)
  drain_deadline_s : float;  (** graceful-shutdown drain budget *)
  allow_sleep : bool;  (** accept the test-only [sleep] request *)
  log : (string -> unit) option;  (** one line per lifecycle event *)
  slow_threshold_s : float option;
      (** a request slower than this triggers a flight-recorder dump;
          [None] dumps only on errors/timeouts *)
  flight_dir : string option;
      (** flight-recorder spool directory; [None] disables dumps *)
  flight_max_files : int;  (** spool cap: file count (oldest evicted) *)
  flight_max_bytes : int;  (** spool cap: total bytes (oldest evicted) *)
  access_log_path : string option;
      (** structured JSONL access log, one line per request *)
  access_log_max_bytes : int;  (** access-log rotation threshold *)
}

val default_config : config
(** No listeners (callers must set [socket_path] and/or [tcp_port]);
    2 workers; queue 64; quota 16; 30 s default deadline; 64 KiB
    frames; 10 s drain; [sleep] disabled; no log. Flight dumps go to
    [FTL_FLIGHT_DIR] when that is set (64 files / 16 MiB caps); no slow
    threshold; no access log. *)

type t

val create : ?config:config -> unit -> t
(** Builds the engine (honoring [FTL_DOMAINS]/[FTL_CACHE_DIR] like the
    CLI when the config leaves them unset). Nothing listens yet. *)

val engine : t -> Lattice_engine.Engine.t

val start : t -> unit
(** Bind the listeners (unlinking a stale socket file), spawn the
    accept and worker threads, and return. Raises [Invalid_argument]
    when the config names no listener, [Unix.Unix_error] on bind
    failure. *)

val port : t -> int option
(** The bound TCP port, once started — useful with [tcp_port = Some 0]
    (ephemeral port) in tests. *)

val request_stop : t -> unit
(** Flip the stop flag; safe from any thread and from signal handlers.
    {!wait} performs the actual teardown. *)

val wait : t -> unit
(** Block until a stop is requested ([shutdown] request,
    {!request_stop}, or a signal via {!run}), then tear down: stop
    accepting, drain in-flight work for up to [drain_deadline_s],
    join every thread, close every descriptor. Idempotent. *)

val stop : t -> unit
(** [request_stop] + [wait]. *)

val run : t -> unit
(** [start] + SIGINT/SIGTERM handlers (and SIGPIPE ignore) + [wait] —
    the CLI entry point. *)

val stats_json : t -> Json.t
(** The [stats] response body (also exposed for tests/CLI). *)
