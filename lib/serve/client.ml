type addr = Unix_socket of string | Tcp of string * int

type t = { fd : Unix.file_descr; r : Framing.reader; mutable closed : bool }

exception Protocol_error of string

let connect ?(max_frame = 16 * 1024 * 1024) addr =
  let fd, sockaddr =
    match addr with
    | Unix_socket path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
  in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  { fd; r = Framing.reader ~max_frame fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_raw t line = Framing.write_frame t.fd line

let recv_raw t =
  match Framing.read_frame t.r with
  | Framing.Frame line -> Some line
  | Framing.Eof -> None
  | Framing.Too_long n ->
    raise (Protocol_error (Printf.sprintf "response frame of %d bytes exceeds the client cap" n))
  | Framing.Nul -> raise (Protocol_error "response frame contains a NUL byte")

let call_raw t line =
  send_raw t line;
  match recv_raw t with
  | Some resp -> resp
  | None -> raise (Protocol_error "server closed the connection before answering")

let call t ?id ?deadline_s ?trace_id ?parent_span ~type_ fields =
  let envelope =
    [ ("type", Json.String type_) ]
    @ (match id with None -> [] | Some id -> [ ("id", id) ])
    @ (match deadline_s with
      | None -> []
      | Some d -> [ ("deadline_s", Json.Float d) ])
    @ (match trace_id with
      | None -> []
      | Some s -> [ ("trace_id", Json.String s) ])
    @
    match parent_span with
    | None -> []
    | Some s -> [ ("parent_span", Json.String s) ]
  in
  let line = Json.to_string (Json.Obj (envelope @ fields)) in
  match Protocol.parse_response (call_raw t line) with
  | Error msg -> raise (Protocol_error msg)
  | Ok { Protocol.payload; _ } -> payload

let ping t = match call t ~type_:"ping" [] with Ok _ -> true | Error _ -> false

let stats t =
  match call t ~type_:"stats" [] with
  | Ok result -> result
  | Error (code, msg) ->
    raise (Protocol_error (Printf.sprintf "stats failed: %s: %s" (Protocol.code_name code) msg))

let shutdown t =
  match call t ~type_:"shutdown" [] with
  | Ok _ -> ()
  | Error (code, msg) ->
    raise
      (Protocol_error (Printf.sprintf "shutdown failed: %s: %s" (Protocol.code_name code) msg))
