type request =
  | Ping
  | Stats
  | Metrics_text
  | Shutdown
  | Sleep of { seconds : float }
  | Dc_op of { expr : string; state : int; vdd : float option }
  | Transient of { expr : string; bit_time : float; h : float }
  | Yield of { expr : string; samples : int; sigma_vth : float; seed : int }
  | Defects of { expr : string; all_classes : bool }
  | Table1 of { rows : int; cols : int }
  | Paths of { rows : int; cols : int }
  | Run_deck of { deck : string; smoke : bool }

type envelope = {
  id : Json.t option;
  deadline_s : float option;
  trace_id : string option;
  parent_span : string option;
  req : request;
}

let request_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics_text -> "metrics_text"
  | Shutdown -> "shutdown"
  | Sleep _ -> "sleep"
  | Dc_op _ -> "dc_op"
  | Transient _ -> "transient"
  | Yield _ -> "yield"
  | Defects _ -> "defects"
  | Table1 _ -> "table1"
  | Paths _ -> "paths"
  | Run_deck _ -> "run_deck"

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_type
  | Unknown_field
  | Frame_too_long
  | Invalid_frame
  | Overloaded
  | Quota_exceeded
  | Timeout
  | Non_convergent
  | Deck_error
  | Shutting_down
  | Internal

let code_name = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_type -> "unknown_type"
  | Unknown_field -> "unknown_field"
  | Frame_too_long -> "frame_too_long"
  | Invalid_frame -> "invalid_frame"
  | Overloaded -> "overloaded"
  | Quota_exceeded -> "quota_exceeded"
  | Timeout -> "timeout"
  | Non_convergent -> "non_convergent"
  | Deck_error -> "deck_error"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let all_codes =
  [
    Parse_error; Bad_request; Unknown_type; Unknown_field; Frame_too_long;
    Invalid_frame; Overloaded; Quota_exceeded; Timeout; Non_convergent;
    Deck_error; Shutting_down; Internal;
  ]

let code_of_name name = List.find_opt (fun c -> code_name c = name) all_codes

(* --- request validation ------------------------------------------------ *)

exception Reject of error_code * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

(* every request accepts the envelope fields on top of its own *)
let envelope_fields = [ "type"; "id"; "deadline_s"; "trace_id"; "parent_span" ]

let check_fields ~allowed pairs =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed || List.mem k envelope_fields) then
        reject Unknown_field "unknown field %S for this request type" k)
    pairs

let get field conv ~what pairs =
  match List.assoc_opt field pairs with
  | None -> reject Bad_request "missing required field %S" field
  | Some v -> (
    match conv v with
    | Some x -> x
    | None -> reject Bad_request "field %S must be %s" field what)

let get_opt field conv ~what pairs =
  match List.assoc_opt field pairs with
  | None -> None
  | Some v -> (
    match conv v with
    | Some x -> Some x
    | None -> reject Bad_request "field %S must be %s" field what)

let get_default field conv ~what ~default pairs =
  Option.value (get_opt field conv ~what pairs) ~default

let positive_float v =
  match Json.to_float v with Some f when f > 0.0 && Float.is_finite f -> Some f | _ -> None

let nonneg_float v =
  match Json.to_float v with Some f when f >= 0.0 && Float.is_finite f -> Some f | _ -> None

let dim v =
  match Json.to_int v with Some n when n >= 2 && n <= 12 -> Some n | _ -> None

let parse_typed pairs ty =
  match ty with
  | "ping" ->
    check_fields ~allowed:[] pairs;
    Ping
  | "stats" ->
    check_fields ~allowed:[] pairs;
    Stats
  | "metrics_text" ->
    check_fields ~allowed:[] pairs;
    Metrics_text
  | "shutdown" ->
    check_fields ~allowed:[] pairs;
    Shutdown
  | "sleep" ->
    check_fields ~allowed:[ "seconds" ] pairs;
    let seconds =
      get "seconds"
        (fun v ->
          match Json.to_float v with Some f when f >= 0.0 && f <= 10.0 -> Some f | _ -> None)
        ~what:"a number in [0, 10]" pairs
    in
    Sleep { seconds }
  | "dc_op" ->
    check_fields ~allowed:[ "expr"; "state"; "vdd" ] pairs;
    let expr = get "expr" Json.to_str ~what:"a string" pairs in
    let state =
      get "state"
        (fun v -> match Json.to_int v with Some n when n >= 0 -> Some n | _ -> None)
        ~what:"a non-negative integer" pairs
    in
    let vdd = get_opt "vdd" positive_float ~what:"a positive number" pairs in
    Dc_op { expr; state; vdd }
  | "transient" ->
    check_fields ~allowed:[ "expr"; "bit_time"; "h" ] pairs;
    let expr = get "expr" Json.to_str ~what:"a string" pairs in
    let bit_time =
      get_default "bit_time" positive_float ~what:"a positive number" ~default:100e-9 pairs
    in
    let h = get_default "h" positive_float ~what:"a positive number" ~default:1e-9 pairs in
    if h > bit_time then reject Bad_request "step %g exceeds bit_time %g" h bit_time;
    Transient { expr; bit_time; h }
  | "yield" ->
    check_fields ~allowed:[ "expr"; "samples"; "sigma_vth"; "seed" ] pairs;
    let expr = get "expr" Json.to_str ~what:"a string" pairs in
    let samples =
      get_default "samples"
        (fun v ->
          match Json.to_int v with Some n when n >= 1 && n <= 10_000 -> Some n | _ -> None)
        ~what:"an integer in [1, 10000]" ~default:100 pairs
    in
    let sigma_vth =
      get_default "sigma_vth" nonneg_float ~what:"a non-negative number" ~default:0.03 pairs
    in
    let seed =
      get_default "seed" Json.to_int ~what:"an integer" ~default:42 pairs
    in
    Yield { expr; samples; sigma_vth; seed }
  | "defects" ->
    check_fields ~allowed:[ "expr"; "all_classes" ] pairs;
    let expr = get "expr" Json.to_str ~what:"a string" pairs in
    let all_classes =
      get_default "all_classes" Json.to_bool ~what:"a boolean" ~default:false pairs
    in
    Defects { expr; all_classes }
  | "table1" ->
    check_fields ~allowed:[ "rows"; "cols" ] pairs;
    Table1
      {
        rows = get "rows" dim ~what:"an integer in [2, 12]" pairs;
        cols = get "cols" dim ~what:"an integer in [2, 12]" pairs;
      }
  | "paths" ->
    check_fields ~allowed:[ "rows"; "cols" ] pairs;
    Paths
      {
        rows = get "rows" dim ~what:"an integer in [2, 12]" pairs;
        cols = get "cols" dim ~what:"an integer in [2, 12]" pairs;
      }
  | "run_deck" ->
    check_fields ~allowed:[ "deck"; "smoke" ] pairs;
    let deck = get "deck" Json.to_str ~what:"a string" pairs in
    if String.length deck > 32768 then
      reject Bad_request "deck of %d bytes exceeds the 32768-byte cap" (String.length deck);
    let smoke = get_default "smoke" Json.to_bool ~what:"a boolean" ~default:false pairs in
    Run_deck { deck; smoke }
  | other -> reject Unknown_type "unknown request type %S" other

let recover_id json =
  match Json.member "id" json with
  | Some (Json.String _ | Json.Int _ | Json.Float _ | Json.Bool _ | Json.Null) as id -> id
  | Some _ | None -> None

let parse_request line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error (None, Parse_error, msg)
  | Json.Obj pairs as json -> (
    let id = recover_id json in
    match
      let id_ok =
        match List.assoc_opt "id" pairs with
        | None -> true
        | Some (Json.String _ | Json.Int _ | Json.Float _ | Json.Bool _ | Json.Null) -> true
        | Some _ -> false
      in
      if not id_ok then reject Bad_request "field \"id\" must be a scalar";
      let deadline_s =
        get_opt "deadline_s" nonneg_float ~what:"a non-negative number" pairs
      in
      (* trace correlation ids: opaque to the daemon, stamped into its
         spans; bounded and non-empty so a garbage value fails loudly *)
      let trace_field name =
        get_opt name
          (fun v ->
            match Json.to_str v with
            | Some s when String.length s >= 1 && String.length s <= 128 -> Some s
            | _ -> None)
          ~what:"a string of 1..128 bytes" pairs
      in
      let trace_id = trace_field "trace_id" in
      let parent_span = trace_field "parent_span" in
      if parent_span <> None && trace_id = None then
        reject Bad_request "field \"parent_span\" requires \"trace_id\"";
      let ty = get "type" Json.to_str ~what:"a string" pairs in
      { id; deadline_s; trace_id; parent_span; req = parse_typed pairs ty }
    with
    | env -> Ok env
    | exception Reject (code, msg) -> Error (id, code, msg))
  | _ -> Error (None, Bad_request, "request frame must be a JSON object")

(* --- responses --------------------------------------------------------- *)

let id_field = function None -> [] | Some id -> [ ("id", id) ]

let render_ok ~id result =
  Json.to_string (Json.Obj (id_field id @ [ ("ok", Json.Bool true); ("result", result) ]))

let render_error ?(details = []) ~id code message =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [
           ("ok", Json.Bool false);
           ( "error",
             Json.Obj
               ([ ("code", Json.String (code_name code)); ("message", Json.String message) ]
               @ details) );
         ]))

let json_float f =
  if Float.is_finite f then Json.Float f
  else if f > 0.0 then Json.String "inf"
  else if f < 0.0 then Json.String "-inf"
  else Json.String "nan"

type parsed_response = {
  resp_id : Json.t option;
  payload : (Json.t, error_code * string) result;
}

let parse_response line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error ("response is not valid JSON: " ^ msg)
  | json -> (
    let resp_id = Json.member "id" json in
    match Json.member "ok" json with
    | Some (Json.Bool true) -> (
      match Json.member "result" json with
      | Some result -> Ok { resp_id; payload = Ok result }
      | None -> Error "ok response carries no \"result\"")
    | Some (Json.Bool false) -> (
      match Json.member "error" json with
      | Some err -> (
        let code =
          Option.bind (Json.member "code" err) Json.to_str
          |> Fun.flip Option.bind code_of_name
        in
        let message =
          Option.value (Option.bind (Json.member "message" err) Json.to_str) ~default:""
        in
        match code with
        | Some c -> Ok { resp_id; payload = Error (c, message) }
        | None -> Error "error response carries no recognizable \"code\"")
      | None -> Error "error response carries no \"error\"")
    | Some _ | None -> Error "response carries no boolean \"ok\"")
