(** Minimal blocking client for the {!Server} NDJSON protocol — the
    library behind [ftl client], and the harness the daemon tests drive
    connections with.

    One {!t} wraps one connection; calls are synchronous (send a frame,
    read one response frame). Pipelined use — several requests in
    flight, correlated by [id] — is available through the raw
    send/receive pair. Not thread-safe: one thread per client. *)

type addr = Unix_socket of string | Tcp of string * int

type t

exception Protocol_error of string
(** The peer closed mid-call or answered with a frame that is not a
    protocol response. *)

val connect : ?max_frame:int -> addr -> t
(** Raises [Unix.Unix_error] when nothing listens at [addr].
    [max_frame] caps {e response} lines (default 16 MiB — results like
    path histograms outgrow request-side caps). *)

val close : t -> unit

val send_raw : t -> string -> unit
(** Ship one raw frame (newline appended) — malformed on purpose, or a
    pre-rendered request when pipelining. *)

val recv_raw : t -> string option
(** Next response line, [None] once the peer closes. *)

val call_raw : t -> string -> string
(** [send_raw] + [recv_raw], raising {!Protocol_error} on EOF. *)

val call :
  t ->
  ?id:Json.t ->
  ?deadline_s:float ->
  ?trace_id:string ->
  ?parent_span:string ->
  type_:string ->
  (string * Json.t) list ->
  (Json.t, Protocol.error_code * string) result
(** Build the request object ([type] + envelope + [fields]), ship it,
    and decode the response: [Ok result] or the structured error.
    [trace_id]/[parent_span] correlate the daemon's spans with a
    client-side trace ({!Protocol.envelope}). Raises {!Protocol_error}
    only when the response itself is undecodable. *)

val ping : t -> bool
(** [true] iff the daemon answered the ping with [ok]. *)

val stats : t -> Json.t
(** The daemon's stats object; raises {!Protocol_error} on a
    structured-error answer (stats never legitimately fails). *)

val shutdown : t -> unit
(** Ask the daemon to stop; returns once the daemon acknowledges. *)
