(** The `ftl serve` wire protocol: newline-delimited JSON requests and
    responses.

    {2 Grammar}

    Every frame is one JSON object on one line. Requests carry a
    mandatory ["type"] plus type-specific fields; four envelope fields
    are accepted on every request: ["id"] (any scalar, echoed back
    verbatim so clients can pipeline), ["deadline_s"] (per-request
    wall-clock budget; jobs overrunning it answer a [timeout] error),
    and ["trace_id"]/["parent_span"] (client-side trace correlation,
    stamped into every daemon span recorded for the request). Unknown
    fields are rejected — a typo'd option must fail loudly, not
    silently fall back to a default.

    Responses are [{"id":..,"ok":true,"result":{..}}] or
    [{"id":..,"ok":false,"error":{"code":"..","message":".."}}]. A bad
    request of any shape yields a structured error; it never terminates
    the connection, let alone the daemon.

    {2 Request types}

    - [ping] — liveness probe.
    - [stats] — serving/engine/cache/store telemetry snapshot plus the
      rolling 60-second SLO window (per-type p50/p95/p99, rates).
    - [metrics_text] — Prometheus-style exposition text of the same
      telemetry, as a single string result.
    - [shutdown] — graceful daemon stop (drains in-flight jobs).
    - [dc_op] — [expr] (Boolean expression, <= 5 vars), [state] (input
      combination index), optional [vdd]: synthesize the lattice, solve
      the DC operating point through the engine's content-addressed
      cache, return the output voltage and solver diagnostics.
    - [transient] — [expr], optional [bit_time]/[h]: the Fig-11-style
      exhaustive-stimulus transient of the synthesized lattice.
    - [yield] — [expr], optional [samples]/[sigma_vth]/[seed]:
      Monte-Carlo process-variation yield.
    - [defects] — [expr], optional [all_classes]: the circuit-level
      fault campaign (classification counts and detection).
    - [table1] — [rows], [cols] (2..12): ZDD product count.
    - [paths] — [rows], [cols] (2..12): product count plus per-size
      histogram.
    - [run_deck] — [deck] (SPICE deck text, <= 32768 bytes), optional
      [smoke]: parse the deck and execute its analysis cards through
      the shared engine under tight server-side limits. A malformed
      deck answers a [deck_error] whose error object carries the
      offending [line]/[col] — it never terminates the connection.
    - [sleep] — [seconds]: test-only worker stall; rejected unless the
      server enables it. *)

type request =
  | Ping
  | Stats
  | Metrics_text
  | Shutdown
  | Sleep of { seconds : float }
  | Dc_op of { expr : string; state : int; vdd : float option }
  | Transient of { expr : string; bit_time : float; h : float }
  | Yield of { expr : string; samples : int; sigma_vth : float; seed : int }
  | Defects of { expr : string; all_classes : bool }
  | Table1 of { rows : int; cols : int }
  | Paths of { rows : int; cols : int }
  | Run_deck of { deck : string; smoke : bool }

type envelope = {
  id : Json.t option;  (** echoed back verbatim in the response *)
  deadline_s : float option;
  trace_id : string option;
      (** client-side trace correlation id (1..128 bytes), stamped into
          every daemon span recorded for this request *)
  parent_span : string option;
      (** client-side span id the daemon's spans should link under;
          requires [trace_id] *)
  req : request;
}

val request_name : request -> string
(** The wire ["type"] tag, e.g. ["dc_op"] — for logs and span labels. *)

type error_code =
  | Parse_error  (** frame is not valid JSON *)
  | Bad_request  (** valid JSON, invalid shape or field value *)
  | Unknown_type
  | Unknown_field
  | Frame_too_long
  | Invalid_frame  (** NUL-bearing or otherwise unframeable bytes *)
  | Overloaded  (** admission queue full — back off and retry *)
  | Quota_exceeded  (** too many in-flight requests on this connection *)
  | Timeout  (** per-request deadline fired *)
  | Non_convergent  (** solver failed; message carries the diagnostics *)
  | Deck_error
      (** SPICE deck rejected; the error object carries [line]/[col] *)
  | Shutting_down
  | Internal

val code_name : error_code -> string
val code_of_name : string -> error_code option

val parse_request : string -> (envelope, Json.t option * error_code * string) result
(** Frame line to validated envelope. On error, the first component is
    the request ["id"] when one could be recovered (so even a rejected
    request answers to the right pipeline slot). *)

val render_ok : id:Json.t option -> Json.t -> string
(** One response line (no trailing newline). *)

val render_error :
  ?details:(string * Json.t) list -> id:Json.t option -> error_code -> string -> string
(** [details] appends extra fields to the error object (after [code]
    and [message]) — e.g. [line]/[col] for a [Deck_error]. *)

(** {2 Response-side helpers} *)

val json_float : float -> Json.t
(** [Float], or the strings ["inf"]/["-inf"]/["nan"] for non-finite
    values (e.g. a defect campaign with no logic-high states). *)

type parsed_response = {
  resp_id : Json.t option;
  payload : (Json.t, error_code * string) result;
}

val parse_response : string -> (parsed_response, string) result
(** Client-side: split a response line into id and ok/error payload. *)
