type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let max_depth = 64

(* --- parsing ----------------------------------------------------------- *)

type state = { s : string; mutable pos : int }

let fail st reason = raise (Parse_error (Printf.sprintf "offset %d: %s" st.pos reason))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st (Printf.sprintf "expected %C, found %C" c x)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid hex digit in \\u escape"

(* decode a \uXXXX code point (with surrogate pairing) into UTF-8 *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let v =
    (hex_digit st st.s.[st.pos] lsl 12)
    lor (hex_digit st st.s.[st.pos + 1] lsl 8)
    lor (hex_digit st st.s.[st.pos + 2] lsl 4)
    lor hex_digit st st.s.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = parse_hex4 st in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* high surrogate: require a paired \uXXXX low surrogate *)
            if
              st.pos + 2 <= String.length st.s
              && st.s.[st.pos] = '\\'
              && st.s.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let lo = parse_hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then fail st "invalid low surrogate";
              add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else fail st "unpaired high surrogate"
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail st "unpaired low surrogate"
          else add_utf8 buf cp
        | _ -> fail st (Printf.sprintf "invalid escape \\%c" c)));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st "bare control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let seen = ref false in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some '0' .. '9' ->
        seen := true;
        advance st
      | _ -> continue := false
    done;
    !seen
  in
  if not (digits ()) then fail st "invalid number";
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    if not (digits ()) then fail st "digits required after decimal point"
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    if not (digits ()) then fail st "digits required in exponent"
  | _ -> ());
  let tok = String.sub st.s start (st.pos - start) in
  if !is_float then Float (float_of_string tok)
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> Float (float_of_string tok)  (* past max_int *)

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let pairs = ref [] in
      let continue = ref true in
      while !continue do
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        pairs := (key, v) :: !pairs;
        skip_ws st;
        match peek st with
        | Some ',' -> advance st
        | Some '}' ->
          advance st;
          continue := false
        | _ -> fail st "expected ',' or '}' in object"
      done;
      Obj (List.rev !pairs)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let continue = ref true in
      while !continue do
        let v = parse_value st (depth + 1) in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> advance st
        | Some ']' ->
          advance st;
          continue := false
        | _ -> fail st "expected ',' or ']' in array"
      done;
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st 0 in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage after document";
  v

let parse_result s = match parse s with v -> Ok v | exception Parse_error m -> Error m

(* --- printing ---------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float (encode it upstream)";
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips exactly *)
    let short = Printf.sprintf "%.15g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj pairs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          go item)
        pairs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj pairs -> List.assoc_opt key pairs | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 2.0 ** 53.0 -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
