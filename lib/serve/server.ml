module Sp = Lattice_spice
module Tt = Lattice_boolfn.Truthtable
module Engine = Lattice_engine.Engine
module Cancel = Lattice_engine.Cancel
module Metrics = Lattice_obs.Metrics
module Trace = Lattice_obs.Trace
module Ring = Lattice_obs.Ring
module Rolling = Lattice_obs.Rolling
module Spool = Lattice_obs.Spool
module Clock = Lattice_obs.Clock

(* process-wide serve metrics (mirrored per-instance by atomic counters
   so [stats] answers even while metrics are disabled) *)
let m_requests = Metrics.counter "serve.requests"
let m_ok = Metrics.counter "serve.responses.ok"
let m_err = Metrics.counter "serve.responses.error"
let m_overloaded = Metrics.counter "serve.overloaded"
let m_quota = Metrics.counter "serve.quota_rejected"
let m_malformed = Metrics.counter "serve.malformed"
let m_queue_depth = Metrics.gauge "serve.queue.depth"
let m_inflight = Metrics.gauge "serve.inflight"
let m_queue_wait = Metrics.histogram "serve.queue_wait.seconds"
let m_handle = Metrics.histogram "serve.handle.seconds"

type config = {
  socket_path : string option;
  tcp_port : int option;
  tcp_host : string;
  domains : int option;
  cache_capacity : int;
  store_dir : string option;
  workers : int;
  queue_capacity : int;
  max_inflight_per_client : int;
  default_deadline_s : float option;
  max_frame : int;
  drain_deadline_s : float;
  allow_sleep : bool;
  log : (string -> unit) option;
  (* request observability *)
  slow_threshold_s : float option;
      (* a request slower than this triggers a flight dump; [None]
         dumps only on errors/timeouts *)
  flight_dir : string option;  (* flight-recorder spool; None disables dumps *)
  flight_max_files : int;
  flight_max_bytes : int;
  access_log_path : string option;
  access_log_max_bytes : int;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    tcp_host = "127.0.0.1";
    domains = None;
    cache_capacity = 4096;
    store_dir = None;
    workers = 2;
    queue_capacity = 64;
    max_inflight_per_client = 16;
    default_deadline_s = Some 30.0;
    max_frame = 65536;
    drain_deadline_s = 10.0;
    allow_sleep = false;
    log = None;
    slow_threshold_s = None;
    flight_dir = Sys.getenv_opt "FTL_FLIGHT_DIR";
    flight_max_files = 64;
    flight_max_bytes = 16 * 1024 * 1024;
    access_log_path = None;
    access_log_max_bytes = 8 * 1024 * 1024;
  }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  write_lock : Mutex.t;
  inflight : int Atomic.t;
  mutable dead : bool;  (* under [write_lock]: no further writes *)
  mutable fd_closed : bool;  (* under [write_lock] *)
}

type job = { jconn : conn; env : Protocol.envelope; enqueued_at : float }

type t = {
  config : config;
  engine : Engine.t;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable qsize : int;  (* under [qlock] *)
  stopping : bool Atomic.t;
  lifecycle : Mutex.t;
  mutable torn_down : bool;  (* under [lifecycle] *)
  mutable started_at : float;
  mutable listeners : (Unix.file_descr * string) list;  (* fd, description *)
  mutable bound_port : int option;
  mutable accept_threads : Thread.t list;
  mutable worker_threads : Thread.t list;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  next_cid : int Atomic.t;
  inflight_total : int Atomic.t;
  (* per-instance counters behind the [stats] response *)
  c_requests : int Atomic.t;
  c_ok : int Atomic.t;
  c_err : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_quota : int Atomic.t;
  c_malformed : int Atomic.t;
  c_conns_total : int Atomic.t;
  c_timeouts : int Atomic.t;  (* requests killed by their deadline *)
  c_flight_dumps : int Atomic.t;
  (* rolling SLO windows: one global, one per request type *)
  rolling_all : Rolling.t;
  rolling : (string, Rolling.t) Hashtbl.t;
  rolling_lock : Mutex.t;
  access : Spool.log option;
}

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_capacity < 1 then invalid_arg "Server.create: queue_capacity must be >= 1";
  if config.max_inflight_per_client < 1 then
    invalid_arg "Server.create: max_inflight_per_client must be >= 1";
  {
    config;
    engine =
      Engine.create ?domains:config.domains ~cache_capacity:config.cache_capacity
        ?store_dir:config.store_dir ();
    queue = Queue.create ();
    qlock = Mutex.create ();
    qcond = Condition.create ();
    qsize = 0;
    stopping = Atomic.make false;
    lifecycle = Mutex.create ();
    torn_down = false;
    started_at = 0.0;
    listeners = [];
    bound_port = None;
    accept_threads = [];
    worker_threads = [];
    conns = Hashtbl.create 16;
    conns_lock = Mutex.create ();
    next_cid = Atomic.make 0;
    inflight_total = Atomic.make 0;
    c_requests = Atomic.make 0;
    c_ok = Atomic.make 0;
    c_err = Atomic.make 0;
    c_overloaded = Atomic.make 0;
    c_quota = Atomic.make 0;
    c_malformed = Atomic.make 0;
    c_conns_total = Atomic.make 0;
    c_timeouts = Atomic.make 0;
    c_flight_dumps = Atomic.make 0;
    rolling_all = Rolling.create ();
    rolling = Hashtbl.create 16;
    rolling_lock = Mutex.create ();
    access =
      (match config.access_log_path with
      | None -> None
      | Some path ->
        Some (Spool.open_log ~path ~max_bytes:config.access_log_max_bytes ()));
  }

let engine t = t.engine
let port t = t.bound_port

let log t fmt =
  Printf.ksprintf
    (fun line -> match t.config.log with None -> () | Some f -> f line)
    fmt

let now () = Unix.gettimeofday ()

(* --- request handlers --------------------------------------------------- *)

(* [details] lands in the response's error object (e.g. line/col for a
   rejected deck); most handlers leave it empty *)
exception Handler_error of Protocol.error_code * string * (string * Json.t) list

let h_reject code fmt = Printf.ksprintf (fun m -> raise (Handler_error (code, m, []))) fmt

(* expression -> (truth table, nvars, synthesized lattice); the expensive
   circuit work downstream is what the engine cache memoizes *)
let grid_of_expr expr =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg -> h_reject Protocol.Bad_request "expr: %s" msg
  | ast, names ->
    let nvars = Array.length names in
    if nvars > 5 then
      h_reject Protocol.Bad_request
        "expr has %d variables; circuit-level requests support at most 5" nvars;
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let grid =
      try (Lattice_synthesis.Altun_riedel.synthesize tt).Lattice_synthesis.Altun_riedel.grid
      with Lattice_synthesis.Altun_riedel.No_shared_literal _ | Invalid_argument _ ->
        h_reject Protocol.Bad_request "expr %S has no lattice realization here" expr
    in
    (tt, nvars, grid)

let handle_dc_op t ~cancel ~expr ~state ~vdd =
  let tt, nvars, grid = grid_of_expr expr in
  let states = 1 lsl nvars in
  if state >= states then
    h_reject Protocol.Bad_request "state %d out of range for %d variable(s) (max %d)" state
      nvars (states - 1);
  let config =
    match vdd with
    | None -> Sp.Lattice_circuit.default_config
    | Some v -> { Sp.Lattice_circuit.default_config with Sp.Lattice_circuit.vdd = v }
  in
  let vdd = config.Sp.Lattice_circuit.vdd in
  let stimulus v = Sp.Source.Dc (if (state lsr v) land 1 = 1 then vdd else 0.0) in
  let lc = Sp.Lattice_circuit.build ~config grid ~stimulus in
  let netlist = lc.Sp.Lattice_circuit.netlist in
  match Engine.dc_op t.engine ~cancel netlist with
  | Error f -> h_reject Protocol.Non_convergent "%s" (Sp.Dcop.pp_failure f)
  | Ok (x, diag) ->
    let v = Sp.Mna.voltage x (Sp.Netlist.node netlist lc.Sp.Lattice_circuit.output_node) in
    (* the lattice is a pull-down network: the output is the complement *)
    let expected_high = not (Tt.eval tt state) in
    Json.Obj
      [
        ("expr", Json.String expr);
        ("state", Json.Int state);
        ("output_v", Protocol.json_float v);
        ("logic_high", Json.Bool (v > vdd /. 2.0));
        ("expected_high", Json.Bool expected_high);
        ("strategy", Json.String (Sp.Dcop.strategy_name diag.Sp.Dcop.strategy));
        ("newton_iterations", Json.Int diag.Sp.Dcop.newton_iterations);
      ]

let handle_transient t ~cancel ~expr ~bit_time ~h =
  ignore t;
  let _tt, nvars, grid = grid_of_expr expr in
  let vdd = Sp.Lattice_circuit.default_config.Sp.Lattice_circuit.vdd in
  let lc =
    Sp.Lattice_circuit.build grid
      ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd ~bit_time)
  in
  let t_stop = float_of_int (1 lsl nvars) *. bit_time in
  match
    Sp.Transient.run_diag ~cancel lc.Sp.Lattice_circuit.netlist ~h ~t_stop
      ~record:[ lc.Sp.Lattice_circuit.output_node ] ()
  with
  | Error (f : Sp.Transient.failure) ->
    h_reject Protocol.Non_convergent "transient failed at t=%g (dt=%g): %s"
      f.Sp.Transient.at_time f.Sp.Transient.dt
      (Sp.Dcop.pp_failure f.Sp.Transient.dc_failure)
  | Ok r ->
    let out = Sp.Transient.signal r lc.Sp.Lattice_circuit.output_node in
    let vmin = Array.fold_left Float.min infinity out in
    let vmax = Array.fold_left Float.max neg_infinity out in
    Json.Obj
      [
        ("expr", Json.String expr);
        ("t_stop", Protocol.json_float t_stop);
        ("samples", Json.Int (Array.length r.Sp.Transient.times));
        ("steps_taken", Json.Int r.Sp.Transient.stats.Sp.Transient.steps_taken);
        ("halvings", Json.Int r.Sp.Transient.stats.Sp.Transient.halvings);
        ("newton_iterations", Json.Int r.Sp.Transient.newton_iterations_total);
        ("output_min_v", Protocol.json_float vmin);
        ("output_max_v", Protocol.json_float vmax);
        ("output_final_v", Protocol.json_float out.(Array.length out - 1));
      ]

let handle_yield t ~cancel ~expr ~samples ~sigma_vth ~seed =
  let tt, _nvars, grid = grid_of_expr expr in
  let mc =
    Lattice_flow.Monte_carlo.run ~engine:t.engine ~cancel
      ~variation:{ Lattice_flow.Monte_carlo.sigma_vth; sigma_kp_rel = 0.1 }
      ~samples ~seed grid ~target:tt
  in
  (* the engine path scores cancelled dies instead of raising: surface a
     mid-campaign deadline as a timeout, not as a silently low yield *)
  Cancel.check cancel;
  Json.Obj
    [
      ("expr", Json.String expr);
      ("samples", Json.Int mc.Lattice_flow.Monte_carlo.samples);
      ("yield", Protocol.json_float mc.Lattice_flow.Monte_carlo.yield);
      ("v_low_mean", Protocol.json_float mc.Lattice_flow.Monte_carlo.v_low_mean);
      ("v_low_std", Protocol.json_float mc.Lattice_flow.Monte_carlo.v_low_std);
      ("v_high_mean", Protocol.json_float mc.Lattice_flow.Monte_carlo.v_high_mean);
    ]

let handle_defects t ~cancel ~expr ~all_classes =
  let tt, _nvars, grid = grid_of_expr expr in
  let module Fc = Lattice_flow.Fault_campaign in
  let classes =
    if all_classes then Sp.Defects.all_classes
    else [ Sp.Defects.Opens; Sp.Defects.Shorts ]
  in
  (* remapping search is expensive and irrelevant to a classification
     query; clients wanting repair run the CLI campaign *)
  let options = { Fc.default_options with Fc.classes; attempt_repair = false } in
  let rep = Fc.run ~engine:t.engine ~cancel ~options grid ~target:tt in
  Cancel.check cancel;
  Json.Obj
    [
      ("expr", Json.String expr);
      ("samples", Json.Int (Array.length rep.Fc.samples));
      ("functional", Json.Int rep.Fc.counts.Fc.functional);
      ("degraded", Json.Int rep.Fc.counts.Fc.degraded);
      ("faulty", Json.Int rep.Fc.counts.Fc.faulty);
      ("non_convergent", Json.Int rep.Fc.counts.Fc.non_convergent);
      ("detected", Json.Int rep.Fc.detected);
      ("silent", Json.Int rep.Fc.silent);
      ("test_vectors", Json.Int (List.length rep.Fc.test_set));
    ]

let handle_table1 ~rows ~cols =
  let count = Lattice_core.Table1.count ~rows ~cols in
  let fields =
    [ ("rows", Json.Int rows); ("cols", Json.Int cols); ("count", Json.Int count) ]
  in
  let fields =
    if rows <= 9 && cols <= 9 then
      fields @ [ ("paper", Json.Int (Lattice_core.Table1.paper_value ~rows ~cols)) ]
    else fields
  in
  Json.Obj fields

let handle_paths ~rows ~cols =
  let count = Lattice_core.Paths.count_irredundant ~rows ~cols in
  let hist = Lattice_core.Paths.length_histogram ~rows ~cols in
  Json.Obj
    [
      ("rows", Json.Int rows);
      ("cols", Json.Int cols);
      ("count", Json.Int count);
      ("histogram", Json.List (Array.to_list (Array.map (fun n -> Json.Int n) hist)));
    ]

(* server-side deck limits: a daemon shared by many clients must not let
   one deck monopolize a worker with a million-step transient *)
let deck_limits =
  { Lattice_deck.Runner.max_sweep_points = 256; max_tran_steps = 20_000 }

let handle_run_deck t ~cancel ~deck ~smoke =
  match Lattice_deck.Deck.parse deck with
  | Error (e : Lattice_deck.Deck.error) ->
    raise
      (Handler_error
         ( Protocol.Deck_error,
           Printf.sprintf "%d:%d: %s" e.line e.col e.msg,
           [ ("line", Json.Int e.line); ("col", Json.Int e.col) ] ))
  | Ok d -> (
    match Lattice_deck.Runner.run ~engine:t.engine ~cancel ~smoke ~limits:deck_limits d with
    | Error msg -> h_reject Protocol.Non_convergent "%s" msg
    | Ok r ->
      let open Lattice_deck.Runner in
      let analysis_json = function
        | Op_result { strategy; rows } ->
          Json.Obj
            [
              ("type", Json.String "op");
              ("strategy", Json.String strategy);
              ( "nodes",
                Json.Obj (List.map (fun (n, v) -> (n, Protocol.json_float v)) rows) );
            ]
        | Dc_result { source; probes; rows } ->
          Json.Obj
            [
              ("type", Json.String "dc");
              ("source", Json.String source);
              ("points", Json.Int (List.length rows));
              ("probes", Json.List (List.map (fun p -> Json.String p) probes));
            ]
        | Tran_result { times; nodes; newton_iterations; _ } ->
          Json.Obj
            [
              ("type", Json.String "tran");
              ("samples", Json.Int (Array.length times));
              ("newton_iterations", Json.Int newton_iterations);
              ( "finals",
                Json.Obj
                  (List.map
                     (fun (n, samples) ->
                       (n, Protocol.json_float samples.(Array.length samples - 1)))
                     nodes) );
            ]
        | Ac_result { source; output; dc_gain; f_3db; points } ->
          Json.Obj
            [
              ("type", Json.String "ac");
              ("source", Json.String source);
              ("output", Json.String output);
              ("dc_gain", Protocol.json_float dc_gain);
              ( "f_3db",
                match f_3db with None -> Json.Null | Some f -> Protocol.json_float f );
              ("points", Json.Int (List.length points));
            ]
      in
      Json.Obj
        [
          ("title", Json.String r.title);
          ("digest", Json.String r.digest);
          ("analyses", Json.List (List.map (fun (_, res) -> analysis_json res) r.results));
        ])

let handle_sleep t ~cancel ~seconds =
  if not t.config.allow_sleep then
    h_reject Protocol.Bad_request "sleep requests are disabled on this server";
  (* sliced so a deadline still bites mid-sleep *)
  let until = now () +. seconds in
  let rec nap () =
    Cancel.check cancel;
    let left = until -. now () in
    if left > 0.0 then begin
      Thread.delay (Float.min left 0.05);
      nap ()
    end
  in
  nap ();
  Json.Obj [ ("slept", Protocol.json_float seconds) ]

let handle_compute t ~cancel (req : Protocol.request) =
  match req with
  | Protocol.Dc_op { expr; state; vdd } -> handle_dc_op t ~cancel ~expr ~state ~vdd
  | Protocol.Transient { expr; bit_time; h } -> handle_transient t ~cancel ~expr ~bit_time ~h
  | Protocol.Yield { expr; samples; sigma_vth; seed } ->
    handle_yield t ~cancel ~expr ~samples ~sigma_vth ~seed
  | Protocol.Defects { expr; all_classes } -> handle_defects t ~cancel ~expr ~all_classes
  | Protocol.Table1 { rows; cols } -> handle_table1 ~rows ~cols
  | Protocol.Paths { rows; cols } -> handle_paths ~rows ~cols
  | Protocol.Run_deck { deck; smoke } -> handle_run_deck t ~cancel ~deck ~smoke
  | Protocol.Sleep { seconds } -> handle_sleep t ~cancel ~seconds
  | Protocol.Ping | Protocol.Stats | Protocol.Metrics_text | Protocol.Shutdown ->
    (* handled inline by the reader; unreachable through the queue *)
    h_reject Protocol.Internal "control request reached the worker pool"

(* --- request observability ---------------------------------------------- *)

let rolling_for t name =
  Mutex.lock t.rolling_lock;
  let r =
    match Hashtbl.find_opt t.rolling name with
    | Some r -> r
    | None ->
      let r = Rolling.create () in
      Hashtbl.replace t.rolling name r;
      r
  in
  Mutex.unlock t.rolling_lock;
  r

let observe_window t ~name ~dur_ns ~outcome =
  let now_ns = Clock.now_ns () in
  let dur_s = float_of_int dur_ns /. 1e9 in
  Rolling.observe t.rolling_all ~now_ns ~dur_s ~outcome;
  Rolling.observe (rolling_for t name) ~now_ns ~dur_s ~outcome

(* one JSONL line per request: correlation fields first, cost
   attribution (from the request's remote context) after *)
let access_line t ~id ~name ~outcome ~dur_ns ?ctx ?trace_id () =
  match t.access with
  | None -> ()
  | Some alog ->
    let counts f = match ctx with None -> 0 | Some c -> f c in
    Spool.line alog
      (Json.to_string
         (Json.Obj
            [
              ("ts", Protocol.json_float (Unix.gettimeofday ()));
              ("id", Option.value id ~default:Json.Null);
              ("type", Json.String name);
              ("outcome", Json.String outcome);
              ("duration_ns", Json.Int dur_ns);
              ("cache_hits", Json.Int (counts Trace.context_cache_hits));
              ("dc_solves", Json.Int (counts Trace.context_dc_solves));
              ("retries", Json.Int (counts Trace.context_retries));
              ( "trace_id",
                match trace_id with None -> Json.Null | Some s -> Json.String s );
            ]))

let flight_dump t ~name ~outcome =
  match t.config.flight_dir with
  | None -> ()
  | Some dir -> (
    match
      Spool.write ~dir ~max_files:t.config.flight_max_files
        ~max_bytes:t.config.flight_max_bytes (Ring.dump_jsonl ())
    with
    | Ok path ->
      Atomic.incr t.c_flight_dumps;
      log t "flight dump (%s %s): %s" name outcome path
    | Error e -> log t "flight dump (%s %s) failed: %s" name outcome e)

(* the request id as an unquoted span/log label *)
let scalar_string = function Json.String s -> s | j -> Json.to_string j

(* --- stats -------------------------------------------------------------- *)

let window_snaps t =
  let now_ns = Clock.now_ns () in
  let all = Rolling.snapshot t.rolling_all ~now_ns in
  Mutex.lock t.rolling_lock;
  let per =
    Hashtbl.fold (fun name r acc -> (name, Rolling.snapshot r ~now_ns) :: acc) t.rolling []
  in
  Mutex.unlock t.rolling_lock;
  (all, List.sort (fun (a, _) (b, _) -> String.compare a b) per)

let snap_json (s : Rolling.snap) =
  Json.Obj
    [
      ("count", Json.Int s.Rolling.count);
      ("errors", Json.Int s.Rolling.errors);
      ("timeouts", Json.Int s.Rolling.timeouts);
      ("rate_per_s", Protocol.json_float s.Rolling.rate_per_s);
      ("p50_ms", Protocol.json_float (s.Rolling.p50_s *. 1e3));
      ("p95_ms", Protocol.json_float (s.Rolling.p95_s *. 1e3));
      ("p99_ms", Protocol.json_float (s.Rolling.p99_s *. 1e3));
      ("max_ms", Protocol.json_float (s.Rolling.max_s *. 1e3));
    ]

let stats_json t =
  Engine.publish_gauges t.engine;
  let tel = Engine.telemetry t.engine in
  let module C = Lattice_engine.Cache in
  let module S = Lattice_engine.Store in
  Mutex.lock t.qlock;
  let queue_depth = t.qsize in
  Mutex.unlock t.qlock;
  Mutex.lock t.conns_lock;
  let live_conns = Hashtbl.length t.conns in
  Mutex.unlock t.conns_lock;
  let store =
    match tel.Engine.store with
    | None -> Json.Null
    | Some s ->
      Json.Obj
        [
          ("hits", Json.Int s.S.hits);
          ("misses", Json.Int s.S.misses);
          ("writes", Json.Int s.S.writes);
          ("corrupt", Json.Int s.S.corrupt);
          ("errors", Json.Int s.S.errors);
        ]
  in
  Json.Obj
    [
      ( "server",
        Json.Obj
          [
            ("uptime_s", Protocol.json_float (now () -. t.started_at));
            ("connections", Json.Int live_conns);
            ("connections_total", Json.Int (Atomic.get t.c_conns_total));
            ("requests", Json.Int (Atomic.get t.c_requests));
            ("ok", Json.Int (Atomic.get t.c_ok));
            ("errors", Json.Int (Atomic.get t.c_err));
            ("overloaded", Json.Int (Atomic.get t.c_overloaded));
            ("quota_rejected", Json.Int (Atomic.get t.c_quota));
            ("malformed", Json.Int (Atomic.get t.c_malformed));
            ("queue_depth", Json.Int queue_depth);
            ("queue_capacity", Json.Int t.config.queue_capacity);
            ("inflight", Json.Int (Atomic.get t.inflight_total));
            ("workers", Json.Int t.config.workers);
            ("request_timeouts", Json.Int (Atomic.get t.c_timeouts));
            ("flight_dumps", Json.Int (Atomic.get t.c_flight_dumps));
          ] );
      ( "engine",
        Json.Obj
          [
            ("domains", Json.Int tel.Engine.domains);
            ("jobs", Json.Int tel.Engine.jobs);
            ("dc_solves", Json.Int tel.Engine.dc_solves);
            ("newton_iterations", Json.Int tel.Engine.newton_total);
            ("retries", Json.Int tel.Engine.retries);
            ("timeouts", Json.Int tel.Engine.timeouts);
            ("job_failures", Json.Int tel.Engine.job_failures);
            ( "cache",
              Json.Obj
                [
                  ("hits", Json.Int tel.Engine.cache.C.hits);
                  ("misses", Json.Int tel.Engine.cache.C.misses);
                  ("evictions", Json.Int tel.Engine.cache.C.evictions);
                  ("size", Json.Int tel.Engine.cache.C.size);
                  ("capacity", Json.Int tel.Engine.cache.C.capacity);
                ] );
            ("store", store);
            ( "store_dir",
              match Engine.store_dir t.engine with
              | None -> Json.Null
              | Some d -> Json.String d );
          ] );
      (let all, per = window_snaps t in
       ( "window",
         Json.Obj
           [
             ("window_s", Protocol.json_float (Rolling.window_s t.rolling_all));
             ("inflight", Json.Int (Atomic.get t.inflight_total));
             ("all", snap_json all);
             ("by_type", Json.Obj (List.map (fun (n, s) -> (n, snap_json s)) per));
           ] ));
    ]

(* Prometheus-style exposition text: cumulative counters/gauges plus the
   rolling window rendered as one summary metric labelled by request
   type. Scrapers that only speak the exposition format get the same
   telemetry as [stats]. *)
let prometheus_text t =
  Engine.publish_gauges t.engine;
  let tel = Engine.telemetry t.engine in
  let module C = Lattice_engine.Cache in
  Mutex.lock t.qlock;
  let queue_depth = t.qsize in
  Mutex.unlock t.qlock;
  let b = Buffer.create 4096 in
  let fmt v =
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.9g" v
  in
  let metric name ty v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n%s %s\n" name ty name v)
  in
  let counter name v = metric name "counter" (string_of_int v) in
  let gauge name v = metric name "gauge" (fmt v) in
  gauge "ftl_uptime_seconds" (now () -. t.started_at);
  counter "ftl_requests_total" (Atomic.get t.c_requests);
  counter "ftl_responses_ok_total" (Atomic.get t.c_ok);
  counter "ftl_responses_error_total" (Atomic.get t.c_err);
  counter "ftl_request_timeouts_total" (Atomic.get t.c_timeouts);
  counter "ftl_overloaded_total" (Atomic.get t.c_overloaded);
  counter "ftl_quota_rejected_total" (Atomic.get t.c_quota);
  counter "ftl_malformed_total" (Atomic.get t.c_malformed);
  counter "ftl_connections_total" (Atomic.get t.c_conns_total);
  counter "ftl_flight_dumps_total" (Atomic.get t.c_flight_dumps);
  gauge "ftl_queue_depth" (float_of_int queue_depth);
  gauge "ftl_queue_capacity" (float_of_int t.config.queue_capacity);
  gauge "ftl_inflight" (float_of_int (Atomic.get t.inflight_total));
  gauge "ftl_workers" (float_of_int t.config.workers);
  counter "ftl_engine_dc_solves_total" tel.Engine.dc_solves;
  counter "ftl_engine_newton_iterations_total" tel.Engine.newton_total;
  counter "ftl_engine_retries_total" tel.Engine.retries;
  counter "ftl_engine_cache_hits_total" tel.Engine.cache.C.hits;
  counter "ftl_engine_cache_misses_total" tel.Engine.cache.C.misses;
  let all, per = window_snaps t in
  gauge "ftl_window_seconds" (Rolling.window_s t.rolling_all);
  Buffer.add_string b "# TYPE ftl_request_duration_seconds summary\n";
  let summary label (s : Rolling.snap) =
    let q quant v =
      Buffer.add_string b
        (Printf.sprintf "ftl_request_duration_seconds{type=%S,quantile=\"%s\"} %s\n" label
           quant (fmt v))
    in
    q "0.5" s.Rolling.p50_s;
    q "0.95" s.Rolling.p95_s;
    q "0.99" s.Rolling.p99_s;
    Buffer.add_string b
      (Printf.sprintf "ftl_request_duration_seconds_sum{type=%S} %s\n" label
         (fmt (if s.Rolling.count = 0 then 0.0 else s.Rolling.mean_s *. float_of_int s.Rolling.count)));
    Buffer.add_string b
      (Printf.sprintf "ftl_request_duration_seconds_count{type=%S} %d\n" label s.Rolling.count)
  in
  summary "all" all;
  List.iter (fun (name, s) -> summary name s) per;
  let windowed name pick =
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string b (Printf.sprintf "%s{type=\"all\"} %d\n" name (pick all));
    List.iter
      (fun (label, s) -> Buffer.add_string b (Printf.sprintf "%s{type=%S} %d\n" name label (pick s)))
      per
  in
  windowed "ftl_window_errors" (fun (s : Rolling.snap) -> s.Rolling.errors);
  windowed "ftl_window_timeouts" (fun (s : Rolling.snap) -> s.Rolling.timeouts);
  Buffer.contents b

(* --- response plumbing -------------------------------------------------- *)

let write_response t conn line =
  Mutex.lock conn.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.write_lock)
    (fun () ->
      if not (conn.dead || conn.fd_closed) then
        try Framing.write_frame conn.fd line
        with Unix.Unix_error _ ->
          conn.dead <- true;
          log t "conn %d: write failed, dropping connection" conn.cid)

let respond_ok t conn ~id result =
  Atomic.incr t.c_ok;
  Metrics.Counter.incr m_ok;
  write_response t conn (Protocol.render_ok ~id result)

let respond_error ?details t conn ~id code msg =
  Atomic.incr t.c_err;
  Metrics.Counter.incr m_err;
  write_response t conn (Protocol.render_error ?details ~id code msg)

(* close the descriptor only when no writer can still reach it *)
let maybe_close t conn =
  Mutex.lock conn.write_lock;
  let close_now = conn.dead && (not conn.fd_closed) && Atomic.get conn.inflight = 0 in
  if close_now then conn.fd_closed <- true;
  Mutex.unlock conn.write_lock;
  if close_now then begin
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns conn.cid;
    Mutex.unlock t.conns_lock
  end

(* --- admission + workers ------------------------------------------------ *)

let admit t conn env =
  if Atomic.get t.stopping then
    Error (Protocol.Shutting_down, "daemon is shutting down")
  else if Atomic.get conn.inflight >= t.config.max_inflight_per_client then begin
    Atomic.incr t.c_quota;
    Metrics.Counter.incr m_quota;
    Error
      ( Protocol.Quota_exceeded,
        Printf.sprintf "connection quota of %d in-flight request(s) reached"
          t.config.max_inflight_per_client )
  end
  else begin
    Mutex.lock t.qlock;
    if t.qsize >= t.config.queue_capacity then begin
      Mutex.unlock t.qlock;
      Atomic.incr t.c_overloaded;
      Metrics.Counter.incr m_overloaded;
      Error
        ( Protocol.Overloaded,
          Printf.sprintf "admission queue full (capacity %d); back off and retry"
            t.config.queue_capacity )
    end
    else begin
      Queue.push { jconn = conn; env; enqueued_at = now () } t.queue;
      t.qsize <- t.qsize + 1;
      Atomic.incr conn.inflight;
      Atomic.incr t.inflight_total;
      Metrics.Gauge.add m_queue_depth 1.0;
      Condition.signal t.qcond;
      Mutex.unlock t.qlock;
      Ok ()
    end
  end

let execute t (job : job) =
  let env = job.env in
  let name = Protocol.request_name env.Protocol.req in
  let req_id = Option.map scalar_string env.Protocol.id in
  (* every span recorded under this context — worker thread and pool
     domains alike — carries req_id/trace_id/parent_span args, and the
     engine attributes its solves/hits/retries to it *)
  let ctx =
    Trace.make_context ?trace_id:env.Protocol.trace_id
      ?parent_span:env.Protocol.parent_span ?req_id ()
  in
  Trace.with_remote_context ctx @@ fun () ->
  let deadline_s =
    match env.Protocol.deadline_s with
    | Some _ as d -> d
    | None -> t.config.default_deadline_s
  in
  let cancel = Cancel.of_deadline_s deadline_s in
  let t0_ns = Clock.now_ns () in
  let outcome =
    Trace.with_span ~cat:"serve" ~args:[ ("type", name) ] "serve.handle" (fun () ->
        match handle_compute t ~cancel env.Protocol.req with
        | result ->
          respond_ok t job.jconn ~id:env.Protocol.id result;
          `Ok
        | exception Handler_error (code, msg, details) ->
          respond_error ~details t job.jconn ~id:env.Protocol.id code msg;
          `Err code
        | exception Cancel.Cancelled _ ->
          respond_error t job.jconn ~id:env.Protocol.id Protocol.Timeout
            (Printf.sprintf "request deadline of %gs exceeded"
               (Option.value deadline_s ~default:0.0));
          `Err Protocol.Timeout
        | exception e ->
          log t "internal error handling %s: %s" name (Printexc.to_string e);
          respond_error t job.jconn ~id:env.Protocol.id Protocol.Internal
            (Printexc.to_string e);
          `Err Protocol.Internal)
  in
  (* bookkeeping runs after the serve.handle span closed, so a flight
     dump triggered here already holds the request's own spans *)
  let dur_ns = Clock.now_ns () - t0_ns in
  let outcome_name, roll =
    match outcome with
    | `Ok -> ("ok", Rolling.Ok)
    | `Err Protocol.Timeout -> (Protocol.code_name Protocol.Timeout, Rolling.Timeout)
    | `Err code -> (Protocol.code_name code, Rolling.Error)
  in
  if roll = Rolling.Timeout then Atomic.incr t.c_timeouts;
  observe_window t ~name ~dur_ns ~outcome:roll;
  access_line t ~id:env.Protocol.id ~name ~outcome:outcome_name ~dur_ns ~ctx
    ?trace_id:env.Protocol.trace_id ();
  let slow =
    match t.config.slow_threshold_s with
    | Some s -> float_of_int dur_ns /. 1e9 >= s
    | None -> false
  in
  if outcome <> `Ok then flight_dump t ~name ~outcome:outcome_name
  else if slow then flight_dump t ~name ~outcome:"slow"

let worker_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
      Condition.wait t.qcond t.qlock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping and drained *)
      Mutex.unlock t.qlock;
      running := false
    end
    else begin
      let job = Queue.pop t.queue in
      t.qsize <- t.qsize - 1;
      Mutex.unlock t.qlock;
      Metrics.Gauge.add m_queue_depth (-1.0);
      Metrics.Histogram.observe m_queue_wait (now () -. job.enqueued_at);
      Metrics.Gauge.add m_inflight 1.0;
      let t0 = now () in
      execute t job;
      Metrics.Histogram.observe m_handle (now () -. t0);
      Metrics.Gauge.add m_inflight (-1.0);
      Atomic.decr job.jconn.inflight;
      Atomic.decr t.inflight_total;
      maybe_close t job.jconn
    end
  done

(* --- connection readers ------------------------------------------------- *)

let request_stop t = Atomic.set t.stopping true

let handle_frame t conn line =
  Atomic.incr t.c_requests;
  Metrics.Counter.incr m_requests;
  let parsed =
    Trace.with_span ~cat:"serve" "serve.parse" (fun () -> Protocol.parse_request line)
  in
  match parsed with
  | Error (id, code, msg) ->
    Atomic.incr t.c_malformed;
    Metrics.Counter.incr m_malformed;
    respond_error t conn ~id code msg;
    access_line t ~id ~name:"malformed" ~outcome:(Protocol.code_name code) ~dur_ns:0 ()
  | Ok env -> (
    let id = env.Protocol.id in
    let name = Protocol.request_name env.Protocol.req in
    (* control requests answer inline from the reader thread; they get
       the same windowed accounting and access-log line as queued work *)
    let inline result_f =
      let t0_ns = Clock.now_ns () in
      respond_ok t conn ~id (result_f ());
      let dur_ns = Clock.now_ns () - t0_ns in
      observe_window t ~name ~dur_ns ~outcome:Rolling.Ok;
      access_line t ~id ~name ~outcome:"ok" ~dur_ns ?trace_id:env.Protocol.trace_id ()
    in
    match env.Protocol.req with
    | Protocol.Ping -> inline (fun () -> Json.Obj [ ("pong", Json.Bool true) ])
    | Protocol.Stats -> inline (fun () -> stats_json t)
    | Protocol.Metrics_text ->
      inline (fun () ->
          Json.Obj
            [
              ("content_type", Json.String "text/plain; version=0.0.4");
              ("text", Json.String (prometheus_text t));
            ])
    | Protocol.Shutdown ->
      log t "conn %d: shutdown requested" conn.cid;
      inline (fun () -> Json.Obj [ ("stopping", Json.Bool true) ]);
      request_stop t
    | _ -> (
      match admit t conn env with
      | Ok () -> ()
      | Error (code, msg) ->
        respond_error t conn ~id code msg;
        access_line t ~id ~name ~outcome:(Protocol.code_name code) ~dur_ns:0 ()))

let reader_loop t conn =
  let r = Framing.reader ~max_frame:t.config.max_frame conn.fd in
  let live = ref true in
  while !live do
    match Framing.read_frame r with
    | Framing.Eof -> live := false
    | Framing.Too_long n ->
      Atomic.incr t.c_requests;
      Metrics.Counter.incr m_requests;
      Atomic.incr t.c_malformed;
      Metrics.Counter.incr m_malformed;
      respond_error t conn ~id:None Protocol.Frame_too_long
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" n t.config.max_frame)
    | Framing.Nul ->
      Atomic.incr t.c_requests;
      Metrics.Counter.incr m_requests;
      Atomic.incr t.c_malformed;
      Metrics.Counter.incr m_malformed;
      respond_error t conn ~id:None Protocol.Invalid_frame "frame contains a NUL byte"
    | Framing.Frame line -> handle_frame t conn line
  done;
  Mutex.lock conn.write_lock;
  conn.dead <- true;
  Mutex.unlock conn.write_lock;
  maybe_close t conn;
  log t "conn %d: closed" conn.cid

(* --- listeners ---------------------------------------------------------- *)

let accept_loop t lfd =
  while not (Atomic.get t.stopping) do
    match Unix.select [ lfd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept lfd with
      | exception Unix.Unix_error _ -> ()  (* racing teardown, or transient *)
      | fd, _addr ->
        let cid = Atomic.fetch_and_add t.next_cid 1 in
        let conn =
          {
            cid;
            fd;
            write_lock = Mutex.create ();
            inflight = Atomic.make 0;
            dead = false;
            fd_closed = false;
          }
        in
        Atomic.incr t.c_conns_total;
        let th = Thread.create (fun () -> reader_loop t conn) () in
        Mutex.lock t.conns_lock;
        Hashtbl.replace t.conns cid (conn, th);
        Mutex.unlock t.conns_lock;
        log t "conn %d: accepted" cid)
  done

let start t =
  if t.config.socket_path = None && t.config.tcp_port = None then
    invalid_arg "Server.start: config names no listener (socket_path or tcp_port)";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  t.started_at <- now ();
  (match t.config.socket_path with
  | None -> ()
  | Some path ->
    (* a stale socket file from a dead daemon blocks bind; clear it *)
    (match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    t.listeners <- (fd, "unix:" ^ path) :: t.listeners);
  (match t.config.tcp_port with
  | None -> ()
  | Some port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.tcp_host, port));
    Unix.listen fd 64;
    (match Unix.getsockname fd with
    | Unix.ADDR_INET (_, bound) -> t.bound_port <- Some bound
    | _ -> ());
    t.listeners <-
      (fd, Printf.sprintf "tcp:%s:%d" t.config.tcp_host (Option.value t.bound_port ~default:port))
      :: t.listeners);
  t.accept_threads <-
    List.map (fun (fd, _) -> Thread.create (fun () -> accept_loop t fd) ()) t.listeners;
  t.worker_threads <-
    List.init t.config.workers (fun _ -> Thread.create (fun () -> worker_loop t) ());
  List.iter (fun (_, desc) -> log t "listening on %s" desc) t.listeners;
  log t "engine: %d domain(s), %d workers, queue %d, quota %d%s" (Engine.domains t.engine)
    t.config.workers t.config.queue_capacity t.config.max_inflight_per_client
    (match Engine.store_dir t.engine with
    | None -> ""
    | Some d -> Printf.sprintf ", store %s" d)

let teardown t =
  Mutex.lock t.lifecycle;
  let first = not t.torn_down in
  t.torn_down <- true;
  Mutex.unlock t.lifecycle;
  if first then begin
    (* 1. accept threads observe the flag within their select timeout *)
    List.iter Thread.join t.accept_threads;
    List.iter (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
    (match t.config.socket_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ());
    (* 2. drain: admission already refuses, so the queue only shrinks *)
    let deadline = now () +. t.config.drain_deadline_s in
    let pending () =
      Mutex.lock t.qlock;
      let q = t.qsize in
      Mutex.unlock t.qlock;
      q + Atomic.get t.inflight_total
    in
    while pending () > 0 && now () < deadline do
      Thread.delay 0.01
    done;
    if pending () > 0 then log t "drain deadline expired with %d job(s) pending" (pending ());
    (* 3. workers exit once the queue is empty and the flag is up *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    List.iter Thread.join t.worker_threads;
    (* 4. wake blocked readers and reap connections *)
    Mutex.lock t.conns_lock;
    let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun (conn, _) ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      remaining;
    List.iter (fun (_, th) -> Thread.join th) remaining;
    List.iter
      (fun (conn, _) ->
        Mutex.lock conn.write_lock;
        let close_now = not conn.fd_closed in
        conn.fd_closed <- true;
        conn.dead <- true;
        Mutex.unlock conn.write_lock;
        if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ())
      remaining;
    Option.iter Spool.close_log t.access;
    log t "stopped"
  end

let wait t =
  while not (Atomic.get t.stopping) do
    Thread.delay 0.05
  done;
  teardown t

let stop t =
  request_stop t;
  wait t

let run t =
  start t;
  (match Sys.os_type with
  | "Unix" ->
    (* handlers only flip an atomic; [wait] does the teardown from a
       normal thread context *)
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop t));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t))
  | _ -> ());
  wait t
