(** Newline-delimited framing over a file descriptor, hardened against
    hostile peers.

    One frame is one line; the reader enforces a byte cap and rejects
    NUL-bearing lines {e without} dropping the connection — an overlong
    or binary frame is consumed through its terminating newline and
    reported as [Too_long]/[Nul], so the caller can answer a structured
    error and keep serving the same client. A trailing [\r] is stripped
    (CRLF tolerance). Reads are buffered; a connection must be read by
    one thread at a time. *)

type reader

val reader : ?max_frame:int -> Unix.file_descr -> reader
(** [max_frame] (default 65536) caps the frame length in bytes,
    exclusive of the newline. *)

type frame =
  | Frame of string
  | Too_long of int
      (** the line exceeded [max_frame]; payload is the number of bytes
          discarded (the line was consumed through its newline) *)
  | Nul  (** the line contained a NUL byte and was discarded *)
  | Eof
      (** peer closed (a trailing unterminated line is discarded), or
          the descriptor died under the read *)

val read_frame : reader -> frame

val write_frame : Unix.file_descr -> string -> unit
(** Write the frame plus ['\n'], looping until fully written. Raises
    [Unix.Unix_error] (e.g. [EPIPE]) when the peer is gone; callers own
    the per-connection write lock and the error handling. *)
