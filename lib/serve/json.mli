(** Minimal JSON codec for the newline-delimited serve protocol.

    The toolchain ships no JSON library, and the protocol needs very
    little: scalars, arrays, objects, and a printer whose output is a
    {e deterministic function of the value} — the service-layer tests
    assert byte-identical response payloads across daemon restarts, so
    object key order is preserved exactly as constructed and floats
    print through one fixed format.

    The parser is a strict recursive-descent reader of a single
    document: trailing garbage, unterminated literals, bare control
    characters in strings, and nesting deeper than {!max_depth} are all
    rejected with a message carrying the byte offset. Numbers without
    [.], [e] or [E] parse as [Int] (falling back to [Float] past
    [max_int]); everything else numeric parses as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order is preserved, duplicates kept *)

exception Parse_error of string
(** Carries ["offset N: <reason>"]. *)

val max_depth : int
(** Nesting cap (64): deeper documents raise {!Parse_error} instead of
    overflowing the stack on adversarial input. *)

val parse : string -> t
(** Raises {!Parse_error}. *)

val parse_result : string -> (t, string) result

val to_string : t -> string
(** One line, no trailing newline. Strings escape the double quote,
    the backslash and control characters (as [\uXXXX] or the short
    forms) and nothing else;
    integral floats print with a trailing [.0] so they re-parse as
    [Float]; non-finite floats raise [Invalid_argument] — encode them
    upstream (the protocol layer maps them to strings). *)

(** {2 Accessors} — shape-checking helpers for the protocol layer. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] and integral [Float] both yield [n]. *)

val to_float : t -> float option
(** [Float f] or [Int n] (as [float n]). *)

val to_bool : t -> bool option
val to_str : t -> string option
