module Metrics = Lattice_obs.Metrics
module Trace = Lattice_obs.Trace

(* process-wide registry counters, aggregated across store instances;
   per-instance counts live in [stats] *)
let hits_counter = Metrics.counter "engine.store.hits"
let misses_counter = Metrics.counter "engine.store.misses"
let writes_counter = Metrics.counter "engine.store.writes"
let corrupt_counter = Metrics.counter "engine.store.corrupt"

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt : int;
  errors : int;
}

type 'a t = {
  dir : string;
  lock : Mutex.t;  (* guards the stat fields only; IO runs unlocked *)
  temp_seq : int Atomic.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable corrupt : int;
  mutable errors : int;
}

let magic = "FTLSTORE1"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir =
  if dir = "" then invalid_arg "Store.open_: empty directory";
  mkdir_p dir;
  {
    dir;
    lock = Mutex.create ();
    temp_seq = Atomic.make 0;
    hits = 0;
    misses = 0;
    writes = 0;
    corrupt = 0;
    errors = 0;
  }

let dir t = t.dir

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let shard_of hex = String.sub hex 0 2

let entry_path t ~key =
  let hex = Digest.to_hex (Digest.string key) in
  Filename.concat (Filename.concat t.dir (shard_of hex)) (hex ^ ".entry")

(* Anything wrong with an entry file's framing or checksum. *)
exception Corrupt of string

let input_header_line ic =
  match In_channel.input_line ic with
  | Some l -> l
  | None -> raise (Corrupt "truncated header")

let read_entry ~key path =
  In_channel.with_open_bin path (fun ic ->
      if input_header_line ic <> magic then raise (Corrupt "bad magic");
      if input_header_line ic <> key then raise (Corrupt "key mismatch");
      let len =
        match int_of_string_opt (input_header_line ic) with
        | Some n when n >= 0 -> n
        | Some _ | None -> raise (Corrupt "bad length")
      in
      let digest = input_header_line ic in
      let payload =
        match In_channel.really_input_string ic len with
        | Some s -> s
        | None -> raise (Corrupt "truncated payload")
      in
      if In_channel.input_char ic <> None then raise (Corrupt "trailing bytes");
      if Digest.to_hex (Digest.string payload) <> digest then
        raise (Corrupt "checksum mismatch");
      match Marshal.from_string payload 0 with
      | v -> v
      | exception _ -> raise (Corrupt "unmarshalable payload"))

let find t ~key =
  let path = entry_path t ~key in
  if not (Sys.file_exists path) then begin
    bump t (fun t -> t.misses <- t.misses + 1);
    Metrics.Counter.incr misses_counter;
    None
  end
  else
    match read_entry ~key path with
    | v ->
      bump t (fun t -> t.hits <- t.hits + 1);
      Metrics.Counter.incr hits_counter;
      Some v
    | exception Corrupt why ->
      (* a torn or alien entry is a miss, never a crash: count it,
         drop the file so the slot heals on the next write *)
      bump t (fun t -> t.corrupt <- t.corrupt + 1);
      Metrics.Counter.incr corrupt_counter;
      if Trace.on () then
        Trace.instant ~cat:"engine"
          ~args:[ ("path", path); ("why", why) ]
          "store.corrupt";
      (try Sys.remove path with Sys_error _ -> ());
      None
    | exception (Sys_error _ | End_of_file | Unix.Unix_error _) ->
      bump t (fun t -> t.errors <- t.errors + 1);
      None

let add t ~key v =
  if String.contains key '\n' then
    invalid_arg "Store.add: keys must not contain newlines";
  match Marshal.to_string v [] with
  | exception _ ->
    (* unmarshalable value (closure in the payload): drop the spill *)
    bump t (fun t -> t.errors <- t.errors + 1)
  | payload -> (
    let path = entry_path t ~key in
    let shard = Filename.dirname path in
    let tmp =
      Printf.sprintf "%s/.tmp.%d.%d.%s" shard (Unix.getpid ())
        (Atomic.fetch_and_add t.temp_seq 1)
        (Filename.basename path)
    in
    match
      mkdir_p shard;
      Out_channel.with_open_bin tmp (fun oc ->
          Printf.fprintf oc "%s\n%s\n%d\n%s\n" magic key (String.length payload)
            (Digest.to_hex (Digest.string payload));
          Out_channel.output_string oc payload);
      (* the entry appears atomically: readers see the old file, no
         file, or the complete new one — never a partial write *)
      Sys.rename tmp path
    with
    | () ->
      bump t (fun t -> t.writes <- t.writes + 1);
      Metrics.Counter.incr writes_counter
    | exception (Sys_error _ | Unix.Unix_error _) ->
      bump t (fun t -> t.errors <- t.errors + 1);
      (try Sys.remove tmp with Sys_error _ -> ()))

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      writes = t.writes;
      corrupt = t.corrupt;
      errors = t.errors;
    }
  in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  bump t (fun t ->
      t.hits <- 0;
      t.misses <- 0;
      t.writes <- 0;
      t.corrupt <- 0;
      t.errors <- 0)
