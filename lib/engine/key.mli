(** Content-addressed cache keys for simulation jobs.

    A key is a hex digest of everything that determines a job's result:
    the structural digest of the netlist ({!Lattice_spice.Netlist.structural_digest}
    — topology, instance names, exact parameter bits) combined with the
    analysis specification (solver options, evaluation time). Keys of
    jobs that could disagree are guaranteed distinct; equal keys mean
    the solver would produce bit-identical results. *)

(** [dc_op ?options ?time netlist] — key of a DC operating-point job.
    Defaults match {!Lattice_spice.Dcop.solve_diag}: default options,
    [time = 0]. *)
val dc_op :
  ?options:Lattice_spice.Dcop.options -> ?time:float -> Lattice_spice.Netlist.t -> string

(** [dc_options_digest options] — digest of just the solver options
    (every tolerance, the continuation ladder, the engine choice). *)
val dc_options_digest : Lattice_spice.Dcop.options -> string

(** [custom parts] — generic key for non-circuit jobs (device sweeps,
    derived analyses): digest of the tagged parts in order. *)
val custom : [ `S of string | `F of float | `I of int ] list -> string
