type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics

(* process-wide registry counters, aggregated across every cache
   instance; per-instance counts stay in [stats] *)
let lookup_probe =
  Lattice_obs.Probe.make ~cat:"engine" ~hist:"engine.cache.lookup.seconds" "cache.lookup"

let hits_counter = Metrics.counter "engine.cache.hits"
let misses_counter = Metrics.counter "engine.cache.misses"
let evictions_counter = Metrics.counter "engine.cache.evictions"

type 'a t = {
  capacity : int;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, front = oldest *)
  lock : Mutex.t;
  fallback : (string -> 'a option) option;
  spill : (string -> 'a -> unit) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 4096) ?fallback ?spill () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create 256;
    order = Queue.create ();
    lock = Mutex.create ();
    fallback;
    spill;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* insert under the caller's lock; true iff the key was fresh *)
let insert_locked t ~key v =
  if Hashtbl.mem t.table key then false
  else begin
    if Hashtbl.length t.table >= t.capacity then begin
      match Queue.take_opt t.order with
      | Some victim ->
        Hashtbl.remove t.table victim;
        t.evictions <- t.evictions + 1;
        Metrics.Counter.incr evictions_counter;
        if Trace.on () then
          Trace.instant ~cat:"engine" ~args:[ ("key", victim) ] "cache.evict"
      | None -> ()
    end;
    Hashtbl.replace t.table key v;
    Queue.add key t.order;
    true
  end

let find t ~key =
  let t0 = Lattice_obs.Probe.enter lookup_probe in
  let in_memory = locked t (fun () -> Hashtbl.find_opt t.table key) in
  let r =
    match in_memory with
    | Some _ -> in_memory
    | None -> (
      (* second tier, consulted outside the lock; a hit is promoted to
         memory but not re-spilled — it already lives on disk *)
      match t.fallback with
      | None -> None
      | Some fb -> (
        match fb key with
        | None -> None
        | Some v ->
          locked t (fun () -> ignore (insert_locked t ~key v));
          Some v))
  in
  locked t (fun () ->
      match r with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
  Lattice_obs.Probe.leave lookup_probe t0;
  (match r with
  | Some _ -> Metrics.Counter.incr hits_counter
  | None -> Metrics.Counter.incr misses_counter);
  r

let add t ~key v =
  let fresh = locked t (fun () -> insert_locked t ~key v) in
  if fresh then Option.iter (fun spill -> spill key v) t.spill

let find_or_compute t ~key f =
  match find t ~key with
  | Some v -> v
  | None ->
    let v = f () in
    add t ~key v;
    v

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
