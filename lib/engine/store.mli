(** Crash-safe persistent content-addressed result store.

    The disk tier under {!Cache}: entries are spilled to
    [dir/<aa>/<digest>.entry] files (sharded by the first two hex
    characters of the entry's file digest) so a warm cache survives
    process exit — a fresh process re-running an identical campaign
    reads every result back instead of re-solving.

    {2 Durability contract}

    - {b Atomic writes}: every entry is written to a temp file in the
      same shard directory and [rename]d into place, so readers (in this
      process or another) only ever see absent or complete files —
      never a torn write, even across a crash mid-write.
    - {b Verified reads}: each entry carries a magic tag, its full key,
      the payload length and an MD5 checksum. A corrupt, truncated or
      alien file fails verification, is counted in [stats.corrupt],
      best-effort deleted, and treated as a miss — it never raises and
      never reaches [Marshal].
    - {b No IO failure escapes}: unreadable directories, permission
      errors, full disks all degrade to misses/dropped writes counted
      in [stats.errors].

    Values are [Marshal]ed; a store must hold exactly one value type
    (the phantom ['a] tracks it within a process; on disk, key spaces
    of different value types must not collide — {!Key} digests already
    embed a job-kind tag). Concurrent writers (domains or processes)
    are safe: both write complete files and the last rename wins with
    identical content. *)

type 'a t

type stats = {
  hits : int;
  misses : int;  (** lookups that found no (valid) entry file *)
  writes : int;  (** entries durably renamed into place *)
  corrupt : int;  (** entry files that failed verification *)
  errors : int;  (** IO errors on read or write, degraded to miss/drop *)
}

val open_ : dir:string -> 'a t
(** Open (creating directories as needed) a store rooted at [dir].
    Raises [Invalid_argument] on an empty [dir]; any later IO trouble
    is absorbed into [stats]. *)

val dir : 'a t -> string

val find : 'a t -> key:string -> 'a option
val add : 'a t -> key:string -> 'a -> unit

val entry_path : 'a t -> key:string -> string
(** Where [key]'s entry lives (whether or not it exists) — exposed for
    the fault-injection tests, which corrupt entries in place. *)

val stats : 'a t -> stats
val reset_stats : 'a t -> unit
