module Sp = Lattice_spice
module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics

(* process-wide registry mirrors of the per-instance telemetry atomics;
   {!summary} stays a view over the instance, these feed [--metrics] *)
let jobs_counter = Metrics.counter "engine.jobs"
let dc_solves_counter = Metrics.counter "engine.dc_solves"
let newton_counter = Metrics.counter "engine.newton_iterations"
let retries_counter = Metrics.counter "engine.retries"
let timeouts_counter = Metrics.counter "engine.timeouts"
let job_failures_counter = Metrics.counter "engine.job_failures"

type dc_result =
  (Lattice_numerics.Vec.t * Sp.Dcop.diagnostics, Sp.Dcop.failure) result

type t = {
  pool : Pool.t;
  dc_cache : dc_result Cache.t;
  store : dc_result Store.t option;
  jobs : int Atomic.t;
  dc_solves : int Atomic.t;
  newton : int Atomic.t;
  retries : int Atomic.t;
  timeouts : int Atomic.t;
  job_failures : int Atomic.t;
  phase_lock : Mutex.t;
  mutable phases : (string * float) list;  (* reversed first-use order *)
}

let env_store_dir () =
  match Sys.getenv_opt "FTL_CACHE_DIR" with
  | None | Some "" -> None
  | Some dir -> Some dir

let create ?domains ?(cache_capacity = 4096) ?store_dir () =
  let store_dir =
    match store_dir with
    | Some "" -> None  (* explicit empty string disables the store *)
    | Some _ as dir -> dir
    | None -> env_store_dir ()
  in
  let store = Option.map (fun dir -> Store.open_ ~dir) store_dir in
  let dc_cache =
    match store with
    | None -> Cache.create ~capacity:cache_capacity ()
    | Some s ->
      Cache.create ~capacity:cache_capacity
        ~fallback:(fun key -> Store.find s ~key)
        ~spill:(fun key v -> Store.add s ~key v)
        ()
  in
  {
    pool = Pool.create ?domains ();
    dc_cache;
    store;
    jobs = Atomic.make 0;
    dc_solves = Atomic.make 0;
    newton = Atomic.make 0;
    retries = Atomic.make 0;
    timeouts = Atomic.make 0;
    job_failures = Atomic.make 0;
    phase_lock = Mutex.create ();
    phases = [];
  }

let domains (t : t) = Pool.domains t.pool
let store_dir (t : t) = Option.map Store.dir t.store

(* Seed-splitting: the stream is a function of (seed, index) alone. The
   third word decorrelates streams whose (seed, index) pairs collide
   additively (Random.State.make hashes the words sequentially). *)
let sample_rng ~seed ~index =
  Random.State.make [| seed; index; Hashtbl.hash (seed, index, 0x51ce5) |]

let add_phase t phase dt =
  Mutex.lock t.phase_lock;
  (if List.mem_assoc phase t.phases then
     t.phases <-
       List.map (fun (p, s) -> if p = phase then (p, s +. dt) else (p, s)) t.phases
   else t.phases <- (phase, dt) :: t.phases);
  Mutex.unlock t.phase_lock

let timed t ~phase f =
  let t0 = Unix.gettimeofday () in
  let sp = if Trace.on () then Trace.begin_span ~cat:"engine" phase else Trace.null in
  Fun.protect
    ~finally:(fun () ->
      Trace.end_span sp;
      add_phase t phase (Unix.gettimeofday () -. t0))
    f

let traced_job ?phase f =
  if Trace.on () then (
    let name = match phase with Some p -> p ^ ".job" | None -> "job" in
    fun i ->
      Trace.with_span ~cat:"engine" ~args:[ ("index", string_of_int i) ] name (fun () -> f i))
  else f

let map t ?phase ~n f =
  let run () =
    ignore (Atomic.fetch_and_add t.jobs n);
    Metrics.Counter.add jobs_counter n;
    Pool.map t.pool ~n (traced_job ?phase f)
  in
  match phase with None -> run () | Some phase -> timed t ~phase run

type job_policy = { deadline_s : float option; attempts : int; backoff : float }

let default_policy = { deadline_s = None; attempts = 1; backoff = 2.0 }

let run_jobs (type a) t ?(policy = default_policy) ?(cancel = Cancel.none) ?phase
    ?(retryable = fun (_ : a) -> false) ~n (f : attempt:int -> cancel:Cancel.t -> int -> a) =
  if policy.attempts < 1 then invalid_arg "Engine.run_jobs: attempts must be >= 1";
  if n < 0 then invalid_arg "Engine.run_jobs: negative n";
  let out : a Pool.outcome array = Array.make n Pool.Cancelled in
  (* one dispatch wave: run [f] over the given original-index set,
     each job under its own deadline token (grown by backoff per
     attempt), and scatter the outcomes back by original index *)
  let dispatch ~attempt indices =
    let m = Array.length indices in
    ignore (Atomic.fetch_and_add t.jobs m);
    Metrics.Counter.add jobs_counter m;
    let job k =
      let idx = indices.(k) in
      let job_cancel =
        match policy.deadline_s with
        | None -> cancel
        | Some d ->
          let seconds = d *. (policy.backoff ** float_of_int attempt) in
          Cancel.with_deadline ~parent:cancel ~seconds ()
      in
      f ~attempt ~cancel:job_cancel idx
    in
    let job = traced_job ?phase job in
    let wave = Pool.map_outcomes t.pool ~cancel ~n:m job in
    Array.iteri (fun k o -> out.(indices.(k)) <- o) wave
  in
  let wants_retry = function
    | Pool.Failed _ -> true
    | Pool.Timed_out ->
      (* without a per-job deadline there is no bigger budget to grant *)
      policy.deadline_s <> None
    | Pool.Done v -> retryable v
    | Pool.Cancelled -> false
  in
  let run () =
    dispatch ~attempt:0 (Array.init n Fun.id);
    let attempt = ref 1 in
    let draining = ref (policy.attempts > 1) in
    while !draining do
      if !attempt >= policy.attempts || Cancel.is_cancelled cancel then draining := false
      else begin
        let again = ref [] in
        for i = n - 1 downto 0 do
          if wants_retry out.(i) then again := i :: !again
        done;
        match !again with
        | [] -> draining := false
        | indices ->
          let indices = Array.of_list indices in
          ignore (Atomic.fetch_and_add t.retries (Array.length indices));
          Metrics.Counter.add retries_counter (Array.length indices);
          Trace.attribute_retries (Array.length indices);
          if Trace.on () then
            Trace.instant ~cat:"engine"
              ~args:
                [
                  ("attempt", string_of_int !attempt);
                  ("jobs", string_of_int (Array.length indices));
                ]
              "engine.retry";
          dispatch ~attempt:!attempt indices;
          incr attempt
      end
    done;
    (* final-outcome accounting: a job that timed out on attempt 0 but
       succeeded on a retry is not a timeout *)
    let timeouts = ref 0 and failures = ref 0 in
    Array.iter
      (function
        | Pool.Timed_out -> incr timeouts
        | Pool.Failed _ -> incr failures
        | Pool.Done _ | Pool.Cancelled -> ())
      out;
    if !timeouts > 0 then begin
      ignore (Atomic.fetch_and_add t.timeouts !timeouts);
      Metrics.Counter.add timeouts_counter !timeouts
    end;
    if !failures > 0 then begin
      ignore (Atomic.fetch_and_add t.job_failures !failures);
      Metrics.Counter.add job_failures_counter !failures
    end;
    out
  in
  match phase with None -> run () | Some phase -> timed t ~phase run

let copy_result = function
  | Ok (x, diag) -> Ok (Array.copy x, diag)
  | Error _ as e -> e

let failure_iterations (f : Sp.Dcop.failure) =
  List.fold_left (fun acc (_, n) -> acc + n) 0 f.Sp.Dcop.attempts

let dc_op t ?(options = Sp.Dcop.default_options) ?cancel netlist =
  let key = Key.dc_op ~options netlist in
  match Cache.find t.dc_cache ~key with
  | Some r ->
    Trace.attribute_cache_hit ();
    copy_result r
  | None ->
    Trace.attribute_dc_solve ();
    (* a cancelled solve raises out of [solve_diag] before any of the
       bookkeeping below — partial results are never cached *)
    let r = Sp.Dcop.solve_diag ~options ?cancel netlist in
    ignore (Atomic.fetch_and_add t.dc_solves 1);
    Metrics.Counter.incr dc_solves_counter;
    let iters =
      match r with
      | Ok (_, d) -> d.Sp.Dcop.newton_iterations
      | Error f -> failure_iterations f
    in
    ignore (Atomic.fetch_and_add t.newton iters);
    Metrics.Counter.add newton_counter iters;
    Cache.add t.dc_cache ~key (copy_result r);
    r

type telemetry = {
  domains : int;
  jobs : int;
  dc_solves : int;
  cache : Cache.stats;
  store : Store.stats option;
  newton_total : int;
  retries : int;
  timeouts : int;
  job_failures : int;
  phases : (string * float) list;
}

let telemetry (t : t) =
  Mutex.lock t.phase_lock;
  let phases = List.rev t.phases in
  Mutex.unlock t.phase_lock;
  {
    domains = domains t;
    jobs = Atomic.get t.jobs;
    dc_solves = Atomic.get t.dc_solves;
    cache = Cache.stats t.dc_cache;
    store = Option.map Store.stats t.store;
    newton_total = Atomic.get t.newton;
    retries = Atomic.get t.retries;
    timeouts = Atomic.get t.timeouts;
    job_failures = Atomic.get t.job_failures;
    phases;
  }

(* live-telemetry gauges: instantaneous instance counters published under
   [engine.live.*], distinct from the process-wide monotonic counters
   ([engine.jobs], [engine.cache.hits], ...) that accumulate across every
   engine ever created. A long-running daemon republishes these on each
   stats/metrics export so scrapes see current serving health. *)
let publish_gauges (t : t) =
  if Metrics.on () then begin
    let tel = telemetry t in
    let set name v =
      Metrics.Gauge.set (Metrics.gauge ("engine.live." ^ name)) (float_of_int v)
    in
    set "jobs" tel.jobs;
    set "dc_solves" tel.dc_solves;
    set "newton_total" tel.newton_total;
    set "retries" tel.retries;
    set "timeouts" tel.timeouts;
    set "job_failures" tel.job_failures;
    set "cache_hits" tel.cache.Cache.hits;
    set "cache_misses" tel.cache.Cache.misses;
    set "cache_evictions" tel.cache.Cache.evictions;
    set "cache_size" tel.cache.Cache.size;
    match tel.store with
    | None -> ()
    | Some s ->
      set "store_hits" s.Store.hits;
      set "store_misses" s.Store.misses;
      set "store_writes" s.Store.writes;
      set "store_corrupt" s.Store.corrupt;
      set "store_errors" s.Store.errors
  end

let reset_telemetry (t : t) =
  Atomic.set t.jobs 0;
  Atomic.set t.dc_solves 0;
  Atomic.set t.newton 0;
  Atomic.set t.retries 0;
  Atomic.set t.timeouts 0;
  Atomic.set t.job_failures 0;
  Mutex.lock t.phase_lock;
  t.phases <- [];
  Mutex.unlock t.phase_lock;
  Cache.reset_stats t.dc_cache;
  Option.iter Store.reset_stats t.store;
  (* keep published live gauges in step with the zeroed counters *)
  publish_gauges t

let summary (t : t) =
  let tel = telemetry t in
  let lookups = tel.cache.Cache.hits + tel.cache.Cache.misses in
  let hit_pct =
    if lookups = 0 then 0.0
    else 100.0 *. float_of_int tel.cache.Cache.hits /. float_of_int lookups
  in
  let store =
    match tel.store with
    | None -> ""
    | Some s ->
      Printf.sprintf " | store %d/%d hits, %d writes, %d corrupt"
        s.Store.hits
        (s.Store.hits + s.Store.misses)
        s.Store.writes s.Store.corrupt
  in
  let faults =
    if tel.retries = 0 && tel.timeouts = 0 && tel.job_failures = 0 then ""
    else
      Printf.sprintf " | %d retries, %d timeouts, %d failures" tel.retries tel.timeouts
        tel.job_failures
  in
  let phases =
    match tel.phases with
    | [] -> ""
    | ps ->
      " | "
      ^ String.concat ", "
          (List.map (fun (p, s) -> Printf.sprintf "%s %.2fs" p s) ps)
  in
  Printf.sprintf
    "engine: %d domain%s | %d jobs | %d dc solves, cache %d/%d hits (%.1f%%), %d evictions%s | %d newton iters%s%s"
    tel.domains
    (if tel.domains = 1 then "" else "s")
    tel.jobs tel.dc_solves tel.cache.Cache.hits lookups hit_pct
    tel.cache.Cache.evictions store tel.newton_total faults phases
