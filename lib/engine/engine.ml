module Sp = Lattice_spice
module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics

(* process-wide registry mirrors of the per-instance telemetry atomics;
   {!summary} stays a view over the instance, these feed [--metrics] *)
let jobs_counter = Metrics.counter "engine.jobs"
let dc_solves_counter = Metrics.counter "engine.dc_solves"
let newton_counter = Metrics.counter "engine.newton_iterations"

type dc_result =
  (Lattice_numerics.Vec.t * Sp.Dcop.diagnostics, Sp.Dcop.failure) result

type t = {
  pool : Pool.t;
  dc_cache : dc_result Cache.t;
  jobs : int Atomic.t;
  dc_solves : int Atomic.t;
  newton : int Atomic.t;
  phase_lock : Mutex.t;
  mutable phases : (string * float) list;  (* reversed first-use order *)
}

let create ?domains ?(cache_capacity = 4096) () =
  {
    pool = Pool.create ?domains ();
    dc_cache = Cache.create ~capacity:cache_capacity ();
    jobs = Atomic.make 0;
    dc_solves = Atomic.make 0;
    newton = Atomic.make 0;
    phase_lock = Mutex.create ();
    phases = [];
  }

let domains (t : t) = Pool.domains t.pool

(* Seed-splitting: the stream is a function of (seed, index) alone. The
   third word decorrelates streams whose (seed, index) pairs collide
   additively (Random.State.make hashes the words sequentially). *)
let sample_rng ~seed ~index =
  Random.State.make [| seed; index; Hashtbl.hash (seed, index, 0x51ce5) |]

let add_phase t phase dt =
  Mutex.lock t.phase_lock;
  (if List.mem_assoc phase t.phases then
     t.phases <-
       List.map (fun (p, s) -> if p = phase then (p, s +. dt) else (p, s)) t.phases
   else t.phases <- (phase, dt) :: t.phases);
  Mutex.unlock t.phase_lock

let timed t ~phase f =
  let t0 = Unix.gettimeofday () in
  let sp = if Trace.on () then Trace.begin_span ~cat:"engine" phase else Trace.null in
  Fun.protect
    ~finally:(fun () ->
      Trace.end_span sp;
      add_phase t phase (Unix.gettimeofday () -. t0))
    f

let map t ?phase ~n f =
  let run () =
    ignore (Atomic.fetch_and_add t.jobs n);
    Metrics.Counter.add jobs_counter n;
    let f =
      if Trace.on () then (
        let name = match phase with Some p -> p ^ ".job" | None -> "job" in
        fun i -> Trace.with_span ~cat:"engine" ~args:[ ("index", string_of_int i) ] name (fun () -> f i))
      else f
    in
    Pool.map t.pool ~n f
  in
  match phase with None -> run () | Some phase -> timed t ~phase run

let copy_result = function
  | Ok (x, diag) -> Ok (Array.copy x, diag)
  | Error _ as e -> e

let failure_iterations (f : Sp.Dcop.failure) =
  List.fold_left (fun acc (_, n) -> acc + n) 0 f.Sp.Dcop.attempts

let dc_op t ?(options = Sp.Dcop.default_options) netlist =
  let key = Key.dc_op ~options netlist in
  match Cache.find t.dc_cache ~key with
  | Some r -> copy_result r
  | None ->
    let r = Sp.Dcop.solve_diag ~options netlist in
    ignore (Atomic.fetch_and_add t.dc_solves 1);
    Metrics.Counter.incr dc_solves_counter;
    let iters =
      match r with
      | Ok (_, d) -> d.Sp.Dcop.newton_iterations
      | Error f -> failure_iterations f
    in
    ignore (Atomic.fetch_and_add t.newton iters);
    Metrics.Counter.add newton_counter iters;
    Cache.add t.dc_cache ~key (copy_result r);
    r

type telemetry = {
  domains : int;
  jobs : int;
  dc_solves : int;
  cache : Cache.stats;
  newton_total : int;
  phases : (string * float) list;
}

let telemetry (t : t) =
  Mutex.lock t.phase_lock;
  let phases = List.rev t.phases in
  Mutex.unlock t.phase_lock;
  {
    domains = domains t;
    jobs = Atomic.get t.jobs;
    dc_solves = Atomic.get t.dc_solves;
    cache = Cache.stats t.dc_cache;
    newton_total = Atomic.get t.newton;
    phases;
  }

let reset_telemetry (t : t) =
  Atomic.set t.jobs 0;
  Atomic.set t.dc_solves 0;
  Atomic.set t.newton 0;
  Mutex.lock t.phase_lock;
  t.phases <- [];
  Mutex.unlock t.phase_lock;
  Cache.reset_stats t.dc_cache

let summary (t : t) =
  let tel = telemetry t in
  let lookups = tel.cache.Cache.hits + tel.cache.Cache.misses in
  let hit_pct =
    if lookups = 0 then 0.0
    else 100.0 *. float_of_int tel.cache.Cache.hits /. float_of_int lookups
  in
  let phases =
    match tel.phases with
    | [] -> ""
    | ps ->
      " | "
      ^ String.concat ", "
          (List.map (fun (p, s) -> Printf.sprintf "%s %.2fs" p s) ps)
  in
  Printf.sprintf
    "engine: %d domain%s | %d jobs | %d dc solves, cache %d/%d hits (%.1f%%), %d evictions | %d newton iters%s"
    tel.domains
    (if tel.domains = 1 then "" else "s")
    tel.jobs tel.dc_solves tel.cache.Cache.hits lookups hit_pct
    tel.cache.Cache.evictions tel.newton_total phases
