(** Domain pool: deterministic fan-out of independent jobs over OCaml 5
    Domains.

    The pool runs an indexed job function [f : int -> 'a] over indices
    [0 .. n-1] and merges results {e by index}, so the output array is
    identical whatever the scheduling order — running on 4 domains is
    bit-identical to running serially as long as [f] is pure in its
    index (no shared sequential RNG stream, no order-dependent
    accumulator). One domain is the degenerate serial case: the job
    runs entirely on the calling domain with no spawns.

    Workers claim indices from a shared atomic counter in {e adaptive
    chunks} of [max 1 (n / (8 * domains))] indices per claim — large
    batches pay one atomic fetch-and-add per chunk instead of per job,
    while small batches degrade to per-job claiming so the tail stays
    balanced. Chunking is invisible in the results (index-merged) and
    the intended job granularity is unchanged: a whole circuit
    simulation (a Monte-Carlo die, a fault-campaign sample, an I-V
    sweep point), not a micro-kernel.

    {!map} aborts the batch on the first exception (legacy fail-fast
    contract); {!map_outcomes} is the fault-isolating variant the
    resilient engine builds on — every job is classified, nothing
    escapes. *)

type t

(** [create ?domains ()] sizes the pool. Default: {!default_domains}.
    Raises [Invalid_argument] when [domains < 1]. *)
val create : ?domains:int -> unit -> t

val domains : t -> int

(** Domain count from the [FTL_DOMAINS] environment variable when set to
    a positive integer, else [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

val chunk_size : domains:int -> n:int -> int
(** The claim granularity [map]/[map_outcomes] use:
    [max 1 (n / (8 * domains))], i.e. about 8 claims per worker. *)

(** [map t ~n f] is [Array.init n f] computed on the pool's domains.
    Results are merged by index. If any [f i] raises, the remaining
    unclaimed indices are abandoned and the recorded exception with the
    lowest index is re-raised (with its backtrace) on the caller. *)
val map : t -> n:int -> (int -> 'a) -> 'a array

(** A worker exception, captured printably so outcomes can cross domain
    (and, marshalled, process) boundaries — exception values themselves
    may hold unmarshalable payloads. *)
type exn_info = {
  printed : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;  (** raw backtrace, rendered; may be empty *)
}

(** Per-job classification of a fault-isolated batch. *)
type 'a outcome =
  | Done of 'a
  | Failed of exn_info  (** the job raised; the batch kept going *)
  | Timed_out  (** a {!Cancel} deadline fired inside the job *)
  | Cancelled
      (** explicit cancellation, or the job never ran because the
          batch token fired first *)

(** [map_outcomes t ?cancel ~n f] runs [f] over [0 .. n-1] with
    {e crash isolation}: a job that raises is recorded as [Failed] (or
    [Timed_out]/[Cancelled] for {!Cancel.Cancelled}) and the batch
    continues — no exception escapes this call. When [cancel] fires,
    in-flight jobs stop at their next cancellation checkpoint and
    unclaimed jobs are left [Cancelled] without running. Outcomes are
    merged by index like {!map}. *)
val map_outcomes :
  t -> ?cancel:Cancel.t -> n:int -> (int -> 'a) -> 'a outcome array
