(** Domain pool: deterministic fan-out of independent jobs over OCaml 5
    Domains.

    The pool runs an indexed job function [f : int -> 'a] over indices
    [0 .. n-1] and merges results {e by index}, so the output array is
    identical whatever the scheduling order — running on 4 domains is
    bit-identical to running serially as long as [f] is pure in its
    index (no shared sequential RNG stream, no order-dependent
    accumulator). One domain is the degenerate serial case: the job
    runs entirely on the calling domain with no spawns.

    Jobs are claimed from a shared atomic counter, one index at a time:
    the intended granularity is a whole circuit simulation (a
    Monte-Carlo die, a fault-campaign sample, an I-V sweep point), not
    a micro-kernel. *)

type t

(** [create ?domains ()] sizes the pool. Default: {!default_domains}.
    Raises [Invalid_argument] when [domains < 1]. *)
val create : ?domains:int -> unit -> t

val domains : t -> int

(** Domain count from the [FTL_DOMAINS] environment variable when set to
    a positive integer, else [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

(** [map t ~n f] is [Array.init n f] computed on the pool's domains.
    Results are merged by index. If any [f i] raises, the remaining
    unclaimed indices are abandoned and the recorded exception with the
    lowest index is re-raised (with its backtrace) on the caller. *)
val map : t -> n:int -> (int -> 'a) -> 'a array
