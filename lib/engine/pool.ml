type t = { domains : int }

let env_domains () =
  match Sys.getenv_opt "FTL_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  { domains }

let domains t = t.domains

let map t ~n f =
  if n < 0 then invalid_arg "Pool.map: negative n";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let failed = Atomic.make false in
    let next = Atomic.make 0 in
    let worker () =
      let sp =
        if Lattice_obs.Trace.on () then Lattice_obs.Trace.begin_span ~cat:"engine" "pool.worker"
        else Lattice_obs.Trace.null
      in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && not (Atomic.get failed) then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e ->
            errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
            Atomic.set failed true);
          loop ()
        end
      in
      loop ();
      Lattice_obs.Trace.end_span sp
    in
    (* the calling domain is worker 0 *)
    let spawned = Int.min (t.domains - 1) (n - 1) in
    let others = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others;
    if Atomic.get failed then begin
      Array.iter
        (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
        errors;
      assert false
    end
    else Array.map (function Some v -> v | None -> assert false) results
  end
