type t = { domains : int }

let env_domains () =
  match Sys.getenv_opt "FTL_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  { domains }

let domains t = t.domains

(* about 8 claims per worker: one fetch-and-add amortized over the
   chunk, small enough that the tail stays balanced *)
let chunk_size ~domains ~n = Int.max 1 (n / (8 * domains))

(* Shared driver: claim indices in chunks, run [body] on each claimed
   index until [stop ()] flips. [body] must not raise — both callers
   catch inside it. *)
let drive t ~n ~stop ~body =
  if t.domains = 1 || n = 1 then begin
    let i = ref 0 in
    while !i < n && not (stop ()) do
      body !i;
      incr i
    done
  end
  else begin
    let chunk = chunk_size ~domains:t.domains ~n in
    let next = Atomic.make 0 in
    (* spawned domains inherit the submitting thread's request context
       so solves they run are attributed to the right request *)
    let ctx = Lattice_obs.Trace.current_context () in
    let worker () =
      Lattice_obs.Trace.with_context_opt ctx @@ fun () ->
      let sp =
        if Lattice_obs.Trace.on () then Lattice_obs.Trace.begin_span ~cat:"engine" "pool.worker"
        else Lattice_obs.Trace.null
      in
      let running = ref true in
      while !running do
        if stop () then running := false
        else begin
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n then running := false
          else begin
            let hi = Int.min n (lo + chunk) in
            let i = ref lo in
            while !i < hi && not (stop ()) do
              body !i;
              incr i
            done
          end
        end
      done;
      Lattice_obs.Trace.end_span sp
    in
    (* the calling domain is worker 0 *)
    let spawned = Int.min (t.domains - 1) (n - 1) in
    let others = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others
  end

let map t ~n f =
  if n < 0 then invalid_arg "Pool.map: negative n";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let failed = Atomic.make false in
    let body i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e ->
        errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
        Atomic.set failed true
    in
    drive t ~n ~stop:(fun () -> Atomic.get failed) ~body;
    if Atomic.get failed then begin
      Array.iter
        (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
        errors;
      assert false
    end
    else Array.map (function Some v -> v | None -> assert false) results
  end

type exn_info = { printed : string; backtrace : string }

type 'a outcome = Done of 'a | Failed of exn_info | Timed_out | Cancelled

let map_outcomes t ?(cancel = Cancel.none) ~n f =
  if n < 0 then invalid_arg "Pool.map_outcomes: negative n";
  let out = Array.make n Cancelled in
  let body i =
    out.(i) <-
      (if Cancel.is_cancelled cancel then Cancelled
       else
         match f i with
         | v -> Done v
         | exception Cancel.Cancelled Cancel.Deadline -> Timed_out
         | exception Cancel.Cancelled Cancel.Requested -> Cancelled
         | exception e ->
           let printed = Printexc.to_string e in
           let backtrace = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
           Failed { printed; backtrace })
  in
  drive t ~n ~stop:(fun () -> Cancel.is_cancelled cancel) ~body;
  out
