(** Engine-side view of {!Lattice_spice.Cancel}: the same token type
    (so engine call sites and spice inner loops share one token), plus
    batch-layer conveniences. *)

include module type of struct
  include Lattice_spice.Cancel
end

val of_deadline_s : ?parent:t -> float option -> t
(** [of_deadline_s ?parent d] — the token a CLI [--deadline] argument
    means: [None] is [parent] (or {!none}), [Some s] a fresh token
    firing [s] seconds from now, parented under [parent]. *)
