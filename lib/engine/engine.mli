(** Parallel batch-simulation engine.

    Every heavy workload in this reproduction is a fan-out of
    independent circuit/device simulations: Monte-Carlo dies, fault
    -campaign samples, I-V sweep points, exhaustive-search circuit
    validations. The engine runs those jobs on a {!Pool} of OCaml 5
    Domains, memoizes repeated DC operating points in a
    content-addressed {!Cache}, and keeps lightweight telemetry (jobs,
    cache traffic, Newton iterations, wall time per phase).

    {2 Determinism contract}

    [map] merges results by job index and jobs must be pure in their
    index, so a 4-domain run is bit-identical to the 1-domain (serial)
    run. Randomized workloads get per-job RNG streams from
    {!sample_rng} (seed-splitting by hash of [seed, index]) instead of
    one sequential stream. Cached DC results replay the original solver
    output — solution vector {e and} diagnostics, including Newton
    iteration counts — so accounting (e.g. a fault campaign's
    per-sample Newton budget) is identical on warm and cold caches. *)

type t

(** [create ?domains ?cache_capacity ()] — [domains] defaults to
    [FTL_DOMAINS] when set, else [Domain.recommended_domain_count ()];
    [cache_capacity] (DC-result entries, FIFO eviction) defaults to
    4096. One domain is the degenerate serial engine. *)
val create : ?domains:int -> ?cache_capacity:int -> unit -> t

val domains : t -> int

(** [sample_rng ~seed ~index] is the RNG stream of sample [index]:
    seeded by a hash of [(seed, index)], so the stream is a function of
    the pair alone — sample [k] draws the same perturbations whether or
    not samples [0 .. k-1] ran, and in whatever order the pool
    scheduled them. *)
val sample_rng : seed:int -> index:int -> Random.State.t

(** [map e ?phase ~n f] runs [f] over [0 .. n-1] on the pool and merges
    by index (see {!Pool.map}); counts [n] jobs in the telemetry and,
    when [phase] is given, accrues the call's wall time to it. *)
val map : t -> ?phase:string -> n:int -> (int -> 'a) -> 'a array

(** [timed e ~phase f] runs [f ()], accruing its wall-clock time to
    [phase] (times with the same phase name accumulate). *)
val timed : t -> phase:string -> (unit -> 'a) -> 'a

(** [dc_op e ?options netlist] is
    [Lattice_spice.Dcop.solve_diag ?options netlist] memoized under the
    content key {!Key.dc_op}. The returned solution vector is a private
    copy (callers may keep or mutate it). Hits replay the original
    diagnostics verbatim. Safe to call from inside [map] jobs on any
    domain. *)
val dc_op :
  t ->
  ?options:Lattice_spice.Dcop.options ->
  Lattice_spice.Netlist.t ->
  (Lattice_numerics.Vec.t * Lattice_spice.Dcop.diagnostics, Lattice_spice.Dcop.failure) result

type telemetry = {
  domains : int;
  jobs : int;  (** jobs dispatched through {!map} *)
  dc_solves : int;  (** actual (uncached) DC solver invocations *)
  cache : Cache.stats;  (** DC-result cache counters *)
  newton_total : int;  (** Newton iterations spent in uncached solves *)
  phases : (string * float) list;  (** wall seconds per phase, first-use order *)
}

val telemetry : t -> telemetry

(** [reset_telemetry e] zeroes the job/solve/Newton counters, the phase
    timers and the cache's hit/miss/eviction counters. The cache
    {e contents} are untouched: entries stay resident, so a lookup that
    hit before the reset still hits after it (with [telemetry] then
    reporting that hit against fresh counters, and [dc_solves] staying
    at 0). Use {!Cache.clear} semantics via a fresh engine when the
    entries themselves must go. *)
val reset_telemetry : t -> unit

(** One-line rendering for CLI output, e.g.
    ["engine: 4 domains | 500 jobs | 3896 dc solves, cache 104/4000 hits
      (2.6%), 0 evictions | 18234 newton iters | monte-carlo 1.23s"]. *)
val summary : t -> string
