(** Parallel batch-simulation engine, hardened for faulty jobs.

    Every heavy workload in this reproduction is a fan-out of
    independent circuit/device simulations: Monte-Carlo dies, fault
    -campaign samples, I-V sweep points, exhaustive-search circuit
    validations. The engine runs those jobs on a {!Pool} of OCaml 5
    Domains, memoizes repeated DC operating points in a
    content-addressed {!Cache} (optionally backed by a crash-safe
    on-disk {!Store}), and keeps lightweight telemetry (jobs, cache and
    store traffic, Newton iterations, retries/timeouts/failures, wall
    time per phase).

    {2 Fault tolerance}

    {!run_jobs} is the resilient dispatch path: every job runs under
    its own {!Cancel} deadline token, exceptions are contained per job
    ({!Pool.outcome}), and jobs classified as failed (or, with a
    deadline policy, timed out, or [Done] values the caller deems
    retryable) are re-dispatched up to [policy.attempts] times with the
    deadline budget growing by [policy.backoff] each attempt. No
    exception from a job ever escapes [run_jobs].

    {2 Determinism contract}

    [map]/[run_jobs] merge results by job index and jobs must be pure
    in their index, so a 4-domain run is bit-identical to the 1-domain
    (serial) run. Randomized workloads get per-job RNG streams from
    {!sample_rng} (seed-splitting by hash of [seed, index]) instead of
    one sequential stream. Cached DC results replay the original solver
    output — solution vector {e and} diagnostics, including Newton
    iteration counts — so accounting (e.g. a fault campaign's
    per-sample Newton budget) is identical on warm and cold caches,
    and (via the persistent store) across processes. *)

type t

(** [create ?domains ?cache_capacity ?store_dir ()] — [domains]
    defaults to [FTL_DOMAINS] when set, else
    [Domain.recommended_domain_count ()]; [cache_capacity] (DC-result
    entries, FIFO eviction) defaults to 4096. One domain is the
    degenerate serial engine.

    [store_dir] roots the crash-safe persistent DC-result store
    ({!Store}): it defaults to the [FTL_CACHE_DIR] environment variable
    when that is set non-empty, and passing [Some ""] explicitly
    disables the store even then. With a store, in-memory misses fall
    back to disk and fresh results are spilled through, so a second
    process re-running an identical campaign starts warm. *)
val create : ?domains:int -> ?cache_capacity:int -> ?store_dir:string -> unit -> t

val domains : t -> int

val store_dir : t -> string option
(** The persistent store's root directory, when one is wired. *)

(** [sample_rng ~seed ~index] is the RNG stream of sample [index]:
    seeded by a hash of [(seed, index)], so the stream is a function of
    the pair alone — sample [k] draws the same perturbations whether or
    not samples [0 .. k-1] ran, and in whatever order the pool
    scheduled them. *)
val sample_rng : seed:int -> index:int -> Random.State.t

(** [map e ?phase ~n f] runs [f] over [0 .. n-1] on the pool and merges
    by index (see {!Pool.map}); counts [n] jobs in the telemetry and,
    when [phase] is given, accrues the call's wall time to it.
    Fail-fast: the first job exception aborts the batch and re-raises.
    Prefer {!run_jobs} where faulty jobs must not sink the batch. *)
val map : t -> ?phase:string -> n:int -> (int -> 'a) -> 'a array

(** Retry/deadline policy for {!run_jobs}. [deadline_s] is the per-job
    wall-clock budget of the {e first} attempt ([None]: no per-job
    deadline); [attempts] the total number of tries per job (default 1
    = no retries); [backoff] the factor (default 2.0) by which the
    deadline budget grows each attempt — retrying a timed-out solve
    under the same budget would just time out again. *)
type job_policy = {
  deadline_s : float option;
  attempts : int;
  backoff : float;
}

val default_policy : job_policy
(** [{ deadline_s = None; attempts = 1; backoff = 2.0 }] *)

(** [run_jobs e ?policy ?cancel ?phase ?retryable ~n f] — fault
    -isolated, retrying dispatch of [f] over [0 .. n-1].

    Each job invocation receives its [attempt] number (0-based) and a
    [cancel] token combining the batch token with the per-attempt
    deadline from [policy]; the job must thread that token into its
    solver calls ({!dc_op}'s [?cancel], [Dcop.solve_diag], …) for
    deadlines to bite. Outcomes are classified per job ({!Pool.outcome})
    and jobs are re-dispatched — [Failed] always, [Timed_out] when a
    per-job deadline policy is set, [Done v] when [retryable v] (e.g. a
    non-convergent sample worth a bigger Newton budget) — until they
    settle or [policy.attempts] is exhausted. The batch [cancel] token
    stops everything: remaining jobs finish as [Cancelled].

    Telemetry: every dispatched attempt counts into [jobs]; each
    re-dispatch counts into [retries]; [timeouts]/[job_failures] count
    {e final} outcomes only. *)
val run_jobs :
  t ->
  ?policy:job_policy ->
  ?cancel:Cancel.t ->
  ?phase:string ->
  ?retryable:('a -> bool) ->
  n:int ->
  (attempt:int -> cancel:Cancel.t -> int -> 'a) ->
  'a Pool.outcome array

(** [timed e ~phase f] runs [f ()], accruing its wall-clock time to
    [phase] (times with the same phase name accumulate). *)
val timed : t -> phase:string -> (unit -> 'a) -> 'a

(** [dc_op e ?options ?cancel netlist] is
    [Lattice_spice.Dcop.solve_diag ?options netlist] memoized under the
    content key {!Key.dc_op}. The returned solution vector is a private
    copy (callers may keep or mutate it). Hits replay the original
    diagnostics verbatim — from memory or from the persistent store.
    [cancel] is threaded into the solver; a cancelled solve raises
    {!Cancel.Cancelled} and caches nothing. Safe to call from inside
    [map]/[run_jobs] jobs on any domain. *)
val dc_op :
  t ->
  ?options:Lattice_spice.Dcop.options ->
  ?cancel:Cancel.t ->
  Lattice_spice.Netlist.t ->
  (Lattice_numerics.Vec.t * Lattice_spice.Dcop.diagnostics, Lattice_spice.Dcop.failure) result

type telemetry = {
  domains : int;
  jobs : int;  (** job attempts dispatched through {!map}/{!run_jobs} *)
  dc_solves : int;  (** actual (uncached) DC solver invocations *)
  cache : Cache.stats;  (** DC-result cache counters *)
  store : Store.stats option;  (** persistent-store counters, when wired *)
  newton_total : int;  (** Newton iterations spent in uncached solves *)
  retries : int;  (** job re-dispatches by {!run_jobs} *)
  timeouts : int;  (** jobs whose {e final} outcome was [Timed_out] *)
  job_failures : int;  (** jobs whose {e final} outcome was [Failed] *)
  phases : (string * float) list;  (** wall seconds per phase, first-use order *)
}

val telemetry : t -> telemetry

(** [publish_gauges e] snapshots {!telemetry} into the process-wide
    {!Lattice_obs.Metrics} registry as [engine.live.*] gauges (jobs,
    dc_solves, newton_total, retries, timeouts, job_failures,
    cache_hits/misses/evictions/size, and — when a store is wired —
    store_hits/misses/writes/corrupt/errors). Unlike the monotonic
    [engine.*] counters, which accumulate across every engine the
    process ever created, these reflect {e this} instance's current
    telemetry — what a long-running daemon's stats endpoint and
    [--metrics] export should report as live serving health. No-op
    while metrics are disabled. *)
val publish_gauges : t -> unit

(** [reset_telemetry e] zeroes the job/solve/Newton counters, the
    retry/timeout/failure counters, the phase timers, the cache's
    hit/miss/eviction counters and the persistent store's counters.
    The cache and store {e contents} are untouched: entries stay
    resident, so a lookup that hit before the reset still hits after it
    (with [telemetry] then reporting that hit against fresh counters,
    and [dc_solves] staying at 0). Use {!Cache.clear} semantics via a
    fresh engine when the entries themselves must go. The
    [engine.live.*] gauges are republished (zeroed) in the same call. *)
val reset_telemetry : t -> unit

(** One-line rendering for CLI output, e.g.
    ["engine: 4 domains | 500 jobs | 3896 dc solves, cache 104/4000 hits
      (2.6%), 0 evictions | store 0/104 hits, 3896 writes, 0 corrupt |
      18234 newton iters | 3 retries, 1 timeouts, 2 failures |
      monte-carlo 1.23s"] (store and fault segments appear only when
    a store is wired / faults occurred). *)
val summary : t -> string
