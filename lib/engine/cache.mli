(** Bounded content-addressed result cache with hit/miss/eviction
    counters and an optional persistent second tier.

    Keys are content digests (see {!Key}); values are whatever the call
    site memoizes — DC operating points, sweep results. The cache is a
    FIFO-bounded hash table protected by a mutex, so pool workers on
    different domains can share it. Lookups never block on a compute:
    two domains missing the same key concurrently both compute (a
    benign duplicate) and the first [add] wins, keeping cached values
    stable for the cache's lifetime.

    {2 Persistent tier}

    [create ?fallback ?spill] wires a second tier (in practice
    {!Store}): on a memory miss, [find] consults [fallback] {e outside}
    the lock and, on a hit, promotes the value into memory — without
    re-spilling, since it already lives in the second tier. [add]
    calls [spill] only for keys it actually inserted (first write
    wins), so concurrent duplicate computes spill once. Both hooks run
    unlocked and must be domain-safe themselves.

    When {!Lattice_obs} is enabled, lookups feed the
    ["engine.cache.lookup.seconds"] histogram and the process-wide
    ["engine.cache.hits"]/["engine.cache.misses"]/["engine.cache.evictions"]
    counters (aggregated over every cache instance; {!stats} stays
    per-instance), and each eviction emits a trace instant. *)

type 'a t

type stats = {
  hits : int;
      (** [find] calls served — from memory or promoted from [fallback] *)
  misses : int;  (** [find] calls that found nothing in either tier *)
  evictions : int;  (** entries dropped to respect [capacity] *)
  size : int;  (** current entry count *)
  capacity : int;
}

(** [create ?capacity ?fallback ?spill ()] — capacity defaults to 4096
    entries; eviction is FIFO (oldest insertion first) and evicted
    entries survive in the [fallback] tier if one is wired. Raises
    [Invalid_argument] when [capacity < 1]. *)
val create :
  ?capacity:int ->
  ?fallback:(string -> 'a option) ->
  ?spill:(string -> 'a -> unit) ->
  unit ->
  'a t

val find : 'a t -> key:string -> 'a option

(** [add t ~key v] inserts unless the key is already present (first
    write wins), evicting the oldest entry when full; freshly inserted
    entries are handed to [spill]. *)
val add : 'a t -> key:string -> 'a -> unit

(** [find_or_compute t ~key f] — [f] runs outside the lock on a miss. *)
val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a

val stats : 'a t -> stats

(** [clear t] drops every entry and zeroes the counters (the persistent
    tier, if any, is untouched). *)
val clear : 'a t -> unit

(** [reset_stats t] zeroes the counters, keeping the entries. *)
val reset_stats : 'a t -> unit
