module Sp = Lattice_spice

let add_int b i = Buffer.add_int64_le b (Int64.of_int i)
let add_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_string b s =
  add_int b (String.length s);
  Buffer.add_string b s

let engine_tag = function Sp.Dcop.Auto -> 'A' | Sp.Dcop.Dense -> 'D' | Sp.Dcop.Sparse -> 'S'

let add_dc_options b (o : Sp.Dcop.options) =
  add_int b o.Sp.Dcop.max_iterations;
  add_float b o.Sp.Dcop.abstol;
  add_float b o.Sp.Dcop.reltol;
  add_float b o.Sp.Dcop.gmin_final;
  add_int b (List.length o.Sp.Dcop.gmin_steps);
  List.iter (add_float b) o.Sp.Dcop.gmin_steps;
  add_int b o.Sp.Dcop.source_steps;
  add_float b o.Sp.Dcop.damping;
  Buffer.add_char b (engine_tag o.Sp.Dcop.engine);
  (* conv_trace changes the diagnostics payload, and cache hits replay
     diagnostics verbatim — traced and untraced solves must not alias *)
  add_int b (Bool.to_int o.Sp.Dcop.conv_trace)

let dc_options_digest options =
  let b = Buffer.create 128 in
  add_dc_options b options;
  Digest.to_hex (Digest.string (Buffer.contents b))

let dc_op ?(options = Sp.Dcop.default_options) ?(time = 0.0) netlist =
  let b = Buffer.create 192 in
  add_string b "dcop-v1";
  add_dc_options b options;
  add_float b time;
  add_string b (Sp.Netlist.structural_digest netlist);
  Digest.to_hex (Digest.string (Buffer.contents b))

let custom parts =
  let b = Buffer.create 128 in
  List.iter
    (function
      | `S s -> Buffer.add_char b 's'; add_string b s
      | `F f -> Buffer.add_char b 'f'; add_float b f
      | `I i -> Buffer.add_char b 'i'; add_int b i)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))
