include Lattice_spice.Cancel

let of_deadline_s ?parent d =
  match d with
  | None -> ( match parent with Some p -> p | None -> none)
  | Some seconds -> with_deadline ?parent ~seconds ()
