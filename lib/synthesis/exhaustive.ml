module Tt = Lattice_boolfn.Truthtable
module Grid = Lattice_core.Grid

type alphabet = Literals_only | Literals_and_constants

let entries_of_alphabet alphabet nvars =
  let lits =
    List.concat_map (fun v -> [ Grid.Lit (v, true); Grid.Lit (v, false) ]) (List.init nvars Fun.id)
  in
  match alphabet with
  | Literals_only -> Array.of_list lits
  | Literals_and_constants -> Array.of_list (lits @ [ Grid.Const false; Grid.Const true ])

(* value mask of an entry: bit [a] set when the entry evaluates to 1 under
   assignment [a] *)
let value_mask nvars entry =
  let limit = 1 lsl nvars in
  let acc = ref 0 in
  for a = 0 to limit - 1 do
    let v =
      match entry with
      | Grid.Const b -> b
      | Grid.Lit (var, polarity) -> Bool.equal (a land (1 lsl var) <> 0) polarity
    in
    if v then acc := !acc lor (1 lsl a)
  done;
  !acc

(* Shared search skeleton over per-site candidate entries; [on_hit] receives
   the per-site candidate table and the choice indices, and returns [true]
   to stop the search. *)
let search ~rows ~cols ~alphabet ~pins target on_hit =
  let nvars = Tt.nvars target in
  if nvars > 6 then invalid_arg "Exhaustive: too many variables (max 6)";
  let nsites = rows * cols in
  if nsites > 20 then invalid_arg "Exhaustive: lattice too large (max 20 sites)";
  let alpha = entries_of_alphabet alphabet nvars in
  (* per-site candidate entries: pinned sites get exactly their entry *)
  let site_entries =
    Array.init nsites (fun site ->
        match List.assoc_opt site pins with
        | Some entry -> [| entry |]
        | None -> alpha)
  in
  List.iter
    (fun (site, _) ->
      if site < 0 || site >= nsites then invalid_arg "Exhaustive: pin out of range")
    pins;
  let site_masks = Array.map (Array.map (value_mask nvars)) site_entries in
  let table = Lattice_core.Connectivity.table_of_patterns ~rows ~cols in
  let nassign = 1 lsl nvars in
  let target_bits = Array.init nassign (Tt.eval target) in
  let patt = Array.make nassign 0 in
  let digits = Array.make nsites 0 in
  let exception Stop in
  let rec go site =
    if site = nsites then begin
      let ok = ref true in
      let a = ref 0 in
      while !ok && !a < nassign do
        if Bool.equal (Bytes.get table patt.(!a) <> '\000') target_bits.(!a) then incr a
        else ok := false
      done;
      if !ok && on_hit site_entries digits then raise Stop
    end
    else begin
      let bit = 1 lsl site in
      let masks = site_masks.(site) in
      for d = 0 to Array.length masks - 1 do
        digits.(site) <- d;
        let m = masks.(d) in
        for a = 0 to nassign - 1 do
          if m land (1 lsl a) <> 0 then patt.(a) <- patt.(a) lor bit
        done;
        go (site + 1);
        for a = 0 to nassign - 1 do
          patt.(a) <- patt.(a) land lnot bit
        done
      done
    end
  in
  Lattice_obs.Trace.with_span ~cat:"synthesis" "exhaustive-search" (fun () ->
      try go 0 with Stop -> ());
  site_entries

let grid_of_digits ~rows ~cols site_entries digits =
  Grid.create rows cols (Array.mapi (fun site d -> site_entries.(site).(d)) digits)

let find_with_pins ~rows ~cols ?(alphabet = Literals_only) ~pins target =
  let result = ref None in
  let (_ : Grid.entry array array) =
    search ~rows ~cols ~alphabet ~pins target (fun site_entries digits ->
        result := Some (grid_of_digits ~rows ~cols site_entries digits);
        true)
  in
  !result

let find ~rows ~cols ?alphabet target = find_with_pins ~rows ~cols ?alphabet ~pins:[] target

let count_solutions ~rows ~cols ?(alphabet = Literals_only) ?limit target =
  let count = ref 0 in
  let (_ : Grid.entry array array) =
    search ~rows ~cols ~alphabet ~pins:[] target (fun _ _ ->
        incr count;
        match limit with Some l -> !count >= l | None -> false)
  in
  !count

let minimal ?(alphabet = Literals_only) ?(max_area = 9) target =
  let candidates =
    List.concat_map
      (fun rows -> List.map (fun cols -> (rows, cols)) (List.init max_area (fun i -> i + 1)))
      (List.init max_area (fun i -> i + 1))
    |> List.filter (fun (r, c) -> r * c <= max_area)
    |> List.sort (fun (r1, c1) (r2, c2) ->
           match Int.compare (r1 * c1) (r2 * c2) with 0 -> Int.compare r1 r2 | d -> d)
  in
  let rec try_dims = function
    | [] -> None
    | (rows, cols) :: rest -> (
      match find ~rows ~cols ~alphabet target with
      | Some grid -> Some (grid, rows, cols)
      | None -> try_dims rest)
  in
  try_dims candidates

module Sp = Lattice_spice
module Engine = Lattice_engine.Engine

let validate_circuit ?engine ?(config = Sp.Lattice_circuit.default_config)
    ?(dc = Sp.Dcop.default_options) grid ~target =
  let nvars = Tt.nvars target in
  if nvars > 5 then invalid_arg "Exhaustive.validate_circuit: too many inputs";
  let vdd = config.Sp.Lattice_circuit.vdd in
  let states = 1 lsl nvars in
  let state_ok m =
    let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
    let lc = Sp.Lattice_circuit.build ~config grid ~stimulus in
    let solved =
      match engine with
      | Some e -> Engine.dc_op e ~options:dc lc.Sp.Lattice_circuit.netlist
      | None -> Sp.Dcop.solve_diag ~options:dc lc.Sp.Lattice_circuit.netlist
    in
    match solved with
    | Error _ -> false
    | Ok (x, _) ->
      let v =
        Sp.Mna.voltage x
          (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist lc.Sp.Lattice_circuit.output_node)
      in
      (* pull-down lattice: the circuit output is the complement of the
         lattice function *)
      Bool.equal (v > vdd /. 2.0) (not (Tt.eval target m))
  in
  let oks =
    Lattice_obs.Trace.with_span ~cat:"synthesis" "circuit-validate" (fun () ->
        match engine with
        | Some e -> Engine.map e ~phase:"circuit-validate" ~n:states state_ok
        | None -> Array.init states state_ok)
  in
  Array.for_all Fun.id oks

let find_circuit_verified ~rows ~cols ?(alphabet = Literals_only) ?engine ?config ?dc
    ?(pins = []) target =
  let result = ref None in
  let (_ : Grid.entry array array) =
    search ~rows ~cols ~alphabet ~pins target (fun site_entries digits ->
        let grid = grid_of_digits ~rows ~cols site_entries digits in
        if validate_circuit ?engine ?config ?dc grid ~target then begin
          result := Some grid;
          true
        end
        else false)
  in
  !result
