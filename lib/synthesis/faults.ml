module Grid = Lattice_core.Grid
module Conn = Lattice_core.Connectivity

type kind = Stuck_off | Stuck_on

type fault = { row : int; col : int; kind : kind }

let all_faults grid =
  List.concat_map
    (fun row ->
      List.concat_map
        (fun col -> [ { row; col; kind = Stuck_off }; { row; col; kind = Stuck_on } ])
        (List.init grid.Grid.cols Fun.id))
    (List.init grid.Grid.rows Fun.id)

let inject grid fault =
  let entries = Array.copy grid.Grid.entries in
  let site = (fault.row * grid.Grid.cols) + fault.col in
  if site < 0 || site >= Array.length entries then invalid_arg "Faults.inject: site out of range";
  entries.(site) <- (match fault.kind with Stuck_off -> Grid.Const false | Stuck_on -> Grid.Const true);
  Grid.create grid.Grid.rows grid.Grid.cols entries

let detecting_vectors grid fault =
  let faulty = inject grid fault in
  let nvars = Int.max (Grid.nvars grid) 1 in
  let out = ref [] in
  for m = (1 lsl nvars) - 1 downto 0 do
    if not (Bool.equal (Conn.eval grid m) (Conn.eval faulty m)) then out := m :: !out
  done;
  !out

let is_detectable grid fault = detecting_vectors grid fault <> []

let detects grid fault vector =
  let faulty = inject grid fault in
  not (Bool.equal (Conn.eval grid vector) (Conn.eval faulty vector))

type analysis = {
  total : int;
  detectable : int;
  undetectable : fault list;
  test_set : int list;
}

(* greedy covering: repeatedly pick the vector detecting the most
   still-uncovered faults *)
let greedy_test_set detections =
  let remaining = ref (List.filter (fun (_, vs) -> vs <> []) detections) in
  let chosen = ref [] in
  while !remaining <> [] do
    let counts = Hashtbl.create 64 in
    List.iter
      (fun (_, vs) ->
        List.iter
          (fun v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
          vs)
      !remaining;
    let best_v, _ =
      Hashtbl.fold (fun v c (bv, bc) -> if c > bc || (c = bc && v < bv) then (v, c) else (bv, bc))
        counts (max_int, 0)
    in
    chosen := best_v :: !chosen;
    remaining := List.filter (fun (_, vs) -> not (List.mem best_v vs)) !remaining
  done;
  List.sort Int.compare !chosen

let analyze grid =
  let faults = all_faults grid in
  let detections = List.map (fun f -> (f, detecting_vectors grid f)) faults in
  let undetectable = List.filter_map (fun (f, vs) -> if vs = [] then Some f else None) detections in
  {
    total = List.length faults;
    detectable = List.length faults - List.length undetectable;
    undetectable;
    test_set = greedy_test_set detections;
  }

let coverage grid ~vectors =
  let faults = all_faults grid in
  let detectable = List.filter (fun f -> is_detectable grid f) faults in
  match detectable with
  | [] -> 1.0
  | _ ->
    let caught =
      List.filter
        (fun f ->
          let vs = detecting_vectors grid f in
          List.exists (fun v -> List.mem v vs) vectors)
        detectable
    in
    float_of_int (List.length caught) /. float_of_int (List.length detectable)

let kind_name = function Stuck_off -> "stuck-off" | Stuck_on -> "stuck-on"

let fault_name f = Printf.sprintf "(%d,%d) %s" f.row f.col (kind_name f.kind)
