(** Exhaustive search for minimum-size lattices of small functions.

    The paper's Fig 3b shows XOR3 on the minimum-size 3 x 3 lattice, found
    by the synthesis algorithms of its references [3], [4], [13]. This
    module provides the brute-force counterpart: enumerate every assignment
    of literals (optionally constants) to the sites of a candidate grid and
    keep the first one whose lattice function matches the target.

    Feasible for [nvars <= ~4] and [rows * cols <= ~12]: connectivity over
    all [2^(rows*cols)] conduction patterns is precomputed once, and each
    candidate costs one table lookup per input assignment with early exit. *)

type alphabet = Literals_only | Literals_and_constants

(** [find ~rows ~cols ?alphabet target] is the first [rows x cols] grid (in
    odometer order over sites) realizing [target], or [None]. Default
    alphabet: [Literals_only]. *)
val find :
  rows:int -> cols:int -> ?alphabet:alphabet -> Lattice_boolfn.Truthtable.t -> Lattice_core.Grid.t option

(** [find_with_pins ~rows ~cols ?alphabet ~pins target] additionally fixes
    the entries of some sites (row-major indices) — defect-aware mapping: a
    stuck-OFF switch is a pinned [Const false], a stuck-ON one a pinned
    [Const true], and the search works around them. *)
val find_with_pins :
  rows:int ->
  cols:int ->
  ?alphabet:alphabet ->
  pins:(int * Lattice_core.Grid.entry) list ->
  Lattice_boolfn.Truthtable.t ->
  Lattice_core.Grid.t option

(** [count_solutions ~rows ~cols ?alphabet ?limit target] counts realizing
    grids, stopping at [limit] if given. *)
val count_solutions :
  rows:int ->
  cols:int ->
  ?alphabet:alphabet ->
  ?limit:int ->
  Lattice_boolfn.Truthtable.t ->
  int

(** [minimal ?alphabet ?max_area target] tries candidate dimensions in
    order of increasing area (ties: fewer rows first) up to [max_area]
    (default 9) and returns the first hit with its dimensions. *)
val minimal :
  ?alphabet:alphabet -> ?max_area:int -> Lattice_boolfn.Truthtable.t -> (Lattice_core.Grid.t * int * int) option

(** [validate_circuit ?engine ?config ?dc grid ~target] checks the
    switch-level realization of [grid]: the nominal lattice circuit is
    built and DC-solved at every input state, and the output must be
    boolean-correct (the complement of [target], since the lattice is a
    pull-down network) against the [vdd/2] threshold. Convergence failure
    at any state counts as invalid. Requires [nvars <= 5].

    With [engine], the [2^nvars] input states fan out over the engine's
    Domain pool (phase ["circuit-validate"]) and the DC solves go through
    its content-addressed cache — repeated validations of the same grid
    are cache hits. The verdict is identical to the serial check. *)
val validate_circuit :
  ?engine:Lattice_engine.Engine.t ->
  ?config:Lattice_spice.Lattice_circuit.config ->
  ?dc:Lattice_spice.Dcop.options ->
  Lattice_core.Grid.t ->
  target:Lattice_boolfn.Truthtable.t ->
  bool

(** [find_circuit_verified ~rows ~cols ?alphabet ?engine ?config ?dc ?pins
    target] is {!find_with_pins} with a circuit back-end check: the first
    grid (in odometer order) that both matches [target] logically {e and}
    passes {!validate_circuit}. Logically-correct candidates that fail at
    circuit level are skipped and the search continues. *)
val find_circuit_verified :
  rows:int ->
  cols:int ->
  ?alphabet:alphabet ->
  ?engine:Lattice_engine.Engine.t ->
  ?config:Lattice_spice.Lattice_circuit.config ->
  ?dc:Lattice_spice.Dcop.options ->
  ?pins:(int * Lattice_core.Grid.entry) list ->
  Lattice_boolfn.Truthtable.t ->
  Lattice_core.Grid.t option
