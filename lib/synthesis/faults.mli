(** Fault analysis for switching lattices.

    The NANOxCOMP project the paper belongs to covers "logic synthesis and
    testing techniques for switching nano-crossbar arrays" (paper reference
    [1]); emerging-device lattices are defect-prone, so a realization flow
    needs a fault model and test generation. The natural fault model for a
    four-terminal switch is:

    - {e stuck-OFF}: the switch never conducts (open defect) — its site
      behaves as constant 0;
    - {e stuck-ON}: the switch always conducts (short defect) — constant 1.

    A fault is {e detectable} when the faulty lattice function differs from
    the fault-free one; a test vector for it is an input assignment on
    which they differ. [minimal_test_set] greedily covers all detectable
    faults with few vectors (single-fault assumption, as usual). *)

type kind = Stuck_off | Stuck_on

type fault = { row : int; col : int; kind : kind }

(** [all_faults grid] is every single fault, 2 per site. *)
val all_faults : Lattice_core.Grid.t -> fault list

(** [inject grid fault] is the faulty lattice (the site replaced by a
    constant). *)
val inject : Lattice_core.Grid.t -> fault -> Lattice_core.Grid.t

(** [detecting_vectors grid fault] lists the assignments (over
    [Grid.nvars grid] inputs) on which the faulty and fault-free lattices
    disagree; empty means undetectable (logically masked). *)
val detecting_vectors : Lattice_core.Grid.t -> fault -> int list

(** [is_detectable grid fault] is [detecting_vectors grid fault <> []]. *)
val is_detectable : Lattice_core.Grid.t -> fault -> bool

(** [detects grid fault vector] checks one vector against one fault without
    materializing the full detecting-vector list. *)
val detects : Lattice_core.Grid.t -> fault -> int -> bool

type analysis = {
  total : int;
  detectable : int;
  undetectable : fault list;
  test_set : int list;  (** greedy-minimal vectors covering every detectable fault *)
}

(** [analyze grid] runs the full single-fault campaign. *)
val analyze : Lattice_core.Grid.t -> analysis

(** [coverage grid ~vectors] is the fraction of detectable faults caught by
    the given vectors (1.0 when [vectors] is a complete test set). *)
val coverage : Lattice_core.Grid.t -> vectors:int list -> float

val kind_name : kind -> string
val fault_name : fault -> string
