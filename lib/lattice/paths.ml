(* DFS over chordless paths that touch the top row only at the start and the
   bottom row only at the end. [adjcount.(c)] tracks how many path cells are
   adjacent to cell [c]; a step from the head [h] to [c] keeps the path
   chordless iff [adjcount.(c) = 1] (only [h]). *)

let check_dims rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Paths: dimensions must be >= 1"

let iter_irredundant ~rows ~cols f =
  check_dims rows cols;
  let n = rows * cols in
  let visited = Array.make n false in
  let adjcount = Array.make n 0 in
  let stack = Array.make n 0 in
  let bump i delta =
    let r = i / cols and c = i mod cols in
    if r > 0 then adjcount.(i - cols) <- adjcount.(i - cols) + delta;
    if r < rows - 1 then adjcount.(i + cols) <- adjcount.(i + cols) + delta;
    if c > 0 then adjcount.(i - 1) <- adjcount.(i - 1) + delta;
    if c < cols - 1 then adjcount.(i + 1) <- adjcount.(i + 1) + delta
  in
  let rec extend depth head =
    let r = head / cols and c = head mod cols in
    if r = rows - 1 then f (Array.sub stack 0 depth)
    else begin
      let try_step next =
        let nr = next / cols in
        if (not visited.(next)) && adjcount.(next) = 1 && nr > 0 then begin
          visited.(next) <- true;
          bump next 1;
          stack.(depth) <- next;
          extend (depth + 1) next;
          bump next (-1);
          visited.(next) <- false
        end
      in
      if r < rows - 1 then try_step (head + cols);
      if c > 0 then try_step (head - 1);
      if c < cols - 1 then try_step (head + 1);
      if r > 0 then try_step (head - cols)
    end
  in
  for start = 0 to cols - 1 do
    visited.(start) <- true;
    bump start 1;
    stack.(0) <- start;
    extend 1 start;
    bump start (-1);
    visited.(start) <- false
  done

let count_irredundant_enum ~rows ~cols =
  let count = ref 0 in
  iter_irredundant ~rows ~cols (fun _ -> incr count);
  !count

let count_irredundant_zdd ~rows ~cols =
  check_dims rows cols;
  Zdd.count (Zdd.of_lattice ~rows ~cols)

(* The ZDD's node-table setup dominates on small lattices: the bench
   measures enumeration *faster* up to 7x7 (enum/zdd wall ratio 0.32 at
   7x7) and slower from 8x8 on (2.8 at 8x8, and growing without bound —
   enumeration is exponential in the path count). Auto-select by the
   measured crossover; both backends are pinned equal at the boundary
   by the parity tests. *)
let crossover_dim = 8

let use_enum ~rows ~cols = rows < crossover_dim && cols < crossover_dim

let count_irredundant ~rows ~cols =
  check_dims rows cols;
  if use_enum ~rows ~cols then count_irredundant_enum ~rows ~cols
  else count_irredundant_zdd ~rows ~cols

let irredundant_paths ~rows ~cols =
  let acc = ref [] in
  iter_irredundant ~rows ~cols (fun p -> acc := Array.copy p :: !acc);
  List.rev !acc

let length_histogram_enum ~rows ~cols =
  let hist = Array.make ((rows * cols) + 1) 0 in
  iter_irredundant ~rows ~cols (fun p -> hist.(Array.length p) <- hist.(Array.length p) + 1);
  hist

let length_histogram_zdd ~rows ~cols =
  check_dims rows cols;
  Zdd.count_by_size (Zdd.of_lattice ~rows ~cols)

let length_histogram ~rows ~cols =
  check_dims rows cols;
  if use_enum ~rows ~cols then length_histogram_enum ~rows ~cols
  else length_histogram_zdd ~rows ~cols

(* Reference implementation straight from the definition. *)
let irredundant_sets_brute ~rows ~cols =
  check_dims rows cols;
  let n = rows * cols in
  let visited = Array.make n false in
  let sets = Hashtbl.create 256 in
  let current = ref [] in
  let record () =
    let set = List.sort_uniq Int.compare !current in
    Hashtbl.replace sets set ()
  in
  let rec dfs head =
    let r = head / cols and c = head mod cols in
    if r = rows - 1 then record ();
    (* keep extending: longer simple paths are also products pre-absorption *)
    let step next =
      if not visited.(next) then begin
        visited.(next) <- true;
        current := next :: !current;
        dfs next;
        current := List.tl !current;
        visited.(next) <- false
      end
    in
    if r > 0 then step (head - cols);
    if r < rows - 1 then step (head + cols);
    if c > 0 then step (head - 1);
    if c < cols - 1 then step (head + 1)
  in
  for start = 0 to cols - 1 do
    visited.(start) <- true;
    current := [ start ];
    dfs start;
    current := [];
    visited.(start) <- false
  done;
  let all = Hashtbl.fold (fun set () acc -> set :: acc) sets [] in
  let subset a b =
    (* both sorted *)
    let rec go a b =
      match (a, b) with
      | [], _ -> true
      | _, [] -> false
      | x :: a', y :: b' -> if x = y then go a' b' else if x > y then go a b' else false
    in
    go a b
  in
  let minimal s = not (List.exists (fun s' -> s' <> s && subset s' s) all) in
  List.sort compare (List.filter minimal all)
