(* Zero-suppressed BDD of the irredundant-path family of an m x n lattice,
   built by Knuth-style frontier-based search (simpath, adapted to
   *induced* paths) over the cells in row-major order.

   A product of the lattice function is irredundant exactly when its cell
   set is an induced (chordless) path whose endpoints are its unique
   top-row cell and its unique bottom-row cell (see Paths). The frontier
   sweep decides one cell per ZDD variable; the state it carries is the
   sliding window of the last [cols] decided cells — for each window slot
   whether the cell is in the set, and if so its connected-component id
   and its current induced degree — plus two owner tags recording which
   component holds the top-row cell and the bottom-row cell. Because the
   subgraph is induced, an edge between two chosen cells always counts:
   choosing a cell with both its up- and left-neighbour chosen in the
   same component closes a cycle (reject), and any degree pushed past 2
   rejects, so chordality never has to be checked explicitly.

   A cell leaves the frontier when its last undecided neighbour is
   decided; at that moment its degree is final and must be exactly 1 on
   the top/bottom rows and 2 in between, and if it was the last cell of
   its component the component must be the one owning both the top and
   the bottom cell (the owners are then marked closed — the path is
   complete and every later cell must stay out).

   States are interned per level (canonical component renumbering by
   first slot occurrence), giving an unreduced level graph; a bottom-up
   pass applies the ZDD reduction (zero-suppress nodes whose hi-child is
   bottom, share equal (var, lo, hi) triples). Counting is a single DP
   over the reduced nodes with overflow-checked native-int addition. *)

exception Overflow

type t = {
  n_vars : int;
  (* reduced nodes, children-before-parents; ids 0 = bottom, 1 = top,
     node [k] has id [k + 2] *)
  var : int array;
  lo : int array;
  hi : int array;
  root : int;
}

let n_vars t = t.n_vars
let node_count t = Array.length t.var

(* growable int buffer (the CI toolchain predates Stdlib.Dynarray) *)
module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let push b v =
    if b.len = Array.length b.a then b.a <- Array.append b.a (Array.make b.len 0);
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len
end

(* --- frontier state ----------------------------------------------------

   Bytes of length cols + 2: slot [c] describes the newest decided cell
   of column [c] ('\000' = not in the set, otherwise 1 + 3*comp + deg);
   byte [cols] / [cols+1] are the top/bottom owner ('\255' = unset,
   '\254' = closed, otherwise a component id). *)

let o_none = 255
let o_closed = 254

type scratch = {
  cols : int;
  rows : int;
  comp : int array;  (* per slot; -1 = absent *)
  deg : int array;
  remap : int array;  (* component renumbering table *)
  mutable top : int;  (* o_none / o_closed / comp id *)
  mutable bot : int;
}

let make_scratch ~rows ~cols =
  {
    cols;
    rows;
    comp = Array.make cols (-1);
    deg = Array.make cols 0;
    remap = Array.make (cols + 2) (-1);
    top = o_none;
    bot = o_none;
  }

let decode sc (state : Bytes.t) =
  for c = 0 to sc.cols - 1 do
    let b = Char.code (Bytes.unsafe_get state c) in
    if b = 0 then sc.comp.(c) <- -1
    else begin
      sc.comp.(c) <- (b - 1) / 3;
      sc.deg.(c) <- (b - 1) mod 3
    end
  done;
  sc.top <- Char.code (Bytes.get state sc.cols);
  sc.bot <- Char.code (Bytes.get state (sc.cols + 1))

(* canonical encoding: components renumbered by first slot occurrence *)
let encode sc =
  let out = Bytes.create (sc.cols + 2) in
  Array.fill sc.remap 0 (Array.length sc.remap) (-1);
  let next = ref 0 in
  let map k =
    if sc.remap.(k) < 0 then begin
      sc.remap.(k) <- !next;
      incr next
    end;
    sc.remap.(k)
  in
  for c = 0 to sc.cols - 1 do
    if sc.comp.(c) < 0 then Bytes.unsafe_set out c '\000'
    else Bytes.unsafe_set out c (Char.chr (1 + (3 * map sc.comp.(c)) + sc.deg.(c)))
  done;
  let owner k = if k = o_none || k = o_closed then k else map k in
  Bytes.set out sc.cols (Char.chr (owner sc.top));
  Bytes.set out (sc.cols + 1) (Char.chr (owner sc.bot));
  out

exception Reject

(* component [k] appears in some slot other than [skip]? *)
let comp_alive sc k ~skip =
  let alive = ref false in
  for c = 0 to sc.cols - 1 do
    if c <> skip && sc.comp.(c) = k then alive := true
  done;
  !alive

(* cell in slot [idx] leaves the frontier: its degree is final *)
let finalize sc ~row ~idx =
  let k = sc.comp.(idx) in
  if k >= 0 then begin
    let want = if row = 0 || row = sc.rows - 1 then 1 else 2 in
    if sc.deg.(idx) <> want then raise Reject;
    if not (comp_alive sc k ~skip:idx) then
      if sc.top = k && sc.bot = k then begin
        (* the path is complete; any other live component could never
           close (the endpoints are taken), so prune it right here *)
        for c = 0 to sc.cols - 1 do
          if c <> idx && sc.comp.(c) >= 0 then raise Reject
        done;
        sc.top <- o_closed;
        sc.bot <- o_closed
      end
      else raise Reject
  end;
  sc.comp.(idx) <- -1

(* decide cell (r, c); [sc] holds the decoded predecessor state and is
   mutated into the successor. Raises [Reject] for a dead branch. *)
let step sc ~r ~c ~chosen =
  let cols = sc.cols and rows = sc.rows in
  if chosen then begin
    (* a closed path admits no further cells; top/bottom cells are unique *)
    if sc.top = o_closed then raise Reject;
    if r = 0 && sc.top <> o_none then raise Reject;
    if r = rows - 1 && sc.bot <> o_none then raise Reject;
    let upc = r > 0 && sc.comp.(c) >= 0 in
    let leftc = c > 0 && sc.comp.(c - 1) >= 0 in
    if upc && leftc && sc.comp.(c) = sc.comp.(c - 1) then raise Reject (* cycle *);
    if upc then begin
      sc.deg.(c) <- sc.deg.(c) + 1;
      if sc.deg.(c) > 2 then raise Reject
    end;
    if leftc then begin
      sc.deg.(c - 1) <- sc.deg.(c - 1) + 1;
      if sc.deg.(c - 1) > 2 then raise Reject
    end;
    (* the up-neighbour leaves the frontier now (with its new degree);
       its component survives through the current cell, so no closure *)
    if r > 0 && upc then begin
      let want = if r - 1 = 0 then 1 else 2 in
      if sc.deg.(c) <> want then raise Reject
    end;
    let comp_new =
      if upc && leftc then begin
        (* merge: relabel the left component into the up component *)
        let ku = sc.comp.(c) and kl = sc.comp.(c - 1) in
        for i = 0 to cols - 1 do
          if sc.comp.(i) = kl then sc.comp.(i) <- ku
        done;
        if sc.top = kl then sc.top <- ku;
        if sc.bot = kl then sc.bot <- ku;
        ku
      end
      else if upc then sc.comp.(c)
      else if leftc then sc.comp.(c - 1)
      else cols (* fresh id; canonicalized by [encode] *)
    in
    sc.comp.(c) <- comp_new;
    sc.deg.(c) <- (if upc then 1 else 0) + if leftc then 1 else 0;
    if r = 0 then sc.top <- comp_new;
    if r = rows - 1 then sc.bot <- comp_new
  end
  else begin
    (* the up-neighbour leaves the frontier untouched *)
    if r > 0 then finalize sc ~row:(r - 1) ~idx:c else sc.comp.(c) <- -1
  end;
  (* in the bottom row the left neighbour (and, on the last cell, the
     cell itself) also has no undecided neighbours left *)
  if r = rows - 1 then begin
    if c > 0 then finalize sc ~row:r ~idx:(c - 1);
    if c = cols - 1 then finalize sc ~row:r ~idx:c
  end

(* --- construction ------------------------------------------------------ *)

let check_dims rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Zdd: dimensions must be >= 1"

(* rows = 1 degenerates to the singleton family { {c} : 0 <= c < cols } *)
let of_single_row cols =
  let var = Array.make cols 0 and lo = Array.make cols 0 and hi = Array.make cols 0 in
  (* node k+2 decides cell k: hi -> top, lo -> try the next cell *)
  for k = 0 to cols - 1 do
    var.(cols - 1 - k) <- k;
    lo.(cols - 1 - k) <- (if k = cols - 1 then 0 else cols - k);
    hi.(cols - 1 - k) <- 1
  done;
  { n_vars = cols; var; lo; hi; root = cols + 1 }

let of_lattice ~rows ~cols =
  check_dims rows cols;
  if rows = 1 then of_single_row cols
  else begin
    let n_vars = rows * cols in
    let sc = make_scratch ~rows ~cols in
    (* unreduced level graph: per level, lo/hi child references where
       0 / 1 are the terminals and k + 2 is node k of the next level *)
    let level_lo = Array.make n_vars [||] and level_hi = Array.make n_vars [||] in
    let start = Bytes.make (cols + 2) '\000' in
    Bytes.set start cols (Char.chr o_none);
    Bytes.set start (cols + 1) (Char.chr o_none);
    let states = ref [| start |] in
    for i = 0 to n_vars - 1 do
      let r = i / cols and c = i mod cols in
      let interned : (Bytes.t, int) Hashtbl.t = Hashtbl.create 1024 in
      let next_states = Buf.create () in
      let pool = ref [||] in
      let n_current = Array.length !states in
      let lo = Array.make n_current 0 and hi = Array.make n_current 0 in
      let child state chosen =
        decode sc state;
        match step sc ~r ~c ~chosen with
        | exception Reject -> 0
        | () ->
          if i = n_vars - 1 then if sc.top = o_closed then 1 else 0
          else begin
            let key = encode sc in
            match Hashtbl.find_opt interned key with
            | Some idx -> idx + 2
            | None ->
              let idx = next_states.Buf.len in
              Hashtbl.add interned key idx;
              if idx = Array.length !pool then
                pool :=
                  Array.append !pool (Array.make (Int.max 64 idx) start);
              !pool.(idx) <- key;
              Buf.push next_states idx;
              idx + 2
          end
      in
      Array.iteri
        (fun idx state ->
          lo.(idx) <- child state false;
          hi.(idx) <- child state true)
        !states;
      level_lo.(i) <- lo;
      level_hi.(i) <- hi;
      states := Array.sub !pool 0 next_states.Buf.len
    done;
    (* bottom-up ZDD reduction: zero-suppress hi = bottom, share nodes *)
    let unique : (int * int * int, int) Hashtbl.t = Hashtbl.create 1024 in
    let rvar = Buf.create () and rlo = Buf.create () and rhi = Buf.create () in
    let intern v l h =
      match Hashtbl.find_opt unique (v, l, h) with
      | Some id -> id
      | None ->
        let id = rvar.Buf.len + 2 in
        Buf.push rvar v;
        Buf.push rlo l;
        Buf.push rhi h;
        Hashtbl.add unique (v, l, h) id;
        id
    in
    let next_red = ref [||] in
    for i = n_vars - 1 downto 0 do
      let lo = level_lo.(i) and hi = level_hi.(i) in
      let m = Array.length lo in
      let red = Array.make m 0 in
      let resolve x = if x < 2 then x else !next_red.(x - 2) in
      for k = 0 to m - 1 do
        let l = resolve lo.(k) and h = resolve hi.(k) in
        red.(k) <- (if h = 0 then l else intern i l h)
      done;
      next_red := red
    done;
    {
      n_vars;
      var = Buf.to_array rvar;
      lo = Buf.to_array rlo;
      hi = Buf.to_array rhi;
      root = (if Array.length !next_red = 0 then 0 else !next_red.(0));
    }
  end

(* --- queries ----------------------------------------------------------- *)

let checked_add a b =
  let s = a + b in
  if s < 0 then raise Overflow;
  s

let count t =
  let m = Array.length t.var in
  let c = Array.make (m + 2) 0 in
  c.(1) <- 1;
  for id = 2 to m + 1 do
    c.(id) <- checked_add c.(t.lo.(id - 2)) c.(t.hi.(id - 2))
  done;
  c.(t.root)

let count_by_size t =
  let m = Array.length t.var in
  let width = t.n_vars + 1 in
  let zero = Array.make width 0 in
  let top = Array.make width 0 in
  top.(0) <- 1;
  let c = Array.make (m + 2) zero in
  c.(1) <- top;
  for id = 2 to m + 1 do
    let l = c.(t.lo.(id - 2)) and h = c.(t.hi.(id - 2)) in
    let v = Array.make width 0 in
    for k = 0 to width - 1 do
      v.(k) <- l.(k);
      if k > 0 then v.(k) <- checked_add v.(k) h.(k - 1)
    done;
    c.(id) <- v
  done;
  Array.copy c.(t.root)
