(** Zero-suppressed BDD of the irredundant-path family of an [m x n]
    lattice, built by Knuth-style frontier-based search over the cells in
    row-major order.

    The represented family is exactly the cell sets walked by
    {!Paths.iter_irredundant}: induced (chordless) top-to-bottom paths
    with a single top-row and a single bottom-row cell. The frontier
    state is the sliding window of the last [cols] decided cells
    (membership, component id, induced degree) plus which component owns
    the top and bottom endpoints; states are interned per level with
    canonical component renumbering, and a bottom-up pass applies the ZDD
    reduction (zero-suppression and node sharing). Node count is bounded
    by cells times distinct frontier states, so counting is cheap where
    explicit enumeration walks tens of millions of paths. *)

type t

(** Raised by {!count} / {!count_by_size} when a partial count exceeds
    [max_int] (native 63-bit arithmetic). *)
exception Overflow

(** [of_lattice ~rows ~cols] builds the ZDD over [rows * cols] variables
    (cell [r * cols + c] in row-major order). Raises [Invalid_argument]
    when a dimension is [< 1]. *)
val of_lattice : rows:int -> cols:int -> t

(** [count t] is the number of sets in the family — the Table I entry —
    by a single DP pass over the reduced nodes. *)
val count : t -> int

(** [count_by_size t] is the family histogram by set cardinality: entry
    [k] counts the sets with [k] cells, length [n_vars t + 1]. Memory is
    [O(node_count * n_vars)]. *)
val count_by_size : t -> int array

val n_vars : t -> int

(** [node_count t] is the number of reduced internal nodes (terminals
    excluded) — the certificate that the representation stays small. *)
val node_count : t -> int
