(** Enumeration of the irredundant products of a lattice function.

    A product of the [m x n] lattice function corresponds to a top-to-bottom
    path of switches; the function is the sum of the products that survive
    absorption (paper Fig 2c: redundant paths such as [x3 x2 x1 x4 x7] are
    eliminated by [x1 x4 x7]).

    A path's product is irredundant exactly when
    - the path touches row 0 only at its start and row [m-1] only at its
      end, and
    - the path is chordless (no two non-consecutive path cells are
      adjacent),
    because any violation exhibits a strictly smaller top-bottom path inside
    the product's cell set, and conversely a chordless path is the only
    top-bottom path inside its own cell set. [iter_irredundant] walks
    exactly these paths by DFS with both conditions as pruning rules;
    [irredundant_sets_brute] recomputes the products from the definition
    (all simple top-bottom paths, then absorption) as a cross-check. *)

(** [iter_irredundant ~rows ~cols f] calls [f] once per irredundant path
    with the path's cells in order from the top row to the bottom row
    (row-major site indices). The array passed to [f] is reused; copy it to
    retain it. *)
val iter_irredundant : rows:int -> cols:int -> (int array -> unit) -> unit

(** [count_irredundant ~rows ~cols] is the number of irredundant paths —
    the entry of paper Table I — without materializing them. Below the
    measured crossover ({!crossover_dim}: both dims < 8) it walks the
    DFS enumeration, which beats the ZDD's node-table setup on small
    lattices (bench: enum/zdd ratio 0.32 at 7x7); at and above it the
    count runs on the {!Zdd} of the family (polynomial-ish in the
    lattice size; the 9 x 9 entry that enumeration walks in seconds
    counts in milliseconds). Raises [Zdd.Overflow] past [max_int] on
    the ZDD side. [count_irredundant_enum]/[count_irredundant_zdd] pin
    a backend explicitly — the parity tests hold them equal at the
    crossover boundary, and the bench measures them against each
    other. *)
val count_irredundant : rows:int -> cols:int -> int

val count_irredundant_enum : rows:int -> cols:int -> int

val count_irredundant_zdd : rows:int -> cols:int -> int

val crossover_dim : int
(** Smallest dimension at which the ZDD backend wins (measured: 8). A
    lattice uses enumeration iff both dims are strictly below it. *)

(** [irredundant_paths ~rows ~cols] collects the paths of
    [iter_irredundant] as fresh arrays. *)
val irredundant_paths : rows:int -> cols:int -> int array list

(** [irredundant_sets_brute ~rows ~cols] enumerates every simple top-bottom
    path, collects the distinct cell sets, and removes the ones that
    strictly contain another. Exponential; intended for cross-checking small
    lattices (say up to 4 x 4). The sets are sorted cell lists. *)
val irredundant_sets_brute : rows:int -> cols:int -> int list list

(** [length_histogram ~rows ~cols] counts irredundant products by literal
    count: entry [k] is the number of products with [k] literals (index 0
    unused for [rows >= 1]). Quantifies the paper's remark that lattice
    functions contain "a wide range of functions with different number of
    products": e.g. the 3 x 3 function has 3 products of size 3, 4 of size
    4 and 2 of size 5. The histogram length is [rows * cols + 1].
    Backend auto-selected like {!count_irredundant};
    [length_histogram_enum]/[length_histogram_zdd] pin one. *)
val length_histogram : rows:int -> cols:int -> int array

val length_histogram_enum : rows:int -> cols:int -> int array

val length_histogram_zdd : rows:int -> cols:int -> int array
