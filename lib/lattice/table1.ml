(* Values as printed in paper Table I; rows indexed by m = 2..9, columns by
   n = 2..9. *)
let published =
  [|
    [| 2; 3; 4; 5; 6; 7; 8; 9 |];
    [| 4; 9; 16; 25; 36; 49; 64; 81 |];
    [| 6; 17; 36; 67; 118; 203; 344; 575 |];
    [| 10; 37; 94; 205; 436; 957; 2146; 4773 |];
    [| 16; 77; 236; 621; 1668; 4883; 14880; 44331 |];
    [| 26; 163; 602; 1905; 6562; 26317; 110838; 446595 |];
    [| 42; 343; 1528; 5835; 25686; 139231; 797048; 4288707 |];
    [| 68; 723; 3882; 17873; 100294; 723153; 5509834; 38930447 |];
  |]

(* Diagonal entries past the published table, computed by the ZDD counter
   and regression-pinned in the test suite. *)
let extended_diagonal =
  [ (10, 2_864_677_868); (11, 328_777_220_927); (12, 63_076_542_161_104) ]

let memo : (int * int, int) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let find_memo key =
  Mutex.lock memo_lock;
  let v = Hashtbl.find_opt memo key in
  Mutex.unlock memo_lock;
  v

(* The engine's Domain pool counts concurrently; the memo is shared, so
   reads and inserts take the lock while the (pure, idempotent) count
   itself runs outside it — two domains racing on the same fresh key at
   worst both compute it and agree. *)
let count ~rows ~cols =
  match find_memo (rows, cols) with
  | Some v -> v
  | None ->
    let v = Paths.count_irredundant ~rows ~cols in
    Mutex.lock memo_lock;
    Hashtbl.replace memo (rows, cols) v;
    Mutex.unlock memo_lock;
    v

let paper_value ~rows ~cols =
  if rows < 2 || rows > 9 || cols < 2 || cols > 9 then
    invalid_arg "Table1.paper_value: published range is 2..9";
  published.(rows - 2).(cols - 2)

let dimensions =
  List.concat_map (fun m -> List.map (fun n -> (m, n)) [ 2; 3; 4; 5; 6; 7; 8; 9 ]) [ 2; 3; 4; 5; 6; 7; 8; 9 ]

let render ?(max_dim = 9) ~compute () =
  (* computed tables may extend past the published 9 x 9, up to 12 x 12 *)
  let cap = if compute then 12 else 9 in
  let max_dim = Int.min cap (Int.max 2 max_dim) in
  let width = if max_dim <= 9 then 10 else 16 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "m/n ";
  for n = 2 to max_dim do
    Buffer.add_string buf (Printf.sprintf "%*d" width n)
  done;
  Buffer.add_char buf '\n';
  for m = 2 to max_dim do
    Buffer.add_string buf (Printf.sprintf "%-4d" m);
    for n = 2 to max_dim do
      let v = if compute then count ~rows:m ~cols:n else paper_value ~rows:m ~cols:n in
      Buffer.add_string buf (Printf.sprintf "%*d" width v)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
