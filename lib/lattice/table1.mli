(** Paper Table I: number of products of the [m x n] lattice function.

    The published values cover [2 <= m, n <= 9]; this module reproduces them
    by counting irredundant paths and also ships the printed values for
    regression checks. *)

(** [count ~rows ~cols] computes the entry on the {!Zdd} of the path
    family (the largest published entry, 9 x 9 with 38 930 447 products,
    counts in well under a second; 12 x 12 stays tractable). Results are
    memoized per dimension pair behind a mutex, so the engine's Domain
    pool can call this concurrently. *)
val count : rows:int -> cols:int -> int

(** [extended_diagonal] is the [(d, count)] list of diagonal entries past
    the published table ([10 <= d <= 12]), computed by the ZDD counter
    and regression-pinned by the test suite. *)
val extended_diagonal : (int * int) list

(** [paper_value ~rows ~cols] is the value printed in Table I, for
    [2 <= rows, cols <= 9]; raises [Invalid_argument] outside that range. *)
val paper_value : rows:int -> cols:int -> int

(** [dimensions] is the [(rows, cols)] list of every Table I cell in
    row-major order. *)
val dimensions : (int * int) list

(** [render ?max_dim ~compute ()] formats the table like the paper
    (rows [m], columns [n]); with [compute = true] values are recomputed
    and [max_dim] may extend to 12, otherwise the published values are
    printed (capped at 9). [max_dim] (default 9) trims the table for
    quick runs. *)
val render : ?max_dim:int -> compute:bool -> unit -> string
