type integrator = Backward_euler | Trapezoidal

module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics

let steps_counter = Metrics.counter "transient.steps"
let halvings_counter = Metrics.counter "transient.halvings"
let step_dt_hist = Metrics.histogram "transient.step.dt"

(* same registry instrument Dcop feeds for operating-point solves *)
let newton_iter_hist = Metrics.histogram "newton.iterations"

type options = { integrator : integrator; dc : Dcop.options; max_step_halvings : int }

let default_options =
  { integrator = Trapezoidal; dc = Dcop.default_options; max_step_halvings = 8 }

type step_stats = {
  dc_strategy : Dcop.strategy option;
  steps_taken : int;
  halvings : int;
  min_dt : float;
  halving_events : (float * float) list;
}

type result = {
  times : float array;
  node_names : string array;
  voltages : float array array;
  current_names : string array;
  currents : float array array;
  newton_iterations_total : int;
  stats : step_stats;
}

type failure = {
  at_time : float;
  dt : float;
  newton_iterations_total : int;
  stats : step_stats;
  dc_failure : Dcop.failure;
}

let lookup_series ~fn ~kind names series name =
  let rec find i =
    if i >= Array.length names then
      let recorded =
        if Array.length names = 0 then "none"
        else String.concat ", " (Array.to_list names)
      in
      invalid_arg
        (Printf.sprintf "Transient.%s: unknown %s %S (recorded: %s)" fn kind name recorded)
    else if names.(i) = name then series.(i)
    else find (i + 1)
  in
  find 0

let signal result name =
  lookup_series ~fn:"signal" ~kind:"signal" result.node_names result.voltages name

let branch_current result name =
  lookup_series ~fn:"branch_current" ~kind:"voltage source" result.current_names result.currents
    name

let cap_nodes netlist =
  let out = ref [] in
  List.iter
    (function
      | Netlist.Capacitor { n1; n2; _ } ->
        out := (Netlist.node_index n1, Netlist.node_index n2) :: !out
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> ())
    (Netlist.elements netlist);
  let pairs = Array.of_list (List.rev !out) in
  (Array.map fst pairs, Array.map snd pairs)

let cap_farads netlist =
  let out = ref [] in
  List.iter
    (function
      | Netlist.Capacitor { farads; _ } -> out := farads :: !out
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> ())
    (Netlist.elements netlist);
  Array.of_list (List.rev !out)

(* Sample times for [0, t_stop] in steps of [h]. When [t_stop] is an
   integer multiple of [h] within 1e-6 relative tolerance the old uniform
   grid is used (the final sample is pinned to exactly [t_stop]); otherwise
   the grid is padded with one final partial step so the simulated duration
   is exactly [t_stop] instead of silently rounding [t_stop /. h]. *)
let sample_times ~h ~t_stop =
  let nsteps_f = t_stop /. h in
  let k = Float.round nsteps_f in
  if k >= 1.0 && Float.abs (nsteps_f -. k) <= 1e-6 *. k then
    let n = int_of_float k in
    Array.init (n + 1) (fun i -> if i = n then t_stop else float_of_int i *. h)
  else begin
    let nfull = int_of_float (Float.floor nsteps_f) in
    Array.init (nfull + 2) (fun i -> if i = nfull + 1 then t_stop else float_of_int i *. h)
  end

exception Step_failed of float * float * Dcop.failure

let run_diag ?(options = default_options) ?(cancel = Cancel.none) netlist ~h ~t_stop ~record
    ?(record_currents = []) () =
  if h <= 0.0 || t_stop <= 0.0 then invalid_arg "Transient.run: h and t_stop must be positive";
  let record_nodes = Array.of_list (List.map (fun name -> Netlist.node netlist name) record) in
  let record_rows =
    Array.of_list
      (List.map
         (fun name ->
           match Netlist.vsource_index netlist name with
           | Some idx -> Netlist.vsource_row netlist idx
           | None -> invalid_arg ("Transient.run: unknown voltage source " ^ name))
         record_currents)
  in
  (* one compiled plan (or none, for the dense engine) reused by the DC
     solve and by every Newton solve of every step *)
  let plan = Dcop.plan_for options.dc netlist in
  let newton_total = ref 0 in
  let steps_taken = ref 0 in
  let halvings = ref 0 in
  let min_dt = ref h in
  (* (t, dt) of each step whose Newton solve failed and was halved,
     newest first *)
  let halving_log = ref [] in
  let stats dc_strategy =
    {
      dc_strategy;
      steps_taken = !steps_taken;
      halvings = !halvings;
      min_dt = !min_dt;
      halving_events = List.rev !halving_log;
    }
  in
  let tr_sp =
    if Trace.on () then
      Trace.begin_span ~cat:"spice"
        ~args:[ ("h", Printf.sprintf "%.6g" h); ("t_stop", Printf.sprintf "%.6g" t_stop) ]
        "transient"
    else Trace.null
  in
  let finish r =
    Trace.end_span tr_sp;
    r
  in
  match Dcop.solve_diag ~options:options.dc ?plan ~time:0.0 ~cancel netlist with
  | exception e ->
    Trace.end_span tr_sp;
    raise e
  | Error dc_failure ->
    finish
      (Error
         {
           at_time = 0.0;
           dt = h;
           newton_iterations_total =
             dc_failure.Dcop.attempts |> List.fold_left (fun a (_, k) -> a + k) 0;
           stats = stats None;
           dc_failure;
         })
  | Ok (x_op, op_diag) ->
    newton_total := op_diag.Dcop.newton_iterations;
    let dc_strategy = Some op_diag.Dcop.strategy in
    let x_cur = ref x_op in
    let x_next = ref (Array.make (Array.length x_op) 0.0) in
    let farads = cap_farads netlist in
    let cap_n1, cap_n2 = cap_nodes netlist in
    let ncaps = Array.length farads in
    let v_prev = Array.make ncaps 0.0 in
    let i_prev = Array.make ncaps 0.0 in
    for k = 0 to ncaps - 1 do
      let v1 = if cap_n1.(k) < 0 then 0.0 else !x_cur.(cap_n1.(k)) in
      let v2 = if cap_n2.(k) < 0 then 0.0 else !x_cur.(cap_n2.(k)) in
      v_prev.(k) <- v1 -. v2
    done;
    let comp = { Mna.geq = Array.make ncaps 0.0; ieq = Array.make ncaps 0.0 } in
    let caps_opt = Some comp in
    let first_step = ref true in
    (* advance from [t] by [dt]; recursive halving on Newton failure.
       [advance] wraps [advance_body] in a per-step span, so halved
       sub-steps appear nested under the step that spawned them. *)
    let rec advance t dt halvings_here =
      if Trace.on () then begin
        let sp =
          Trace.begin_span ~cat:"spice"
            ~args:[ ("t", Printf.sprintf "%.6g" t); ("dt", Printf.sprintf "%.6g" dt) ]
            "step"
        in
        match advance_body t dt halvings_here with
        | () -> Trace.end_span sp
        | exception e ->
          Trace.end_span sp;
          raise e
      end
      else advance_body t dt halvings_here
    and advance_body t dt halvings_here =
      (* step boundary: a blown deadline stops the run here rather than
         escalating into the halving machinery *)
      Cancel.check cancel;
      let use_trap = options.integrator = Trapezoidal && not !first_step in
      for k = 0 to ncaps - 1 do
        if use_trap then begin
          comp.Mna.geq.(k) <- 2.0 *. farads.(k) /. dt;
          comp.Mna.ieq.(k) <- -.((comp.Mna.geq.(k) *. v_prev.(k)) +. i_prev.(k))
        end
        else begin
          comp.Mna.geq.(k) <- farads.(k) /. dt;
          comp.Mna.ieq.(k) <- -.(comp.Mna.geq.(k) *. v_prev.(k))
        end
      done;
      let step_iters = ref 0 in
      match
        Dcop.newton_into ?plan ~iter_count:step_iters netlist ~options:options.dc ~x0:!x_cur
          ~dst:!x_next ~time:(t +. dt) ~gmin:options.dc.Dcop.gmin_final ~source_scale:1.0
          ~caps:caps_opt
      with
      | _iters ->
        newton_total := !newton_total + !step_iters;
        incr steps_taken;
        Metrics.Counter.incr steps_counter;
        if Metrics.on () then begin
          Metrics.Histogram.observe step_dt_hist dt;
          Metrics.Histogram.observe newton_iter_hist (float_of_int !step_iters)
        end;
        min_dt := Float.min !min_dt dt;
        let x = !x_next in
        for k = 0 to ncaps - 1 do
          let v1 = if cap_n1.(k) < 0 then 0.0 else x.(cap_n1.(k)) in
          let v2 = if cap_n2.(k) < 0 then 0.0 else x.(cap_n2.(k)) in
          let v_new = v1 -. v2 in
          i_prev.(k) <- (comp.Mna.geq.(k) *. v_new) +. comp.Mna.ieq.(k);
          v_prev.(k) <- v_new
        done;
        let tmp = !x_cur in
        x_cur := !x_next;
        x_next := tmp;
        first_step := false
      | exception Dcop.Convergence_failure msg ->
        newton_total := !newton_total + !step_iters;
        if halvings_here >= options.max_step_halvings then begin
          (* [dst] holds the last Newton iterate of the failed step *)
          let residual_norm, worst_nodes =
            Dcop.residual_report netlist ~x:!x_next ~time:(t +. dt)
              ~gmin:options.dc.Dcop.gmin_final ~caps:caps_opt
          in
          raise
            (Step_failed
               ( t,
                 dt,
                 {
                   Dcop.message = msg;
                   attempts = [ (Dcop.Plain, !step_iters) ];
                   residual_norm;
                   worst_nodes;
                 } ))
        end;
        incr halvings;
        halving_log := (t, dt) :: !halving_log;
        Metrics.Counter.incr halvings_counter;
        if Trace.on () then
          Trace.instant ~cat:"spice"
            ~args:[ ("t", Printf.sprintf "%.6g" t); ("dt", Printf.sprintf "%.6g" dt) ]
            "halve";
        let half = dt /. 2.0 in
        advance t half (halvings_here + 1);
        advance (t +. half) half (halvings_here + 1)
    in
    let times = sample_times ~h ~t_stop in
    let nsamples = Array.length times in
    let voltages = Array.map (fun _ -> Array.make nsamples 0.0) record_nodes in
    let currents = Array.map (fun _ -> Array.make nsamples 0.0) record_rows in
    let sample k =
      let x = !x_cur in
      for idx = 0 to Array.length record_nodes - 1 do
        voltages.(idx).(k) <- Mna.voltage x record_nodes.(idx)
      done;
      for idx = 0 to Array.length record_rows - 1 do
        currents.(idx).(k) <- x.(record_rows.(idx))
      done
    in
    sample 0;
    (try
       for k = 1 to nsamples - 1 do
         advance times.(k - 1) (times.(k) -. times.(k - 1)) 0;
         sample k
       done;
       finish
         (Ok
            {
              times;
              node_names = Array.of_list record;
              voltages;
              current_names = Array.of_list record_currents;
              currents;
              newton_iterations_total = !newton_total;
              stats = stats dc_strategy;
            })
     with
    | Step_failed (at_time, dt, dc_failure) ->
      finish
        (Error
           {
             at_time;
             dt;
             newton_iterations_total = !newton_total;
             stats = stats dc_strategy;
             dc_failure;
           })
    | e ->
      (* cancellation (or anything unexpected) escapes with the span closed *)
      Trace.end_span tr_sp;
      raise e)

let run ?options ?cancel netlist ~h ~t_stop ~record ?record_currents () =
  match run_diag ?options ?cancel netlist ~h ~t_stop ~record ?record_currents () with
  | Ok r -> r
  | Error f ->
    raise
      (Dcop.Convergence_failure
         (Printf.sprintf "transient at t=%.4g: %s" f.at_time (Dcop.pp_failure f.dc_failure)))
