module Vec = Lattice_numerics.Vec
module Lu = Lattice_numerics.Lu
module Sparse = Lattice_numerics.Sparse

exception Convergence_failure of string

type engine = Auto | Dense | Sparse

type options = {
  max_iterations : int;
  abstol : float;
  reltol : float;
  gmin_final : float;
  gmin_steps : float list;
  source_steps : int;
  damping : float;
  engine : engine;
}

let default_options =
  {
    max_iterations = 200;
    abstol = 1e-9;
    reltol = 1e-6;
    gmin_final = 1e-12;
    gmin_steps = [ 1e-3; 1e-5; 1e-7; 1e-9; 1e-12 ];
    source_steps = 10;
    damping = 1.0;
    engine = Auto;
  }

(* Below this many unknowns the dense path wins: the compiled plan and
   symbolic analysis don't pay for themselves, and dense LU on a handful
   of rows is cache-resident anyway. *)
let sparse_threshold = 16

let plan_for options netlist =
  match options.engine with
  | Dense -> None
  | Sparse -> Some (Stamp_plan.compile netlist)
  | Auto ->
    if Netlist.unknowns netlist >= sparse_threshold then Some (Stamp_plan.compile netlist)
    else None

let converged options x_old x_new =
  let n = Array.length x_old in
  let rec go i =
    i >= n
    ||
    let d = Float.abs (x_new.(i) -. x_old.(i)) in
    d <= options.abstol +. (options.reltol *. Float.abs x_new.(i)) && go (i + 1)
  in
  go 0

let bump = function None -> () | Some r -> incr r

(* Newton over the compiled sparse plan: allocation-free after the
   plan's first factorization (all buffers are plan-owned). *)
let newton_sparse plan ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
    ~nnodes =
  let n = Stamp_plan.n plan in
  let x = Stamp_plan.x_buffer plan and x_new = Stamp_plan.x_new_buffer plan in
  Array.blit x0 0 x 0 n;
  Stamp_plan.set_linear plan ~time ~gmin ~gshunt ~source_scale ~caps;
  let k = ref 0 in
  let done_ = ref false in
  while not !done_ do
    if !k >= options.max_iterations then
      raise
        (Convergence_failure (Printf.sprintf "Newton: no convergence after %d iterations" !k));
    bump iter_count;
    Stamp_plan.assemble plan ~x;
    (try Stamp_plan.factor_and_solve plan
     with Sparse.Singular col ->
       raise (Convergence_failure (Printf.sprintf "singular MNA matrix at column %d" col)));
    Array.blit (Stamp_plan.rhs plan) 0 x_new 0 n;
    (* limit per-step voltage change to keep the level-1 model in range *)
    for i = 0 to nnodes - 1 do
      let d = x_new.(i) -. x.(i) in
      if Float.abs d > options.damping then x_new.(i) <- x.(i) +. Float.copy_sign options.damping d
    done;
    incr k;
    if converged options x x_new then begin
      Array.blit x_new 0 dst 0 n;
      done_ := true
    end
    else Array.blit x_new 0 x 0 n
  done;
  !k

(* the dense reference engine: rebuilds the full matrix each iteration *)
let newton_dense netlist ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
    ~nnodes =
  let n = Netlist.unknowns netlist in
  let x = Vec.copy x0 in
  let rec iterate k =
    if k >= options.max_iterations then
      raise (Convergence_failure (Printf.sprintf "Newton: no convergence after %d iterations" k));
    bump iter_count;
    let a, b = Mna.stamp netlist ~x ~time ~gmin ~gshunt ~source_scale ~caps in
    let x_new =
      match Lu.factor a with
      | f -> Lu.solve f b
      | exception Lu.Singular col ->
        raise (Convergence_failure (Printf.sprintf "singular MNA matrix at column %d" col))
    in
    for i = 0 to nnodes - 1 do
      let d = x_new.(i) -. x.(i) in
      if Float.abs d > options.damping then x_new.(i) <- x.(i) +. Float.copy_sign options.damping d
    done;
    if converged options x x_new then begin
      Array.blit x_new 0 dst 0 n;
      k + 1
    end
    else begin
      Array.blit x_new 0 x 0 (Array.length x);
      iterate (k + 1)
    end
  in
  iterate 0

let newton_into ?(gshunt = 0.0) ?plan ?iter_count netlist ~options ~x0 ~dst ~time ~gmin
    ~source_scale ~caps =
  let nnodes = Netlist.num_nodes netlist in
  let plan = match plan with Some _ as p -> p | None -> plan_for options netlist in
  match plan with
  | Some plan ->
    newton_sparse plan ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
      ~nnodes
  | None ->
    newton_dense netlist ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
      ~nnodes

let newton ?gshunt ?plan ?iter_count netlist ~options ~x0 ~time ~gmin ~source_scale ~caps =
  let dst = Array.make (Array.length x0) 0.0 in
  let iters =
    newton_into ?gshunt ?plan ?iter_count netlist ~options ~x0 ~dst ~time ~gmin ~source_scale
      ~caps
  in
  (dst, iters)

let solve ?(options = default_options) ?plan ?x0 ?(time = 0.0) netlist =
  let n = Netlist.unknowns netlist in
  if n = 0 then [||]
  else begin
    let plan = match plan with Some _ as p -> p | None -> plan_for options netlist in
    let x0 = match x0 with Some x -> Vec.copy x | None -> Vec.zeros n in
    let newton ?gshunt netlist ~options ~x0 ~gmin ~source_scale =
      fst (newton ?gshunt ?plan netlist ~options ~x0 ~time ~gmin ~source_scale ~caps:None)
    in
    let attempt_plain options () =
      newton netlist ~options ~x0 ~gmin:options.gmin_final ~source_scale:1.0
    in
    let attempt_gmin options () =
      let x = ref (Vec.copy x0) in
      List.iter
        (fun gmin -> x := newton netlist ~options ~x0:!x ~gmin ~source_scale:1.0)
        options.gmin_steps;
      newton netlist ~options ~x0:!x ~gmin:options.gmin_final ~source_scale:1.0
    in
    let attempt_source options () =
      let x = ref (Vec.copy x0) in
      for k = 1 to options.source_steps do
        let scale = float_of_int k /. float_of_int options.source_steps in
        x := newton netlist ~options ~x0:!x ~gmin:options.gmin_final ~source_scale:scale
      done;
      !x
    in
    (* heavily damped settings suppress the source/drain-swap chattering
       that plain Newton can fall into on badly matched devices *)
    let damped =
      { options with damping = Float.min 0.1 options.damping; max_iterations = 4 * options.max_iterations }
    in
    (* last resort: walk a node-to-ground shunt from strong to negligible,
       warm-starting each stage. The ladder stops at 1e-12 S rather than 0:
       a node left floating by OFF switches has no zero-shunt operating
       point, and the residual bias (~fA) sits far below the device leakage
       floor. *)
    let attempt_gshunt options () =
      let x = ref (Vec.copy x0) in
      List.iter
        (fun gshunt ->
          x := newton ~gshunt netlist ~options ~x0:!x ~gmin:options.gmin_final ~source_scale:1.0)
        [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; 1e-12 ];
      !x
    in
    let rec first_success = function
      | [] -> raise (Convergence_failure "all DC strategies failed")
      | attempt :: rest -> (
        match attempt () with
        | x -> x
        | exception Convergence_failure _ -> first_success rest)
    in
    first_success
      [
        attempt_plain options;
        attempt_gmin options;
        attempt_source options;
        attempt_plain damped;
        attempt_gmin damped;
        attempt_source damped;
        attempt_gshunt damped;
      ]
  end
