module Vec = Lattice_numerics.Vec
module Lu = Lattice_numerics.Lu
module Matrix = Lattice_numerics.Matrix
module Sparse = Lattice_numerics.Sparse
module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics

exception Convergence_failure of string

let solves_counter = Metrics.counter "dcop.solves"
let fallback_counter = Metrics.counter "dcop.fallbacks"
let newton_iter_hist = Metrics.histogram "newton.iterations"

type engine = Auto | Dense | Sparse

type options = {
  max_iterations : int;
  abstol : float;
  reltol : float;
  gmin_final : float;
  gmin_steps : float list;
  source_steps : int;
  damping : float;
  engine : engine;
  conv_trace : bool;
}

let default_options =
  {
    max_iterations = 200;
    abstol = 1e-9;
    reltol = 1e-6;
    gmin_final = 1e-12;
    gmin_steps = [ 1e-3; 1e-5; 1e-7; 1e-9; 1e-12 ];
    source_steps = 10;
    damping = 1.0;
    engine = Auto;
    conv_trace = false;
  }

type strategy =
  | Plain
  | Gmin_stepping
  | Source_stepping
  | Damped_plain
  | Damped_gmin
  | Damped_source
  | Gshunt_ramp

let strategy_index = function
  | Plain -> 0
  | Gmin_stepping -> 1
  | Source_stepping -> 2
  | Damped_plain -> 3
  | Damped_gmin -> 4
  | Damped_source -> 5
  | Gshunt_ramp -> 6

let strategy_name = function
  | Plain -> "plain"
  | Gmin_stepping -> "gmin-stepping"
  | Source_stepping -> "source-stepping"
  | Damped_plain -> "damped"
  | Damped_gmin -> "damped-gmin"
  | Damped_source -> "damped-source"
  | Gshunt_ramp -> "gshunt-ramp"

type diagnostics = {
  strategy : strategy;
  attempts : (strategy * int) list;
  newton_iterations : int;
  conv_trace : (strategy * float array) list;
}

type failure = {
  message : string;
  attempts : (strategy * int) list;
  residual_norm : float;
  worst_nodes : (string * float) list;
}

let pp_failure f =
  let ladder =
    String.concat ", "
      (List.map (fun (s, k) -> Printf.sprintf "%s:%d" (strategy_name s) k) f.attempts)
  in
  let nodes =
    String.concat ", " (List.map (fun (n, r) -> Printf.sprintf "%s (%.3g A)" n r) f.worst_nodes)
  in
  Printf.sprintf "%s [ladder %s; |r|=%.3g; worst %s]" f.message ladder f.residual_norm nodes

(* Below this many unknowns the dense path wins: the compiled plan and
   symbolic analysis don't pay for themselves, and dense LU on a handful
   of rows is cache-resident anyway. *)
let sparse_threshold = 16

let plan_for options netlist =
  match options.engine with
  | Dense -> None
  | Sparse -> Some (Stamp_plan.compile netlist)
  | Auto ->
    if Netlist.unknowns netlist >= sparse_threshold then Some (Stamp_plan.compile netlist)
    else None

let converged options x_old x_new =
  let n = Array.length x_old in
  let rec go i =
    i >= n
    ||
    let d = Float.abs (x_new.(i) -. x_old.(i)) in
    d <= options.abstol +. (options.reltol *. Float.abs x_new.(i)) && go (i + 1)
  in
  go 0

let bump = function None -> () | Some r -> incr r

(* Newton-update inf-norm, reported to the optional convergence-trace
   hook. Only computed when a hook is installed — the plain solve path
   pays nothing. *)
let report_dx on_iter x x_new n =
  match on_iter with
  | None -> ()
  | Some f ->
    let m = ref 0.0 in
    for i = 0 to n - 1 do
      m := Float.max !m (Float.abs (x_new.(i) -. x.(i)))
    done;
    f !m

(* KCL residual of the nonlinear system at [x]: the companion
   linearization A(x) x' = b(x) is exact at its own expansion point, so
   r = A(x) x - b(x) is the true device-equation residual. Dense assembly
   is fine here — this only runs on the (cold) failure path. *)
let residual_report ?(time = 0.0) ?(gmin = default_options.gmin_final) ?(gshunt = 0.0)
    ?(source_scale = 1.0) ?(caps = None) ?(worst = 3) netlist ~x =
  let a, b = Mna.stamp netlist ~x ~time ~gmin ~gshunt ~source_scale ~caps in
  let r = Matrix.mat_vec a x in
  let n = Array.length r in
  let norm = ref 0.0 in
  for i = 0 to n - 1 do
    r.(i) <- r.(i) -. b.(i);
    norm := Float.max !norm (Float.abs r.(i))
  done;
  let nnodes = Netlist.num_nodes netlist in
  let nodes = List.init nnodes (fun i -> (i, Float.abs r.(i))) in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) nodes in
  let rec take k = function
    | (i, v) :: rest when k > 0 && v > 0.0 ->
      (Netlist.node_name netlist (i + 1), v) :: take (k - 1) rest
    | _ -> []
  in
  (!norm, take worst sorted)

(* Newton over the compiled sparse plan: allocation-free after the
   plan's first factorization (all buffers are plan-owned). On failure
   the last iterate is left in [dst] for the caller's diagnostics. *)
let newton_sparse plan ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
    ~on_iter ~cancel ~nnodes =
  let n = Stamp_plan.n plan in
  let x = Stamp_plan.x_buffer plan and x_new = Stamp_plan.x_new_buffer plan in
  Array.blit x0 0 x 0 n;
  Stamp_plan.set_linear plan ~time ~gmin ~gshunt ~source_scale ~caps;
  let k = ref 0 in
  let done_ = ref false in
  while not !done_ do
    (* iteration boundary: a blown deadline stops here, leaving the last
       iterate in [dst] exactly like a convergence failure would *)
    (match Cancel.state cancel with
    | None -> ()
    | Some r ->
      Array.blit x 0 dst 0 n;
      raise (Cancel.Cancelled r));
    if !k >= options.max_iterations then begin
      Array.blit x 0 dst 0 n;
      raise
        (Convergence_failure (Printf.sprintf "Newton: no convergence after %d iterations" !k))
    end;
    bump iter_count;
    Stamp_plan.assemble plan ~x;
    (try Stamp_plan.factor_and_solve plan
     with Sparse.Singular col ->
       Array.blit x 0 dst 0 n;
       raise (Convergence_failure (Printf.sprintf "singular MNA matrix at column %d" col)));
    Array.blit (Stamp_plan.rhs plan) 0 x_new 0 n;
    (* limit per-step voltage change to keep the level-1 model in range *)
    for i = 0 to nnodes - 1 do
      let d = x_new.(i) -. x.(i) in
      if Float.abs d > options.damping then x_new.(i) <- x.(i) +. Float.copy_sign options.damping d
    done;
    report_dx on_iter x x_new n;
    incr k;
    if converged options x x_new then begin
      Array.blit x_new 0 dst 0 n;
      done_ := true
    end
    else Array.blit x_new 0 x 0 n
  done;
  !k

(* the dense reference engine: rebuilds the full matrix each iteration *)
let newton_dense netlist ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
    ~on_iter ~cancel ~nnodes =
  let n = Netlist.unknowns netlist in
  let x = Vec.copy x0 in
  let rec iterate k =
    (match Cancel.state cancel with
    | None -> ()
    | Some r ->
      Array.blit x 0 dst 0 n;
      raise (Cancel.Cancelled r));
    if k >= options.max_iterations then begin
      Array.blit x 0 dst 0 n;
      raise (Convergence_failure (Printf.sprintf "Newton: no convergence after %d iterations" k))
    end;
    bump iter_count;
    let a, b = Mna.stamp netlist ~x ~time ~gmin ~gshunt ~source_scale ~caps in
    let x_new =
      match Lu.factor a with
      | f -> Lu.solve f b
      | exception Lu.Singular col ->
        Array.blit x 0 dst 0 n;
        raise (Convergence_failure (Printf.sprintf "singular MNA matrix at column %d" col))
    in
    for i = 0 to nnodes - 1 do
      let d = x_new.(i) -. x.(i) in
      if Float.abs d > options.damping then x_new.(i) <- x.(i) +. Float.copy_sign options.damping d
    done;
    report_dx on_iter x x_new n;
    if converged options x x_new then begin
      Array.blit x_new 0 dst 0 n;
      k + 1
    end
    else begin
      Array.blit x_new 0 x 0 (Array.length x);
      iterate (k + 1)
    end
  in
  iterate 0

let newton_into ?(gshunt = 0.0) ?plan ?iter_count ?on_iter ?(cancel = Cancel.none) netlist
    ~options ~x0 ~dst ~time ~gmin ~source_scale ~caps =
  let nnodes = Netlist.num_nodes netlist in
  let plan = match plan with Some _ as p -> p | None -> plan_for options netlist in
  let sp = Trace.begin_span ~cat:"spice" "newton" in
  match
    match plan with
    | Some plan ->
      newton_sparse plan ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
        ~on_iter ~cancel ~nnodes
    | None ->
      newton_dense netlist ~options ~x0 ~dst ~time ~gmin ~gshunt ~source_scale ~caps ~iter_count
        ~on_iter ~cancel ~nnodes
  with
  | k ->
    Trace.end_span sp;
    k
  | exception e ->
    Trace.end_span sp;
    raise e

let newton ?gshunt ?plan ?iter_count ?on_iter ?cancel netlist ~options ~x0 ~time ~gmin
    ~source_scale ~caps =
  let dst = Array.make (Array.length x0) 0.0 in
  let iters =
    newton_into ?gshunt ?plan ?iter_count ?on_iter ?cancel netlist ~options ~x0 ~dst ~time ~gmin
      ~source_scale ~caps
  in
  (dst, iters)

let last_diag : (diagnostics, failure) result option ref = ref None

let last_solve_diagnostics () = !last_diag

let solve_diag ?(options = default_options) ?plan ?x0 ?(time = 0.0) ?(cancel = Cancel.none)
    netlist =
  let n = Netlist.unknowns netlist in
  if n = 0 then begin
    let d = { strategy = Plain; attempts = []; newton_iterations = 0; conv_trace = [] } in
    last_diag := Some (Ok d);
    Ok ([||], d)
  end
  else begin
    Metrics.Counter.incr solves_counter;
    let sp = Trace.begin_span ~cat:"spice" "dcop" in
    let plan = match plan with Some _ as p -> p | None -> plan_for options netlist in
    let x0 = match x0 with Some x -> Vec.copy x | None -> Vec.zeros n in
    (* last Newton iterate of the most recent failed attempt, for the
       failure diagnostics *)
    let last_x = Vec.copy x0 in
    (* per-iteration |dx| inf-norms of the rung currently running, newest
       first; flushed into [traces] when the rung ends *)
    let cur_norms = ref [] in
    let on_iter =
      if options.conv_trace then Some (fun nrm -> cur_norms := nrm :: !cur_norms) else None
    in
    let traces = ref [] in
    let record_trace tag =
      if options.conv_trace then begin
        traces := (tag, Array.of_list (List.rev !cur_norms)) :: !traces;
        cur_norms := []
      end
    in
    let run_newton ?gshunt ~options ~count ~x0 ~gmin ~source_scale () =
      let dst = Array.make n 0.0 in
      (try
         ignore
           (newton_into ?gshunt ?plan ~iter_count:count ?on_iter ~cancel netlist ~options ~x0
              ~dst ~time ~gmin ~source_scale ~caps:None)
       with (Convergence_failure _ | Cancel.Cancelled _) as e ->
         Array.blit dst 0 last_x 0 n;
         raise e);
      dst
    in
    let attempt_plain options count () =
      run_newton ~options ~count ~x0 ~gmin:options.gmin_final ~source_scale:1.0 ()
    in
    let attempt_gmin options count () =
      let x = ref (Vec.copy x0) in
      List.iter
        (fun gmin -> x := run_newton ~options ~count ~x0:!x ~gmin ~source_scale:1.0 ())
        options.gmin_steps;
      run_newton ~options ~count ~x0:!x ~gmin:options.gmin_final ~source_scale:1.0 ()
    in
    let attempt_source options count () =
      let x = ref (Vec.copy x0) in
      for k = 1 to options.source_steps do
        let scale = float_of_int k /. float_of_int options.source_steps in
        x := run_newton ~options ~count ~x0:!x ~gmin:options.gmin_final ~source_scale:scale ()
      done;
      !x
    in
    (* heavily damped settings suppress the source/drain-swap chattering
       that plain Newton can fall into on badly matched devices *)
    let damped =
      { options with damping = Float.min 0.1 options.damping; max_iterations = 4 * options.max_iterations }
    in
    (* last resort: walk a node-to-ground shunt from strong to negligible,
       warm-starting each stage. The ladder stops at 1e-12 S rather than 0:
       a node left floating by OFF switches has no zero-shunt operating
       point, and the residual bias (~fA) sits far below the device leakage
       floor. *)
    let attempt_gshunt options count () =
      let x = ref (Vec.copy x0) in
      List.iter
        (fun gshunt ->
          x := run_newton ~gshunt ~options ~count ~x0:!x ~gmin:options.gmin_final ~source_scale:1.0 ())
        [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; 1e-12 ];
      !x
    in
    let ladder =
      [
        (Plain, attempt_plain options);
        (Gmin_stepping, attempt_gmin options);
        (Source_stepping, attempt_source options);
        (Damped_plain, attempt_plain damped);
        (Damped_gmin, attempt_gmin damped);
        (Damped_source, attempt_source damped);
        (Gshunt_ramp, attempt_gshunt damped);
      ]
    in
    let attempts = ref [] in
    let total () = List.fold_left (fun acc (_, k) -> acc + k) 0 !attempts in
    let rec try_ladder last_msg = function
      | [] ->
        let residual_norm, worst_nodes =
          residual_report netlist ~x:last_x ~time ~gmin:options.gmin_final
        in
        let f =
          { message = last_msg; attempts = List.rev !attempts; residual_norm; worst_nodes }
        in
        Metrics.Histogram.observe newton_iter_hist (float_of_int (total ()));
        Trace.end_span sp;
        last_diag := Some (Error f);
        Error f
      | (tag, attempt) :: rest -> (
        Cancel.check cancel;
        let count = ref 0 in
        let asp = Trace.begin_span ~cat:"spice" ("dcop:" ^ strategy_name tag) in
        match attempt count () with
        | x ->
          Trace.end_span asp;
          record_trace tag;
          attempts := (tag, !count) :: !attempts;
          let d =
            {
              strategy = tag;
              attempts = List.rev !attempts;
              newton_iterations = total ();
              conv_trace = List.rev !traces;
            }
          in
          Metrics.Histogram.observe newton_iter_hist (float_of_int d.newton_iterations);
          Trace.end_span sp;
          last_diag := Some (Ok d);
          Ok (x, d)
        | exception Convergence_failure msg ->
          Trace.end_span asp;
          record_trace tag;
          attempts := (tag, !count) :: !attempts;
          Metrics.Counter.incr fallback_counter;
          if Trace.on () then
            Trace.instant ~cat:"spice"
              ~args:[ ("strategy", strategy_name tag); ("iterations", string_of_int !count) ]
              "dcop.fallback";
          try_ladder msg rest
        | exception e ->
          (* cancellation (and anything else unexpected) aborts the whole
             ladder — it is not a convergence failure and must escape *)
          Trace.end_span asp;
          Trace.end_span sp;
          raise e)
    in
    try_ladder "no strategy attempted" ladder
  end

let solve ?options ?plan ?x0 ?time ?cancel netlist =
  match solve_diag ?options ?plan ?x0 ?time ?cancel netlist with
  | Ok (x, _) -> x
  | Error f -> raise (Convergence_failure ("all DC strategies failed: " ^ pp_failure f))
