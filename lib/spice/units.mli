(** Engineering-notation helpers for netlist values ("500k", "1f", "10n"). *)

(** [parse s] reads a float with an optional SPICE suffix
    (f, p, n, u, m, k, meg, g, t); case-insensitive.
    Raises [Invalid_argument] on malformed input. *)
val parse : string -> float

(** [format x] renders with the closest engineering suffix,
    e.g. [format 5e5 = "500k"], [format 1e-15 = "1f"]. *)
val format : float -> string

(** [parse_spice s] reads a SPICE-syntax value: a decimal float followed
    by an optional engineering suffix and arbitrary trailing unit
    letters, e.g. ["10pF"], ["2ns"], ["4.7k"], ["1meg"].  The scale is
    taken from the first letters after the number ([meg] = 1e6,
    [mil] = 25.4e-6, otherwise the single-letter table where [m] = 1e-3
    -- so ["1meg"] is 1e6 while ["1m"] is 1e-3); unknown letters are a
    bare unit and scale by 1.  Returns [None] on anything that is not a
    finite value; never raises. *)
val parse_spice : string -> float option

(** [print_spice x] renders the shortest string [s] such that
    [parse_spice s] returns [x] bit-exactly.  Prefers a plain decimal,
    then suffixed forms from the largest scale down; deterministic, so
    emitted decks are byte-stable.  [print_spice 1e6 = "1meg"],
    [print_spice 1e-3 = "1m"], [print_spice 1e-11 = "10p"]. *)
val print_spice : float -> string
