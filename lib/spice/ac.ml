module Matrix = Lattice_numerics.Matrix
module Lu = Lattice_numerics.Lu
module Sparse = Lattice_numerics.Sparse

type point = { freq_hz : float; magnitude : float; phase_deg : float }

type response = { points : point list; dc_gain : float }

let cap_stamps netlist =
  List.filter_map
    (function
      | Netlist.Capacitor { n1; n2; farads; _ } ->
        Some (Netlist.node_index n1, Netlist.node_index n2, farads)
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> None)
    (Netlist.elements netlist)

(* Susceptance entries of the cap list as flat (row, col, farads) triples,
   with the signs of the usual conductance stamp folded in. *)
let b_entries caps =
  let out = ref [] in
  List.iter
    (fun (i1, i2, f) ->
      let add r c coef = if r >= 0 && c >= 0 then out := (r, c, coef) :: !out in
      add i1 i1 f;
      add i2 i2 f;
      add i1 i2 (-.f);
      add i2 i1 (-.f))
    caps;
  !out

(* Dense reference path: rebuild and factor the full 2n x 2n augmented
   system at every frequency. *)
let solver_dense netlist ~x_op ~caps =
  let g_matrix, _ =
    Mna.stamp netlist ~x:x_op ~time:0.0 ~gmin:Dcop.default_options.Dcop.gmin_final ~gshunt:0.0
      ~source_scale:1.0 ~caps:None
  in
  let n = Netlist.unknowns netlist in
  fun ~w ~source_row ->
    (* real augmented system [[G, -B]; [B, G]] *)
    let a = Matrix.create (2 * n) (2 * n) in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        let g = Matrix.get g_matrix r c in
        Matrix.set a r c g;
        Matrix.set a (n + r) (n + c) g
      done
    done;
    List.iter
      (fun (r, c, coef) ->
        let y = w *. coef in
        Matrix.add_to a r (n + c) (-.y);
        Matrix.add_to a (n + r) c y)
      (b_entries caps);
    let b = Array.make (2 * n) 0.0 in
    b.(source_row) <- 1.0;
    Lu.solve_dense a b

(* Compiled path: the augmented pattern is built once; each frequency
   blits the cached G blocks, writes the scaled B slots, and reuses the
   elimination pattern of the first factorization (numeric refactor). *)
let solver_sparse plan ~x_op ~caps =
  let n = Stamp_plan.n plan in
  Stamp_plan.set_linear plan ~time:0.0 ~gmin:Dcop.default_options.Dcop.gmin_final ~gshunt:0.0
    ~source_scale:1.0 ~caps:None;
  Stamp_plan.assemble plan ~x:x_op;
  let g = Stamp_plan.matrix plan in
  let builder = Sparse.Builder.create (2 * n) in
  Sparse.iteri g (fun _ r c _ ->
      Sparse.Builder.add builder r c;
      Sparse.Builder.add builder (n + r) (n + c));
  let bents = Array.of_list (b_entries caps) in
  Array.iter
    (fun (r, c, _) ->
      Sparse.Builder.add builder r (n + c);
      Sparse.Builder.add builder (n + r) c)
    bents;
  let pat = Sparse.Builder.compile builder in
  let aug = Sparse.create pat in
  Sparse.iteri g (fun _ r c v ->
      Sparse.add aug r c v;
      Sparse.add aug (n + r) (n + c) v);
  (* template holding the two G blocks with every B slot at zero *)
  let aug0 = Array.copy aug.Sparse.values in
  let nb = Array.length bents in
  let bslot_top = Array.make nb 0 in
  let bslot_bot = Array.make nb 0 in
  let bcoef = Array.make nb 0.0 in
  Array.iteri
    (fun k (r, c, coef) ->
      bslot_top.(k) <- Sparse.slot pat ~row:r ~col:(n + c);
      bslot_bot.(k) <- Sparse.slot pat ~row:(n + r) ~col:c;
      bcoef.(k) <- coef)
    bents;
  let lu = ref None in
  let rhs = Array.make (2 * n) 0.0 in
  fun ~w ~source_row ->
    let values = aug.Sparse.values in
    Array.blit aug0 0 values 0 (Array.length aug0);
    for k = 0 to nb - 1 do
      let y = bcoef.(k) *. w in
      values.(bslot_top.(k)) <- values.(bslot_top.(k)) -. y;
      values.(bslot_bot.(k)) <- values.(bslot_bot.(k)) +. y
    done;
    Array.fill rhs 0 (2 * n) 0.0;
    rhs.(source_row) <- 1.0;
    let f =
      match !lu with
      | None ->
        let f = Sparse.factorize aug in
        lu := Some f;
        f
      | Some f -> (
        (* the frozen pivot order can go numerically stale as w grows;
           re-analyze rather than fail *)
        try
          Sparse.refactor f aug;
          f
        with Sparse.Singular _ ->
          let f = Sparse.factorize aug in
          lu := Some f;
          f)
    in
    Sparse.solve_in_place f rhs;
    rhs

let sweep ?(engine = Dcop.Auto) netlist ~source ~output ~f_start ~f_stop ~points_per_decade =
  if f_start <= 0.0 || f_stop <= f_start then invalid_arg "Ac.sweep: bad frequency range";
  if points_per_decade < 1 then invalid_arg "Ac.sweep: need at least 1 point per decade";
  let source_row =
    match Netlist.vsource_index netlist source with
    | Some idx -> Netlist.vsource_row netlist idx
    | None -> invalid_arg ("Ac.sweep: unknown source " ^ source)
  in
  let out_index = Netlist.node_index (Netlist.node netlist output) in
  if out_index < 0 then invalid_arg "Ac.sweep: output is ground";
  let options = { Dcop.default_options with engine } in
  let plan = Dcop.plan_for options netlist in
  let x_op = Dcop.solve ~options ?plan netlist in
  let n = Netlist.unknowns netlist in
  let caps = cap_stamps netlist in
  let solver =
    match plan with
    | Some plan -> solver_sparse plan ~x_op ~caps
    | None -> solver_dense netlist ~x_op ~caps
  in
  let solve_at freq =
    let w = 2.0 *. Float.pi *. freq in
    let x = solver ~w ~source_row in
    let re = x.(out_index) and im = x.(n + out_index) in
    {
      freq_hz = freq;
      magnitude = sqrt ((re *. re) +. (im *. im));
      phase_deg = Float.atan2 im re *. 180.0 /. Float.pi;
    }
  in
  let decades = log10 (f_stop /. f_start) in
  let npoints = Int.max 2 (1 + int_of_float (Float.round (decades *. float_of_int points_per_decade))) in
  let points =
    List.init npoints (fun i ->
        let t = float_of_int i /. float_of_int (npoints - 1) in
        solve_at (f_start *. (10.0 ** (decades *. t))))
  in
  let dc_gain = match points with p :: _ -> p.magnitude | [] -> 0.0 in
  { points; dc_gain }

let arrays response =
  let fs = Array.of_list (List.map (fun p -> p.freq_hz) response.points) in
  let mags = Array.of_list (List.map (fun p -> p.magnitude) response.points) in
  let phases = Array.of_list (List.map (fun p -> p.phase_deg) response.points) in
  (fs, mags, phases)

let f_3db response =
  let fs, mags, _ = arrays response in
  Lattice_numerics.Interp.first_crossing fs mags (response.dc_gain /. sqrt 2.0)

let phase_at response f =
  let fs, _, phases = arrays response in
  Lattice_numerics.Interp.lookup fs phases f

let magnitude_at response f =
  let fs, mags, _ = arrays response in
  Lattice_numerics.Interp.lookup fs mags f
