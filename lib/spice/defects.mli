(** Circuit-level fabrication defects for four-terminal switching lattices.

    The logical fault model of {!Lattice_synthesis.Faults} knows two faults:
    a switch stuck OFF or stuck ON. At circuit level a die can fail in more
    ways — and the same logical fault can have very different electrical
    severity. This module models five defect families and injects them into
    a lattice netlist through {!Lattice_circuit.site_hook}:

    - {e stuck-open}: the six-FET switch is replaced by very weak leakage
      paths ([r_open] across north–south and east–west) — the electrical
      realization of the logical stuck-OFF fault;
    - {e stuck-short}: the switch is replaced by hard resistive shorts
      ([r_short]) across all four adjacent terminal pairs — logical
      stuck-ON, gate ignored;
    - {e bridge}: a resistive bridge ([r_bridge]) between two adjacent
      terminals of an otherwise healthy switch (metal sliver, incomplete
      etch);
    - {e broken terminal}: one terminal reaches the lattice only through a
      high-resistance crack ([r_broken]); the switch itself is intact;
    - {e gate leak}: a gate-oxide leak ([r_leak]) from the gate driver to
      one terminal, loading the driver and disturbing the channel.

    Structural defects (stuck-open, stuck-short, broken terminal) replace
    the default switch instantiation; additive defects (bridge, gate leak)
    add elements next to it. When both hit one site, the additive elements
    are added and the first structural defect then replaces the switch. *)

type terminal = North | East | South | West

type kind =
  | Stuck_open
  | Stuck_short
  | Bridge of terminal * terminal
  | Broken_terminal of terminal
  | Gate_leak of terminal

type t = { row : int; col : int; kind : kind }
(** One defect at one lattice site. *)

val terminal_name : terminal -> string
val kind_name : kind -> string

val name : t -> string
(** Human-readable defect id, e.g. ["(1,2) bridge-NE"]. *)

(** Electrical severity knobs, all in ohms. *)
type params = {
  r_open : float;  (** stuck-open residual leakage (default 1e10) *)
  r_short : float;  (** stuck-short contact resistance (default 50) *)
  r_bridge : float;  (** terminal-terminal bridge (default 1e3) *)
  r_broken : float;  (** cracked-terminal series resistance (default 1e8) *)
  r_leak : float;  (** gate-oxide leak (default 1e6) *)
}

val default_params : params

val is_structural : kind -> bool
(** [true] for the kinds that replace the switch instantiation. *)

val hook : ?params:params -> t list -> Lattice_circuit.site_hook
(** [hook ?params defects] is a site hook injecting every listed defect at
    its site; sites without defects fall through to the default switch. *)

val build :
  ?config:Lattice_circuit.config ->
  ?params:params ->
  ?types_of_site:(int -> int -> Fts.mosfet_types) ->
  defects:t list ->
  Lattice_core.Grid.t ->
  stimulus:(int -> Source.t) ->
  Lattice_circuit.t
(** [build ~defects grid ~stimulus] is {!Lattice_circuit.build} with
    [hook ?params defects] installed. *)

(** Defect families, for restricting enumeration. *)
type kind_class = Opens | Shorts | Bridges | Broken_terminals | Gate_leaks

val all_classes : kind_class list

val kinds_of_class : kind_class -> kind list

val single_defects : ?classes:kind_class list -> Lattice_core.Grid.t -> t list
(** [single_defects grid] enumerates every single-site defect of the
    selected classes (default: all five) over every site of [grid]:
    14 defects per site — 1 open, 1 short, 4 bridges on the adjacent
    terminal pairs, 4 broken terminals, 4 gate leaks. *)
