(** Lattice-to-netlist generation (paper Section V).

    An assigned [m x n] lattice becomes a pull-down network of four-terminal
    switches: vertically adjacent switches share their north/south terminal
    nodes, horizontally adjacent ones their east/west nodes; the top plate
    (shared north node of row 0) is pulled up to VDD through a resistor and
    carries the output capacitor, the bottom plate (row m-1's south node) is
    grounded. Because the lattice is a pull-down network, the circuit
    computes the {e complement} of the lattice function (the paper simulates
    the inverse of XOR3).

    Control inputs become gate drivers: a literal [x] connects the switch
    gate to the driver of [x] ([x'] to the complement driver), a constant-1
    site to VDD and a constant-0 site to ground. *)

type config = {
  vdd : float;  (** supply, V (paper: 1.2) *)
  pullup_ohms : float;  (** paper: 500k *)
  output_cap : float;  (** paper: 10 fF *)
  terminal_cap : float;  (** paper: 1 fF *)
  gate_cap : float;  (** per-switch gate capacitance (paper model: 0) *)
  types : Fts.mosfet_types;
}

(** The paper's Fig 11 configuration. *)
val default_config : config

type t = {
  netlist : Netlist.t;
  output_node : string;  (** top plate, the (inverted) output *)
  input_nodes : string array;  (** driver node of each variable *)
  config : config;
}

(** [input_node_name v] / [input_bar_node_name v] are the driver node names
    of variable [v] and its complement. *)
val input_node_name : int -> string

val input_bar_node_name : int -> string

(** Everything the builder knows about one lattice site just before it
    instantiates the four-terminal switch there: position, instance name,
    the four shared terminal nodes, the resolved gate driver and switch
    models, and the capacitor configuration. Handed to {!site_hook}. *)
type site = {
  row : int;
  col : int;
  name : string;  (** instance prefix, e.g. ["pd.X_1_2"] *)
  north : Netlist.node;
  east : Netlist.node;
  south : Netlist.node;
  west : Netlist.node;
  gate : Netlist.node;
  types : Fts.mosfet_types;  (** after any [types_of_site] override *)
  terminal_cap : float;
  gate_cap : float;
}

(** A per-site generation hook, the generalized injection point the
    defect layer ({!Defects}) builds on. The hook runs once per site,
    {e before} the default switch is instantiated; it may add arbitrary
    extra elements (bridges, leaks) and returns [true] to signal that it
    instantiated the site itself — suppressing the default
    {!Fts.instantiate} — or [false] to let the default proceed. *)
type site_hook = Netlist.t -> site -> bool

val site_terminal : site -> [ `North | `East | `South | `West ] -> Netlist.node
(** The node of one of a site's four terminals. *)

(** [build ?config ?types_of_site ?site_hook grid ~stimulus] generates the
    netlist. [stimulus v] is the waveform of variable [v]; its complement
    driver gets [complement config.vdd (stimulus v)] automatically (vdd
    minus the waveform, realized for DC and pulse sources).
    [types_of_site row col] overrides the switch models per site — the
    hook Monte-Carlo process variation uses. [site_hook] intercepts
    per-site instantiation (see {!site_hook}) — the hook circuit-level
    fault injection uses.

    Complement drivers are only added when some site mentions the negated
    literal. *)
val build :
  ?config:config ->
  ?types_of_site:(int -> int -> Fts.mosfet_types) ->
  ?site_hook:site_hook ->
  Lattice_core.Grid.t ->
  stimulus:(int -> Source.t) ->
  t

(** [build_complementary ?config ~pull_up ~pull_down ~stimulus ()] builds
    the complementary structure the paper's Section VI-A forecasts: a
    four-terminal lattice as the pull-up network (realizing the complement
    of the pull-down function) instead of the resistor. No static path ever
    connects VDD to ground, so static power drops to leakage, and the
    output rise is driven actively instead of through the 500 k resistor.
    The logic-high level is degraded by roughly one threshold voltage
    because the pass network is n-type — the paper's proposal shares this
    property until a p-type four-terminal switch exists.

    [site_hook] runs over the sites of {e both} lattices; the site's
    [name] prefix (["pu."] / ["pd."]) distinguishes them. *)
val build_complementary :
  ?config:config ->
  ?site_hook:site_hook ->
  pull_up:Lattice_core.Grid.t ->
  pull_down:Lattice_core.Grid.t ->
  stimulus:(int -> Source.t) ->
  unit ->
  t

(** [exhaustive_stimulus ~vdd ~bit_time] drives variable [v] with
    [Source.bit_clock] so all input combinations appear — the Fig 11
    stimulus. *)
val exhaustive_stimulus : vdd:float -> bit_time:float -> int -> Source.t

(** [complement ~vdd wave] mirrors a waveform across [vdd/2] (complement
    driver). *)
val complement : vdd:float -> Source.t -> Source.t
