(** DC operating-point analysis: damped Newton-Raphson with gmin stepping
    and a source-stepping fallback, over either the compiled sparse MNA
    engine ({!Stamp_plan}) or the dense reference engine.

    Two entry points compute the operating point: {!solve_diag} returns a
    structured [result] carrying per-strategy diagnostics (and, on
    failure, the residual norm and worst offending nodes), while the
    legacy {!solve} is a thin wrapper that raises
    [Convergence_failure]. *)

exception Convergence_failure of string

(** Which linear-algebra backend drives Newton. [Auto] (the default)
    compiles a sparse stamp plan when the system has at least
    {!sparse_threshold} unknowns and falls back to the dense engine
    below that; [Dense] and [Sparse] force a backend (the dense path is
    the correctness oracle for the sparse one). *)
type engine = Auto | Dense | Sparse

type options = {
  max_iterations : int;  (** Newton iterations per continuation step (default 200) *)
  abstol : float;  (** absolute voltage tolerance, V (default 1e-9) *)
  reltol : float;  (** relative tolerance (default 1e-6) *)
  gmin_final : float;  (** residual drain-source conductance, S (default 1e-12) *)
  gmin_steps : float list;  (** continuation ladder, largest first *)
  source_steps : int;  (** ramp points for the source-stepping fallback (default 10) *)
  damping : float;  (** max voltage change per Newton step, V (default 1.0) *)
  engine : engine;  (** linear-solver backend (default [Auto]) *)
  conv_trace : bool;
      (** record the per-iteration Newton update norm into
          [diagnostics.conv_trace] (default [false]; costs one extra
          vector pass per iteration while on) *)
}

val default_options : options

(** One rung of the fallback ladder, in the order {!solve_diag} tries
    them: plain Newton, gmin stepping, source stepping, the same three
    heavily damped, then the node-shunt continuation. *)
type strategy =
  | Plain
  | Gmin_stepping
  | Source_stepping
  | Damped_plain
  | Damped_gmin
  | Damped_source
  | Gshunt_ramp

val strategy_index : strategy -> int
(** Position of the strategy in the ladder (0 = [Plain] .. 6 =
    [Gshunt_ramp]). *)

val strategy_name : strategy -> string

type diagnostics = {
  strategy : strategy;  (** the rung that converged *)
  attempts : (strategy * int) list;
      (** every rung tried, in order, with the Newton iterations it
          spent — failed rungs included, the winning rung last *)
  newton_iterations : int;  (** total across all attempts *)
  conv_trace : (strategy * float array) list;
      (** with [options.conv_trace] on: for every rung tried, the Newton
          update inf-norm |dx| of each iteration in order (continuation
          sub-steps concatenated); [[]] when the option is off *)
}

type failure = {
  message : string;  (** the last rung's failure message *)
  attempts : (strategy * int) list;
      (** the full failed ladder with per-rung Newton iterations *)
  residual_norm : float;
      (** inf-norm of the KCL residual (A) at the last Newton iterate *)
  worst_nodes : (string * float) list;
      (** up to 3 node names with the largest residual currents *)
}

val pp_failure : failure -> string
(** One-line rendering of a failure: message, ladder, residual, worst
    nodes. *)

val sparse_threshold : int
(** Unknown-count at which [Auto] switches from dense LU to the compiled
    sparse engine. *)

val plan_for : options -> Netlist.t -> Stamp_plan.t option
(** The stamp plan the given options would use for this netlist (compiled
    fresh), or [None] for the dense engine. Callers running many solves
    (transient, sweeps) compile once and pass the plan back in. *)

val residual_report :
  ?time:float ->
  ?gmin:float ->
  ?gshunt:float ->
  ?source_scale:float ->
  ?caps:Mna.cap_companion option ->
  ?worst:int ->
  Netlist.t ->
  x:Lattice_numerics.Vec.t ->
  float * (string * float) list
(** [residual_report netlist ~x] evaluates the KCL residual of the
    nonlinear MNA system at [x] under the given stamping context and
    returns its inf-norm plus the [worst] (default 3) node names ranked
    by residual current — the structured payload of {!failure}. *)

(** [newton netlist ~options ~x0 ~time ~gmin ~source_scale ~caps] runs
    plain Newton at a fixed continuation point ([gshunt] adds a
    node-to-ground conductance, default 0); returns the solution and the
    number of Newton iterations spent, or raises [Convergence_failure].
    [plan] supplies a precompiled sparse stamp plan (overrides
    [options.engine]); [iter_count] is incremented once per iteration as
    it happens, so iterations spent in attempts that end in
    [Convergence_failure] are still counted. [on_iter] is called once
    per iteration with the damped update's inf-norm |dx| (the
    convergence-trace hook; the norm is only computed when the hook is
    present). [cancel] is checked at every iteration boundary; a fired
    token raises {!Cancel.Cancelled} with the last iterate left in the
    destination buffer. *)
val newton :
  ?gshunt:float ->
  ?plan:Stamp_plan.t ->
  ?iter_count:int ref ->
  ?on_iter:(float -> unit) ->
  ?cancel:Cancel.t ->
  Netlist.t ->
  options:options ->
  x0:Lattice_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  caps:Mna.cap_companion option ->
  Lattice_numerics.Vec.t * int

(** [newton_into ... ~x0 ~dst ...] is {!newton} writing the solution into
    the caller-supplied [dst] (length = unknowns; may alias [x0]) and
    returning only the iteration count. With a warm [plan] this performs
    no allocation at all — the transient inner loop runs on it. When it
    raises [Convergence_failure], [dst] holds the last Newton iterate,
    so callers can produce residual diagnostics at the failure point. *)
val newton_into :
  ?gshunt:float ->
  ?plan:Stamp_plan.t ->
  ?iter_count:int ref ->
  ?on_iter:(float -> unit) ->
  ?cancel:Cancel.t ->
  Netlist.t ->
  options:options ->
  x0:Lattice_numerics.Vec.t ->
  dst:Lattice_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  caps:Mna.cap_companion option ->
  int

(** [solve_diag ?options ?plan ?x0 ?time ?cancel netlist] computes the
    operating point at [time] (default 0) and never raises on
    convergence trouble: [Ok (x, diagnostics)] tells which rung of the
    fallback ladder won and what each rung cost; [Error failure]
    carries the failed ladder, the residual norm and the worst
    offending nodes. [cancel] is checked at every Newton iteration and
    every ladder rung; a fired token raises {!Cancel.Cancelled} — a
    deadline is {e not} a convergence failure, so it aborts the whole
    ladder instead of escalating it. *)
val solve_diag :
  ?options:options ->
  ?plan:Stamp_plan.t ->
  ?x0:Lattice_numerics.Vec.t ->
  ?time:float ->
  ?cancel:Cancel.t ->
  Netlist.t ->
  (Lattice_numerics.Vec.t * diagnostics, failure) result

(** [solve ?options ?plan ?x0 ?time netlist] is the legacy wrapper over
    {!solve_diag}: returns the solution vector alone and raises
    [Convergence_failure] (with the rendered {!failure}) if every
    strategy fails. *)
val solve :
  ?options:options ->
  ?plan:Stamp_plan.t ->
  ?x0:Lattice_numerics.Vec.t ->
  ?time:float ->
  ?cancel:Cancel.t ->
  Netlist.t ->
  Lattice_numerics.Vec.t

val last_solve_diagnostics : unit -> (diagnostics, failure) result option
(** Diagnostics of the most recent {!solve} / {!solve_diag} in this
    process — how legacy callers of {!solve} observe the winning
    strategy (via {!strategy_index}) and per-rung iteration counts
    without changing their call sites. Process-global; not thread-safe. *)
