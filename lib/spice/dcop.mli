(** DC operating-point analysis: damped Newton-Raphson with gmin stepping
    and a source-stepping fallback, over either the compiled sparse MNA
    engine ({!Stamp_plan}) or the dense reference engine. *)

exception Convergence_failure of string

(** Which linear-algebra backend drives Newton. [Auto] (the default)
    compiles a sparse stamp plan when the system has at least
    {!sparse_threshold} unknowns and falls back to the dense engine
    below that; [Dense] and [Sparse] force a backend (the dense path is
    the correctness oracle for the sparse one). *)
type engine = Auto | Dense | Sparse

type options = {
  max_iterations : int;  (** Newton iterations per continuation step (default 200) *)
  abstol : float;  (** absolute voltage tolerance, V (default 1e-9) *)
  reltol : float;  (** relative tolerance (default 1e-6) *)
  gmin_final : float;  (** residual drain-source conductance, S (default 1e-12) *)
  gmin_steps : float list;  (** continuation ladder, largest first *)
  source_steps : int;  (** ramp points for the source-stepping fallback (default 10) *)
  damping : float;  (** max voltage change per Newton step, V (default 1.0) *)
  engine : engine;  (** linear-solver backend (default [Auto]) *)
}

val default_options : options

val sparse_threshold : int
(** Unknown-count at which [Auto] switches from dense LU to the compiled
    sparse engine. *)

val plan_for : options -> Netlist.t -> Stamp_plan.t option
(** The stamp plan the given options would use for this netlist (compiled
    fresh), or [None] for the dense engine. Callers running many solves
    (transient, sweeps) compile once and pass the plan back in. *)

(** [newton netlist ~options ~x0 ~time ~gmin ~source_scale ~caps] runs
    plain Newton at a fixed continuation point ([gshunt] adds a
    node-to-ground conductance, default 0); returns the solution and the
    number of Newton iterations spent, or raises [Convergence_failure].
    [plan] supplies a precompiled sparse stamp plan (overrides
    [options.engine]); [iter_count] is incremented once per iteration as
    it happens, so iterations spent in attempts that end in
    [Convergence_failure] are still counted. *)
val newton :
  ?gshunt:float ->
  ?plan:Stamp_plan.t ->
  ?iter_count:int ref ->
  Netlist.t ->
  options:options ->
  x0:Lattice_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  caps:Mna.cap_companion option ->
  Lattice_numerics.Vec.t * int

(** [newton_into ... ~x0 ~dst ...] is {!newton} writing the solution into
    the caller-supplied [dst] (length = unknowns; may alias [x0]) and
    returning only the iteration count. With a warm [plan] this performs
    no allocation at all — the transient inner loop runs on it. *)
val newton_into :
  ?gshunt:float ->
  ?plan:Stamp_plan.t ->
  ?iter_count:int ref ->
  Netlist.t ->
  options:options ->
  x0:Lattice_numerics.Vec.t ->
  dst:Lattice_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  caps:Mna.cap_companion option ->
  int

(** [solve ?options ?plan ?x0 ?time netlist] computes the operating point
    at [time] (default 0). Strategy ladder: plain Newton, gmin stepping,
    source stepping, the same three heavily damped, then a node-shunt
    continuation. Raises [Convergence_failure] if everything fails. *)
val solve :
  ?options:options ->
  ?plan:Stamp_plan.t ->
  ?x0:Lattice_numerics.Vec.t ->
  ?time:float ->
  Netlist.t ->
  Lattice_numerics.Vec.t
