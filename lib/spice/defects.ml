type terminal = North | East | South | West

let terminal_name = function North -> "N" | East -> "E" | South -> "S" | West -> "W"

let as_poly = function
  | North -> `North
  | East -> `East
  | South -> `South
  | West -> `West

type kind =
  | Stuck_open
  | Stuck_short
  | Bridge of terminal * terminal
  | Broken_terminal of terminal
  | Gate_leak of terminal

type t = { row : int; col : int; kind : kind }

let kind_name = function
  | Stuck_open -> "stuck-open"
  | Stuck_short -> "stuck-short"
  | Bridge (a, b) -> Printf.sprintf "bridge-%s%s" (terminal_name a) (terminal_name b)
  | Broken_terminal t -> Printf.sprintf "broken-%s" (terminal_name t)
  | Gate_leak t -> Printf.sprintf "gate-leak-%s" (terminal_name t)

let name d = Printf.sprintf "(%d,%d) %s" d.row d.col (kind_name d.kind)

type params = {
  r_open : float;
  r_short : float;
  r_bridge : float;
  r_broken : float;
  r_leak : float;
}

let default_params =
  { r_open = 1e10; r_short = 50.0; r_bridge = 1e3; r_broken = 1e8; r_leak = 1e6 }

(* replicate the default switch's grounded terminal capacitors when a
   structural defect replaces the six-FET switch *)
let terminal_caps ckt (site : Lattice_circuit.site) =
  if site.Lattice_circuit.terminal_cap > 0.0 then
    List.iter
      (fun (suffix, n) ->
        Netlist.capacitor ckt
          (Printf.sprintf "%s.C%s" site.Lattice_circuit.name suffix)
          n Netlist.ground site.Lattice_circuit.terminal_cap)
      [
        ("n", site.Lattice_circuit.north);
        ("e", site.Lattice_circuit.east);
        ("s", site.Lattice_circuit.south);
        ("w", site.Lattice_circuit.west);
      ]

let is_structural = function
  | Stuck_open | Stuck_short | Broken_terminal _ -> true
  | Bridge _ | Gate_leak _ -> false

let inject_structural ?(params = default_params) ckt (site : Lattice_circuit.site) kind =
  let term t = Lattice_circuit.site_terminal site (as_poly t) in
  let res suffix n1 n2 ohms =
    Netlist.resistor ckt (Printf.sprintf "%s.D%s" site.Lattice_circuit.name suffix) n1 n2 ohms
  in
  match kind with
  | Stuck_open ->
    (* the switch never conducts: the six FETs are gone; only a weak
       sub-threshold leakage couples opposite terminals *)
    terminal_caps ckt site;
    res "open_ns" (term North) (term South) params.r_open;
    res "open_ew" (term East) (term West) params.r_open
  | Stuck_short ->
    (* the switch always conducts: hard resistive shorts across every
       adjacent terminal pair, gate ignored *)
    terminal_caps ckt site;
    res "short_ne" (term North) (term East) params.r_short;
    res "short_es" (term East) (term South) params.r_short;
    res "short_sw" (term South) (term West) params.r_short;
    res "short_wn" (term West) (term North) params.r_short
  | Broken_terminal t ->
    (* the switch is intact but one terminal reaches the lattice only
       through a high-resistance crack: reroute that terminal to a fresh
       internal node and bridge it to the real node with r_broken *)
    let broken =
      Netlist.fresh_node ckt
        (Printf.sprintf "%s.broken_%s" site.Lattice_circuit.name (terminal_name t))
    in
    let pick want real = if t = want then broken else real in
    Fts.instantiate ckt ~name:site.Lattice_circuit.name
      ~north:(pick North site.Lattice_circuit.north)
      ~east:(pick East site.Lattice_circuit.east)
      ~south:(pick South site.Lattice_circuit.south)
      ~west:(pick West site.Lattice_circuit.west)
      ~gate:site.Lattice_circuit.gate ~terminal_cap:site.Lattice_circuit.terminal_cap
      ~gate_cap:site.Lattice_circuit.gate_cap site.Lattice_circuit.types;
    res (Printf.sprintf "broken_%s" (terminal_name t)) broken (term t) params.r_broken
  | Bridge _ | Gate_leak _ -> invalid_arg "Defects.inject_structural: not a structural kind"

let hook ?(params = default_params) defects : Lattice_circuit.site_hook =
 fun ckt site ->
  let here =
    List.filter
      (fun d -> d.row = site.Lattice_circuit.row && d.col = site.Lattice_circuit.col)
      defects
  in
  if here = [] then false
  else begin
    let term t = Lattice_circuit.site_terminal site (as_poly t) in
    (* additive defects keep the switch and just add parasitics *)
    List.iteri
      (fun i d ->
        match d.kind with
        | Bridge (a, b) ->
          Netlist.resistor ckt
            (Printf.sprintf "%s.Dbridge%d" site.Lattice_circuit.name i)
            (term a) (term b) params.r_bridge
        | Gate_leak t ->
          Netlist.resistor ckt
            (Printf.sprintf "%s.Dleak%d" site.Lattice_circuit.name i)
            site.Lattice_circuit.gate (term t) params.r_leak
        | Stuck_open | Stuck_short | Broken_terminal _ -> ())
      here;
    (* at most one structural defect replaces the switch; the first wins *)
    match List.find_opt (fun d -> is_structural d.kind) here with
    | None -> false
    | Some d ->
      inject_structural ~params ckt site d.kind;
      true
  end

let build ?config ?params ?types_of_site ~defects grid ~stimulus =
  Lattice_circuit.build ?config ?types_of_site ~site_hook:(hook ?params defects) grid ~stimulus

type kind_class = Opens | Shorts | Bridges | Broken_terminals | Gate_leaks

let all_classes = [ Opens; Shorts; Bridges; Broken_terminals; Gate_leaks ]

let kinds_of_class = function
  | Opens -> [ Stuck_open ]
  | Shorts -> [ Stuck_short ]
  | Bridges -> [ Bridge (North, East); Bridge (East, South); Bridge (South, West); Bridge (West, North) ]
  | Broken_terminals -> [ Broken_terminal North; Broken_terminal East; Broken_terminal South; Broken_terminal West ]
  | Gate_leaks -> [ Gate_leak North; Gate_leak East; Gate_leak South; Gate_leak West ]

let single_defects ?(classes = all_classes) grid =
  let kinds = List.concat_map kinds_of_class classes in
  List.concat_map
    (fun row ->
      List.concat_map
        (fun col -> List.map (fun kind -> { row; col; kind }) kinds)
        (List.init grid.Lattice_core.Grid.cols Fun.id))
    (List.init grid.Lattice_core.Grid.rows Fun.id)
