(** Fixed-step transient analysis.

    The initial condition is the DC operating point with sources at t = 0.
    Each step solves the nonlinear MNA system with capacitor companion
    models; the first step after DC always uses backward Euler (no history
    for the trapezoidal rule), subsequent steps use the selected
    integrator. On a Newton failure the step is retried with halved step
    size (up to [max_step_halvings]). *)

type integrator = Backward_euler | Trapezoidal

type options = {
  integrator : integrator;
  dc : Dcop.options;
  max_step_halvings : int;  (** default 8 *)
}

val default_options : options

type result = {
  times : float array;
  node_names : string array;  (** recorded nodes, in request order *)
  voltages : float array array;  (** [voltages.(k)] is node [k]'s samples *)
  current_names : string array;  (** recorded voltage-source names *)
  currents : float array array;
      (** branch currents, positive into the source's + terminal *)
  newton_iterations_total : int;
      (** Newton iterations spent across every step, including iterations
          inside attempts that failed and were retried at a halved step. *)
}

(** [signal result name] fetches a recorded node waveform. Raises
    [Invalid_argument] naming the unknown signal and the recorded names. *)
val signal : result -> string -> float array

(** [branch_current result name] fetches a recorded source current. Raises
    [Invalid_argument] naming the unknown source and the recorded names. *)
val branch_current : result -> string -> float array

(** [run ?options netlist ~h ~t_stop ~record ?record_currents ()] simulates
    from 0 to [t_stop] with step [h], recording the named nodes and the
    branch currents of the named voltage sources. *)
val run :
  ?options:options ->
  Netlist.t ->
  h:float ->
  t_stop:float ->
  record:string list ->
  ?record_currents:string list ->
  unit ->
  result
