(** Fixed-step transient analysis.

    The initial condition is the DC operating point with sources at t = 0.
    Each step solves the nonlinear MNA system with capacitor companion
    models; the first step after DC always uses backward Euler (no history
    for the trapezoidal rule), subsequent steps use the selected
    integrator. On a Newton failure the step is retried with halved step
    size (up to [max_step_halvings]).

    {!run_diag} returns a structured outcome carrying step statistics and,
    on failure, a {!Dcop.failure} diagnostic; the legacy {!run} is a thin
    wrapper raising [Dcop.Convergence_failure]. *)

type integrator = Backward_euler | Trapezoidal

type options = {
  integrator : integrator;
  dc : Dcop.options;
  max_step_halvings : int;  (** default 8 *)
}

val default_options : options

type step_stats = {
  dc_strategy : Dcop.strategy option;
      (** winning fallback strategy of the initial operating point
          ([None] only when the OP itself failed) *)
  steps_taken : int;  (** accepted solver steps, halved micro-steps included *)
  halvings : int;  (** step-halving events across the run *)
  min_dt : float;  (** smallest step actually taken *)
  halving_events : (float * float) list;
      (** [(t, dt)] of every step whose Newton solve failed and was
          split, in chronological order — one entry per halving, so its
          length equals [halvings] *)
}

type result = {
  times : float array;
  node_names : string array;  (** recorded nodes, in request order *)
  voltages : float array array;  (** [voltages.(k)] is node [k]'s samples *)
  current_names : string array;  (** recorded voltage-source names *)
  currents : float array array;
      (** branch currents, positive into the source's + terminal *)
  newton_iterations_total : int;
      (** Newton iterations spent across every step, including iterations
          inside attempts that failed and were retried at a halved step. *)
  stats : step_stats;
}

(** Why and where a run stopped: the failing interval and the structured
    DC diagnostic (residual norm, worst nodes) of the step that exhausted
    its halvings. *)
type failure = {
  at_time : float;  (** start of the step that could not be taken *)
  dt : float;  (** its (already halved) step size *)
  newton_iterations_total : int;  (** iterations spent before giving up *)
  stats : step_stats;
  dc_failure : Dcop.failure;
}

(** [signal result name] fetches a recorded node waveform. Raises
    [Invalid_argument] naming the unknown signal and the recorded names. *)
val signal : result -> string -> float array

(** [branch_current result name] fetches a recorded source current. Raises
    [Invalid_argument] naming the unknown source and the recorded names. *)
val branch_current : result -> string -> float array

val sample_times : h:float -> t_stop:float -> float array
(** The time grid [run] simulates: uniform steps of [h], with the final
    sample pinned to exactly [t_stop]. When [t_stop] is not an integer
    multiple of [h] (beyond 1e-6 relative tolerance) the grid gains one
    final {e partial} step instead of silently rounding the duration. *)

(** [run_diag ?options ?cancel netlist ~h ~t_stop ~record
    ?record_currents ()] simulates from 0 to [t_stop] with step [h] and
    never raises on convergence trouble: [Error failure] pinpoints the
    failing step and carries the residual diagnostics. [cancel] is
    checked at every step (and every Newton iteration inside it); a
    fired token raises {!Cancel.Cancelled} — a deadline aborts the run
    instead of being mistaken for a convergence failure. *)
val run_diag :
  ?options:options ->
  ?cancel:Cancel.t ->
  Netlist.t ->
  h:float ->
  t_stop:float ->
  record:string list ->
  ?record_currents:string list ->
  unit ->
  (result, failure) Stdlib.result

(** [run ?options netlist ~h ~t_stop ~record ?record_currents ()] is the
    legacy wrapper over {!run_diag}: returns the result alone and raises
    [Dcop.Convergence_failure] with the rendered diagnostic on failure. *)
val run :
  ?options:options ->
  ?cancel:Cancel.t ->
  Netlist.t ->
  h:float ->
  t_stop:float ->
  record:string list ->
  ?record_currents:string list ->
  unit ->
  result
