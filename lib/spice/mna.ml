module Level1 = Lattice_mosfet.Level1
module Matrix = Lattice_numerics.Matrix

type cap_companion = { geq : float array; ieq : float array }

let cap_count netlist =
  List.fold_left
    (fun acc e -> match e with Netlist.Capacitor _ -> acc + 1 | _ -> acc)
    0 (Netlist.elements netlist)

let voltage x node = if node = Netlist.ground then 0.0 else x.(Netlist.node_index node)

let cap_voltages netlist x =
  let out = ref [] in
  List.iter
    (function
      | Netlist.Capacitor { n1; n2; _ } -> out := (voltage x n1 -. voltage x n2) :: !out
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> ())
    (Netlist.elements netlist);
  Array.of_list (List.rev !out)

(* conductance stamp between two nodes *)
let stamp_conductance a n1 n2 g =
  let i1 = Netlist.node_index n1 and i2 = Netlist.node_index n2 in
  if i1 >= 0 then Matrix.add_to a i1 i1 g;
  if i2 >= 0 then Matrix.add_to a i2 i2 g;
  if i1 >= 0 && i2 >= 0 then begin
    Matrix.add_to a i1 i2 (-.g);
    Matrix.add_to a i2 i1 (-.g)
  end

(* current [i] flowing out of node [n1] into node [n2] through a source *)
let stamp_current b n1 n2 i =
  let i1 = Netlist.node_index n1 and i2 = Netlist.node_index n2 in
  if i1 >= 0 then b.(i1) <- b.(i1) -. i;
  if i2 >= 0 then b.(i2) <- b.(i2) +. i

(* Scratch for the linearized companion model of one MOSFET. All-float
   (inputs AND outputs) so every operand crosses the call as an unboxed
   record field rather than a boxed float argument: the sparse stamp plan
   reuses one scratch across its whole Newton loop without allocating. *)
type fet_lin = {
  mutable vd : float;
  mutable vg : float;
  mutable vs : float;
  mutable gm : float;
  mutable gds : float;
  mutable ieq : float;
}

let fet_lin_create () = { vd = 0.0; vg = 0.0; vs = 0.0; gm = 0.0; gds = 0.0; ieq = 0.0 }

(* Linearize the (source/drain-normalized) drain current at the terminal
   voltages [out.vd], [out.vg], [out.vs]: i_dn = gm vgs' + gds vds' + ieq.
   Shared by the dense stamp and the compiled stamp plan so both engines
   produce identical device stamps. *)
let linearize_fet (w : Level1.workspace) (out : fet_lin) (m : Lattice_mosfet.Model.t) =
  let vd = out.vd and vg = out.vg and vs = out.vs in
  let v_dn = if vd >= vs then vd else vs and v_sn = if vd >= vs then vs else vd in
  let vgs = vg -. v_sn and vds = v_dn -. v_sn in
  w.Level1.w_vgs <- vgs;
  w.Level1.w_vds <- vds;
  Lattice_mosfet.Model.linearize w m;
  let gm = w.Level1.w_gm and gds = w.Level1.w_gds in
  out.gm <- gm;
  out.gds <- gds;
  out.ieq <- w.Level1.w_ids -. (gm *. vgs) -. (gds *. vds)

let stamp_mosfet a b x ~gmin (m : Lattice_mosfet.Model.t) ~drain ~gate ~source =
  let vd = voltage x drain and vg = voltage x gate and vs = voltage x source in
  (* source/drain swap: the terminal at the lower potential acts as source *)
  let reversed = vd < vs in
  let dn, sn = if reversed then (source, drain) else (drain, source) in
  let lin = fet_lin_create () in
  lin.vd <- vd;
  lin.vg <- vg;
  lin.vs <- vs;
  linearize_fet (Level1.workspace_create ()) lin m;
  let gm = lin.gm and gds = lin.gds and ieq = lin.ieq in
  let idn = Netlist.node_index dn
  and isn = Netlist.node_index sn
  and ig = Netlist.node_index gate in
  let add r c v = if r >= 0 && c >= 0 then Matrix.add_to a r c v in
  if idn >= 0 then begin
    add idn ig gm;
    add idn idn gds;
    add idn isn (-.(gm +. gds));
    b.(idn) <- b.(idn) -. ieq
  end;
  if isn >= 0 then begin
    add isn ig (-.gm);
    add isn idn (-.gds);
    add isn isn (gm +. gds);
    b.(isn) <- b.(isn) +. ieq
  end;
  stamp_conductance a drain source gmin

let stamp netlist ~x ~time ~gmin ~gshunt ~source_scale ~caps =
  let n = Netlist.unknowns netlist in
  let a = Matrix.create n n in
  let b = Array.make n 0.0 in
  if gshunt > 0.0 then
    for i = 0 to Netlist.num_nodes netlist - 1 do
      Matrix.add_to a i i gshunt
    done;
  let cap_ordinal = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { n1; n2; ohms; _ } -> stamp_conductance a n1 n2 (1.0 /. ohms)
      | Netlist.Capacitor { n1; n2; _ } -> (
        let k = !cap_ordinal in
        incr cap_ordinal;
        match caps with
        | None -> ()
        | Some { geq; ieq } ->
          stamp_conductance a n1 n2 geq.(k);
          stamp_current b n1 n2 ieq.(k))
      | Netlist.Vsource { npos; nneg; wave; index; _ } ->
        let row = Netlist.vsource_row netlist index in
        let ip = Netlist.node_index npos and ineg = Netlist.node_index nneg in
        if ip >= 0 then begin
          Matrix.add_to a ip row 1.0;
          Matrix.add_to a row ip 1.0
        end;
        if ineg >= 0 then begin
          Matrix.add_to a ineg row (-1.0);
          Matrix.add_to a row ineg (-1.0)
        end;
        b.(row) <- b.(row) +. (source_scale *. Source.value wave time)
      | Netlist.Isource { npos; nneg; wave; _ } ->
        stamp_current b npos nneg (source_scale *. Source.value wave time)
      | Netlist.Mosfet { drain; gate; source; model; _ } ->
        stamp_mosfet a b x ~gmin model ~drain ~gate ~source)
    (Netlist.elements netlist);
  (a, b)
