type reason = Deadline | Requested

let reason_name = function Deadline -> "deadline" | Requested -> "requested"

exception Cancelled of reason

type t = {
  deadline_ns : int;  (* absolute monotonic ns; max_int = no deadline *)
  flag : bool Atomic.t;
  parent : t option;
}

let none = { deadline_ns = max_int; flag = Atomic.make false; parent = None }

let create ?(deadline_ns = max_int) ?parent () =
  let parent = match parent with Some p when p == none -> None | p -> p in
  { deadline_ns; flag = Atomic.make false; parent }

let with_deadline ?parent ~seconds () =
  let now = Lattice_obs.Clock.now_ns () in
  let delta_ns =
    if seconds >= float_of_int (max_int - now) /. 1e9 then max_int - now
    else int_of_float (Float.max 0.0 (seconds *. 1e9))
  in
  create ~deadline_ns:(now + delta_ns) ?parent ()

let cancel t = if t != none then Atomic.set t.flag true

let rec state t =
  if t == none then None
  else if Atomic.get t.flag then Some Requested
  else if t.deadline_ns <> max_int && Lattice_obs.Clock.now_ns () >= t.deadline_ns then
    Some Deadline
  else match t.parent with None -> None | Some p -> state p

let is_cancelled t = state t <> None

let check t = match state t with None -> () | Some r -> raise (Cancelled r)

let deadline_ns t = if t.deadline_ns = max_int then None else Some t.deadline_ns
