(** A netlist compiled into a sparse MNA stamping plan.

    [compile] walks the element list {e once}, resolves every node to its
    MNA row/column, reserves every matrix entry any element can ever
    touch in a frozen {!Lattice_numerics.Sparse.pattern}, and splits the
    stamps into three tiers:

    - {b constant} (resistor conductances, voltage-source incidence
      entries) — accumulated into a cached value array at compile time;
    - {b linear-per-solve} (gmin, the continuation shunt, capacitor
      companion conductances, source values at the solve's timepoint) —
      folded over the constant tier once per Newton {e solve} by
      {!set_linear};
    - {b nonlinear} (MOSFET companion models) — restamped on every
      Newton {e iteration} by {!assemble}, which just blits the cached
      linear tier and updates the MOSFET slots.

    All buffers (matrix values, RHS, iterate vectors, the sparse LU) are
    owned by the plan and reused, so {!assemble} + {!factor_and_solve}
    allocate nothing after the first factorization. A plan is therefore
    not reentrant: one Newton solve at a time per plan. *)

type t

val compile : Netlist.t -> t
(** Compile the netlist's current element list. The plan does not track
    later mutations of the netlist. *)

val n : t -> int
(** Number of MNA unknowns. *)

val matrix : t -> Lattice_numerics.Sparse.t
(** The plan's matrix buffer (valid after {!assemble}); exposed for the
    AC sweep, which reads the assembled conductance pattern. *)

val rhs : t -> float array
(** The plan's RHS buffer: filled by {!assemble}, overwritten with the
    solution by {!factor_and_solve}. *)

val x_buffer : t -> float array
(** Plan-owned iterate buffer for allocation-free Newton loops. *)

val x_new_buffer : t -> float array

val set_linear :
  t ->
  time:float ->
  gmin:float ->
  gshunt:float ->
  source_scale:float ->
  caps:Mna.cap_companion option ->
  unit
(** Rebuild the cached linear tier (matrix values and RHS) for one
    Newton solve. Mirrors the semantics of {!Mna.stamp} for everything
    except MOSFETs. Allocation-free. *)

val assemble : t -> x:float array -> unit
(** Load the cached linear tier into the matrix/RHS buffers and stamp
    the MOSFET companion models linearized at [x]. Allocation-free. *)

val factor_and_solve : t -> unit
(** Factor the assembled matrix and overwrite {!rhs} with the solution.
    The first call runs the full symbolic analysis; later calls reuse
    the elimination pattern (numeric-only refactorization) and fall back
    to a fresh analysis if the frozen pivot order goes stale. Raises
    [Lattice_numerics.Sparse.Singular] if the matrix is singular. *)

val cap_voltages_into : t -> x:float array -> float array -> unit
(** Per-capacitor branch voltages (netlist order) written into a
    caller-supplied array, without walking the element list. *)

val lu_stats : t -> (int * int) option
(** [(nnz L, nnz U)] of the current factorization, if any. *)
