let suffixes =
  [ ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6); ("m", 1e-3);
    ("k", 1e3); ("g", 1e9); ("t", 1e12) ]

let parse s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" then invalid_arg "Units.parse: empty";
  let matches suffix = String.length s > String.length suffix
    && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix in
  let rec find = function
    | [] -> (s, 1.0)
    | (suffix, mult) :: rest ->
      if matches suffix then (String.sub s 0 (String.length s - String.length suffix), mult)
      else find rest
  in
  let body, mult = find suffixes in
  match float_of_string_opt body with
  | Some x -> x *. mult
  | None -> invalid_arg ("Units.parse: malformed value " ^ s)

(* SPICE value syntax: a float literal optionally followed by an
   engineering suffix and then arbitrary trailing unit letters ("10pF",
   "2ns").  The scale is decided by the FIRST letters after the number:
   "meg" is 1e6, "mil" is 25.4e-6, any other leading letter is looked up
   in the single-letter table ("m" is 1e-3 -- the classic m-vs-meg trap)
   and unknown letters mean scale 1 (a bare unit like "10V").  We scan
   the float prefix by hand rather than trusting [float_of_string] so
   that "nan", "inf" and hex literals are rejected. *)
let parse_spice s =
  let s = String.trim s in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  if n = 0 then None
  else begin
    let i = ref 0 in
    if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
    let int_start = !i in
    while !i < n && is_digit s.[!i] do incr i done;
    let int_digits = !i - int_start in
    let frac_digits = ref 0 in
    if !i < n && s.[!i] = '.' then begin
      incr i;
      let fs = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      frac_digits := !i - fs
    end;
    if int_digits = 0 && !frac_digits = 0 then None
    else begin
      (* Optional exponent; only consumed when a digit actually follows,
         so "2n" keeps its 'n' for the suffix pass. *)
      let before_exp = !i in
      (if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
         let j = ref (!i + 1) in
         if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
         let ds = !j in
         while !j < n && is_digit s.[!j] do incr j done;
         if !j > ds then i := !j else i := before_exp
       end);
      match float_of_string_opt (String.sub s 0 !i) with
      | None -> None
      | Some v ->
        let rest = String.lowercase_ascii (String.sub s !i (n - !i)) in
        let all_letters = String.for_all (fun c -> c >= 'a' && c <= 'z') rest in
        if rest = "" then if Float.is_finite v then Some v else None
        else if not all_letters then None
        else begin
          let starts p =
            String.length rest >= String.length p
            && String.sub rest 0 (String.length p) = p
          in
          let scale =
            if starts "meg" then 1e6
            else if starts "mil" then 25.4e-6
            else
              match rest.[0] with
              | 'f' -> 1e-15 | 'p' -> 1e-12 | 'n' -> 1e-9 | 'u' -> 1e-6
              | 'm' -> 1e-3  | 'k' -> 1e3   | 'g' -> 1e9  | 't' -> 1e12
              | _ -> 1.0
          in
          let r = v *. scale in
          if Float.is_finite r then Some r else None
        end
    end
  end

let print_spice x =
  if not (Float.is_finite x) then Printf.sprintf "%.17g" x
  else if x = 0.0 && 1.0 /. x > 0.0 then "0"
  else begin
    let bits = Int64.bits_of_float x in
    let exact s =
      match parse_spice s with
      | Some y -> Int64.equal (Int64.bits_of_float y) bits
      | None -> false
    in
    (* Candidates in preference order: plain decimal first, then suffixed
       forms from the largest scale down.  Each is kept only if it
       reparses to the identical bit pattern; a strictly shorter later
       candidate beats an earlier one, ties keep the earlier, so the
       result is deterministic. *)
    let best = ref None in
    let consider s =
      if exact s then
        match !best with
        | Some b when String.length b <= String.length s -> ()
        | _ -> best := Some s
    in
    let shortest_for prefix_v suffix =
      (* Rendering length is not monotone in precision ("%.1g" of
         9.999999999999998 is "1e+01", "%.2g" is "10"), so every
         precision competes and [consider] keeps the shortest. *)
      for p = 1 to 17 do
        consider (Printf.sprintf "%.*g%s" p prefix_v suffix)
      done
    in
    shortest_for x "";
    List.iter
      (fun (suffix, scale) ->
        let v = x /. scale in
        if Float.is_finite v && v <> 0.0 then shortest_for v suffix)
      [ ("t", 1e12); ("g", 1e9); ("meg", 1e6); ("k", 1e3); ("m", 1e-3);
        ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ];
    match !best with
    | Some s -> s
    | None -> Printf.sprintf "%.17g" x
  end

let format x =
  if x = 0.0 then "0"
  else begin
    let sign = if x < 0.0 then "-" else "" in
    let mag = Float.abs x in
    let scales =
      [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1.0, ""); (1e-3, "m");
        (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]
    in
    let rec pick = function
      | [] -> (1e-15, "f")
      | (scale, _) :: rest when mag < scale && rest <> [] -> pick rest
      | (scale, suffix) :: _ -> (scale, suffix)
    in
    let scale, suffix = pick scales in
    let v = mag /. scale in
    let body =
      if Float.abs (v -. Float.round v) < 1e-9 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v
    in
    sign ^ body ^ suffix
  end
