module Grid = Lattice_core.Grid

type config = {
  vdd : float;
  pullup_ohms : float;
  output_cap : float;
  terminal_cap : float;
  gate_cap : float;
  types : Fts.mosfet_types;
}

let default_config =
  {
    vdd = 1.2;
    pullup_ohms = 500e3;
    output_cap = 10e-15;
    terminal_cap = Fts.default_terminal_cap;
    gate_cap = 0.0;
    types = Fts.default_types;
  }

type t = {
  netlist : Netlist.t;
  output_node : string;
  input_nodes : string array;
  config : config;
}

type site = {
  row : int;
  col : int;
  name : string;
  north : Netlist.node;
  east : Netlist.node;
  south : Netlist.node;
  west : Netlist.node;
  gate : Netlist.node;
  types : Fts.mosfet_types;
  terminal_cap : float;
  gate_cap : float;
}

type site_hook = Netlist.t -> site -> bool

let site_terminal site = function
  | `North -> site.north
  | `East -> site.east
  | `South -> site.south
  | `West -> site.west

let input_node_name v = Printf.sprintf "in_%d" v
let input_bar_node_name v = Printf.sprintf "in_%d_bar" v

let complement ~vdd wave =
  match wave with
  | Source.Dc v -> Source.Dc (vdd -. v)
  | Source.Pulse ({ v1; v2; _ } as p) -> Source.Pulse { p with v1 = vdd -. v1; v2 = vdd -. v2 }
  | Source.Pwl points -> Source.Pwl (List.map (fun (t, v) -> (t, vdd -. v)) points)
  | Source.Sin ({ offset; amplitude; _ } as s) ->
    Source.Sin { s with offset = vdd -. offset; amplitude = -.amplitude }

let exhaustive_stimulus ~vdd ~bit_time v = Source.bit_clock ~vdd ~bit_time ~bit_index:v ()

(* add the input drivers a set of grids needs (positive and complemented
   phases created on demand) *)
let add_input_drivers ckt config grids ~stimulus =
  let nvars = List.fold_left (fun acc g -> Int.max acc (Grid.nvars g)) 0 grids in
  let uses_pos = Array.make (Int.max 1 nvars) false in
  let uses_neg = Array.make (Int.max 1 nvars) false in
  List.iter
    (fun grid ->
      Array.iter
        (function
          | Grid.Lit (v, true) -> uses_pos.(v) <- true
          | Grid.Lit (v, false) -> uses_neg.(v) <- true
          | Grid.Const _ -> ())
        grid.Grid.entries)
    grids;
  for v = 0 to nvars - 1 do
    if uses_pos.(v) then begin
      let n = Netlist.node ckt (input_node_name v) in
      Netlist.vsource ckt (Printf.sprintf "Vin%d" v) n Netlist.ground (stimulus v)
    end;
    if uses_neg.(v) then begin
      let n = Netlist.node ckt (input_bar_node_name v) in
      Netlist.vsource ckt
        (Printf.sprintf "Vin%d_bar" v)
        n Netlist.ground
        (complement ~vdd:config.vdd (stimulus v))
    end
  done;
  nvars

(* plate and inter-switch wiring of one lattice between [top] and [bottom]:
   horizontal boundary h(r, c) sits between row r-1 and row r at column c,
   with h(0, c) the top plate and h(rows, c) the bottom plate; vertical
   boundary v(r, c) between columns c-1 and c at row r; v(r, 0) and
   v(r, cols) dangle. *)
let instantiate_lattice ?types_of_site ?site_hook ckt (config : config) grid ~prefix ~top
    ~bottom ~vdd_node =
  let rows = grid.Grid.rows and cols = grid.Grid.cols in
  let types_at r c =
    match types_of_site with None -> config.types | Some f -> f r c
  in
  let hnode r c =
    if r = 0 then top
    else if r = rows then bottom
    else Netlist.node ckt (Printf.sprintf "%s.h_%d_%d" prefix r c)
  in
  let vnode r c = Netlist.node ckt (Printf.sprintf "%s.v_%d_%d" prefix r c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let gate =
        match Grid.entry grid r c with
        | Grid.Const true -> vdd_node
        | Grid.Const false -> Netlist.ground
        | Grid.Lit (v, true) -> Netlist.node ckt (input_node_name v)
        | Grid.Lit (v, false) -> Netlist.node ckt (input_bar_node_name v)
      in
      let site =
        {
          row = r;
          col = c;
          name = Printf.sprintf "%s.X_%d_%d" prefix r c;
          north = hnode r c;
          east = vnode r (c + 1);
          south = hnode (r + 1) c;
          west = vnode r c;
          gate;
          types = types_at r c;
          terminal_cap = config.terminal_cap;
          gate_cap = config.gate_cap;
        }
      in
      let handled = match site_hook with None -> false | Some hook -> hook ckt site in
      if not handled then
        Fts.instantiate ckt ~name:site.name ~north:site.north ~east:site.east ~south:site.south
          ~west:site.west ~gate:site.gate ~terminal_cap:site.terminal_cap
          ~gate_cap:site.gate_cap site.types
    done
  done

let build ?(config = default_config) ?types_of_site ?site_hook grid ~stimulus =
  let ckt = Netlist.create () in
  let vdd_node = Netlist.node ckt "vdd" in
  Netlist.vsource ckt "VDD" vdd_node Netlist.ground (Source.Dc config.vdd);
  let out = Netlist.node ckt "out" in
  Netlist.resistor ckt "Rpull" vdd_node out config.pullup_ohms;
  Netlist.capacitor ckt "Cout" out Netlist.ground config.output_cap;
  let nvars = add_input_drivers ckt config [ grid ] ~stimulus in
  instantiate_lattice ?types_of_site ?site_hook ckt config grid ~prefix:"pd" ~top:out
    ~bottom:Netlist.ground ~vdd_node;
  { netlist = ckt; output_node = "out"; input_nodes = Array.init nvars input_node_name; config }

let build_complementary ?(config = default_config) ?site_hook ~pull_up ~pull_down ~stimulus ()
    =
  let ckt = Netlist.create () in
  let vdd_node = Netlist.node ckt "vdd" in
  Netlist.vsource ckt "VDD" vdd_node Netlist.ground (Source.Dc config.vdd);
  let out = Netlist.node ckt "out" in
  Netlist.capacitor ckt "Cout" out Netlist.ground config.output_cap;
  let nvars = add_input_drivers ckt config [ pull_up; pull_down ] ~stimulus in
  (* pull-up lattice between VDD and the output, pull-down between the
     output and ground *)
  instantiate_lattice ?site_hook ckt config pull_up ~prefix:"pu" ~top:vdd_node ~bottom:out
    ~vdd_node;
  instantiate_lattice ?site_hook ckt config pull_down ~prefix:"pd" ~top:out
    ~bottom:Netlist.ground ~vdd_node;
  { netlist = ckt; output_node = "out"; input_nodes = Array.init nvars input_node_name; config }
