module Sparse = Lattice_numerics.Sparse
module Model = Lattice_mosfet.Model
module Level1 = Lattice_mosfet.Level1

(* One compiled MOSFET: node indices (-1 = ground) and direct slots into
   the sparse value array for every entry either orientation of the
   companion stamp can touch (-1 when the row or column is ground). The
   same four pairwise slots carry the gmin drain-source conductance. *)
type fet = {
  f_model : Model.t;
  f_d : int;
  f_g : int;
  f_s : int;
  s_dd : int;
  s_ds : int;
  s_sd : int;
  s_ss : int;
  s_dg : int;
  s_sg : int;
}

type t = {
  n : int;
  nnodes : int;
  pattern : Sparse.pattern;
  (* constant tier: resistors + voltage-source incidence, summed once *)
  static_vals : float array;
  diag_slots : int array; (* slot of (i, i) for every node row (gshunt) *)
  fets : fet array;
  (* capacitors, netlist order (matches Mna.cap_companion indexing) *)
  cap_i1 : int array;
  cap_i2 : int array;
  cap_s11 : int array;
  cap_s22 : int array;
  cap_s12 : int array;
  cap_s21 : int array;
  (* independent sources, for the per-solve RHS *)
  vs_rows : int array;
  vs_waves : Source.t array;
  is_pos : int array;
  is_neg : int array;
  is_waves : Source.t array;
  (* workspace *)
  a : Sparse.t;
  a0 : float array; (* cached linear tier of the matrix values *)
  b0 : float array; (* cached linear tier of the RHS *)
  rhs : float array;
  x : float array;
  x_new : float array;
  lin : Mna.fet_lin;
  ws : Level1.workspace;
  mutable lu : Sparse.lu option;
}

let n t = t.n
let matrix t = t.a
let rhs t = t.rhs
let x_buffer t = t.x
let x_new_buffer t = t.x_new

let compile netlist =
  let n = Netlist.unknowns netlist in
  let nnodes = Netlist.num_nodes netlist in
  let elements = Netlist.elements netlist in
  let b = Sparse.Builder.create n in
  (* node diagonals: the continuation-shunt fallback stamps all of them *)
  for i = 0 to nnodes - 1 do
    Sparse.Builder.add b i i
  done;
  let reserve_conductance i1 i2 =
    if i1 >= 0 then Sparse.Builder.add b i1 i1;
    if i2 >= 0 then Sparse.Builder.add b i2 i2;
    if i1 >= 0 && i2 >= 0 then begin
      Sparse.Builder.add b i1 i2;
      Sparse.Builder.add b i2 i1
    end
  in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { n1; n2; _ } | Netlist.Capacitor { n1; n2; _ } ->
        reserve_conductance (Netlist.node_index n1) (Netlist.node_index n2)
      | Netlist.Vsource { npos; nneg; index; _ } ->
        let row = Netlist.vsource_row netlist index in
        let ip = Netlist.node_index npos and ineg = Netlist.node_index nneg in
        if ip >= 0 then begin
          Sparse.Builder.add b ip row;
          Sparse.Builder.add b row ip
        end;
        if ineg >= 0 then begin
          Sparse.Builder.add b ineg row;
          Sparse.Builder.add b row ineg
        end
      | Netlist.Isource _ -> ()
      | Netlist.Mosfet { drain; gate; source; _ } ->
        let d = Netlist.node_index drain
        and g = Netlist.node_index gate
        and s = Netlist.node_index source in
        reserve_conductance d s;
        if d >= 0 && g >= 0 then Sparse.Builder.add b d g;
        if s >= 0 && g >= 0 then Sparse.Builder.add b s g)
    elements;
  let pattern = Sparse.Builder.compile b in
  let slot r c = if r >= 0 && c >= 0 then Sparse.slot pattern ~row:r ~col:c else -1 in
  let static_vals = Array.make (Sparse.nnz pattern) 0.0 in
  let stamp_static_conductance i1 i2 g =
    if i1 >= 0 then begin
      let s = slot i1 i1 in
      static_vals.(s) <- static_vals.(s) +. g
    end;
    if i2 >= 0 then begin
      let s = slot i2 i2 in
      static_vals.(s) <- static_vals.(s) +. g
    end;
    if i1 >= 0 && i2 >= 0 then begin
      let s = slot i1 i2 in
      static_vals.(s) <- static_vals.(s) -. g;
      let s = slot i2 i1 in
      static_vals.(s) <- static_vals.(s) -. g
    end
  in
  let fets = ref [] in
  let caps = ref [] in
  let vsrcs = ref [] in
  let isrcs = ref [] in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { n1; n2; ohms; _ } ->
        stamp_static_conductance (Netlist.node_index n1) (Netlist.node_index n2) (1.0 /. ohms)
      | Netlist.Capacitor { n1; n2; _ } ->
        let i1 = Netlist.node_index n1 and i2 = Netlist.node_index n2 in
        caps := (i1, i2, slot i1 i1, slot i2 i2, slot i1 i2, slot i2 i1) :: !caps
      | Netlist.Vsource { npos; nneg; wave; index; _ } ->
        let row = Netlist.vsource_row netlist index in
        let ip = Netlist.node_index npos and ineg = Netlist.node_index nneg in
        if ip >= 0 then begin
          static_vals.(slot ip row) <- static_vals.(slot ip row) +. 1.0;
          static_vals.(slot row ip) <- static_vals.(slot row ip) +. 1.0
        end;
        if ineg >= 0 then begin
          static_vals.(slot ineg row) <- static_vals.(slot ineg row) -. 1.0;
          static_vals.(slot row ineg) <- static_vals.(slot row ineg) -. 1.0
        end;
        vsrcs := (row, wave) :: !vsrcs
      | Netlist.Isource { npos; nneg; wave; _ } ->
        isrcs := (Netlist.node_index npos, Netlist.node_index nneg, wave) :: !isrcs
      | Netlist.Mosfet { drain; gate; source; model; _ } ->
        let d = Netlist.node_index drain
        and g = Netlist.node_index gate
        and s = Netlist.node_index source in
        fets :=
          {
            f_model = model;
            f_d = d;
            f_g = g;
            f_s = s;
            s_dd = slot d d;
            s_ds = slot d s;
            s_sd = slot s d;
            s_ss = slot s s;
            s_dg = slot d g;
            s_sg = slot s g;
          }
          :: !fets)
    elements;
  let caps = Array.of_list (List.rev !caps) in
  let vsrcs = Array.of_list (List.rev !vsrcs) in
  let isrcs = Array.of_list (List.rev !isrcs) in
  {
    n;
    nnodes;
    pattern;
    static_vals;
    diag_slots = Array.init nnodes (fun i -> slot i i);
    fets = Array.of_list (List.rev !fets);
    cap_i1 = Array.map (fun (i1, _, _, _, _, _) -> i1) caps;
    cap_i2 = Array.map (fun (_, i2, _, _, _, _) -> i2) caps;
    cap_s11 = Array.map (fun (_, _, s11, _, _, _) -> s11) caps;
    cap_s22 = Array.map (fun (_, _, _, s22, _, _) -> s22) caps;
    cap_s12 = Array.map (fun (_, _, _, _, s12, _) -> s12) caps;
    cap_s21 = Array.map (fun (_, _, _, _, _, s21) -> s21) caps;
    vs_rows = Array.map fst vsrcs;
    vs_waves = Array.map snd vsrcs;
    is_pos = Array.map (fun (p, _, _) -> p) isrcs;
    is_neg = Array.map (fun (_, q, _) -> q) isrcs;
    is_waves = Array.map (fun (_, _, w) -> w) isrcs;
    a = Sparse.create pattern;
    a0 = Array.make (Sparse.nnz pattern) 0.0;
    b0 = Array.make n 0.0;
    rhs = Array.make n 0.0;
    x = Array.make n 0.0;
    x_new = Array.make n 0.0;
    lin = Mna.fet_lin_create ();
    ws = Level1.workspace_create ();
    lu = None;
  }

let set_linear t ~time ~gmin ~gshunt ~source_scale ~caps =
  let a0 = t.a0 and b0 = t.b0 in
  Array.blit t.static_vals 0 a0 0 (Array.length a0);
  Array.fill b0 0 t.n 0.0;
  if gshunt > 0.0 then
    for i = 0 to t.nnodes - 1 do
      let s = t.diag_slots.(i) in
      a0.(s) <- a0.(s) +. gshunt
    done;
  (* gmin across every MOSFET's drain-source pair *)
  for k = 0 to Array.length t.fets - 1 do
    let f = t.fets.(k) in
    if f.s_dd >= 0 then a0.(f.s_dd) <- a0.(f.s_dd) +. gmin;
    if f.s_ss >= 0 then a0.(f.s_ss) <- a0.(f.s_ss) +. gmin;
    if f.s_ds >= 0 then begin
      a0.(f.s_ds) <- a0.(f.s_ds) -. gmin;
      a0.(f.s_sd) <- a0.(f.s_sd) -. gmin
    end
  done;
  (match caps with
  | None -> ()
  | Some { Mna.geq; ieq } ->
    for k = 0 to Array.length t.cap_i1 - 1 do
      let g = geq.(k) in
      if t.cap_s11.(k) >= 0 then a0.(t.cap_s11.(k)) <- a0.(t.cap_s11.(k)) +. g;
      if t.cap_s22.(k) >= 0 then a0.(t.cap_s22.(k)) <- a0.(t.cap_s22.(k)) +. g;
      if t.cap_s12.(k) >= 0 then begin
        a0.(t.cap_s12.(k)) <- a0.(t.cap_s12.(k)) -. g;
        a0.(t.cap_s21.(k)) <- a0.(t.cap_s21.(k)) -. g
      end;
      (* companion current flows out of n1 into n2 *)
      let i = ieq.(k) in
      if t.cap_i1.(k) >= 0 then b0.(t.cap_i1.(k)) <- b0.(t.cap_i1.(k)) -. i;
      if t.cap_i2.(k) >= 0 then b0.(t.cap_i2.(k)) <- b0.(t.cap_i2.(k)) +. i
    done);
  for k = 0 to Array.length t.vs_rows - 1 do
    let row = t.vs_rows.(k) in
    b0.(row) <- b0.(row) +. (source_scale *. Source.value t.vs_waves.(k) time)
  done;
  for k = 0 to Array.length t.is_pos - 1 do
    let i = source_scale *. Source.value t.is_waves.(k) time in
    if t.is_pos.(k) >= 0 then b0.(t.is_pos.(k)) <- b0.(t.is_pos.(k)) -. i;
    if t.is_neg.(k) >= 0 then b0.(t.is_neg.(k)) <- b0.(t.is_neg.(k)) +. i
  done

let assemble t ~x =
  let v = t.a.Sparse.values in
  Array.blit t.a0 0 v 0 (Array.length v);
  Array.blit t.b0 0 t.rhs 0 t.n;
  let rhs = t.rhs in
  let lin = t.lin in
  let ws = t.ws in
  for k = 0 to Array.length t.fets - 1 do
    let f = t.fets.(k) in
    let vd = if f.f_d < 0 then 0.0 else x.(f.f_d) in
    let vg = if f.f_g < 0 then 0.0 else x.(f.f_g) in
    let vs = if f.f_s < 0 then 0.0 else x.(f.f_s) in
    lin.Mna.vd <- vd;
    lin.Mna.vg <- vg;
    lin.Mna.vs <- vs;
    Mna.linearize_fet ws lin f.f_model;
    let gm = lin.Mna.gm and gds = lin.Mna.gds and ieq = lin.Mna.ieq in
    (* mirror Mna.stamp_mosfet: the lower-potential terminal is the
       effective source *)
    if vd >= vs then begin
      if f.f_d >= 0 then begin
        if f.s_dg >= 0 then v.(f.s_dg) <- v.(f.s_dg) +. gm;
        v.(f.s_dd) <- v.(f.s_dd) +. gds;
        if f.s_ds >= 0 then v.(f.s_ds) <- v.(f.s_ds) -. (gm +. gds);
        rhs.(f.f_d) <- rhs.(f.f_d) -. ieq
      end;
      if f.f_s >= 0 then begin
        if f.s_sg >= 0 then v.(f.s_sg) <- v.(f.s_sg) -. gm;
        if f.s_sd >= 0 then v.(f.s_sd) <- v.(f.s_sd) -. gds;
        v.(f.s_ss) <- v.(f.s_ss) +. (gm +. gds);
        rhs.(f.f_s) <- rhs.(f.f_s) +. ieq
      end
    end
    else begin
      (* reversed: drain and source swap roles *)
      if f.f_s >= 0 then begin
        if f.s_sg >= 0 then v.(f.s_sg) <- v.(f.s_sg) +. gm;
        v.(f.s_ss) <- v.(f.s_ss) +. gds;
        if f.s_sd >= 0 then v.(f.s_sd) <- v.(f.s_sd) -. (gm +. gds);
        rhs.(f.f_s) <- rhs.(f.f_s) -. ieq
      end;
      if f.f_d >= 0 then begin
        if f.s_dg >= 0 then v.(f.s_dg) <- v.(f.s_dg) -. gm;
        if f.s_ds >= 0 then v.(f.s_ds) <- v.(f.s_ds) -. gds;
        v.(f.s_dd) <- v.(f.s_dd) +. (gm +. gds);
        rhs.(f.f_d) <- rhs.(f.f_d) +. ieq
      end
    end
  done

let factor_and_solve t =
  (match t.lu with
  | None -> t.lu <- Some (Sparse.factorize t.a)
  | Some lu -> (
    try Sparse.refactor lu t.a
    with Sparse.Singular _ ->
      (* the frozen pivot order went numerically stale; redo the full
         analysis (re-picks pivots for the current values) *)
      t.lu <- Some (Sparse.factorize t.a)));
  match t.lu with
  | Some lu -> Sparse.solve_in_place lu t.rhs
  | None -> assert false

let cap_voltages_into t ~x dst =
  for k = 0 to Array.length t.cap_i1 - 1 do
    let v1 = if t.cap_i1.(k) < 0 then 0.0 else x.(t.cap_i1.(k)) in
    let v2 = if t.cap_i2.(k) < 0 then 0.0 else x.(t.cap_i2.(k)) in
    dst.(k) <- v1 -. v2
  done

let lu_stats t = match t.lu with None -> None | Some lu -> Some (Sparse.lu_nnz lu)
