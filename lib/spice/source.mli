(** Independent-source waveforms. *)

type t =
  | Dc of float
  | Pulse of {
      v1 : float;  (** initial level, V *)
      v2 : float;  (** pulsed level, V *)
      delay : float;  (** s *)
      rise : float;  (** s *)
      fall : float;  (** s *)
      width : float;  (** pulse width at [v2], s *)
      period : float;  (** repetition period, s *)
    }
  | Pwl of (float * float) list  (** (time, value) pairs, times increasing *)
  | Sin of {
      offset : float;  (** VO, V *)
      amplitude : float;  (** VA, V *)
      freq : float;  (** Hz *)
      delay : float;  (** TD: hold at [offset] until then, s *)
      damping : float;  (** THETA, 1/s; 0 for an undamped sine *)
    }  (** the SPICE [SIN(VO VA FREQ TD THETA)] waveform *)

(** [value w t] evaluates the waveform at time [t >= 0]. *)
val value : t -> float -> float

(** [dc_value w] is the t = 0 value (used for the DC operating point). *)
val dc_value : t -> float

(** [square_wave ~low ~high ~period ?transition ()] is a 50%-duty pulse
    train starting low; [transition] defaults to [period /. 100]. *)
val square_wave : low:float -> high:float -> period:float -> ?transition:float -> unit -> t

(** [bit_clock ~vdd ~bit_time ~bit_index ()] is the classic binary-counter
    stimulus: input [bit_index] toggles every [2^bit_index] bit times, so
    driving inputs 0..k-1 walks through all [2^k] input combinations — the
    Fig 11 XOR3 stimulus. Transitions take [bit_time / 50]. *)
val bit_clock : vdd:float -> bit_time:float -> bit_index:int -> unit -> t
