(** Small-signal AC analysis.

    The paper's Section VI-A plans analyses of "delay (maximum frequency),
    phase margin". This module linearizes the circuit at its DC operating
    point (MOSFETs become their [gm]/[gds] companions), replaces every
    capacitor by its admittance [j w C], applies a unit AC excitation to
    one voltage source and solves the complex MNA system
    [(G + j B) x = b] over a frequency sweep. The complex system is solved
    as the equivalent real block system [[G, -B; B, G]]. On the compiled
    sparse engine the augmented pattern and its symbolic analysis are
    built once; each frequency only rewrites the [B] slots and runs a
    numeric-only refactorization.

    Measurements on the transfer function: the -3 dB corner ([f_3db], the
    maximum-frequency proxy) and the phase at any frequency. *)

type point = {
  freq_hz : float;
  magnitude : float;  (** |V(out)| per volt of excitation *)
  phase_deg : float;  (** in (-180, 180] *)
}

type response = {
  points : point list;
  dc_gain : float;  (** magnitude of the lowest swept frequency *)
}

(** [sweep ?engine netlist ~source ~output ~f_start ~f_stop
    ~points_per_decade] runs the sweep (log-spaced). [source] names the
    excited voltage source (its DC value sets the operating point; the AC
    excitation is 1 V), [output] the observed node. [engine] selects the
    linear-solver backend for both the operating point and the sweep
    (default [Auto]). Raises [Invalid_argument] for unknown names,
    [Dcop.Convergence_failure] if the operating point fails. *)
val sweep :
  ?engine:Dcop.engine ->
  Netlist.t ->
  source:string ->
  output:string ->
  f_start:float ->
  f_stop:float ->
  points_per_decade:int ->
  response

(** [f_3db response] is the first frequency at which the magnitude drops
    below [dc_gain / sqrt 2], interpolated; [None] if it never does. *)
val f_3db : response -> float option

(** [phase_at response f] interpolates the phase at [f], degrees. *)
val phase_at : response -> float -> float

(** [magnitude_at response f] interpolates the magnitude at [f]. *)
val magnitude_at : response -> float -> float
