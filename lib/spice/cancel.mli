(** Cooperative cancellation tokens: a wall-clock deadline plus an
    atomic kill flag, checked from the solver inner loops.

    A token is created once per job (or per batch) and threaded down
    into {!Dcop} and {!Transient}, whose inner loops call {!check} at
    iteration/step boundaries. A job whose budget expires therefore
    stops at the next boundary with a {!Cancelled} exception instead of
    grinding through the rest of the fallback ladder — the batch engine
    catches that exception and turns it into a structured
    [Timed_out]/[Cancelled] outcome, never a hang.

    Tokens are cheap and Domain-safe: {!check} on {!none} is a physical
    -equality test, on a flag-only token one atomic load, and on a
    deadline token one monotonic clock read
    ({!Lattice_obs.Clock.now_ns}). Tokens may be linked to a parent
    (e.g. a per-job token under a per-batch token): a token fires when
    its own deadline or flag fires, or any ancestor's does. *)

(** Why a token fired: the wall-clock [Deadline] expired, or
    cancellation was explicitly [Requested] via {!cancel}. *)
type reason = Deadline | Requested

val reason_name : reason -> string

exception Cancelled of reason
(** Raised by {!check}; escapes the solver entry points
    ([Dcop.solve_diag], [Transient.run_diag]) — cancellation is not a
    convergence failure and is never converted into one. *)

type t

val none : t
(** The never-firing token — the default everywhere; costs one physical
    -equality test per check. *)

(** [create ?deadline_ns ?parent ()] — a token that fires once the
    monotonic clock passes [deadline_ns] (absolute,
    {!Lattice_obs.Clock.now_ns} base), once {!cancel} is called, or
    once [parent] fires. *)
val create : ?deadline_ns:int -> ?parent:t -> unit -> t

(** [with_deadline ?parent ~seconds ()] — [create] with the deadline
    [seconds] of wall-clock from now. [seconds <= 0] fires immediately. *)
val with_deadline : ?parent:t -> seconds:float -> unit -> t

val cancel : t -> unit
(** Request cancellation: every subsequent {!check} of this token (and
    of tokens parented under it) raises. No-op on {!none}. *)

val state : t -> reason option
(** [None] while the token has not fired; the firing reason afterwards
    (explicit {!cancel} wins over a deadline that also passed). *)

val is_cancelled : t -> bool

val check : t -> unit
(** Raise {!Cancelled} if the token (or an ancestor) has fired, else
    return. Call sites are the solver inner loops: once per Newton
    iteration, once per transient step, once per ladder rung. *)

val deadline_ns : t -> int option
(** The token's own absolute deadline, if any (ancestors not consulted). *)
