type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list
  | Sin of {
      offset : float;
      amplitude : float;
      freq : float;
      delay : float;
      damping : float;
    }

let pulse_value ~v1 ~v2 ~delay ~rise ~fall ~width ~period t =
  if t < delay then v1
  else begin
    let tc = Float.rem (t -. delay) period in
    if tc < rise then v1 +. ((v2 -. v1) *. tc /. Float.max 1e-18 rise)
    else if tc < rise +. width then v2
    else if tc < rise +. width +. fall then
      v2 +. ((v1 -. v2) *. (tc -. rise -. width) /. Float.max 1e-18 fall)
    else v1
  end

let pwl_value points t =
  match points with
  | [] -> 0.0
  | (t0, v0) :: _ when t <= t0 -> v0
  | _ ->
    let rec go = function
      | [ (_, v) ] -> v
      | (t1, v1) :: ((t2, v2) :: _ as rest) ->
        if t <= t2 then
          if t2 = t1 then v2 else v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
        else go rest
      | [] -> 0.0
    in
    go points

let value w t =
  match w with
  | Dc v -> v
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    pulse_value ~v1 ~v2 ~delay ~rise ~fall ~width ~period t
  | Pwl points -> pwl_value points t
  | Sin { offset; amplitude; freq; delay; damping } ->
    if t < delay then offset
    else
      let tau = t -. delay in
      offset
      +. amplitude *. Float.exp (-.damping *. tau)
         *. Float.sin (2.0 *. Float.pi *. freq *. tau)

let dc_value w = value w 0.0

(* a SPICE pulse rises right after [delay]; delaying by half a period makes
   the wave spend its first half-period at [low] *)
let square_wave ~low ~high ~period ?transition () =
  let tr = match transition with Some t -> t | None -> period /. 100.0 in
  Pulse
    {
      v1 = low;
      v2 = high;
      delay = period /. 2.0;
      rise = tr;
      fall = tr;
      width = (period /. 2.0) -. tr;
      period;
    }

let bit_clock ~vdd ~bit_time ~bit_index () =
  if bit_index < 0 then invalid_arg "Source.bit_clock: negative bit index";
  let half = bit_time *. float_of_int (1 lsl bit_index) in
  square_wave ~low:0.0 ~high:vdd ~period:(2.0 *. half) ~transition:(bit_time /. 50.0) ()
