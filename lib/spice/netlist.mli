(** Circuit netlists.

    A netlist is built imperatively: create it, ask for nodes by name (the
    ground node is ["0"]), and add elements. Unknowns of the MNA system are
    the non-ground node voltages followed by one branch current per voltage
    source. *)

type node = int
(** 0 is ground; positive values are circuit nodes. *)

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Vsource of { name : string; npos : node; nneg : node; wave : Source.t; index : int }
  | Isource of { name : string; npos : node; nneg : node; wave : Source.t }
      (** current flows from [npos] through the source to [nneg] *)
  | Mosfet of {
      name : string;
      drain : node;
      gate : node;
      source : node;
      model : Lattice_mosfet.Model.t;
    }

type t

val create : unit -> t

(** [node t name] returns the node with that name, creating it if new.
    ["0"], ["gnd"] and ["GND"] are the ground node. *)
val node : t -> string -> node

(** [find_node t name] looks a node up {e without} creating it — the
    read-only counterpart of {!node}, for diagnostics and probes that
    must not grow the circuit. *)
val find_node : t -> string -> node option

(** [fresh_node t prefix] creates an anonymous internal node. *)
val fresh_node : t -> string -> node

val ground : node

(** Element constructors; values must be positive where physical.
    Each returns unit and registers the element. *)
val resistor : t -> string -> node -> node -> float -> unit

val capacitor : t -> string -> node -> node -> float -> unit
val vsource : t -> string -> node -> node -> Source.t -> unit
val isource : t -> string -> node -> node -> Source.t -> unit

(** [mosfet] adds a level-1 transistor; [mosfet_model] accepts any
    first-class model (level 1 or level 3). *)
val mosfet : t -> string -> drain:node -> gate:node -> source:node -> Lattice_mosfet.Level1.params -> unit

val mosfet_model : t -> string -> drain:node -> gate:node -> source:node -> Lattice_mosfet.Model.t -> unit

(** [num_nodes t] counts non-ground nodes; [num_vsources t] the voltage
    sources; [unknowns t] the MNA system size. *)
val num_nodes : t -> int

val num_vsources : t -> int
val unknowns : t -> int

(** [elements t] lists elements in insertion order. *)
val elements : t -> element list

(** [node_name t n] is the name [n] was created with. *)
val node_name : t -> node -> string

(** [all_node_names t] lists every non-ground node name in id order
    (element [i] names node [i + 1]) — the read-only companion of
    {!node_name} for emitters and clients that replay a circuit without
    touching internals. *)
val all_node_names : t -> string array

(** [node_index n] is the row of node [n] in the MNA system, or [-1] for
    ground. *)
val node_index : node -> int

(** [vsource_row t index] is the MNA row of a voltage source's branch
    current. *)
val vsource_row : t -> int -> int

(** [vsource_index t name] looks a voltage source up by element name. *)
val vsource_index : t -> string -> int option

(** [summary t] is a one-line element census for logs. *)
val summary : t -> string

(** [structural_digest t] is a content hash of the circuit: node and
    voltage-source counts plus every element — topology (node ids,
    renumbered by first mention in element order so the digest is
    independent of node {e creation} order and survives an
    export→parse roundtrip through deck text), instance names, exact
    IEEE-754 bit patterns of all values, full waveforms and full MOSFET
    model parameters. Two netlists built by the same construction
    sequence get equal digests; changing any single parameter by as
    little as one ulp (a [sigma_vth] perturbation, a different oxide's
    [kp], one injected defect resistor) changes the digest. This is the
    netlist half of the batch engine's content-addressed cache key. *)
val structural_digest : t -> string

(** [to_spice_string t ~title] renders the circuit as a SPICE deck
    (.MODEL cards for the distinct MOSFET models, engineering-notation
    values, PULSE/PWL sources), for interoperability with external
    simulators. Level-3 models are emitted as LEVEL=3 cards with THETA and
    the critical voltage in a comment. *)
val to_spice_string : t -> title:string -> string
