type node = int

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Vsource of { name : string; npos : node; nneg : node; wave : Source.t; index : int }
  | Isource of { name : string; npos : node; nneg : node; wave : Source.t }
  | Mosfet of {
      name : string;
      drain : node;
      gate : node;
      source : node;
      model : Lattice_mosfet.Model.t;
    }

type t = {
  mutable names : (string, node) Hashtbl.t;
  mutable node_names : string array;  (* grows; index = node id *)
  mutable next_node : int;
  mutable elements_rev : element list;
  mutable nvsrc : int;
  mutable fresh_counter : int;
}

let ground = 0

let create () =
  let names = Hashtbl.create 64 in
  Hashtbl.replace names "0" ground;
  {
    names;
    node_names = Array.make 16 "0";
    next_node = 1;
    elements_rev = [];
    nvsrc = 0;
    fresh_counter = 0;
  }

let store_name t id name =
  if id >= Array.length t.node_names then begin
    let bigger = Array.make (2 * (id + 1)) "" in
    Array.blit t.node_names 0 bigger 0 (Array.length t.node_names);
    t.node_names <- bigger
  end;
  t.node_names.(id) <- name

let node t name =
  let name = if name = "gnd" || name = "GND" then "0" else name in
  match Hashtbl.find_opt t.names name with
  | Some id -> id
  | None ->
    let id = t.next_node in
    t.next_node <- id + 1;
    Hashtbl.replace t.names name id;
    store_name t id name;
    id

let find_node t name =
  let name = if name = "gnd" || name = "GND" then "0" else name in
  Hashtbl.find_opt t.names name

let fresh_node t prefix =
  t.fresh_counter <- t.fresh_counter + 1;
  node t (Printf.sprintf "%s#%d" prefix t.fresh_counter)

let add t e = t.elements_rev <- e :: t.elements_rev

let check_value what v = if not (Float.is_finite v) || v <= 0.0 then
    invalid_arg (Printf.sprintf "Netlist: %s must be positive and finite (got %g)" what v)

let resistor t name n1 n2 ohms =
  check_value "resistance" ohms;
  add t (Resistor { name; n1; n2; ohms })

let capacitor t name n1 n2 farads =
  check_value "capacitance" farads;
  add t (Capacitor { name; n1; n2; farads })

let vsource t name npos nneg wave =
  let index = t.nvsrc in
  t.nvsrc <- index + 1;
  add t (Vsource { name; npos; nneg; wave; index })

let isource t name npos nneg wave = add t (Isource { name; npos; nneg; wave })

let mosfet_model t name ~drain ~gate ~source model =
  add t (Mosfet { name; drain; gate; source; model })

let mosfet t name ~drain ~gate ~source params =
  mosfet_model t name ~drain ~gate ~source (Lattice_mosfet.Model.L1 params)

let num_nodes t = t.next_node - 1
let num_vsources t = t.nvsrc
let unknowns t = num_nodes t + num_vsources t
let elements t = List.rev t.elements_rev

let node_name t n =
  if n < 0 || n >= t.next_node then invalid_arg "Netlist.node_name: unknown node";
  t.node_names.(n)

let all_node_names t =
  Array.init (t.next_node - 1) (fun i -> t.node_names.(i + 1))

let node_index n = n - 1

let vsource_row t index = num_nodes t + index

let vsource_index t name =
  let rec find = function
    | [] -> None
    | Vsource { name = n; index; _ } :: _ when n = name -> Some index
    | (Vsource _ | Resistor _ | Capacitor _ | Isource _ | Mosfet _) :: rest -> find rest
  in
  find (elements t)

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) name

let wave_to_spice = function
  | Source.Dc v -> Printf.sprintf "DC %s" (Units.format v)
  | Source.Pulse { v1; v2; delay; rise; fall; width; period } ->
    Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (Units.format v1) (Units.format v2)
      (Units.format delay) (Units.format rise) (Units.format fall) (Units.format width)
      (Units.format period)
  | Source.Pwl points ->
    "PWL("
    ^ String.concat " "
        (List.map (fun (tt, v) -> Printf.sprintf "%s %s" (Units.format tt) (Units.format v)) points)
    ^ ")"
  | Source.Sin { offset; amplitude; freq; delay; damping } ->
    Printf.sprintf "SIN(%s %s %s %s %s)" (Units.format offset) (Units.format amplitude)
      (Units.format freq) (Units.format delay) (Units.format damping)

let to_spice_string t ~title =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  (* collect distinct MOSFET models and name them *)
  let models = Hashtbl.create 8 in
  let model_name m =
    match Hashtbl.find_opt models m with
    | Some name -> name
    | None ->
      let name = Printf.sprintf "NMOD%d" (Hashtbl.length models + 1) in
      Hashtbl.replace models m name;
      name
  in
  let node_str n = if n = ground then "0" else sanitize (node_name t n) in
  List.iter
    (fun e ->
      match e with
      | Resistor { name; n1; n2; ohms } ->
        Buffer.add_string buf
          (Printf.sprintf "R%s %s %s %s\n" (sanitize name) (node_str n1) (node_str n2)
             (Units.format ohms))
      | Capacitor { name; n1; n2; farads } ->
        Buffer.add_string buf
          (Printf.sprintf "C%s %s %s %s\n" (sanitize name) (node_str n1) (node_str n2)
             (Units.format farads))
      | Vsource { name; npos; nneg; wave; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "V%s %s %s %s\n" (sanitize name) (node_str npos) (node_str nneg)
             (wave_to_spice wave))
      | Isource { name; npos; nneg; wave } ->
        Buffer.add_string buf
          (Printf.sprintf "I%s %s %s %s\n" (sanitize name) (node_str npos) (node_str nneg)
             (wave_to_spice wave))
      | Mosfet { name; drain; gate; source; model } ->
        let base =
          match model with
          | Lattice_mosfet.Model.L1 p -> p
          | Lattice_mosfet.Model.L3 p3 -> p3.Lattice_mosfet.Level3.base
        in
        Buffer.add_string buf
          (Printf.sprintf "M%s %s %s %s 0 %s W=%s L=%s\n" (sanitize name) (node_str drain)
             (node_str gate) (node_str source) (model_name model)
             (Units.format base.Lattice_mosfet.Level1.w)
             (Units.format base.Lattice_mosfet.Level1.l)))
    (elements t);
  Hashtbl.iter
    (fun model name ->
      match model with
      | Lattice_mosfet.Model.L1 p ->
        Buffer.add_string buf
          (Printf.sprintf ".MODEL %s NMOS (LEVEL=1 KP=%.4g VTO=%.4g LAMBDA=%.4g)\n" name
             p.Lattice_mosfet.Level1.kp p.Lattice_mosfet.Level1.vth p.Lattice_mosfet.Level1.lambda)
      | Lattice_mosfet.Model.L3 p3 ->
        let p = p3.Lattice_mosfet.Level3.base in
        Buffer.add_string buf
          (Printf.sprintf ".MODEL %s NMOS (LEVEL=3 KP=%.4g VTO=%.4g KAPPA=%.4g THETA=%.4g) * Vc=%.4g\n"
             name p.Lattice_mosfet.Level1.kp p.Lattice_mosfet.Level1.vth
             p.Lattice_mosfet.Level1.lambda p3.Lattice_mosfet.Level3.theta
             p3.Lattice_mosfet.Level3.vc))
    models;
  Buffer.add_string buf ".END\n";
  Buffer.contents buf

(* Canonical binary serialization for content addressing. Floats are
   hashed by their IEEE-754 bit pattern — formatting them (as
   [to_spice_string] does, at limited precision) would alias distinct
   circuits, e.g. two Monte-Carlo Vth perturbations 1e-12 V apart. *)
let digest_int b i = Buffer.add_int64_le b (Int64.of_int i)
let digest_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let digest_string b s =
  digest_int b (String.length s);
  Buffer.add_string b s

let digest_level1 b (p : Lattice_mosfet.Level1.params) =
  digest_float b p.Lattice_mosfet.Level1.kp;
  digest_float b p.Lattice_mosfet.Level1.vth;
  digest_float b p.Lattice_mosfet.Level1.lambda;
  digest_float b p.Lattice_mosfet.Level1.w;
  digest_float b p.Lattice_mosfet.Level1.l

let digest_model b = function
  | Lattice_mosfet.Model.L1 p ->
    Buffer.add_char b '1';
    digest_level1 b p
  | Lattice_mosfet.Model.L3 p3 ->
    Buffer.add_char b '3';
    digest_level1 b p3.Lattice_mosfet.Level3.base;
    digest_float b p3.Lattice_mosfet.Level3.theta;
    digest_float b p3.Lattice_mosfet.Level3.vc

let digest_wave b = function
  | Source.Dc v ->
    Buffer.add_char b 'D';
    digest_float b v
  | Source.Pulse { v1; v2; delay; rise; fall; width; period } ->
    Buffer.add_char b 'P';
    List.iter (digest_float b) [ v1; v2; delay; rise; fall; width; period ]
  | Source.Pwl points ->
    Buffer.add_char b 'W';
    digest_int b (List.length points);
    List.iter
      (fun (time, v) ->
        digest_float b time;
        digest_float b v)
      points
  | Source.Sin { offset; amplitude; freq; delay; damping } ->
    Buffer.add_char b 'S';
    List.iter (digest_float b) [ offset; amplitude; freq; delay; damping ]

let digest_element b ~map = function
  | Resistor { name; n1; n2; ohms } ->
    Buffer.add_char b 'R';
    digest_string b name;
    digest_int b (map n1);
    digest_int b (map n2);
    digest_float b ohms
  | Capacitor { name; n1; n2; farads } ->
    Buffer.add_char b 'C';
    digest_string b name;
    digest_int b (map n1);
    digest_int b (map n2);
    digest_float b farads
  | Vsource { name; npos; nneg; wave; index } ->
    Buffer.add_char b 'V';
    digest_string b name;
    digest_int b (map npos);
    digest_int b (map nneg);
    digest_int b index;
    digest_wave b wave
  | Isource { name; npos; nneg; wave } ->
    Buffer.add_char b 'I';
    digest_string b name;
    digest_int b (map npos);
    digest_int b (map nneg);
    digest_wave b wave
  | Mosfet { name; drain; gate; source; model } ->
    Buffer.add_char b 'M';
    digest_string b name;
    digest_int b (map drain);
    digest_int b (map gate);
    digest_int b (map source);
    digest_model b model

(* Node ids are renumbered by first mention in element order before
   hashing.  Raw ids depend on *creation* order, which differs between a
   programmatic builder (nodes interleaved with construction) and a deck
   parser (nodes appear as element cards reference them); first-mention
   order is identical whenever the element lists are, so the digest — and
   with it every engine cache key — survives the export→parse boundary. *)
let structural_digest t =
  let b = Buffer.create 1024 in
  let els = elements t in
  let canon = Hashtbl.create 64 in
  Hashtbl.replace canon ground 0;
  let next = ref 0 in
  let touch n =
    if not (Hashtbl.mem canon n) then begin
      incr next;
      Hashtbl.replace canon n !next
    end
  in
  List.iter
    (function
      | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } ->
        touch n1;
        touch n2
      | Vsource { npos; nneg; _ } | Isource { npos; nneg; _ } ->
        touch npos;
        touch nneg
      | Mosfet { drain; gate; source; _ } ->
        touch drain;
        touch gate;
        touch source)
    els;
  let map n = match Hashtbl.find_opt canon n with Some c -> c | None -> n in
  digest_int b (num_nodes t);
  digest_int b (num_vsources t);
  List.iter (digest_element b ~map) els;
  Digest.to_hex (Digest.string (Buffer.contents b))

let summary t =
  let r = ref 0 and c = ref 0 and v = ref 0 and i = ref 0 and m = ref 0 in
  List.iter
    (function
      | Resistor _ -> incr r
      | Capacitor _ -> incr c
      | Vsource _ -> incr v
      | Isource _ -> incr i
      | Mosfet _ -> incr m)
    t.elements_rev;
  Printf.sprintf "%d nodes, %d R, %d C, %d V, %d I, %d M" (num_nodes t) !r !c !v !i !m
