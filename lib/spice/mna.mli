(** Modified nodal analysis assembly.

    For a guess [x] of the unknown vector (node voltages then voltage-source
    branch currents), [stamp] builds the linearized system [A x' = b] whose
    solution [x'] is the next Newton iterate: linear elements stamp their
    conductances, nonlinear elements (MOSFETs) stamp the companion model
    linearized at [x], capacitors stamp the integration companion supplied
    by the caller (nothing in DC), and sources are evaluated at [time]
    scaled by [source_scale] (for source stepping). *)

type cap_companion = {
  geq : float array;  (** per-capacitor companion conductance, S *)
  ieq : float array;  (** per-capacitor companion current, A *)
}

(** [cap_count netlist] is the number of capacitors (companion array
    length). *)
val cap_count : Netlist.t -> int

(** [voltage x node] reads a node voltage from the unknown vector
    (0 for ground). *)
val voltage : Lattice_numerics.Vec.t -> Netlist.node -> float

(** [cap_voltage netlist x] is the per-capacitor branch voltage vector. *)
val cap_voltages : Netlist.t -> Lattice_numerics.Vec.t -> float array

(** Mutable scratch for one MOSFET's linearized companion model. All
    fields are float — inputs included — so operands cross the call as
    unboxed record fields, keeping hot Newton loops allocation-free. *)
type fet_lin = {
  mutable vd : float;  (** input: drain node voltage *)
  mutable vg : float;  (** input: gate node voltage *)
  mutable vs : float;  (** input: source node voltage *)
  mutable gm : float;
  mutable gds : float;
  mutable ieq : float;
}

val fet_lin_create : unit -> fet_lin

(** [linearize_fet w out m] writes the small-signal companion of the
    source/drain-normalized drain current at ([out.vd], [out.vg],
    [out.vs]) into [out]: [i_dn = gm vgs' + gds vds' + ieq]. The caller
    decides orientation via [vd < vs]. Shared by the dense stamp
    ({!stamp}) and the compiled stamp plan so both engines produce
    identical stamps; allocation-free for level-1 models. *)
val linearize_fet :
  Lattice_mosfet.Level1.workspace -> fet_lin -> Lattice_mosfet.Model.t -> unit

(** [stamp netlist ~x ~time ~gmin ~source_scale ~caps] assembles and
    returns [(a, b)]. [caps = None] means DC (capacitors open).
    [gmin] is stamped drain-source across every MOSFET; [gshunt] adds a conductance from every node to ground — the continuation
    shunt used by the hardest DC fallbacks. *)
val stamp :
  Netlist.t ->
  x:Lattice_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  gshunt:float ->
  source_scale:float ->
  caps:cap_companion option ->
  Lattice_numerics.Matrix.t * Lattice_numerics.Vec.t
