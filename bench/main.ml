(* Benchmark harness.

   Running this executable first regenerates every table and figure of the
   paper (printing paper-vs-measured rows), then times the computational
   kernels behind each experiment with Bechamel. One Test.make per
   table/figure, plus ablation benches for the design choices called out in
   DESIGN.md. *)

open Bechamel

let experiments () =
  print_endline "==================================================================";
  print_endline " Reproduction of every table and figure (paper vs measured)";
  print_endline "==================================================================";
  print_newline ();
  Lattice_experiments.All.print_all ()

(* --- kernels, one per experiment ------------------------------------- *)

let bench_table1 =
  Test.make ~name:"TableI: count products 6x6, ZDD (1668 paths)" (Staged.stage (fun () ->
      ignore (Lattice_core.Paths.count_irredundant_zdd ~rows:6 ~cols:6)))

let bench_table1_large =
  Test.make ~name:"TableI: count products 7x7, ZDD (26317 paths)" (Staged.stage (fun () ->
      ignore (Lattice_core.Paths.count_irredundant_zdd ~rows:7 ~cols:7)))

let bench_lattice_function =
  Test.make ~name:"Fig2c: extract 3x3 lattice function" (Staged.stage (fun () ->
      ignore (Lattice_core.Lattice_function.of_generic ~rows:3 ~cols:3)))

let bench_synthesis =
  Test.make ~name:"Fig3: Altun-Riedel synthesis of XOR3" (Staged.stage (fun () ->
      ignore (Lattice_synthesis.Altun_riedel.synthesize Lattice_synthesis.Library.xor3)))

let bench_validate =
  Test.make ~name:"Fig3: validate XOR3 3x3 lattice" (Staged.stage (fun () ->
      ignore (Lattice_synthesis.Validate.realizes Lattice_synthesis.Library.xor3_3x3
          Lattice_synthesis.Library.xor3)))

let square_hfo2 =
  Lattice_device.Presets.find ~shape:Lattice_device.Geometry.Square
    ~dielectric:Lattice_device.Material.HfO2

let bench_iv =
  Test.make ~name:"Fig5-7: standard I-V sweep set (51 pts x 3)" (Staged.stage (fun () ->
      ignore (Lattice_device.Sweep.standard square_hfo2.Lattice_device.Presets.model)))

let bench_field =
  Test.make ~name:"Fig8: 2-D field solve, square device, 48x48" (Staged.stage (fun () ->
      ignore
        (Lattice_device.Field2d.solve square_hfo2 ~case:Lattice_device.Op_case.dsss ~vgs:5.0
           ~vds:5.0)))

let bench_fit =
  Test.make ~name:"Fig10: Levenberg-Marquardt extraction" (Staged.stage (fun () ->
      ignore (Lattice_fit.Fit.extract square_hfo2.Lattice_device.Presets.model)))

let bench_transient =
  Test.make ~name:"Fig11: XOR3 transient (100 ns, h = 1 ns)" (Staged.stage (fun () ->
      let lc =
        Lattice_spice.Lattice_circuit.build Lattice_synthesis.Library.xor3_3x3
          ~stimulus:(Lattice_spice.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:50e-9)
      in
      ignore
        (Lattice_spice.Transient.run lc.Lattice_spice.Lattice_circuit.netlist ~h:1e-9
           ~t_stop:100e-9 ~record:[ "out" ] ())))

let bench_series_dc =
  Test.make ~name:"Fig12a: DC solve of 21-switch chain" (Staged.stage (fun () ->
      ignore (Lattice_spice.Series_chain.current ~n:21 ~v_top:1.2 ())))

let bench_series_bisect =
  Test.make ~name:"Fig12b: bisection for 5.5 uA, N = 11" (Staged.stage (fun () ->
      ignore (Lattice_spice.Series_chain.voltage_for_current ~n:11 ~i_target:5.5e-6 ())))

(* --- ablation benches (DESIGN.md) ------------------------------------ *)

let on_pattern_43 = Array.make 12 true

let bench_connectivity_bfs =
  Test.make ~name:"ablation: connectivity BFS 4x3" (Staged.stage (fun () ->
      ignore (Lattice_core.Connectivity.connected_bfs ~rows:4 ~cols:3 on_pattern_43)))

let bench_connectivity_uf =
  Test.make ~name:"ablation: connectivity union-find 4x3" (Staged.stage (fun () ->
      ignore (Lattice_core.Connectivity.connected_union_find ~rows:4 ~cols:3 on_pattern_43)))

let bench_paths_pruned =
  Test.make ~name:"ablation: pruned path DFS 4x4" (Staged.stage (fun () ->
      ignore (Lattice_core.Paths.count_irredundant_enum ~rows:4 ~cols:4)))

let bench_paths_brute =
  Test.make ~name:"ablation: brute-force minimal sets 4x4" (Staged.stage (fun () ->
      ignore (Lattice_core.Paths.irredundant_sets_brute ~rows:4 ~cols:4)))

let transient_once integrator =
  let lc =
    Lattice_spice.Lattice_circuit.build Lattice_synthesis.Library.xor3_3x3
      ~stimulus:(Lattice_spice.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:50e-9)
  in
  let options = { Lattice_spice.Transient.default_options with integrator } in
  ignore
    (Lattice_spice.Transient.run ~options lc.Lattice_spice.Lattice_circuit.netlist ~h:1e-9
       ~t_stop:50e-9 ~record:[ "out" ] ())

let transient_with_types types =
  let config = { Lattice_spice.Lattice_circuit.default_config with types } in
  let lc =
    Lattice_spice.Lattice_circuit.build ~config Lattice_synthesis.Library.xor3_3x3
      ~stimulus:(Lattice_spice.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:50e-9)
  in
  ignore
    (Lattice_spice.Transient.run lc.Lattice_spice.Lattice_circuit.netlist ~h:1e-9 ~t_stop:50e-9
       ~record:[ "out" ] ())

let bench_model_level1 =
  Test.make ~name:"ablation: XOR3 transient, level-1 switches" (Staged.stage (fun () ->
      transient_with_types Lattice_spice.Fts.default_types))

let bench_model_level3 =
  Test.make ~name:"ablation: XOR3 transient, level-3 switches" (Staged.stage (fun () ->
      transient_with_types (Lattice_spice.Fts.level3_types ())))

let bench_complementary_dc =
  Test.make ~name:"ExtVIa: complementary XOR3 DC op point" (Staged.stage (fun () ->
      let lc =
        Lattice_spice.Lattice_circuit.build_complementary
          ~pull_up:Lattice_synthesis.Library.xnor3_3x3
          ~pull_down:Lattice_synthesis.Library.xor3_3x3
          ~stimulus:(fun _ -> Lattice_spice.Source.Dc 1.2)
          ()
      in
      ignore (Lattice_spice.Dcop.solve lc.Lattice_spice.Lattice_circuit.netlist)))

let bench_optimizer =
  Test.make ~name:"ExtVIa: optimizer (analytic) on majority-3" (Staged.stage (fun () ->
      ignore (Lattice_flow.Optimizer.optimize (Lattice_boolfn.Truthtable.majority_n 3))))

let bench_faults =
  Test.make ~name:"Ext: fault campaign on XOR3 3x3" (Staged.stage (fun () ->
      ignore (Lattice_synthesis.Faults.analyze Lattice_synthesis.Library.xor3_3x3)))

let bench_ac =
  Test.make ~name:"ExtVIa: AC sweep of XOR3 output pole (61 pts)" (Staged.stage (fun () ->
      let lc =
        Lattice_spice.Lattice_circuit.build Lattice_synthesis.Library.xor3_3x3
          ~stimulus:(fun _ -> Lattice_spice.Source.Dc 0.0)
      in
      ignore
        (Lattice_spice.Ac.sweep lc.Lattice_spice.Lattice_circuit.netlist ~source:"VDD"
           ~output:"out" ~f_start:1e4 ~f_stop:1e10 ~points_per_decade:10)))

let bench_monte_carlo =
  Test.make ~name:"Ext: Monte-Carlo die (8 DC solves, perturbed)" (Staged.stage (fun () ->
      ignore
        (Lattice_flow.Monte_carlo.run Lattice_synthesis.Library.maj3_2x3
           ~target:(Lattice_boolfn.Truthtable.majority_n 3) ~samples:1)))

let bench_compose =
  Test.make ~name:"Ext: compositional synthesis of a 4-var expression" (Staged.stage (fun () ->
      let e, _ = Lattice_boolfn.Expr.parse "(a ^ b) (c + d') + a' c" in
      ignore (Lattice_core.Compose.of_expr e)))

let bench_defect_sample =
  Test.make ~name:"Ext: defect sample (stuck-open maj3, 8 DC solves)" (Staged.stage (fun () ->
      ignore
        (Lattice_flow.Fault_campaign.simulate Lattice_synthesis.Library.maj3_2x3
           ~target:(Lattice_boolfn.Truthtable.majority_n 3) ~test_set:[]
           [ { Lattice_spice.Defects.row = 0; col = 0; kind = Lattice_spice.Defects.Stuck_open } ])))

let bench_defect_campaign =
  Test.make ~name:"Ext: stuck-defect campaign on maj3 2x3 (12 samples)" (Staged.stage (fun () ->
      let options =
        { Lattice_flow.Fault_campaign.default_options with
          Lattice_flow.Fault_campaign.classes =
            [ Lattice_spice.Defects.Opens; Lattice_spice.Defects.Shorts ];
          attempt_repair = false }
      in
      ignore
        (Lattice_flow.Fault_campaign.run ~options Lattice_synthesis.Library.maj3_2x3
           ~target:(Lattice_boolfn.Truthtable.majority_n 3))))

let bench_integrator_be =
  Test.make ~name:"ablation: transient backward Euler" (Staged.stage (fun () ->
      transient_once Lattice_spice.Transient.Backward_euler))

let bench_integrator_trap =
  Test.make ~name:"ablation: transient trapezoidal" (Staged.stage (fun () ->
      transient_once Lattice_spice.Transient.Trapezoidal))

(* --- sparse vs dense MNA engine (DESIGN.md, "Sparse MNA engine") ------ *)

let lattice_6x6_grid =
  let entries =
    Array.init 36 (fun i ->
        let r = i / 6 and c = i mod 6 in
        Lattice_core.Grid.Lit ((r + c) mod 3, (r * c) mod 2 = 0))
  in
  Lattice_core.Grid.create 6 6 entries

let transient_with_engine engine grid ~t_stop =
  let lc =
    Lattice_spice.Lattice_circuit.build grid
      ~stimulus:(Lattice_spice.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:50e-9)
  in
  let options =
    { Lattice_spice.Transient.default_options with
      Lattice_spice.Transient.dc = { Lattice_spice.Dcop.default_options with engine } }
  in
  ignore
    (Lattice_spice.Transient.run ~options lc.Lattice_spice.Lattice_circuit.netlist ~h:1e-9
       ~t_stop ~record:[ "out" ] ())

let bench_engine_xor3_dense =
  Test.make ~name:"ablation: XOR3 transient 100ns, dense engine" (Staged.stage (fun () ->
      transient_with_engine Lattice_spice.Dcop.Dense Lattice_synthesis.Library.xor3_3x3
        ~t_stop:100e-9))

let bench_engine_xor3_sparse =
  Test.make ~name:"ablation: XOR3 transient 100ns, sparse engine" (Staged.stage (fun () ->
      transient_with_engine Lattice_spice.Dcop.Sparse Lattice_synthesis.Library.xor3_3x3
        ~t_stop:100e-9))

let bench_engine_6x6_dense =
  Test.make ~name:"ablation: 6x6 lattice transient 50ns, dense engine" (Staged.stage (fun () ->
      transient_with_engine Lattice_spice.Dcop.Dense lattice_6x6_grid ~t_stop:50e-9))

let bench_engine_6x6_sparse =
  Test.make ~name:"ablation: 6x6 lattice transient 50ns, sparse engine" (Staged.stage (fun () ->
      transient_with_engine Lattice_spice.Dcop.Sparse lattice_6x6_grid ~t_stop:50e-9))

(* --- parallel batch engine (DESIGN.md, "Parallel batch engine") ------- *)

let mc_bench_target = Lattice_boolfn.Truthtable.majority_n 3

let mc_100_serial () =
  ignore
    (Lattice_flow.Monte_carlo.run Lattice_synthesis.Library.maj3_2x3 ~target:mc_bench_target
       ~samples:100)

let mc_100_domains domains () =
  (* fresh engine per run: cold cache, so the bench times real solves *)
  let engine = Lattice_engine.Engine.create ~domains () in
  ignore
    (Lattice_flow.Monte_carlo.run ~engine Lattice_synthesis.Library.maj3_2x3
       ~target:mc_bench_target ~samples:100)

let campaign_bench_options =
  { Lattice_flow.Fault_campaign.default_options with
    Lattice_flow.Fault_campaign.classes =
      [ Lattice_spice.Defects.Opens; Lattice_spice.Defects.Shorts ];
    attempt_repair = false }

let campaign_12_serial () =
  ignore
    (Lattice_flow.Fault_campaign.run ~options:campaign_bench_options
       Lattice_synthesis.Library.maj3_2x3 ~target:mc_bench_target)

let campaign_12_domains domains () =
  let engine = Lattice_engine.Engine.create ~domains () in
  ignore
    (Lattice_flow.Fault_campaign.run ~engine ~options:campaign_bench_options
       Lattice_synthesis.Library.maj3_2x3 ~target:mc_bench_target)

let engine_mc_serial_name = "engine: Monte-Carlo 100 samples, serial"
let engine_mc_2_name = "engine: Monte-Carlo 100 samples, 2 domains"
let engine_mc_4_name = "engine: Monte-Carlo 100 samples, 4 domains"
let engine_campaign_serial_name = "engine: campaign 12 samples, serial"
let engine_campaign_2_name = "engine: campaign 12 samples, 2 domains"
let engine_campaign_4_name = "engine: campaign 12 samples, 4 domains"

let bench_engine_mc_serial =
  Test.make ~name:engine_mc_serial_name (Staged.stage mc_100_serial)

let bench_engine_mc_2 = Test.make ~name:engine_mc_2_name (Staged.stage (mc_100_domains 2))
let bench_engine_mc_4 = Test.make ~name:engine_mc_4_name (Staged.stage (mc_100_domains 4))

let bench_engine_campaign_serial =
  Test.make ~name:engine_campaign_serial_name (Staged.stage campaign_12_serial)

let bench_engine_campaign_2 =
  Test.make ~name:engine_campaign_2_name (Staged.stage (campaign_12_domains 2))

let bench_engine_campaign_4 =
  Test.make ~name:engine_campaign_4_name (Staged.stage (campaign_12_domains 4))

let all_tests =
  [
    bench_table1;
    bench_table1_large;
    bench_lattice_function;
    bench_synthesis;
    bench_validate;
    bench_iv;
    bench_field;
    bench_fit;
    bench_transient;
    bench_series_dc;
    bench_series_bisect;
    bench_connectivity_bfs;
    bench_connectivity_uf;
    bench_paths_pruned;
    bench_paths_brute;
    bench_integrator_be;
    bench_integrator_trap;
    bench_engine_xor3_dense;
    bench_engine_xor3_sparse;
    bench_engine_6x6_dense;
    bench_engine_6x6_sparse;
    bench_model_level1;
    bench_model_level3;
    bench_complementary_dc;
    bench_optimizer;
    bench_faults;
    bench_ac;
    bench_monte_carlo;
    bench_compose;
    bench_defect_sample;
    bench_defect_campaign;
    bench_engine_mc_serial;
    bench_engine_mc_2;
    bench_engine_mc_4;
    bench_engine_campaign_serial;
    bench_engine_campaign_2;
    bench_engine_campaign_4;
  ]

(* Gc-based proof that the sparse Newton inner loop allocates nothing
   once the plan's LU is warm (DESIGN.md, "Sparse MNA engine"). *)
let allocation_check () =
  print_endline "==================================================================";
  print_endline " Newton inner-loop allocation check (Gc.minor_words delta)";
  print_endline "==================================================================";
  let lc =
    Lattice_spice.Lattice_circuit.build Lattice_synthesis.Library.xor3_3x3
      ~stimulus:(fun _ -> Lattice_spice.Source.Dc 1.2)
  in
  let netlist = lc.Lattice_spice.Lattice_circuit.netlist in
  let options =
    { Lattice_spice.Dcop.default_options with
      Lattice_spice.Dcop.engine = Lattice_spice.Dcop.Sparse }
  in
  let plan = Lattice_spice.Dcop.plan_for options netlist in
  let x0 = Lattice_spice.Dcop.solve ~options ?plan netlist in
  let dst = Array.make (Array.length x0) 0.0 in
  let solve () =
    ignore
      (Lattice_spice.Dcop.newton_into ?plan netlist ~options ~x0 ~dst ~time:0.0
         ~gmin:options.Lattice_spice.Dcop.gmin_final ~source_scale:1.0 ~caps:None)
  in
  (* warm-up: first factorization runs the symbolic analysis *)
  solve ();
  (* park the flight ring: it records a span per solve (the measured,
     capped flight_recorder_overhead_ratio cost) — this check is about
     the solver's own inner loop staying allocation-free *)
  let ring_was = Lattice_obs.Ring.on () in
  Lattice_obs.Ring.set_enabled false;
  let runs = 100 in
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do
    solve ()
  done;
  let per_solve = (Gc.minor_words () -. w0) /. float_of_int runs in
  Lattice_obs.Ring.set_enabled ring_was;
  Printf.printf "  %.1f minor words per warm Newton solve (%d unknowns) -> %s\n%!" per_solve
    (Lattice_spice.Netlist.unknowns netlist)
    (if per_solve < 16.0 then "allocation-free" else "ALLOCATING");
  per_solve < 16.0

(* Warm-cache demonstration: the same engine runs the same campaign twice;
   the second pass must be (nearly) all cache hits. Returns the hit rate
   of the second pass, computed from telemetry deltas. *)
let cache_rerun_report () =
  print_endline "==================================================================";
  print_endline " Content-addressed cache: campaign re-run on a warm engine";
  print_endline "==================================================================";
  let engine = Lattice_engine.Engine.create ~domains:2 () in
  let run () =
    ignore
      (Lattice_flow.Fault_campaign.run ~engine ~options:campaign_bench_options
         Lattice_synthesis.Library.maj3_2x3 ~target:mc_bench_target)
  in
  let module E = Lattice_engine.Engine in
  let module C = Lattice_engine.Cache in
  run ();
  let t1 = E.telemetry engine in
  run ();
  let t2 = E.telemetry engine in
  let hits = t2.E.cache.C.hits - t1.E.cache.C.hits in
  let lookups =
    t2.E.cache.C.hits + t2.E.cache.C.misses - (t1.E.cache.C.hits + t1.E.cache.C.misses)
  in
  let rate = if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups in
  Printf.printf "  second pass: %d/%d lookups hit (%.1f%%), %d new solves\n"
    hits lookups (100.0 *. rate)
    (t2.E.dc_solves - t1.E.dc_solves);
  Printf.printf "  %s\n%!" (E.summary engine);
  rate

(* Crash-safe persistent cache: two engines that share nothing but an
   on-disk store directory run the same campaign. The second engine's
   in-memory cache starts cold, so every hit it records is served by the
   persistent tier — the same cross-process replay the CI smoke job
   exercises with two sequential [ftl] invocations. Returns the second
   engine's hit rate (the acceptance target is 1.0) after checking the
   two result sets are bit-identical. *)
let persistent_cache_report () =
  print_endline "==================================================================";
  print_endline " Persistent store: cold-engine campaign over a warm cache dir";
  print_endline "==================================================================";
  let module E = Lattice_engine.Engine in
  let module C = Lattice_engine.Cache in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftl-bench-store-%d" (Unix.getpid ()))
  in
  let run () =
    let engine = E.create ~domains:2 ~store_dir:dir () in
    let r =
      Lattice_flow.Fault_campaign.run ~engine ~options:campaign_bench_options
        Lattice_synthesis.Library.maj3_2x3 ~target:mc_bench_target
    in
    (engine, r)
  in
  let _cold, r1 = run () in
  let warm, r2 = run () in
  let t = E.telemetry warm in
  let lookups = t.E.cache.C.hits + t.E.cache.C.misses in
  let rate = if lookups = 0 then 0.0 else float_of_int t.E.cache.C.hits /. float_of_int lookups in
  let identical = compare r1 r2 = 0 in
  Printf.printf "  cold engine over warm store: %d/%d lookups hit (%.1f%%); results %s\n"
    t.E.cache.C.hits lookups (100.0 *. rate)
    (if identical then "bit-identical to the cold run" else "DIVERGED from the cold run");
  Printf.printf "  %s\n%!" (E.summary warm);
  (* best-effort cleanup of the temp store *)
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  (try rm_rf dir with Sys_error _ -> ());
  if identical then rate else 0.0

(* Service layer: a live in-process daemon over a Unix socket. Two
   numbers land in the JSON: the warm/cold latency ratio of a dc_op
   batch (the second pass answers from the engine cache, so the ratio
   quantifies what the long-lived daemon buys over per-request
   processes) and the ping round-trip throughput (the protocol +
   framing + dispatch overhead floor, with no solver work inside). *)
let serve_report ~smoke =
  print_endline "==================================================================";
  print_endline " Service layer: daemon round-trip latency and throughput";
  print_endline "==================================================================";
  let module S = Lattice_serve.Server in
  let module C = Lattice_serve.Client in
  let module J = Lattice_serve.Json in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftl-bench-serve-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  let path = Filename.concat dir "daemon.sock" in
  let config =
    { S.default_config with S.socket_path = Some path; domains = Some 2; workers = 2 }
  in
  let t = S.create ~config () in
  S.start t;
  Fun.protect
    ~finally:(fun () ->
      S.stop t;
      try rm_rf dir with Sys_error _ -> ())
  @@ fun () ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let states = if smoke then 4 else 8 in
  let requests =
    List.concat_map
      (fun expr ->
        List.init states (fun state ->
            J.to_string
              (J.Obj
                 [
                   ("type", J.String "dc_op");
                   ("expr", J.String expr);
                   ("state", J.Int state);
                 ])))
      [ "a&b|c"; "a^b^c" ]
  in
  let time_pass () =
    let t0 = Unix.gettimeofday () in
    List.iter (fun line -> ignore (C.call_raw c line)) requests;
    Unix.gettimeofday () -. t0
  in
  let cold = time_pass () in
  let warm = time_pass () in
  let ratio = if cold > 0.0 then warm /. cold else 1.0 in
  Printf.printf "  dc_op batch (%d requests): cold %.1f ms, warm %.1f ms (ratio %.3f)\n"
    (List.length requests) (1e3 *. cold) (1e3 *. warm) ratio;
  let pings = if smoke then 500 else 3000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to pings do
    ignore (C.ping c)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let rps = if elapsed > 0.0 then float_of_int pings /. elapsed else 0.0 in
  Printf.printf "  ping round-trips: %d in %.2f s (%.0f req/s)\n%!" pings elapsed rps;
  [
    ("serve_warm_over_cold_latency_ratio", ratio);
    ("serve_requests_per_second", rps);
  ]

(* Shared A/A kernel for the observability overhead measurements: one
   XOR3 transient is ~1 ms, so time blocks of 20 and take the min of N
   blocks — single-run minima are too noisy for a few-percent
   comparison. *)
let obs_kernel () =
  let lc =
    Lattice_spice.Lattice_circuit.build Lattice_synthesis.Library.xor3_3x3
      ~stimulus:(Lattice_spice.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:50e-9)
  in
  ignore
    (Lattice_spice.Transient.run lc.Lattice_spice.Lattice_circuit.netlist ~h:1e-9
       ~t_stop:50e-9 ~record:[ "out" ] ())

let time_obs_kernel n =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Lattice_obs.Clock.now_ns () in
    for _ = 1 to 20 do
      obs_kernel ()
    done;
    let dt = float_of_int (Lattice_obs.Clock.now_ns () - t0) in
    if dt < !best then best := dt
  done;
  !best

(* Flight recorder: the ring records every completed span even while
   tracing is off, so its cost — one fetch-and-add plus one array store
   per span — must vanish into the noise floor (<= 1.05x, ISSUE 10).
   Min-of-N with the ring on over min-of-N with it off. *)
let flight_report () =
  print_endline "==================================================================";
  print_endline " Flight recorder: ring-enabled vs ring-disabled overhead";
  print_endline "==================================================================";
  let was = Lattice_obs.Ring.on () in
  obs_kernel ();
  (* warm-up *)
  Lattice_obs.Ring.set_enabled false;
  let off = time_obs_kernel 7 in
  Lattice_obs.Ring.set_enabled true;
  let on_ = time_obs_kernel 7 in
  Lattice_obs.Ring.set_enabled was;
  let ratio = on_ /. off in
  Printf.printf "  ring-on/ring-off A/A ratio: %.4f (%s)\n%!" ratio
    (if ratio <= 1.05 then "within the 1.05x target"
     else "above the 1.05x target on this host");
  [ ("flight_recorder_overhead_ratio", ratio) ]

(* Observability check: the tracing hooks compiled into the hot loops must
   be invisible while disabled (< 2%, DESIGN.md "Observability layer").
   Two identical min-of-N measurements of the XOR3 transient with obs off
   bound the noise floor; their ratio lands in the JSON. A third, fully
   traced, run feeds the histogram percentiles reported alongside. *)
let obs_report () =
  print_endline "==================================================================";
  print_endline " Observability: disabled-mode overhead and traced-mode percentiles";
  print_endline "==================================================================";
  let kernel = obs_kernel in
  let time_kernel = time_obs_kernel in
  kernel ();
  (* warm-up; the flight ring defaults on and would pollute a
     trace-disabled baseline, so it is off for both arms of the A/A *)
  let was_ring = Lattice_obs.Ring.on () in
  Lattice_obs.Ring.set_enabled false;
  let a = time_kernel 7 in
  let b = time_kernel 7 in
  Lattice_obs.Ring.set_enabled was_ring;
  let ratio = b /. a in
  Printf.printf "  disabled-obs A/A ratio: %.4f (%s)\n%!" ratio
    (if Float.abs (ratio -. 1.0) < 0.02 then "within the 2% noise target"
     else "above the 2% noise target on this host");
  Lattice_obs.Trace.set_enabled true;
  Lattice_obs.Metrics.set_enabled true;
  kernel ();
  Lattice_obs.Trace.set_enabled false;
  Lattice_obs.Metrics.set_enabled false;
  let n_events = List.length (Lattice_obs.Trace.events ()) in
  let safe x = if Float.is_finite x then x else 0.0 in
  let pct name p =
    safe (Lattice_obs.Metrics.Histogram.percentile (Lattice_obs.Metrics.histogram name) p)
  in
  let newton_p50 = pct "newton.iterations" 50.0
  and newton_p95 = pct "newton.iterations" 95.0
  and factor_p50_us = 1e6 *. pct "factor.seconds" 50.0
  and factor_p95_us = 1e6 *. pct "factor.seconds" 95.0 in
  Printf.printf
    "  traced run: %d events; newton iters p50 %.3g p95 %.3g; factor p50 %.3g us p95 %.3g us\n%!"
    n_events newton_p50 newton_p95 factor_p50_us factor_p95_us;
  Lattice_obs.Trace.reset ();
  Lattice_obs.Metrics.reset ();
  [
    ("obs_disabled_overhead_ratio", ratio);
    ("obs_newton_iterations_p50", newton_p50);
    ("obs_newton_iterations_p95", newton_p95);
    ("obs_factor_us_p50", factor_p50_us);
    ("obs_factor_us_p95", factor_p95_us);
    ("obs_trace_events", float_of_int n_events);
  ]

(* Asymptotic hot-spot kernels (DESIGN.md, "Geometric multigrid field
   solver" and "ZDD path counting"). These are multi-millisecond-to-
   multi-second kernels, so a min-of-k wall clock beats Bechamel's
   per-run OLS here. [--smoke] trims the size ladder for CI while
   keeping every ratio field present in the JSON. *)

let wall_ms ?(runs = 3) f =
  f ();
  (* warm-up *)
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Lattice_obs.Clock.now_ns () in
    f ();
    let dt = float_of_int (Lattice_obs.Clock.now_ns () - t0) /. 1e6 in
    if dt < !best then best := dt
  done;
  !best

let asymptotics_report ~smoke =
  print_endline "==================================================================";
  print_endline " Asymptotic hot spots: multigrid field solve and ZDD path counting";
  print_endline "==================================================================";
  let module D = Lattice_device in
  let solve_field solver n =
    ignore
      (D.Field2d.solve ~n ~solver square_hfo2 ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0)
  in
  let cg_48 = wall_ms (fun () -> solve_field D.Field2d.Cg 48) in
  Printf.printf "  field solve 48x48   CG        %10.2f ms\n%!" cg_48;
  let mg_sizes = if smoke then [ 48; 96 ] else [ 48; 96; 192; 256 ] in
  let mg =
    List.map
      (fun n ->
        let runs = if n >= 192 then 2 else 3 in
        let ms = wall_ms ~runs (fun () -> solve_field D.Field2d.Multigrid n) in
        Printf.printf "  field solve %3dx%-3d multigrid %10.2f ms\n%!" n n ms;
        (n, ms))
      mg_sizes
  in
  let mg_ms n = List.assoc n mg in
  let field_extras =
    (("field_cg_ms_48", cg_48)
     :: List.map (fun (n, ms) -> (Printf.sprintf "field_mg_ms_%d" n, ms)) mg)
    @ [ ("field_cg_over_mg_ratio_48", cg_48 /. mg_ms 48) ]
    @
    (* in smoke mode the largest grid run stands in for 256 so the ratio
       field is always present for the CI gate *)
    let largest = List.fold_left (fun acc (n, _) -> Int.max acc n) 0 mg in
    [ ("field_mg_256_over_cg_48_ratio", mg_ms (if smoke then largest else 256) /. cg_48) ]
  in
  Printf.printf "  CG/MG speedup at 48x48: %.1fx\n%!" (cg_48 /. mg_ms 48);
  (* the enum/ZDD crossover sits at 8x8, so smoke keeps that size *)
  let dims = if smoke then [ 7; 8 ] else [ 7; 8; 9 ] in
  let table1_extras =
    List.concat_map
      (fun d ->
        let runs = if d >= 9 then 1 else if d = 8 then 2 else 3 in
        let enum_ms =
          wall_ms ~runs (fun () -> ignore (Lattice_core.Paths.count_irredundant_enum ~rows:d ~cols:d))
        in
        let zdd_ms =
          (* pin the ZDD backend: count_irredundant auto-selects enum
             below the crossover, which would make this an A/A *)
          wall_ms ~runs:3 (fun () ->
              ignore (Lattice_core.Paths.count_irredundant_zdd ~rows:d ~cols:d))
        in
        Printf.printf "  Table I %dx%d        enum %10.2f ms   ZDD %10.2f ms   (%.1fx)\n%!" d d
          enum_ms zdd_ms (enum_ms /. zdd_ms);
        [
          (Printf.sprintf "table1_enum_ms_%dx%d" d d, enum_ms);
          (Printf.sprintf "table1_zdd_ms_%dx%d" d d, zdd_ms);
          (Printf.sprintf "table1_enum_over_zdd_ratio_%dx%d" d d, enum_ms /. zdd_ms);
        ])
      dims
  in
  field_extras @ table1_extras

(* Serial-vs-parallel ratios of the engine benches, by kernel name. On a
   single-core host these hover around 1.0 (domains timeshare one CPU);
   the JSON reports whatever was measured. *)
let engine_speedups results =
  let ratio base par =
    match (List.assoc_opt base results, List.assoc_opt par results) with
    | Some b, Some p when p > 0.0 -> Some (b /. p)
    | _ -> None
  in
  List.filter_map
    (fun (key, base, par) -> Option.map (fun r -> (key, r)) (ratio base par))
    [
      ("engine_mc_speedup_2_domains", engine_mc_serial_name, engine_mc_2_name);
      ("engine_mc_speedup_4_domains", engine_mc_serial_name, engine_mc_4_name);
      ("engine_campaign_speedup_2_domains", engine_campaign_serial_name, engine_campaign_2_name);
      ("engine_campaign_speedup_4_domains", engine_campaign_serial_name, engine_campaign_4_name);
    ]

let run_benchmarks () =
  print_endline "==================================================================";
  print_endline " Kernel timings (Bechamel, monotonic clock)";
  print_endline "==================================================================";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = ref [] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let name = Test.Elt.name elt in
          let run_results = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock run_results in
          match Analyze.OLS.estimates est with
          | Some [ ns_per_run ] ->
            results := (name, ns_per_run) :: !results;
            let value, unit_ =
              if ns_per_run >= 1e9 then (ns_per_run /. 1e9, "s")
              else if ns_per_run >= 1e6 then (ns_per_run /. 1e6, "ms")
              else if ns_per_run >= 1e3 then (ns_per_run /. 1e3, "us")
              else (ns_per_run, "ns")
            in
            Printf.printf "  %-48s %10.2f %s/run\n%!" name value unit_
          | Some _ | None -> Printf.printf "  %-48s (no estimate)\n%!" name)
        (Test.elements test))
    all_tests;
  List.rev !results

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~newton_allocation_free ~extras results =
  let oc = open_out path in
  output_string oc "{\n  \"newton_inner_loop_allocation_free\": ";
  output_string oc (if newton_allocation_free then "true" else "false");
  List.iter
    (fun (key, v) -> Printf.fprintf oc ",\n  \"%s\": %.4f" (json_escape key) v)
    extras;
  (* smoke runs skip the Bechamel suite: no kernels key rather than an
     empty object that consumers would mistake for "measured, found none" *)
  if results <> [] then begin
    output_string oc ",\n  \"kernels_ns_per_run\": {\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "    \"%s\": %.2f%s\n" (json_escape name) ns
          (if i = List.length results - 1 then "" else ","))
      results;
    output_string oc "  }\n}\n"
  end
  else output_string oc "\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d kernels)\n%!" path (List.length results)

let () =
  let json = Array.exists (String.equal "--json") Sys.argv in
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  if not (json || smoke) then experiments ();
  let allocation_free = allocation_check () in
  let asym_extras = asymptotics_report ~smoke in
  let persistent_rate = persistent_cache_report () in
  let persistent_extras = [ ("persistent_cache_hit_rate", persistent_rate) ] in
  let serve_extras = serve_report ~smoke in
  let flight_extras = flight_report () in
  if smoke then begin
    (* CI smoke: the hot-spot kernels at reduced sizes plus the (cheap)
       persistent-store replay, daemon round-trips and flight-recorder
       A/A; skip the Bechamel suite and the in-memory cache/obs reports
       to keep the job short. *)
    if json then
      write_json "BENCH_spice.json" ~newton_allocation_free:allocation_free
        ~extras:(persistent_extras @ serve_extras @ flight_extras @ asym_extras) []
  end
  else begin
    let cache_hit_rate = cache_rerun_report () in
    let obs_extras = obs_report () in
    let results = run_benchmarks () in
    let extras =
      engine_speedups results
      @ [ ("engine_cache_hit_rate_rerun", cache_hit_rate) ]
      @ persistent_extras
      @ serve_extras
      @ flight_extras
      @ obs_extras
      @ asym_extras
    in
    if json then
      write_json "BENCH_spice.json" ~newton_allocation_free:allocation_free ~extras results
  end
