(* ftl — four-terminal switching lattice toolkit.

   Command-line front end over the reproduction experiments and the
   synthesis flow. `ftl all` regenerates every table/figure of the paper;
   the other subcommands expose individual experiments and the synthesis
   tools. *)

open Cmdliner

let print_report r = print_string (Lattice_experiments.Report.render r)

(* --- parallel batch engine -------------------------------------------- *)

let domains_arg =
  let doc =
    "Worker domains for the parallel batch-simulation engine. Defaults to \
     the $(b,FTL_DOMAINS) environment variable when set, else the number \
     of cores. Results are bit-identical at any domain count."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Root of the crash-safe persistent DC-result cache. Results are spilled \
     to content-addressed entry files under $(docv) (atomic writes, \
     per-entry checksums; corrupt entries are detected and treated as \
     misses), so a re-run of an identical campaign in a fresh process \
     starts warm. Defaults to the $(b,FTL_CACHE_DIR) environment variable \
     when set; an empty string disables the store."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let deadline_arg =
  let doc =
    "Per-job wall-clock deadline in seconds. A job (one Monte-Carlo die, \
     one defect sample) that overruns is stopped at the next solver \
     checkpoint and classified as timed out instead of stalling the batch; \
     with $(b,--retries), timed-out jobs are retried under a deadline grown \
     by 2x per attempt."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let batch_deadline_arg =
  let doc =
    "Whole-batch wall-clock deadline in seconds. When it expires, in-flight \
     jobs stop at their next checkpoint and remaining jobs are classified \
     as cancelled; the command still reports every job."
  in
  Arg.(value & opt (some float) None & info [ "batch-deadline" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc =
    "Retries per job on top of the first attempt. Crashed jobs are always \
     eligible; timed-out jobs when $(b,--deadline) is set (budget doubles \
     each attempt); non-convergent defect samples are re-run under an \
     escalated Newton budget."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let make_engine ?cache_dir domains =
  Lattice_engine.Engine.create ?domains ?store_dir:cache_dir ()

let job_policy deadline retries =
  {
    Lattice_engine.Engine.deadline_s = deadline;
    attempts = 1 + Int.max 0 retries;
    backoff = 2.0;
  }

(* telemetry is diagnostics, not results: keep stdout machine-parseable *)
let print_engine_summary e = prerr_endline (Lattice_engine.Engine.summary e)

(* --- observability ----------------------------------------------------- *)

(* Global [--trace FILE] / [--metrics] flags, threaded through every
   subcommand as a leading unit argument so enabling happens before the
   command body runs. The trace file and the metrics summary are emitted
   from [at_exit], after the command (and any [at_exit] engine summaries)
   finished. *)
let obs_term =
  let trace_arg =
    let doc =
      "Record hierarchical spans (transient steps, Newton solves, LU \
       factor/solve, cache traffic, campaign phases) and write them to \
       $(docv) on exit — Chrome trace-event JSON loadable in Perfetto \
       (ui.perfetto.dev) or chrome://tracing, or JSONL when $(docv) ends \
       in .jsonl."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Collect counters and log-scale histograms (Newton iterations per \
       solve, factor/solve times, transient step sizes, cache hit \
       latency) and print the summary to stderr on exit."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let setup trace metrics =
    (match trace with
    | None -> ()
    | Some path ->
      Lattice_obs.Trace.set_enabled true;
      at_exit (fun () ->
          Lattice_obs.Export.write ~path;
          Printf.eprintf "trace written to %s\n%!" path));
    if metrics then begin
      Lattice_obs.Metrics.set_enabled true;
      at_exit (fun () -> prerr_string (Lattice_obs.Export.summary ()))
    end
  in
  Term.(const setup $ trace_arg $ metrics_arg)

(* --- all -------------------------------------------------------------- *)

let all_cmd =
  let doc = "regenerate every table and figure of the paper" in
  Cmd.v (Cmd.info "all" ~doc) Term.(const Lattice_experiments.All.print_all $ obs_term)

(* --- table1 ----------------------------------------------------------- *)

let table1 () max_dim =
  print_report (Lattice_experiments.Exp_table1.report ~max_dim ())

let table1_cmd =
  let max_dim =
    let doc =
      "Largest lattice dimension to recompute (2-12). Counting runs on the \
       path-family ZDD, so the full published table (9) takes well under a \
       second and dimensions 10-12 extend past the paper."
    in
    Arg.(value & opt int 8 & info [ "d"; "max-dim" ] ~docv:"DIM" ~doc)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"recompute Table I (products of the m x n lattice function)")
    Term.(const table1 $ obs_term $ max_dim)

(* --- function --------------------------------------------------------- *)

let lattice_function () rows cols =
  if rows * cols > 62 then prerr_endline "lattice too large (max 62 sites)"
  else begin
    let sop = Lattice_core.Lattice_function.of_generic ~rows ~cols in
    Printf.printf "f(%dx%d) has %d products:\n%s\n" rows cols
      (Lattice_boolfn.Sop.product_count sop)
      (Lattice_boolfn.Sop.to_string ~names:Lattice_boolfn.Sop.default_names sop)
  end

let rows_arg =
  Arg.(value & opt int 3 & info [ "m"; "rows" ] ~docv:"M" ~doc:"Lattice rows.")

let cols_arg =
  Arg.(value & opt int 3 & info [ "n"; "cols" ] ~docv:"N" ~doc:"Lattice columns.")

let function_cmd =
  Cmd.v
    (Cmd.info "function" ~doc:"print the generic m x n lattice function")
    Term.(const lattice_function $ obs_term $ rows_arg $ cols_arg)

(* --- synth ------------------------------------------------------------ *)

let synth () expr exhaustive max_area domains cache_dir =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  | ast, names ->
    let nvars = Array.length names in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let pname i = if i < nvars then names.(i) else Printf.sprintf "v%d" i in
    let r = Lattice_synthesis.Altun_riedel.synthesize tt in
    let grid = r.Lattice_synthesis.Altun_riedel.grid in
    Printf.printf "dual-based synthesis (%dx%d):\n%s\n"
      grid.Lattice_core.Grid.rows grid.Lattice_core.Grid.cols
      (Lattice_core.Grid.to_string ~names:pname grid);
    Printf.printf "validates: %b\n"
      (Lattice_synthesis.Validate.realizes grid tt);
    if exhaustive then begin
      let engine = make_engine ?cache_dir domains in
      (match
         Lattice_synthesis.Exhaustive.minimal
           ~alphabet:Lattice_synthesis.Exhaustive.Literals_and_constants ~max_area tt
       with
      | Some (g, rr, cc) ->
        Printf.printf "\nexhaustive minimum (%dx%d):\n%s\n" rr cc
          (Lattice_core.Grid.to_string ~names:pname g);
        if nvars <= 5 then
          Printf.printf "circuit-validates: %b\n"
            (Lattice_synthesis.Exhaustive.validate_circuit ~engine g ~target:tt)
      | None -> Printf.printf "\nno lattice up to area %d realizes the function\n" max_area);
      print_engine_summary engine
    end

let synth_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR"
           ~doc:"Boolean expression, e.g. \"a b' + c\" or \"a ^ b ^ c\".")
  in
  let exhaustive =
    Arg.(value & flag & info [ "e"; "exhaustive" ] ~doc:"Also search for the minimum-size lattice.")
  in
  let max_area =
    Arg.(value & opt int 9 & info [ "max-area" ] ~docv:"AREA" ~doc:"Exhaustive-search area cap.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"synthesize a lattice for a Boolean expression")
    Term.(const synth $ obs_term $ expr $ exhaustive $ max_area $ domains_arg $ cache_dir_arg)

(* --- device experiments ---------------------------------------------- *)

let shape_arg =
  let shape_conv =
    Arg.enum
      [ ("square", Lattice_device.Geometry.Square);
        ("cross", Lattice_device.Geometry.Cross);
        ("junctionless", Lattice_device.Geometry.Junctionless) ]
  in
  Arg.(value & opt shape_conv Lattice_device.Geometry.Square
       & info [ "s"; "shape" ] ~docv:"SHAPE" ~doc:"Device shape: square, cross or junctionless.")

let iv_cmd =
  let run () shape domains cache_dir =
    let engine = make_engine ?cache_dir domains in
    print_report (Lattice_experiments.Exp_iv.report ~engine shape);
    print_engine_summary engine
  in
  Cmd.v (Cmd.info "iv" ~doc:"device I-V curves and figures of merit (Figs 5-7)")
    Term.(const run $ obs_term $ shape_arg $ domains_arg $ cache_dir_arg)

let field_cmd =
  let run () n = print_report (Lattice_experiments.Exp_field.report ~n ()) in
  let n_arg =
    let doc =
      "Field-solver grid resolution. Grids of 32 cells and up are solved by \
       geometric multigrid (V-cycle-preconditioned CG), smaller ones by plain \
       CG; 256 and beyond stay interactive."
    in
    Arg.(value & opt int 48 & info [ "n"; "grid" ] ~docv:"N" ~doc)
  in
  Cmd.v (Cmd.info "field" ~doc:"current-density profiles (Fig 8)")
    Term.(const run $ obs_term $ n_arg)

let fit_cmd =
  let run () = print_report (Lattice_experiments.Exp_fit.report ()) in
  Cmd.v (Cmd.info "fit" ~doc:"level-1 MOSFET parameter extraction (Fig 10)")
    Term.(const run $ obs_term)

let xor3_cmd =
  let run () =
    print_report (Lattice_experiments.Exp_xor3.report ());
    print_report (Lattice_experiments.Exp_transient.report ())
  in
  Cmd.v (Cmd.info "xor3" ~doc:"XOR3 lattices and the Fig 11 transient")
    Term.(const run $ obs_term)

let series_cmd =
  let run () max_n = print_report (Lattice_experiments.Exp_series.report ~max_n ()) in
  let max_n =
    Arg.(value & opt int 21 & info [ "max-n" ] ~docv:"N" ~doc:"Longest chain to simulate.")
  in
  Cmd.v (Cmd.info "series" ~doc:"series-switch drive capability (Fig 12)")
    Term.(const run $ obs_term $ max_n)

let table2_cmd =
  let run () = print_report (Lattice_experiments.Exp_table2.report ()) in
  Cmd.v (Cmd.info "table2" ~doc:"device structural features (Table II)")
    Term.(const run $ obs_term)

(* --- optimize (paper Sec VI-A automated design tool) ------------------- *)

let optimize () expr use_spice max_area =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  | ast, names ->
    let nvars = Array.length names in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let pname i = if i < nvars then names.(i) else Printf.sprintf "v%d" i in
    let spec = { Lattice_flow.Optimizer.default_spec with Lattice_flow.Optimizer.max_area } in
    let ranked = Lattice_flow.Optimizer.optimize ~spec ~use_spice ~expr:ast tt in
    List.iter
      (fun e -> print_endline (Lattice_flow.Optimizer.describe e ~names:pname))
      ranked

let optimize_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Target expression.")
  in
  let use_spice =
    Arg.(value & flag & info [ "spice" ] ~doc:"Measure delay/power with the circuit simulator.")
  in
  let max_area =
    Arg.(value & opt (some int) None & info [ "max-area" ] ~docv:"N" ~doc:"Area bound (switches).")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"rank lattice implementations by area/delay/power")
    Term.(const optimize $ obs_term $ expr $ use_spice $ max_area)

(* --- faults ------------------------------------------------------------ *)

let faults () expr =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  | ast, names ->
    let nvars = Array.length names in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let r = Lattice_synthesis.Altun_riedel.synthesize tt in
    let grid = r.Lattice_synthesis.Altun_riedel.grid in
    let pname i = if i < nvars then names.(i) else Printf.sprintf "v%d" i in
    Printf.printf "lattice (%dx%d):\n%s\n" grid.Lattice_core.Grid.rows
      grid.Lattice_core.Grid.cols
      (Lattice_core.Grid.to_string ~names:pname grid);
    let a = Lattice_synthesis.Faults.analyze grid in
    Printf.printf "single stuck-ON/OFF faults: %d total, %d detectable\n"
      a.Lattice_synthesis.Faults.total a.Lattice_synthesis.Faults.detectable;
    List.iter
      (fun f -> Printf.printf "  undetectable: %s\n" (Lattice_synthesis.Faults.fault_name f))
      a.Lattice_synthesis.Faults.undetectable;
    Printf.printf "greedy test set (%d vectors): %s\n"
      (List.length a.Lattice_synthesis.Faults.test_set)
      (String.concat ", "
         (List.map
            (fun m ->
              String.concat ""
                (List.init nvars (fun v -> string_of_int ((m lsr v) land 1))))
            a.Lattice_synthesis.Faults.test_set));
    Printf.printf "coverage of that set: %.1f%%\n"
      (100.0 *. Lattice_synthesis.Faults.coverage grid ~vectors:a.Lattice_synthesis.Faults.test_set)

let faults_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Target expression.")
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"stuck-fault analysis and test generation for a synthesized lattice")
    Term.(const faults $ obs_term $ expr)

let complementary_cmd =
  let run () = print_report (Lattice_experiments.Exp_complementary.report ()) in
  Cmd.v
    (Cmd.info "complementary" ~doc:"complementary lattice structure experiment (paper Sec VI-A)")
    Term.(const run $ obs_term)

let frequency_cmd =
  let run () = print_report (Lattice_experiments.Exp_frequency.report ()) in
  Cmd.v
    (Cmd.info "frequency" ~doc:"maximum frequency and dynamic energy (paper Sec VI-A)")
    Term.(const run $ obs_term)

(* --- yield ------------------------------------------------------------- *)

let yield () expr samples sigma_vth domains cache_dir deadline batch_deadline retries =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  | ast, names ->
    let nvars = Array.length names in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let r = Lattice_synthesis.Altun_riedel.synthesize tt in
    let grid = r.Lattice_synthesis.Altun_riedel.grid in
    Printf.printf "lattice: %dx%d (dual-based)\n" grid.Lattice_core.Grid.rows
      grid.Lattice_core.Grid.cols;
    let engine = make_engine ?cache_dir domains in
    let mc =
      Lattice_flow.Monte_carlo.run ~engine
        ~policy:(job_policy deadline retries)
        ~cancel:(Lattice_engine.Cancel.of_deadline_s batch_deadline)
        grid ~target:tt ~samples
        ~variation:{ Lattice_flow.Monte_carlo.sigma_vth; sigma_kp_rel = 0.1 }
    in
    Printf.printf
      "Monte-Carlo (%d samples, sigma_Vth %.0f mV, sigma_Kp 10%%):\n\
      \  yield %.1f%%   V_OL %.3f +- %.3f V   V_OH(min) %.3f V\n"
      samples (sigma_vth *. 1e3)
      (100.0 *. mc.Lattice_flow.Monte_carlo.yield)
      mc.Lattice_flow.Monte_carlo.v_low_mean mc.Lattice_flow.Monte_carlo.v_low_std
      mc.Lattice_flow.Monte_carlo.v_high_mean;
    print_engine_summary engine

let yield_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Target expression.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let sigma =
    Arg.(value & opt float 0.03 & info [ "sigma-vth" ] ~docv:"V" ~doc:"Vth sigma in volts.")
  in
  Cmd.v
    (Cmd.info "yield" ~doc:"Monte-Carlo process-variation yield of a synthesized lattice")
    Term.(
      const yield $ obs_term $ expr $ samples $ sigma $ domains_arg $ cache_dir_arg
      $ deadline_arg $ batch_deadline_arg $ retries_arg)

(* --- defects ----------------------------------------------------------- *)

let defects () expr all_classes domains cache_dir deadline batch_deadline retries =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  | ast, names ->
    let nvars = Array.length names in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let r = Lattice_synthesis.Altun_riedel.synthesize tt in
    let grid = r.Lattice_synthesis.Altun_riedel.grid in
    Printf.printf "lattice: %dx%d (dual-based)\n" grid.Lattice_core.Grid.rows
      grid.Lattice_core.Grid.cols;
    let module Fc = Lattice_flow.Fault_campaign in
    let classes =
      if all_classes then Lattice_spice.Defects.all_classes
      else [ Lattice_spice.Defects.Opens; Lattice_spice.Defects.Shorts ]
    in
    let options = { Fc.default_options with Fc.classes } in
    let engine = make_engine ?cache_dir domains in
    let rep =
      Fc.run ~engine
        ~policy:(job_policy deadline retries)
        ~cancel:(Lattice_engine.Cancel.of_deadline_s batch_deadline)
        ~options grid ~target:tt
    in
    Printf.printf
      "campaign: %d samples — %d functional, %d degraded, %d faulty, %d non-convergent\n"
      (Array.length rep.Fc.samples) rep.Fc.counts.Fc.functional rep.Fc.counts.Fc.degraded
      rep.Fc.counts.Fc.faulty rep.Fc.counts.Fc.non_convergent;
    Printf.printf "test set (%d vectors) detects %d/%d samples; %d silent\n"
      (List.length rep.Fc.test_set) rep.Fc.detected (Array.length rep.Fc.samples) rep.Fc.silent;
    List.iter
      (fun (rp : Fc.repair) ->
        match rp.Fc.remapped with
        | None ->
          Printf.printf "  repair %s: no remapping found\n" (Lattice_spice.Defects.name rp.Fc.defect)
        | Some g ->
          Printf.printf "  repair %s: remapped to %dx%d (%+d spare cols), re-verified %s\n"
            (Lattice_spice.Defects.name rp.Fc.defect) g.Lattice_core.Grid.rows
            g.Lattice_core.Grid.cols rp.Fc.spare_cols_used
            (if rp.Fc.reverified then "OK" else "FAILED"))
      rep.Fc.repairs;
    print_engine_summary engine

let defects_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Target expression.")
  in
  let all_classes =
    Arg.(value & flag & info [ "all-classes" ] ~doc:"Include bridges, broken terminals and gate leaks.")
  in
  Cmd.v
    (Cmd.info "defects"
       ~doc:"circuit-level defect campaign (classification, detection, remapping) for a synthesized lattice")
    Term.(
      const defects $ obs_term $ expr $ all_classes $ domains_arg $ cache_dir_arg
      $ deadline_arg $ batch_deadline_arg $ retries_arg)

(* --- export ------------------------------------------------------------ *)

let export () expr =
  match Lattice_boolfn.Expr.parse expr with
  | exception Lattice_boolfn.Expr.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 2
  | ast, names ->
    let nvars = Array.length names in
    let bit_time = 100e-9 in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
    let r = Lattice_synthesis.Altun_riedel.synthesize tt in
    let lc =
      Lattice_spice.Lattice_circuit.build r.Lattice_synthesis.Altun_riedel.grid
        ~stimulus:(Lattice_spice.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time)
    in
    let t_stop = bit_time *. float_of_int (1 lsl nvars) in
    let deck =
      Lattice_deck.Deck.of_netlist
        ~title:(Printf.sprintf "four-terminal switching lattice for %s" expr)
        ~analyses:
          [ Lattice_deck.Deck.Op; Lattice_deck.Deck.Tran { step = bit_time /. 20.0; t_stop } ]
        ~prints:[ Lattice_deck.Deck.Vprobe lc.Lattice_spice.Lattice_circuit.output_node ]
        lc.Lattice_spice.Lattice_circuit.netlist
    in
    print_string (Lattice_deck.Deck.emit deck)

let export_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Target expression.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"synthesize a lattice and print its circuit as a canonical SPICE deck \
             (re-runnable with $(b,ftl run), byte-stable under parse/emit roundtrips)")
    Term.(const export $ obs_term $ expr)

(* --- run (SPICE deck) --------------------------------------------------- *)

let read_deck_file path =
  try
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Printf.eprintf "ftl run: %s\n" msg;
    exit 2

let run_deck () path smoke check domains cache_dir deadline =
  let file = if path = "-" then "<stdin>" else path in
  let src = read_deck_file path in
  match Lattice_deck.Deck.parse src with
  | Error e ->
    Printf.eprintf "%s\n" (Lattice_deck.Deck.error_to_string ~file e);
    exit 2
  | Ok deck ->
    if check then begin
      (* Roundtrip audit: emit must be a fixed point of parse∘emit, and the
         structural digest must survive the text boundary. *)
      let once = Lattice_deck.Deck.emit deck in
      match Lattice_deck.Deck.parse once with
      | Error e ->
        Printf.eprintf "%s: canonical form fails to reparse: %s\n" file
          (Lattice_deck.Deck.error_to_string e);
        exit 4
      | Ok deck2 ->
        let twice = Lattice_deck.Deck.emit deck2 in
        let d1 = Lattice_spice.Netlist.structural_digest deck.Lattice_deck.Deck.netlist in
        let d2 = Lattice_spice.Netlist.structural_digest deck2.Lattice_deck.Deck.netlist in
        if once <> twice then begin
          Printf.eprintf "%s: emit/parse roundtrip is not idempotent\n" file;
          exit 4
        end;
        if d1 <> d2 then begin
          Printf.eprintf "%s: structural digest changed across roundtrip (%s -> %s)\n" file d1 d2;
          exit 4
        end;
        Printf.printf "%s: roundtrip stable, digest %s preserved\n" file d1
    end
    else begin
      let engine = make_engine ?cache_dir domains in
      let cancel = Lattice_engine.Cancel.of_deadline_s deadline in
      match Lattice_deck.Runner.run ~engine ~cancel ~smoke deck with
      | Ok r ->
        print_string (Lattice_deck.Runner.render r);
        print_engine_summary engine
      | Error msg ->
        Printf.eprintf "ftl run: %s: %s\n" file msg;
        print_engine_summary engine;
        exit 3
      | exception Lattice_engine.Cancel.Cancelled reason ->
        Printf.eprintf "ftl run: %s: cancelled (%s)\n" file
          (Lattice_engine.Cancel.reason_name reason);
        exit 3
    end

let run_cmd =
  let deck_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DECK"
           ~doc:"SPICE deck file ($(b,-) reads stdin).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Cap analysis sizes for CI smoke runs (transients to 50 steps, \
                 sweeps to 5 points, AC to 3 points/decade).")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Do not simulate; verify the deck's emit/parse roundtrip is \
                 idempotent and digest-preserving, then exit.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"parse a SPICE deck and execute its analysis cards through the batch engine")
    Term.(
      const run_deck $ obs_term $ deck_file $ smoke $ check $ domains_arg $ cache_dir_arg
      $ deadline_arg)

(* --- histogram ----------------------------------------------------------- *)

let histogram () rows cols =
  let h = Lattice_core.Paths.length_histogram ~rows ~cols in
  Printf.printf "products of the %dx%d lattice function by literal count:\n" rows cols;
  let total = Array.fold_left ( + ) 0 h in
  Array.iteri
    (fun k count ->
      if count > 0 then begin
        let bar_len = Int.max 1 (count * 50 / Int.max 1 total) in
        Printf.printf "  %2d literals: %9d %s\n" k count (String.make bar_len '#')
      end)
    h;
  Printf.printf "  total: %d products\n" total

let histogram_cmd =
  Cmd.v
    (Cmd.info "histogram" ~doc:"product-size distribution of the generic m x n lattice function")
    Term.(const histogram $ obs_term $ rows_arg $ cols_arg)

(* --- serve ------------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path to listen on (serve) or connect to (client)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_port_arg =
  let doc = "TCP port to listen on (serve; 0 picks an ephemeral port) or connect to (client)." in
  Arg.(value & opt (some int) None & info [ "tcp-port" ] ~docv:"PORT" ~doc)

let tcp_host_arg =
  let doc = "Host for $(b,--tcp-port)." in
  Arg.(value & opt string "127.0.0.1" & info [ "tcp-host" ] ~docv:"HOST" ~doc)

let serve () socket tcp_port tcp_host domains cache_dir workers queue quota default_deadline
    max_frame drain allow_sleep quiet flight_dir slow_ms access_log =
  let module S = Lattice_serve.Server in
  if socket = None && tcp_port = None then begin
    prerr_endline "ftl serve: pass --socket PATH and/or --tcp-port N";
    exit 2
  end;
  let config =
    {
      S.default_config with
      S.socket_path = socket;
      tcp_port;
      tcp_host;
      domains;
      store_dir = cache_dir;
      workers;
      queue_capacity = queue;
      max_inflight_per_client = quota;
      default_deadline_s = (if default_deadline > 0.0 then Some default_deadline else None);
      max_frame;
      drain_deadline_s = drain;
      allow_sleep;
      log =
        (if quiet then None
         else Some (fun line -> Printf.eprintf "[ftl-serve] %s\n%!" line));
      flight_dir = (match flight_dir with Some _ -> flight_dir | None -> S.default_config.S.flight_dir);
      slow_threshold_s = (match slow_ms with Some ms -> Some (ms /. 1e3) | None -> None);
      access_log_path = access_log;
    }
  in
  let t = S.create ~config () in
  S.run t;
  print_engine_summary (S.engine t)

let serve_cmd =
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker threads executing compute requests against the shared engine.")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Admission-queue capacity; a full queue answers $(b,overloaded).")
  in
  let quota =
    Arg.(value & opt int 16 & info [ "quota" ] ~docv:"N"
           ~doc:"Per-connection in-flight request quota; beyond it the daemon answers \
                 $(b,quota_exceeded).")
  in
  let default_deadline =
    Arg.(value & opt float 30.0 & info [ "default-deadline" ] ~docv:"SECONDS"
           ~doc:"Deadline applied to requests that name none (0 disables).")
  in
  let max_frame =
    Arg.(value & opt int 65536 & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Request-line byte cap; longer frames answer $(b,frame_too_long).")
  in
  let drain =
    Arg.(value & opt float 10.0 & info [ "drain" ] ~docv:"SECONDS"
           ~doc:"Graceful-shutdown budget for draining queued and in-flight jobs.")
  in
  let allow_sleep =
    Arg.(value & flag & info [ "allow-sleep" ]
           ~doc:"Accept the test-only $(b,sleep) request (load/backpressure testing).")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress lifecycle logging.") in
  let flight_dir =
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Flight-recorder spool directory: a request that errors, times out or \
                 overruns $(b,--slow-ms) dumps the in-memory span ring there as \
                 Chrome-trace JSONL (bounded: 64 files / 16 MiB, oldest evicted). \
                 Defaults to $(b,FTL_FLIGHT_DIR) when set.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Also flight-dump requests slower than $(docv) milliseconds.")
  in
  let access_log =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Structured JSONL access log, one line per request (id, type, outcome, \
                 duration, cache hits, DC solves, retries); rotated at 8 MiB.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"long-running simulation daemon over newline-delimited JSON (Unix socket and/or TCP)")
    Term.(
      const serve $ obs_term $ socket_arg $ tcp_port_arg $ tcp_host_arg $ domains_arg
      $ cache_dir_arg $ workers $ queue $ quota $ default_deadline $ max_frame $ drain
      $ allow_sleep $ quiet $ flight_dir $ slow_ms $ access_log)

(* --- client ------------------------------------------------------------ *)

let client () socket tcp_port tcp_host deadline requests =
  let module C = Lattice_serve.Client in
  let module J = Lattice_serve.Json in
  let addr =
    match (socket, tcp_port) with
    | Some path, _ -> C.Unix_socket path
    | None, Some port -> C.Tcp (tcp_host, port)
    | None, None ->
      prerr_endline "ftl client: pass --socket PATH or --tcp-port N";
      exit 2
  in
  let c = C.connect addr in
  let all_ok = ref true in
  (* under --trace, every request gets a fresh span here and carries
     trace_id/parent_span on the wire, so the daemon's spans for it link
     under ours: the exported file is one stitched Perfetto timeline *)
  let trace_id =
    if not (Lattice_obs.Trace.on ()) then None
    else
      Some
        (Printf.sprintf "ftl-%d-%06x" (Unix.getpid ())
           (int_of_float (Unix.gettimeofday () *. 1e3) land 0xffffff))
  in
  let seq = ref 0 in
  let send line =
    let line = String.trim line in
    if line <> "" then begin
      (* a bare word is shorthand for {"type": word}; JSON passes through *)
      let line =
        if line.[0] = '{' then line
        else
          J.to_string
            (J.Obj
               (( "type", J.String line )
               ::
               (match deadline with
               | None -> []
               | Some d -> [ ("deadline_s", J.Float d) ])))
      in
      let line, span_args =
        match trace_id with
        | None -> (line, [])
        | Some tid -> (
          match J.parse line with
          | exception J.Parse_error _ -> (line, [])  (* let the daemon reject it *)
          | J.Obj pairs when not (List.mem_assoc "trace_id" pairs) ->
            incr seq;
            let span_id = Printf.sprintf "%s.%d" tid !seq in
            let ty =
              Option.value ~default:"?" (Option.bind (List.assoc_opt "type" pairs) J.to_str)
            in
            ( J.to_string
                (J.Obj
                   (pairs
                   @ [ ("trace_id", J.String tid); ("parent_span", J.String span_id) ])),
              [ ("trace_id", tid); ("span_id", span_id); ("request", ty) ] )
          | _ -> (line, []))
      in
      let call () =
        match C.call_raw c line with
        | resp ->
          print_endline resp;
          (match Lattice_serve.Protocol.parse_response resp with
          | Ok { Lattice_serve.Protocol.payload = Ok _; _ } -> ()
          | Ok _ | Error _ -> all_ok := false)
        | exception C.Protocol_error msg ->
          Printf.eprintf "ftl client: %s\n" msg;
          all_ok := false
      in
      if span_args = [] then call ()
      else Lattice_obs.Trace.with_span ~cat:"client" ~args:span_args "client.request" call
    end
  in
  (match requests with
  | [] -> ( try
      while true do
        send (input_line stdin)
      done
    with End_of_file -> ())
  | rs -> List.iter send rs);
  C.close c;
  if not !all_ok then exit 1

let client_cmd =
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Attach $(b,deadline_s) to shorthand (non-JSON) requests.")
  in
  let requests =
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST"
           ~doc:"Requests: raw JSON objects, or bare type names (e.g. $(b,ping), \
                 $(b,stats), $(b,shutdown)). With none, NDJSON is read from stdin. \
                 Responses print to stdout, one line per request; the exit code is \
                 non-zero when any response is an error.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"send requests to a running ftl serve daemon (with the global $(b,--trace) \
             flag, requests carry trace_id/parent_span so daemon spans link under the \
             client's in one Perfetto timeline)")
    Term.(
      const client $ obs_term $ socket_arg $ tcp_port_arg $ tcp_host_arg $ deadline $ requests)

(* --- top --------------------------------------------------------------- *)

(* Live daemon monitor: poll [stats], redraw a plain-ANSI dashboard.
   Reads only the stats JSON — no extra daemon support needed. *)
let top () socket tcp_port tcp_host interval iterations =
  let module C = Lattice_serve.Client in
  let module J = Lattice_serve.Json in
  let addr =
    match (socket, tcp_port) with
    | Some path, _ -> C.Unix_socket path
    | None, Some port -> C.Tcp (tcp_host, port)
    | None, None ->
      prerr_endline "ftl top: pass --socket PATH or --tcp-port N";
      exit 2
  in
  let mem path j =
    List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some j) path
  in
  let num path j =
    match Option.bind (mem path j) J.to_float with Some f -> f | None -> Float.nan
  in
  let int_ path j =
    match Option.bind (mem path j) J.to_int with Some n -> n | None -> 0
  in
  let fnum v = if Float.is_nan v then "    -" else Printf.sprintf "%8.2f" v in
  let tty = Unix.isatty Unix.stdout in
  let eol = if tty then "\027[K\n" else "\n" in
  let render j =
    let b = Buffer.create 2048 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ eol)) fmt in
    let where =
      match addr with
      | C.Unix_socket p -> p
      | C.Tcp (h, p) -> Printf.sprintf "%s:%d" h p
    in
    line "ftl top — %s   uptime %.0fs   conns %d   every %.1fs (q quits via Ctrl-C)" where
      (num [ "server"; "uptime_s" ] j)
      (int_ [ "server"; "connections" ] j)
      interval;
    line "requests %d   ok %d   err %d   timeouts %d   overloaded %d   quota %d   malformed %d"
      (int_ [ "server"; "requests" ] j) (int_ [ "server"; "ok" ] j)
      (int_ [ "server"; "errors" ] j)
      (int_ [ "server"; "request_timeouts" ] j)
      (int_ [ "server"; "overloaded" ] j)
      (int_ [ "server"; "quota_rejected" ] j)
      (int_ [ "server"; "malformed" ] j);
    let inflight = int_ [ "server"; "inflight" ] j in
    let workers = int_ [ "server"; "workers" ] j in
    let util = if workers = 0 then 0.0 else 100.0 *. float_of_int inflight /. float_of_int workers in
    line "queue %d/%d   inflight %d/%d workers (%.0f%% busy)   flight dumps %d"
      (int_ [ "server"; "queue_depth" ] j)
      (int_ [ "server"; "queue_capacity" ] j)
      inflight workers util
      (int_ [ "server"; "flight_dumps" ] j);
    let hits = int_ [ "engine"; "cache"; "hits" ] j in
    let misses = int_ [ "engine"; "cache"; "misses" ] j in
    let hit_rate =
      if hits + misses = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
    in
    line "engine: dc_solves %d   cache %d hit / %d miss (%.1f%% hit)   retries %d"
      (int_ [ "engine"; "dc_solves" ] j) hits misses hit_rate
      (int_ [ "engine"; "retries" ] j);
    line "";
    line "window (%.0fs)   rate %.2f req/s" (num [ "window"; "window_s" ] j)
      (let r = num [ "window"; "all"; "rate_per_s" ] j in
       if Float.is_nan r then 0.0 else r);
    line "  %-12s %7s %5s %5s %8s %8s %8s %8s" "type" "count" "err" "t/o" "p50ms" "p95ms"
      "p99ms" "maxms";
    let row label s =
      line "  %-12s %7d %5d %5d %s %s %s %s" label (int_ [ "count" ] s) (int_ [ "errors" ] s)
        (int_ [ "timeouts" ] s)
        (fnum (num [ "p50_ms" ] s))
        (fnum (num [ "p95_ms" ] s))
        (fnum (num [ "p99_ms" ] s))
        (fnum (num [ "max_ms" ] s))
    in
    (match mem [ "window"; "all" ] j with Some s -> row "all" s | None -> ());
    (match mem [ "window"; "by_type" ] j with
    | Some (J.Obj per) -> List.iter (fun (name, s) -> row name s) per
    | Some _ | None -> ());
    Buffer.contents b
  in
  let c =
    try C.connect addr
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "ftl top: cannot connect: %s\n" (Unix.error_message e);
      exit 1
  in
  let n = ref 0 in
  (try
     let continue = ref true in
     while !continue do
       let j = C.stats c in
       (* home + draw + clear-below: flicker-free on a tty, plain dumps otherwise *)
       if tty then print_string ("\027[H" ^ render j ^ "\027[J")
       else print_string (render j);
       flush stdout;
       incr n;
       if iterations > 0 && !n >= iterations then continue := false
       else Unix.sleepf interval
     done
   with
  | C.Protocol_error msg ->
    Printf.eprintf "ftl top: %s\n" msg;
    C.close c;
    exit 1
  | Sys.Break -> ());
  C.close c

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period between $(b,stats) polls.")
  in
  let iterations =
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N"
           ~doc:"Stop after $(docv) refreshes (0 = run until interrupted) — for scripts \
                 and transcripts.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"live monitor for a running ftl serve daemon: request mix, rolling \
             p50/p95/p99, queue depth, cache hit rate, worker utilization")
    Term.(const top $ obs_term $ socket_arg $ tcp_port_arg $ tcp_host_arg $ interval $ iterations)

let main =
  let doc = "four-terminal switching lattice toolkit (DATE 2019 reproduction)" in
  Cmd.group (Cmd.info "ftl" ~version:"1.0.0" ~doc)
    [
      all_cmd; table1_cmd; table2_cmd; function_cmd; synth_cmd; iv_cmd; field_cmd; fit_cmd;
      xor3_cmd; series_cmd; optimize_cmd; faults_cmd; complementary_cmd; frequency_cmd;
      yield_cmd; defects_cmd; export_cmd; run_cmd; histogram_cmd; serve_cmd; client_cmd;
      top_cmd;
    ]

let () = exit (Cmd.eval main)
