(* Integration tests: every paper experiment runs and lands on the paper's
   side of each comparison. *)

module E = Lattice_experiments

let test_table1 () =
  let r = E.Exp_table1.run ~max_dim:6 () in
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "no mismatches" []
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) r.E.Exp_table1.mismatches)

let test_lattice_function () =
  let r = E.Exp_lattice_function.run () in
  Alcotest.(check bool) "matches Fig 2c" true r.E.Exp_lattice_function.matches_paper;
  Alcotest.(check int) "9 products" 9 (List.length r.E.Exp_lattice_function.products)

let test_xor3_synthesis () =
  let r = E.Exp_xor3.run () in
  Alcotest.(check bool) "3x3 valid" true r.E.Exp_xor3.lattice_3x3_valid;
  Alcotest.(check bool) "3x4 valid" true r.E.Exp_xor3.lattice_3x4_valid;
  Alcotest.(check bool) "AR valid" true r.E.Exp_xor3.altun_riedel_valid;
  Alcotest.(check int) "AR 4x4" 16 (r.E.Exp_xor3.altun_riedel_rows * r.E.Exp_xor3.altun_riedel_cols)

let check_within_order msg paper measured =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3g within 10x of paper %.3g" msg measured paper)
    true
    (measured > paper /. 10.0 && measured < paper *. 10.0)

let test_iv_variants () =
  List.iter
    (fun shape ->
      List.iter
        (fun dielectric ->
          let r = E.Exp_iv.run_variant ~shape ~dielectric () in
          (* threshold voltages within 0.3 V of the paper's TCAD values *)
          Alcotest.(check bool)
            (r.E.Exp_iv.name ^ " vth")
            true
            (Float.abs (r.E.Exp_iv.vth_model -. r.E.Exp_iv.vth_paper) < 0.3);
          check_within_order (r.E.Exp_iv.name ^ " on/off") r.E.Exp_iv.ratio_paper r.E.Exp_iv.ratio)
        [ Lattice_device.Material.HfO2; Lattice_device.Material.SiO2 ])
    [ Lattice_device.Geometry.Square; Lattice_device.Geometry.Cross;
      Lattice_device.Geometry.Junctionless ]

let test_iv_orderings () =
  (* qualitative claims of Section III-B *)
  let get shape d = E.Exp_iv.run_variant ~shape ~dielectric:d () in
  let sq_h = get Lattice_device.Geometry.Square Lattice_device.Material.HfO2 in
  let sq_s = get Lattice_device.Geometry.Square Lattice_device.Material.SiO2 in
  let cr_h = get Lattice_device.Geometry.Cross Lattice_device.Material.HfO2 in
  Alcotest.(check bool) "HfO2 threshold below SiO2" true
    (sq_h.E.Exp_iv.vth_model < sq_s.E.Exp_iv.vth_model);
  Alcotest.(check bool) "cross currents smaller than square" true
    (cr_h.E.Exp_iv.ion < sq_h.E.Exp_iv.ion);
  Alcotest.(check bool) "cross threshold above square" true
    (cr_h.E.Exp_iv.vth_model > sq_h.E.Exp_iv.vth_model)

let test_field () =
  let r = E.Exp_field.run ~n:32 () in
  Alcotest.(check bool) "cross more uniform" true r.E.Exp_field.cross_more_uniform;
  Alcotest.(check bool) "solves converged" true
    (r.E.Exp_field.square.Lattice_device.Field2d.converged
    && r.E.Exp_field.cross.Lattice_device.Field2d.converged
    && r.E.Exp_field.junctionless.Lattice_device.Field2d.converged)

let test_fit () =
  let r = E.Exp_fit.run () in
  let e = r.E.Exp_fit.extraction in
  Alcotest.(check bool) "converged" true e.Lattice_fit.Fit.converged;
  Alcotest.(check bool) "r2 high" true (e.Lattice_fit.Fit.r_squared > 0.999);
  Alcotest.(check bool) "vth near electrostatic" true
    (Float.abs (e.Lattice_fit.Fit.vth -. r.E.Exp_fit.vth_electrostatic) < 0.05)

let test_transient () =
  let r = E.Exp_transient.run ~bit_time:60e-9 ~h:1e-9 () in
  Alcotest.(check bool) "functional" true r.E.Exp_transient.functional_pass;
  (* zero-state output: paper 0.22 V, ours within [0.05, 0.4] *)
  Alcotest.(check bool) "zero level plausible" true
    (r.E.Exp_transient.v_low > 0.05 && r.E.Exp_transient.v_low < 0.4);
  Alcotest.(check bool) "one level at VDD" true (r.E.Exp_transient.v_high > 1.15);
  (match r.E.Exp_transient.rise_time with
  | Some t -> Alcotest.(check bool) "rise ns-scale" true (t > 1e-9 && t < 100e-9)
  | None -> Alcotest.fail "no rise observed");
  match r.E.Exp_transient.fall_time with
  | Some t ->
    Alcotest.(check bool) "fall faster than rise" true
      (match r.E.Exp_transient.rise_time with Some rt -> t < rt | None -> false)
  | None -> Alcotest.fail "no fall observed"

let test_transient_integrators_agree () =
  (* design-choice ablation: both integrators give the same logic levels *)
  let trap = E.Exp_transient.run ~integrator:Lattice_spice.Transient.Trapezoidal ~bit_time:40e-9 ~h:1e-9 () in
  let be = E.Exp_transient.run ~integrator:Lattice_spice.Transient.Backward_euler ~bit_time:40e-9 ~h:1e-9 () in
  Alcotest.(check bool) "trap functional" true trap.E.Exp_transient.functional_pass;
  Alcotest.(check bool) "BE functional" true be.E.Exp_transient.functional_pass;
  Alcotest.(check (float 0.02)) "same zero level" trap.E.Exp_transient.v_low be.E.Exp_transient.v_low

let test_series () =
  let r = E.Exp_series.run ~max_n:21 () in
  (* paper decay ratio 11.12/0.52 ~ 21.4; ours must land nearby *)
  Alcotest.(check bool)
    (Printf.sprintf "decay ratio %.1f in [15, 30]" r.E.Exp_series.decay_ratio)
    true
    (r.E.Exp_series.decay_ratio > 15.0 && r.E.Exp_series.decay_ratio < 30.0);
  (* currents strictly decreasing *)
  Array.iteri
    (fun i x -> if i > 0 then Alcotest.(check bool) "decreasing" true (x < r.E.Exp_series.currents.(i - 1)))
    r.E.Exp_series.currents;
  (* Fig 12b: nearly linear voltage requirement *)
  Alcotest.(check bool) "linear-ish" true (r.E.Exp_series.linearity_r2 > 0.95);
  Alcotest.(check bool) "V(21) in [1.5, 3.5]" true
    (r.E.Exp_series.voltages.(20) > 1.5 && r.E.Exp_series.voltages.(20) < 3.5)

let test_cases_symmetry () =
  let r = E.Exp_cases.run () in
  Alcotest.(check int) "16 cases" 16 (List.length r.E.Exp_cases.cases);
  Alcotest.(check bool) "rotation symmetry exact" true r.E.Exp_cases.symmetry_holds;
  (* adjacent (DSFF) and opposite (SFDF) single pairs differ on the square
     device (type A vs type B channel lengths) *)
  let total name =
    (List.find (fun c -> c.E.Exp_cases.name = name) r.E.Exp_cases.cases).E.Exp_cases.total_drain
  in
  Alcotest.(check bool) "adjacent pair carries more than opposite" true
    (total "DSFF" > total "SFDF")

let test_complementary () =
  let r = E.Exp_complementary.run ~bit_time:50e-9 ~h:1e-9 () in
  Alcotest.(check bool) "resistor functional" true
    r.E.Exp_complementary.resistor.E.Exp_complementary.functional_pass;
  Alcotest.(check bool) "complementary functional" true
    r.E.Exp_complementary.complementary.E.Exp_complementary.functional_pass;
  Alcotest.(check bool)
    (Printf.sprintf "power reduction %.3g > 1000" r.E.Exp_complementary.power_reduction)
    true
    (r.E.Exp_complementary.power_reduction > 1000.0);
  Alcotest.(check bool) "V_OL ~ 0" true
    (r.E.Exp_complementary.complementary.E.Exp_complementary.v_low < 0.01);
  Alcotest.(check bool) "V_OH degraded below VDD" true
    (r.E.Exp_complementary.complementary.E.Exp_complementary.v_high < 1.15)

let test_frequency () =
  let r = E.Exp_frequency.run ~bit_time:50e-9 () in
  (match r.E.Exp_frequency.resistor.E.Exp_frequency.f3db_hz with
  | Some f ->
    (* output pole ~ 1/(2 pi * 500k * C_plate): tens of MHz *)
    Alcotest.(check bool) (Printf.sprintf "f3db %.3g MHz-scale" f) true (f > 1e6 && f < 1e9)
  | None -> Alcotest.fail "no resistor corner");
  Alcotest.(check bool) "complementary uses less cycle energy" true
    (r.E.Exp_frequency.complementary.E.Exp_frequency.cycle_energy_j
    < r.E.Exp_frequency.resistor.E.Exp_frequency.cycle_energy_j);
  Alcotest.(check bool) "energies positive" true
    (r.E.Exp_frequency.complementary.E.Exp_frequency.cycle_energy_j > 0.0)

let test_reports_render () =
  (* every report renders without raising and contains its id *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (make, id) ->
      let r = make () in
      let s = E.Report.render r in
      Alcotest.(check bool) (id ^ " rendered") true (contains s id))
    [
      ((fun () -> E.Exp_table1.report ~max_dim:4 ()), "TableI");
      (E.Exp_lattice_function.report, "Fig2c");
      ((fun () -> E.Exp_xor3.report ()), "Fig3");
      (E.Exp_table2.report, "TableII");
      ((fun () -> E.Exp_iv.report Lattice_device.Geometry.Square), "Fig5");
      ((fun () -> E.Exp_field.report ~n:24 ()), "Fig8");
      (E.Exp_fit.report, "Fig10");
    ]

let test_report_formatting () =
  let r =
    {
      E.Report.title = "demo";
      rows =
        [
          E.Report.row ~id:"Fig1" ~metric:"delay" ~paper:"12 ns" ~measured:"11.8 ns" ~note:"ok" ();
          E.Report.row_f ~id:"Fig2" ~metric:"energy" ~paper:Float.nan ~measured:1.23456e-12 ();
        ];
      body = "free-form body";
    }
  in
  let s = E.Report.render r in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | title :: header :: row1 :: row2 :: _ ->
    Alcotest.(check string) "title banner" "== demo ==" title;
    Alcotest.(check bool) "header names the columns" true
      (String.length header > 0 && String.sub header 0 2 = "id");
    Alcotest.(check bool) "header and rows align" true
      (String.length header >= 60
      && String.length row1 >= 60
      && String.sub row1 0 8 = "Fig1    ");
    Alcotest.(check bool) "nan paper value renders as dash" true
      (let rec contains s sub i =
         i + String.length sub <= String.length s
         && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
       in
       contains row2 " - " 0 && contains row2 "1.235e-12" 0)
  | _ -> Alcotest.fail "render produced too few lines");
  (* body is separated by a blank line and always newline-terminated *)
  Alcotest.(check bool) "body separated and terminated" true
    (String.length s >= 16
    && String.sub s (String.length s - 16) 16 = "\nfree-form body\n");
  (* no rows, no body: just the banner *)
  Alcotest.(check string) "empty report is only the banner" "== empty ==\n"
    (E.Report.render { E.Report.title = "empty"; rows = []; body = "" });
  (* a body that already ends in a newline is not double-terminated *)
  let r' = { E.Report.title = "t"; rows = []; body = "line\n" } in
  Alcotest.(check string) "trailing newline preserved" "== t ==\n\nline\n"
    (E.Report.render r')

let test_report_row_f () =
  let r = E.Report.row_f ~id:"x" ~metric:"m" ~paper:3.14159265 ~measured:Float.nan () in
  Alcotest.(check string) "paper %.4g" "3.142" r.E.Report.paper;
  Alcotest.(check string) "nan measured dashes" "-" r.E.Report.measured;
  Alcotest.(check string) "note defaults empty" "" r.E.Report.note

let () =
  Alcotest.run "experiments"
    [
      ( "paper",
        [
          Alcotest.test_case "Table I (to 6x6)" `Quick test_table1;
          Alcotest.test_case "Fig 2c lattice function" `Quick test_lattice_function;
          Alcotest.test_case "Fig 3 XOR3 lattices" `Quick test_xor3_synthesis;
          Alcotest.test_case "Figs 5-7 I-V figures of merit" `Quick test_iv_variants;
          Alcotest.test_case "Figs 5-7 qualitative orderings" `Quick test_iv_orderings;
          Alcotest.test_case "Fig 8 field profiles" `Slow test_field;
          Alcotest.test_case "Fig 10 extraction" `Quick test_fit;
          Alcotest.test_case "Fig 11 transient" `Slow test_transient;
          Alcotest.test_case "Fig 11 integrator ablation" `Slow test_transient_integrators_agree;
          Alcotest.test_case "Fig 12 series chain" `Slow test_series;
          Alcotest.test_case "Sec III-B 16-case symmetry" `Quick test_cases_symmetry;
          Alcotest.test_case "Sec VI-A complementary structure" `Slow test_complementary;
          Alcotest.test_case "Sec VI-A frequency and energy" `Slow test_frequency;
          Alcotest.test_case "reports render" `Quick test_reports_render;
        ] );
      ( "report",
        [
          Alcotest.test_case "formatting" `Quick test_report_formatting;
          Alcotest.test_case "row_f float rendering" `Quick test_report_row_f;
        ] );
    ]
