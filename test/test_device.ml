(* Tests for the device-physics substrate: materials, thresholds, the
   compact model, operating cases, sweeps and the 2-D field solver. *)

module D = Lattice_device

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* --- Material ------------------------------------------------------------- *)

let test_permittivity_ordering () =
  Alcotest.(check bool) "HfO2 > SiO2" true
    (D.Material.relative_permittivity D.Material.HfO2
     > D.Material.relative_permittivity D.Material.SiO2)

let test_oxide_capacitance () =
  let c_sio2 = D.Material.oxide_capacitance D.Material.SiO2 ~tox:30e-9 in
  check_close "Cox SiO2 30nm" 1e-5 1.1510e-3 c_sio2;
  let ratio =
    D.Material.oxide_capacitance D.Material.HfO2 ~tox:30e-9 /. c_sio2
  in
  check_close "HfO2/SiO2 Cox ratio = k ratio" 1e-9 (25.0 /. 3.9) ratio

let test_eot () =
  check_close "EOT of HfO2 30nm" 1e-12 (30e-9 *. 3.9 /. 25.0) (D.Material.eot D.Material.HfO2 ~tox:30e-9);
  check_close "EOT of SiO2 is tox" 1e-15 30e-9 (D.Material.eot D.Material.SiO2 ~tox:30e-9)

let test_material_names () =
  Alcotest.(check string) "HfO2" "HfO2" (D.Material.name (D.Material.of_name "hfo2"));
  Alcotest.(check string) "SiO2" "SiO2" (D.Material.name (D.Material.of_name "SIO2"));
  Alcotest.(check bool) "unknown rejected" true
    (match D.Material.of_name "al2o3" with exception Invalid_argument _ -> true | _ -> false)

let test_fermi_potential () =
  (* phi_F = VT ln(1e17/1.5e10) ~ 0.407 V *)
  check_close "phi_F" 5e-3 0.407 (D.Material.fermi_potential_p ~na:1e23)

(* --- Geometry -------------------------------------------------------------- *)

let test_geometry_table2 () =
  let s = D.Geometry.square in
  check_close "square footprint" 1e-12 2400e-9 s.D.Geometry.device_x;
  check_close "square W" 1e-12 700e-9 s.D.Geometry.channel_width;
  check_close "type A L" 1e-12 0.35e-6 s.D.Geometry.l_adjacent;
  check_close "type B L" 1e-12 0.5e-6 s.D.Geometry.l_opposite;
  let c = D.Geometry.cross in
  check_close "cross W = arm width" 1e-12 200e-9 c.D.Geometry.channel_width;
  let j = D.Geometry.junctionless in
  check_close "wire tox" 1e-12 3e-9 j.D.Geometry.tox;
  Alcotest.(check bool) "junctionless is depletion" true (D.Geometry.is_depletion j);
  Alcotest.(check bool) "square is enhancement" false (D.Geometry.is_depletion s)

let test_geometry_symmetry () =
  Alcotest.(check bool) "cross more symmetric than square" true
    (D.Geometry.symmetry_spread D.Geometry.cross < D.Geometry.symmetry_spread D.Geometry.square)

let test_shape_names () =
  List.iter
    (fun shape ->
      Alcotest.(check bool) "roundtrip" true
        (D.Geometry.shape_of_name (D.Geometry.shape_name shape) = shape))
    [ D.Geometry.Square; D.Geometry.Cross; D.Geometry.Junctionless ]

(* --- Threshold ------------------------------------------------------------- *)

let paper_tolerance_v = 0.25

let test_vth_square () =
  let hf = D.Threshold.enhancement ~dielectric:D.Material.HfO2 ~geometry:D.Geometry.square in
  let si = D.Threshold.enhancement ~dielectric:D.Material.SiO2 ~geometry:D.Geometry.square in
  check_close "HfO2 ~0.16" paper_tolerance_v 0.16 hf;
  check_close "SiO2 ~1.36" paper_tolerance_v 1.36 si;
  Alcotest.(check bool) "high-k lowers Vth" true (hf < si)

let test_vth_cross_narrow_width () =
  let sq = D.Threshold.enhancement ~dielectric:D.Material.HfO2 ~geometry:D.Geometry.square in
  let cr = D.Threshold.enhancement ~dielectric:D.Material.HfO2 ~geometry:D.Geometry.cross in
  Alcotest.(check bool) "narrow cross raises Vth" true (cr > sq);
  check_close "cross HfO2 ~0.27" paper_tolerance_v 0.27 cr

let test_vth_junctionless () =
  let hf = D.Threshold.junctionless ~dielectric:D.Material.HfO2 in
  let si = D.Threshold.junctionless ~dielectric:D.Material.SiO2 in
  check_close "jl HfO2 ~-0.57" 0.1 (-0.57) hf;
  check_close "jl SiO2 ~-4.8" 0.3 (-4.8) si;
  Alcotest.(check bool) "both negative" true (hf < 0.0 && si < 0.0)

let test_vth_dispatch () =
  Alcotest.(check bool) "enhancement rejects junctionless geometry" true
    (match
       D.Threshold.enhancement ~dielectric:D.Material.HfO2 ~geometry:D.Geometry.junctionless
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ideality () =
  let n_hf =
    D.Threshold.subthreshold_ideality ~dielectric:D.Material.HfO2 ~geometry:D.Geometry.square
  in
  let n_si =
    D.Threshold.subthreshold_ideality ~dielectric:D.Material.SiO2 ~geometry:D.Geometry.square
  in
  Alcotest.(check bool) "n > 1" true (n_hf > 1.0);
  Alcotest.(check bool) "thicker EOT worsens slope" true (n_si > n_hf)

(* --- Op_case ---------------------------------------------------------------- *)

let test_op_case_parse () =
  let c = D.Op_case.of_string "DSSS" in
  Alcotest.(check (list int)) "drains" [ 0 ] (D.Op_case.drains c);
  Alcotest.(check (list int)) "sources" [ 1; 2; 3 ] (D.Op_case.sources c);
  Alcotest.(check string) "roundtrip" "DSSS" (D.Op_case.to_string c)

let test_op_case_all () =
  Alcotest.(check int) "16 cases" 16 (List.length D.Op_case.all);
  List.iter
    (fun c ->
      Alcotest.(check bool) (D.Op_case.to_string c ^ " valid") true (D.Op_case.is_valid c))
    D.Op_case.all

let test_op_case_pairs () =
  let c = D.Op_case.of_string "DSSS" in
  let pairs = D.Op_case.pairs c in
  Alcotest.(check int) "3 pairs" 3 (List.length pairs);
  (* T1 (north) and T3 (south) are opposite *)
  Alcotest.(check bool) "T1-T3 opposite" true
    (List.exists (fun (d, s, opp) -> d = 0 && s = 2 && opp) pairs);
  Alcotest.(check bool) "T1-T2 adjacent" true
    (List.exists (fun (d, s, opp) -> d = 0 && s = 1 && not opp) pairs)

let test_op_case_invalid () =
  Alcotest.(check bool) "FFFF invalid" false (D.Op_case.is_valid (D.Op_case.of_string "FFFF"));
  Alcotest.(check bool) "DDDD invalid" false (D.Op_case.is_valid (D.Op_case.of_string "DDDD"));
  Alcotest.(check bool) "bad char" true
    (match D.Op_case.of_string "DXSS" with exception Invalid_argument _ -> true | _ -> false)

(* --- Device_model ------------------------------------------------------------ *)

let model shape dielectric = D.Device_model.make ~geometry:(D.Geometry.of_shape shape) ~dielectric

let within_order msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3g within 10x of %.3g" msg actual expected)
    true
    (actual > expected /. 10.0 && actual < expected *. 10.0)

let test_figures_of_merit () =
  (* paper Section III-B, within an order of magnitude *)
  within_order "square HfO2 on/off" 1e6 (D.Device_model.on_off_ratio (model D.Geometry.Square D.Material.HfO2));
  within_order "square SiO2 on/off" 1e5 (D.Device_model.on_off_ratio (model D.Geometry.Square D.Material.SiO2));
  within_order "cross HfO2 on/off" 1e6 (D.Device_model.on_off_ratio (model D.Geometry.Cross D.Material.HfO2));
  within_order "cross SiO2 on/off" 1e4 (D.Device_model.on_off_ratio (model D.Geometry.Cross D.Material.SiO2));
  within_order "jl HfO2 on/off" 1e8 (D.Device_model.on_off_ratio (model D.Geometry.Junctionless D.Material.HfO2));
  within_order "jl SiO2 on/off" 1e7 (D.Device_model.on_off_ratio (model D.Geometry.Junctionless D.Material.SiO2))

let test_ion_magnitudes () =
  within_order "square HfO2 Ion ~1.2mA" 1.2e-3 (D.Device_model.ion (model D.Geometry.Square D.Material.HfO2));
  within_order "cross HfO2 Ion ~0.4mA" 4e-4 (D.Device_model.ion (model D.Geometry.Cross D.Material.HfO2));
  within_order "jl HfO2 Ion ~60uA" 6e-5 (D.Device_model.ion (model D.Geometry.Junctionless D.Material.HfO2))

let test_current_ordering () =
  (* square carries more than cross (wider channels) for the same stack *)
  Alcotest.(check bool) "square > cross" true
    (D.Device_model.ion (model D.Geometry.Square D.Material.HfO2)
     > D.Device_model.ion (model D.Geometry.Cross D.Material.HfO2))

let test_terminal_currents_kcl () =
  (* terminal currents must sum to the injected floor only *)
  let m = model D.Geometry.Square D.Material.HfO2 in
  List.iter
    (fun case_name ->
      let case = D.Op_case.of_string case_name in
      let i = D.Device_model.terminal_currents m ~case ~vgs:5.0 ~vds:5.0 in
      let total = Array.fold_left ( +. ) 0.0 i in
      let floor_total = m.D.Device_model.floor *. float_of_int (List.length (D.Op_case.drains case)) in
      check_close (case_name ^ " KCL") 1e-12 floor_total total)
    [ "DSSS"; "DSFF"; "DDSS"; "DSDS"; "DDDS" ]

let test_terminal_currents_symmetry () =
  (* in DSDS the two drains see identical environments *)
  let m = model D.Geometry.Square D.Material.HfO2 in
  let i = D.Device_model.terminal_currents m ~case:(D.Op_case.of_string "DSDS") ~vgs:5.0 ~vds:5.0 in
  check_close "drain symmetry" 1e-15 i.(0) i.(2);
  check_close "source symmetry" 1e-15 i.(1) i.(3)

let test_floating_carries_nothing () =
  let m = model D.Geometry.Square D.Material.HfO2 in
  let i = D.Device_model.terminal_currents m ~case:(D.Op_case.of_string "DSFF") ~vgs:5.0 ~vds:5.0 in
  check_close "T3 floats" 0.0 0.0 i.(2);
  check_close "T4 floats" 0.0 0.0 i.(3)

let test_junctionless_cap () =
  (* total drain current of the wire saturates at the bulk ceiling *)
  let m = model D.Geometry.Junctionless D.Material.HfO2 in
  let i = D.Device_model.terminal_currents m ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  Alcotest.(check bool) "capped" true (i.(0) <= m.D.Device_model.sat_cap +. m.D.Device_model.floor +. 1e-18)

let test_subthreshold_continuity () =
  (* no large jump across vth *)
  let m = model D.Geometry.Square D.Material.HfO2 in
  let below = D.Device_model.pair_current m ~opposite:false ~vgs:(m.D.Device_model.vth -. 1e-5) ~vds:5.0 in
  let above = D.Device_model.pair_current m ~opposite:false ~vgs:(m.D.Device_model.vth +. 1e-5) ~vds:5.0 in
  Alcotest.(check bool) "same order across vth" true
    (below > 0.0 && above >= 0.0 && below < 1e-5)

(* --- Sweep ------------------------------------------------------------------- *)

let test_sweep_monotone () =
  let m = model D.Geometry.Square D.Material.HfO2 in
  let curves = D.Sweep.ids_vgs m ~case:D.Op_case.dsss ~vds:5.0 ~points:26 in
  match curves with
  | t1 :: _ ->
    let ys = t1.D.Sweep.ys in
    for i = 1 to Array.length ys - 1 do
      if ys.(i) < ys.(i - 1) -. 1e-15 then Alcotest.fail "Ids(Vgs) not monotone"
    done
  | [] -> Alcotest.fail "no curves"

let test_sweep_labels () =
  let m = model D.Geometry.Square D.Material.HfO2 in
  let set = D.Sweep.standard m in
  Alcotest.(check (list string)) "labels" [ "T1"; "T2"; "T3"; "T4" ]
    (List.map (fun c -> c.D.Sweep.label) set.D.Sweep.ids_vds);
  let t1 = D.Sweep.drain_curve set `Vgs_high in
  Alcotest.(check string) "drain curve" "T1" t1.D.Sweep.label

let test_sweep_source_split () =
  (* in DSSS each source carries roughly a third of the drain current *)
  let m = model D.Geometry.Cross D.Material.HfO2 in
  let i = D.Device_model.terminal_currents m ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  let drain = i.(0) in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "T%d share" (s + 1))
        true
        (Float.abs i.(s) > drain /. 5.0 && Float.abs i.(s) < drain /. 2.0))
    [ 1; 2; 3 ]

let test_junctionless_flat_saturation () =
  (* Fig 7b/c: the junctionless drain current pins at the bulk ceiling over
     most of the sweep *)
  let m = model D.Geometry.Junctionless D.Material.HfO2 in
  let curves = D.Sweep.ids_vds m ~case:D.Op_case.dsss ~vgs:5.0 ~points:26 in
  match curves with
  | t1 :: _ ->
    let ys = t1.D.Sweep.ys in
    let last = ys.(25) in
    let at_1v = ys.(5) in
    Alcotest.(check bool)
      (Printf.sprintf "flat: I(1V)=%.3g ~ I(5V)=%.3g" at_1v last)
      true
      (Float.abs (at_1v -. last) /. last < 0.05)
  | [] -> Alcotest.fail "no curves"

let test_enhancement_saturation_slope () =
  (* the enhancement device keeps a lambda slope in saturation *)
  let m = model D.Geometry.Square D.Material.HfO2 in
  let i4 = (D.Device_model.terminal_currents m ~case:D.Op_case.dsss ~vgs:5.0 ~vds:4.0).(0) in
  let i5 = (D.Device_model.terminal_currents m ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0).(0) in
  Alcotest.(check bool) "lambda slope" true (i5 > i4)

let test_threshold_from_sweep () =
  let m = model D.Geometry.Square D.Material.SiO2 in
  let set = D.Sweep.standard m in
  let t1 = D.Sweep.drain_curve set `Vgs_low in
  match D.Sweep.threshold_from_sweep t1 ~icrit:(0.05 *. Array.fold_left Float.max 0.0 t1.D.Sweep.ys) with
  | Some vth_cc ->
    (* constant-current Vth lands within ~0.6 V of the electrostatic one *)
    Alcotest.(check bool) "near model vth" true (Float.abs (vth_cc -. 1.36) < 0.6)
  | None -> Alcotest.fail "no threshold crossing"

(* --- Field2d ------------------------------------------------------------------ *)

let test_field_converges () =
  List.iter
    (fun shape ->
      let v = D.Presets.find ~shape ~dielectric:D.Material.HfO2 in
      let r = D.Field2d.solve ~n:24 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
      Alcotest.(check bool) (D.Geometry.shape_name shape ^ " converged") true r.D.Field2d.converged)
    [ D.Geometry.Square; D.Geometry.Cross; D.Geometry.Junctionless ]

let test_field_kcl () =
  (* terminal currents sum to ~0 (current conservation) *)
  let v = D.Presets.find ~shape:D.Geometry.Square ~dielectric:D.Material.HfO2 in
  let r = D.Field2d.solve ~n:32 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  let total = Array.fold_left ( +. ) 0.0 r.D.Field2d.terminal_currents in
  let scale = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 r.D.Field2d.terminal_currents in
  Alcotest.(check bool) "KCL" true (Float.abs total < 1e-3 *. scale)

let test_field_drain_sign () =
  let v = D.Presets.find ~shape:D.Geometry.Square ~dielectric:D.Material.HfO2 in
  let r = D.Field2d.solve ~n:32 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  Alcotest.(check bool) "drain sources current" true (r.D.Field2d.terminal_currents.(0) < 0.0);
  Alcotest.(check bool) "T2 sinks current" true (r.D.Field2d.terminal_currents.(1) > 0.0)

let test_field_cross_uniformity () =
  let solve shape =
    let v = D.Presets.find ~shape ~dielectric:D.Material.HfO2 in
    D.Field2d.solve ~n:48 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0
  in
  let sq = solve D.Geometry.Square and cr = solve D.Geometry.Cross in
  Alcotest.(check bool) "cross splits current more evenly" true
    (cr.D.Field2d.source_share_cv < sq.D.Field2d.source_share_cv)

let test_field_symmetric_case () =
  (* east and west sources are mirror images in DSSS *)
  let v = D.Presets.find ~shape:D.Geometry.Cross ~dielectric:D.Material.HfO2 in
  let r = D.Field2d.solve ~n:32 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  let e = Float.abs r.D.Field2d.terminal_currents.(1)
  and w = Float.abs r.D.Field2d.terminal_currents.(3) in
  Alcotest.(check bool) "E/W mirror" true (Float.abs (e -. w) < 1e-6 *. Float.max e w)

let test_field_gate_control () =
  (* higher gate bias, more current *)
  let v = D.Presets.find ~shape:D.Geometry.Square ~dielectric:D.Material.HfO2 in
  let lo = D.Field2d.solve ~n:24 v ~case:D.Op_case.dsss ~vgs:1.0 ~vds:5.0 in
  let hi = D.Field2d.solve ~n:24 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  Alcotest.(check bool) "gate modulates current" true
    (Float.abs hi.D.Field2d.terminal_currents.(0) > Float.abs lo.D.Field2d.terminal_currents.(0))

let test_field_solver_dispatch () =
  let v = D.Presets.find ~shape:D.Geometry.Square ~dielectric:D.Material.HfO2 in
  let small = D.Field2d.solve ~n:24 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  Alcotest.(check string) "small grids use CG" "cg"
    (D.Field2d.solver_name small.D.Field2d.solver_used);
  Alcotest.(check int) "no V-cycles on the CG path" 0 small.D.Field2d.v_cycles;
  let large = D.Field2d.solve ~n:32 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  Alcotest.(check string) "n >= 32 uses multigrid" "multigrid"
    (D.Field2d.solver_name large.D.Field2d.solver_used);
  Alcotest.(check bool) "V-cycles counted" true (large.D.Field2d.v_cycles > 0);
  Alcotest.(check bool) "multigrid converged" true large.D.Field2d.converged

let test_field_mg_cg_parity () =
  (* the two paths solve the same discrete system: at a tight tolerance
     the fields must agree to well below physical accuracy. The potential
     comparison is restricted to conducting cells (sigma > 1e-3): in the
     near-insulating background the 9-decade conductivity contrast
     amplifies the residual and no iterative solver pins those potentials
     to 1e-8. *)
  List.iter
    (fun shape ->
      let v = D.Presets.find ~shape ~dielectric:D.Material.HfO2 in
      let name = D.Geometry.shape_name shape in
      let cg =
        D.Field2d.solve ~n:48 ~solver:D.Field2d.Cg ~tol:1e-12 v ~case:D.Op_case.dsss
          ~vgs:5.0 ~vds:5.0
      in
      let mg =
        D.Field2d.solve ~n:48 ~solver:D.Field2d.Multigrid ~tol:1e-12 v ~case:D.Op_case.dsss
          ~vgs:5.0 ~vds:5.0
      in
      Alcotest.(check bool) (name ^ " cg converged") true cg.D.Field2d.converged;
      Alcotest.(check bool) (name ^ " mg converged") true mg.D.Field2d.converged;
      let dv = ref 0.0 in
      Array.iteri
        (fun i s ->
          if s > 1e-3 then
            dv :=
              Float.max !dv
                (Float.abs (cg.D.Field2d.potential.(i) -. mg.D.Field2d.potential.(i))))
        cg.D.Field2d.sigma;
      Alcotest.(check bool)
        (Printf.sprintf "%s potential parity on conducting cells (got %.3e)" name !dv)
        true (!dv < 1e-8);
      let i_scale =
        Array.fold_left
          (fun a x -> Float.max a (Float.abs x))
          0.0 cg.D.Field2d.terminal_currents
      in
      Array.iteri
        (fun k i_cg ->
          let d = Float.abs (i_cg -. mg.D.Field2d.terminal_currents.(k)) in
          Alcotest.(check bool)
            (Printf.sprintf "%s terminal %d parity (got %.3e rel)" name k (d /. i_scale))
            true
            (d < 1e-6 *. i_scale))
        cg.D.Field2d.terminal_currents;
      check_close (name ^ " channel CV parity") 1e-6 cg.D.Field2d.channel_cv
        mg.D.Field2d.channel_cv)
    [ D.Geometry.Square; D.Geometry.Cross; D.Geometry.Junctionless ]

let test_field_ascii () =
  let v = D.Presets.find ~shape:D.Geometry.Cross ~dielectric:D.Material.HfO2 in
  let r = D.Field2d.solve ~n:24 v ~case:D.Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  let s = D.Field2d.ascii r ~width:16 in
  Alcotest.(check bool) "non-empty render" true (String.length s > 16 * 16)

(* --- Presets ------------------------------------------------------------------ *)

let test_presets () =
  Alcotest.(check int) "six variants" 6 (List.length D.Presets.all);
  let v = D.Presets.find ~shape:D.Geometry.Cross ~dielectric:D.Material.SiO2 in
  Alcotest.(check string) "name" "cross/SiO2" (D.Presets.variant_name v);
  let t2 = D.Presets.render_table2 () in
  Alcotest.(check bool) "table II mentions 2400" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains t2 "2400")

let () =
  Alcotest.run "device"
    [
      ( "material",
        [
          Alcotest.test_case "permittivity ordering" `Quick test_permittivity_ordering;
          Alcotest.test_case "oxide capacitance" `Quick test_oxide_capacitance;
          Alcotest.test_case "EOT" `Quick test_eot;
          Alcotest.test_case "names" `Quick test_material_names;
          Alcotest.test_case "fermi potential" `Quick test_fermi_potential;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "Table II dimensions" `Quick test_geometry_table2;
          Alcotest.test_case "cross symmetry" `Quick test_geometry_symmetry;
          Alcotest.test_case "shape names" `Quick test_shape_names;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "square Vth vs paper" `Quick test_vth_square;
          Alcotest.test_case "cross narrow-width shift" `Quick test_vth_cross_narrow_width;
          Alcotest.test_case "junctionless Vth vs paper" `Quick test_vth_junctionless;
          Alcotest.test_case "dispatch" `Quick test_vth_dispatch;
          Alcotest.test_case "subthreshold ideality" `Quick test_ideality;
        ] );
      ( "op_case",
        [
          Alcotest.test_case "parse" `Quick test_op_case_parse;
          Alcotest.test_case "all 16" `Quick test_op_case_all;
          Alcotest.test_case "pairs" `Quick test_op_case_pairs;
          Alcotest.test_case "invalid" `Quick test_op_case_invalid;
        ] );
      ( "device_model",
        [
          Alcotest.test_case "on/off ratios vs paper" `Quick test_figures_of_merit;
          Alcotest.test_case "Ion magnitudes vs paper" `Quick test_ion_magnitudes;
          Alcotest.test_case "square > cross current" `Quick test_current_ordering;
          Alcotest.test_case "KCL over cases" `Quick test_terminal_currents_kcl;
          Alcotest.test_case "DSDS symmetry" `Quick test_terminal_currents_symmetry;
          Alcotest.test_case "floating terminals" `Quick test_floating_carries_nothing;
          Alcotest.test_case "junctionless ceiling" `Quick test_junctionless_cap;
          Alcotest.test_case "continuity near vth" `Quick test_subthreshold_continuity;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "monotone in vgs" `Quick test_sweep_monotone;
          Alcotest.test_case "labels" `Quick test_sweep_labels;
          Alcotest.test_case "DSSS source split" `Quick test_sweep_source_split;
          Alcotest.test_case "junctionless saturation ceiling" `Quick
            test_junctionless_flat_saturation;
          Alcotest.test_case "enhancement lambda slope" `Quick test_enhancement_saturation_slope;
          Alcotest.test_case "constant-current Vth" `Quick test_threshold_from_sweep;
        ] );
      ( "field2d",
        [
          Alcotest.test_case "convergence" `Quick test_field_converges;
          Alcotest.test_case "KCL" `Quick test_field_kcl;
          Alcotest.test_case "drain sign" `Quick test_field_drain_sign;
          Alcotest.test_case "cross uniformity" `Slow test_field_cross_uniformity;
          Alcotest.test_case "mirror symmetry" `Quick test_field_symmetric_case;
          Alcotest.test_case "gate control" `Quick test_field_gate_control;
          Alcotest.test_case "solver dispatch" `Quick test_field_solver_dispatch;
          Alcotest.test_case "MG/CG parity" `Slow test_field_mg_cg_parity;
          Alcotest.test_case "ascii render" `Quick test_field_ascii;
        ] );
      ( "presets", [ Alcotest.test_case "variants and Table II" `Quick test_presets ] );
    ]
