(* Service-layer tests: JSON codec determinism, protocol validation,
   framing hardening, and a live in-process daemon — malformed-input
   table, concurrent-client parity against direct engine calls,
   quota/backpressure, graceful shutdown, restart-from-store with a
   1.0 hit rate, and a multi-thousand-request soak. *)

module S = Lattice_serve.Server
module C = Lattice_serve.Client
module J = Lattice_serve.Json
module P = Lattice_serve.Protocol
module F = Lattice_serve.Framing
module Engine = Lattice_engine.Engine
module Sp = Lattice_spice

let temp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%06x" prefix (Unix.getpid ()) (Random.bits () land 0xFFFFFF))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* --- json codec ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("a", J.Int 42);
        ("b", J.Float 0.07414685561212285);
        ("c", J.String "quote \" backslash \\ newline \n tab \t");
        ("d", J.List [ J.Null; J.Bool true; J.Bool false; J.Int (-7); J.Float 1e-9 ]);
        ("e", J.Obj [ ("nested", J.List [ J.Obj [] ]) ]);
        ("f", J.Float 3.0);
      ]
  in
  let s = J.to_string v in
  Alcotest.(check bool) "roundtrip equal" true (J.parse s = v);
  Alcotest.(check string) "printer deterministic" s (J.to_string (J.parse s));
  (* integral floats keep their decimal point so they re-parse as Float *)
  Alcotest.(check string) "integral float form" "3.0" (J.to_string (J.Float 3.0));
  Alcotest.(check bool) "unicode escapes decode" true
    (J.parse {|"\u0041\u00e9\u20ac\ud83d\ude00"|} = J.String "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80")

let test_json_rejects () =
  let rejects s =
    match J.parse s with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.failf "parsed %S" s
  in
  List.iter rejects
    [
      "";
      "{";
      "[1,2";
      "\"unterminated";
      "{\"a\":}";
      "1 2";
      "nul";
      "truex";
      "\"bad \\x escape\"";
      "\"\ncontrol\"";
      "\"\\ud800\"";  (* unpaired surrogate *)
      "{\"a\":1,}";
      "[1,]";
      "nan";
    ];
  (* deep nesting is a structured error, not a stack overflow *)
  let deep = String.make 100 '[' ^ String.make 100 ']' in
  rejects deep;
  (match J.to_string (J.Float Float.nan) with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "printed non-finite float as %s" s)

let test_json_numbers () =
  Alcotest.(check bool) "int" true (J.parse "42" = J.Int 42);
  Alcotest.(check bool) "negative" true (J.parse "-7" = J.Int (-7));
  Alcotest.(check bool) "float" true (J.parse "1.5" = J.Float 1.5);
  Alcotest.(check bool) "exponent" true (J.parse "2e3" = J.Float 2000.0);
  Alcotest.(check bool) "int via float accessor" true (J.to_float (J.Int 3) = Some 3.0);
  Alcotest.(check bool) "integral float via int accessor" true (J.to_int (J.Float 5.0) = Some 5);
  Alcotest.(check bool) "fractional float not an int" true (J.to_int (J.Float 5.5) = None);
  (* every float round-trips bit-exactly through the printer *)
  List.iter
    (fun f ->
      Alcotest.(check int64) "float roundtrip bits" (Int64.bits_of_float f)
        (match J.parse (J.to_string (J.Float f)) with
        | J.Float g -> Int64.bits_of_float g
        | J.Int n -> Int64.bits_of_float (float_of_int n)
        | _ -> 0L))
    [ 0.07414685561212285; 1e-300; -1.2345678901234567; 6.02214076e23; 0.1 ]

(* --- protocol -------------------------------------------------------------- *)

let code_of = function Error (_, code, _) -> Some code | Ok _ -> None

let test_protocol_valid () =
  (match P.parse_request {|{"type":"dc_op","expr":"a&b","state":2,"id":"r1","deadline_s":5.0}|} with
  | Ok { P.id = Some (J.String "r1"); deadline_s = Some 5.0; req = P.Dc_op { expr = "a&b"; state = 2; vdd = None }; _ } ->
    ()
  | _ -> Alcotest.fail "dc_op envelope did not parse");
  (match P.parse_request {|{"type":"ping"}|} with
  | Ok { P.id = None; deadline_s = None; trace_id = None; parent_span = None; req = P.Ping } -> ()
  | _ -> Alcotest.fail "bare ping did not parse");
  (match P.parse_request {|{"type":"yield","expr":"a|b"}|} with
  | Ok { P.req = P.Yield { samples = 100; seed = 42; _ }; _ } -> ()
  | _ -> Alcotest.fail "yield defaults did not apply");
  match P.parse_request {|{"type":"ping","trace_id":"t-1","parent_span":"s-9"}|} with
  | Ok { P.trace_id = Some "t-1"; parent_span = Some "s-9"; req = P.Ping; _ } -> ()
  | _ -> Alcotest.fail "trace envelope did not parse"

let test_protocol_malformed_table () =
  let cases =
    [
      ("not json", P.Parse_error);
      ("[1,2]", P.Bad_request);
      ({|{"type":"warp"}|}, P.Unknown_type);
      ({|{"type":"ping","extra":1}|}, P.Unknown_field);
      ({|{"type":"dc_op","expr":"a&b"}|}, P.Bad_request);  (* missing state *)
      ({|{"type":"dc_op","state":0}|}, P.Bad_request);  (* missing expr *)
      ({|{"type":"dc_op","expr":"a","state":-1}|}, P.Bad_request);
      ({|{"type":"dc_op","expr":"a","state":0,"vdd":0}|}, P.Bad_request);
      ({|{"type":"table1","rows":1,"cols":4}|}, P.Bad_request);
      ({|{"type":"table1","rows":4,"cols":13}|}, P.Bad_request);
      ({|{"type":"paths","rows":4}|}, P.Bad_request);
      ({|{"type":"transient","expr":"a","bit_time":1e-9,"h":1e-8}|}, P.Bad_request);
      ({|{"type":"yield","expr":"a","samples":0}|}, P.Bad_request);
      ({|{"type":"yield","expr":"a","samples":100001}|}, P.Bad_request);
      ({|{"type":"sleep","seconds":100}|}, P.Bad_request);
      ({|{"type":"ping","id":[1]}|}, P.Bad_request);
      ({|{"type":"ping","deadline_s":-1}|}, P.Bad_request);
      ({|{"type":42}|}, P.Bad_request);
      ({|"ping"|}, P.Bad_request);
      ({|{"type":"ping","trace_id":""}|}, P.Bad_request);
      ({|{"type":"ping","trace_id":42}|}, P.Bad_request);
      ({|{"type":"ping","parent_span":"s1"}|}, P.Bad_request);  (* needs trace_id *)
      ( Printf.sprintf {|{"type":"ping","trace_id":"%s"}|} (String.make 129 't'),
        P.Bad_request );
    ]
  in
  List.iter
    (fun (line, expected) ->
      match code_of (P.parse_request line) with
      | Some code when code = expected -> ()
      | Some code ->
        Alcotest.failf "%s: expected %s, got %s" line (P.code_name expected) (P.code_name code)
      | None -> Alcotest.failf "%s: unexpectedly accepted" line)
    cases;
  (* a rejected request still recovers its id for the error response *)
  match P.parse_request {|{"type":"warp","id":7}|} with
  | Error (Some (J.Int 7), P.Unknown_type, _) -> ()
  | _ -> Alcotest.fail "id not recovered from rejected request"

let test_protocol_responses () =
  let ok = P.render_ok ~id:(Some (J.Int 3)) (J.Obj [ ("pong", J.Bool true) ]) in
  (match P.parse_response ok with
  | Ok { P.resp_id = Some (J.Int 3); payload = Ok (J.Obj [ ("pong", J.Bool true) ]) } -> ()
  | _ -> Alcotest.fail "ok response roundtrip");
  let err = P.render_error ~id:None P.Overloaded "queue full" in
  (match P.parse_response err with
  | Ok { P.resp_id = None; payload = Error (P.Overloaded, "queue full") } -> ()
  | _ -> Alcotest.fail "error response roundtrip");
  (* every error code survives the name mapping *)
  List.iter
    (fun code ->
      match P.code_of_name (P.code_name code) with
      | Some c when c = code -> ()
      | _ -> Alcotest.failf "code %s does not roundtrip" (P.code_name code))
    [
      P.Parse_error; P.Bad_request; P.Unknown_type; P.Unknown_field; P.Frame_too_long;
      P.Invalid_frame; P.Overloaded; P.Quota_exceeded; P.Timeout; P.Non_convergent;
      P.Shutting_down; P.Internal;
    ]

(* --- framing ---------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_framing_roundtrip () =
  with_socketpair @@ fun a b ->
  let r = F.reader ~max_frame:64 b in
  F.write_frame a "hello";
  F.write_frame a "";
  ignore (Unix.write_substring a "crlf\r\ntail" 0 10);
  ignore (Unix.write_substring a "\n" 0 1);
  Unix.close a;
  Alcotest.(check bool) "frame 1" true (F.read_frame r = F.Frame "hello");
  Alcotest.(check bool) "empty frame" true (F.read_frame r = F.Frame "");
  Alcotest.(check bool) "crlf stripped" true (F.read_frame r = F.Frame "crlf");
  Alcotest.(check bool) "tail frame" true (F.read_frame r = F.Frame "tail");
  Alcotest.(check bool) "eof" true (F.read_frame r = F.Eof)

let test_framing_hardening () =
  with_socketpair @@ fun a b ->
  let r = F.reader ~max_frame:16 b in
  F.write_frame a (String.make 40 'x');  (* overlong, terminated *)
  F.write_frame a "ok-1";
  F.write_frame a "nul\000nul";
  F.write_frame a "ok-2";
  ignore (Unix.write_substring a "unterminated" 0 12);
  Unix.close a;
  (match F.read_frame r with
  | F.Too_long n -> Alcotest.(check bool) "dropped count plausible" true (n >= 40)
  | f -> Alcotest.failf "expected Too_long, got %s" (match f with F.Frame s -> s | _ -> "?"));
  Alcotest.(check bool) "connection survives overlong frame" true (F.read_frame r = F.Frame "ok-1");
  Alcotest.(check bool) "nul frame rejected" true (F.read_frame r = F.Nul);
  Alcotest.(check bool) "connection survives nul frame" true (F.read_frame r = F.Frame "ok-2");
  Alcotest.(check bool) "trailing unterminated line dropped" true (F.read_frame r = F.Eof)

let test_framing_huge_unterminated () =
  (* an unterminated flood past the cap must not buffer unboundedly:
     it is discarded as soon as a newline finally arrives *)
  with_socketpair @@ fun a b ->
  let r = F.reader ~max_frame:64 b in
  let blob = String.make 8192 'y' in
  ignore (Unix.write_substring a blob 0 (String.length blob));
  F.write_frame a "-the-end";
  F.write_frame a "after";
  Unix.close a;
  (match F.read_frame r with
  | F.Too_long n -> Alcotest.(check bool) "dropped all flooded bytes" true (n >= 8192)
  | _ -> Alcotest.fail "expected Too_long");
  Alcotest.(check bool) "framing recovers after flood" true (F.read_frame r = F.Frame "after")

(* --- live daemon ------------------------------------------------------------ *)

let with_server ?(workers = 2) ?(queue = 64) ?(quota = 16) ?(allow_sleep = false)
    ?(max_frame = 65536) ?default_deadline_s ?store_dir ?flight_dir ?slow_threshold_s
    ?access_log_path f =
  let dir = temp_dir "ftl-serve" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "daemon.sock" in
  let config =
    {
      S.default_config with
      S.socket_path = Some path;
      domains = Some 2;
      store_dir;
      workers;
      queue_capacity = queue;
      max_inflight_per_client = quota;
      allow_sleep;
      max_frame;
      default_deadline_s =
        (match default_deadline_s with None -> S.default_config.S.default_deadline_s | d -> d);
      flight_dir;
      slow_threshold_s;
      access_log_path;
    }
  in
  let t = S.create ~config () in
  S.start t;
  Fun.protect ~finally:(fun () -> S.stop t) (fun () -> f t path)

let expect_error c line expected =
  match P.parse_response (C.call_raw c line) with
  | Ok { P.payload = Error (code, _); _ } when code = expected -> ()
  | Ok { P.payload = Error (code, _); _ } ->
    Alcotest.failf "%s: expected %s, got %s" line (P.code_name expected) (P.code_name code)
  | Ok { P.payload = Ok _; _ } -> Alcotest.failf "%s: unexpectedly succeeded" line
  | Error msg -> Alcotest.failf "%s: undecodable response: %s" line msg

let test_daemon_malformed_never_kills () =
  with_server ~max_frame:256 ~allow_sleep:false @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  expect_error c "garbage" P.Parse_error;
  expect_error c "{\"type\":\"ping\"" P.Parse_error;
  expect_error c "[]" P.Bad_request;
  expect_error c {|{"type":"warp"}|} P.Unknown_type;
  expect_error c {|{"type":"ping","bogus":true}|} P.Unknown_field;
  expect_error c {|{"type":"dc_op","expr":"(((","state":0}|} P.Bad_request;
  expect_error c {|{"type":"dc_op","expr":"a&b","state":9}|} P.Bad_request;
  expect_error c {|{"type":"dc_op","expr":"a&b&c&d&e&f","state":0}|} P.Bad_request;
  expect_error c {|{"type":"sleep","seconds":0.01}|} P.Bad_request;  (* disabled *)
  expect_error c (Printf.sprintf {|{"type":"ping","pad":"%s"}|} (String.make 300 'x'))
    P.Frame_too_long;
  expect_error c "with\000nul" P.Invalid_frame;
  (* same connection still serves after the whole table *)
  Alcotest.(check bool) "daemon alive on same connection" true (C.ping c)

let test_daemon_parity_with_direct_engine () =
  (* concurrent clients hammering dc_op must see voltages bit-identical
     to direct engine calls on a private engine *)
  let exprs = [| "a&b|c"; "a^b^c"; "a&b|b&c|a&c" |] in
  let vdd = Sp.Lattice_circuit.default_config.Sp.Lattice_circuit.vdd in
  let build expr state =
    let ast, names = Lattice_boolfn.Expr.parse expr in
    let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars:(Array.length names) in
    let grid = (Lattice_synthesis.Altun_riedel.synthesize tt).Lattice_synthesis.Altun_riedel.grid in
    let stimulus v = Sp.Source.Dc (if (state lsr v) land 1 = 1 then vdd else 0.0) in
    Sp.Lattice_circuit.build grid ~stimulus
  in
  let direct = Engine.create ~domains:1 () in
  let expected =
    Array.map
      (fun expr ->
        Array.init 8 (fun state ->
            let lc = build expr state in
            match Engine.dc_op direct lc.Sp.Lattice_circuit.netlist with
            | Ok (x, _) ->
              Sp.Mna.voltage x
                (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist lc.Sp.Lattice_circuit.output_node)
            | Error _ -> Alcotest.fail "direct solve failed"))
      exprs
  in
  with_server @@ fun _t path ->
  let results = Array.map (fun _ -> Array.make 8 Float.nan) exprs in
  let worker e =
    let c = C.connect (C.Unix_socket path) in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    for state = 0 to 7 do
      match
        C.call c ~type_:"dc_op"
          [ ("expr", J.String exprs.(e)); ("state", J.Int state) ]
      with
      | Ok result ->
        results.(e).(state) <-
          (match Option.bind (J.member "output_v" result) J.to_float with
          | Some v -> v
          | None -> Alcotest.fail "response carries no output_v")
      | Error (code, msg) -> Alcotest.failf "dc_op failed: %s: %s" (P.code_name code) msg
    done
  in
  let threads = Array.mapi (fun e _ -> Thread.create worker e) exprs in
  Array.iter Thread.join threads;
  Array.iteri
    (fun e per_state ->
      Array.iteri
        (fun state v ->
          Alcotest.(check int64)
            (Printf.sprintf "%s state %d bit-identical" exprs.(e) state)
            (Int64.bits_of_float expected.(e).(state))
            (Int64.bits_of_float v))
        per_state)
    results

let get_server_stat c path =
  match Option.bind (J.member "server" (C.stats c)) (J.member path) with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "stats carries no server.%s" path

let test_daemon_quota_and_backpressure () =
  with_server ~workers:1 ~queue:2 ~quota:2 ~allow_sleep:true @@ fun _t path ->
  let c1 = C.connect (C.Unix_socket path) in
  let c2 = C.connect (C.Unix_socket path) in
  Fun.protect
    ~finally:(fun () ->
      C.close c1;
      C.close c2)
  @@ fun () ->
  let sleep_req seconds id =
    J.to_string
      (J.Obj [ ("type", J.String "sleep"); ("seconds", J.Float seconds); ("id", J.Int id) ])
  in
  (* occupy the single worker, then fill the queue up to c1's quota *)
  C.send_raw c1 (sleep_req 0.6 1);
  let rec wait_running tries =
    if tries = 0 then Alcotest.fail "worker never picked the sleep up";
    if get_server_stat c2 "queue_depth" > 0 || get_server_stat c2 "inflight" < 1 then begin
      Thread.delay 0.01;
      wait_running (tries - 1)
    end
  in
  wait_running 100;
  C.send_raw c1 (sleep_req 0.2 2);  (* queued: c1 at quota 2 *)
  (* third c1 request bounces on the per-connection quota *)
  C.send_raw c1 (sleep_req 0.2 3);
  (match P.parse_response (Option.get (C.recv_raw c1)) with
  | Ok { P.resp_id = Some (J.Int 3); payload = Error (P.Quota_exceeded, _) } -> ()
  | _ -> Alcotest.fail "expected quota_exceeded for request 3");
  (* c2 fills the remaining queue slot, then bounces on overload *)
  C.send_raw c2 (sleep_req 0.2 4);
  let rec wait_queued tries =
    if tries = 0 then Alcotest.fail "queue never filled";
    if get_server_stat c2 "queue_depth" < 2 then begin
      Thread.delay 0.01;
      wait_queued (tries - 1)
    end
  in
  wait_queued 100;
  C.send_raw c2 (sleep_req 0.2 5);
  (match P.parse_response (Option.get (C.recv_raw c2)) with
  | Ok { P.resp_id = Some (J.Int 5); payload = Error (P.Overloaded, _) } -> ()
  | _ -> Alcotest.fail "expected overloaded for request 5");
  (* backpressure is advisory: everything admitted still completes *)
  let drain c expect_ids =
    List.iter
      (fun id ->
        match P.parse_response (Option.get (C.recv_raw c)) with
        | Ok { P.resp_id = Some (J.Int got); payload = Ok _ } when got = id -> ()
        | _ -> Alcotest.failf "expected ok response %d" id)
      expect_ids
  in
  drain c1 [ 1; 2 ];
  drain c2 [ 4 ];
  Alcotest.(check int) "rejections counted" 1 (get_server_stat c1 "quota_rejected");
  Alcotest.(check int) "overloads counted" 1 (get_server_stat c1 "overloaded")

let test_daemon_timeout_structured () =
  with_server ~allow_sleep:true @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match C.call c ~deadline_s:0.05 ~type_:"sleep" [ ("seconds", J.Float 5.0) ] with
  | Error (P.Timeout, _) -> ()
  | Error (code, msg) -> Alcotest.failf "expected timeout, got %s: %s" (P.code_name code) msg
  | Ok _ -> Alcotest.fail "sleep outlived its deadline");
  Alcotest.(check bool) "timeout fired early" true (Unix.gettimeofday () -. t0 < 2.0);
  Alcotest.(check bool) "daemon alive after timeout" true (C.ping c)

let test_daemon_tcp_listener () =
  let config =
    { S.default_config with S.tcp_port = Some 0; domains = Some 1; workers = 1 }
  in
  let t = S.create ~config () in
  S.start t;
  Fun.protect ~finally:(fun () -> S.stop t) @@ fun () ->
  let port = Option.get (S.port t) in
  let c = C.connect (C.Tcp ("127.0.0.1", port)) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  Alcotest.(check bool) "tcp ping" true (C.ping c);
  match C.call c ~type_:"table1" [ ("rows", J.Int 3); ("cols", J.Int 3) ] with
  | Ok result -> Alcotest.(check bool) "tcp table1" true (J.member "count" result = Some (J.Int 9))
  | Error _ -> Alcotest.fail "tcp table1 failed"

let test_daemon_graceful_shutdown_drains () =
  let dir = temp_dir "ftl-serve" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "daemon.sock" in
  let config =
    {
      S.default_config with
      S.socket_path = Some path;
      domains = Some 1;
      workers = 1;
      allow_sleep = true;
    }
  in
  let t = S.create ~config () in
  S.start t;
  let waiter = Thread.create (fun () -> S.wait t) () in
  let c1 = C.connect (C.Unix_socket path) in
  C.send_raw c1
    (J.to_string
       (J.Obj [ ("type", J.String "sleep"); ("seconds", J.Float 0.4); ("id", J.Int 1) ]));
  Thread.delay 0.05;  (* let the worker pick it up *)
  let c2 = C.connect (C.Unix_socket path) in
  C.shutdown c2;
  (* the in-flight sleep drains to completion despite the shutdown *)
  (match P.parse_response (Option.get (C.recv_raw c1)) with
  | Ok { P.resp_id = Some (J.Int 1); payload = Ok _ } -> ()
  | _ -> Alcotest.fail "in-flight job lost by graceful shutdown");
  Alcotest.(check bool) "connection closed after drain" true (C.recv_raw c1 = None);
  Thread.join waiter;
  C.close c1;
  C.close c2;
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path);
  S.stop t  (* idempotent *)

let test_daemon_restart_store_warm () =
  (* restart must serve repeat requests from the persistent store:
     zero dc solves, a 1.0 store hit rate, byte-identical payloads *)
  let dir = temp_dir "ftl-serve-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Filename.concat dir "store" in
  let requests =
    List.concat_map
      (fun expr ->
        List.init 8 (fun state ->
            J.to_string
              (J.Obj
                 [
                   ("type", J.String "dc_op");
                   ("id", J.String (Printf.sprintf "%s/%d" expr state));
                   ("expr", J.String expr);
                   ("state", J.Int state);
                 ])))
      [ "a&b|c"; "a^b^c" ]
  in
  let run_once nth =
    let path = Filename.concat dir (Printf.sprintf "daemon-%d.sock" nth) in
    let config =
      { S.default_config with S.socket_path = Some path; domains = Some 2; store_dir = Some store }
    in
    let t = S.create ~config () in
    S.start t;
    Fun.protect ~finally:(fun () -> S.stop t) @@ fun () ->
    let c = C.connect (C.Unix_socket path) in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    let responses = List.map (fun line -> C.call_raw c line) requests in
    let tel = Engine.telemetry (S.engine t) in
    (responses, tel)
  in
  let cold, tel_cold = run_once 0 in
  Alcotest.(check int) "cold run solved everything" 16 tel_cold.Engine.dc_solves;
  let warm, tel_warm = run_once 1 in
  Alcotest.(check int) "warm run solved nothing" 0 tel_warm.Engine.dc_solves;
  let st = Option.get tel_warm.Engine.store in
  Alcotest.(check int) "store hit rate 1.0: no misses" 0 st.Lattice_engine.Store.misses;
  Alcotest.(check int) "store hit rate 1.0: all hits" 16 st.Lattice_engine.Store.hits;
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "payload %d byte-identical across restart" i) a b)
    (List.combine cold warm)

let test_daemon_soak () =
  (* thousands of mixed requests over concurrent connections: every
     request answered, no crash, steady memory, cross-request hits *)
  let trace_was_on = Lattice_obs.Trace.on () in
  Lattice_obs.Trace.set_enabled false;
  Fun.protect ~finally:(fun () -> Lattice_obs.Trace.set_enabled trace_was_on) @@ fun () ->
  with_server ~workers:2 @@ fun t path ->
  let exprs = [| "a&b|c"; "a^b" |] in
  let send_one c i =
    let expect_ok line =
      match P.parse_response (C.call_raw c line) with
      | Ok { P.payload = Ok _; _ } -> ()
      | Ok { P.payload = Error (code, msg); _ } ->
        Alcotest.failf "request %d failed: %s: %s" i (P.code_name code) msg
      | Error msg -> Alcotest.failf "request %d: undecodable: %s" i msg
    in
    let expect_err line code =
      match P.parse_response (C.call_raw c line) with
      | Ok { P.payload = Error (got, _); _ } when got = code -> ()
      | _ -> Alcotest.failf "request %d: expected %s" i (P.code_name code)
    in
    match i mod 10 with
    | 0 -> expect_ok {|{"type":"ping"}|}
    | 1 -> expect_ok {|{"type":"table1","rows":4,"cols":4}|}
    | 2 -> expect_ok {|{"type":"paths","rows":3,"cols":3}|}
    | 3 -> expect_err "!! not json !!" P.Parse_error
    | 4 -> expect_err {|{"type":"warp"}|} P.Unknown_type
    | 5 -> expect_ok {|{"type":"stats"}|}
    | 6 ->
      expect_ok
        (J.to_string
           (J.Obj
              [
                ("type", J.String "run_deck");
                ( "deck",
                  J.String "soak\nv1 a 0 dc 1\nr1 a b 1k\nr2 b 0 1k\n.op\n.print v(b)\n.end\n"
                );
              ]))
    | 7 ->
      expect_err
        (J.to_string
           (J.Obj [ ("type", J.String "run_deck"); ("deck", J.String "t\nq1 a b c\n.end\n") ]))
        P.Deck_error
    | _ ->
      expect_ok
        (J.to_string
           (J.Obj
              [
                ("type", J.String "dc_op");
                ("expr", J.String exprs.(i mod 2));
                ("state", J.Int (i mod 4));
              ]))
  in
  let round offset n_per_conn =
    let worker k =
      let c = C.connect (C.Unix_socket path) in
      Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
      for i = 0 to n_per_conn - 1 do
        send_one c (offset + (k * n_per_conn) + i)
      done
    in
    let threads = List.init 3 (fun k -> Thread.create worker k) in
    List.iter Thread.join threads
  in
  round 0 250;  (* warm-up: 750 requests, caches filled *)
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  round 750 250;
  round 1500 250;
  Gc.compact ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let growth = float_of_int (live1 - live0) /. float_of_int live0 in
  Alcotest.(check bool)
    (Printf.sprintf "live heap steady over 2250 requests (growth %.1f%%)" (100.0 *. growth))
    true (growth < 0.10);
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  Alcotest.(check bool) "daemon alive after soak" true (C.ping c);
  (* 2250 soak requests + the ping above + this stats request itself *)
  Alcotest.(check int) "every request answered, none dropped" 2252
    (get_server_stat c "requests");
  let tel = Engine.telemetry (S.engine t) in
  Alcotest.(check bool) "cross-request cache hits accrued" true
    (tel.Engine.cache.Lattice_engine.Cache.hits > 0)

let test_daemon_compute_handlers () =
  with_server @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let field result name =
    match J.member name result with
    | Some v -> v
    | None -> Alcotest.failf "response carries no %s" name
  in
  (match
     C.call c ~type_:"transient"
       [ ("expr", J.String "a&b"); ("bit_time", J.Float 20e-9); ("h", J.Float 2e-9) ]
   with
  | Ok result ->
    Alcotest.(check bool) "transient samples recorded" true
      (match field result "samples" with J.Int n -> n > 10 | _ -> false);
    Alcotest.(check bool) "transient output bounded" true
      (match field result "output_max_v" with J.Float v -> v <= 1.3 | _ -> false)
  | Error (code, msg) -> Alcotest.failf "transient failed: %s: %s" (P.code_name code) msg);
  (match
     C.call c ~type_:"yield"
       [ ("expr", J.String "a&b"); ("samples", J.Int 5); ("sigma_vth", J.Float 0.03) ]
   with
  | Ok result ->
    Alcotest.(check bool) "yield in [0,1]" true
      (match field result "yield" with
      | J.Float y -> y >= 0.0 && y <= 1.0
      | J.Int (0 | 1) -> true
      | _ -> false)
  | Error (code, msg) -> Alcotest.failf "yield failed: %s: %s" (P.code_name code) msg);
  match C.call c ~type_:"defects" [ ("expr", J.String "a&b") ] with
  | Ok result ->
    let n = function J.Int n -> n | _ -> Alcotest.fail "non-integer count" in
    let samples = n (field result "samples") in
    Alcotest.(check bool) "defect samples enumerated" true (samples > 0);
    Alcotest.(check int) "defect classes partition the samples" samples
      (n (field result "functional") + n (field result "degraded")
      + n (field result "faulty")
      + n (field result "non_convergent"))
  | Error (code, msg) -> Alcotest.failf "defects failed: %s: %s" (P.code_name code) msg

let test_daemon_run_deck () =
  with_server @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* happy path: a small divider deck with .op and a .dc sweep *)
  let deck =
    "divider over the wire\nv1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n\
     .op\n.dc v1 0 1 0.5\n.print v(out)\n.end\n"
  in
  (match C.call c ~type_:"run_deck" [ ("deck", J.String deck) ] with
  | Error (code, msg) -> Alcotest.failf "run_deck failed: %s: %s" (P.code_name code) msg
  | Ok result ->
    Alcotest.(check bool) "digest is a hex string" true
      (match J.member "digest" result with
      | Some (J.String d) -> String.length d = 32
      | _ -> false);
    (match J.member "analyses" result with
    | Some (J.List [ op; dc ]) ->
      Alcotest.(check bool) "op result typed" true
        (J.member "type" op = Some (J.String "op"));
      Alcotest.(check bool) "op v(out) is vdd/2" true
        (match Option.bind (J.member "nodes" op) (J.member "out") with
        | Some (J.Float v) -> Float.abs (v -. 0.5) < 1e-9
        | _ -> false);
      Alcotest.(check bool) "dc sweep has 3 points" true
        (J.member "points" dc = Some (J.Int 3))
    | _ -> Alcotest.fail "expected exactly two analyses"));
  (* malformed decks: structured deck_error carrying line/col, and the
     connection (and daemon) survive the whole table *)
  let expect_deck_error deck line col =
    let req = J.to_string (J.Obj [ ("type", J.String "run_deck"); ("deck", J.String deck) ]) in
    let raw = C.call_raw c req in
    match J.parse raw with
    | J.Obj _ as resp ->
      let err =
        match J.member "error" resp with
        | Some e -> e
        | None -> Alcotest.failf "no error object in %s" raw
      in
      Alcotest.(check bool) "code is deck_error" true
        (J.member "code" err = Some (J.String "deck_error"));
      Alcotest.(check bool) (Printf.sprintf "line %d reported" line) true
        (J.member "line" err = Some (J.Int line));
      Alcotest.(check bool) (Printf.sprintf "col %d reported" col) true
        (J.member "col" err = Some (J.Int col))
    | _ | (exception J.Parse_error _) -> Alcotest.failf "undecodable response %s" raw
  in
  expect_deck_error "t\nq1 a b c\n.end\n" 2 1;  (* unsupported card *)
  expect_deck_error "t\nr1 a 0 1k\nr1 a 0 2k\n.end\n" 3 1;  (* duplicate *)
  expect_deck_error "t\n.subckt s a b\nr1 a b 1k\n.end\n" 2 1;  (* unterminated *)
  expect_deck_error "t\nr1 a 0 12q3\n.end\n" 2 8;  (* bad value *)
  (* oversized work is rejected by server limits, not truncated *)
  expect_error c
    (J.to_string
       (J.Obj
          [
            ("type", J.String "run_deck");
            ("deck", J.String "t\nv1 a 0 dc 0\nr1 a 0 1k\n.dc v1 0 1 1u\n.end\n");
          ]))
    P.Non_convergent;
  Alcotest.(check bool) "daemon alive after deck table" true (C.ping c)

(* --- observability over the wire -------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let test_daemon_flight_dump_carries_trace () =
  (* acceptance: a deadline-killed request leaves a flight dump in the
     spool whose daemon-side spans carry the client's trace_id,
     parent_span, and request id — wire-level propagation verified
     structurally, over a live socket *)
  let flight = temp_dir "ftl-flight" in
  Fun.protect ~finally:(fun () -> rm_rf flight) @@ fun () ->
  let ring_was = Lattice_obs.Ring.on () in
  Lattice_obs.Ring.set_enabled true;
  Fun.protect ~finally:(fun () -> Lattice_obs.Ring.set_enabled ring_was) @@ fun () ->
  with_server ~allow_sleep:true ~flight_dir:flight @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match
     C.call c ~id:(J.String "kill-me") ~deadline_s:0.05 ~trace_id:"cli-trace-7"
       ~parent_span:"cli-span-2" ~type_:"sleep" [ ("seconds", J.Float 5.0) ]
   with
  | Error (P.Timeout, _) -> ()
  | Error (code, msg) -> Alcotest.failf "expected timeout, got %s: %s" (P.code_name code) msg
  | Ok _ -> Alcotest.fail "sleep outlived its deadline");
  (* the dump lands just after the timeout response ships; poll the
     counter (incremented only once the spool file is fully written) *)
  let rec wait_dump tries =
    if get_server_stat c "flight_dumps" < 1 then
      if tries = 0 then Alcotest.fail "timeout never produced a flight dump"
      else begin
        Thread.delay 0.02;
        wait_dump (tries - 1)
      end
  in
  wait_dump 200;
  let files = Sys.readdir flight in
  Alcotest.(check bool) "spool file written" true (Array.length files >= 1);
  Alcotest.(check bool) "spool names prefixed flight-" true
    (Array.for_all (fun f -> String.length f > 7 && String.sub f 0 7 = "flight-") files);
  let dump =
    String.concat "\n"
      (Array.to_list (Array.map (fun f -> read_file (Filename.concat flight f)) files))
  in
  Alcotest.(check bool) "dump holds the killed request's handler span" true
    (contains ~sub:{|"name":"serve.handle"|} dump);
  Alcotest.(check bool) "daemon spans carry the request id" true
    (contains ~sub:{|"req_id":"kill-me"|} dump);
  Alcotest.(check bool) "daemon spans carry the client trace id" true
    (contains ~sub:{|"trace_id":"cli-trace-7"|} dump);
  Alcotest.(check bool) "daemon spans link to the client span" true
    (contains ~sub:{|"parent_span":"cli-span-2"|} dump);
  (* every dump line is one self-contained chrome-trace "X" event *)
  List.iter
    (fun line ->
      if line <> "" then
        match J.parse line with
        | J.Obj _ as e ->
          Alcotest.(check bool) "chrome X event" true (J.member "ph" e = Some (J.String "X"))
        | _ -> Alcotest.failf "non-object dump line %s" line
        | exception J.Parse_error _ -> Alcotest.failf "unparseable dump line %s" line)
    (String.split_on_char '\n' dump)

let test_daemon_stats_window_and_metrics_text () =
  with_server @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  Alcotest.(check bool) "ping 1" true (C.ping c);
  Alcotest.(check bool) "ping 2" true (C.ping c);
  (match C.call c ~type_:"dc_op" [ ("expr", J.String "a&b"); ("state", J.Int 1) ] with
  | Ok _ -> ()
  | Error (code, msg) -> Alcotest.failf "dc_op failed: %s: %s" (P.code_name code) msg);
  let stats = C.stats c in
  let mem keys = List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some stats) keys in
  let num keys =
    match mem keys with
    | Some (J.Int n) -> float_of_int n
    | Some (J.Float f) -> f
    | _ -> Alcotest.failf "stats carries no %s" (String.concat "." keys)
  in
  (* pinned stats shape: window object + the new server counters *)
  Alcotest.(check bool) "window.window_s is 60s" true (num [ "window"; "window_s" ] = 60.0);
  Alcotest.(check bool) "window.inflight present" true (mem [ "window"; "inflight" ] <> None);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "window.all.%s present" f)
        true
        (mem [ "window"; "all"; f ] <> None))
    [ "count"; "errors"; "timeouts"; "rate_per_s"; "p50_ms"; "p95_ms"; "p99_ms"; "max_ms" ];
  Alcotest.(check bool) "window counted the pings" true
    (num [ "window"; "by_type"; "ping"; "count" ] >= 2.0);
  Alcotest.(check bool) "window counted the dc_op" true
    (num [ "window"; "by_type"; "dc_op"; "count" ] >= 1.0);
  Alcotest.(check bool) "window has no errors" true (num [ "window"; "all"; "errors" ] = 0.0);
  (* nearest-rank on log buckets is monotone; the top rank is the exact max *)
  Alcotest.(check bool) "percentiles ordered" true
    (num [ "window"; "all"; "p50_ms" ] <= num [ "window"; "all"; "p99_ms" ]
    && num [ "window"; "all"; "p99_ms" ]
       <= (num [ "window"; "all"; "max_ms" ] *. Float.sqrt 2.0) +. 1e-9);
  Alcotest.(check int) "no timeouts yet" 0 (get_server_stat c "request_timeouts");
  Alcotest.(check int) "no dumps yet" 0 (get_server_stat c "flight_dumps");
  (* the same window, rendered as Prometheus exposition text *)
  match C.call c ~type_:"metrics_text" [] with
  | Error (code, msg) -> Alcotest.failf "metrics_text failed: %s: %s" (P.code_name code) msg
  | Ok result ->
    Alcotest.(check bool) "content type pinned" true
      (J.member "content_type" result = Some (J.String "text/plain; version=0.0.4"));
    let text =
      match J.member "text" result with
      | Some (J.String s) -> s
      | _ -> Alcotest.fail "metrics_text carries no text"
    in
    List.iter
      (fun sub ->
        Alcotest.(check bool) (Printf.sprintf "exposition has %s" sub) true (contains ~sub text))
      [
        "# TYPE ftl_requests_total counter";
        "# TYPE ftl_uptime_seconds gauge";
        "# TYPE ftl_request_duration_seconds summary";
        {|ftl_request_duration_seconds{type="all",quantile="0.5"}|};
        {|ftl_request_duration_seconds{type="ping",quantile="0.99"}|};
        {|ftl_request_duration_seconds_count{type="dc_op"}|};
        {|ftl_window_errors{type="all"}|};
        {|ftl_window_timeouts{type="ping"}|};
        "ftl_engine_dc_solves_total";
        "ftl_flight_dumps_total";
        "ftl_window_seconds 60";
      ]

let test_daemon_access_log () =
  let dir = temp_dir "ftl-access" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let log = Filename.concat dir "access.jsonl" in
  with_server ~allow_sleep:true ~access_log_path:log @@ fun _t path ->
  let c = C.connect (C.Unix_socket path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  Alcotest.(check bool) "ping ok" true (C.ping c);
  (match
     C.call c ~id:(J.String "traced-1") ~trace_id:"trace-al-1" ~type_:"dc_op"
       [ ("expr", J.String "a|b"); ("state", J.Int 2) ]
   with
  | Ok _ -> ()
  | Error (code, msg) -> Alcotest.failf "dc_op failed: %s: %s" (P.code_name code) msg);
  expect_error c "garbage" P.Parse_error;
  (match
     C.call c ~id:(J.String "late-1") ~deadline_s:0.05 ~type_:"sleep"
       [ ("seconds", J.Float 2.0) ]
   with
  | Error (P.Timeout, _) -> ()
  | _ -> Alcotest.fail "expected timeout");
  (* four requests, one JSONL line each; worker-side lines land just
     after their response ships, so poll *)
  let lines_of () =
    if Sys.file_exists log then
      String.split_on_char '\n' (read_file log) |> List.filter (fun l -> l <> "")
    else []
  in
  let rec wait tries =
    let ls = lines_of () in
    if List.length ls >= 4 then ls
    else if tries = 0 then Alcotest.failf "access log has %d lines, want 4" (List.length ls)
    else begin
      Thread.delay 0.02;
      wait (tries - 1)
    end
  in
  let parsed =
    List.map
      (fun l ->
        match J.parse l with
        | J.Obj _ as j -> j
        | _ -> Alcotest.failf "access line is not an object: %s" l
        | exception J.Parse_error _ -> Alcotest.failf "unparseable access line: %s" l)
      (wait 200)
  in
  (* every line carries the full pinned field set *)
  List.iter
    (fun j ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (Printf.sprintf "field %s present" k) true (J.member k j <> None))
        [
          "ts"; "id"; "type"; "outcome"; "duration_ns"; "cache_hits"; "dc_solves"; "retries";
          "trace_id";
        ])
    parsed;
  let find ty = List.find_opt (fun j -> J.member "type" j = Some (J.String ty)) parsed in
  (match find "ping" with
  | Some j ->
    Alcotest.(check bool) "ping outcome ok" true (J.member "outcome" j = Some (J.String "ok"))
  | None -> Alcotest.fail "no ping access line");
  (match find "dc_op" with
  | Some j ->
    Alcotest.(check bool) "dc_op carries the client trace id" true
      (J.member "trace_id" j = Some (J.String "trace-al-1"));
    Alcotest.(check bool) "dc_op id logged" true
      (J.member "id" j = Some (J.String "traced-1"));
    Alcotest.(check bool) "dc_op attribution: solves counted" true
      (match J.member "dc_solves" j with Some (J.Int n) -> n >= 1 | _ -> false)
  | None -> Alcotest.fail "no dc_op access line");
  (match find "malformed" with
  | Some j ->
    Alcotest.(check bool) "malformed outcome is the error code" true
      (J.member "outcome" j = Some (J.String (P.code_name P.Parse_error)))
  | None -> Alcotest.fail "no malformed access line");
  match find "sleep" with
  | Some j ->
    Alcotest.(check bool) "sleep outcome timeout" true
      (J.member "outcome" j = Some (J.String (P.code_name P.Timeout)))
  | None -> Alcotest.fail "no sleep access line"

let test_daemon_no_listener_rejected () =
  let t = S.create () in
  match S.start t with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "start without a listener must be rejected"

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip + determinism" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed documents rejected" `Quick test_json_rejects;
          Alcotest.test_case "number forms" `Quick test_json_numbers;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "valid envelopes" `Quick test_protocol_valid;
          Alcotest.test_case "malformed-request table" `Quick test_protocol_malformed_table;
          Alcotest.test_case "response rendering roundtrip" `Quick test_protocol_responses;
        ] );
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "overlong/NUL hardening" `Quick test_framing_hardening;
          Alcotest.test_case "unterminated flood" `Quick test_framing_huge_unterminated;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "malformed input never kills" `Quick test_daemon_malformed_never_kills;
          Alcotest.test_case "concurrent parity vs direct engine" `Quick
            test_daemon_parity_with_direct_engine;
          Alcotest.test_case "quota + backpressure" `Quick test_daemon_quota_and_backpressure;
          Alcotest.test_case "deadline timeout is structured" `Quick test_daemon_timeout_structured;
          Alcotest.test_case "tcp listener (ephemeral port)" `Quick test_daemon_tcp_listener;
          Alcotest.test_case "graceful shutdown drains in-flight" `Quick
            test_daemon_graceful_shutdown_drains;
          Alcotest.test_case "restart serves from the store" `Quick test_daemon_restart_store_warm;
          Alcotest.test_case "transient/yield/defects handlers" `Quick test_daemon_compute_handlers;
          Alcotest.test_case "run_deck: results + error table" `Quick test_daemon_run_deck;
          Alcotest.test_case "flight dump carries the client trace" `Quick
            test_daemon_flight_dump_carries_trace;
          Alcotest.test_case "stats window + metrics_text pinned" `Quick
            test_daemon_stats_window_and_metrics_text;
          Alcotest.test_case "access log: lines, outcomes, attribution" `Quick
            test_daemon_access_log;
          Alcotest.test_case "no listener rejected" `Quick test_daemon_no_listener_rejected;
        ] );
      ("soak", [ Alcotest.test_case "2250 mixed requests, 3 connections" `Quick test_daemon_soak ]);
    ]
