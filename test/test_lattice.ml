(* Tests for the lattice core: grids, connectivity, irredundant paths,
   lattice functions, Table I. *)

module Grid = Lattice_core.Grid
module Conn = Lattice_core.Connectivity
module Paths = Lattice_core.Paths
module Lf = Lattice_core.Lattice_function
module Table1 = Lattice_core.Table1
module Sop = Lattice_boolfn.Sop

(* --- Grid --------------------------------------------------------------- *)

let test_grid_of_strings () =
  let g, names = Grid.of_strings [ [ "a"; "b'" ]; [ "1"; "0" ] ] in
  Alcotest.(check int) "rows" 2 g.Grid.rows;
  Alcotest.(check int) "cols" 2 g.Grid.cols;
  Alcotest.(check int) "nvars" 2 (Grid.nvars g);
  Alcotest.(check string) "names" "a" names.(0);
  (match Grid.entry g 0 1 with
  | Grid.Lit (1, false) -> ()
  | _ -> Alcotest.fail "expected b'");
  (match Grid.entry g 1 0 with Grid.Const true -> () | _ -> Alcotest.fail "expected 1");
  match Grid.entry g 1 1 with Grid.Const false -> () | _ -> Alcotest.fail "expected 0"

let test_grid_bad_input () =
  Alcotest.(check bool) "ragged" true
    (match Grid.of_strings [ [ "a" ]; [ "a"; "b" ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty cell" true
    (match Grid.of_strings [ [ "" ] ] with exception Invalid_argument _ -> true | _ -> false)

let test_grid_neighbors () =
  let g = Grid.generic 3 3 in
  let sorted l = List.sort Int.compare l in
  Alcotest.(check (list int)) "corner" [ 1; 3 ] (sorted (Grid.neighbors g 0));
  Alcotest.(check (list int)) "center" [ 1; 3; 5; 7 ] (sorted (Grid.neighbors g 4));
  Alcotest.(check (list int)) "edge" [ 0; 2; 4 ] (sorted (Grid.neighbors g 1))

let test_grid_on_pattern () =
  let g, _ = Grid.of_strings [ [ "a"; "a'"; "1" ] ] in
  Alcotest.(check (array bool)) "a=1" [| true; false; true |] (Grid.on_pattern g 0b1);
  Alcotest.(check (array bool)) "a=0" [| false; true; true |] (Grid.on_pattern g 0b0)

let test_grid_prime_parsing () =
  let g, names = Grid.of_strings [ [ "x''" ]; [ "x'" ] ] in
  Alcotest.(check int) "one var" 1 (Array.length names);
  (match Grid.entry g 0 0 with Grid.Lit (0, true) -> () | _ -> Alcotest.fail "x'' = x");
  match Grid.entry g 1 0 with Grid.Lit (0, false) -> () | _ -> Alcotest.fail "x' negative"

(* --- Connectivity ------------------------------------------------------- *)

let test_connectivity_simple () =
  (* vertical wire in a 2x2 *)
  Alcotest.(check bool) "column conducts" true
    (Conn.connected ~rows:2 ~cols:2 [| true; false; true; false |]);
  Alcotest.(check bool) "broken column" false
    (Conn.connected ~rows:2 ~cols:2 [| true; false; false; true |]);
  Alcotest.(check bool) "zigzag" true
    (Conn.connected ~rows:2 ~cols:2 [| true; false; true; true |] |> fun x -> x);
  Alcotest.(check bool) "all off" false
    (Conn.connected ~rows:2 ~cols:2 [| false; false; false; false |])

let test_connectivity_single_row () =
  Alcotest.(check bool) "1xN: any on cell conducts" true
    (Conn.connected ~rows:1 ~cols:3 [| false; true; false |]);
  Alcotest.(check bool) "1xN: all off" false
    (Conn.connected ~rows:1 ~cols:3 [| false; false; false |])

let prop_bfs_equals_union_find =
  QCheck2.Test.make ~name:"BFS = union-find on random patterns" ~count:500
    QCheck2.Gen.(triple (int_range 1 5) (int_range 1 5) (int_range 0 0x1FFFFFF))
    (fun (rows, cols, bits) ->
      let on = Array.init (rows * cols) (fun i -> bits land (1 lsl i) <> 0) in
      Bool.equal (Conn.connected_bfs ~rows ~cols on) (Conn.connected_union_find ~rows ~cols on))

let test_pattern_table () =
  let table = Conn.table_of_patterns ~rows:2 ~cols:2 in
  let on_of p = Array.init 4 (fun i -> p land (1 lsl i) <> 0) in
  for p = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "pattern %d" p)
      (Conn.connected ~rows:2 ~cols:2 (on_of p))
      (Bytes.get table p <> '\000')
  done

let test_eval_assigned () =
  let g, _ = Grid.of_strings [ [ "a" ]; [ "b" ] ] in
  Alcotest.(check bool) "a=b=1 conducts" true (Conn.eval g 0b11);
  Alcotest.(check bool) "a=1 b=0" false (Conn.eval g 0b01)

(* --- Paths -------------------------------------------------------------- *)

let sets_of_paths paths = List.map (fun p -> List.sort Int.compare (Array.to_list p)) paths

let test_paths_match_brute_force () =
  List.iter
    (fun (rows, cols) ->
      let fast =
        List.sort compare (sets_of_paths (Paths.irredundant_paths ~rows ~cols))
      in
      let brute = Paths.irredundant_sets_brute ~rows ~cols in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "%dx%d" rows cols)
        brute fast)
    [ (1, 1); (1, 3); (2, 2); (2, 3); (3, 2); (3, 3); (3, 4); (4, 3); (2, 5); (4, 4) ]

let test_paths_are_chordless () =
  (* no two non-consecutive cells of a path may be adjacent *)
  let rows = 4 and cols = 4 in
  Paths.iter_irredundant ~rows ~cols (fun path ->
      let n = Array.length path in
      for i = 0 to n - 1 do
        for j = i + 2 to n - 1 do
          let a = path.(i) and b = path.(j) in
          let ra = a / cols and ca = a mod cols and rb = b / cols and cb = b mod cols in
          let adjacent = abs (ra - rb) + abs (ca - cb) = 1 in
          if adjacent then
            Alcotest.failf "chord between positions %d and %d in a path" i j
        done
      done)

let test_paths_touch_plates_once () =
  let rows = 4 and cols = 4 in
  Paths.iter_irredundant ~rows ~cols (fun path ->
      let n = Array.length path in
      Array.iteri
        (fun i site ->
          let r = site / cols in
          if r = 0 && i <> 0 then Alcotest.fail "interior top-row cell";
          if r = rows - 1 && i <> n - 1 then Alcotest.fail "interior bottom-row cell")
        path)

let test_paths_distinct_sets () =
  let seen = Hashtbl.create 64 in
  Paths.iter_irredundant ~rows:4 ~cols:4 (fun path ->
      let key = List.sort Int.compare (Array.to_list path) in
      if Hashtbl.mem seen key then Alcotest.fail "duplicate product set";
      Hashtbl.replace seen key ())

let test_length_histogram () =
  (* Fig 2c: the 3x3 function has 3 products of 3 literals, 4 of 4, 2 of 5 *)
  let h = Paths.length_histogram ~rows:3 ~cols:3 in
  Alcotest.(check int) "size-3 products" 3 h.(3);
  Alcotest.(check int) "size-4 products" 4 h.(4);
  Alcotest.(check int) "size-5 products" 2 h.(5);
  Alcotest.(check int) "total" 9 (Array.fold_left ( + ) 0 h);
  (* histogram total always equals the product count *)
  List.iter
    (fun (m, n) ->
      Alcotest.(check int)
        (Printf.sprintf "%dx%d total" m n)
        (Paths.count_irredundant ~rows:m ~cols:n)
        (Array.fold_left ( + ) 0 (Paths.length_histogram ~rows:m ~cols:n)))
    [ (2, 4); (4, 2); (4, 4); (5, 3) ]

let test_count_edge_cases () =
  Alcotest.(check int) "1x1" 1 (Paths.count_irredundant ~rows:1 ~cols:1);
  Alcotest.(check int) "1x7: one product per column" 7 (Paths.count_irredundant ~rows:1 ~cols:7);
  Alcotest.(check int) "5x1: single column path" 1 (Paths.count_irredundant ~rows:5 ~cols:1);
  Alcotest.(check int) "2x2" 2 (Paths.count_irredundant ~rows:2 ~cols:2)

(* --- ZDD ----------------------------------------------------------------- *)

module Zdd = Lattice_core.Zdd

let test_zdd_matches_enum () =
  (* the ZDD and the reference DFS enumeration agree on every small board *)
  for m = 1 to 7 do
    for n = 1 to 7 do
      Alcotest.(check int)
        (Printf.sprintf "%dx%d" m n)
        (Paths.count_irredundant_enum ~rows:m ~cols:n)
        (Paths.count_irredundant ~rows:m ~cols:n)
    done
  done

let test_zdd_histogram_matches_enum () =
  List.iter
    (fun (m, n) ->
      Alcotest.(check (array int))
        (Printf.sprintf "%dx%d histogram" m n)
        (Paths.length_histogram_enum ~rows:m ~cols:n)
        (Paths.length_histogram ~rows:m ~cols:n))
    [ (5, 5); (3, 6); (6, 3); (1, 4); (4, 1) ]

let test_crossover_boundary_parity () =
  (* the enum/ZDD crossover (enumeration iff both dims < crossover_dim)
     must be invisible: both pinned backends and the auto dispatch agree
     on every cell around the boundary, counts and histograms alike *)
  Alcotest.(check int) "crossover dim pinned" 8 Paths.crossover_dim;
  let d = Paths.crossover_dim in
  List.iter
    (fun (m, n) ->
      let enum = Paths.count_irredundant_enum ~rows:m ~cols:n in
      Alcotest.(check int)
        (Printf.sprintf "%dx%d enum = zdd" m n)
        enum
        (Paths.count_irredundant_zdd ~rows:m ~cols:n);
      Alcotest.(check int)
        (Printf.sprintf "%dx%d auto dispatch" m n)
        enum
        (Paths.count_irredundant ~rows:m ~cols:n);
      Alcotest.(check (array int))
        (Printf.sprintf "%dx%d histogram parity" m n)
        (Paths.length_histogram_enum ~rows:m ~cols:n)
        (Paths.length_histogram_zdd ~rows:m ~cols:n))
    [ (d - 1, d - 1); (d - 1, d); (d, d - 1); (d, d) ]

let test_zdd_structure () =
  let z = Zdd.of_lattice ~rows:4 ~cols:4 in
  Alcotest.(check int) "vars = cells" 16 (Zdd.n_vars z);
  Alcotest.(check int) "count = paper 4x4" (Table1.paper_value ~rows:4 ~cols:4) (Zdd.count z);
  (* the reduced DAG is tiny compared to the 53-path family *)
  Alcotest.(check bool) "reduced" true (Zdd.node_count z < 200)

(* --- Table 1 ------------------------------------------------------------ *)

let test_table1_paper_values () =
  (* every published cell up to 6x6, plus tall/wide asymmetric entries *)
  List.iter
    (fun (m, n) ->
      Alcotest.(check int)
        (Printf.sprintf "%dx%d" m n)
        (Table1.paper_value ~rows:m ~cols:n)
        (Table1.count ~rows:m ~cols:n))
    [
      (2, 2); (2, 5); (2, 9); (3, 3); (3, 7); (4, 4); (4, 6); (5, 5); (6, 6); (9, 2); (7, 3);
      (5, 8); (8, 4); (9, 4); (6, 7);
    ]

let test_table1_out_of_range () =
  Alcotest.check_raises "below range" (Invalid_argument "Table1.paper_value: published range is 2..9")
    (fun () -> ignore (Table1.paper_value ~rows:1 ~cols:3))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_table1_render () =
  let s = Table1.render ~max_dim:4 ~compute:false () in
  Alcotest.(check bool) "contains 36" true (contains s "36");
  Alcotest.(check bool) "contains header" true (contains s "m/n")

let test_table1_extended_diagonal () =
  (* shipped constants for the diagonal past the published table *)
  match Table1.extended_diagonal with
  | [ (10, c10); (11, c11); (12, c12) ] ->
    Alcotest.(check int) "10x10" 2_864_677_868 c10;
    Alcotest.(check int) "11x11" 328_777_220_927 c11;
    Alcotest.(check int) "12x12" 63_076_542_161_104 c12
  | _ -> Alcotest.fail "expected exactly the 10..12 diagonal"

let test_table1_extended_recompute_10 () =
  Alcotest.(check int) "10x10 recomputed" 2_864_677_868 (Table1.count ~rows:10 ~cols:10)

let test_table1_extended_recompute_full () =
  (* 12x12 takes ~10 s, so it only recomputes under FTL_TABLE1_FULL=1
     (the same switch the Table I experiment uses); 11x11 always runs *)
  let full =
    match Sys.getenv_opt "FTL_TABLE1_FULL" with Some ("1" | "true") -> true | _ -> false
  in
  List.iter
    (fun (d, want) ->
      if d <= 11 || full then
        Alcotest.(check int) (Printf.sprintf "%dx%d recomputed" d d) want
          (Table1.count ~rows:d ~cols:d))
    Table1.extended_diagonal

let test_table1_memo_hammer () =
  (* four domains hammer the memoized counter on overlapping fresh
     dimensions; without the mutex this races on the memo Hashtbl *)
  let dims = [ (8, 5); (5, 8); (8, 6); (6, 8); (7, 7) ] in
  let expected = List.map (fun (m, n) -> Paths.count_irredundant ~rows:m ~cols:n) dims in
  let worker () =
    let ok = ref true in
    for _ = 1 to 3 do
      List.iter2
        (fun (m, n) want -> if Table1.count ~rows:m ~cols:n <> want then ok := false)
        dims expected
    done;
    !ok
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter
    (fun d -> Alcotest.(check bool) "domain saw consistent counts" true (Domain.join d))
    domains

let test_table1_transpose_symmetry () =
  (* path counting is not symmetric in general (cf. 6x6 vs published
     asymmetry of 4x9 vs 9x4), but 2xN vs Nx2 have known values *)
  Alcotest.(check int) "2x9" 9 (Table1.count ~rows:2 ~cols:9);
  Alcotest.(check int) "9x2" 68 (Table1.count ~rows:9 ~cols:2)

(* --- Lattice function ---------------------------------------------------- *)

let test_f3x3_products () =
  let f = Lf.of_generic ~rows:3 ~cols:3 in
  Alcotest.(check int) "9 products" 9 (Sop.product_count f);
  (* x1 x4 x7 (sites 0, 3, 6) must be one of them *)
  let target = Lattice_boolfn.Cube.of_masks ~pos:(0b1001001) ~neg:0 in
  Alcotest.(check bool) "contains left column" true
    (List.exists (fun c -> Lattice_boolfn.Cube.equal c target) (Sop.cubes f))

let test_of_generic_matches_connectivity () =
  (* the SOP and the direct connectivity evaluation must agree on every
     assignment of the 3x3 lattice *)
  let f = Lf.of_generic ~rows:3 ~cols:3 in
  let g = Grid.generic 3 3 in
  for m = 0 to 511 do
    if not (Bool.equal (Sop.eval f m) (Conn.eval g m)) then
      Alcotest.failf "disagreement at assignment %d" m
  done

let test_of_assigned_xor3 () =
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  let f = Lf.of_assigned grid in
  let tt = Lattice_boolfn.Truthtable.of_sop f in
  Alcotest.(check bool) "SOP = XOR3" true
    (Lattice_boolfn.Truthtable.equal tt (Lattice_boolfn.Truthtable.xor_n 3))

let test_of_assigned_constants () =
  let g0, _ = Grid.of_strings [ [ "0" ]; [ "a" ] ] in
  let f0 = Lf.of_assigned g0 in
  Alcotest.(check int) "0 kills the path" 0 (Sop.product_count f0);
  let g1, _ = Grid.of_strings [ [ "1" ]; [ "a" ] ] in
  let f1 = Lf.of_assigned g1 in
  Alcotest.(check string) "1 is dropped from the product" "a"
    (Sop.to_string ~names:Sop.alpha_names f1)

let test_of_assigned_contradiction () =
  (* a and a' in the same path: product vanishes *)
  let g, _ = Grid.of_strings [ [ "a" ]; [ "a'" ] ] in
  Alcotest.(check int) "contradictory path" 0 (Sop.product_count (Lf.of_assigned g))

let test_product_strings () =
  let ps = Lf.product_strings ~rows:2 ~cols:2 in
  Alcotest.(check (list string)) "2x2 products" [ "x1x3"; "x2x4" ] (List.sort compare ps)

let prop_assigned_sop_matches_eval =
  (* for random small assigned grids the extracted SOP must equal the
     connectivity semantics on every assignment *)
  let grid_gen =
    let open QCheck2.Gen in
    let entry_gen =
      oneof
        [
          (let* v = int_range 0 2 and* p = bool in
           return (Grid.Lit (v, p)));
          return (Grid.Const true);
          return (Grid.Const false);
        ]
    in
    let* rows = int_range 1 3 and* cols = int_range 1 3 in
    let* entries = array_size (return (rows * cols)) entry_gen in
    return (Grid.create rows cols entries)
  in
  QCheck2.Test.make ~name:"of_assigned matches connectivity semantics" ~count:300 grid_gen
    (fun g ->
      let f = Lf.of_assigned g in
      let ok = ref true in
      for m = 0 to 7 do
        if not (Bool.equal (Sop.eval f m) (Conn.eval g m)) then ok := false
      done;
      !ok)

(* --- Compose -------------------------------------------------------------- *)

module Compose = Lattice_core.Compose
module Expr = Lattice_boolfn.Expr

let realizes_expr g e nvars =
  let ok = ref true in
  for m = 0 to (1 lsl nvars) - 1 do
    if not (Bool.equal (Expr.eval e m) (Conn.eval g m)) then ok := false
  done;
  !ok

let test_compose_primitives () =
  let a = Compose.literal 0 true and b = Compose.literal 1 true in
  Alcotest.(check bool) "a or b" true
    (realizes_expr (Compose.disjunction a b) (Expr.Or (Expr.Var 0, Expr.Var 1)) 2);
  Alcotest.(check bool) "a and b" true
    (realizes_expr (Compose.conjunction a b) (Expr.And (Expr.Var 0, Expr.Var 1)) 2);
  Alcotest.(check bool) "constants" true
    (realizes_expr (Compose.constant true) (Expr.Const true) 1)

let test_compose_spacer_necessity () =
  (* two 3x1 columns side by side WITHOUT the spacer conduct under
     x1 x3 x4 x6 with neither column complete: the spacer is load-bearing *)
  let g = Grid.create 3 2 [| Grid.Lit (0, true); Grid.Lit (1, true);
                             Grid.Lit (2, true); Grid.Lit (3, true);
                             Grid.Lit (4, true); Grid.Lit (5, true) |] in
  (* ON: x0 x2 x3 x5 (left top, left mid, right mid, right bottom) *)
  let m = 0b101101 in
  Alcotest.(check bool) "crossing path conducts" true (Conn.eval g m);
  (* with the composed (spacered) OR of the two columns it must not *)
  let col1 =
    Grid.create 3 1 [| Grid.Lit (0, true); Grid.Lit (2, true); Grid.Lit (4, true) |]
  in
  let col2 =
    Grid.create 3 1 [| Grid.Lit (1, true); Grid.Lit (3, true); Grid.Lit (5, true) |]
  in
  Alcotest.(check bool) "spacered OR blocks it" false
    (Conn.eval (Compose.disjunction col1 col2) m)

let test_compose_padding_preserves () =
  let g, _ = Grid.of_strings [ [ "a"; "b" ]; [ "c"; "d" ] ] in
  let padded_h = Compose.pad_to_height g 4 in
  let padded_w = Compose.pad_to_width g 4 in
  for m = 0 to 15 do
    Alcotest.(check bool) "height pad" (Conn.eval g m) (Conn.eval padded_h m);
    Alcotest.(check bool) "width pad" (Conn.eval g m) (Conn.eval padded_w m)
  done

let test_compose_xor3 () =
  let e, _ = Expr.parse "a ^ b ^ c" in
  let g = Compose.of_expr e in
  Alcotest.(check bool) "composed xor3" true (realizes_expr g e 3)

let random_expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof [ (int_range 0 3 >|= fun v -> Expr.Var v); (bool >|= fun b -> Expr.Const b) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        oneof
          [
            leaf;
            (self (depth - 1) >|= fun e -> Expr.Not e);
            (pair (self (depth - 1)) (self (depth - 1)) >|= fun (a, b) -> Expr.And (a, b));
            (pair (self (depth - 1)) (self (depth - 1)) >|= fun (a, b) -> Expr.Or (a, b));
            (pair (self (depth - 1)) (self (depth - 1)) >|= fun (a, b) -> Expr.Xor (a, b));
          ])
    4

let prop_compose_correct =
  QCheck2.Test.make ~name:"Compose.of_expr realizes the expression" ~count:300 random_expr_gen
    (fun e -> realizes_expr (Compose.of_expr e) e 4)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "lattice"
    [
      ( "grid",
        [
          Alcotest.test_case "of_strings" `Quick test_grid_of_strings;
          Alcotest.test_case "bad input" `Quick test_grid_bad_input;
          Alcotest.test_case "neighbors" `Quick test_grid_neighbors;
          Alcotest.test_case "on_pattern" `Quick test_grid_on_pattern;
          Alcotest.test_case "prime parsing" `Quick test_grid_prime_parsing;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "simple patterns" `Quick test_connectivity_simple;
          Alcotest.test_case "single row" `Quick test_connectivity_single_row;
          Alcotest.test_case "pattern table" `Quick test_pattern_table;
          Alcotest.test_case "eval assigned" `Quick test_eval_assigned;
          qc prop_bfs_equals_union_find;
        ] );
      ( "paths",
        [
          Alcotest.test_case "matches brute force" `Quick test_paths_match_brute_force;
          Alcotest.test_case "paths are chordless" `Quick test_paths_are_chordless;
          Alcotest.test_case "plates touched once" `Quick test_paths_touch_plates_once;
          Alcotest.test_case "distinct product sets" `Quick test_paths_distinct_sets;
          Alcotest.test_case "length histogram" `Quick test_length_histogram;
          Alcotest.test_case "edge cases" `Quick test_count_edge_cases;
        ] );
      ( "zdd",
        [
          Alcotest.test_case "matches enumeration to 7x7" `Quick test_zdd_matches_enum;
          Alcotest.test_case "histogram matches enumeration" `Quick
            test_zdd_histogram_matches_enum;
          Alcotest.test_case "structure of 4x4" `Quick test_zdd_structure;
          Alcotest.test_case "crossover boundary parity" `Quick test_crossover_boundary_parity;
        ] );
      ( "table1",
        [
          Alcotest.test_case "paper values" `Quick test_table1_paper_values;
          Alcotest.test_case "range check" `Quick test_table1_out_of_range;
          Alcotest.test_case "render" `Quick test_table1_render;
          Alcotest.test_case "extended diagonal constants" `Quick test_table1_extended_diagonal;
          Alcotest.test_case "extended 10x10 recompute" `Quick test_table1_extended_recompute_10;
          Alcotest.test_case "extended diagonal recompute" `Slow
            test_table1_extended_recompute_full;
          Alcotest.test_case "memo hammer, 4 domains" `Quick test_table1_memo_hammer;
          Alcotest.test_case "asymmetry 2x9 vs 9x2" `Quick test_table1_transpose_symmetry;
        ] );
      ( "lattice_function",
        [
          Alcotest.test_case "f3x3 products" `Quick test_f3x3_products;
          Alcotest.test_case "SOP = connectivity (generic 3x3)" `Quick
            test_of_generic_matches_connectivity;
          Alcotest.test_case "assigned XOR3" `Quick test_of_assigned_xor3;
          Alcotest.test_case "constants" `Quick test_of_assigned_constants;
          Alcotest.test_case "contradictory literals" `Quick test_of_assigned_contradiction;
          Alcotest.test_case "product strings 2x2" `Quick test_product_strings;
          qc prop_assigned_sop_matches_eval;
        ] );
      ( "compose",
        [
          Alcotest.test_case "primitives" `Quick test_compose_primitives;
          Alcotest.test_case "spacer necessity" `Quick test_compose_spacer_necessity;
          Alcotest.test_case "padding preserves function" `Quick test_compose_padding_preserves;
          Alcotest.test_case "xor3" `Quick test_compose_xor3;
          qc prop_compose_correct;
        ] );
    ]
