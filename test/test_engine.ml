(* Tests for the parallel batch-simulation engine: the Domain pool's
   index-merge determinism, the content-addressed cache and its key
   soundness, DC-op memoization, and seed-split RNG streams. *)

module Engine = Lattice_engine.Engine
module Pool = Lattice_engine.Pool
module Cache = Lattice_engine.Cache
module Key = Lattice_engine.Key
module Sp = Lattice_spice
module Mos = Lattice_mosfet
module Tt = Lattice_boolfn.Truthtable

(* --- pool ---------------------------------------------------------------- *)

let test_pool_parity () =
  (* the pool's merged output must equal Array.init at any domain count *)
  let f i = (i * i) + 7 in
  let expected = Array.init 33 f in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Alcotest.(check (array int))
        (Printf.sprintf "%d domains" domains)
        expected
        (Pool.map pool ~n:33 f))
    [ 1; 2; 4 ]

let test_pool_exception () =
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Alcotest.check_raises
        (Printf.sprintf "failure propagates (%d domains)" domains)
        (Failure "job 3 boom")
        (fun () ->
          ignore (Pool.map pool ~n:8 (fun i -> if i = 3 then failwith "job 3 boom" else i))))
    [ 1; 2; 4 ]

let test_pool_invalid () =
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

(* --- cache --------------------------------------------------------------- *)

let test_cache_counters () =
  let c = Cache.create ~capacity:8 () in
  Alcotest.(check (option int)) "miss on empty" None (Cache.find c ~key:"a");
  Cache.add c ~key:"a" 1;
  Alcotest.(check (option int)) "hit after add" (Some 1) (Cache.find c ~key:"a");
  Cache.add c ~key:"a" 99;
  Alcotest.(check (option int)) "first write wins" (Some 1) (Cache.find c ~key:"a");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "size" 1 s.Cache.size

let test_cache_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c ~key:"a" 1;
  Cache.add c ~key:"b" 2;
  Cache.add c ~key:"c" 3;
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "size stays at capacity" 2 s.Cache.size;
  (* FIFO: the oldest entry went *)
  Alcotest.(check (option int)) "oldest evicted" None (Cache.find c ~key:"a");
  Alcotest.(check (option int)) "newest kept" (Some 3) (Cache.find c ~key:"c")

(* --- cache keys ---------------------------------------------------------- *)

let build_netlist ?(config = Sp.Lattice_circuit.default_config) ?(m = 0) grid =
  let vdd = config.Sp.Lattice_circuit.vdd in
  let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
  (Sp.Lattice_circuit.build ~config grid ~stimulus).Sp.Lattice_circuit.netlist

let bump_vth eps = function
  | Mos.Model.L1 p -> Mos.Model.L1 { p with Mos.Level1.vth = p.Mos.Level1.vth +. eps }
  | Mos.Model.L3 p3 ->
    Mos.Model.L3
      {
        p3 with
        Mos.Level3.base =
          { p3.Mos.Level3.base with Mos.Level1.vth = p3.Mos.Level3.base.Mos.Level1.vth +. eps };
      }

let test_key_soundness () =
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  (* two independent builds of the same circuit: identical key *)
  let k1 = Key.dc_op (build_netlist grid) in
  let k2 = Key.dc_op (build_netlist grid) in
  Alcotest.(check string) "identical builds share a key" k1 k2;
  (* a different input state is a different circuit *)
  let k_m1 = Key.dc_op (build_netlist ~m:1 grid) in
  Alcotest.(check bool) "input state changes the key" false (String.equal k1 k_m1);
  (* a one-ulp-scale device-parameter change must change the key: the
     digest covers exact IEEE-754 bits, not a formatted rounding *)
  let config = Sp.Lattice_circuit.default_config in
  let types = config.Sp.Lattice_circuit.types in
  let perturbed =
    {
      config with
      Sp.Lattice_circuit.types =
        { types with Sp.Fts.type_a = bump_vth 1e-9 types.Sp.Fts.type_a };
    }
  in
  let k_eps = Key.dc_op (build_netlist ~config:perturbed grid) in
  Alcotest.(check bool) "1e-9 vth shift changes the key" false (String.equal k1 k_eps);
  (* an injected defect changes the key *)
  let defective =
    let stimulus _ = Sp.Source.Dc 0.0 in
    (Sp.Defects.build
       ~defects:[ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Stuck_open } ]
       grid ~stimulus)
      .Sp.Lattice_circuit.netlist
  in
  Alcotest.(check bool) "defect changes the key" false
    (String.equal k1 (Key.dc_op defective));
  (* same netlist, different solver options: distinct keys *)
  let opts =
    { Sp.Dcop.default_options with Sp.Dcop.abstol = 2.0 *. Sp.Dcop.default_options.Sp.Dcop.abstol }
  in
  let k_opts = Key.dc_op ~options:opts (build_netlist grid) in
  Alcotest.(check bool) "solver options change the key" false (String.equal k1 k_opts)

(* --- dc_op memoization ---------------------------------------------------- *)

let test_dc_op_memoized () =
  let e = Engine.create ~domains:1 () in
  let netlist = build_netlist Lattice_synthesis.Library.maj3_2x3 in
  let r1 = Engine.dc_op e netlist in
  let t1 = Engine.telemetry e in
  Alcotest.(check int) "one real solve" 1 t1.Engine.dc_solves;
  Alcotest.(check int) "one miss" 1 t1.Engine.cache.Cache.misses;
  Alcotest.(check bool) "newton iterations counted" true (t1.Engine.newton_total > 0);
  let r2 = Engine.dc_op e netlist in
  let t2 = Engine.telemetry e in
  Alcotest.(check int) "still one real solve" 1 t2.Engine.dc_solves;
  Alcotest.(check int) "second call is a hit" 1 t2.Engine.cache.Cache.hits;
  (match (r1, r2) with
  | Ok (x1, d1), Ok (x2, d2) ->
    Alcotest.(check (array (float 0.0))) "bit-identical solution" x1 x2;
    Alcotest.(check int) "diagnostics replayed verbatim" d1.Sp.Dcop.newton_iterations
      d2.Sp.Dcop.newton_iterations;
    (* the hit hands out a private copy: mutating it must not poison the
       cache *)
    x2.(0) <- 1234.5;
    (match Engine.dc_op e netlist with
    | Ok (x3, _) -> Alcotest.(check (float 0.0)) "cache entry unharmed" x1.(0) x3.(0)
    | Error _ -> Alcotest.fail "third solve failed")
  | _ -> Alcotest.fail "maj3 dc op should converge")

let test_reset_telemetry_keeps_cache () =
  (* reset_telemetry zeroes the counters but must not evict cached
     results: a key that hit before the reset still hits after it *)
  let e = Engine.create ~domains:1 () in
  let netlist = build_netlist Lattice_synthesis.Library.maj3_2x3 in
  (match Engine.dc_op e netlist with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "warm-up solve failed");
  ignore (Engine.dc_op e netlist);
  let t = Engine.telemetry e in
  Alcotest.(check int) "warm-up: one hit" 1 t.Engine.cache.Cache.hits;
  Engine.reset_telemetry e;
  let t0 = Engine.telemetry e in
  Alcotest.(check int) "hits zeroed" 0 t0.Engine.cache.Cache.hits;
  Alcotest.(check int) "misses zeroed" 0 t0.Engine.cache.Cache.misses;
  Alcotest.(check int) "dc_solves zeroed" 0 t0.Engine.dc_solves;
  (match Engine.dc_op e netlist with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "post-reset solve failed");
  let t1 = Engine.telemetry e in
  Alcotest.(check int) "entry survived the reset: hit, not miss" 1
    t1.Engine.cache.Cache.hits;
  Alcotest.(check int) "no new miss" 0 t1.Engine.cache.Cache.misses;
  Alcotest.(check int) "no re-solve" 0 t1.Engine.dc_solves

let test_engine_map_and_phases () =
  let e = Engine.create ~domains:2 () in
  let out = Engine.map e ~phase:"square" ~n:10 (fun i -> i * i) in
  Alcotest.(check (array int)) "map merges by index" (Array.init 10 (fun i -> i * i)) out;
  let t = Engine.telemetry e in
  Alcotest.(check int) "jobs counted" 10 t.Engine.jobs;
  Alcotest.(check bool) "phase recorded" true (List.mem_assoc "square" t.Engine.phases);
  Alcotest.(check bool) "summary renders" true
    (String.length (Engine.summary e) > 20);
  Engine.reset_telemetry e;
  let t = Engine.telemetry e in
  Alcotest.(check int) "jobs reset" 0 t.Engine.jobs;
  Alcotest.(check (list (pair string (float 0.0)))) "phases reset" [] t.Engine.phases

let test_default_engine_env () =
  (* Engine.create () respects FTL_DOMAINS (CI runs the suite at 1 and 4);
     whatever the count, results stay bit-identical to serial *)
  let e = Engine.create () in
  Alcotest.(check bool) "at least one domain" true (Engine.domains e >= 1);
  (match Sys.getenv_opt "FTL_DOMAINS" with
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> Alcotest.(check int) "FTL_DOMAINS honored" n (Engine.domains e)
    | _ -> ())
  | None -> ());
  let f i = float_of_int i /. 3.0 in
  Alcotest.(check (array (float 0.0))) "default engine parity" (Array.init 17 f)
    (Engine.map e ~n:17 f)

(* --- sample_rng ------------------------------------------------------------ *)

let test_sample_rng_streams () =
  let first seed index = Random.State.float (Engine.sample_rng ~seed ~index) 1.0 in
  (* pure in (seed, index) *)
  Alcotest.(check (float 0.0)) "reproducible" (first 42 7) (first 42 7);
  (* distinct indices give distinct streams *)
  let draws = Array.init 16 (fun i -> first 42 i) in
  let distinct =
    Array.for_all
      (fun x -> Array.length (Array.of_seq (Seq.filter (Float.equal x) (Array.to_seq draws))) = 1)
      draws
  in
  Alcotest.(check bool) "16 index streams all distinct" true distinct;
  (* distinct seeds give distinct streams *)
  Alcotest.(check bool) "seed matters" false (Float.equal (first 1 0) (first 2 0))

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "index-merge parity" `Quick test_pool_parity;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "invalid domain count" `Quick test_pool_invalid;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_cache_counters;
          Alcotest.test_case "FIFO eviction" `Quick test_cache_eviction;
        ] );
      ( "keys",
        [ Alcotest.test_case "content-key soundness" `Quick test_key_soundness ] );
      ( "engine",
        [
          Alcotest.test_case "dc_op memoization" `Quick test_dc_op_memoized;
          Alcotest.test_case "reset_telemetry keeps the cache warm" `Quick
            test_reset_telemetry_keeps_cache;
          Alcotest.test_case "map + phase telemetry" `Quick test_engine_map_and_phases;
          Alcotest.test_case "FTL_DOMAINS default" `Quick test_default_engine_env;
          Alcotest.test_case "seed-split rng streams" `Quick test_sample_rng_streams;
        ] );
    ]
