(* Tests for the SPICE-like circuit engine. *)

module Sp = Lattice_spice
module L1 = Lattice_mosfet.Level1

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

let nmos = { L1.kp = 2e-5; vth = 0.4; lambda = 0.02; w = 700e-9; l = 350e-9 }

(* --- Units ------------------------------------------------------------- *)

let test_units_parse () =
  check_close "500k" 1e-6 500e3 (Sp.Units.parse "500k");
  check_close "1f" 1e-21 1e-15 (Sp.Units.parse "1f");
  check_close "10n" 1e-14 10e-9 (Sp.Units.parse "10n");
  check_close "2.5u" 1e-12 2.5e-6 (Sp.Units.parse "2.5u");
  check_close "3meg" 1.0 3e6 (Sp.Units.parse "3MEG");
  check_close "plain" 1e-9 42.0 (Sp.Units.parse "42");
  check_close "negative" 1e-9 (-3e-3) (Sp.Units.parse "-3m");
  Alcotest.(check bool) "garbage rejected" true
    (match Sp.Units.parse "abc" with exception Invalid_argument _ -> true | _ -> false)

let test_units_format () =
  Alcotest.(check string) "500k" "500k" (Sp.Units.format 500e3);
  Alcotest.(check string) "1f" "1f" (Sp.Units.format 1e-15);
  Alcotest.(check string) "zero" "0" (Sp.Units.format 0.0);
  Alcotest.(check string) "10n" "10n" (Sp.Units.format 10e-9)

let test_units_roundtrip () =
  List.iter
    (fun x ->
      check_close (Printf.sprintf "roundtrip %g" x) (Float.abs x *. 1e-6) x
        (Sp.Units.parse (Sp.Units.format x)))
    [ 1.0; 1e-15; 2.2e-12; 500e3; 1.2; 3.3e6; -4.7e-9 ]

(* table-driven checks for the deck-facing SPICE value syntax: the
   m-vs-meg trap, bare units, exponents followed by scale letters *)
let test_units_parse_spice () =
  let cases =
    [
      ("1meg", Some 1e6);
      ("1m", Some 1e-3);  (* milli, NOT mega *)
      ("1MEG", Some 1e6);
      ("10pF", Some 10e-12);  (* trailing unit letters ignored *)
      ("2ns", Some 2e-9);
      ("2.5u", Some 2.5e-6);
      ("-3.3k", Some (-3.3e3));
      ("1e3k", Some 1e6);  (* exponent then scale letter *)
      ("4t", Some 4e12);
      ("7g", Some 7e9);
      ("100f", Some 100e-15);
      ("1mil", Some 25.4e-6);
      ("0.155", Some 0.155);
      ("1.5e-9", Some 1.5e-9);
      ("42V", Some 42.0);  (* bare unit, scale 1 *)
      ("", None);
      ("k", None);  (* no digits *)
      ("1.2.3", None);
      ("3m#", None);  (* junk after the suffix *)
      ("1e", Some 1.0);  (* no digit after 'e': the 'e' is a bare unit *)
    ]
  in
  List.iter
    (fun (s, expected) ->
      match (Sp.Units.parse_spice s, expected) with
      | Some got, Some want ->
        (* a 1-ulp slack: [mantissa *. scale] may differ from the decimal
           literal in the last bit *)
        check_close (Printf.sprintf "parse_spice %S" s) (Float.abs want *. 1e-15) want got
      | None, None -> ()
      | Some got, None -> Alcotest.failf "parse_spice %S: expected None, got %g" s got
      | None, Some want -> Alcotest.failf "parse_spice %S: expected %g, got None" s want)
    cases

let test_units_print_spice () =
  Alcotest.(check string) "1e6 is meg, not m" "1meg" (Sp.Units.print_spice 1e6);
  Alcotest.(check string) "1e-3 is milli" "1m" (Sp.Units.print_spice 1e-3);
  (* the double behind "10pF" prints back as "10p" (the literal 1e-11 is
     one ulp away from 10 *. 1e-12 and prints as "1e-11" instead) *)
  Alcotest.(check string) "10pF value" "10p"
    (Sp.Units.print_spice (Option.get (Sp.Units.parse_spice "10pF")));
  Alcotest.(check string) "2ns value" "2n" (Sp.Units.print_spice 2e-9);
  Alcotest.(check string) "zero" "0" (Sp.Units.print_spice 0.0);
  Alcotest.(check string) "500k" "500k" (Sp.Units.print_spice 5e5);
  Alcotest.(check string) "negative" "-4.7n"
    (Sp.Units.print_spice (Option.get (Sp.Units.parse_spice "-4.7n")));
  (* the decimal literal -4.7e-9 is one ulp from -4.7 *. 1e-9; its
     shortest exact spelling goes through the pico scale instead *)
  Alcotest.(check string) "negative literal" "-4700p" (Sp.Units.print_spice (-4.7e-9));
  (* print_spice must be bit-exact under parse_spice for arbitrary floats *)
  List.iter
    (fun x ->
      let s = Sp.Units.print_spice x in
      match Sp.Units.parse_spice s with
      | None -> Alcotest.failf "print_spice %h -> %S does not reparse" x s
      | Some y ->
        Alcotest.(check bool)
          (Printf.sprintf "bit-exact roundtrip %h via %S" x s)
          true
          (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)))
    [
      1.0; -1.0; 0.1; 1.2; 17.7e-6; 155e-3; 2.0000000000000003e-9; Float.pi;
      1e-15; 9.999999999999999e22; 5e5; 1.0000000000000002; -0.0; 3.141e-21;
    ]

(* --- Source ------------------------------------------------------------- *)

let test_source_dc () =
  check_close "dc" 1e-12 3.3 (Sp.Source.value (Sp.Source.Dc 3.3) 1.0)

let test_source_pulse () =
  let p =
    Sp.Source.Pulse
      { v1 = 0.0; v2 = 1.0; delay = 10e-9; rise = 1e-9; fall = 1e-9; width = 8e-9; period = 20e-9 }
  in
  check_close "before delay" 1e-12 0.0 (Sp.Source.value p 5e-9);
  check_close "mid rise" 1e-6 0.5 (Sp.Source.value p 10.5e-9);
  check_close "high" 1e-12 1.0 (Sp.Source.value p 15e-9);
  check_close "mid fall" 1e-6 0.5 (Sp.Source.value p 19.5e-9);
  check_close "next period high" 1e-12 1.0 (Sp.Source.value p 35e-9)

let test_source_square_starts_low () =
  let w = Sp.Source.square_wave ~low:0.0 ~high:1.2 ~period:100e-9 () in
  check_close "t=0" 1e-12 0.0 (Sp.Source.value w 0.0);
  check_close "first half low" 1e-12 0.0 (Sp.Source.value w 25e-9);
  check_close "second half high" 1e-12 1.2 (Sp.Source.value w 75e-9);
  check_close "third half low" 1e-12 0.0 (Sp.Source.value w 125e-9)

let test_source_bit_clock_counter () =
  (* driving bits 0..2 walks through the 8 combinations in order *)
  let bit_time = 10e-9 in
  for slot = 0 to 7 do
    for bit = 0 to 2 do
      let w = Sp.Source.bit_clock ~vdd:1.0 ~bit_time ~bit_index:bit () in
      let t = (float_of_int slot +. 0.5) *. bit_time in
      let expect = if (slot lsr bit) land 1 = 1 then 1.0 else 0.0 in
      check_close (Printf.sprintf "slot %d bit %d" slot bit) 1e-9 expect (Sp.Source.value w t)
    done
  done

let test_source_pwl () =
  let w = Sp.Source.Pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) ] in
  check_close "interp" 1e-12 1.0 (Sp.Source.value w 0.5);
  check_close "plateau" 1e-12 2.0 (Sp.Source.value w 2.0);
  check_close "tail clamp" 1e-12 0.0 (Sp.Source.value w 10.0);
  check_close "head clamp" 1e-12 0.0 (Sp.Source.value w (-1.0))

let test_source_complement () =
  let w = Sp.Source.square_wave ~low:0.0 ~high:1.2 ~period:100e-9 () in
  let wb = Sp.Lattice_circuit.complement ~vdd:1.2 w in
  check_close "complement of low" 1e-12 1.2 (Sp.Source.value wb 25e-9);
  check_close "complement of high" 1e-12 0.0 (Sp.Source.value wb 75e-9)

(* --- Netlist ------------------------------------------------------------- *)

let test_netlist_nodes () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" in
  let a' = Sp.Netlist.node ckt "a" in
  Alcotest.(check int) "interned" a a';
  Alcotest.(check int) "ground is 0" 0 (Sp.Netlist.node ckt "0");
  Alcotest.(check int) "gnd alias" 0 (Sp.Netlist.node ckt "gnd");
  Alcotest.(check string) "name back" "a" (Sp.Netlist.node_name ckt a);
  let f1 = Sp.Netlist.fresh_node ckt "x" in
  let f2 = Sp.Netlist.fresh_node ckt "x" in
  Alcotest.(check bool) "fresh distinct" true (f1 <> f2)

let test_netlist_counts () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" and b = Sp.Netlist.node ckt "b" in
  Sp.Netlist.resistor ckt "R1" a b 1e3;
  Sp.Netlist.capacitor ckt "C1" b Sp.Netlist.ground 1e-12;
  Sp.Netlist.vsource ckt "V1" a Sp.Netlist.ground (Sp.Source.Dc 1.0);
  Sp.Netlist.mosfet ckt "M1" ~drain:b ~gate:a ~source:Sp.Netlist.ground nmos;
  Alcotest.(check int) "nodes" 2 (Sp.Netlist.num_nodes ckt);
  Alcotest.(check int) "vsources" 1 (Sp.Netlist.num_vsources ckt);
  Alcotest.(check int) "unknowns" 3 (Sp.Netlist.unknowns ckt);
  Alcotest.(check int) "elements" 4 (List.length (Sp.Netlist.elements ckt))

let test_netlist_rejects_bad_values () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" in
  Alcotest.(check bool) "zero resistance" true
    (match Sp.Netlist.resistor ckt "R" a Sp.Netlist.ground 0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative capacitance" true
    (match Sp.Netlist.capacitor ckt "C" a Sp.Netlist.ground (-1e-15) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_netlist_spice_export () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" and out = Sp.Netlist.node ckt "out" in
  Sp.Netlist.vsource ckt "DD" a Sp.Netlist.ground (Sp.Source.Dc 1.2);
  Sp.Netlist.resistor ckt "L" a out 500e3;
  Sp.Netlist.capacitor ckt "O" out Sp.Netlist.ground 10e-15;
  Sp.Netlist.mosfet ckt "1" ~drain:out ~gate:a ~source:Sp.Netlist.ground nmos;
  Sp.Netlist.mosfet_model ckt "2" ~drain:out ~gate:a ~source:Sp.Netlist.ground
    (Lattice_mosfet.Model.L3 (Lattice_mosfet.Level3.of_level1 nmos));
  let deck = Sp.Netlist.to_spice_string ckt ~title:"test deck" in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "deck contains %S" frag) true (contains deck frag))
    [
      "* test deck"; "VDD a 0 DC 1.2"; "RL a out 500k"; "CO out 0 10f"; "M1 out a 0 0 NMOD";
      "LEVEL=1"; "LEVEL=3"; "THETA"; ".END";
    ]

let test_spice_export_of_lattice () =
  (* the full XOR3 circuit exports without raising and mentions all 54 FETs *)
  let lc =
    Sp.Lattice_circuit.build Lattice_synthesis.Library.xor3_3x3
      ~stimulus:(fun _ -> Sp.Source.Dc 0.0)
  in
  let deck = Sp.Netlist.to_spice_string lc.Sp.Lattice_circuit.netlist ~title:"xor3" in
  let count_lines prefix =
    List.length
      (List.filter
         (fun l -> String.length l > 0 && String.get l 0 = prefix)
         (String.split_on_char '\n' deck))
  in
  Alcotest.(check int) "54 M-cards" 54 (count_lines 'M');
  Alcotest.(check bool) "one model card" true (contains deck ".MODEL")

(* --- Dcop ---------------------------------------------------------------- *)

let test_dcop_divider () =
  let ckt = Sp.Netlist.create () in
  let top = Sp.Netlist.node ckt "top" and mid = Sp.Netlist.node ckt "mid" in
  Sp.Netlist.vsource ckt "V" top Sp.Netlist.ground (Sp.Source.Dc 10.0);
  Sp.Netlist.resistor ckt "R1" top mid 1e3;
  Sp.Netlist.resistor ckt "R2" mid Sp.Netlist.ground 3e3;
  let x = Sp.Dcop.solve ckt in
  check_close "mid" 1e-9 7.5 (Sp.Mna.voltage x mid)

let test_dcop_branch_current () =
  let ckt = Sp.Netlist.create () in
  let top = Sp.Netlist.node ckt "top" in
  Sp.Netlist.vsource ckt "V" top Sp.Netlist.ground (Sp.Source.Dc 10.0);
  Sp.Netlist.resistor ckt "R" top Sp.Netlist.ground 2e3;
  let x = Sp.Dcop.solve ckt in
  (* positive branch current flows into the + terminal of the source *)
  check_close "branch current" 1e-12 (-5e-3) x.(Sp.Netlist.vsource_row ckt 0)

let test_dcop_isource () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" in
  Sp.Netlist.isource ckt "I" Sp.Netlist.ground a (Sp.Source.Dc 1e-3);
  Sp.Netlist.resistor ckt "R" a Sp.Netlist.ground 4e3;
  let x = Sp.Dcop.solve ckt in
  check_close "1mA * 4k" 1e-9 4.0 (Sp.Mna.voltage x a)

let test_dcop_diode_connected_fet () =
  (* diode-connected NMOS with a resistor from a 3V rail; verify against
     the analytic operating point *)
  let ckt = Sp.Netlist.create () in
  let vdd = Sp.Netlist.node ckt "vdd" and d = Sp.Netlist.node ckt "d" in
  Sp.Netlist.vsource ckt "V" vdd Sp.Netlist.ground (Sp.Source.Dc 3.0);
  Sp.Netlist.resistor ckt "R" vdd d 100e3;
  let p = { nmos with L1.lambda = 0.0 } in
  Sp.Netlist.mosfet ckt "M" ~drain:d ~gate:d ~source:Sp.Netlist.ground p;
  let x = Sp.Dcop.solve ckt in
  let v = Sp.Mna.voltage x d in
  (* diode-connected => saturation: (3 - v)/R = beta/2 (v - vth)^2 *)
  let beta = L1.beta p in
  let residual = ((3.0 -. v) /. 100e3) -. (0.5 *. beta *. ((v -. p.L1.vth) ** 2.0)) in
  check_close "KCL at drain" 1e-9 0.0 residual;
  Alcotest.(check bool) "above vth" true (v > p.L1.vth)

let test_dcop_inverter_transfer () =
  (* resistor-load inverter: output near VDD at low input, near 0 at high *)
  let run vin =
    let ckt = Sp.Netlist.create () in
    let vdd = Sp.Netlist.node ckt "vdd" and g = Sp.Netlist.node ckt "g" and out = Sp.Netlist.node ckt "out" in
    Sp.Netlist.vsource ckt "VDD" vdd Sp.Netlist.ground (Sp.Source.Dc 1.2);
    Sp.Netlist.vsource ckt "VG" g Sp.Netlist.ground (Sp.Source.Dc vin);
    Sp.Netlist.resistor ckt "RL" vdd out 500e3;
    Sp.Netlist.mosfet ckt "M" ~drain:out ~gate:g ~source:Sp.Netlist.ground nmos;
    let x = Sp.Dcop.solve ckt in
    Sp.Mna.voltage x out
  in
  Alcotest.(check bool) "low in, high out" true (run 0.0 > 1.19);
  Alcotest.(check bool) "high in, low out" true (run 1.2 < 0.2);
  Alcotest.(check bool) "monotone transfer" true (run 0.6 > run 0.9)

let test_dcop_floating_through_fets () =
  (* chain with internal nodes connected only via FETs: gmin keeps the
     system solvable even with every gate off *)
  let ckt = Sp.Netlist.create () in
  let top = Sp.Netlist.node ckt "top" and mid = Sp.Netlist.node ckt "mid" in
  Sp.Netlist.vsource ckt "V" top Sp.Netlist.ground (Sp.Source.Dc 1.0);
  Sp.Netlist.mosfet ckt "M1" ~drain:top ~gate:Sp.Netlist.ground ~source:mid nmos;
  Sp.Netlist.mosfet ckt "M2" ~drain:mid ~gate:Sp.Netlist.ground ~source:Sp.Netlist.ground nmos;
  let x = Sp.Dcop.solve ckt in
  let v = Sp.Mna.voltage x mid in
  Alcotest.(check bool) "mid between rails" true (v >= -1e-6 && v <= 1.0 +. 1e-6)

(* --- Transient -------------------------------------------------------------- *)

let rc_circuit () =
  (* series RC driven by a 1 V step (via pulse with tiny rise) *)
  let ckt = Sp.Netlist.create () in
  let inn = Sp.Netlist.node ckt "in" and out = Sp.Netlist.node ckt "out" in
  Sp.Netlist.vsource ckt "V" inn Sp.Netlist.ground
    (Sp.Source.Pulse
       { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 1e-12; fall = 1e-12; width = 1.0; period = 2.0 });
  Sp.Netlist.resistor ckt "R" inn out 1e3;
  Sp.Netlist.capacitor ckt "C" out Sp.Netlist.ground 1e-9;
  ckt

let test_transient_rc_charge () =
  (* tau = 1 us; compare V(out) with the analytic exponential *)
  let ckt = rc_circuit () in
  let r = Sp.Transient.run ckt ~h:20e-9 ~t_stop:5e-6 ~record:[ "out" ] () in
  let out = Sp.Transient.signal r "out" in
  let tau = 1e-6 in
  let worst = ref 0.0 in
  Array.iteri
    (fun i t ->
      let analytic = 1.0 -. exp (-.t /. tau) in
      worst := Float.max !worst (Float.abs (out.(i) -. analytic)))
    r.Sp.Transient.times;
  Alcotest.(check bool) (Printf.sprintf "max error %.2g < 2%%" !worst) true (!worst < 0.02)

let test_transient_trap_beats_be () =
  (* the trapezoidal rule is second order: with the same step it must beat
     backward Euler on the RC charge curve (the DESIGN.md ablation) *)
  let error integrator =
    let ckt = rc_circuit () in
    let options = { Sp.Transient.default_options with Sp.Transient.integrator } in
    let r = Sp.Transient.run ~options ckt ~h:100e-9 ~t_stop:3e-6 ~record:[ "out" ] () in
    let out = Sp.Transient.signal r "out" in
    let acc = ref 0.0 in
    Array.iteri
      (fun i t -> acc := Float.max !acc (Float.abs (out.(i) -. (1.0 -. exp (-.t /. 1e-6)))))
      r.Sp.Transient.times;
    !acc
  in
  let e_be = error Sp.Transient.Backward_euler in
  let e_trap = error Sp.Transient.Trapezoidal in
  Alcotest.(check bool)
    (Printf.sprintf "trap %.3g < BE %.3g" e_trap e_be)
    true (e_trap < e_be)

let test_transient_records_input () =
  let ckt = rc_circuit () in
  let r = Sp.Transient.run ckt ~h:50e-9 ~t_stop:1e-6 ~record:[ "in"; "out" ] () in
  let vin = Sp.Transient.signal r "in" in
  check_close "input recorded" 1e-9 1.0 vin.(Array.length vin - 1);
  Alcotest.(check bool) "unknown signal raises with names" true
    (match Sp.Transient.signal r "nope" with
    | exception Invalid_argument msg ->
      contains msg "nope" && contains msg "in" && contains msg "out"
    | _ -> false)

let test_transient_conserves_dc () =
  (* a circuit already at its operating point stays there *)
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" in
  Sp.Netlist.vsource ckt "V" a Sp.Netlist.ground (Sp.Source.Dc 2.0);
  Sp.Netlist.resistor ckt "R" a Sp.Netlist.ground 1e3;
  let r = Sp.Transient.run ckt ~h:1e-9 ~t_stop:50e-9 ~record:[ "a" ] () in
  let va = Sp.Transient.signal r "a" in
  Array.iter (fun v -> check_close "steady" 1e-9 2.0 v) va

(* --- Measure ------------------------------------------------------------- *)

let test_measure_edges () =
  (* synthetic trapezoid: rise 10 ns, flat, fall 20 ns *)
  let times = Array.init 101 (fun i -> float_of_int i *. 1e-9) in
  let values =
    Array.map
      (fun t ->
        let tn = t /. 1e-9 in
        if tn <= 10.0 then tn /. 10.0
        else if tn <= 60.0 then 1.0
        else if tn <= 80.0 then 1.0 -. ((tn -. 60.0) /. 20.0)
        else 0.0)
      times
  in
  (match Sp.Measure.rise_time times values ~low:0.0 ~high:1.0 with
  | Some t -> check_close "rise = 80% of 10ns" 1e-10 8e-9 t
  | None -> Alcotest.fail "no rise");
  match Sp.Measure.fall_time times values ~low:0.0 ~high:1.0 with
  | Some t -> check_close "fall = 80% of 20ns" 1e-10 16e-9 t
  | None -> Alcotest.fail "no fall"

let test_measure_levels () =
  let times = Array.init 100 (fun i -> float_of_int i) in
  let values = Array.init 100 (fun i -> if i mod 2 = 0 then 0.1 else 0.9) in
  let low, high = Sp.Measure.steady_levels times values ~settle:0.0 in
  check_close "low" 1e-9 0.1 low;
  check_close "high" 1e-9 0.9 high

let test_measure_plot () =
  let times = Array.init 10 (fun i -> float_of_int i) in
  let values = Array.map (fun t -> sin t) times in
  let s = Sp.Measure.ascii_plot ~width:40 ~height:8 ~label:"sine" times values in
  Alcotest.(check bool) "plot non-empty" true (String.length s > 100)

let test_measure_no_crossing () =
  let times = Array.init 10 (fun i -> float_of_int i) in
  let flat = Array.make 10 0.5 in
  Alcotest.(check bool) "flat signal has no rise" true
    (Sp.Measure.rise_time times flat ~low:0.0 ~high:1.0 = None);
  Alcotest.(check bool) "flat signal has no fall" true
    (Sp.Measure.fall_time times flat ~low:0.0 ~high:1.0 = None)

let test_measure_boundary_samples () =
  (* thresholds met exactly at the first and last samples still count as
     crossings *)
  let times = [| 0.0; 1.0 |] in
  (match Sp.Measure.rise_time times [| 0.1; 0.9 |] ~low:0.0 ~high:1.0 with
  | Some t -> check_close "edge spans the whole record" 1e-12 1.0 t
  | None -> Alcotest.fail "boundary-sample rise missed");
  match Sp.Measure.fall_time times [| 0.9; 0.1 |] ~low:0.0 ~high:1.0 with
  | Some t -> check_close "falling edge symmetric" 1e-12 1.0 t
  | None -> Alcotest.fail "boundary-sample fall missed"

let test_measure_picks_clean_edge () =
  (* bouncy signal: only the final 10% crossing starts a clean edge, the
     earlier ones are interrupted by re-crossings *)
  let times = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let values = [| 0.0; 1.0; 0.0; 1.0; 2.0 |] in
  match Sp.Measure.rise_time times values ~low:0.0 ~high:2.0 with
  | Some t -> check_close "measures the last monotone edge" 1e-9 1.6 t
  | None -> Alcotest.fail "clean edge not found"

let test_measure_rejects_bad_span () =
  let times = [| 0.0; 1.0 |] and values = [| 0.0; 1.0 |] in
  Alcotest.check_raises "rise_time validates span"
    (Invalid_argument "Measure.rise_time: high must exceed low") (fun () ->
      ignore (Sp.Measure.rise_time times values ~low:1.0 ~high:1.0));
  Alcotest.check_raises "fall_time validates span"
    (Invalid_argument "Measure.fall_time: high must exceed low") (fun () ->
      ignore (Sp.Measure.fall_time times values ~low:2.0 ~high:1.0))

(* --- Ac --------------------------------------------------------------------- *)

let rc_lowpass () =
  let ckt = Sp.Netlist.create () in
  let inn = Sp.Netlist.node ckt "in" and out = Sp.Netlist.node ckt "out" in
  Sp.Netlist.vsource ckt "VIN" inn Sp.Netlist.ground (Sp.Source.Dc 0.0);
  Sp.Netlist.resistor ckt "R" inn out 1e3;
  Sp.Netlist.capacitor ckt "C" out Sp.Netlist.ground 1e-9;
  ckt

let test_ac_rc_corner () =
  let r =
    Sp.Ac.sweep (rc_lowpass ()) ~source:"VIN" ~output:"out" ~f_start:1e3 ~f_stop:1e8
      ~points_per_decade:20
  in
  check_close "dc gain 1" 1e-3 1.0 r.Sp.Ac.dc_gain;
  match Sp.Ac.f_3db r with
  | Some f ->
    let expect = 1.0 /. (2.0 *. Float.pi *. 1e3 *. 1e-9) in
    Alcotest.(check bool)
      (Printf.sprintf "f3db %.4g ~ %.4g" f expect)
      true
      (Float.abs (f -. expect) /. expect < 0.02);
    check_close "phase -45 deg at corner" 1.0 (-45.0) (Sp.Ac.phase_at r f)
  | None -> Alcotest.fail "no corner found"

let test_ac_rolloff () =
  (* single pole: one decade above the corner the gain is ~ -20 dB/dec *)
  let r =
    Sp.Ac.sweep (rc_lowpass ()) ~source:"VIN" ~output:"out" ~f_start:1e3 ~f_stop:1e8
      ~points_per_decade:20
  in
  let g1 = Sp.Ac.magnitude_at r 1.59e6 and g2 = Sp.Ac.magnitude_at r 1.59e7 in
  Alcotest.(check bool)
    (Printf.sprintf "rolloff ratio %.2f ~ 10" (g1 /. g2))
    true
    (g1 /. g2 > 8.0 && g1 /. g2 < 12.0)

let test_ac_errors () =
  Alcotest.(check bool) "unknown source" true
    (match
       Sp.Ac.sweep (rc_lowpass ()) ~source:"NOPE" ~output:"out" ~f_start:1e3 ~f_stop:1e6
         ~points_per_decade:5
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad range" true
    (match
       Sp.Ac.sweep (rc_lowpass ()) ~source:"VIN" ~output:"out" ~f_start:1e6 ~f_stop:1e3
         ~points_per_decade:5
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ac_divider_flat () =
  (* purely resistive circuits are frequency-flat *)
  let ckt = Sp.Netlist.create () in
  let inn = Sp.Netlist.node ckt "in" and out = Sp.Netlist.node ckt "out" in
  Sp.Netlist.vsource ckt "VIN" inn Sp.Netlist.ground (Sp.Source.Dc 1.0);
  Sp.Netlist.resistor ckt "R1" inn out 1e3;
  Sp.Netlist.resistor ckt "R2" out Sp.Netlist.ground 3e3;
  let r =
    Sp.Ac.sweep ckt ~source:"VIN" ~output:"out" ~f_start:1e3 ~f_stop:1e9 ~points_per_decade:5
  in
  List.iter (fun p -> check_close "flat 0.75" 1e-9 0.75 p.Sp.Ac.magnitude) r.Sp.Ac.points

let test_measure_integral () =
  let times = [| 0.0; 1.0; 2.0; 3.0 |] in
  check_close "constant" 1e-12 6.0 (Sp.Measure.integral times [| 2.0; 2.0; 2.0; 2.0 |]);
  check_close "ramp" 1e-12 4.5 (Sp.Measure.integral times [| 0.0; 1.0; 2.0; 3.0 |])

let test_energy_from_supply () =
  (* 2 V across 1 kOhm for 20 ns: E = V^2/R * t = 80 pJ *)
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" in
  Sp.Netlist.vsource ckt "V1" a Sp.Netlist.ground (Sp.Source.Dc 2.0);
  Sp.Netlist.resistor ckt "R" a Sp.Netlist.ground 1e3;
  let r = Sp.Transient.run ckt ~h:1e-9 ~t_stop:20e-9 ~record:[] ~record_currents:[ "V1" ] () in
  let e = Sp.Measure.energy_from_supply ~vdd:2.0 r.Sp.Transient.times (Sp.Transient.branch_current r "V1") in
  check_close "80 pJ" 1e-15 80e-12 e

(* --- Fts ------------------------------------------------------------------ *)

let switch_resistance gate_v =
  (* measure the N-S resistance of a single switch *)
  let ckt = Sp.Netlist.create () in
  let n = Sp.Netlist.node ckt "n" and g = Sp.Netlist.node ckt "g" in
  Sp.Netlist.vsource ckt "VN" n Sp.Netlist.ground (Sp.Source.Dc 0.1) |> ignore;
  Sp.Netlist.vsource ckt "VG" g Sp.Netlist.ground (Sp.Source.Dc gate_v) |> ignore;
  Sp.Fts.instantiate ckt ~name:"X" ~north:n
    ~east:(Sp.Netlist.node ckt "e")
    ~south:Sp.Netlist.ground
    ~west:(Sp.Netlist.node ckt "w")
    ~gate:g Sp.Fts.default_types;
  let x = Sp.Dcop.solve ckt in
  let i = -.x.(Sp.Netlist.vsource_row ckt 0) in
  0.1 /. i

let test_fts_switching () =
  let r_on = switch_resistance 1.2 in
  let r_off = switch_resistance 0.0 in
  Alcotest.(check bool) (Printf.sprintf "on %.3g << off %.3g" r_on r_off) true
    (r_off > 1e4 *. r_on);
  Alcotest.(check bool) "on resistance is tens of kOhm" true (r_on > 1e3 && r_on < 1e6)

let test_fts_element_count () =
  let ckt = Sp.Netlist.create () in
  Sp.Fts.instantiate ckt ~name:"X"
    ~north:(Sp.Netlist.node ckt "n")
    ~east:(Sp.Netlist.node ckt "e")
    ~south:(Sp.Netlist.node ckt "s")
    ~west:(Sp.Netlist.node ckt "w")
    ~gate:(Sp.Netlist.node ckt "g")
    Sp.Fts.default_types;
  let fets, caps =
    List.fold_left
      (fun (m, c) e ->
        match e with
        | Sp.Netlist.Mosfet _ -> (m + 1, c)
        | Sp.Netlist.Capacitor _ -> (m, c + 1)
        | Sp.Netlist.Resistor _ | Sp.Netlist.Vsource _ | Sp.Netlist.Isource _ -> (m, c))
      (0, 0) (Sp.Netlist.elements ckt)
  in
  Alcotest.(check int) "six transistors" 6 fets;
  Alcotest.(check int) "four terminal caps" 4 caps

let test_fts_no_caps_option () =
  let ckt = Sp.Netlist.create () in
  Sp.Fts.instantiate ckt ~name:"X"
    ~north:(Sp.Netlist.node ckt "n")
    ~east:(Sp.Netlist.node ckt "e")
    ~south:(Sp.Netlist.node ckt "s")
    ~west:(Sp.Netlist.node ckt "w")
    ~gate:(Sp.Netlist.node ckt "g")
    ~terminal_cap:0.0 Sp.Fts.default_types;
  Alcotest.(check int) "no caps" 6 (List.length (Sp.Netlist.elements ckt))

let test_fts_terminal_symmetry () =
  (* conduct N->S and W->E: same resistance by symmetry of the 6-FET model *)
  let resistance ~from_t ~to_t =
    let ckt = Sp.Netlist.create () in
    let drive = Sp.Netlist.node ckt "drive" and g = Sp.Netlist.node ckt "g" in
    Sp.Netlist.vsource ckt "VD" drive Sp.Netlist.ground (Sp.Source.Dc 0.1);
    Sp.Netlist.vsource ckt "VG" g Sp.Netlist.ground (Sp.Source.Dc 1.2);
    let nodes = Array.init 4 (fun i ->
        if i = from_t then drive
        else if i = to_t then Sp.Netlist.ground
        else Sp.Netlist.node ckt (Printf.sprintf "f%d" i))
    in
    Sp.Fts.instantiate ckt ~name:"X" ~north:nodes.(0) ~east:nodes.(1) ~south:nodes.(2)
      ~west:nodes.(3) ~gate:g Sp.Fts.default_types;
    let x = Sp.Dcop.solve ckt in
    0.1 /. -.x.(Sp.Netlist.vsource_row ckt 0)
  in
  let r_ns = resistance ~from_t:0 ~to_t:2 in
  let r_we = resistance ~from_t:3 ~to_t:1 in
  check_close "N-S = W-E" (r_ns *. 1e-6) r_ns r_we;
  let r_ne = resistance ~from_t:0 ~to_t:1 in
  let r_sw = resistance ~from_t:2 ~to_t:3 in
  check_close "N-E = S-W" (r_ne *. 1e-6) r_ne r_sw

(* --- Lattice_circuit -------------------------------------------------------- *)

let test_lattice_circuit_xor3_dc () =
  (* every input combination at DC: output = NOT XOR3 *)
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  for m = 0 to 7 do
    let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0) in
    let lc = Sp.Lattice_circuit.build grid ~stimulus in
    let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
    let out = Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out" in
    let v = Sp.Mna.voltage x out in
    let xor3 = (m land 1) lxor ((m lsr 1) land 1) lxor ((m lsr 2) land 1) = 1 in
    if xor3 then
      Alcotest.(check bool) (Printf.sprintf "combo %d low" m) true (v < 0.3)
    else Alcotest.(check bool) (Printf.sprintf "combo %d high" m) true (v > 1.0)
  done

let test_lattice_circuit_structure () =
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  let lc = Sp.Lattice_circuit.build grid ~stimulus:(fun _ -> Sp.Source.Dc 0.0) in
  let ckt = lc.Sp.Lattice_circuit.netlist in
  (* 9 switches x 6 FETs *)
  let fets =
    List.length
      (List.filter
         (function Sp.Netlist.Mosfet _ -> true | _ -> false)
         (Sp.Netlist.elements ckt))
  in
  Alcotest.(check int) "54 transistors" 54 fets;
  Alcotest.(check int) "3 inputs" 3 (Array.length lc.Sp.Lattice_circuit.input_nodes)

let test_lattice_circuit_const_grid () =
  (* an always-on 1x1 lattice pulls the output low; always-off stays high *)
  let low_grid, _ = Lattice_core.Grid.of_strings [ [ "1" ] ] in
  let lc = Sp.Lattice_circuit.build low_grid ~stimulus:(fun _ -> Sp.Source.Dc 0.0) in
  let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
  let v = Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out") in
  Alcotest.(check bool) "const 1 pulls low" true (v < 0.3);
  let high_grid, _ = Lattice_core.Grid.of_strings [ [ "0" ] ] in
  let lc = Sp.Lattice_circuit.build high_grid ~stimulus:(fun _ -> Sp.Source.Dc 0.0) in
  let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
  let v = Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out") in
  Alcotest.(check bool) "const 0 stays high" true (v > 1.1)

let test_lattice_circuit_maj3 () =
  (* second workload: majority gate *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  for m = 0 to 7 do
    let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0) in
    let lc = Sp.Lattice_circuit.build grid ~stimulus in
    let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
    let v = Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out") in
    let ones = (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) in
    if ones >= 2 then Alcotest.(check bool) (Printf.sprintf "maj %d low" m) true (v < 0.3)
    else Alcotest.(check bool) (Printf.sprintf "maj %d high" m) true (v > 1.0)
  done

let test_lattice_circuit_complementary_dc () =
  (* pull-up XNOR3 + pull-down XOR3: output = XNOR3, strong low, degraded
     high (n-type pass), and negligible supply current in every state *)
  for m = 0 to 7 do
    let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0) in
    let lc =
      Sp.Lattice_circuit.build_complementary ~pull_up:Lattice_synthesis.Library.xnor3_3x3
        ~pull_down:Lattice_synthesis.Library.xor3_3x3 ~stimulus ()
    in
    let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
    let v = Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out") in
    let xor3 = (m land 1) lxor ((m lsr 1) land 1) lxor ((m lsr 2) land 1) = 1 in
    if xor3 then Alcotest.(check bool) (Printf.sprintf "combo %d low" m) true (v < 0.1)
    else
      Alcotest.(check bool)
        (Printf.sprintf "combo %d high (degraded)" m)
        true (v > 0.9 && v <= 1.2);
    (* static supply current: leakage only *)
    (match Sp.Netlist.vsource_index lc.Sp.Lattice_circuit.netlist "VDD" with
    | Some idx ->
      let i = Float.abs x.(Sp.Netlist.vsource_row lc.Sp.Lattice_circuit.netlist idx) in
      Alcotest.(check bool) (Printf.sprintf "combo %d leakage only" m) true (i < 1e-7)
    | None -> Alcotest.fail "VDD source missing")
  done

let test_transient_current_recording () =
  (* supply current of a resistor across a DC source: constant V/R *)
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" in
  Sp.Netlist.vsource ckt "V1" a Sp.Netlist.ground (Sp.Source.Dc 2.0);
  Sp.Netlist.resistor ckt "R" a Sp.Netlist.ground 1e3;
  let r = Sp.Transient.run ckt ~h:1e-9 ~t_stop:20e-9 ~record:[ "a" ] ~record_currents:[ "V1" ] () in
  let i = Sp.Transient.branch_current r "V1" in
  Array.iter (fun x -> check_close "constant -2mA" 1e-9 (-2e-3) x) i;
  Alcotest.(check bool) "unknown source rejected" true
    (match
       Sp.Transient.run ckt ~h:1e-9 ~t_stop:2e-9 ~record:[] ~record_currents:[ "nope" ] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fts_gate_cap () =
  let count_caps ckt =
    List.length
      (List.filter (function Sp.Netlist.Capacitor _ -> true | _ -> false) (Sp.Netlist.elements ckt))
  in
  let build gate_cap =
    let ckt = Sp.Netlist.create () in
    Sp.Fts.instantiate ckt ~name:"X"
      ~north:(Sp.Netlist.node ckt "n")
      ~east:(Sp.Netlist.node ckt "e")
      ~south:(Sp.Netlist.node ckt "s")
      ~west:(Sp.Netlist.node ckt "w")
      ~gate:(Sp.Netlist.node ckt "g")
      ~gate_cap Sp.Fts.default_types;
    ckt
  in
  Alcotest.(check int) "no gate caps by default" 4 (count_caps (build 0.0));
  Alcotest.(check int) "four gate caps" 8 (count_caps (build 4e-15))

let test_gate_cap_slows_input_edge () =
  (* with gate capacitance, the XOR3 transient still passes functionally *)
  let config =
    { Sp.Lattice_circuit.default_config with Sp.Lattice_circuit.gate_cap = 4e-15 }
  in
  let lc =
    Sp.Lattice_circuit.build ~config Lattice_synthesis.Library.xor3_3x3
      ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:50e-9)
  in
  let r = Sp.Transient.run lc.Sp.Lattice_circuit.netlist ~h:1e-9 ~t_stop:400e-9 ~record:[ "out" ] () in
  let out = Sp.Transient.signal r "out" in
  let ok = ref true in
  for k = 0 to 7 do
    let t = (float_of_int k +. 0.95) *. 50e-9 in
    let v = Sp.Measure.value_at r.Sp.Transient.times out t in
    let parity = (k land 1) lxor ((k lsr 1) land 1) lxor ((k lsr 2) land 1) in
    if not (Bool.equal (v > 0.6) (parity = 0)) then ok := false
  done;
  Alcotest.(check bool) "functional with gate caps" true !ok

(* end-to-end property: for random small assigned lattices and every input
   combination, the transistor circuit's DC output is low exactly when the
   abstract lattice model says the lattice conducts *)
let prop_circuit_matches_connectivity =
  let grid_gen =
    let open QCheck2.Gen in
    let entry_gen =
      frequency
        [
          (6, (let* v = int_range 0 2 and* p = bool in
               return (Lattice_core.Grid.Lit (v, p))));
          (1, return (Lattice_core.Grid.Const true));
          (1, return (Lattice_core.Grid.Const false));
        ]
    in
    let* rows = int_range 1 3 and* cols = int_range 1 3 in
    let* entries = array_size (return (rows * cols)) entry_gen in
    return (Lattice_core.Grid.create rows cols entries)
  in
  QCheck2.Test.make ~name:"DC circuit = lattice connectivity" ~count:40 grid_gen (fun grid ->
      let ok = ref true in
      for m = 0 to 7 do
        let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0) in
        let lc = Sp.Lattice_circuit.build grid ~stimulus in
        let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
        let v = Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out") in
        let conducts = Lattice_core.Connectivity.eval grid m in
        if not (Bool.equal (v < 0.6) conducts) then ok := false
      done;
      !ok)

let test_lattice_circuit_level3_model () =
  (* with the level-3 switch models the XOR3 lattice still computes NOT
     XOR3 at DC, at a (weakly) higher V_OL since short-channel effects
     reduce the drive *)
  let config =
    { Sp.Lattice_circuit.default_config with
      Sp.Lattice_circuit.types = Sp.Fts.level3_types () }
  in
  let v_ol_l3 = ref 0.0 and v_ol_l1 = ref 0.0 in
  for m = 0 to 7 do
    let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0) in
    let solve config =
      let lc = Sp.Lattice_circuit.build ~config Lattice_synthesis.Library.xor3_3x3 ~stimulus in
      let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
      Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out")
    in
    let v3 = solve config and v1 = solve Sp.Lattice_circuit.default_config in
    let xor3 = (m land 1) lxor ((m lsr 1) land 1) lxor ((m lsr 2) land 1) = 1 in
    if xor3 then begin
      Alcotest.(check bool) (Printf.sprintf "combo %d low" m) true (v3 < 0.6);
      v_ol_l3 := Float.max !v_ol_l3 v3;
      v_ol_l1 := Float.max !v_ol_l1 v1
    end
    else Alcotest.(check bool) (Printf.sprintf "combo %d high" m) true (v3 > 1.0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "level3 V_OL %.3f >= level1 V_OL %.3f" !v_ol_l3 !v_ol_l1)
    true
    (!v_ol_l3 >= !v_ol_l1 -. 1e-9)

(* --- Sparse engine parity ------------------------------------------------ *)

(* Tightened solver tolerances so both engines converge to well below the
   1e-9 comparison threshold; only the linear-algebra backend differs. *)
let tight_options engine =
  { Sp.Dcop.default_options with Sp.Dcop.reltol = 1e-9; abstol = 1e-12; engine }

(* A random mixed netlist: a grid of nodes joined by random resistors,
   MOSFET switches and capacitors, every node bled to ground so the DC
   operating point exists. *)
let random_mixed_netlist seed =
  let rng = Random.State.make [| seed; 0x5EED |] in
  let ckt = Sp.Netlist.create () in
  let rows = 2 + Random.State.int rng 3 in
  let cols = 2 + Random.State.int rng 3 in
  let node r c = Sp.Netlist.node ckt (Printf.sprintf "n%d_%d" r c) in
  let vin = Sp.Netlist.node ckt "in" in
  Sp.Netlist.vsource ckt "VDD" (node 0 0) Sp.Netlist.ground (Sp.Source.Dc 1.2);
  Sp.Netlist.vsource ckt "VIN" vin Sp.Netlist.ground
    (Sp.Source.Pulse
       { v1 = 0.0; v2 = 1.2; delay = 5e-9; rise = 2e-9; fall = 2e-9; width = 15e-9; period = 40e-9 });
  let nmos = { L1.kp = 2e-5; vth = 0.4; lambda = 0.02; w = 700e-9; l = 350e-9 } in
  let id = ref 0 in
  let fresh prefix = incr id; Printf.sprintf "%s%d" prefix !id in
  let connect a b =
    match Random.State.int rng 3 with
    | 0 -> Sp.Netlist.resistor ckt (fresh "R") a b (1e3 +. Random.State.float rng 1e5)
    | 1 ->
      let gate = if Random.State.bool rng then vin else node 0 0 in
      Sp.Netlist.mosfet ckt (fresh "M") ~drain:a ~gate ~source:b nmos
    | _ ->
      Sp.Netlist.resistor ckt (fresh "R") a b (1e3 +. Random.State.float rng 1e4);
      Sp.Netlist.capacitor ckt (fresh "C") a b (1e-15 +. Random.State.float rng 9e-15)
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c < cols - 1 then connect (node r c) (node r (c + 1));
      if r < rows - 1 then connect (node r c) (node (r + 1) c);
      (* bleed + load keep every node biased *)
      Sp.Netlist.resistor ckt (fresh "RB") (node r c) Sp.Netlist.ground 1e6;
      Sp.Netlist.capacitor ckt (fresh "CB") (node r c) Sp.Netlist.ground
        (1e-15 +. Random.State.float rng 4e-15)
    done
  done;
  if Random.State.bool rng then
    Sp.Netlist.isource ckt "IB" (node (rows - 1) (cols - 1)) Sp.Netlist.ground
      (Sp.Source.Dc 1e-6);
  (ckt, Printf.sprintf "n%d_%d" (rows - 1) (cols - 1))

let test_sparse_dense_dcop_parity () =
  for seed = 0 to 11 do
    let ckt, _ = random_mixed_netlist seed in
    let x_dense = Sp.Dcop.solve ~options:(tight_options Sp.Dcop.Dense) ckt in
    let x_sparse = Sp.Dcop.solve ~options:(tight_options Sp.Dcop.Sparse) ckt in
    let d = Lattice_numerics.Vec.max_abs_diff x_dense x_sparse in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: |dense - sparse| = %.3g < 1e-9" seed d)
      true (d < 1e-9)
  done

let test_sparse_dense_transient_parity () =
  for seed = 0 to 5 do
    let ckt, out_name = random_mixed_netlist seed in
    let run engine =
      let options =
        { Sp.Transient.default_options with Sp.Transient.dc = tight_options engine }
      in
      Sp.Transient.run ~options ckt ~h:1e-9 ~t_stop:60e-9 ~record:[ out_name; "in" ]
        ~record_currents:[ "VDD" ] ()
    in
    let rd = run Sp.Dcop.Dense and rs = run Sp.Dcop.Sparse in
    let worst = ref 0.0 in
    List.iter
      (fun name ->
        let a = Sp.Transient.signal rd name and b = Sp.Transient.signal rs name in
        worst := Float.max !worst (Lattice_numerics.Vec.max_abs_diff a b))
      [ out_name; "in" ];
    let ia = Sp.Transient.branch_current rd "VDD"
    and ib = Sp.Transient.branch_current rs "VDD" in
    worst := Float.max !worst (Lattice_numerics.Vec.max_abs_diff ia ib);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: transient |dense - sparse| = %.3g < 1e-9" seed !worst)
      true (!worst < 1e-9);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: newton iterations counted" seed)
      true
      (rd.Sp.Transient.newton_iterations_total >= 60
      && rs.Sp.Transient.newton_iterations_total >= 60)
  done

(* a fixed 6x6 lattice (36 four-terminal switches) driven through its
   input combinations: the sparse engine must match the dense one on the
   full transient *)
let lattice_6x6_grid () =
  let entries =
    Array.init 36 (fun i ->
        let r = i / 6 and c = i mod 6 in
        Lattice_core.Grid.Lit ((r + c) mod 3, (r * c) mod 2 = 0))
  in
  Lattice_core.Grid.create 6 6 entries

let test_lattice_6x6_sparse_matches_dense () =
  let lc =
    Sp.Lattice_circuit.build (lattice_6x6_grid ())
      ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd:1.2 ~bit_time:10e-9)
  in
  let ckt = lc.Sp.Lattice_circuit.netlist in
  Alcotest.(check bool) "big enough to exercise sparse auto-dispatch" true
    (Sp.Netlist.unknowns ckt >= Sp.Dcop.sparse_threshold);
  let run engine =
    let options =
      { Sp.Transient.default_options with Sp.Transient.dc = tight_options engine }
    in
    Sp.Transient.run ~options ckt ~h:1e-9 ~t_stop:40e-9 ~record:[ "out" ] ()
  in
  let rd = run Sp.Dcop.Dense and rs = run Sp.Dcop.Sparse in
  let d =
    Lattice_numerics.Vec.max_abs_diff
      (Sp.Transient.signal rd "out")
      (Sp.Transient.signal rs "out")
  in
  Alcotest.(check bool) (Printf.sprintf "6x6 transient diff %.3g < 1e-9" d) true (d < 1e-9)

let test_ac_sparse_matches_dense () =
  (* RC low-pass plus a FET load: sweep both engines over 4 decades *)
  let ckt = Sp.Netlist.create () in
  let vin = Sp.Netlist.node ckt "in" and out = Sp.Netlist.node ckt "out" in
  Sp.Netlist.vsource ckt "V1" vin Sp.Netlist.ground (Sp.Source.Dc 0.6);
  Sp.Netlist.resistor ckt "R1" vin out 10e3;
  Sp.Netlist.capacitor ckt "C1" out Sp.Netlist.ground 1e-12;
  Sp.Netlist.mosfet ckt "M1" ~drain:out ~gate:vin ~source:Sp.Netlist.ground nmos;
  (* pad with a resistor ladder so the sparse threshold is crossed *)
  let prev = ref out in
  for k = 1 to 20 do
    let n = Sp.Netlist.node ckt (Printf.sprintf "pad%d" k) in
    Sp.Netlist.resistor ckt (Printf.sprintf "RP%d" k) !prev n 1e3;
    Sp.Netlist.capacitor ckt (Printf.sprintf "CP%d" k) n Sp.Netlist.ground 1e-13;
    prev := n
  done;
  let sweep engine =
    Sp.Ac.sweep ~engine ckt ~source:"V1" ~output:"out" ~f_start:1e3 ~f_stop:1e7
      ~points_per_decade:5
  in
  let rd = sweep Sp.Dcop.Dense and rs = sweep Sp.Dcop.Sparse in
  List.iter2
    (fun (pd : Sp.Ac.point) (ps : Sp.Ac.point) ->
      check_close
        (Printf.sprintf "magnitude at %.3g Hz" pd.Sp.Ac.freq_hz)
        1e-9 pd.Sp.Ac.magnitude ps.Sp.Ac.magnitude;
      check_close
        (Printf.sprintf "phase at %.3g Hz" pd.Sp.Ac.freq_hz)
        1e-7 pd.Sp.Ac.phase_deg ps.Sp.Ac.phase_deg)
    rd.Sp.Ac.points rs.Sp.Ac.points

(* --- Structured diagnostics ---------------------------------------------- *)

let test_transient_partial_final_step () =
  (* t_stop that is not a multiple of h: the grid gets one documented
     partial final step landing exactly on t_stop *)
  let ts = Sp.Transient.sample_times ~h:1e-9 ~t_stop:10.5e-9 in
  Alcotest.(check int) "10 full steps + partial" 12 (Array.length ts);
  check_close "last sample is t_stop" 1e-21 10.5e-9 ts.(Array.length ts - 1);
  for k = 1 to Array.length ts - 1 do
    Alcotest.(check bool) "strictly increasing" true (ts.(k) > ts.(k - 1))
  done;
  (* an exact multiple keeps the uniform grid *)
  let ts = Sp.Transient.sample_times ~h:1e-9 ~t_stop:10e-9 in
  Alcotest.(check int) "uniform grid" 11 (Array.length ts);
  check_close "pinned to t_stop" 1e-21 10e-9 ts.(10);
  (* rounding noise within relative tolerance does not grow an extra step *)
  let ts = Sp.Transient.sample_times ~h:1e-9 ~t_stop:(10e-9 *. (1.0 +. 1e-9)) in
  Alcotest.(check int) "near-multiple absorbed" 11 (Array.length ts);
  (* and the physics is right on the padded grid: RC charge to analytic *)
  let r = Sp.Transient.run (rc_circuit ()) ~h:20e-9 ~t_stop:2.51e-6 ~record:[ "out" ] () in
  let times = r.Sp.Transient.times in
  check_close "transient ends at t_stop" 1e-18 2.51e-6 times.(Array.length times - 1);
  let v = (Sp.Transient.signal r "out").(Array.length times - 1) in
  check_close "RC charge at partial step" 1e-3 (1.0 -. exp (-2.51e-6 /. 1e-6)) v

let test_solve_diag_plain_wins () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" and b = Sp.Netlist.node ckt "b" in
  Sp.Netlist.vsource ckt "V1" a Sp.Netlist.ground (Sp.Source.Dc 2.0);
  Sp.Netlist.resistor ckt "R1" a b 1e3;
  Sp.Netlist.resistor ckt "R2" b Sp.Netlist.ground 1e3;
  match Sp.Dcop.solve_diag ckt with
  | Error f -> Alcotest.fail ("divider failed: " ^ Sp.Dcop.pp_failure f)
  | Ok (x, d) ->
    check_close "divider voltage" 1e-9 1.0 (Sp.Mna.voltage x b);
    Alcotest.(check bool) "plain Newton wins" true (d.Sp.Dcop.strategy = Sp.Dcop.Plain);
    Alcotest.(check int) "strategy index 0" 0 (Sp.Dcop.strategy_index d.Sp.Dcop.strategy);
    Alcotest.(check int) "one attempt" 1 (List.length d.Sp.Dcop.attempts);
    Alcotest.(check bool) "iterations counted" true (d.Sp.Dcop.newton_iterations >= 1);
    (match Sp.Dcop.last_solve_diagnostics () with
    | Some (Ok d') ->
      Alcotest.(check int) "legacy observer sees the win" 0
        (Sp.Dcop.strategy_index d'.Sp.Dcop.strategy)
    | _ -> Alcotest.fail "last_solve_diagnostics empty after solve_diag")

let test_solve_diag_conv_trace () =
  let make () =
    let ckt = Sp.Netlist.create () in
    let a = Sp.Netlist.node ckt "a" and b = Sp.Netlist.node ckt "b" in
    Sp.Netlist.vsource ckt "V1" a Sp.Netlist.ground (Sp.Source.Dc 2.0);
    Sp.Netlist.resistor ckt "R1" a b 1e3;
    Sp.Netlist.resistor ckt "R2" b Sp.Netlist.ground 1e3;
    ckt
  in
  (* off by default: no per-iteration norms are collected *)
  (match Sp.Dcop.solve_diag (make ()) with
  | Error f -> Alcotest.fail (Sp.Dcop.pp_failure f)
  | Ok (_, d) ->
    Alcotest.(check bool) "no trace by default" true (d.Sp.Dcop.conv_trace = []));
  let options = { Sp.Dcop.default_options with Sp.Dcop.conv_trace = true } in
  match Sp.Dcop.solve_diag ~options (make ()) with
  | Error f -> Alcotest.fail (Sp.Dcop.pp_failure f)
  | Ok (_, d) -> (
    match d.Sp.Dcop.conv_trace with
    | [ (Sp.Dcop.Plain, norms) ] ->
      Alcotest.(check int) "one |dx| norm per Newton iteration"
        d.Sp.Dcop.newton_iterations (Array.length norms);
      Array.iter
        (fun nrm ->
          Alcotest.(check bool) "norms finite and non-negative" true
            (Float.is_finite nrm && nrm >= 0.0))
        norms;
      Alcotest.(check bool) "final |dx| below tolerance scale" true
        (norms.(Array.length norms - 1) < 1e-3)
    | _ -> Alcotest.fail "expected a single Plain trace")

(* a circuit no rung can solve in so few iterations: the vsource forces a
   1.2 V jump but every Newton step is clamped to 1e-6 V *)
let unsolvable_circuit () =
  let ckt = Sp.Netlist.create () in
  let vdd = Sp.Netlist.node ckt "vdd" and d = Sp.Netlist.node ckt "d" in
  Sp.Netlist.vsource ckt "V1" vdd Sp.Netlist.ground (Sp.Source.Dc 1.2);
  Sp.Netlist.resistor ckt "R1" vdd d 10e3;
  Sp.Netlist.mosfet ckt "M1" ~drain:d ~gate:d ~source:Sp.Netlist.ground nmos;
  ckt

let hopeless_options =
  { Sp.Dcop.default_options with Sp.Dcop.max_iterations = 1; damping = 1e-6 }

let test_solve_diag_failure_ladder () =
  let ckt = unsolvable_circuit () in
  match Sp.Dcop.solve_diag ~options:hopeless_options ckt with
  | Ok _ -> Alcotest.fail "expected every strategy to fail"
  | Error f ->
    (* all 7 rungs of the ladder were tried, in order *)
    Alcotest.(check int) "7 failed attempts" 7 (List.length f.Sp.Dcop.attempts);
    Alcotest.(check (list int)) "ladder order"
      [ 0; 1; 2; 3; 4; 5; 6 ]
      (List.map (fun (s, _) -> Sp.Dcop.strategy_index s) f.Sp.Dcop.attempts);
    List.iter
      (fun (s, iters) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s spent iterations" (Sp.Dcop.strategy_name s))
          true (iters >= 1))
      f.Sp.Dcop.attempts;
    Alcotest.(check bool) "residual norm positive and finite" true
      (Float.is_finite f.Sp.Dcop.residual_norm && f.Sp.Dcop.residual_norm > 0.0);
    Alcotest.(check bool) "worst nodes named" true (f.Sp.Dcop.worst_nodes <> []);
    List.iter
      (fun (name, r) ->
        Alcotest.(check bool) (Printf.sprintf "node %s finite residual" name) true
          (Float.is_finite r && r > 0.0))
      f.Sp.Dcop.worst_nodes;
    Alcotest.(check bool) "rendered failure mentions the ladder" true
      (String.length (Sp.Dcop.pp_failure f) > 20)

let test_legacy_solve_raises_with_diagnostics () =
  let ckt = unsolvable_circuit () in
  (match Sp.Dcop.solve ~options:hopeless_options ckt with
  | exception Sp.Dcop.Convergence_failure msg ->
    Alcotest.(check bool) "message carries the ladder" true
      (String.length msg > 20)
  | _ -> Alcotest.fail "legacy solve should raise");
  match Sp.Dcop.last_solve_diagnostics () with
  | Some (Error f) ->
    Alcotest.(check int) "failure observable after raise" 7 (List.length f.Sp.Dcop.attempts)
  | _ -> Alcotest.fail "last_solve_diagnostics should hold the failure"

let test_transient_diag_failure () =
  let ckt = unsolvable_circuit () in
  match
    Sp.Transient.run_diag
      ~options:{ Sp.Transient.default_options with Sp.Transient.dc = hopeless_options }
      ckt ~h:1e-9 ~t_stop:4e-9 ~record:[ "d" ] ()
  with
  | Ok _ -> Alcotest.fail "expected the initial operating point to fail"
  | Error f ->
    check_close "failed at t = 0" 1e-18 0.0 f.Sp.Transient.at_time;
    Alcotest.(check bool) "dc failure attached" true (f.Sp.Transient.dc_failure.Sp.Dcop.attempts <> []);
    Alcotest.(check bool) "no dc strategy recorded" true
      (f.Sp.Transient.stats.Sp.Transient.dc_strategy = None)

let test_transient_run_diag_stats () =
  let ckt = Sp.Netlist.create () in
  let a = Sp.Netlist.node ckt "a" and b = Sp.Netlist.node ckt "b" in
  Sp.Netlist.vsource ckt "V1" a Sp.Netlist.ground (Sp.Source.Dc 1.0);
  Sp.Netlist.resistor ckt "R" a b 1e3;
  Sp.Netlist.capacitor ckt "C" b Sp.Netlist.ground 1e-9;
  match Sp.Transient.run_diag ckt ~h:1e-9 ~t_stop:20e-9 ~record:[ "b" ] () with
  | Error f -> Alcotest.fail (Sp.Dcop.pp_failure f.Sp.Transient.dc_failure)
  | Ok r ->
    let s = r.Sp.Transient.stats in
    Alcotest.(check int) "20 steps taken" 20 s.Sp.Transient.steps_taken;
    Alcotest.(check int) "no halvings on a linear circuit" 0 s.Sp.Transient.halvings;
    Alcotest.(check bool) "no halving events either" true (s.Sp.Transient.halving_events = []);
    check_close "min dt is h" 1e-21 1e-9 s.Sp.Transient.min_dt;
    Alcotest.(check bool) "dc strategy recorded" true
      (s.Sp.Transient.dc_strategy = Some Sp.Dcop.Plain);
    Alcotest.(check bool) "newton iterations accumulated" true
      (r.Sp.Transient.newton_iterations_total >= 20)

(* --- Defect injection ----------------------------------------------------- *)

let dc_out_voltage ?(defects = []) grid =
  let lc =
    Sp.Defects.build ~defects grid ~stimulus:(fun _ -> Sp.Source.Dc 0.0)
  in
  let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
  Sp.Mna.voltage x (Sp.Netlist.node lc.Sp.Lattice_circuit.netlist "out")

let test_defect_stuck_short_conducts () =
  (* a const-0 1x1 lattice normally leaves the output high; a stuck-short
     switch pulls it low regardless of the gate *)
  let grid, _ = Lattice_core.Grid.of_strings [ [ "0" ] ] in
  Alcotest.(check bool) "healthy stays high" true (dc_out_voltage grid > 1.1);
  let v =
    dc_out_voltage ~defects:[ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Stuck_short } ] grid
  in
  Alcotest.(check bool) (Printf.sprintf "stuck-short pulls low (%.3f V)" v) true (v < 0.1)

let test_defect_stuck_open_blocks () =
  (* a const-1 1x1 lattice normally pulls the output low; a stuck-open
     switch leaves it high *)
  let grid, _ = Lattice_core.Grid.of_strings [ [ "1" ] ] in
  Alcotest.(check bool) "healthy pulls low" true (dc_out_voltage grid < 0.3);
  let v =
    dc_out_voltage ~defects:[ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Stuck_open } ] grid
  in
  Alcotest.(check bool) (Printf.sprintf "stuck-open stays high (%.3f V)" v) true (v > 1.1)

let count_elements ckt =
  List.fold_left
    (fun (m, r, c) e ->
      match e with
      | Sp.Netlist.Mosfet _ -> (m + 1, r, c)
      | Sp.Netlist.Resistor _ -> (m, r + 1, c)
      | Sp.Netlist.Capacitor _ -> (m, r, c + 1)
      | Sp.Netlist.Vsource _ | Sp.Netlist.Isource _ -> (m, r, c))
    (0, 0, 0) (Sp.Netlist.elements ckt)

let test_defect_element_counts () =
  let grid, _ = Lattice_core.Grid.of_strings [ [ "1" ] ] in
  let build defects = (Sp.Defects.build ~defects grid ~stimulus:(fun _ -> Sp.Source.Dc 0.0)).Sp.Lattice_circuit.netlist in
  let m0, r0, c0 = count_elements (build []) in
  Alcotest.(check int) "healthy: 6 FETs" 6 m0;
  (* a bridge keeps the switch and adds one resistor *)
  let m, r, c =
    count_elements
      (build [ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Bridge (Sp.Defects.North, Sp.Defects.East) } ])
  in
  Alcotest.(check int) "bridge keeps FETs" m0 m;
  Alcotest.(check int) "bridge adds a resistor" (r0 + 1) r;
  Alcotest.(check int) "bridge keeps caps" c0 c;
  (* a gate leak likewise *)
  let m, r, _ =
    count_elements
      (build [ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Gate_leak Sp.Defects.South } ])
  in
  Alcotest.(check int) "leak keeps FETs" m0 m;
  Alcotest.(check int) "leak adds a resistor" (r0 + 1) r;
  (* a broken terminal keeps the switch but reroutes one terminal through
     a series resistor *)
  let m, r, c =
    count_elements
      (build [ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Broken_terminal Sp.Defects.North } ])
  in
  Alcotest.(check int) "broken keeps FETs" m0 m;
  Alcotest.(check int) "broken adds series resistor" (r0 + 1) r;
  Alcotest.(check int) "broken keeps caps" c0 c;
  (* stuck-open removes the FETs, keeps the terminal caps, adds 2 leakage
     resistors; stuck-short adds 4 shorts *)
  let m, r, c =
    count_elements (build [ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Stuck_open } ])
  in
  Alcotest.(check int) "open removes FETs" 0 m;
  Alcotest.(check int) "open: 2 leakage resistors" (r0 + 2) r;
  Alcotest.(check int) "open keeps terminal caps" c0 c;
  let m, r, _ =
    count_elements (build [ { Sp.Defects.row = 0; col = 0; kind = Sp.Defects.Stuck_short } ])
  in
  Alcotest.(check int) "short removes FETs" 0 m;
  Alcotest.(check int) "short: 4 short resistors" (r0 + 4) r

let test_defect_universe_size () =
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  Alcotest.(check int) "14 defects per site" (14 * 9)
    (List.length (Sp.Defects.single_defects grid));
  Alcotest.(check int) "restricted universe"
    (2 * 9)
    (List.length
       (Sp.Defects.single_defects ~classes:[ Sp.Defects.Opens; Sp.Defects.Shorts ] grid))

let test_sparse_dense_defect_parity () =
  (* a defect-injected near-singular netlist: the stuck-open site leaves
     internal nodes connected only through 1e10-ohm leaks, stressing the
     conditioning of both engines the same way *)
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  let defects =
    [
      { Sp.Defects.row = 1; col = 1; kind = Sp.Defects.Stuck_open };
      { Sp.Defects.row = 0; col = 2; kind = Sp.Defects.Bridge (Sp.Defects.East, Sp.Defects.South) };
    ]
  in
  for m = 0 to 7 do
    let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0) in
    let lc = Sp.Defects.build ~defects grid ~stimulus in
    let ckt = lc.Sp.Lattice_circuit.netlist in
    Alcotest.(check bool) "crosses the sparse threshold" true
      (Sp.Netlist.unknowns ckt >= Sp.Dcop.sparse_threshold);
    let x_dense = Sp.Dcop.solve ~options:(tight_options Sp.Dcop.Dense) ckt in
    let x_sparse = Sp.Dcop.solve ~options:(tight_options Sp.Dcop.Sparse) ckt in
    let d = Lattice_numerics.Vec.max_abs_diff x_dense x_sparse in
    Alcotest.(check bool)
      (Printf.sprintf "combo %d: defective |dense - sparse| = %.3g < 1e-8" m d)
      true (d < 1e-8)
  done

(* --- Series_chain ------------------------------------------------------------ *)

let test_series_monotone_decrease () =
  let prev = ref infinity in
  for n = 1 to 8 do
    let i = Sp.Series_chain.current ~n ~v_top:1.2 () in
    Alcotest.(check bool) (Printf.sprintf "I(%d) < I(%d)" n (n - 1)) true (i < !prev);
    Alcotest.(check bool) "positive" true (i > 0.0);
    prev := i
  done

let test_series_voltage_monotone () =
  let v5 = Sp.Series_chain.voltage_for_current ~n:5 ~i_target:5.5e-6 () in
  let v10 = Sp.Series_chain.voltage_for_current ~n:10 ~i_target:5.5e-6 () in
  Alcotest.(check bool) "more switches need more voltage" true (v10 > v5)

let test_series_off_gate () =
  let i = Sp.Series_chain.current ~n:3 ~gate_v:0.0 ~v_top:1.2 () in
  Alcotest.(check bool) "off chain leaks only" true (i < 1e-8)

let test_series_build_validates () =
  Alcotest.(check bool) "n = 0 rejected" true
    (match Sp.Series_chain.build ~n:0 ~v_top:1.0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "spice"
    [
      ( "units",
        [
          Alcotest.test_case "parse" `Quick test_units_parse;
          Alcotest.test_case "format" `Quick test_units_format;
          Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
          Alcotest.test_case "parse_spice table" `Quick test_units_parse_spice;
          Alcotest.test_case "print_spice shortest exact" `Quick test_units_print_spice;
        ] );
      ( "source",
        [
          Alcotest.test_case "dc" `Quick test_source_dc;
          Alcotest.test_case "pulse" `Quick test_source_pulse;
          Alcotest.test_case "square wave phase" `Quick test_source_square_starts_low;
          Alcotest.test_case "bit clock counter" `Quick test_source_bit_clock_counter;
          Alcotest.test_case "pwl" `Quick test_source_pwl;
          Alcotest.test_case "complement driver" `Quick test_source_complement;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "node interning" `Quick test_netlist_nodes;
          Alcotest.test_case "counts" `Quick test_netlist_counts;
          Alcotest.test_case "value validation" `Quick test_netlist_rejects_bad_values;
          Alcotest.test_case "SPICE deck export" `Quick test_netlist_spice_export;
          Alcotest.test_case "lattice deck export" `Quick test_spice_export_of_lattice;
        ] );
      ( "dcop",
        [
          Alcotest.test_case "voltage divider" `Quick test_dcop_divider;
          Alcotest.test_case "branch current" `Quick test_dcop_branch_current;
          Alcotest.test_case "current source" `Quick test_dcop_isource;
          Alcotest.test_case "diode-connected FET" `Quick test_dcop_diode_connected_fet;
          Alcotest.test_case "inverter transfer" `Quick test_dcop_inverter_transfer;
          Alcotest.test_case "floating nodes via gmin" `Quick test_dcop_floating_through_fets;
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC charge vs analytic" `Quick test_transient_rc_charge;
          Alcotest.test_case "trapezoidal beats backward Euler" `Quick test_transient_trap_beats_be;
          Alcotest.test_case "recording" `Quick test_transient_records_input;
          Alcotest.test_case "steady state stays put" `Quick test_transient_conserves_dc;
        ] );
      ( "measure",
        [
          Alcotest.test_case "rise/fall of trapezoid" `Quick test_measure_edges;
          Alcotest.test_case "steady levels" `Quick test_measure_levels;
          Alcotest.test_case "ascii plot" `Quick test_measure_plot;
          Alcotest.test_case "no crossing -> None" `Quick test_measure_no_crossing;
          Alcotest.test_case "boundary-sample crossings" `Quick test_measure_boundary_samples;
          Alcotest.test_case "clean edge on bouncy signal" `Quick test_measure_picks_clean_edge;
          Alcotest.test_case "degenerate span rejected" `Quick test_measure_rejects_bad_span;
          Alcotest.test_case "integral" `Quick test_measure_integral;
          Alcotest.test_case "supply energy" `Quick test_energy_from_supply;
        ] );
      ( "ac",
        [
          Alcotest.test_case "RC corner frequency" `Quick test_ac_rc_corner;
          Alcotest.test_case "single-pole rolloff" `Quick test_ac_rolloff;
          Alcotest.test_case "input validation" `Quick test_ac_errors;
          Alcotest.test_case "resistive circuits are flat" `Quick test_ac_divider_flat;
        ] );
      ( "fts",
        [
          Alcotest.test_case "switch on/off" `Quick test_fts_switching;
          Alcotest.test_case "element count" `Quick test_fts_element_count;
          Alcotest.test_case "cap suppression" `Quick test_fts_no_caps_option;
          Alcotest.test_case "terminal symmetry" `Quick test_fts_terminal_symmetry;
        ] );
      ( "lattice_circuit",
        [
          Alcotest.test_case "XOR3 DC truth table" `Quick test_lattice_circuit_xor3_dc;
          Alcotest.test_case "structure" `Quick test_lattice_circuit_structure;
          Alcotest.test_case "constant grids" `Quick test_lattice_circuit_const_grid;
          Alcotest.test_case "majority gate" `Quick test_lattice_circuit_maj3;
          Alcotest.test_case "complementary structure DC" `Quick
            test_lattice_circuit_complementary_dc;
          Alcotest.test_case "current recording" `Quick test_transient_current_recording;
          Alcotest.test_case "gate capacitance option" `Quick test_fts_gate_cap;
          Alcotest.test_case "functional with gate caps" `Slow test_gate_cap_slows_input_edge;
          Alcotest.test_case "level-3 switch models" `Quick test_lattice_circuit_level3_model;
          QCheck_alcotest.to_alcotest prop_circuit_matches_connectivity;
        ] );
      ( "sparse_engine",
        [
          Alcotest.test_case "random netlists: DC parity" `Quick test_sparse_dense_dcop_parity;
          Alcotest.test_case "random netlists: transient parity" `Quick
            test_sparse_dense_transient_parity;
          Alcotest.test_case "6x6 lattice transient parity" `Slow
            test_lattice_6x6_sparse_matches_dense;
          Alcotest.test_case "AC sweep parity" `Quick test_ac_sparse_matches_dense;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "transient partial final step" `Quick
            test_transient_partial_final_step;
          Alcotest.test_case "solve_diag: plain wins" `Quick test_solve_diag_plain_wins;
          Alcotest.test_case "solve_diag: convergence trace" `Quick test_solve_diag_conv_trace;
          Alcotest.test_case "solve_diag: full ladder failure" `Quick
            test_solve_diag_failure_ladder;
          Alcotest.test_case "legacy solve raises with diagnostics" `Quick
            test_legacy_solve_raises_with_diagnostics;
          Alcotest.test_case "transient failure diagnostics" `Quick test_transient_diag_failure;
          Alcotest.test_case "transient step stats" `Quick test_transient_run_diag_stats;
        ] );
      ( "defects",
        [
          Alcotest.test_case "stuck-short conducts" `Quick test_defect_stuck_short_conducts;
          Alcotest.test_case "stuck-open blocks" `Quick test_defect_stuck_open_blocks;
          Alcotest.test_case "element counts per kind" `Quick test_defect_element_counts;
          Alcotest.test_case "single-defect universe size" `Quick test_defect_universe_size;
          Alcotest.test_case "near-singular sparse/dense parity" `Quick
            test_sparse_dense_defect_parity;
        ] );
      ( "series_chain",
        [
          Alcotest.test_case "current decreases with N" `Quick test_series_monotone_decrease;
          Alcotest.test_case "voltage increases with N" `Quick test_series_voltage_monotone;
          Alcotest.test_case "off chain" `Quick test_series_off_gate;
          Alcotest.test_case "build validation" `Quick test_series_build_validates;
        ] );
    ]
