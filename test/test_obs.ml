(* Tests for the observability layer: span recording and parentage,
   zero-cost disabled paths, Domain-safe buffers, the metrics registry
   with its log-scale histograms, probes, and the exporters. *)

module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics
module Probe = Lattice_obs.Probe
module Export = Lattice_obs.Export
module Ring = Lattice_obs.Ring
module Rolling = Lattice_obs.Rolling
module Spool = Lattice_obs.Spool

(* Every test owns the global flags: start from a known state and leave
   everything disabled and empty (the suite may run under FTL_TRACE=1;
   the flight ring is on by default, so it is parked off here and ring
   tests enable it themselves). *)
let isolated f () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  Ring.set_enabled false;
  Trace.reset ();
  Metrics.reset ();
  Ring.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Metrics.set_enabled false;
      Ring.set_enabled false;
      Trace.reset ();
      Metrics.reset ();
      Ring.reset ())
    f

(* --- trace ---------------------------------------------------------------- *)

let test_disabled_records_nothing () =
  let sp = Trace.begin_span ~args:[ ("k", "v") ] "quiet" in
  Alcotest.(check int) "null token" Trace.null sp;
  Trace.end_span sp;
  Trace.instant "nothing";
  Trace.with_span "also quiet" (fun () -> ());
  Trace.complete ~name:"leaf" ~t0_ns:0 ~t1_ns:10 ();
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

let test_span_nesting () =
  Trace.set_enabled true;
  let outer = Trace.begin_span ~cat:"t" "outer" in
  let inner = Trace.begin_span "inner" in
  Trace.complete ~name:"leaf" ~t0_ns:(Lattice_obs.Clock.now_ns ())
    ~t1_ns:(Lattice_obs.Clock.now_ns ()) ();
  Trace.instant ~args:[ ("why", "test") ] "ping";
  Trace.end_span inner;
  Trace.end_span outer;
  Trace.set_enabled false;
  let evs = Trace.events () in
  Alcotest.(check int) "four events" 4 (List.length evs);
  let find name = List.find (fun (e : Trace.event) -> e.Trace.name = name) evs in
  let outer_e = find "outer" and inner_e = find "inner" in
  let leaf_e = find "leaf" and ping_e = find "ping" in
  Alcotest.(check int) "outer is a root" (-1) outer_e.Trace.parent;
  Alcotest.(check int) "inner under outer" outer_e.Trace.id inner_e.Trace.parent;
  Alcotest.(check int) "completed leaf under inner" inner_e.Trace.id leaf_e.Trace.parent;
  Alcotest.(check int) "instant under inner" inner_e.Trace.id ping_e.Trace.parent;
  Alcotest.(check bool) "outer closed" true (outer_e.Trace.dur_ns >= 0);
  Alcotest.(check bool) "outer covers inner" true
    (outer_e.Trace.dur_ns >= inner_e.Trace.dur_ns);
  Alcotest.(check (list (pair string string))) "instant args kept"
    [ ("why", "test") ] ping_e.Trace.args;
  Alcotest.(check string) "category recorded" "t" outer_e.Trace.cat

let test_exception_closes_spans () =
  Trace.set_enabled true;
  (try
     Trace.with_span "guarded" (fun () ->
         let _abandoned = Trace.begin_span "abandoned" in
         failwith "boom")
   with Failure _ -> ());
  Trace.set_enabled false;
  let evs = Trace.events () in
  Alcotest.(check int) "both spans recorded" 2 (List.length evs);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) (e.Trace.name ^ " closed") true (e.Trace.dur_ns >= 0))
    evs

let test_multi_domain_buffers () =
  Trace.set_enabled true;
  Trace.with_span "main-side" (fun () -> ());
  let worker () = Trace.with_span "worker-side" (fun () -> ()) in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Trace.set_enabled false;
  let evs = Trace.events () in
  Alcotest.(check int) "all domains merged" 3 (List.length evs);
  let tids =
    List.sort_uniq Int.compare (List.map (fun (e : Trace.event) -> e.Trace.tid) evs)
  in
  Alcotest.(check int) "three distinct domains" 3 (List.length tids);
  let ids = List.map (fun (e : Trace.event) -> e.Trace.id) evs in
  Alcotest.(check int) "ids unique across domains" 3 (List.length (List.sort_uniq Int.compare ids))

(* --- flight ring ----------------------------------------------------------- *)

(* The ring feeds from Trace even while tracing is off; each domain
   keeps exactly its last [capacity] spans under single-threaded
   recording, and a dump merges the survivors in start-time order. *)
let test_ring_wrap_under_domains () =
  Ring.set_enabled true;
  let per_domain = (2 * Ring.capacity) + 100 in
  let hammer () =
    for i = 1 to per_domain do
      Trace.with_span ~cat:"hammer" (Printf.sprintf "h%d" i) (fun () -> ())
    done
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn hammer) in
  Array.iter Domain.join doms;
  Ring.set_enabled false;
  let spans = Ring.dump () in
  Alcotest.(check int) "each ring holds exactly capacity" (4 * Ring.capacity)
    (List.length spans);
  (* survivors are each domain's most recent [capacity] spans *)
  List.iter
    (fun (s : Ring.span) ->
      let i = int_of_string (String.sub s.Ring.name 1 (String.length s.Ring.name - 1)) in
      Alcotest.(check bool)
        (Printf.sprintf "span %d survived the wrap" i)
        true
        (i > per_domain - Ring.capacity))
    spans;
  let ts = List.map (fun (s : Ring.span) -> s.Ring.ts_ns) spans in
  Alcotest.(check bool) "dump sorted by start time" true (List.sort Int.compare ts = ts);
  let last = Ring.dump ~last_n:10 () in
  Alcotest.(check int) "last_n truncates" 10 (List.length last);
  let newest_full = List.nth spans (List.length spans - 1) in
  let newest_last = List.nth last 9 in
  Alcotest.(check string) "last_n keeps the newest" newest_full.Ring.name newest_last.Ring.name

let test_ring_disabled_records_nothing () =
  Trace.with_span "invisible" (fun () -> ());
  Ring.record
    { Ring.name = "direct"; cat = ""; dom = 0; ts_ns = 0; dur_ns = 0; args = [] };
  Alcotest.(check int) "nothing recorded while off" 0 (Ring.recorded ())

let test_ring_dump_jsonl () =
  Ring.set_enabled true;
  Trace.with_span ~cat:"c" ~args:[ ("k", "v\"q") ] "jsonl-span" (fun () -> ());
  Ring.set_enabled false;
  let lines =
    String.split_on_char '\n' (Ring.dump_jsonl ()) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per span" 1 (List.length lines);
  let l = List.hd lines in
  let contains needle =
    let n = String.length needle and m = String.length l in
    let rec go i = i + n <= m && (String.sub l i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chrome complete event" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "name present" true (contains "\"name\":\"jsonl-span\"");
  Alcotest.(check bool) "args object present" true (contains "\"args\":{");
  Alcotest.(check bool) "arg value escaped" true (contains "v\\\"q");
  Alcotest.(check bool) "duration in us" true (contains "\"dur\":")

(* daemon-side requirement: spans completed inside a remote context carry
   the caller's correlation ids even when only the ring is recording *)
let test_ring_spans_carry_remote_context () =
  Ring.set_enabled true;
  let ctx = Trace.make_context ~trace_id:"trace-77" ~parent_span:"span-3" ~req_id:"req-9" () in
  Trace.with_remote_context ctx (fun () -> Trace.with_span "ctx-span" (fun () -> ()));
  Trace.with_span "bare-span" (fun () -> ());
  Ring.set_enabled false;
  let spans = Ring.dump () in
  let find name = List.find (fun (s : Ring.span) -> s.Ring.name = name) spans in
  let stamped = find "ctx-span" and bare = find "bare-span" in
  Alcotest.(check (option string)) "trace_id stamped" (Some "trace-77")
    (List.assoc_opt "trace_id" stamped.Ring.args);
  Alcotest.(check (option string)) "parent_span stamped" (Some "span-3")
    (List.assoc_opt "parent_span" stamped.Ring.args);
  Alcotest.(check (option string)) "req_id stamped" (Some "req-9")
    (List.assoc_opt "req_id" stamped.Ring.args);
  Alcotest.(check (option string)) "no leakage outside the context" None
    (List.assoc_opt "trace_id" bare.Ring.args)

let test_remote_context_attribution () =
  let ctx = Trace.make_context ~req_id:"r" () in
  Trace.with_remote_context ctx (fun () ->
      Trace.attribute_dc_solve ();
      Trace.attribute_dc_solve ();
      Trace.attribute_cache_hit ();
      Trace.attribute_retries 3);
  (* attribution outside any context is dropped, not misfiled *)
  Trace.attribute_dc_solve ();
  Alcotest.(check int) "dc solves attributed" 2 (Trace.context_dc_solves ctx);
  Alcotest.(check int) "cache hits attributed" 1 (Trace.context_cache_hits ctx);
  Alcotest.(check int) "retries attributed" 3 (Trace.context_retries ctx)

(* --- rolling window -------------------------------------------------------- *)

let s_to_ns s = int_of_float (s *. 1e9)

(* exact nearest-rank reference for the percentile checks *)
let ref_percentile sorted p =
  let n = Array.length sorted in
  let rank = Int.max 1 (int_of_float (Float.round (p *. float_of_int n /. 100.0 +. 0.5))) in
  sorted.(Int.min (n - 1) (rank - 1))

let test_rolling_percentiles_vs_reference () =
  let t = Rolling.create () in
  let durs = Array.init 200 (fun i -> 0.001 *. float_of_int (i + 1)) in
  (* shuffle deterministically so insertion order is not sorted *)
  let st = Random.State.make [| 42 |] in
  for i = Array.length durs - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = durs.(i) in
    durs.(i) <- durs.(j);
    durs.(j) <- tmp
  done;
  let now = s_to_ns 1000.0 in
  Array.iter (fun d -> Rolling.observe t ~now_ns:now ~dur_s:d ~outcome:Rolling.Ok) durs;
  let s = Rolling.snapshot t ~now_ns:now in
  Alcotest.(check int) "count" 200 s.Rolling.count;
  Alcotest.(check (float 1e-9)) "max is exact" 0.2 s.Rolling.max_s;
  let sorted = Array.copy durs in
  Array.sort Float.compare sorted;
  List.iter
    (fun (p, got) ->
      let want = ref_percentile sorted p in
      let rel = got /. want in
      Alcotest.(check bool)
        (Printf.sprintf "p%g %.4f within sqrt2 of reference %.4f" p got want)
        true
        (rel >= 1.0 /. Float.sqrt 2.0 && rel <= Float.sqrt 2.0))
    [ (50.0, s.Rolling.p50_s); (95.0, s.Rolling.p95_s); (99.0, s.Rolling.p99_s) ];
  let mean = Array.fold_left ( +. ) 0.0 durs /. 200.0 in
  Alcotest.(check (float 1e-9)) "mean exact" mean s.Rolling.mean_s

let test_rolling_window_expiry () =
  let t = Rolling.create ~buckets:6 ~bucket_s:10.0 () in
  Rolling.observe t ~now_ns:(s_to_ns 5.0) ~dur_s:0.01 ~outcome:Rolling.Error;
  Rolling.observe t ~now_ns:(s_to_ns 15.0) ~dur_s:0.02 ~outcome:Rolling.Timeout;
  Rolling.observe t ~now_ns:(s_to_ns 55.0) ~dur_s:0.04 ~outcome:Rolling.Ok;
  let s = Rolling.snapshot t ~now_ns:(s_to_ns 59.0) in
  Alcotest.(check int) "all three inside the window" 3 s.Rolling.count;
  Alcotest.(check int) "error counted" 1 s.Rolling.errors;
  Alcotest.(check int) "timeout counted" 1 s.Rolling.timeouts;
  (* at t=65 the first bucket (0..10s) has left the 60s window *)
  let s = Rolling.snapshot t ~now_ns:(s_to_ns 65.0) in
  Alcotest.(check int) "oldest bucket expired" 2 s.Rolling.count;
  Alcotest.(check int) "its error went with it" 0 s.Rolling.errors;
  (* far in the future everything is stale *)
  let s = Rolling.snapshot t ~now_ns:(s_to_ns 500.0) in
  Alcotest.(check int) "empty after the window passes" 0 s.Rolling.count;
  Alcotest.(check bool) "percentiles nan when empty" true (Float.is_nan s.Rolling.p50_s);
  (* stale buckets are recycled on the next observation, not leaked into *)
  Rolling.observe t ~now_ns:(s_to_ns 500.0) ~dur_s:0.08 ~outcome:Rolling.Ok;
  let s = Rolling.snapshot t ~now_ns:(s_to_ns 500.0) in
  Alcotest.(check int) "recycled bucket counts only the new sample" 1 s.Rolling.count

let test_rolling_rate () =
  let t = Rolling.create ~buckets:6 ~bucket_s:10.0 () in
  Alcotest.(check (float 1e-9)) "window span" 60.0 (Rolling.window_s t);
  for i = 1 to 120 do
    Rolling.observe t ~now_ns:(s_to_ns (float_of_int i *. 0.25)) ~dur_s:0.001
      ~outcome:Rolling.Ok
  done;
  (* 120 completions over a 60 s window -> 2/s *)
  let s = Rolling.snapshot t ~now_ns:(s_to_ns 30.0) in
  Alcotest.(check (float 1e-9)) "rate over the window" 2.0 s.Rolling.rate_per_s

(* --- spool ------------------------------------------------------------------ *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let test_spool_count_cap () =
  let dir = temp_dir "spool" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let written =
    List.init 5 (fun i ->
        match Spool.write ~dir ~max_files:3 ~max_bytes:1_000_000 (Printf.sprintf "dump-%d\n" i) with
        | Ok path -> path
        | Error e -> Alcotest.failf "write %d failed: %s" i e)
  in
  let survivors = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  Alcotest.(check int) "count cap enforced" 3 (List.length survivors);
  let newest = List.filteri (fun i _ -> i >= 2) written |> List.map Filename.basename in
  Alcotest.(check (list string)) "newest files survive" (List.sort String.compare newest)
    survivors

let test_spool_bytes_cap () =
  let dir = temp_dir "spool" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let blob = String.make 100 'x' in
  List.iter
    (fun i ->
      match Spool.write ~dir ~max_files:100 ~max_bytes:250 blob with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "write %d failed: %s" i e)
    [ 1; 2; 3; 4; 5 ];
  let files = Sys.readdir dir in
  Alcotest.(check int) "bytes cap leaves two 100-byte files" 2 (Array.length files)

let test_log_rotation () =
  let dir = temp_dir "alog" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "access.log" in
  let log = Spool.open_log ~path ~max_bytes:200 ~keep:2 () in
  let line_len = 50 in
  (* 20 lines of 50 bytes: several generations' worth against a
     200-byte cap *)
  for i = 1 to 20 do
    Spool.line log (Printf.sprintf "%04d %s" i (String.make (line_len - 5) 'a'))
  done;
  Spool.close_log log;
  let size p = (Unix.stat p).Unix.st_size in
  Alcotest.(check bool) "live log exists" true (Sys.file_exists path);
  Alcotest.(check bool) "live log under the cap" true (size path <= 200);
  Alcotest.(check bool) "one rotation kept" true (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool) "second rotation kept" true (Sys.file_exists (path ^ ".2"));
  Alcotest.(check bool) "beyond keep evicted" false (Sys.file_exists (path ^ ".3"));
  (* every surviving line is intact: rotation never tears a line *)
  List.iter
    (fun p ->
      if Sys.file_exists p then begin
        let ic = open_in p in
        (try
           while true do
             let l = input_line ic in
             Alcotest.(check int) ("line length in " ^ p) line_len (String.length l)
           done
         with End_of_file -> ());
        close_in ic
      end)
    [ path; path ^ ".1"; path ^ ".2" ]

(* --- metrics -------------------------------------------------------------- *)

let test_counter_gated () =
  let c = Metrics.counter "test.gated.counter" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 10;
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.Counter.get c);
  Metrics.set_enabled true;
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "enabled counter counts" 5 (Metrics.Counter.get c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.Counter.get c)

let test_registry_identity_and_kinds () =
  let c1 = Metrics.counter "test.registry.c" in
  let c2 = Metrics.counter "test.registry.c" in
  Metrics.set_enabled true;
  Metrics.Counter.incr c1;
  Alcotest.(check int) "same name, same instrument" 1 (Metrics.Counter.get c2);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics.histogram: \"test.registry.c\" is registered as another kind")
    (fun () -> ignore (Metrics.histogram "test.registry.c"))

let test_histogram_stats () =
  Metrics.set_enabled true;
  let h = Metrics.histogram "test.hist" in
  let samples = [ 1.0; 2.0; 4.0; 8.0; 1000.0 ] in
  List.iter (Metrics.Histogram.observe h) samples;
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1015.0 (Metrics.Histogram.sum h);
  Alcotest.(check (float 0.0)) "min exact" 1.0 (Metrics.Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 1000.0 (Metrics.Histogram.max_value h);
  (* the extreme ranks are exact; interior ranks are bucket midpoints *)
  Alcotest.(check (float 0.0)) "p0 = exact min" 1.0 (Metrics.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 = exact max" 1000.0 (Metrics.Histogram.percentile h 100.0);
  let p50 = Metrics.Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 in the bucket of 4.0" true (p50 >= 2.0 && p50 <= 8.0);
  (* power-of-two buckets: each sample inside its bucket bounds *)
  let buckets = Metrics.Histogram.buckets h in
  Alcotest.(check int) "five non-empty buckets" 5 (List.length buckets);
  List.iter2
    (fun v (lo, hi, n) ->
      Alcotest.(check int) "one sample per bucket" 1 n;
      Alcotest.(check bool)
        (Printf.sprintf "%g in [%g, %g)" v lo hi)
        true
        (lo <= v && v < hi))
    (List.sort Float.compare samples)
    buckets

let test_histogram_disabled_and_reset () =
  let h = Metrics.histogram "test.hist.off" in
  Metrics.Histogram.observe h 3.0;
  Alcotest.(check int) "disabled observe dropped" 0 (Metrics.Histogram.count h);
  Metrics.set_enabled true;
  Metrics.Histogram.observe h 3.0;
  Metrics.reset ();
  Alcotest.(check int) "reset empties" 0 (Metrics.Histogram.count h);
  Alcotest.(check bool) "min nan when empty" true
    (Float.is_nan (Metrics.Histogram.min_value h));
  Alcotest.(check bool) "percentile nan when empty" true
    (Float.is_nan (Metrics.Histogram.percentile h 50.0))

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "disabled set dropped" 0.0 (Metrics.Gauge.get g);
  Metrics.set_enabled true;
  Metrics.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "enabled set lands" 2.5 (Metrics.Gauge.get g)

(* --- probes --------------------------------------------------------------- *)

let test_probe () =
  let p = Probe.make ~cat:"test" ~hist:"test.probe.seconds" "probed" in
  Alcotest.(check int) "enter is -1 while both off" (-1) (Probe.enter p);
  Probe.leave p (-1);
  Metrics.set_enabled true;
  Trace.set_enabled true;
  let t0 = Probe.enter p in
  Alcotest.(check bool) "enter reads the clock when on" true (t0 >= 0);
  Probe.leave p t0;
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let h = Metrics.histogram "test.probe.seconds" in
  Alcotest.(check int) "one observation" 1 (Metrics.Histogram.count h);
  Alcotest.(check bool) "non-negative duration" true (Metrics.Histogram.min_value h >= 0.0);
  let evs = Trace.events () in
  Alcotest.(check int) "one span" 1 (List.length evs);
  Alcotest.(check string) "span name" "probed" (List.hd evs).Trace.name

(* --- export --------------------------------------------------------------- *)

let test_chrome_export () =
  Trace.set_enabled true;
  Trace.with_span ~cat:"x" ~args:[ ("quote", "a\"b"); ("nl", "a\nb") ] "escaped" (fun () ->
      Trace.instant "mark");
  Trace.set_enabled false;
  let json = Export.chrome_json () in
  Alcotest.(check bool) "has traceEvents" true
    (String.length json > 0
    && String.sub json 0 16 = "{\"traceEvents\":[");
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "complete event" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "instant event" true (contains "\"ph\":\"i\"");
  Alcotest.(check bool) "thread metadata" true (contains "\"thread_name\"");
  Alcotest.(check bool) "quote escaped" true (contains "a\\\"b");
  Alcotest.(check bool) "newline escaped" true (contains "a\\nb");
  Alcotest.(check bool) "object closed" true
    (String.length json >= 2 && String.sub json (String.length json - 2) 2 = "}\n")

let test_jsonl_export () =
  Trace.set_enabled true;
  Metrics.set_enabled true;
  Trace.with_span "line-span" (fun () -> ());
  Metrics.Counter.incr (Metrics.counter "test.jsonl.counter");
  Metrics.Histogram.observe (Metrics.histogram "test.jsonl.hist") 2.0;
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let lines =
    String.split_on_char '\n' (Export.jsonl ()) |> List.filter (fun l -> l <> "")
  in
  (* one span line + counter + non-empty histogram (empty histograms from
     other registrations are skipped) *)
  List.iter
    (fun l ->
      Alcotest.(check bool) ("line is an object: " ^ l) true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let count_type t =
    List.length
      (List.filter
         (fun l ->
           let needle = Printf.sprintf "{\"type\":\"%s\"" t in
           String.length l >= String.length needle
           && String.sub l 0 (String.length needle) = needle)
         lines)
  in
  Alcotest.(check int) "one span line" 1 (count_type "span");
  Alcotest.(check bool) "counter lines present" true (count_type "counter" >= 1);
  Alcotest.(check int) "one histogram line" 1 (count_type "histogram")

let test_write_dispatch () =
  Trace.set_enabled true;
  Trace.with_span "disk" (fun () -> ());
  Trace.set_enabled false;
  let chrome = Filename.temp_file "obs" ".json" in
  let jsonl = Filename.temp_file "obs" ".jsonl" in
  Export.write ~path:chrome;
  Export.write ~path:jsonl;
  let read p =
    let ic = open_in p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check bool) "chrome file" true (String.length (read chrome) > 20);
  Alcotest.(check bool) "chrome format" true (String.sub (read chrome) 0 1 = "{");
  Alcotest.(check bool) "jsonl format" true (String.sub (read jsonl) 0 8 = "{\"type\":");
  Sys.remove chrome;
  Sys.remove jsonl

let test_summary_render () =
  Metrics.set_enabled true;
  Metrics.Counter.add (Metrics.counter "test.render.counter") 3;
  Metrics.Histogram.observe (Metrics.histogram "test.render.hist") 5.0;
  Metrics.set_enabled false;
  let s = Export.summary () in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter listed" true (contains "test.render.counter");
  Alcotest.(check bool) "histogram listed" true (contains "test.render.hist");
  Alcotest.(check bool) "percentiles rendered" true (contains "p95")

let () =
  let t name f = Alcotest.test_case name `Quick (isolated f) in
  Alcotest.run "obs"
    [
      ( "trace",
        [
          t "disabled records nothing" test_disabled_records_nothing;
          t "span nesting and parentage" test_span_nesting;
          t "exceptions close spans" test_exception_closes_spans;
          t "per-domain buffers merge" test_multi_domain_buffers;
        ] );
      ( "ring",
        [
          t "wrap and dump under 4-domain hammering" test_ring_wrap_under_domains;
          t "disabled records nothing" test_ring_disabled_records_nothing;
          t "dump_jsonl chrome events" test_ring_dump_jsonl;
          t "spans carry the remote context" test_ring_spans_carry_remote_context;
          t "remote-context attribution" test_remote_context_attribution;
        ] );
      ( "rolling",
        [
          t "percentiles vs nearest-rank reference" test_rolling_percentiles_vs_reference;
          t "window expiry and recycle" test_rolling_window_expiry;
          t "rate over the window" test_rolling_rate;
        ] );
      ( "spool",
        [
          t "file-count cap" test_spool_count_cap;
          t "byte cap" test_spool_bytes_cap;
          t "access-log rotation" test_log_rotation;
        ] );
      ( "metrics",
        [
          t "counter gating" test_counter_gated;
          t "registry identity and kind clash" test_registry_identity_and_kinds;
          t "histogram statistics" test_histogram_stats;
          t "histogram gating and reset" test_histogram_disabled_and_reset;
          t "gauge" test_gauge;
        ] );
      ("probe", [ t "probe spans and histograms" test_probe ]);
      ( "export",
        [
          t "chrome trace-event JSON" test_chrome_export;
          t "jsonl" test_jsonl_export;
          t "write dispatch by suffix" test_write_dispatch;
          t "metrics summary" test_summary_render;
        ] );
    ]
