(* Tests for the observability layer: span recording and parentage,
   zero-cost disabled paths, Domain-safe buffers, the metrics registry
   with its log-scale histograms, probes, and the exporters. *)

module Trace = Lattice_obs.Trace
module Metrics = Lattice_obs.Metrics
module Probe = Lattice_obs.Probe
module Export = Lattice_obs.Export

(* Every test owns the global flags: start from a known state and leave
   everything disabled and empty (the suite may run under FTL_TRACE=1). *)
let isolated f () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Metrics.set_enabled false;
      Trace.reset ();
      Metrics.reset ())
    f

(* --- trace ---------------------------------------------------------------- *)

let test_disabled_records_nothing () =
  let sp = Trace.begin_span ~args:[ ("k", "v") ] "quiet" in
  Alcotest.(check int) "null token" Trace.null sp;
  Trace.end_span sp;
  Trace.instant "nothing";
  Trace.with_span "also quiet" (fun () -> ());
  Trace.complete ~name:"leaf" ~t0_ns:0 ~t1_ns:10 ();
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

let test_span_nesting () =
  Trace.set_enabled true;
  let outer = Trace.begin_span ~cat:"t" "outer" in
  let inner = Trace.begin_span "inner" in
  Trace.complete ~name:"leaf" ~t0_ns:(Lattice_obs.Clock.now_ns ())
    ~t1_ns:(Lattice_obs.Clock.now_ns ()) ();
  Trace.instant ~args:[ ("why", "test") ] "ping";
  Trace.end_span inner;
  Trace.end_span outer;
  Trace.set_enabled false;
  let evs = Trace.events () in
  Alcotest.(check int) "four events" 4 (List.length evs);
  let find name = List.find (fun (e : Trace.event) -> e.Trace.name = name) evs in
  let outer_e = find "outer" and inner_e = find "inner" in
  let leaf_e = find "leaf" and ping_e = find "ping" in
  Alcotest.(check int) "outer is a root" (-1) outer_e.Trace.parent;
  Alcotest.(check int) "inner under outer" outer_e.Trace.id inner_e.Trace.parent;
  Alcotest.(check int) "completed leaf under inner" inner_e.Trace.id leaf_e.Trace.parent;
  Alcotest.(check int) "instant under inner" inner_e.Trace.id ping_e.Trace.parent;
  Alcotest.(check bool) "outer closed" true (outer_e.Trace.dur_ns >= 0);
  Alcotest.(check bool) "outer covers inner" true
    (outer_e.Trace.dur_ns >= inner_e.Trace.dur_ns);
  Alcotest.(check (list (pair string string))) "instant args kept"
    [ ("why", "test") ] ping_e.Trace.args;
  Alcotest.(check string) "category recorded" "t" outer_e.Trace.cat

let test_exception_closes_spans () =
  Trace.set_enabled true;
  (try
     Trace.with_span "guarded" (fun () ->
         let _abandoned = Trace.begin_span "abandoned" in
         failwith "boom")
   with Failure _ -> ());
  Trace.set_enabled false;
  let evs = Trace.events () in
  Alcotest.(check int) "both spans recorded" 2 (List.length evs);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) (e.Trace.name ^ " closed") true (e.Trace.dur_ns >= 0))
    evs

let test_multi_domain_buffers () =
  Trace.set_enabled true;
  Trace.with_span "main-side" (fun () -> ());
  let worker () = Trace.with_span "worker-side" (fun () -> ()) in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Trace.set_enabled false;
  let evs = Trace.events () in
  Alcotest.(check int) "all domains merged" 3 (List.length evs);
  let tids =
    List.sort_uniq Int.compare (List.map (fun (e : Trace.event) -> e.Trace.tid) evs)
  in
  Alcotest.(check int) "three distinct domains" 3 (List.length tids);
  let ids = List.map (fun (e : Trace.event) -> e.Trace.id) evs in
  Alcotest.(check int) "ids unique across domains" 3 (List.length (List.sort_uniq Int.compare ids))

(* --- metrics -------------------------------------------------------------- *)

let test_counter_gated () =
  let c = Metrics.counter "test.gated.counter" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 10;
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.Counter.get c);
  Metrics.set_enabled true;
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "enabled counter counts" 5 (Metrics.Counter.get c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.Counter.get c)

let test_registry_identity_and_kinds () =
  let c1 = Metrics.counter "test.registry.c" in
  let c2 = Metrics.counter "test.registry.c" in
  Metrics.set_enabled true;
  Metrics.Counter.incr c1;
  Alcotest.(check int) "same name, same instrument" 1 (Metrics.Counter.get c2);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics.histogram: \"test.registry.c\" is registered as another kind")
    (fun () -> ignore (Metrics.histogram "test.registry.c"))

let test_histogram_stats () =
  Metrics.set_enabled true;
  let h = Metrics.histogram "test.hist" in
  let samples = [ 1.0; 2.0; 4.0; 8.0; 1000.0 ] in
  List.iter (Metrics.Histogram.observe h) samples;
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1015.0 (Metrics.Histogram.sum h);
  Alcotest.(check (float 0.0)) "min exact" 1.0 (Metrics.Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 1000.0 (Metrics.Histogram.max_value h);
  (* the extreme ranks are exact; interior ranks are bucket midpoints *)
  Alcotest.(check (float 0.0)) "p0 = exact min" 1.0 (Metrics.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 = exact max" 1000.0 (Metrics.Histogram.percentile h 100.0);
  let p50 = Metrics.Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 in the bucket of 4.0" true (p50 >= 2.0 && p50 <= 8.0);
  (* power-of-two buckets: each sample inside its bucket bounds *)
  let buckets = Metrics.Histogram.buckets h in
  Alcotest.(check int) "five non-empty buckets" 5 (List.length buckets);
  List.iter2
    (fun v (lo, hi, n) ->
      Alcotest.(check int) "one sample per bucket" 1 n;
      Alcotest.(check bool)
        (Printf.sprintf "%g in [%g, %g)" v lo hi)
        true
        (lo <= v && v < hi))
    (List.sort Float.compare samples)
    buckets

let test_histogram_disabled_and_reset () =
  let h = Metrics.histogram "test.hist.off" in
  Metrics.Histogram.observe h 3.0;
  Alcotest.(check int) "disabled observe dropped" 0 (Metrics.Histogram.count h);
  Metrics.set_enabled true;
  Metrics.Histogram.observe h 3.0;
  Metrics.reset ();
  Alcotest.(check int) "reset empties" 0 (Metrics.Histogram.count h);
  Alcotest.(check bool) "min nan when empty" true
    (Float.is_nan (Metrics.Histogram.min_value h));
  Alcotest.(check bool) "percentile nan when empty" true
    (Float.is_nan (Metrics.Histogram.percentile h 50.0))

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "disabled set dropped" 0.0 (Metrics.Gauge.get g);
  Metrics.set_enabled true;
  Metrics.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "enabled set lands" 2.5 (Metrics.Gauge.get g)

(* --- probes --------------------------------------------------------------- *)

let test_probe () =
  let p = Probe.make ~cat:"test" ~hist:"test.probe.seconds" "probed" in
  Alcotest.(check int) "enter is -1 while both off" (-1) (Probe.enter p);
  Probe.leave p (-1);
  Metrics.set_enabled true;
  Trace.set_enabled true;
  let t0 = Probe.enter p in
  Alcotest.(check bool) "enter reads the clock when on" true (t0 >= 0);
  Probe.leave p t0;
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let h = Metrics.histogram "test.probe.seconds" in
  Alcotest.(check int) "one observation" 1 (Metrics.Histogram.count h);
  Alcotest.(check bool) "non-negative duration" true (Metrics.Histogram.min_value h >= 0.0);
  let evs = Trace.events () in
  Alcotest.(check int) "one span" 1 (List.length evs);
  Alcotest.(check string) "span name" "probed" (List.hd evs).Trace.name

(* --- export --------------------------------------------------------------- *)

let test_chrome_export () =
  Trace.set_enabled true;
  Trace.with_span ~cat:"x" ~args:[ ("quote", "a\"b"); ("nl", "a\nb") ] "escaped" (fun () ->
      Trace.instant "mark");
  Trace.set_enabled false;
  let json = Export.chrome_json () in
  Alcotest.(check bool) "has traceEvents" true
    (String.length json > 0
    && String.sub json 0 16 = "{\"traceEvents\":[");
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "complete event" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "instant event" true (contains "\"ph\":\"i\"");
  Alcotest.(check bool) "thread metadata" true (contains "\"thread_name\"");
  Alcotest.(check bool) "quote escaped" true (contains "a\\\"b");
  Alcotest.(check bool) "newline escaped" true (contains "a\\nb");
  Alcotest.(check bool) "object closed" true
    (String.length json >= 2 && String.sub json (String.length json - 2) 2 = "}\n")

let test_jsonl_export () =
  Trace.set_enabled true;
  Metrics.set_enabled true;
  Trace.with_span "line-span" (fun () -> ());
  Metrics.Counter.incr (Metrics.counter "test.jsonl.counter");
  Metrics.Histogram.observe (Metrics.histogram "test.jsonl.hist") 2.0;
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let lines =
    String.split_on_char '\n' (Export.jsonl ()) |> List.filter (fun l -> l <> "")
  in
  (* one span line + counter + non-empty histogram (empty histograms from
     other registrations are skipped) *)
  List.iter
    (fun l ->
      Alcotest.(check bool) ("line is an object: " ^ l) true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let count_type t =
    List.length
      (List.filter
         (fun l ->
           let needle = Printf.sprintf "{\"type\":\"%s\"" t in
           String.length l >= String.length needle
           && String.sub l 0 (String.length needle) = needle)
         lines)
  in
  Alcotest.(check int) "one span line" 1 (count_type "span");
  Alcotest.(check bool) "counter lines present" true (count_type "counter" >= 1);
  Alcotest.(check int) "one histogram line" 1 (count_type "histogram")

let test_write_dispatch () =
  Trace.set_enabled true;
  Trace.with_span "disk" (fun () -> ());
  Trace.set_enabled false;
  let chrome = Filename.temp_file "obs" ".json" in
  let jsonl = Filename.temp_file "obs" ".jsonl" in
  Export.write ~path:chrome;
  Export.write ~path:jsonl;
  let read p =
    let ic = open_in p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check bool) "chrome file" true (String.length (read chrome) > 20);
  Alcotest.(check bool) "chrome format" true (String.sub (read chrome) 0 1 = "{");
  Alcotest.(check bool) "jsonl format" true (String.sub (read jsonl) 0 8 = "{\"type\":");
  Sys.remove chrome;
  Sys.remove jsonl

let test_summary_render () =
  Metrics.set_enabled true;
  Metrics.Counter.add (Metrics.counter "test.render.counter") 3;
  Metrics.Histogram.observe (Metrics.histogram "test.render.hist") 5.0;
  Metrics.set_enabled false;
  let s = Export.summary () in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter listed" true (contains "test.render.counter");
  Alcotest.(check bool) "histogram listed" true (contains "test.render.hist");
  Alcotest.(check bool) "percentiles rendered" true (contains "p95")

let () =
  let t name f = Alcotest.test_case name `Quick (isolated f) in
  Alcotest.run "obs"
    [
      ( "trace",
        [
          t "disabled records nothing" test_disabled_records_nothing;
          t "span nesting and parentage" test_span_nesting;
          t "exceptions close spans" test_exception_closes_spans;
          t "per-domain buffers merge" test_multi_domain_buffers;
        ] );
      ( "metrics",
        [
          t "counter gating" test_counter_gated;
          t "registry identity and kind clash" test_registry_identity_and_kinds;
          t "histogram statistics" test_histogram_stats;
          t "histogram gating and reset" test_histogram_disabled_and_reset;
          t "gauge" test_gauge;
        ] );
      ("probe", [ t "probe spans and histograms" test_probe ]);
      ( "export",
        [
          t "chrome trace-event JSON" test_chrome_export;
          t "jsonl" test_jsonl_export;
          t "write dispatch by suffix" test_write_dispatch;
          t "metrics summary" test_summary_render;
        ] );
    ]
