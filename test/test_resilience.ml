(* Fault-tolerance tests: cancellation tokens and solver deadlines,
   crash-isolated pool outcomes, the crash-safe persistent store (including
   deliberately corrupted entries), retry/backoff dispatch, the
   fault-injection campaign of ISSUE 7, and telemetry-reset pinning. *)

module Engine = Lattice_engine.Engine
module Pool = Lattice_engine.Pool
module Cache = Lattice_engine.Cache
module Store = Lattice_engine.Store
module Key = Lattice_engine.Key
module Cancel = Lattice_engine.Cancel
module Sp = Lattice_spice

let temp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%06x" prefix (Unix.getpid ()) (Random.bits () land 0xFFFFFF))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let build_netlist ?(m = 0) grid =
  let config = Sp.Lattice_circuit.default_config in
  let vdd = config.Sp.Lattice_circuit.vdd in
  let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
  (Sp.Lattice_circuit.build ~config grid ~stimulus).Sp.Lattice_circuit.netlist

(* --- cancellation tokens -------------------------------------------------- *)

let test_cancel_tokens () =
  Alcotest.(check bool) "none never fires" false (Cancel.is_cancelled Cancel.none);
  Cancel.cancel Cancel.none;
  Alcotest.(check bool) "none ignores cancel" false (Cancel.is_cancelled Cancel.none);
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token quiet" false (Cancel.is_cancelled t);
  Cancel.cancel t;
  (match Cancel.state t with
  | Some Cancel.Requested -> ()
  | _ -> Alcotest.fail "expected Requested after cancel");
  Alcotest.check_raises "check raises Requested" (Cancel.Cancelled Cancel.Requested)
    (fun () -> Cancel.check t);
  (* an already-expired deadline fires as Deadline *)
  let d = Cancel.with_deadline ~seconds:0.0 () in
  (match Cancel.state d with
  | Some Cancel.Deadline -> ()
  | _ -> Alcotest.fail "expected Deadline for a 0 s budget");
  (* a parent firing fires the child *)
  let parent = Cancel.create () in
  let child = Cancel.create ~parent () in
  Alcotest.(check bool) "child quiet" false (Cancel.is_cancelled child);
  Cancel.cancel parent;
  Alcotest.(check bool) "child fires with parent" true (Cancel.is_cancelled child);
  (* of_deadline_s: None passes the parent through, Some makes a deadline *)
  Alcotest.(check bool) "of_deadline_s None is none" true
    (Cancel.of_deadline_s None == Cancel.none);
  Alcotest.(check bool) "of_deadline_s Some 0 fires" true
    (Cancel.is_cancelled (Cancel.of_deadline_s (Some 0.0)))

let test_solver_deadline () =
  let netlist = build_netlist Lattice_synthesis.Library.maj3_2x3 in
  (* a healthy solve under no deadline *)
  (match Sp.Dcop.solve_diag netlist with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "maj3 should converge");
  (* an expired deadline aborts the whole ladder with Cancelled, not a
     convergence failure *)
  let cancel = Cancel.with_deadline ~seconds:0.0 () in
  Alcotest.check_raises "solve_diag honors the deadline"
    (Cancel.Cancelled Cancel.Deadline) (fun () ->
      ignore (Sp.Dcop.solve_diag ~cancel netlist));
  (* transient too *)
  Alcotest.check_raises "run_diag honors the deadline"
    (Cancel.Cancelled Cancel.Deadline) (fun () ->
      ignore
        (Sp.Transient.run_diag ~cancel netlist ~h:1e-9 ~t_stop:1e-8 ~record:[ "out" ] ()))

(* --- pool outcomes -------------------------------------------------------- *)

let outcome_label = function
  | Pool.Done _ -> "done"
  | Pool.Failed _ -> "failed"
  | Pool.Timed_out -> "timed-out"
  | Pool.Cancelled -> "cancelled"

let test_pool_outcomes () =
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let out =
        Pool.map_outcomes pool ~n:20 (fun i ->
            if i mod 7 = 3 then failwith "boom"
            else if i = 11 then raise (Cancel.Cancelled Cancel.Deadline)
            else if i = 12 then raise (Cancel.Cancelled Cancel.Requested)
            else i * i)
      in
      Array.iteri
        (fun i o ->
          let expect =
            if i mod 7 = 3 then "failed"
            else if i = 11 then "timed-out"
            else if i = 12 then "cancelled"
            else "done"
          in
          Alcotest.(check string)
            (Printf.sprintf "job %d (%d domains)" i domains)
            expect (outcome_label o);
          match o with
          | Pool.Done v -> Alcotest.(check int) "value merged by index" (i * i) v
          | Pool.Failed e ->
            Alcotest.(check bool) "exception text captured" true
              (String.length e.Pool.printed > 0)
          | Pool.Timed_out | Pool.Cancelled -> ())
        out)
    [ 1; 2; 4 ]

let test_pool_batch_cancel () =
  (* a pre-fired batch token: nothing runs, every job is Cancelled *)
  let pool = Pool.create ~domains:2 () in
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  let ran = Atomic.make 0 in
  let out =
    Pool.map_outcomes pool ~cancel ~n:50 (fun i ->
        Atomic.incr ran;
        i)
  in
  Alcotest.(check int) "no job ran" 0 (Atomic.get ran);
  Alcotest.(check bool) "all cancelled" true
    (Array.for_all (function Pool.Cancelled -> true | _ -> false) out)

let test_chunked_parity () =
  (* the adaptive-chunk claimer must stay index-merged at awkward sizes *)
  Alcotest.(check int) "small batch: per-job claims" 1 (Pool.chunk_size ~domains:4 ~n:20);
  Alcotest.(check int) "large batch: amortized claims" 31 (Pool.chunk_size ~domains:4 ~n:1000);
  let f i = (i * 31) land 1023 in
  List.iter
    (fun n ->
      let expected = Array.init n f in
      List.iter
        (fun domains ->
          let pool = Pool.create ~domains () in
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d domains=%d" n domains)
            expected (Pool.map pool ~n f))
        [ 1; 2; 4 ])
    [ 7; 64; 1000 ]

(* --- persistent store ----------------------------------------------------- *)

let test_store_roundtrip () =
  let dir = temp_dir "ftl-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s : (string * float array) Store.t = Store.open_ ~dir in
  Alcotest.(check (option (pair string (array (float 0.0))))) "miss on empty" None
    (Store.find s ~key:"k1");
  Store.add s ~key:"k1" ("payload", [| 1.5; -2.25 |]);
  Alcotest.(check (option (pair string (array (float 0.0))))) "hit after add"
    (Some ("payload", [| 1.5; -2.25 |]))
    (Store.find s ~key:"k1");
  (* a second store over the same directory sees the entry (the
     cross-process warm-cache path) *)
  let s2 : (string * float array) Store.t = Store.open_ ~dir in
  Alcotest.(check (option (pair string (array (float 0.0))))) "fresh handle hits"
    (Some ("payload", [| 1.5; -2.25 |]))
    (Store.find s2 ~key:"k1");
  let st = Store.stats s in
  Alcotest.(check int) "one miss" 1 st.Store.misses;
  Alcotest.(check int) "one hit" 1 st.Store.hits;
  Alcotest.(check int) "one write" 1 st.Store.writes;
  Alcotest.(check int) "no corruption" 0 st.Store.corrupt

let corrupt_file path =
  let oc = open_out_bin path in
  output_string oc "FTLSTORE1\nnot the right key at all\ngarbage follows\n\xde\xad\xbe\xef";
  close_out oc

let test_store_corruption () =
  let dir = temp_dir "ftl-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s : int Store.t = Store.open_ ~dir in
  Store.add s ~key:"victim" 42;
  Alcotest.(check (option int)) "entry readable" (Some 42) (Store.find s ~key:"victim");
  (* smash the entry file in place: header garbage *)
  corrupt_file (Store.entry_path s ~key:"victim");
  Alcotest.(check (option int)) "corrupt entry is a miss, not a crash" None
    (Store.find s ~key:"victim");
  Alcotest.(check bool) "corrupt file dropped" false
    (Sys.file_exists (Store.entry_path s ~key:"victim"));
  (* truncated payload: valid header, cut body *)
  Store.add s ~key:"victim" 42;
  let path = Store.entry_path s ~key:"victim" in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 3)));
  Alcotest.(check (option int)) "truncated entry is a miss" None (Store.find s ~key:"victim");
  let st = Store.stats s in
  Alcotest.(check int) "both corruptions counted" 2 st.Store.corrupt;
  Alcotest.(check int) "no raw IO errors" 0 st.Store.errors;
  (* the slot heals on the next write *)
  Store.add s ~key:"victim" 43;
  Alcotest.(check (option int)) "healed" (Some 43) (Store.find s ~key:"victim")

let test_cache_spill_and_fallback () =
  let dir = temp_dir "ftl-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s : int Store.t = Store.open_ ~dir in
  let mk () =
    Cache.create ~capacity:4
      ~fallback:(fun key -> Store.find s ~key)
      ~spill:(fun key v -> Store.add s ~key v)
      ()
  in
  let c = mk () in
  (* adds spill through; an eviction therefore loses nothing *)
  for i = 0 to 7 do
    Cache.add c ~key:(string_of_int i) (i * 10)
  done;
  let cs = Cache.stats c in
  Alcotest.(check int) "evictions happened" 4 cs.Cache.evictions;
  Alcotest.(check int) "every add spilled once" 8 (Store.stats s).Store.writes;
  (* evicted key 0 comes back via the fallback and is promoted *)
  Alcotest.(check (option int)) "evicted key restored from disk" (Some 0)
    (Cache.find c ~key:"0");
  Alcotest.(check int) "promotion does not re-spill" 8 (Store.stats s).Store.writes;
  (* duplicate add does not double-spill *)
  Cache.add c ~key:"0" 999;
  Alcotest.(check int) "first write wins, no re-spill" 8 (Store.stats s).Store.writes;
  (* a fresh (cold) cache over the same store starts warm *)
  let c2 = mk () in
  Alcotest.(check (option int)) "cold cache, warm store" (Some 70) (Cache.find c2 ~key:"7");
  Alcotest.(check int) "facade counts it as a hit" 1 (Cache.stats c2).Cache.hits

let test_store_hammering () =
  (* 4 domains hammering a tiny cache over one store, with one entry
     corrupted mid-flight: every lookup must come back correct, the only
     symptom a corruption count *)
  let dir = temp_dir "ftl-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s : int Store.t = Store.open_ ~dir in
  let c =
    Cache.create ~capacity:3
      ~fallback:(fun key -> Store.find s ~key)
      ~spill:(fun key v -> Store.add s ~key v)
      ()
  in
  let keys = Array.init 16 string_of_int in
  Array.iteri (fun i key -> Cache.add c ~key (i * 100)) keys;
  corrupt_file (Store.entry_path s ~key:"5");
  let pool = Pool.create ~domains:4 () in
  let out =
    Pool.map_outcomes pool ~n:400 (fun i ->
        let k = i mod 16 in
        match Cache.find c ~key:keys.(k) with
        | Some v -> v
        | None ->
          (* the corrupted entry, evicted from memory: recompute and
             re-spill, exactly what the engine does on a miss *)
          let v = k * 100 in
          Cache.add c ~key:keys.(k) v;
          v)
  in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) (Printf.sprintf "lookup %d" i) (i mod 16 * 100) v
      | _ -> Alcotest.failf "lookup %d did not complete: %s" i (outcome_label o))
    out;
  Alcotest.(check bool) "at most one corruption seen" true ((Store.stats s).Store.corrupt <= 1)

(* --- engine: retry/backoff and fault injection ----------------------------- *)

let test_run_jobs_fault_injection () =
  (* the ISSUE 7 acceptance campaign: 200 jobs, injected worker
     exceptions, one stalled job exceeding its deadline, one corrupted
     persistent-cache entry — everything classified, nothing escapes *)
  let dir = temp_dir "ftl-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let netlists = Array.init 8 (fun m -> build_netlist ~m grid) in
  (* seed the store, then corrupt one entry on disk *)
  let seeder = Engine.create ~domains:1 ~store_dir:dir () in
  Array.iter (fun nl -> ignore (Engine.dc_op seeder nl)) netlists;
  let seeded_writes = (Option.get (Engine.telemetry seeder).Engine.store).Store.writes in
  Alcotest.(check int) "store seeded" 8 seeded_writes;
  corrupt_file
    (let key = Key.dc_op netlists.(3) in
     match Engine.store_dir seeder with
     | Some d -> Store.entry_path (Store.open_ ~dir:d) ~key
     | None -> Alcotest.fail "store not wired");
  (* fresh engine, cold memory, warm-but-damaged disk *)
  let e = Engine.create ~domains:4 ~store_dir:dir () in
  let fail_always i = i mod 41 = 7 (* 7 48 89 130 171 *) in
  let fail_first i = i mod 53 = 11 (* 11 64 117 170 *) in
  let stalled = 100 in
  let policy = { Engine.deadline_s = Some 0.25; attempts = 2; backoff = 2.0 } in
  let out =
    Engine.run_jobs e ~policy ~phase:"fault-injection" ~n:200
      (fun ~attempt ~cancel i ->
        if fail_always i then failwith (Printf.sprintf "injected crash %d" i)
        else if fail_first i && attempt = 0 then failwith "transient crash"
        else if i = stalled then
          (* a stall: never returns, only the deadline stops it *)
          let rec spin () =
            Cancel.check cancel;
            spin ()
          in
          spin ()
        else
          match Engine.dc_op e ~cancel netlists.(i mod 8) with
          | Ok (x, _) -> x.(0)
          | Error _ -> Alcotest.fail "maj3 state should converge")
  in
  Alcotest.(check int) "every job classified" 200 (Array.length out);
  let count p = Array.fold_left (fun a o -> if p o then a + 1 else a) 0 out in
  Alcotest.(check int) "crashing jobs Failed" 5
    (count (function Pool.Failed _ -> true | _ -> false));
  Alcotest.(check int) "stalled job Timed_out" 1
    (count (function Pool.Timed_out -> true | _ -> false));
  Alcotest.(check int) "the rest Done (transient crashes recovered)" 194
    (count (function Pool.Done _ -> true | _ -> false));
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Failed e when fail_always i ->
        Alcotest.(check bool) "crash text preserved" true
          (String.length e.Pool.printed > 0)
      | _ -> ())
    out;
  let t = Engine.telemetry e in
  (* retried: 5 permanent failures + 4 transient failures + 1 stall *)
  Alcotest.(check int) "retries counted" 10 t.Engine.retries;
  Alcotest.(check int) "timeouts are final outcomes" 1 t.Engine.timeouts;
  Alcotest.(check int) "failures are final outcomes" 5 t.Engine.job_failures;
  Alcotest.(check int) "job attempts counted" 210 t.Engine.jobs;
  (match t.Engine.store with
  | None -> Alcotest.fail "store telemetry missing"
  | Some st ->
    (* concurrent readers may each see the smashed file before the first
       detection deletes it: at least one, never zero, never a crash *)
    Alcotest.(check bool) "smashed entry detected corrupt" true (st.Store.corrupt >= 1));
  (* only the corrupted state needed re-solving; concurrent misses on
     that one key may duplicate the solve (benign, documented), so the
     count is 1..domains *)
  Alcotest.(check bool)
    (Printf.sprintf "re-solves behind the corruption bounded (%d)" t.Engine.dc_solves)
    true
    (t.Engine.dc_solves >= 1 && t.Engine.dc_solves <= 4)

let test_retryable_done () =
  (* Done values the caller deems retryable are re-run with the attempt
     number advancing — the campaign's escalating-budget hook *)
  let e = Engine.create ~domains:2 () in
  let out =
    Engine.run_jobs e ~policy:{ Engine.default_policy with attempts = 3 }
      ~retryable:(fun v -> v < 0) ~n:6
      (fun ~attempt ~cancel:_ i -> if i = 4 && attempt < 2 then -1 else (100 * i) + attempt)
  in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v ->
        let expect = if i = 4 then 402 else 100 * i in
        Alcotest.(check int) (Printf.sprintf "job %d settled" i) expect v
      | _ -> Alcotest.failf "job %d not Done" i)
    out;
  let t = Engine.telemetry e in
  Alcotest.(check int) "two escalations" 2 t.Engine.retries;
  Alcotest.(check int) "no failures" 0 t.Engine.job_failures

let test_run_jobs_batch_cancel () =
  let e = Engine.create ~domains:2 () in
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  let out =
    Engine.run_jobs e ~cancel ~policy:{ Engine.default_policy with attempts = 3 } ~n:10
      (fun ~attempt:_ ~cancel:_ i -> i)
  in
  Alcotest.(check bool) "all cancelled" true
    (Array.for_all (function Pool.Cancelled -> true | _ -> false) out);
  Alcotest.(check int) "cancelled jobs never retried" 0 (Engine.telemetry e).Engine.retries

(* --- telemetry reset pinning ----------------------------------------------- *)

let test_reset_telemetry_pins_new_counters () =
  let dir = temp_dir "ftl-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let e = Engine.create ~domains:2 ~store_dir:dir () in
  let netlist = build_netlist Lattice_synthesis.Library.maj3_2x3 in
  ignore (Engine.dc_op e netlist);
  ignore (Engine.dc_op e netlist);
  ignore
    (Engine.run_jobs e
       ~policy:{ Engine.deadline_s = Some 0.05; attempts = 2; backoff = 2.0 }
       ~n:4
       (fun ~attempt:_ ~cancel ->
         function
         | 0 -> failwith "boom"
         | 1 ->
           let rec spin () =
             Cancel.check cancel;
             spin ()
           in
           spin ()
         | i -> i));
  let t = Engine.telemetry e in
  Alcotest.(check bool) "retries accrued" true (t.Engine.retries > 0);
  Alcotest.(check int) "timeout accrued" 1 t.Engine.timeouts;
  Alcotest.(check int) "failure accrued" 1 t.Engine.job_failures;
  Alcotest.(check bool) "store writes accrued" true
    ((Option.get t.Engine.store).Store.writes > 0);
  Engine.reset_telemetry e;
  let z = Engine.telemetry e in
  Alcotest.(check int) "jobs zero" 0 z.Engine.jobs;
  Alcotest.(check int) "dc_solves zero" 0 z.Engine.dc_solves;
  Alcotest.(check int) "newton zero" 0 z.Engine.newton_total;
  Alcotest.(check int) "retries zero" 0 z.Engine.retries;
  Alcotest.(check int) "timeouts zero" 0 z.Engine.timeouts;
  Alcotest.(check int) "job_failures zero" 0 z.Engine.job_failures;
  Alcotest.(check int) "cache hits zero" 0 z.Engine.cache.Cache.hits;
  Alcotest.(check int) "cache misses zero" 0 z.Engine.cache.Cache.misses;
  (match z.Engine.store with
  | None -> Alcotest.fail "store telemetry lost by reset"
  | Some st ->
    Alcotest.(check int) "store hits zero" 0 st.Store.hits;
    Alcotest.(check int) "store misses zero" 0 st.Store.misses;
    Alcotest.(check int) "store writes zero" 0 st.Store.writes;
    Alcotest.(check int) "store corrupt zero" 0 st.Store.corrupt);
  Alcotest.(check (list (pair string (float 0.0)))) "phases zero" [] z.Engine.phases;
  (* contents survive: the old entry still hits without a re-solve *)
  ignore (Engine.dc_op e netlist);
  let w = Engine.telemetry e in
  Alcotest.(check int) "cache entry survived the reset" 1 w.Engine.cache.Cache.hits;
  Alcotest.(check int) "no re-solve" 0 w.Engine.dc_solves;
  (* live gauges: publish_gauges mirrors telemetry, reset republishes zeros *)
  let module Metrics = Lattice_obs.Metrics in
  let metrics_were_on = Metrics.on () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled metrics_were_on) @@ fun () ->
  Engine.publish_gauges e;
  let g name = Metrics.Gauge.get (Metrics.gauge ("engine.live." ^ name)) in
  Alcotest.(check (float 0.0)) "live cache_hits gauge" 1.0 (g "cache_hits");
  Alcotest.(check (float 0.0)) "live dc_solves gauge" 0.0 (g "dc_solves");
  Alcotest.(check (float 0.0)) "live store_writes gauge" 0.0 (g "store_writes");
  ignore (Engine.dc_op e (build_netlist ~m:1 Lattice_synthesis.Library.maj3_2x3));
  Engine.publish_gauges e;
  Alcotest.(check (float 0.0)) "live dc_solves gauge tracks" 1.0 (g "dc_solves");
  Alcotest.(check (float 0.0)) "live store_writes gauge tracks" 1.0 (g "store_writes");
  Engine.reset_telemetry e;
  Alcotest.(check (float 0.0)) "reset republishes zero hits" 0.0 (g "cache_hits");
  Alcotest.(check (float 0.0)) "reset republishes zero solves" 0.0 (g "dc_solves")

(* --- flow-level classification --------------------------------------------- *)

let test_campaign_deadline_classified () =
  (* an unmeetable per-job deadline turns every sample into a classified
     Non_convergent ("deadline exceeded") — the campaign still reports
     every sample and raises nothing *)
  let module Fc = Lattice_flow.Fault_campaign in
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let target = Lattice_boolfn.Truthtable.majority_n 3 in
  let e = Engine.create ~domains:2 () in
  let policy = { Engine.deadline_s = Some 1e-9; attempts = 1; backoff = 2.0 } in
  let rep =
    Fc.run ~engine:e ~policy
      ~options:{ Fc.default_options with Fc.attempt_repair = false }
      grid ~target
  in
  Alcotest.(check bool) "samples reported" true (Array.length rep.Fc.samples > 0);
  Alcotest.(check int) "every sample classified non-convergent"
    (Array.length rep.Fc.samples) rep.Fc.counts.Fc.non_convergent;
  Array.iter
    (fun s ->
      match s.Fc.failure with
      | Some f ->
        Alcotest.(check string) "reason recorded" "deadline exceeded" f.Sp.Dcop.message
      | None -> Alcotest.fail "non-convergent sample without failure record")
    rep.Fc.samples;
  Alcotest.(check int) "timeouts counted" (Array.length rep.Fc.samples)
    (Engine.telemetry e).Engine.timeouts

let test_monte_carlo_fault_scoring () =
  (* yield analysis under an unmeetable deadline: dies score as failed,
     the run completes *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let target = Lattice_boolfn.Truthtable.majority_n 3 in
  let e = Engine.create ~domains:2 () in
  let policy = { Engine.deadline_s = Some 1e-9; attempts = 1; backoff = 2.0 } in
  let mc = Lattice_flow.Monte_carlo.run ~engine:e ~policy ~samples:8 grid ~target in
  Alcotest.(check (float 0.0)) "zero yield, zero exceptions" 0.0 mc.Lattice_flow.Monte_carlo.yield;
  Alcotest.(check int) "all dies scored" 8 (Array.length mc.Lattice_flow.Monte_carlo.outcomes)

(* --- soak ------------------------------------------------------------------ *)

let test_soak_steady_memory () =
  (* thousands of mixed jobs through the retrying dispatcher: memory must
     reach a steady state (no leak proportional to job count) and every
     job must classify. Tracing accumulates events by design, so it is
     suspended for the duration — its buffer is not a leak. *)
  let trace_was_on = Lattice_obs.Trace.on () in
  Lattice_obs.Trace.set_enabled false;
  Fun.protect ~finally:(fun () -> Lattice_obs.Trace.set_enabled trace_was_on) @@ fun () ->
  let e = Engine.create ~domains:4 () in
  let round r =
    let out =
      Engine.run_jobs e
        ~policy:{ Engine.default_policy with attempts = 2 }
        ~n:400
        (fun ~attempt ~cancel:_ i ->
          if i mod 97 = 13 && attempt = 0 then failwith "flaky"
          else if i mod 119 = 17 then raise (Cancel.Cancelled Cancel.Deadline)
          else Array.make 64 (float_of_int (i + r)))
    in
    Alcotest.(check int) "all classified" 400 (Array.length out);
    Array.iter
      (function
        | Pool.Done _ | Pool.Timed_out -> ()
        | Pool.Failed e -> Alcotest.failf "unexpected failure: %s" e.Pool.printed
        | Pool.Cancelled -> Alcotest.fail "unexpected cancellation")
      out
  in
  (* warm up, then measure live words across the remaining rounds *)
  round 0;
  round 1;
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  for r = 2 to 11 do
    round r
  done;
  Gc.compact ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let growth = float_of_int (live1 - live0) /. float_of_int live0 in
  Alcotest.(check bool)
    (Printf.sprintf "live heap steady after 4000 jobs (growth %.1f%%)" (100.0 *. growth))
    true
    (growth < 0.5)

let () =
  Alcotest.run "resilience"
    [
      ( "cancel",
        [
          Alcotest.test_case "tokens, deadlines, parents" `Quick test_cancel_tokens;
          Alcotest.test_case "solver deadlines" `Quick test_solver_deadline;
        ] );
      ( "pool",
        [
          Alcotest.test_case "outcome classification" `Quick test_pool_outcomes;
          Alcotest.test_case "batch cancel" `Quick test_pool_batch_cancel;
          Alcotest.test_case "chunked claiming parity" `Quick test_chunked_parity;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip + cross-handle reads" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption detected, never raised" `Quick test_store_corruption;
          Alcotest.test_case "cache spill + fallback" `Quick test_cache_spill_and_fallback;
          Alcotest.test_case "4-domain hammering with a corrupt entry" `Quick
            test_store_hammering;
        ] );
      ( "engine",
        [
          Alcotest.test_case "200-job fault-injection campaign" `Quick
            test_run_jobs_fault_injection;
          Alcotest.test_case "retryable Done escalation" `Quick test_retryable_done;
          Alcotest.test_case "batch cancel skips retries" `Quick test_run_jobs_batch_cancel;
          Alcotest.test_case "reset_telemetry pins every counter" `Quick
            test_reset_telemetry_pins_new_counters;
        ] );
      ( "flow",
        [
          Alcotest.test_case "campaign classifies deadlines" `Quick
            test_campaign_deadline_classified;
          Alcotest.test_case "monte-carlo scores faulted dies" `Quick
            test_monte_carlo_fault_scoring;
        ] );
      ( "soak",
        [ Alcotest.test_case "steady memory over 4800 jobs" `Quick test_soak_steady_memory ] );
    ]
