(* Tests for the SPICE deck interop subsystem (lib/deck): lexer/parser
   error reporting, emitter idempotence, digest stability across the
   text boundary, and deck-vs-programmatic engine parity. *)

module Sp = Lattice_spice
module Deck = Lattice_deck.Deck
module Runner = Lattice_deck.Runner

let parse_ok src =
  match Deck.parse src with
  | Ok d -> d
  | Error e -> Alcotest.failf "unexpected parse error %s" (Deck.error_to_string e)

let parse_err src =
  match Deck.parse src with
  | Ok _ -> Alcotest.failf "deck unexpectedly parsed:\n%s" src
  | Error e -> e

(* --- corpus ------------------------------------------------------------- *)

(* small hand decks exercising each card type; the larger on-disk corpus
   in examples/decks/ is covered by the roundtrip test below *)
let corpus =
  [
    ( "divider",
      "divider\nv1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n.op\n.end\n" );
    ( "continuations and comments",
      "* title line\n\
       r1 a 0 1k ; inline\n\
       V1 a 0 PULSE(0 1\n\
       + 0 1n 1n\n\
       + 5n 10n)\n\
       * full-line comment\n\
       .tran 1n 10n $ another\n\
       .print tran v(a)\n\
       .end\n" );
    ( "mosfet with model",
      "inv\n\
       .model mn nmos (level=1 kp=17.7u vto=155m lambda=0.05)\n\
       vdd vdd 0 dc 1.2\n\
       vin in 0 dc 0.6\n\
       rl vdd out 500k\n\
       m1 out in 0 0 mn w=0.7u l=0.35u\n\
       .op\n\
       .dc vin 0 1.2 0.3\n\
       .print v(out)\n\
       .end\n" );
    ( "subckt flattening",
      "ladder\n\
       .subckt stage in out r=1k c=1n\n\
       rs in out {r}\n\
       cs out 0 {c}\n\
       .ends\n\
       vin src 0 dc 1 ac 1\n\
       x1 src mid stage\n\
       x2 mid out stage r=2k\n\
       .ac dec 5 1 1meg\n\
       .print ac v(out)\n\
       .end\n" );
    ( "sin source and current source",
      "sin\nvs a 0 sin(0.6 0.5 1meg 1n 1k)\nis 0 b 1m\nrb b 0 1k\nra a 0 1k\n.op\n.end\n" );
    ( "pwl and level 3",
      "pwl\n\
       .model m3 nmos (level=3 kp=20u vto=0.2 kappa=0.04 theta=0.12 vmax=1.2e5)\n\
       vg g 0 pwl(0 0 1u 1.2)\n\
       vd d 0 dc 1.2\n\
       m1 d g 0 0 m3 w=1u l=0.5u\n\
       .op\n\
       .end\n" );
  ]

let disk_corpus () =
  (* dune copies the deps next to the test binary; skip quietly if a
     deck is absent so the unit tests do not depend on example layout *)
  List.filter_map
    (fun f ->
      let path = Filename.concat "../examples/decks" f in
      if Sys.file_exists path then
        Some (f, In_channel.with_open_bin path In_channel.input_all)
      else None)
    [ "inverter.sp"; "xor3.sp"; "rc_ladder.sp"; "lattice_4x4.sp" ]

let test_roundtrip_idempotent () =
  List.iter
    (fun (name, src) ->
      let d = parse_ok src in
      let once = Deck.emit d in
      let d2 =
        match Deck.parse once with
        | Ok d2 -> d2
        | Error e ->
          Alcotest.failf "%s: canonical form fails to reparse: %s" name
            (Deck.error_to_string e)
      in
      let twice = Deck.emit d2 in
      Alcotest.(check string) (name ^ ": emit is a fixed point") once twice;
      Alcotest.(check string)
        (name ^ ": digest survives the text boundary")
        (Sp.Netlist.structural_digest d.Deck.netlist)
        (Sp.Netlist.structural_digest d2.Deck.netlist))
    (corpus @ disk_corpus ())

let test_emitter_deterministic () =
  let src = snd (List.nth corpus 2) in
  let a = Deck.emit (parse_ok src) in
  let b = Deck.emit (parse_ok src) in
  Alcotest.(check string) "same deck emits identical bytes" a b

(* --- parse errors -------------------------------------------------------- *)

let test_parse_error_table () =
  let cases =
    [
      (* (description, deck, expected line, expected col, substring) *)
      ("empty", "", 1, 1, "title");
      ("continuation first", "t\n+ r1 a 0 1k\n.end\n", 2, 1, "nothing to continue");
      ("unknown card", "t\n.quux 1 2\n.end\n", 2, 1, "unknown card");
      ("unsupported element", "t\nq1 a b c\n.end\n", 2, 1, "unsupported card");
      ("bad node on m", "t\n.model mn nmos (level=1)\nm1 out in 0 vdd mn\n.end\n", 3, 13, "bulk");
      ("duplicate element", "t\nr1 a 0 1k\nr1 a 0 2k\n.end\n", 3, 1, "duplicate element");
      ("unterminated subckt", "t\n.subckt s a b\nr1 a b 1k\n.end\n", 2, 1, ".ends");
      ("nested subckt", "t\n.subckt s a b\n.subckt t a b\n.ends\n.ends\n.end\n", 3, 1, "nested");
      ("unknown model", "t\nm1 d g 0 0 nosuch\n.end\n", 2, 12, "unknown model");
      ("bad value", "t\nr1 a 0 12q3\n.end\n", 2, 8, "value");
      ("dc of unknown source", "t\nr1 a 0 1k\n.dc vx 0 1 0.1\n.end\n", 3, 5, "unknown voltage source");
      ("dc zero step", "t\nv1 a 0 dc 1\nr1 a 0 1k\n.dc v1 0 1 0\n.end\n", 4, 12, "step");
      ("tran bad stop", "t\nr1 a 0 1k\n.tran 1n 0\n.end\n", 3, 10, "positive");
      ("print unknown node", "t\nr1 a 0 1k\n.print v(b)\n.end\n", 3, 10, "unknown node");
      ("ac without source", "t\nr1 a 0 1k\n.ac dec 10 1 1k\n.end\n", 3, 1, "AC source");
      ("unterminated paren", "t\nv1 a 0 pulse(0 1 0 1n 1n 5n 10n\n.end\n", 2, 8, "')'");
      ("missing .end is fine", "t\nr1 a 0 1k\n", 0, 0, "");
    ]
  in
  List.iter
    (fun (what, src, line, col, sub) ->
      if line = 0 then ignore (parse_ok src)
      else begin
        let e = parse_err src in
        Alcotest.(check int) (what ^ ": line") line e.Deck.line;
        Alcotest.(check int) (what ^ ": col") col e.Deck.col;
        let lower_msg = String.lowercase_ascii e.Deck.msg in
        let lower_sub = String.lowercase_ascii sub in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          nn = 0 || go 0
        in
        if not (contains lower_msg lower_sub) then
          Alcotest.failf "%s: message %S lacks %S" what e.Deck.msg sub
      end)
    cases

let test_errors_never_escape () =
  (* seeded mutation fuzz: random edits of a valid deck must yield
     Ok or Error, never an exception *)
  let base = snd (List.nth corpus 2) in
  let st = Random.State.make [| 0x5eed |] in
  for _ = 1 to 500 do
    let b = Bytes.of_string base in
    let mutations = 1 + Random.State.int st 4 in
    for _ = 1 to mutations do
      let i = Random.State.int st (Bytes.length b) in
      match Random.State.int st 3 with
      | 0 -> Bytes.set b i (Char.chr (32 + Random.State.int st 95))
      | 1 -> Bytes.set b i '\n'
      | _ -> Bytes.set b i ' '
    done;
    match Deck.parse (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "parse raised %s on:\n%s" (Printexc.to_string e) (Bytes.to_string b)
  done

(* --- engine parity ------------------------------------------------------- *)

(* The deck path and the programmatic path must agree bit-for-bit: same
   digest (hence same cache key) and the same dc_op solution. *)
let test_export_parse_digest_and_dc_op_parity () =
  let tt = Lattice_boolfn.Truthtable.create 3 (fun m -> 0b11101000 land (1 lsl m) <> 0) in
  let r = Lattice_synthesis.Altun_riedel.synthesize tt in
  let lc =
    Sp.Lattice_circuit.build r.Lattice_synthesis.Altun_riedel.grid
      ~stimulus:(fun v -> Sp.Source.Dc (if v = 0 then 1.2 else 0.0))
  in
  let net = lc.Sp.Lattice_circuit.netlist in
  let deck =
    Deck.of_netlist ~title:"parity" ~analyses:[ Deck.Op ]
      ~prints:[ Deck.Vprobe lc.Sp.Lattice_circuit.output_node ]
      net
  in
  let reparsed = parse_ok (Deck.emit deck) in
  Alcotest.(check string) "digest preserved by export -> parse"
    (Sp.Netlist.structural_digest net)
    (Sp.Netlist.structural_digest reparsed.Deck.netlist);
  let engine = Lattice_engine.Engine.create () in
  let solve n =
    match Lattice_engine.Engine.dc_op engine n with
    | Ok (x, _) -> x
    | Error f -> Alcotest.failf "dc_op failed: %s" (Sp.Dcop.pp_failure f)
  in
  let x1 = solve net in
  let x2 = solve reparsed.Deck.netlist in
  let out1 = Sp.Mna.voltage x1 (Sp.Netlist.node net lc.Sp.Lattice_circuit.output_node) in
  let out2 =
    Sp.Mna.voltage x2
      (Sp.Netlist.node reparsed.Deck.netlist lc.Sp.Lattice_circuit.output_node)
  in
  Alcotest.(check (float 1e-12)) "dc_op output parity" out1 out2;
  (* same digest means the second solve was a cache hit, not a solve *)
  let tel = Lattice_engine.Engine.telemetry engine in
  Alcotest.(check int) "one physical solve" 1 tel.Lattice_engine.Engine.dc_solves;
  Alcotest.(check int) "one cache hit" 1 tel.Lattice_engine.Engine.cache.Lattice_engine.Cache.hits

let test_runner_smoke () =
  let d = parse_ok (snd (List.nth corpus 2)) in
  let engine = Lattice_engine.Engine.create () in
  match Runner.run ~engine ~smoke:true d with
  | Error msg -> Alcotest.failf "runner failed: %s" msg
  | Ok r ->
    Alcotest.(check int) "two analyses" 2 (List.length r.Runner.results);
    (match r.Runner.results with
    | (_, Runner.Op_result { rows; _ }) :: (_, Runner.Dc_result { rows = sweep; _ }) :: _ ->
      Alcotest.(check int) "op probes v(out)" 1 (List.length rows);
      Alcotest.(check int) "smoke caps sweep to 5" 5 (List.length sweep)
    | _ -> Alcotest.fail "unexpected result shapes");
    let transcript = Runner.render r in
    Alcotest.(check bool) "render mentions digest" true
      (String.length transcript > 0
      && String.sub transcript 0 5 = "deck:")

let test_runner_limits () =
  let d = parse_ok "t\nv1 a 0 dc 0\nr1 a 0 1k\n.dc v1 0 1 1u\n.end\n" in
  let engine = Lattice_engine.Engine.create () in
  let limits = { Runner.max_sweep_points = 100; max_tran_steps = 100 } in
  match Runner.run ~engine ~limits d with
  | Ok _ -> Alcotest.fail "oversized sweep should be rejected"
  | Error msg ->
    Alcotest.(check bool) "limit error names the cap" true
      (String.length msg > 0 && msg.[0] = 'd' (* "dc sweep has ..." *))

let () =
  Alcotest.run "deck"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "emit/parse idempotent over corpus" `Quick
            test_roundtrip_idempotent;
          Alcotest.test_case "emitter deterministic" `Quick test_emitter_deterministic;
        ] );
      ( "errors",
        [
          Alcotest.test_case "line/col error table" `Quick test_parse_error_table;
          Alcotest.test_case "mutation fuzz never raises" `Quick test_errors_never_escape;
        ] );
      ( "engine",
        [
          Alcotest.test_case "export->parse digest + dc_op parity" `Quick
            test_export_parse_digest_and_dc_op_parity;
          Alcotest.test_case "runner smoke" `Quick test_runner_smoke;
          Alcotest.test_case "runner limits" `Quick test_runner_limits;
        ] );
    ]
