(* Unit and property tests for the numerical substrate. *)

module Vec = Lattice_numerics.Vec
module Matrix = Lattice_numerics.Matrix
module Lu = Lattice_numerics.Lu
module Sparse = Lattice_numerics.Sparse
module Cg = Lattice_numerics.Cg
module Mg = Lattice_numerics.Multigrid
module Stats = Lattice_numerics.Stats
module Interp = Lattice_numerics.Interp
module Optimize = Lattice_numerics.Optimize

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

(* --- Vec --------------------------------------------------------------- *)

let test_vec_dot () =
  check_float "dot" 32.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  check_float "dot empty" 0.0 (Vec.dot [||] [||])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy 2.0 [| 3.0; 4.0 |] y;
  check_float "axpy 0" 7.0 y.(0);
  check_float "axpy 1" 9.0 y.(1)

let test_vec_norms () =
  check_float "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 4.0 (Vec.norm_inf [| 3.0; -4.0 |]);
  check_float "max_abs_diff" 2.0 (Vec.max_abs_diff [| 1.0; 5.0 |] [| 3.0; 5.0 |])

let test_vec_linspace () =
  let v = Vec.linspace 0.0 5.0 11 in
  check_float "first" 0.0 v.(0);
  check_float "last" 5.0 v.(10);
  check_float "middle" 2.5 v.(5);
  Alcotest.check_raises "linspace n=1" (Invalid_argument "Vec.linspace: need at least 2 points")
    (fun () -> ignore (Vec.linspace 0.0 1.0 1))

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: length mismatch (2 vs 3)")
    (fun () -> ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let float_array_gen =
  QCheck2.Gen.(array_size (int_range 1 20) (float_range (-100.0) 100.0))

let prop_dot_symmetric =
  QCheck2.Test.make ~name:"Vec.dot is symmetric" ~count:200 float_array_gen (fun a ->
      let b = Array.map (fun x -> x +. 1.0) a in
      Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-6)

let prop_triangle_inequality =
  QCheck2.Test.make ~name:"Vec triangle inequality" ~count:200 float_array_gen (fun a ->
      let b = Array.map (fun x -> (2.0 *. x) -. 3.0) a in
      Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-6)

(* --- Matrix ------------------------------------------------------------ *)

let test_matrix_identity () =
  let i3 = Matrix.identity 3 in
  let v = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "I v = v" v (Matrix.mat_vec i3 v)

let test_matrix_mul () =
  let a = Matrix.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  let b = Matrix.of_rows [ [| 5.0; 6.0 |]; [| 7.0; 8.0 |] ] in
  let c = Matrix.mat_mul a b in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c01" 22.0 (Matrix.get c 0 1);
  check_float "c10" 43.0 (Matrix.get c 1 0);
  check_float "c11" 50.0 (Matrix.get c 1 1)

let test_matrix_transpose () =
  let a = Matrix.of_rows [ [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] ] in
  let t = Matrix.transpose a in
  check_float "t(0,1)" 4.0 (Matrix.get t 0 1);
  check_float "t(2,0)" 3.0 (Matrix.get t 2 0);
  let tt = Matrix.transpose t in
  Alcotest.(check bool) "involution" true (tt.Matrix.data = a.Matrix.data)

let test_matrix_stamp () =
  let m = Matrix.create 2 2 in
  Matrix.add_to m 0 0 1.5;
  Matrix.add_to m 0 0 2.5;
  check_float "accumulated" 4.0 (Matrix.get m 0 0)

(* --- Lu ----------------------------------------------------------------- *)

let random_dd_matrix rng n =
  (* random diagonally dominant matrix: always well conditioned *)
  let m = Matrix.init n n (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
  for i = 0 to n - 1 do
    let rowsum = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then rowsum := !rowsum +. Float.abs (Matrix.get m i j)
    done;
    Matrix.set m i i (!rowsum +. 1.0)
  done;
  m

let test_lu_solve () =
  let rng = Random.State.make [| 42 |] in
  for n = 1 to 12 do
    let a = random_dd_matrix rng n in
    let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
    let b = Matrix.mat_vec a x_true in
    let x = Lu.solve_dense a b in
    Alcotest.(check bool)
      (Printf.sprintf "solve %dx%d" n n)
      true
      (Vec.max_abs_diff x x_true < 1e-8)
  done

let test_lu_determinant () =
  let a = Matrix.of_rows [ [| 2.0; 0.0 |]; [| 1.0; 3.0 |] ] in
  check_float "det" 6.0 (Lu.determinant (Lu.factor a));
  let perm = Matrix.of_rows [ [| 0.0; 1.0 |]; [| 1.0; 0.0 |] ] in
  check_float "det of swap" (-1.0) (Lu.determinant (Lu.factor perm))

let test_lu_singular () =
  let a = Matrix.of_rows [ [| 1.0; 2.0 |]; [| 2.0; 4.0 |] ] in
  Alcotest.(check bool) "raises Singular" true
    (match Lu.factor a with exception Lu.Singular _ -> true | _ -> false)

let test_lu_not_square () =
  let a = Matrix.create 2 3 in
  Alcotest.check_raises "not square" (Invalid_argument "Lu.factor: matrix not square") (fun () ->
      ignore (Lu.factor a))

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"Lu: A (A^-1 b) = b" ~count:100
    QCheck2.Gen.(pair (int_range 1 10) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = random_dd_matrix rng n in
      let b = Array.init n (fun i -> Random.State.float rng 10.0 -. 5.0 +. float_of_int i) in
      let x = Lu.solve_dense a b in
      Vec.max_abs_diff (Matrix.mat_vec a x) b < 1e-7)

(* --- Sparse ------------------------------------------------------------- *)

(* a sparse-ish diagonally dominant matrix: diagonal + a few off-diagonals *)
let random_sparse_matrix rng n =
  let a = Matrix.create n n in
  for i = 0 to n - 1 do
    let fill = 1 + Random.State.int rng 3 in
    for _ = 1 to fill do
      let j = Random.State.int rng n in
      if j <> i then Matrix.add_to a i j (Random.State.float rng 4.0 -. 2.0)
    done
  done;
  for i = 0 to n - 1 do
    let rowsum = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then rowsum := !rowsum +. Float.abs (Matrix.get a i j)
    done;
    Matrix.set a i i (!rowsum +. 1.0 +. Random.State.float rng 1.0)
  done;
  a

let test_sparse_pattern () =
  let b = Sparse.Builder.create 3 in
  Sparse.Builder.add b 0 0;
  Sparse.Builder.add b 2 1;
  Sparse.Builder.add b 2 1;
  (* duplicate merges *)
  Sparse.Builder.add b 1 2;
  let pat = Sparse.Builder.compile b in
  Alcotest.(check int) "dim" 3 (Sparse.dim pat);
  Alcotest.(check int) "nnz (duplicates merged)" 3 (Sparse.nnz pat);
  Alcotest.(check bool) "mem reserved" true (Sparse.mem pat ~row:2 ~col:1);
  Alcotest.(check bool) "mem unreserved" false (Sparse.mem pat ~row:1 ~col:1);
  Alcotest.(check bool) "slot of unreserved raises" true
    (match Sparse.slot pat ~row:1 ~col:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let m = Sparse.create pat in
  Sparse.add m 2 1 5.0;
  Sparse.add m 2 1 2.5;
  check_float "accumulates" 7.5 (Sparse.get m 2 1);
  check_float "outside pattern reads 0" 0.0 (Sparse.get m 0 1);
  m.Sparse.values.(Sparse.slot pat ~row:2 ~col:1) <- 9.0;
  check_float "slot write visible" 9.0 (Sparse.get m 2 1)

let test_sparse_matches_lu () =
  let rng = Random.State.make [| 11 |] in
  for n = 1 to 15 do
    let a = random_sparse_matrix rng n in
    let b = Array.init n (fun i -> Random.State.float rng 10.0 -. 5.0 +. float_of_int i) in
    let x_dense = Lu.solve_dense a b in
    let sp = Sparse.of_matrix a in
    let x_sparse = Sparse.solve (Sparse.factorize sp) b in
    Alcotest.(check bool)
      (Printf.sprintf "sparse = dense at n=%d" n)
      true
      (Vec.max_abs_diff x_sparse x_dense < 1e-9)
  done

let test_sparse_zero_diagonal () =
  (* MNA voltage-source rows have structural zeros on the diagonal: the
     factorization must pivot, not fall over *)
  let a = Matrix.of_rows [ [| 0.0; 1.0 |]; [| 1.0; 1e-3 |] ] in
  let sp = Sparse.of_matrix a in
  let x = Sparse.solve (Sparse.factorize sp) [| 2.0; 3.0 |] in
  let ax = Matrix.mat_vec a x in
  Alcotest.(check bool) "pivoted solve" true (Vec.max_abs_diff ax [| 2.0; 3.0 |] < 1e-9)

let test_sparse_refactor () =
  let rng = Random.State.make [| 23 |] in
  let n = 12 in
  let a = random_sparse_matrix rng n in
  let sp = Sparse.of_matrix a in
  let lu = Sparse.factorize sp in
  let b = Array.init n (fun i -> float_of_int (i - 4)) in
  (* perturb every value in place, keeping the pattern, then refactor *)
  for pass = 1 to 3 do
    Sparse.iteri sp (fun slot r c v ->
        ignore r;
        ignore c;
        sp.Sparse.values.(slot) <- v *. (1.0 +. (0.05 *. float_of_int pass)));
    Sparse.refactor lu sp;
    let x = Array.copy b in
    Sparse.solve_in_place lu x;
    let ax = Matrix.mat_vec (Sparse.to_matrix sp) x in
    Alcotest.(check bool)
      (Printf.sprintf "refactor pass %d" pass)
      true
      (Vec.max_abs_diff ax b < 1e-8)
  done

let test_sparse_singular_parity () =
  let a = Matrix.of_rows [ [| 1.0; 2.0 |]; [| 2.0; 4.0 |] ] in
  Alcotest.(check bool) "dense raises" true
    (match Lu.factor a with exception Lu.Singular _ -> true | _ -> false);
  Alcotest.(check bool) "sparse raises" true
    (match Sparse.factorize (Sparse.of_matrix a) with
    | exception Sparse.Singular _ -> true
    | _ -> false)

let test_sparse_lu_nnz () =
  let rng = Random.State.make [| 31 |] in
  let n = 10 in
  let a = random_sparse_matrix rng n in
  let sp = Sparse.of_matrix a in
  let lu = Sparse.factorize sp in
  let lnnz, unnz = Sparse.lu_nnz lu in
  Alcotest.(check bool) "L nnz sane" true (lnnz >= 0 && lnnz <= n * n);
  Alcotest.(check bool) "U nnz covers diagonal" true (unnz >= n && unnz <= n * n)

let prop_sparse_roundtrip =
  QCheck2.Test.make ~name:"Sparse: A (A^-1 b) = b" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = random_sparse_matrix rng n in
      let b = Array.init n (fun i -> Random.State.float rng 10.0 -. 5.0 +. float_of_int i) in
      let x = Sparse.solve (Sparse.factorize (Sparse.of_matrix a)) b in
      Vec.max_abs_diff (Matrix.mat_vec a x) b < 1e-7)

(* --- Cg ----------------------------------------------------------------- *)

let test_cg_laplacian () =
  (* 1-D Poisson with unit load: tridiagonal [-1 2 -1] *)
  let n = 50 in
  let apply x out =
    for i = 0 to n - 1 do
      let left = if i > 0 then x.(i - 1) else 0.0 in
      let right = if i < n - 1 then x.(i + 1) else 0.0 in
      out.(i) <- (2.0 *. x.(i)) -. left -. right
    done
  in
  let b = Array.make n 1.0 in
  let r = Cg.solve ~apply ~b () in
  Alcotest.(check bool) "converged" true r.Cg.converged;
  (* verify residual directly *)
  let ax = Array.make n 0.0 in
  apply r.Cg.solution ax;
  Alcotest.(check bool) "residual small" true (Vec.max_abs_diff ax b < 1e-7)

let test_cg_matches_lu () =
  let rng = Random.State.make [| 7 |] in
  let n = 8 in
  let base = random_dd_matrix rng n in
  (* symmetrize while keeping diagonal dominance *)
  let a = Matrix.init n n (fun i j -> 0.5 *. (Matrix.get base i j +. Matrix.get base j i)) in
  let b = Array.init n (fun i -> float_of_int (i - 3)) in
  let x_lu = Lu.solve_dense a b in
  let apply x out =
    let y = Matrix.mat_vec a x in
    Array.blit y 0 out 0 n
  in
  let r = Cg.solve ~apply ~b () in
  Alcotest.(check bool) "CG = LU" true (Vec.max_abs_diff r.Cg.solution x_lu < 1e-6)

let test_cg_status_max_iterations () =
  let n = 50 in
  let apply x out =
    for i = 0 to n - 1 do
      let left = if i > 0 then x.(i - 1) else 0.0 in
      let right = if i < n - 1 then x.(i + 1) else 0.0 in
      out.(i) <- (2.0 *. x.(i)) -. left -. right
    done
  in
  let r = Cg.solve ~apply ~b:(Array.make n 1.0) ~max_iter:2 () in
  Alcotest.(check bool) "not converged" false r.Cg.converged;
  Alcotest.(check string) "status" "max-iterations" (Cg.status_name r.Cg.status)

let test_cg_status_stagnated () =
  (* an unreachable tolerance: the residual hits the round-off floor and
     then fails to improve, which must be reported as Stagnated rather
     than burning the full iteration budget. A positive diagonal operator
     keeps [p' A p = sum d_i p_i^2] strictly positive even in floating
     point, so the indefinite guard cannot mask the stagnation exit. *)
  let n = 40 in
  let d = Array.init n (fun i -> 10.0 ** (-12.0 *. float_of_int i /. float_of_int (n - 1))) in
  let apply x out = Array.iteri (fun i xi -> out.(i) <- d.(i) *. xi) x in
  let b = Array.init n (fun i -> 1.0 +. sin (float_of_int i)) in
  let r = Cg.solve ~apply ~b ~tol:0.0 ~max_iter:1_000_000 () in
  Alcotest.(check bool) "not converged" false r.Cg.converged;
  Alcotest.(check string) "status" "stagnated" (Cg.status_name r.Cg.status);
  Alcotest.(check bool) "stopped well before the cap" true (r.Cg.iterations < 100_000);
  Alcotest.(check bool) "residual at the floor" true (r.Cg.residual_norm < 1e-10)

let test_cg_status_indefinite () =
  (* -I is symmetric negative definite: first curvature check must fire *)
  let apply x out = Array.iteri (fun i xi -> out.(i) <- -.xi) x in
  let r = Cg.solve ~apply ~b:[| 1.0; 2.0 |] () in
  Alcotest.(check string) "status" "indefinite" (Cg.status_name r.Cg.status)

(* --- Multigrid ---------------------------------------------------------- *)

(* 16x16 manufactured problem: coefficient jump of 1:100 down the middle,
   Dirichlet top and bottom rows with a linear ramp on top. *)
let mg_n = 16

let mg_sigma i = if i mod mg_n < mg_n / 2 then 1.0 else 100.0
let mg_face a b = 2.0 *. a *. b /. (a +. b)

let mg_problem () =
  let n = mg_n in
  let gx = Mg.vec (n * n) and gy = Mg.vec (n * n) in
  for i = 0 to (n * n) - 1 do
    let r = i / n and c = i mod n in
    if c < n - 1 then gx.{i} <- mg_face (mg_sigma i) (mg_sigma (i + 1));
    if r < n - 1 then gy.{i} <- mg_face (mg_sigma i) (mg_sigma (i + n))
  done;
  let fixed = Bytes.make (n * n) '\000' in
  for c = 0 to n - 1 do
    Bytes.set fixed c '\001';
    Bytes.set fixed (((n - 1) * n) + c) '\001'
  done;
  let dirichlet = Mg.vec (n * n) in
  for c = 0 to n - 1 do
    dirichlet.{c} <- 1.0 +. (0.05 *. float_of_int c)
  done;
  (gx, gy, fixed, dirichlet)

let mg_neighbors n gx gy i =
  let r = i / n and c = i mod n in
  List.concat
    [
      (if c > 0 then [ (i - 1, Bigarray.Array1.get gx (i - 1)) ] else []);
      (if c < n - 1 then [ (i + 1, Bigarray.Array1.get gx i) ] else []);
      (if r > 0 then [ (i - n, Bigarray.Array1.get gy (i - n)) ] else []);
      (if r < n - 1 then [ (i + n, Bigarray.Array1.get gy i) ] else []);
    ]

let test_mg_constant_field () =
  (* constant Dirichlet data is in the operator's null space: the full
     solve must reproduce the constant exactly (lifting + writeback) *)
  let n = mg_n in
  let gx, gy, fixed, _ = mg_problem () in
  let dirichlet = Mg.vec (n * n) in
  Bigarray.Array1.fill dirichlet 2.5;
  let t = Mg.create ~n ~gx ~gy ~fixed in
  let x, st = Mg.solve_dirichlet t ~dirichlet ~tol:1e-12 () in
  Alcotest.(check bool) "converged" true st.Mg.converged;
  for i = 0 to (n * n) - 1 do
    if Float.abs (x.{i} -. 2.5) > 1e-8 then
      Alcotest.failf "cell %d: %.3e away from constant" i (Float.abs (x.{i} -. 2.5))
  done

let test_mg_matches_cg () =
  let n = mg_n in
  let gx, gy, fixed, dirichlet = mg_problem () in
  let t = Mg.create ~n ~gx ~gy ~fixed in
  Alcotest.(check bool) "multiple levels" true (Mg.n_levels t > 1);
  let x_mg, st = Mg.solve_dirichlet t ~dirichlet ~tol:1e-12 () in
  Alcotest.(check bool) "mg converged" true st.Mg.converged;
  Alcotest.(check bool) "v-cycles counted" true (st.Mg.v_cycles >= st.Mg.iterations);
  Alcotest.(check bool) "sweeps counted" true (st.Mg.sweeps > 0);
  (* reference: plain CG on the Dirichlet-eliminated free system *)
  let is_fixed i = Bytes.get fixed i <> '\000' in
  let free =
    Array.of_seq (Seq.filter (fun i -> not (is_fixed i)) (Seq.init (n * n) Fun.id))
  in
  let index = Array.make (n * n) (-1) in
  Array.iteri (fun k i -> index.(i) <- k) free;
  let apply x out =
    Array.iteri
      (fun k i ->
        let acc = ref 0.0 in
        List.iter
          (fun (j, g) ->
            acc := !acc +. (g *. (x.(k) -. (if is_fixed j then 0.0 else x.(index.(j))))))
          (mg_neighbors n gx gy i);
        out.(k) <- !acc)
      free
  in
  let b = Array.make (Array.length free) 0.0 in
  Array.iteri
    (fun k i ->
      List.iter
        (fun (j, g) -> if is_fixed j then b.(k) <- b.(k) +. (g *. dirichlet.{j}))
        (mg_neighbors n gx gy i))
    free;
  let r = Cg.solve ~apply ~b ~tol:1e-12 () in
  Alcotest.(check bool) "cg converged" true r.Cg.converged;
  let max_diff = ref 0.0 in
  Array.iteri
    (fun k i -> max_diff := Float.max !max_diff (Float.abs (x_mg.{i} -. r.Cg.solution.(k))))
    free;
  Alcotest.(check bool)
    (Printf.sprintf "MG = CG to 1e-8 (got %.3e)" !max_diff)
    true (!max_diff < 1e-8);
  (* fixed cells carry the Dirichlet data verbatim *)
  for c = 0 to n - 1 do
    check_float "top row" dirichlet.{c} x_mg.{c}
  done

let test_mg_vcycle_solve () =
  (* stationary V-cycle iteration reaches the same solution as PCG *)
  let n = mg_n in
  let gx, gy, fixed, dirichlet = mg_problem () in
  let tp = Mg.create ~n ~gx ~gy ~fixed in
  let b = Mg.dirichlet_rhs tp ~dirichlet in
  let x_p, _ = Mg.pcg tp ~b ~tol:1e-12 () in
  let tv = Mg.create ~n ~gx ~gy ~fixed in
  let x_v, st = Mg.vcycle_solve tv ~b ~tol:1e-12 () in
  Alcotest.(check bool) "vcycle converged" true st.Mg.converged;
  let d = ref 0.0 in
  for i = 0 to (n * n) - 1 do
    d := Float.max !d (Float.abs (x_p.{i} -. x_v.{i}))
  done;
  Alcotest.(check bool) (Printf.sprintf "pcg = vcycle (got %.3e)" !d) true (!d < 1e-8)

let test_mg_bad_sizes () =
  let gx = Mg.vec 16 and gy = Mg.vec 16 in
  Alcotest.(check bool) "n too small" true
    (match Mg.create ~n:2 ~gx:(Mg.vec 4) ~gy:(Mg.vec 4) ~fixed:(Bytes.make 4 '\000') with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "size mismatch" true
    (match Mg.create ~n:4 ~gx ~gy ~fixed:(Bytes.make 9 '\000') with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Stats -------------------------------------------------------------- *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "variance" (2.0 /. 3.0) (Stats.variance [| 1.0; 2.0; 3.0 |]);
  check_float "stddev of constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_float "rmse equal" 0.0 (Stats.rmse [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  check_float "rmse" (sqrt 0.5) (Stats.rmse [| 1.0; 2.0 |] [| 2.0; 2.0 |] *. sqrt 1.0);
  check_float "max_abs_error" 3.0 (Stats.max_abs_error [| 0.0; 1.0 |] [| 3.0; 1.0 |])

let test_stats_regression () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let slope, intercept = Stats.linear_regression xs ys in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept;
  check_float "r2 perfect" 1.0 (Stats.r_squared ys ys)

let test_stats_relative_error () =
  check_float "rel" 0.1 (Stats.relative_error ~expected:10.0 11.0);
  check_float "rel at zero" 3.0 (Stats.relative_error ~expected:0.0 3.0)

(* --- Interp ------------------------------------------------------------- *)

let test_interp_lookup () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 10.0; 0.0 |] in
  check_float "node" 10.0 (Interp.lookup xs ys 1.0);
  check_float "mid" 5.0 (Interp.lookup xs ys 0.5);
  check_float "clamp low" 0.0 (Interp.lookup xs ys (-1.0));
  check_float "clamp high" 0.0 (Interp.lookup xs ys 3.0)

let test_interp_crossings () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] and ys = [| 0.0; 2.0; 0.0; 2.0 |] in
  match Interp.crossings xs ys 1.0 with
  | [ a; b; c ] ->
    check_float "c1" 0.5 a;
    check_float "c2" 1.5 b;
    check_float "c3" 2.5 c
  | other -> Alcotest.failf "expected 3 crossings, got %d" (List.length other)

let test_interp_first_crossing_after () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] and ys = [| 0.0; 2.0; 0.0; 2.0 |] in
  (match Interp.first_crossing_after xs ys ~after:1.0 1.0 with
  | Some t -> check_float "after" 1.5 t
  | None -> Alcotest.fail "expected a crossing");
  Alcotest.(check bool) "none left" true
    (Interp.first_crossing_after xs ys ~after:3.0 1.0 = None)

let test_interp_bisect () =
  let root = Interp.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0 ~tol:1e-10 in
  check_close "sqrt 2" 1e-8 (sqrt 2.0) root;
  Alcotest.check_raises "no bracket" (Invalid_argument "Interp.bisect: no sign change in bracket")
    (fun () -> ignore (Interp.bisect (fun x -> x +. 10.0) 0.0 1.0 ~tol:1e-3))

let prop_lookup_exact_at_samples =
  QCheck2.Test.make ~name:"Interp.lookup exact at sample points" ~count:100
    QCheck2.Gen.(array_size (int_range 2 20) (float_range (-5.0) 5.0))
    (fun ys ->
      let xs = Array.init (Array.length ys) float_of_int in
      Array.for_all
        (fun i -> Float.abs (Interp.lookup xs ys xs.(i) -. ys.(i)) < 1e-9)
        (Array.init (Array.length ys) Fun.id))

(* --- Optimize ----------------------------------------------------------- *)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let r = Optimize.nelder_mead f [| 0.0; 0.0 |] ~max_iter:5000 () in
  Alcotest.(check bool) "converged" true r.Optimize.converged;
  check_close "x0" 1e-4 3.0 r.Optimize.x.(0);
  check_close "x1" 1e-4 (-1.0) r.Optimize.x.(1)

let test_nelder_mead_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let r = Optimize.nelder_mead f [| -1.2; 1.0 |] ~max_iter:10000 ~tol:1e-16 () in
  check_close "rosenbrock x" 1e-3 1.0 r.Optimize.x.(0);
  check_close "rosenbrock y" 1e-3 1.0 r.Optimize.x.(1)

let test_lm_line_fit () =
  let xs = Array.init 20 (fun i -> float_of_int i /. 2.0) in
  let data = Array.map (fun x -> (3.0 *. x) -. 7.0) xs in
  let residuals p = Array.mapi (fun i x -> (p.(0) *. x) +. p.(1) -. data.(i)) xs in
  let r = Optimize.levenberg_marquardt ~residuals ~x0:[| 0.0; 0.0 |] () in
  check_close "slope" 1e-6 3.0 r.Optimize.params.(0);
  check_close "offset" 1e-6 (-7.0) r.Optimize.params.(1);
  Alcotest.(check bool) "rmse tiny" true (r.Optimize.rmse < 1e-8)

let test_lm_exponential_fit () =
  let xs = Array.init 30 (fun i -> float_of_int i /. 10.0) in
  let data = Array.map (fun x -> 2.5 *. exp (-1.3 *. x)) xs in
  let residuals p = Array.mapi (fun i x -> (p.(0) *. exp (p.(1) *. x)) -. data.(i)) xs in
  let r = Optimize.levenberg_marquardt ~residuals ~x0:[| 1.0; -0.5 |] () in
  check_close "amplitude" 1e-5 2.5 r.Optimize.params.(0);
  check_close "rate" 1e-5 (-1.3) r.Optimize.params.(1)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "numerics"
    [
      ( "vec",
        [
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "linspace" `Quick test_vec_linspace;
          Alcotest.test_case "length mismatch" `Quick test_vec_mismatch;
          qc prop_dot_symmetric;
          qc prop_triangle_inequality;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          Alcotest.test_case "mat_mul" `Quick test_matrix_mul;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "add_to stamps" `Quick test_matrix_stamp;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve sizes 1..12" `Quick test_lu_solve;
          Alcotest.test_case "determinant" `Quick test_lu_determinant;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "rejects non-square" `Quick test_lu_not_square;
          qc prop_lu_roundtrip;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "pattern build" `Quick test_sparse_pattern;
          Alcotest.test_case "matches dense LU" `Quick test_sparse_matches_lu;
          Alcotest.test_case "pivots past zero diagonal" `Quick test_sparse_zero_diagonal;
          Alcotest.test_case "refactor after value change" `Quick test_sparse_refactor;
          Alcotest.test_case "singular parity with Lu" `Quick test_sparse_singular_parity;
          Alcotest.test_case "fill-in stats" `Quick test_sparse_lu_nnz;
          qc prop_sparse_roundtrip;
        ] );
      ( "cg",
        [
          Alcotest.test_case "1-D laplacian" `Quick test_cg_laplacian;
          Alcotest.test_case "matches LU on SPD" `Quick test_cg_matches_lu;
          Alcotest.test_case "status: max-iterations" `Quick test_cg_status_max_iterations;
          Alcotest.test_case "status: stagnated" `Quick test_cg_status_stagnated;
          Alcotest.test_case "status: indefinite" `Quick test_cg_status_indefinite;
        ] );
      ( "multigrid",
        [
          Alcotest.test_case "constant Dirichlet field" `Quick test_mg_constant_field;
          Alcotest.test_case "matches CG on jump coefficients" `Quick test_mg_matches_cg;
          Alcotest.test_case "v-cycle iteration matches PCG" `Quick test_mg_vcycle_solve;
          Alcotest.test_case "rejects bad sizes" `Quick test_mg_bad_sizes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "linear regression" `Quick test_stats_regression;
          Alcotest.test_case "relative error" `Quick test_stats_relative_error;
        ] );
      ( "interp",
        [
          Alcotest.test_case "lookup" `Quick test_interp_lookup;
          Alcotest.test_case "crossings" `Quick test_interp_crossings;
          Alcotest.test_case "first_crossing_after" `Quick test_interp_first_crossing_after;
          Alcotest.test_case "bisect" `Quick test_interp_bisect;
          qc prop_lookup_exact_at_samples;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "nelder-mead quadratic" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "nelder-mead rosenbrock" `Quick test_nelder_mead_rosenbrock;
          Alcotest.test_case "LM line fit" `Quick test_lm_line_fit;
          Alcotest.test_case "LM exponential fit" `Quick test_lm_exponential_fit;
        ] );
    ]
