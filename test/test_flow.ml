(* Tests for the automated design tool (optimizer). *)

module Opt = Lattice_flow.Optimizer
module Tt = Lattice_boolfn.Truthtable

let xor3 = Tt.xor_n 3
let maj3 = Tt.majority_n 3

let test_candidates_valid () =
  (* every candidate must realize the target (modulo output inversion) *)
  List.iter
    (fun target ->
      List.iter
        (fun impl ->
          let effective =
            if impl.Opt.inverted then Tt.complement target else target
          in
          Alcotest.(check bool)
            (impl.Opt.method_name ^ " realizes target")
            true
            (Lattice_synthesis.Validate.realizes impl.Opt.grid effective))
        (Opt.candidates target))
    [ xor3; maj3; Tt.create 2 (fun m -> m = 3) ]

let test_candidates_distinct () =
  let impls = Opt.candidates maj3 in
  Alcotest.(check bool) "at least two candidates" true (List.length impls >= 2)

let test_estimate_sanity () =
  List.iter
    (fun impl ->
      let m = Opt.estimate impl in
      Alcotest.(check bool) "positive delay" true (m.Opt.delay > 0.0);
      Alcotest.(check bool) "positive power" true (m.Opt.static_power > 0.0);
      Alcotest.(check int) "area = switches" (Lattice_core.Grid.size impl.Opt.grid) m.Opt.area;
      Alcotest.(check bool) "not spice" false m.Opt.from_spice)
    (Opt.candidates xor3)

let test_estimate_scales_with_rows () =
  (* taller lattices have slower falls and lower static power *)
  let grid_of rows =
    { Opt.grid = Lattice_core.Grid.generic rows 2; inverted = false; method_name = "test" }
  in
  let short = Opt.estimate (grid_of 2) and tall = Opt.estimate (grid_of 6) in
  Alcotest.(check bool) "taller = slower fall" true (tall.Opt.fall > short.Opt.fall)

let test_optimize_ranking () =
  let ranked = Opt.optimize maj3 in
  Alcotest.(check bool) "non-empty" true (ranked <> []);
  (* scores non-decreasing within the feasible prefix *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a.Opt.feasible && b.Opt.feasible then
        Alcotest.(check bool) "sorted by score" true (a.Opt.score <= b.Opt.score);
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted ranked;
  (* the exhaustive 2x3 majority lattice should beat the dual-based 3x3 on
     area when present *)
  match List.find_opt (fun e -> e.Opt.implementation.Opt.method_name = "exhaustive") ranked with
  | Some e -> Alcotest.(check int) "exhaustive maj3 area" 6 e.Opt.metrics.Opt.area
  | None -> Alcotest.fail "expected an exhaustive candidate for maj3"

let test_optimize_spec_bounds () =
  let spec = { Opt.default_spec with Opt.max_area = Some 6 } in
  let ranked = Opt.optimize ~spec maj3 in
  (* feasible candidates come first and respect the bound *)
  (match ranked with
  | first :: _ ->
    Alcotest.(check bool) "first is feasible" true first.Opt.feasible;
    Alcotest.(check bool) "bound respected" true (first.Opt.metrics.Opt.area <= 6)
  | [] -> Alcotest.fail "no candidates");
  let impossible = { Opt.default_spec with Opt.max_area = Some 1 } in
  let ranked = Opt.optimize ~spec:impossible maj3 in
  Alcotest.(check bool) "all infeasible under area 1" true
    (List.for_all (fun e -> not e.Opt.feasible) ranked)

let test_optimize_spice_agrees_in_order () =
  (* spice-based and analytic evaluation should agree on the qualitative
     facts: positive delays, power within 3x of the estimate *)
  let and2 = Tt.create 2 (fun m -> m = 3) in
  let analytic = Opt.optimize and2 in
  let spiced = Opt.optimize ~use_spice:true and2 in
  List.iter2
    (fun a s ->
      Alcotest.(check bool) "same method order" true
        (List.exists
           (fun s' -> s'.Opt.implementation.Opt.method_name = a.Opt.implementation.Opt.method_name)
           spiced);
      Alcotest.(check bool) "spice flag" true s.Opt.metrics.Opt.from_spice;
      let ratio = s.Opt.metrics.Opt.static_power /. Float.max 1e-18 a.Opt.metrics.Opt.static_power in
      Alcotest.(check bool)
        (Printf.sprintf "power within 3x (ratio %.2f)" ratio)
        true
        (ratio > 0.33 && ratio < 3.0))
    analytic spiced

let test_describe () =
  let ranked = Opt.optimize maj3 in
  match ranked with
  | e :: _ ->
    let s = Opt.describe e ~names:Lattice_boolfn.Sop.alpha_names in
    Alcotest.(check bool) "describe non-empty" true (String.length s > 40)
  | [] -> Alcotest.fail "no candidates"

(* --- Monte-Carlo --------------------------------------------------------- *)

module Mc = Lattice_flow.Monte_carlo

(* typical local mismatch: the XOR3 lattice should survive *)
let test_mc_nominal_yield () =
  let r =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3 ~samples:25
  in
  Alcotest.(check bool) (Printf.sprintf "yield %.2f >= 0.9" r.Mc.yield) true (r.Mc.yield >= 0.9);
  Alcotest.(check bool) "v_low near nominal" true
    (r.Mc.v_low_mean > 0.05 && r.Mc.v_low_mean < 0.35);
  Alcotest.(check int) "all outcomes recorded" 25 (Array.length r.Mc.outcomes)

let test_mc_zero_variation_is_nominal () =
  let r =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3
      ~variation:{ Mc.sigma_vth = 0.0; sigma_kp_rel = 0.0 } ~samples:3
  in
  Alcotest.(check (float 1e-9)) "yield 1.0" 1.0 r.Mc.yield;
  Alcotest.(check (float 1e-6)) "no spread" 0.0 r.Mc.v_low_std

let test_mc_extreme_variation_kills_yield () =
  let nominal =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3 ~samples:20
  in
  let extreme =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3 ~samples:20
      ~variation:{ Mc.sigma_vth = 0.4; sigma_kp_rel = 0.6 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "extreme %.2f < nominal %.2f" extreme.Mc.yield nominal.Mc.yield)
    true
    (extreme.Mc.yield < nominal.Mc.yield)

(* Determinism goldens: since the batch-engine change, Monte-Carlo draws
   each sample's perturbations from an index-derived RNG stream
   (Engine.sample_rng) instead of one sequential stream, so the exact
   outcome values for a given seed differ from the pre-engine ones. The
   run-vs-run checks below are unchanged in spirit — same seed still means
   the same result — and gained a stronger guarantee: sample k no longer
   depends on samples 0..k-1 (see the prefix-independence test). *)

let test_mc_deterministic_seed () =
  let run () =
    Mc.run Lattice_synthesis.Library.maj3_2x3 ~target:(Tt.majority_n 3) ~samples:10 ~seed:7
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "same yield" a.Mc.yield b.Mc.yield;
  Alcotest.(check (float 1e-12)) "same mean" a.Mc.v_low_mean b.Mc.v_low_mean

let test_mc_bit_identical () =
  (* same seed: not merely close — bit-identical yield and outcome array *)
  let run () =
    Mc.run Lattice_synthesis.Library.maj3_2x3 ~target:(Tt.majority_n 3) ~samples:8 ~seed:1234
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical yield" true (Float.equal a.Mc.yield b.Mc.yield);
  Alcotest.(check int) "same outcome count" (Array.length a.Mc.outcomes)
    (Array.length b.Mc.outcomes);
  Array.iteri
    (fun i (oa : Mc.outcome) ->
      let ob = b.Mc.outcomes.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "outcome %d identical" i)
        true
        (Bool.equal oa.Mc.functional ob.Mc.functional
        && Float.equal oa.Mc.worst_v_low ob.Mc.worst_v_low
        && Float.equal oa.Mc.worst_v_high ob.Mc.worst_v_high))
    a.Mc.outcomes

(* --- Monte-Carlo x engine -------------------------------------------------- *)

module Engine = Lattice_engine.Engine

let check_outcomes_identical name (a : Mc.outcome array) (b : Mc.outcome array) =
  Alcotest.(check int) (name ^ ": outcome count") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (oa : Mc.outcome) ->
      let ob = b.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: outcome %d identical" name i)
        true
        (Bool.equal oa.Mc.functional ob.Mc.functional
        && Float.equal oa.Mc.worst_v_low ob.Mc.worst_v_low
        && Float.equal oa.Mc.worst_v_high ob.Mc.worst_v_high))
    a

let test_mc_parallel_parity () =
  (* serial vs 1, 2 and 4 domains: bit-identical outcomes and yield *)
  let run ?engine () =
    Mc.run ?engine Lattice_synthesis.Library.maj3_2x3 ~target:(Tt.majority_n 3) ~samples:12
      ~seed:5
  in
  let serial = run () in
  List.iter
    (fun domains ->
      let e = Engine.create ~domains () in
      let parallel = run ~engine:e () in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: bit-identical yield" domains)
        true
        (Float.equal serial.Mc.yield parallel.Mc.yield);
      check_outcomes_identical (Printf.sprintf "%d domains" domains) serial.Mc.outcomes
        parallel.Mc.outcomes;
      let t = Engine.telemetry e in
      Alcotest.(check int) "samples dispatched as jobs" 12 t.Engine.jobs)
    [ 1; 2; 4 ]

let test_mc_prefix_independence () =
  (* index-derived RNG streams: sample k is the same whether 4 or 8 samples
     run — a property the old sequential stream did not have *)
  let run samples =
    Mc.run Lattice_synthesis.Library.maj3_2x3 ~target:(Tt.majority_n 3) ~samples ~seed:11
  in
  let small = run 4 and large = run 8 in
  check_outcomes_identical "first 4 of 8" small.Mc.outcomes (Array.sub large.Mc.outcomes 0 4)

(* --- Fault campaign ------------------------------------------------------- *)

module Fc = Lattice_flow.Fault_campaign
module Defects = Lattice_spice.Defects
module Grid = Lattice_core.Grid

let check_report_sane (r : Fc.report) =
  let n = Array.length r.Fc.samples in
  Alcotest.(check int) "every sample classified"
    n
    (r.Fc.counts.Fc.functional + r.Fc.counts.Fc.degraded + r.Fc.counts.Fc.faulty
   + r.Fc.counts.Fc.non_convergent);
  Array.iter
    (fun (s : Fc.sample) ->
      (match s.Fc.classification with
      | Fc.Non_convergent ->
        (match s.Fc.failure with
        | None -> Alcotest.fail "non-convergent sample without diagnostics"
        | Some _ -> ())
      | Fc.Functional | Fc.Degraded | Fc.Faulty ->
        Alcotest.(check bool) "failure only on non-convergence" true (s.Fc.failure = None));
      Alcotest.(check bool) "newton iterations recorded" true (s.Fc.newton_iterations >= 0);
      List.iter
        (fun v ->
          Alcotest.(check bool) "detected_by is a subset of mismatches" true
            (List.mem v s.Fc.mismatches))
        s.Fc.detected_by)
    r.Fc.samples

let test_campaign_xor3_full_universe () =
  (* the whole 14-defects-per-site universe over the paper's XOR3 3x3:
     must complete with zero uncaught exceptions and classify everything *)
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  let options = { Fc.default_options with Fc.attempt_repair = false } in
  let r = Fc.run ~options grid ~target:Lattice_synthesis.Library.xor3 in
  Alcotest.(check int) "14 defects x 9 sites" 126 (Array.length r.Fc.samples);
  check_report_sane r;
  (* each structural stuck defect on a non-constant site flips some output *)
  Alcotest.(check bool) "stuck defects produce faulty samples" true (r.Fc.counts.Fc.faulty >= 12);
  (* the (1,1) site is the grid's constant-1: stuck-short there is masked *)
  let masked =
    Array.exists
      (fun (s : Fc.sample) ->
        s.Fc.defects = [ { Defects.row = 1; col = 1; kind = Defects.Stuck_short } ]
        && s.Fc.classification = Fc.Functional)
      r.Fc.samples
  in
  Alcotest.(check bool) "stuck-short on the const-1 site is masked" true masked;
  (* logical cross-check: every faulty stuck-defect sample is caught by
     the greedy logical test set *)
  Array.iter
    (fun (s : Fc.sample) ->
      match s.Fc.defects with
      | [ { Defects.kind = Defects.Stuck_open | Defects.Stuck_short; _ } ]
        when s.Fc.classification = Fc.Faulty ->
        Alcotest.(check bool) "stuck defect detected by test set" true (s.Fc.detected_by <> [])
      | _ -> ())
    r.Fc.samples

let lattice_6x6_grid () =
  (* same fixed 36-switch lattice the sparse-parity test drives *)
  let entries =
    Array.init 36 (fun i ->
        let r = i / 6 and c = i mod 6 in
        Grid.Lit ((r + c) mod 3, (r * c) mod 2 = 0))
  in
  Grid.create 6 6 entries

let test_campaign_6x6 () =
  (* a 36-switch lattice: the campaign must scale past toy sizes and stay
     exception-free; the universe is restricted to the diagonal sites to
     keep the runtime test-friendly *)
  let grid = lattice_6x6_grid () in
  let target = Tt.create 3 (fun m -> Lattice_core.Connectivity.eval grid m) in
  let universe =
    List.concat_map
      (fun i ->
        [
          { Defects.row = i; col = i; kind = Defects.Stuck_open };
          { Defects.row = i; col = i; kind = Defects.Stuck_short };
        ])
      [ 0; 1; 2; 3; 4; 5 ]
    @ [ { Defects.row = 2; col = 3; kind = Defects.Bridge (Defects.North, Defects.East) } ]
  in
  let options =
    { Fc.default_options with Fc.attempt_repair = false; multi_defect_samples = 3; seed = 99 }
  in
  let r = Fc.run ~options ~universe grid ~target in
  Alcotest.(check int) "13 singles + 3 sampled combos" 16 (Array.length r.Fc.samples);
  check_report_sane r;
  Array.iteri
    (fun i (s : Fc.sample) ->
      if i >= 13 then
        Alcotest.(check int) "sampled combos carry 2 defects" 2 (List.length s.Fc.defects))
    r.Fc.samples

let test_campaign_non_convergent_diagnostics () =
  (* cripple the DC solver so every rung of the ladder fails: samples must
     come back classified (not raised) with the full structured failure *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let options =
    {
      Fc.default_options with
      Fc.dc = { Lattice_spice.Dcop.default_options with max_iterations = 1; damping = 1e-6 };
      attempt_repair = false;
    }
  in
  let universe = [ { Defects.row = 0; col = 0; kind = Defects.Gate_leak Defects.North } ] in
  let r = Fc.run ~options ~universe grid ~target:(Tt.majority_n 3) in
  check_report_sane r;
  Alcotest.(check int) "all samples non-convergent" (Array.length r.Fc.samples)
    r.Fc.counts.Fc.non_convergent;
  Array.iter
    (fun (s : Fc.sample) ->
      match s.Fc.failure with
      | None -> Alcotest.fail "missing diagnostics"
      | Some f ->
        Alcotest.(check int) "full 7-rung failed ladder" 7
          (List.length f.Lattice_spice.Dcop.attempts);
        Alcotest.(check bool) "residual norm positive" true
          (Float.is_finite f.Lattice_spice.Dcop.residual_norm
          && f.Lattice_spice.Dcop.residual_norm > 0.0);
        Alcotest.(check bool) "worst nodes named" true
          (f.Lattice_spice.Dcop.worst_nodes <> []))
    r.Fc.samples

let test_campaign_newton_budget () =
  (* a tiny budget exhausts mid-sample: classified non-convergent with a
     synthetic failure, never an exception *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let options =
    { Fc.default_options with Fc.budget = { Fc.newton_per_sample = 5 }; attempt_repair = false }
  in
  let universe = [ { Defects.row = 0; col = 0; kind = Defects.Stuck_open } ] in
  let r = Fc.run ~options ~universe grid ~target:(Tt.majority_n 3) in
  check_report_sane r;
  Alcotest.(check int) "budget exhaustion is non-convergent" 1 r.Fc.counts.Fc.non_convergent;
  match r.Fc.samples.(0).Fc.failure with
  | Some f ->
    Alcotest.(check bool) "message names the budget" true
      (String.length f.Lattice_spice.Dcop.message > 0
      && f.Lattice_spice.Dcop.attempts = [])
  | None -> Alcotest.fail "missing synthetic failure"

let test_campaign_repair_stuck_open () =
  (* the acceptance loop: a stuck-OPEN defect on the minimal maj3 lattice
     is detected by the logical test set, remapped around the pinned site
     (needs the spare column: the 2x3 fabric has no slack), and the
     repaired lattice re-verifies at circuit level with the defect still
     injected *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let universe =
    [
      { Defects.row = 0; col = 0; kind = Defects.Stuck_open };
      { Defects.row = 1; col = 2; kind = Defects.Stuck_short };
    ]
  in
  let r = Fc.run ~universe grid ~target:(Tt.majority_n 3) in
  check_report_sane r;
  Alcotest.(check int) "both defects repaired" 2 (List.length r.Fc.repairs);
  let open_repair =
    List.find (fun (rp : Fc.repair) -> rp.Fc.defect.Defects.kind = Defects.Stuck_open) r.Fc.repairs
  in
  Alcotest.(check bool) "stuck-open projects to logical stuck-OFF" true
    (open_repair.Fc.fault.Lattice_synthesis.Faults.kind = Lattice_synthesis.Faults.Stuck_off);
  (match open_repair.Fc.remapped with
  | None -> Alcotest.fail "no remapping found for the stuck-open defect"
  | Some g ->
    Alcotest.(check int) "remap used the spare column" 4 g.Grid.cols;
    Alcotest.(check bool) "pinned site is constant-0" true
      (Grid.entry g 0 0 = Grid.Const false));
  Alcotest.(check bool) "repaired lattice re-verified at circuit level" true
    open_repair.Fc.reverified;
  (* and verify_with_defects is honest: the unrepaired lattice fails it *)
  Alcotest.(check bool) "defective original fails verification" false
    (Fc.verify_with_defects grid ~target:(Tt.majority_n 3)
       ~defects:[ { Defects.row = 0; col = 0; kind = Defects.Stuck_open } ])

(* --- Fault campaign x engine ----------------------------------------------- *)

let check_samples_identical name (a : Fc.sample array) (b : Fc.sample array) =
  Alcotest.(check int) (name ^ ": sample count") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (sa : Fc.sample) ->
      let sb = b.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sample %d identical" name i)
        true
        (sa.Fc.classification = sb.Fc.classification
        && sa.Fc.mismatches = sb.Fc.mismatches
        && sa.Fc.detected_by = sb.Fc.detected_by
        && sa.Fc.newton_iterations = sb.Fc.newton_iterations
        && Float.equal sa.Fc.worst_v_low sb.Fc.worst_v_low
        && Float.equal sa.Fc.worst_v_high sb.Fc.worst_v_high))
    a

let campaign_options =
  { Fc.default_options with Fc.classes = [ Defects.Opens; Defects.Shorts ] }

let test_campaign_parallel_parity () =
  (* serial vs 1, 2 and 4 domains on the maj3 campaign (repairs included):
     classifications, Newton accounting and repair outcomes all identical *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let serial = Fc.run ~options:campaign_options grid ~target:(Tt.majority_n 3) in
  List.iter
    (fun domains ->
      let e = Engine.create ~domains () in
      let parallel = Fc.run ~engine:e ~options:campaign_options grid ~target:(Tt.majority_n 3) in
      check_samples_identical (Printf.sprintf "%d domains" domains) serial.Fc.samples
        parallel.Fc.samples;
      Alcotest.(check int)
        (Printf.sprintf "%d domains: total newton" domains)
        serial.Fc.total_newton parallel.Fc.total_newton;
      Alcotest.(check int)
        (Printf.sprintf "%d domains: repairs" domains)
        (List.length serial.Fc.repairs)
        (List.length parallel.Fc.repairs);
      List.iter2
        (fun (rs : Fc.repair) (rp : Fc.repair) ->
          Alcotest.(check bool) "repair verdicts match" rs.Fc.reverified rp.Fc.reverified)
        serial.Fc.repairs parallel.Fc.repairs)
    [ 1; 2; 4 ]

let test_campaign_cache_rerun () =
  (* the same engine run twice over the same campaign: the second pass
     must hit the content-addressed cache and still report identically —
     including per-sample Newton counts, which cached hits replay *)
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let e = Engine.create ~domains:2 () in
  let first = Fc.run ~engine:e ~options:campaign_options grid ~target:(Tt.majority_n 3) in
  let t1 = Engine.telemetry e in
  let second = Fc.run ~engine:e ~options:campaign_options grid ~target:(Tt.majority_n 3) in
  let t2 = Engine.telemetry e in
  Alcotest.(check bool) "second pass hits the cache" true
    (t2.Engine.cache.Lattice_engine.Cache.hits > t1.Engine.cache.Lattice_engine.Cache.hits);
  Alcotest.(check int) "no new solves on a warm cache" t1.Engine.dc_solves t2.Engine.dc_solves;
  check_samples_identical "warm cache" first.Fc.samples second.Fc.samples;
  Alcotest.(check int) "newton accounting identical warm" first.Fc.total_newton
    second.Fc.total_newton

let () =
  Alcotest.run "flow"
    [
      ( "monte_carlo",
        [
          Alcotest.test_case "nominal yield" `Slow test_mc_nominal_yield;
          Alcotest.test_case "zero variation" `Quick test_mc_zero_variation_is_nominal;
          Alcotest.test_case "extreme variation" `Slow test_mc_extreme_variation_kills_yield;
          Alcotest.test_case "deterministic seed" `Quick test_mc_deterministic_seed;
          Alcotest.test_case "bit-identical outcomes" `Quick test_mc_bit_identical;
          Alcotest.test_case "serial/parallel parity" `Slow test_mc_parallel_parity;
          Alcotest.test_case "prefix independence" `Quick test_mc_prefix_independence;
        ] );
      ( "fault_campaign",
        [
          Alcotest.test_case "XOR3 full universe" `Slow test_campaign_xor3_full_universe;
          Alcotest.test_case "6x6 lattice" `Slow test_campaign_6x6;
          Alcotest.test_case "non-convergent diagnostics" `Quick
            test_campaign_non_convergent_diagnostics;
          Alcotest.test_case "newton budget exhaustion" `Quick test_campaign_newton_budget;
          Alcotest.test_case "stuck-open detect/remap/re-verify" `Quick
            test_campaign_repair_stuck_open;
          Alcotest.test_case "serial/parallel parity" `Slow test_campaign_parallel_parity;
          Alcotest.test_case "cache re-run identity" `Quick test_campaign_cache_rerun;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "candidates are valid" `Quick test_candidates_valid;
          Alcotest.test_case "multiple candidates" `Quick test_candidates_distinct;
          Alcotest.test_case "estimate sanity" `Quick test_estimate_sanity;
          Alcotest.test_case "estimate scaling" `Quick test_estimate_scales_with_rows;
          Alcotest.test_case "ranking" `Quick test_optimize_ranking;
          Alcotest.test_case "spec bounds" `Quick test_optimize_spec_bounds;
          Alcotest.test_case "spice evaluation" `Slow test_optimize_spice_agrees_in_order;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
    ]
