(** Fixed-capacity bitsets backed by an [int array].

    Used for path vertex sets during irredundant-path enumeration, where the
    universe (lattice sites) can exceed the 63 bits of a native [int]. *)

type t

(** [create n] is the empty set over universe [0 .. n-1]. *)
val create : int -> t

(** [capacity s] is the universe size [s] was created with. *)
val capacity : t -> int

(** [copy s] is an independent copy. *)
val copy : t -> t

(** [add s i] inserts element [i] in place. *)
val add : t -> int -> unit

(** [remove s i] deletes element [i] in place. *)
val remove : t -> int -> unit

(** [mem s i] tests membership. *)
val mem : t -> int -> bool

(** [cardinal s] is the number of elements. *)
val cardinal : t -> int

(** [subset a b] is [true] when every element of [a] is in [b]. The sets
    must share a capacity. *)
val subset : t -> t -> bool

(** [equal a b] is set equality. *)
val equal : t -> t -> bool

(** [of_list n elems] builds a set over universe [n] from a list. *)
val of_list : int -> int list -> t

(** [to_list s] is the sorted element list. *)
val to_list : t -> int list

(** [iter f s] applies [f] to each element in increasing order. *)
val iter : (int -> unit) -> t -> unit
