type t = { nvars : int; bits : Bytes.t }

let max_vars = 20

let check nvars =
  if nvars < 0 || nvars > max_vars then invalid_arg "Truthtable: unsupported variable count"

let create nvars f =
  check nvars;
  let size = 1 lsl nvars in
  let bits = Bytes.make size '\000' in
  for m = 0 to size - 1 do
    if f m then Bytes.unsafe_set bits m '\001'
  done;
  { nvars; bits }

let of_sop f = create (Sop.nvars f) (Sop.eval f)

let of_minterms nvars ms =
  check nvars;
  let size = 1 lsl nvars in
  let bits = Bytes.make size '\000' in
  List.iter
    (fun m ->
      if m < 0 || m >= size then invalid_arg "Truthtable.of_minterms: out of range";
      Bytes.set bits m '\001')
    ms;
  { nvars; bits }

let nvars t = t.nvars
let eval t m = Bytes.get t.bits m <> '\000'

let minterms t =
  let out = ref [] in
  for m = Bytes.length t.bits - 1 downto 0 do
    if eval t m then out := m :: !out
  done;
  !out

let count_ones t =
  let acc = ref 0 in
  for m = 0 to Bytes.length t.bits - 1 do
    if eval t m then incr acc
  done;
  !acc

let equal a b = a.nvars = b.nvars && Bytes.equal a.bits b.bits
let complement t = create t.nvars (fun m -> not (eval t m))

let dual t =
  let all = (1 lsl t.nvars) - 1 in
  create t.nvars (fun m -> not (eval t (m lxor all)))

let is_self_dual t = equal (dual t) t

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let xor_n nvars = create nvars (fun m -> popcount m land 1 = 1)

let majority_n nvars =
  if nvars land 1 = 0 then invalid_arg "Truthtable.majority_n: even input count";
  create nvars (fun m -> popcount m > nvars / 2)
