lib/boolfn/bitset.mli:
