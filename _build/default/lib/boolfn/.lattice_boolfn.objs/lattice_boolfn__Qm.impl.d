lib/boolfn/qm.ml: Array Cube Fun Int List Set Sop Truthtable
