lib/boolfn/cube.mli:
