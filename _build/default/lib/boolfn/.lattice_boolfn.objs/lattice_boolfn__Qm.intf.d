lib/boolfn/qm.mli: Cube Sop Truthtable
