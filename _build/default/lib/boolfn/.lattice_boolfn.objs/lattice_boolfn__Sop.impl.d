lib/boolfn/sop.ml: Array Bool Char Cube List Printf String
