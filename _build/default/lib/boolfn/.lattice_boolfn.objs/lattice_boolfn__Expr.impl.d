lib/boolfn/expr.ml: Array Bool List Printf Qm String Truthtable
