lib/boolfn/sop.mli: Cube
