lib/boolfn/bdd.mli: Sop Truthtable
