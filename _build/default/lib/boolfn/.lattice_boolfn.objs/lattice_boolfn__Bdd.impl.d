lib/boolfn/bdd.ml: Array Cube Hashtbl Int List Sop Truthtable
