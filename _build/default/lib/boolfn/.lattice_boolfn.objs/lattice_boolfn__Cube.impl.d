lib/boolfn/cube.ml: Int List String Sys
