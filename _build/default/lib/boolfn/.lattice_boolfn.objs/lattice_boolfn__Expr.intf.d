lib/boolfn/expr.mli: Sop Truthtable
