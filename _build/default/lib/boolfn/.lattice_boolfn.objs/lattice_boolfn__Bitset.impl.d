lib/boolfn/bitset.ml: Array List Sys
