lib/boolfn/truthtable.mli: Sop
