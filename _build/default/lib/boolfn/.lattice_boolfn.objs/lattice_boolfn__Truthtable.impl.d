lib/boolfn/truthtable.ml: Bytes List Sop
