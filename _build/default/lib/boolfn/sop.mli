(** Sum-of-products (disjunction of cubes) over at most 62 variables. *)

type t = private {
  nvars : int;
  cubes : Cube.t list;  (** sorted, duplicate-free *)
}

(** [zero nvars] is the constant-false function. *)
val zero : int -> t

(** [one nvars] is the constant-true function (single empty cube). *)
val one : int -> t

(** [of_cubes nvars cubes] sorts, deduplicates and stores the cubes. *)
val of_cubes : int -> Cube.t list -> t

(** [cubes f] is the cube list (sorted). *)
val cubes : t -> Cube.t list

(** [nvars f] is the number of variables of the function's domain. *)
val nvars : t -> int

(** [product_count f] is the number of cubes. *)
val product_count : t -> int

(** [literal_count f] is the total number of literals over all cubes. *)
val literal_count : t -> int

(** [absorb f] removes every cube implied by (absorbed into) another cube,
    yielding an equivalent, irredundant-by-containment SOP. *)
val absorb : t -> t

(** [add_cube f c] is [f] with one more product (then re-sorted). *)
val add_cube : t -> Cube.t -> t

(** [disjunction a b] is the union of products ([a + b]). *)
val disjunction : t -> t -> t

(** [eval f assignment] evaluates under a variable bitmask. *)
val eval : t -> int -> bool

(** [equal_semantically a b] compares as Boolean functions by exhaustive
    evaluation over [2^nvars] assignments; requires equal [nvars]. *)
val equal_semantically : t -> t -> bool

(** [to_string ~names f] renders e.g. ["a b' + c"]; constant functions
    render as ["0"] / ["1"]. *)
val to_string : names:(int -> string) -> t -> string

(** [default_names] maps 0.. to ["x1"; "x2"; ...]. *)
val default_names : int -> string

(** [alpha_names] maps 0.. to ["a"; "b"; ... ; "z"; "v26"; ...]. *)
val alpha_names : int -> string
