(** Reduced ordered binary decision diagrams (ROBDDs) with hash-consing.

    Variable order is fixed to the variable index (0 tested first). Nodes
    are maximally shared within a [manager], so semantic equality of
    functions built in the same manager is physical equality of node ids —
    the property the equivalence checks below rely on. Complement edges are
    not used; [neg] rebuilds instead (fine at these sizes).

    The synthesis literature on switching lattices (the paper's refs
    [2], [13]) manipulates functions and their duals symbolically; this
    module provides that substrate and cross-checks the SOP/QM layer. *)

type manager

type t
(** a BDD handle, tied to the manager that built it *)

(** [create_manager ~nvars] prepares a manager for variables
    [0 .. nvars-1]. *)
val create_manager : nvars:int -> manager

val nvars : manager -> int

(** Constants and literals. *)
val zero : manager -> t

val one : manager -> t
val var : manager -> int -> t
val nvar : manager -> int -> t

(** Boolean connectives (operands must share the manager). *)
val neg : manager -> t -> t

val conj : manager -> t -> t -> t
val disj : manager -> t -> t -> t
val xor : manager -> t -> t -> t

(** [equal a b] — semantic equivalence (constant time). *)
val equal : t -> t -> bool

(** [is_zero b] / [is_one b]. *)
val is_zero : manager -> t -> bool

val is_one : manager -> t -> bool

(** [eval m b assignment] evaluates under a variable bitmask. *)
val eval : manager -> t -> int -> bool

(** [restrict m b var value] — cofactor. *)
val restrict : manager -> t -> int -> bool -> t

(** [sat_count m b] — number of satisfying assignments over all [nvars]
    variables. *)
val sat_count : manager -> t -> int

(** [dual m b] is the Boolean dual [x -> not (b (not x))]. *)
val dual : manager -> t -> t

(** [of_sop m sop] builds the BDD of a sum of products. *)
val of_sop : manager -> Sop.t -> t

(** [of_truthtable m tt] builds the BDD of a truth table (the table's
    variable count must not exceed the manager's). *)
val of_truthtable : manager -> Truthtable.t -> t

(** [node_count m b] — nodes reachable from [b] (including terminals). *)
val node_count : manager -> t -> int
