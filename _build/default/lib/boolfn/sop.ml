type t = { nvars : int; cubes : Cube.t list }

let check_nvars nvars =
  if nvars < 0 || nvars > Cube.max_vars then invalid_arg "Sop: unsupported variable count"

let zero nvars =
  check_nvars nvars;
  { nvars; cubes = [] }

let one nvars =
  check_nvars nvars;
  { nvars; cubes = [ Cube.one ] }

let of_cubes nvars cubes =
  check_nvars nvars;
  { nvars; cubes = List.sort_uniq Cube.compare cubes }

let cubes f = f.cubes
let nvars f = f.nvars
let product_count f = List.length f.cubes
let literal_count f = List.fold_left (fun acc c -> acc + Cube.size c) 0 f.cubes

(* keep a cube only if no *other* kept-or-candidate cube absorbs it;
   since [implies a b] means a's set contains b's, cube a is absorbed by b
   when [Cube.implies a b] with a <> b. *)
let absorb f =
  let arr = Array.of_list f.cubes in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if keep.(i) then
      for j = 0 to n - 1 do
        if i <> j && keep.(i) && keep.(j) && Cube.implies arr.(i) arr.(j) then
          (* arr.(i) is a superset product; drop it unless equal (dedup already done) *)
          keep.(i) <- false
      done
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then kept := arr.(i) :: !kept
  done;
  { f with cubes = !kept }

let add_cube f c = of_cubes f.nvars (c :: f.cubes)

let disjunction a b =
  if a.nvars <> b.nvars then invalid_arg "Sop.disjunction: variable-count mismatch";
  of_cubes a.nvars (a.cubes @ b.cubes)

let eval f assignment = List.exists (fun c -> Cube.eval c assignment) f.cubes

let equal_semantically a b =
  if a.nvars <> b.nvars then invalid_arg "Sop.equal_semantically: variable-count mismatch";
  let limit = 1 lsl a.nvars in
  let rec go m = m >= limit || (Bool.equal (eval a m) (eval b m) && go (m + 1)) in
  go 0

let to_string ~names f =
  match f.cubes with
  | [] -> "0"
  | cubes -> String.concat " + " (List.map (Cube.to_string ~names) cubes)

let default_names i = Printf.sprintf "x%d" (i + 1)

let alpha_names i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i)) else Printf.sprintf "v%d" i
