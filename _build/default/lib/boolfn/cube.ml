type t = { pos : int; neg : int }

exception Contradictory

let max_vars = Sys.int_size - 1

let one = { pos = 0; neg = 0 }

let of_masks ~pos ~neg =
  if pos land neg <> 0 then raise Contradictory;
  { pos; neg }

let and_literal c var polarity =
  if var < 0 || var >= max_vars then invalid_arg "Cube.and_literal: variable out of range";
  let bit = 1 lsl var in
  if polarity then of_masks ~pos:(c.pos lor bit) ~neg:c.neg
  else of_masks ~pos:c.pos ~neg:(c.neg lor bit)

let of_literals lits =
  List.fold_left (fun c (v, p) -> and_literal c v p) one lits

let literals c =
  let out = ref [] in
  for v = max_vars - 1 downto 0 do
    let bit = 1 lsl v in
    if c.pos land bit <> 0 then out := (v, true) :: !out
    else if c.neg land bit <> 0 then out := (v, false) :: !out
  done;
  !out

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let size c = popcount (c.pos lor c.neg)

(* a implies b iff every literal of b appears in a *)
let implies a b = b.pos land lnot a.pos = 0 && b.neg land lnot a.neg = 0

let eval c assignment =
  c.pos land assignment = c.pos && c.neg land assignment = 0

let compare a b =
  match Int.compare a.pos b.pos with 0 -> Int.compare a.neg b.neg | c -> c

let equal a b = a.pos = b.pos && a.neg = b.neg

let to_string ~names c =
  match literals c with
  | [] -> "1"
  | lits ->
    String.concat " "
      (List.map (fun (v, p) -> if p then names v else names v ^ "'") lits)
