type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

exception Parse_error of string

type token =
  | Tident of string
  | Tconst of bool
  | Tnot
  | Tand
  | Tor
  | Txor
  | Tprime
  | Tlparen
  | Trparen

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '0' -> go (i + 1) (Tconst false :: acc)
      | '1' -> go (i + 1) (Tconst true :: acc)
      | '!' | '~' -> go (i + 1) (Tnot :: acc)
      | '&' | '*' -> go (i + 1) (Tand :: acc)
      | '+' | '|' -> go (i + 1) (Tor :: acc)
      | '^' -> go (i + 1) (Txor :: acc)
      | '\'' -> go (i + 1) (Tprime :: acc)
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        go !j (Tident (String.sub s i (!j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  go 0 []

(* Recursive descent over the token list; variables are interned in first-
   appearance order. *)
let parse s =
  let names = ref [] in
  let count = ref 0 in
  let intern name =
    match List.assoc_opt name !names with
    | Some i -> i
    | None ->
      let i = !count in
      names := (name, i) :: !names;
      incr count;
      i
  in
  let tokens = ref (tokenize s) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let expect t what =
    match peek () with
    | Some t' when t' = t -> advance ()
    | _ -> raise (Parse_error ("expected " ^ what))
  in
  let rec parse_or () =
    let lhs = parse_xor () in
    match peek () with
    | Some Tor ->
      advance ();
      Or (lhs, parse_or ())
    | Some (Tident _ | Tconst _ | Tnot | Tand | Txor | Tprime | Tlparen | Trparen) | None -> lhs
  and parse_xor () =
    let lhs = parse_and () in
    match peek () with
    | Some Txor ->
      advance ();
      Xor (lhs, parse_xor ())
    | Some (Tident _ | Tconst _ | Tnot | Tand | Tor | Tprime | Tlparen | Trparen) | None -> lhs
  and parse_and () =
    let lhs = parse_factor () in
    match peek () with
    | Some Tand ->
      advance ();
      And (lhs, parse_and ())
    | Some (Tident _ | Tconst _ | Tnot | Tlparen) ->
      (* juxtaposition means AND, e.g. "a b'c" *)
      And (lhs, parse_and ())
    | Some (Tor | Txor | Tprime | Trparen) | None -> lhs
  and parse_factor () =
    match peek () with
    | Some Tnot ->
      advance ();
      Not (parse_factor ())
    | Some (Tident _ | Tconst _ | Tlparen | Tand | Tor | Txor | Tprime | Trparen) | None ->
      let atom = parse_atom () in
      parse_primes atom
  and parse_primes e =
    match peek () with
    | Some Tprime ->
      advance ();
      parse_primes (Not e)
    | Some (Tident _ | Tconst _ | Tnot | Tand | Tor | Txor | Tlparen | Trparen) | None -> e
  and parse_atom () =
    match peek () with
    | Some (Tident name) ->
      advance ();
      Var (intern name)
    | Some (Tconst b) ->
      advance ();
      Const b
    | Some Tlparen ->
      advance ();
      let e = parse_or () in
      expect Trparen "')'";
      e
    | Some (Tnot | Tand | Tor | Txor | Tprime | Trparen) | None ->
      raise (Parse_error "expected variable, constant or '('")
  in
  let ast = parse_or () in
  (match !tokens with [] -> () | _ -> raise (Parse_error "trailing tokens"));
  let arr = Array.make !count "" in
  List.iter (fun (name, i) -> arr.(i) <- name) !names;
  (ast, arr)

let rec eval e assignment =
  match e with
  | Const b -> b
  | Var v -> assignment land (1 lsl v) <> 0
  | Not a -> not (eval a assignment)
  | And (a, b) -> eval a assignment && eval b assignment
  | Or (a, b) -> eval a assignment || eval b assignment
  | Xor (a, b) -> not (Bool.equal (eval a assignment) (eval b assignment))

let to_truthtable e ~nvars = Truthtable.create nvars (eval e)

let sop_of_string s =
  let ast, names = parse s in
  let tt = to_truthtable ast ~nvars:(Array.length names) in
  (Qm.cover tt, names)
