(** Explicit truth tables for functions of up to 20 variables.

    Assignment [m] encodes variable [i] in bit [i] of [m]. *)

type t

(** [create nvars f] tabulates [f] over all [2^nvars] assignments. *)
val create : int -> (int -> bool) -> t

(** [of_sop f] tabulates a sum-of-products. *)
val of_sop : Sop.t -> t

(** [of_minterms nvars ms] is the function true exactly on the listed
    assignments. *)
val of_minterms : int -> int list -> t

(** [nvars t] is the domain size. *)
val nvars : t -> int

(** [eval t m] reads entry [m]. *)
val eval : t -> int -> bool

(** [minterms t] lists the true assignments in increasing order. *)
val minterms : t -> int list

(** [count_ones t] is the number of true assignments. *)
val count_ones : t -> int

(** [equal a b] is pointwise equality (requires equal [nvars]). *)
val equal : t -> t -> bool

(** [complement t] is [not t]. *)
val complement : t -> t

(** [dual t] is the Boolean dual [fun m -> not (t (complement m))]. A
    function is self-dual when [dual t = t] (e.g. 3-input XOR). *)
val dual : t -> t

(** [is_self_dual t] tests [dual t = t]. *)
val is_self_dual : t -> bool

(** [xor_n nvars] is the parity function of [nvars] inputs. *)
val xor_n : int -> t

(** [majority_n nvars] is true when more than half of the inputs are 1
    (requires odd [nvars]). *)
val majority_n : int -> t
