type t = { n : int; words : int array }

let word_bits = Sys.int_size (* 63 on 64-bit systems *)

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (((n + word_bits - 1) / word_bits) + 1) 0 }

let capacity s = s.n
let copy s = { s with words = Array.copy s.words }

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: element out of range"

let add s i =
  check s i;
  let w = i / word_bits and b = i mod word_bits in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w = i / word_bits and b = i mod word_bits in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  check s i;
  let w = i / word_bits and b = i mod word_bits in
  s.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let rec go i =
    if i >= Array.length a.words then true
    else if a.words.(i) land lnot b.words.(i) <> 0 then false
    else go (i + 1)
  in
  go 0

let equal a b = a.n = b.n && a.words = b.words

let of_list n elems =
  let s = create n in
  List.iter (add s) elems;
  s

let iter f s =
  for i = 0 to s.n - 1 do
    if mem s i then f i
  done

let to_list s =
  let acc = ref [] in
  for i = s.n - 1 downto 0 do
    if mem s i then acc := i :: !acc
  done;
  !acc
