(* Nodes live in a growable array; node 0 is the 0-terminal, node 1 the
   1-terminal. A unique table maps (var, low, high) to the node id, making
   structural equality physical. *)

type node = { var : int; low : int; high : int }

type manager = {
  nvars : int;
  mutable nodes : node array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  apply_cache : (int * int * int, int) Hashtbl.t; (* (op, a, b) -> result *)
}

type t = int

let terminal_var = max_int

let create_manager ~nvars =
  if nvars < 0 then invalid_arg "Bdd.create_manager: negative variable count";
  let dummy = { var = terminal_var; low = 0; high = 0 } in
  let nodes = Array.make 1024 dummy in
  nodes.(0) <- { var = terminal_var; low = 0; high = 0 };
  nodes.(1) <- { var = terminal_var; low = 1; high = 1 };
  { nvars; nodes; next = 2; unique = Hashtbl.create 1024; apply_cache = Hashtbl.create 1024 }

let nvars m = m.nvars

let zero (_ : manager) = 0
let one (_ : manager) = 1

let mk m var low high =
  if low = high then low
  else begin
    let key = (var, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      if m.next >= Array.length m.nodes then begin
        let bigger = Array.make (2 * Array.length m.nodes) m.nodes.(0) in
        Array.blit m.nodes 0 bigger 0 m.next;
        m.nodes <- bigger
      end;
      let id = m.next in
      m.nodes.(id) <- { var; low; high };
      m.next <- id + 1;
      Hashtbl.replace m.unique key id;
      id
  end

let check_var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd: variable out of range"

let var m i =
  check_var m i;
  mk m i 0 1

let nvar m i =
  check_var m i;
  mk m i 1 0

(* binary apply with memoization; op codes: 0 and, 1 or, 2 xor *)
let terminal_op op a b =
  match op with
  | 0 -> a land b
  | 1 -> a lor b
  | _ -> a lxor b

let rec apply m op a b =
  if a <= 1 && b <= 1 then terminal_op op a b
  else begin
    (* operator-specific short cuts *)
    let shortcut =
      match op with
      | 0 -> if a = 0 || b = 0 then Some 0 else if a = 1 then Some b else if b = 1 then Some a else if a = b then Some a else None
      | 1 -> if a = 1 || b = 1 then Some 1 else if a = 0 then Some b else if b = 0 then Some a else if a = b then Some a else None
      | _ -> if a = b then Some 0 else if a = 0 then Some b else if b = 0 then Some a else None
    in
    match shortcut with
    | Some r -> r
    | None -> (
      let key = (op, Int.min a b, Int.max a b) in
      match Hashtbl.find_opt m.apply_cache key with
      | Some r -> r
      | None ->
        let na = m.nodes.(a) and nb = m.nodes.(b) in
        let v = Int.min na.var nb.var in
        let a0, a1 = if na.var = v then (na.low, na.high) else (a, a) in
        let b0, b1 = if nb.var = v then (nb.low, nb.high) else (b, b) in
        let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
        Hashtbl.replace m.apply_cache key r;
        r)
  end

let conj m a b = apply m 0 a b
let disj m a b = apply m 1 a b
let xor m a b = apply m 2 a b

let neg m a = xor m a 1

let equal (a : t) (b : t) = a = b
let is_zero (_ : manager) b = b = 0
let is_one (_ : manager) b = b = 1

let rec eval m b assignment =
  if b <= 1 then b = 1
  else begin
    let n = m.nodes.(b) in
    let branch = if assignment land (1 lsl n.var) <> 0 then n.high else n.low in
    eval m branch assignment
  end

let rec restrict m b v value =
  check_var m v;
  if b <= 1 then b
  else begin
    let n = m.nodes.(b) in
    if n.var > v then b
    else if n.var = v then if value then n.high else n.low
    else mk m n.var (restrict m n.low v value) (restrict m n.high v value)
  end

let sat_count m b =
  let memo = Hashtbl.create 64 in
  (* returns count over variables >= from_var *)
  let rec count b from_var =
    if b = 0 then 0
    else if b = 1 then 1 lsl (m.nvars - from_var)
    else begin
      match Hashtbl.find_opt memo (b, from_var) with
      | Some c -> c
      | None ->
        let n = m.nodes.(b) in
        let skipped = n.var - from_var in
        let below = count n.low (n.var + 1) + count n.high (n.var + 1) in
        let c = below lsl skipped in
        Hashtbl.replace memo (b, from_var) c;
        c
    end
  in
  count b 0

(* dual: complement inputs and output; swapping low/high complements the
   inputs, so dual = neg of swapped *)
let dual m b =
  let memo = Hashtbl.create 64 in
  let rec swap b =
    if b <= 1 then b
    else
      match Hashtbl.find_opt memo b with
      | Some r -> r
      | None ->
        let n = m.nodes.(b) in
        let r = mk m n.var (swap n.high) (swap n.low) in
        Hashtbl.replace memo b r;
        r
  in
  neg m (swap b)

let of_sop m sop =
  if Sop.nvars sop > m.nvars then invalid_arg "Bdd.of_sop: too many variables";
  List.fold_left
    (fun acc cube ->
      let product =
        List.fold_left
          (fun p (v, polarity) -> conj m p (if polarity then var m v else nvar m v))
          1 (Cube.literals cube)
      in
      disj m acc product)
    0 (Sop.cubes sop)

let of_truthtable m tt =
  if Truthtable.nvars tt > m.nvars then invalid_arg "Bdd.of_truthtable: too many variables";
  (* Shannon expansion over the table *)
  let n = Truthtable.nvars tt in
  let rec build v prefix =
    if v = n then if Truthtable.eval tt prefix then 1 else 0
    else mk m v (build (v + 1) prefix) (build (v + 1) (prefix lor (1 lsl v)))
  in
  build 0 0

let node_count m b =
  let seen = Hashtbl.create 64 in
  let rec go b =
    if not (Hashtbl.mem seen b) then begin
      Hashtbl.replace seen b ();
      if b > 1 then begin
        let n = m.nodes.(b) in
        go n.low;
        go n.high
      end
    end
  in
  go b;
  Hashtbl.length seen
