type implicant = { value : int; mask : int }

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

module ImpSet = Set.Make (struct
  type t = implicant

  let compare a b =
    match Int.compare a.mask b.mask with 0 -> Int.compare a.value b.value | c -> c
end)

(* Classic tabular method: repeatedly merge implicants differing in exactly
   one constrained bit; implicants that never merge are prime. *)
let prime_implicants t =
  let nvars = Truthtable.nvars t in
  let start = List.map (fun m -> { value = m; mask = 0 }) (Truthtable.minterms t) in
  let rec rounds current primes =
    if current = [] then primes
    else begin
      let cur = Array.of_list (ImpSet.elements (ImpSet.of_list current)) in
      let n = Array.length cur in
      let merged_flag = Array.make n false in
      let next = ref ImpSet.empty in
      (* bucket by number of ones to cut the pairing work *)
      let buckets = Array.make (nvars + 1) [] in
      Array.iteri
        (fun i imp ->
          let ones = popcount (imp.value land lnot imp.mask) in
          buckets.(ones) <- i :: buckets.(ones))
        cur;
      for ones = 0 to nvars - 1 do
        List.iter
          (fun i ->
            List.iter
              (fun j ->
                let a = cur.(i) and b = cur.(j) in
                if a.mask = b.mask then begin
                  let diff = a.value lxor b.value in
                  if popcount diff = 1 then begin
                    merged_flag.(i) <- true;
                    merged_flag.(j) <- true;
                    next := ImpSet.add { value = a.value land b.value; mask = a.mask lor diff } !next
                  end
                end)
              buckets.(ones + 1))
          buckets.(ones)
      done;
      let primes =
        Array.to_list cur
        |> List.mapi (fun i imp -> (i, imp))
        |> List.filter_map (fun (i, imp) -> if merged_flag.(i) then None else Some imp)
        |> List.append primes
      in
      rounds (ImpSet.elements !next) primes
    end
  in
  rounds start []

let implicant_covers imp m = m land lnot imp.mask = imp.value land lnot imp.mask

let cube_of_implicant nvars imp =
  let lits = ref [] in
  for v = 0 to nvars - 1 do
    let bit = 1 lsl v in
    if imp.mask land bit = 0 then lits := (v, imp.value land bit <> 0) :: !lits
  done;
  Cube.of_literals !lits

(* Cover construction: essential primes first; the residue is solved as an
   exact minimum set cover by branch and bound (branching on the uncovered
   minterm with the fewest coverers, Petrick-style). A node budget bounds
   the search; if exceeded, the incumbent (seeded with a greedy solution)
   is returned, so the result is always a valid cover and exact for the
   small control functions lattices are built from. *)
let cover t =
  let nvars = Truthtable.nvars t in
  let primes = Array.of_list (prime_implicants t) in
  let minterms = Array.of_list (Truthtable.minterms t) in
  let nm = Array.length minterms in
  let np = Array.length primes in
  let covers = Array.init np (fun pi -> Array.map (implicant_covers primes.(pi)) minterms) in
  let coverers = Array.init nm (fun mi ->
      List.filter (fun pi -> covers.(pi).(mi)) (List.init np Fun.id))
  in
  (* essential primes: sole coverer of some minterm *)
  let essential = Array.make np false in
  Array.iter (function [ pi ] -> essential.(pi) <- true | _ -> ()) coverers;
  let covered = Array.make nm false in
  let base = ref [] in
  Array.iteri
    (fun pi is_essential ->
      if is_essential then begin
        base := pi :: !base;
        Array.iteri (fun mi c -> if c then covered.(mi) <- true) covers.(pi)
      end)
    essential;
  let uncovered0 = List.filter (fun mi -> not covered.(mi)) (List.init nm Fun.id) in
  (* greedy incumbent over the residue *)
  let greedy () =
    let cov = Array.copy covered in
    let chosen = ref [] in
    let remaining = ref (List.length uncovered0) in
    while !remaining > 0 do
      let best = ref (-1) and best_gain = ref 0 in
      for pi = 0 to np - 1 do
        let gain = ref 0 in
        Array.iteri (fun mi c -> if c && not cov.(mi) then incr gain) covers.(pi);
        if !gain > !best_gain then begin
          best := pi;
          best_gain := !gain
        end
      done;
      if !best < 0 then failwith "Qm.cover: uncoverable minterm (internal error)";
      chosen := !best :: !chosen;
      Array.iteri
        (fun mi c ->
          if c && not cov.(mi) then begin
            cov.(mi) <- true;
            decr remaining
          end)
        covers.(!best)
    done;
    !chosen
  in
  let best_solution = ref (greedy ()) in
  let budget = ref 100_000 in
  (* branch and bound on the residue *)
  let cov = Array.copy covered in
  let rec search chosen depth =
    decr budget;
    if !budget > 0 && depth < List.length !best_solution then begin
      match
        (* pick the hardest uncovered minterm *)
        List.fold_left
          (fun acc mi ->
            if cov.(mi) then acc
            else begin
              let k = List.length (List.filter (fun pi -> not (List.mem pi chosen)) coverers.(mi)) in
              ignore k;
              match acc with
              | Some (_, best_k) when best_k <= List.length coverers.(mi) -> acc
              | Some _ | None -> Some (mi, List.length coverers.(mi))
            end)
          None uncovered0
      with
      | None -> best_solution := chosen (* everything covered: new incumbent *)
      | Some (mi, _) ->
        List.iter
          (fun pi ->
            let newly = ref [] in
            Array.iteri
              (fun mj c ->
                if c && not cov.(mj) then begin
                  cov.(mj) <- true;
                  newly := mj :: !newly
                end)
              covers.(pi);
            search (pi :: chosen) (depth + 1);
            List.iter (fun mj -> cov.(mj) <- false) !newly)
          coverers.(mi)
    end
  in
  if uncovered0 <> [] && np <= 64 then search [] 0;
  let chosen = List.sort_uniq Int.compare (!base @ !best_solution) in
  Sop.of_cubes nvars (List.map (fun pi -> cube_of_implicant nvars primes.(pi)) chosen)

let minimal_sop_of_minterms nvars ms = cover (Truthtable.of_minterms nvars ms)
