(** Quine-McCluskey two-level minimization.

    Produces the prime implicants of a truth table and a (near-)minimal
    irredundant sum-of-products cover: essential primes first, then a greedy
    cover of the residue. Exact enough for the small control functions that
    get mapped onto switching lattices (the paper's examples have 3-4
    inputs); practical up to ~12 variables. *)

type implicant = {
  value : int;  (** fixed variable values (within [mask]-cleared positions) *)
  mask : int;  (** bits set where the implicant does not constrain the variable *)
}

(** [prime_implicants t] is the complete prime-implicant list of [t]. *)
val prime_implicants : Truthtable.t -> implicant list

(** [cover t] is an irredundant SOP cover of [t] built from essential prime
    implicants plus a greedy completion. The result evaluates exactly
    as [t]. *)
val cover : Truthtable.t -> Sop.t

(** [cube_of_implicant nvars imp] converts an implicant to a cube. *)
val cube_of_implicant : int -> implicant -> Cube.t

(** [minimal_sop_of_minterms nvars ms] is [cover (of_minterms nvars ms)]. *)
val minimal_sop_of_minterms : int -> int list -> Sop.t
