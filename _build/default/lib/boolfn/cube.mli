(** Product terms (cubes) over at most 62 Boolean variables.

    A cube is a conjunction of literals stored as two bitmasks: [pos] holds
    the positive literals, [neg] the complemented ones. The constant-true
    cube has both masks empty. A cube mentioning [x] and [not x] together is
    contradictory and rejected by the constructors. *)

type t = private { pos : int; neg : int }

exception Contradictory
(** Raised when a construction would produce [x /\ not x]. *)

(** Maximum supported variable index + 1. *)
val max_vars : int

(** The constant-true cube (empty product). *)
val one : t

(** [of_masks ~pos ~neg] validates and builds a cube.
    Raises [Contradictory] when the masks overlap. *)
val of_masks : pos:int -> neg:int -> t

(** [of_literals lits] builds a cube from [(variable, polarity)] pairs;
    polarity [true] means the positive literal. *)
val of_literals : (int * bool) list -> t

(** [literals c] lists the cube's literals as [(variable, polarity)] pairs in
    increasing variable order. *)
val literals : t -> (int * bool) list

(** [and_literal c var polarity] extends the product with one more literal.
    Raises [Contradictory] on conflict; idempotent on repetition. *)
val and_literal : t -> int -> bool -> t

(** [size c] is the number of literals. *)
val size : t -> int

(** [implies a b] is [true] when cube [a] implies cube [b] as functions,
    i.e. [b]'s literal set is a subset of [a]'s. *)
val implies : t -> t -> bool

(** [eval c assignment] evaluates the product under an assignment given as a
    bitmask of variable values. *)
val eval : t -> int -> bool

(** [compare] is a total order suitable for sorting/deduplication. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [to_string ~names c] renders e.g. ["a b' c"]; [names] supplies variable
    names by index. The empty cube renders as ["1"]. *)
val to_string : names:(int -> string) -> t -> string
