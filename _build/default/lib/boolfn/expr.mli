(** A small Boolean-expression language for examples and the CLI.

    Grammar (usual precedences, tightest first):
    {v
      expr    ::= term ('+' term | '|' term)*
      term    ::= factor ('&' factor | '*' factor | factor)*   (juxtaposition = AND)
      factor  ::= '!' factor | atom '\'' * | atom
      atom    ::= ident | '0' | '1' | '(' expr ')'
    v}
    Postfix ['] and prefix [!] both complement. Variables are named by
    identifiers ([a-z A-Z 0-9 _], starting with a letter or underscore) and
    numbered in order of first appearance. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

exception Parse_error of string

(** [parse s] parses an expression, returning the AST and the variable
    names in index order. Also accepts ['^'] for XOR. *)
val parse : string -> t * string array

(** [eval e assignment] evaluates under a variable bitmask. *)
val eval : t -> int -> bool

(** [to_truthtable e ~nvars] tabulates the expression. *)
val to_truthtable : t -> nvars:int -> Truthtable.t

(** [sop_of_string s] parses, tabulates and minimizes in one step; returns
    the SOP and the variable names. *)
val sop_of_string : string -> Sop.t * string array
