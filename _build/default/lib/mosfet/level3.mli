(** Semi-empirical level-3-style MOSFET model.

    The paper's Section VI-A plans "a more accurate model with more
    specific equations, such as level-3 and BSIM, which includes ... gate
    and terminal capacitors and short-channel effect". This model extends
    the level-1 equations with the two dominant short-channel corrections:

    - {e vertical-field mobility degradation}: the gain factor shrinks as
      [beta_eff = beta / (1 + theta (VGS - Vth))];
    - {e velocity saturation}: carriers saturate at [vmax], which caps the
      saturation voltage at [vdsat = Vov Vc / (Vov + Vc)] with the critical
      voltage [Vc = vmax L / mu_eff_normalized], and divides the triode
      current by [1 + VDS / Vc].

    With [theta = 0] and [vmax = infinity] the model reduces exactly to
    level 1. Conductances are obtained by central finite differences; the
    current expression is continuous in both arguments. *)

type params = {
  base : Level1.params;
  theta : float;  (** mobility-degradation coefficient, 1/V; >= 0 *)
  vc : float;  (** velocity-saturation critical voltage [vmax L / mu], V; > 0 *)
}

(** [of_level1 ?theta ?vmax ?mu base] derives level-3 parameters;
    [vc = vmax * l / mu]. Defaults: [theta = 0.1 /V], [vmax = 1e5 m/s],
    [mu = 0.05 m^2/Vs]. *)
val of_level1 : ?theta:float -> ?vmax:float -> ?mu:float -> Level1.params -> params

(** [ids p ~vgs ~vds] — drain current, [vds >= 0]. *)
val ids : params -> vgs:float -> vds:float -> float

(** [vdsat p ~vgs] — velocity-saturation-limited saturation voltage. *)
val vdsat : params -> vgs:float -> float

(** [gm p ~vgs ~vds] / [gds p ~vgs ~vds] — finite-difference
    conductances. *)
val gm : params -> vgs:float -> vds:float -> float

val gds : params -> vgs:float -> vds:float -> float
