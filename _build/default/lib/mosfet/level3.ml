type params = { base : Level1.params; theta : float; vc : float }

let of_level1 ?(theta = 0.1) ?(vmax = 1e5) ?(mu = 0.05) base =
  if theta < 0.0 then invalid_arg "Level3.of_level1: theta must be >= 0";
  if vmax <= 0.0 || mu <= 0.0 then invalid_arg "Level3.of_level1: vmax and mu must be > 0";
  { base; theta; vc = vmax *. base.Level1.l /. mu }

let vdsat p ~vgs =
  let vov = Float.max 0.0 (vgs -. p.base.Level1.vth) in
  if vov = 0.0 then 0.0 else vov *. p.vc /. (vov +. p.vc)

let ids p ~vgs ~vds =
  if vds < 0.0 then invalid_arg "Level3.ids: vds must be >= 0";
  let vov = vgs -. p.base.Level1.vth in
  if vov <= 0.0 then 0.0
  else begin
    let beta = Level1.beta p.base /. (1.0 +. (p.theta *. vov)) in
    let vsat = vdsat p ~vgs in
    let triode v = beta *. ((vov -. (0.5 *. v)) *. v) /. (1.0 +. (v /. p.vc)) in
    if vds <= vsat then triode vds *. (1.0 +. (p.base.Level1.lambda *. vds))
    else triode vsat *. (1.0 +. (p.base.Level1.lambda *. vds))
  end

let derivative f x =
  let h = 1e-6 in
  let lo = Float.max 0.0 (x -. h) in
  (f (x +. h) -. f lo) /. (x +. h -. lo)

let gm p ~vgs ~vds = derivative (fun vgs -> ids p ~vgs ~vds) vgs

let gds p ~vgs ~vds = derivative (fun vds -> ids p ~vgs ~vds) vds
