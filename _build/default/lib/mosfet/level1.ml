type params = { kp : float; vth : float; lambda : float; w : float; l : float }

type region = Cutoff | Triode | Saturation

let beta p = p.kp *. p.w /. p.l

let vdsat p ~vgs = Float.max 0.0 (vgs -. p.vth)

let check_vds vds = if vds < 0.0 then invalid_arg "Level1: vds must be >= 0 (use ids_signed)"

let region p ~vgs ~vds =
  check_vds vds;
  let vov = vgs -. p.vth in
  if vov <= 0.0 then Cutoff else if vds <= vov then Triode else Saturation

let ids p ~vgs ~vds =
  match region p ~vgs ~vds with
  | Cutoff -> 0.0
  | Triode ->
    let vov = vgs -. p.vth in
    beta p *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. (1.0 +. (p.lambda *. vds))
  | Saturation ->
    let vov = vgs -. p.vth in
    0.5 *. beta p *. vov *. vov *. (1.0 +. (p.lambda *. vds))

let ids_signed p ~vg ~vd ~vs =
  if vd >= vs then ids p ~vgs:(vg -. vs) ~vds:(vd -. vs)
  else -.ids p ~vgs:(vg -. vd) ~vds:(vs -. vd)

let gm p ~vgs ~vds =
  match region p ~vgs ~vds with
  | Cutoff -> 0.0
  | Triode -> beta p *. vds *. (1.0 +. (p.lambda *. vds))
  | Saturation ->
    let vov = vgs -. p.vth in
    beta p *. vov *. (1.0 +. (p.lambda *. vds))

let gds p ~vgs ~vds =
  match region p ~vgs ~vds with
  | Cutoff -> 0.0
  | Triode ->
    let vov = vgs -. p.vth in
    let b = beta p in
    (b *. (vov -. vds) *. (1.0 +. (p.lambda *. vds)))
    +. (b *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. p.lambda)
  | Saturation ->
    let vov = vgs -. p.vth in
    0.5 *. beta p *. vov *. vov *. p.lambda

let pp_params fmt p =
  Format.fprintf fmt "{kp=%.4g A/V^2; vth=%.4g V; lambda=%.4g 1/V; W=%.3g m; L=%.3g m}" p.kp p.vth
    p.lambda p.w p.l
