lib/mosfet/model.mli: Format Level1 Level3
