lib/mosfet/model.ml: Format Level1 Level3
