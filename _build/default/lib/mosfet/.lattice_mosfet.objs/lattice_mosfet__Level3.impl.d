lib/mosfet/level3.ml: Float Level1
