lib/mosfet/level1.mli: Format
