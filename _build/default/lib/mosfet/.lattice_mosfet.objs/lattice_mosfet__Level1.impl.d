lib/mosfet/level1.ml: Float Format
