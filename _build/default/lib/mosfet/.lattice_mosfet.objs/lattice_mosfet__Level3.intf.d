lib/mosfet/level3.mli: Level1
