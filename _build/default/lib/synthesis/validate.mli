(** Semantic validation of assigned lattices against target functions. *)

(** [realizes grid target] is [true] when the lattice function of [grid]
    (path existence between the plates) equals [target] on every assignment.
    The grid may mention fewer variables than [target]; the comparison runs
    over [Truthtable.nvars target] inputs. *)
val realizes : Lattice_core.Grid.t -> Lattice_boolfn.Truthtable.t -> bool

(** [counterexample grid target] is [Some assignment] witnessing a
    disagreement, or [None] when [realizes grid target]. *)
val counterexample : Lattice_core.Grid.t -> Lattice_boolfn.Truthtable.t -> int option
