(** A small library of known lattice realizations used by the paper.

    Each grid is validated against its target function by the test suite;
    the XOR3 lattices correspond to paper Fig 3 (variable order
    [a = 0], [b = 1], [c = 2]). *)

(** Paper Fig 3b: XOR3 on the minimum-size 3 x 3 lattice (uses a constant-1
    site, as in the paper's figure). Found by [Exhaustive.find]. *)
val xor3_3x3 : Lattice_core.Grid.t

(** Paper Fig 3a: XOR3 on a 3 x 4 lattice using literals only. *)
val xor3_3x4 : Lattice_core.Grid.t

(** XNOR3 (complement of XOR3) on 3 x 3 — obtained from [xor3_3x3] by
    complementing the [c] literals ([XNOR3 (a,b,c) = XOR3 (a,b,c')]). Used
    as the pull-up network of the complementary XOR3 circuit. *)
val xnor3_3x3 : Lattice_core.Grid.t

(** 3-input majority (the classic lattice-friendly function) on 2 x 3. *)
val maj3_2x3 : Lattice_core.Grid.t

(** The paper's XOR3 sum of products:
    [out = abc + a b' c' + a' b c' + a' b' c]. *)
val xor3_sop : Lattice_boolfn.Sop.t

(** The XOR3 truth table (parity of 3). *)
val xor3 : Lattice_boolfn.Truthtable.t

(** Variable names [a], [b], [c] for rendering the grids above. *)
val abc_names : int -> string
