(** The Altun-Riedel dual-based lattice synthesis method
    (IEEE Trans. Computers 2012, the paper's reference [9]).

    Given a target function [f], take an irredundant SOP of [f] with
    products [P1 .. Pk] (lattice columns) and an irredundant SOP of the dual
    [fD] with products [Q1 .. Qr] (lattice rows). Any implicant of [f] and
    any implicant of [fD] share at least one literal with the same polarity,
    so every site [(i, j)] can be assigned such a shared literal; the
    resulting [r x k] lattice realizes [f]. Self-dual functions such as
    3-input XOR get a [k x k] lattice. *)

type result = {
  grid : Lattice_core.Grid.t;
  f_sop : Lattice_boolfn.Sop.t;  (** the column SOP used *)
  dual_sop : Lattice_boolfn.Sop.t;  (** the row SOP used *)
}

exception No_shared_literal of int * int
(** Raised if some row/column product pair shares no literal — impossible
    for a genuine dual pair; indicates caller-supplied SOPs that are not
    [f] and [f]'s dual. *)

(** [synthesize target] minimizes [target] and its dual with
    Quine-McCluskey and builds the lattice. Constant functions are mapped to
    a 1 x 1 constant lattice. *)
val synthesize : Lattice_boolfn.Truthtable.t -> result

(** [of_sops ~f_sop ~dual_sop] runs the construction on caller-supplied
    covers (useful for reproducing a specific published lattice).
    Raises [No_shared_literal] when the covers are not dual. *)
val of_sops : f_sop:Lattice_boolfn.Sop.t -> dual_sop:Lattice_boolfn.Sop.t -> result
