module Grid = Lattice_core.Grid
module Sop = Lattice_boolfn.Sop
module Cube = Lattice_boolfn.Cube
module Tt = Lattice_boolfn.Truthtable

let a = 0
and b = 1
and c = 2

let lit v p = Grid.Lit (v, p)

(* Fig 3b: minimum-size XOR3 with a constant-1 centre site. *)
let xor3_3x3 =
  Grid.create 3 3
    [|
      lit a true; lit b true; lit a false;
      lit c false; Grid.Const true; lit c true;
      lit a false; lit b false; lit a true;
    |]

(* Fig 3a: XOR3 on 3 x 4, literals only. *)
let xor3_3x4 =
  Grid.create 3 4
    [|
      lit a true; lit a true; lit a false; lit a false;
      lit b true; lit b false; lit b true; lit b false;
      lit c true; lit c false; lit c false; lit c true;
    |]

(* complementing c turns odd parity into even parity *)
let xnor3_3x3 =
  let flip_c = function
    | Grid.Lit (v, p) when v = c -> Grid.Lit (v, not p)
    | (Grid.Lit _ | Grid.Const _) as e -> e
  in
  Grid.create 3 3 (Array.map flip_c xor3_3x3.Grid.entries)

let maj3_2x3 =
  Grid.create 2 3 [| lit a true; lit a true; lit b true; lit b true; lit c true; lit c true |]

let xor3_sop =
  Sop.of_cubes 3
    [
      Cube.of_literals [ (a, true); (b, true); (c, true) ];
      Cube.of_literals [ (a, true); (b, false); (c, false) ];
      Cube.of_literals [ (a, false); (b, true); (c, false) ];
      Cube.of_literals [ (a, false); (b, false); (c, true) ];
    ]

let xor3 = Tt.xor_n 3

let abc_names i = Sop.alpha_names i
