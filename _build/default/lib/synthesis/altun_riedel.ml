module Sop = Lattice_boolfn.Sop
module Cube = Lattice_boolfn.Cube
module Tt = Lattice_boolfn.Truthtable
module Grid = Lattice_core.Grid

type result = { grid : Grid.t; f_sop : Sop.t; dual_sop : Sop.t }

exception No_shared_literal of int * int

let lowest_bit m =
  let rec go i = if m land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let shared_literal row_idx col_idx q p =
  let (pq : Cube.t) = q and (pp : Cube.t) = p in
  let pos = pq.Cube.pos land pp.Cube.pos in
  let neg = pq.Cube.neg land pp.Cube.neg in
  if pos <> 0 then Grid.Lit (lowest_bit pos, true)
  else if neg <> 0 then Grid.Lit (lowest_bit neg, false)
  else raise (No_shared_literal (row_idx, col_idx))

let of_sops ~f_sop ~dual_sop =
  let cols = Array.of_list (Sop.cubes f_sop) in
  let rows = Array.of_list (Sop.cubes dual_sop) in
  let k = Array.length cols and r = Array.length rows in
  if k = 0 || r = 0 then invalid_arg "Altun_riedel.of_sops: constant function; use synthesize";
  let entries =
    Array.init (r * k) (fun idx ->
        let i = idx / k and j = idx mod k in
        shared_literal i j rows.(i) cols.(j))
  in
  { grid = Grid.create r k entries; f_sop; dual_sop }

let constant_result nvars b =
  {
    grid = Grid.create 1 1 [| Grid.Const b |];
    f_sop = (if b then Sop.one nvars else Sop.zero nvars);
    dual_sop = (if b then Sop.zero nvars else Sop.one nvars);
  }

let synthesize target =
  let nvars = Tt.nvars target in
  let ones = Tt.count_ones target in
  if ones = 0 then constant_result nvars false
  else if ones = 1 lsl nvars then constant_result nvars true
  else begin
    let f_sop = Lattice_boolfn.Qm.cover target in
    let dual_sop = Lattice_boolfn.Qm.cover (Tt.dual target) in
    of_sops ~f_sop ~dual_sop
  end
