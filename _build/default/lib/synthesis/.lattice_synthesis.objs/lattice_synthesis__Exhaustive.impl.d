lib/synthesis/exhaustive.ml: Array Bool Bytes Fun Int Lattice_boolfn Lattice_core List Option
