lib/synthesis/validate.ml: Bool Lattice_boolfn Lattice_core Option
