lib/synthesis/altun_riedel.ml: Array Lattice_boolfn Lattice_core
