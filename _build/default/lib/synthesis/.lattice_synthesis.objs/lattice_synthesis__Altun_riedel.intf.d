lib/synthesis/altun_riedel.mli: Lattice_boolfn Lattice_core
