lib/synthesis/library.mli: Lattice_boolfn Lattice_core
