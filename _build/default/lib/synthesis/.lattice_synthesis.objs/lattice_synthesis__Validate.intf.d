lib/synthesis/validate.mli: Lattice_boolfn Lattice_core
