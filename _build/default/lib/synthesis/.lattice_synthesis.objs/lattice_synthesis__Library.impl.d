lib/synthesis/library.ml: Array Lattice_boolfn Lattice_core
