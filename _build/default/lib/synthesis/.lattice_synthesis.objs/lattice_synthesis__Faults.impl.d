lib/synthesis/faults.ml: Array Bool Fun Hashtbl Int Lattice_core List Option Printf
