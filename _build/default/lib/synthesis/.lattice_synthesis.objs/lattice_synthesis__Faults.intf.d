lib/synthesis/faults.mli: Lattice_core
