lib/synthesis/exhaustive.mli: Lattice_boolfn Lattice_core
