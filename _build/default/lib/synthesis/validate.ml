module Tt = Lattice_boolfn.Truthtable

let counterexample grid target =
  let nvars = Tt.nvars target in
  if Lattice_core.Grid.nvars grid > nvars then
    invalid_arg "Validate: grid mentions more variables than the target";
  let limit = 1 lsl nvars in
  let rec go m =
    if m >= limit then None
    else if Bool.equal (Lattice_core.Connectivity.eval grid m) (Tt.eval target m) then go (m + 1)
    else Some m
  in
  go 0

let realizes grid target = Option.is_none (counterexample grid target)
