(** Every reproduction experiment, in the paper's order. *)

(** [reports ()] runs every table/figure reproduction (using the quick
    Table I setting unless [FTL_TABLE1_FULL] is set) plus the Section VI-A
    complementary-structure extension, and returns the rendered reports. *)
val reports : unit -> Report.t list

(** [print_all ()] renders everything to stdout. *)
val print_all : unit -> unit
