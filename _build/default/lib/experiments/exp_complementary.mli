(** Extension experiment (paper Section VI-A): complementary lattice
    structure.

    The paper forecasts replacing the pull-up resistor with a second
    four-terminal lattice implementing the complement function: "this
    complementary structure obviously makes the static power consumption
    almost zero and eliminates the dominance of the rise time delay caused
    by a high pull-up resistor".

    Here both XOR3 circuits are simulated — the Fig 11 resistor-load
    version and a complementary version with an XNOR3 pull-up lattice — and
    the forecast quantified: static power per input state, worst-case
    propagation behaviour (rise/fall), and output levels. *)

type style_result = {
  static_power_per_state : float array;  (** W, per input combination (8) *)
  static_power_mean : float;  (** W *)
  v_low : float;
  v_high : float;
  rise_time : float option;  (** 10-90% of the circuit's own swing *)
  fall_time : float option;
  mid_rise : float option;  (** time from 0.2 VDD to 0.5 VDD: propagation proxy *)
  functional_pass : bool;
}

type result = {
  resistor : style_result;
  complementary : style_result;
  power_reduction : float;  (** resistor mean power / complementary mean power *)
  rise_speedup : float;  (** resistor rise / complementary rise (nan if unmeasured) *)
}

val run : ?bit_time:float -> ?h:float -> unit -> result
val report : unit -> Report.t
