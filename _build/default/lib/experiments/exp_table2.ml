let report () =
  {
    Report.title = "Table II: structural features of the four-terminal devices";
    rows =
      [
        Report.row ~id:"TableII" ~metric:"device presets encoded" ~paper:"3 shapes x 2 gates"
          ~measured:(Printf.sprintf "%d variants" (List.length Lattice_device.Presets.all))
          ();
      ];
    body = Lattice_device.Presets.render_table2 ();
  }
