module D = Lattice_device
module Fit = Lattice_fit.Fit

type result = {
  extraction : Fit.extraction;
  scenario2 : Fit.scenario;
  predicted : float array;
  vth_electrostatic : float;
}

let run () =
  let v = D.Presets.find ~shape:D.Geometry.Square ~dielectric:D.Material.HfO2 in
  let model = v.D.Presets.model in
  let extraction = Fit.extract model in
  let scenario2 = Fit.scenario2 model ~points:51 in
  let predicted = Fit.predict extraction ~geometry:model.D.Device_model.geometry scenario2 in
  { extraction; scenario2; predicted; vth_electrostatic = model.D.Device_model.vth }

let report () =
  let r = run () in
  let e = r.extraction in
  let rows =
    [
      Report.row_f ~id:"Fig10" ~metric:"extracted Vth, V" ~paper:0.16
        ~measured:e.Fit.vth ~note:"paper extracts ~Vth of the HfO2 square device" ();
      Report.row_f ~id:"Fig10" ~metric:"extracted Kp, A/V^2" ~paper:nan ~measured:e.Fit.kp ();
      Report.row_f ~id:"Fig10" ~metric:"extracted lambda, 1/V" ~paper:nan ~measured:e.Fit.lambda ();
      Report.row_f ~id:"Fig10" ~metric:"fit RMSE, A" ~paper:nan ~measured:e.Fit.rmse
        ~note:"paper: smallest RMSE via MATLAB toolbox" ();
      Report.row_f ~id:"Fig10" ~metric:"fit R^2" ~paper:nan ~measured:e.Fit.r_squared ();
      Report.row ~id:"Fig10" ~metric:"LM converged" ~paper:"-"
        ~measured:(if e.Fit.converged then "yes" else "NO") ();
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "IDS-VDS at VGS = 5 V: data vs fitted level-1 curve\n";
  Buffer.add_string buf "  Vds      data (A)        fit (A)\n";
  Array.iteri
    (fun i x ->
      if i mod 5 = 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-5.1f  %12.5g   %12.5g\n" x r.scenario2.Fit.ys.(i) r.predicted.(i)))
    r.scenario2.Fit.xs;
  { Report.title = "Fig 10: level-1 parameter extraction (square/HfO2)"; rows; body = Buffer.contents buf }
