(** Experiment F11 — paper Fig 11: SPICE transient of the inverse XOR3 gate
    (3 x 3 lattice pull-down, 500 k pull-up, VDD = 1.2 V, 1 fF terminal
    caps, 10 fF output cap).

    Paper readings: zero-state output voltage ~0.22 V, rise time ~11.3 ns,
    fall time ~4.7 ns; the lattice "operates as expected". *)

type result = {
  times : float array;
  out : float array;
  v_low : float;  (** zero-state output level *)
  v_high : float;
  rise_time : float option;
  fall_time : float option;
  functional_pass : bool;  (** output = NOT XOR3 at every settled input combination *)
  slot_values : (int * float * bool) list;  (** combo index, sampled V, expected logic-1 *)
}

(** [run ?integrator ?bit_time ?h ()] simulates all 8 input combinations
    (defaults: trapezoidal, 100 ns per combination, 0.5 ns step). *)
val run :
  ?integrator:Lattice_spice.Transient.integrator -> ?bit_time:float -> ?h:float -> unit -> result

val report : unit -> Report.t
