module Sp = Lattice_spice

type result = {
  ns : int array;
  currents : float array;
  voltages : float array;
  decay_ratio : float;
  linearity_r2 : float;
}

let run ?(max_n = 21) () =
  let ns = Array.init max_n (fun i -> i + 1) in
  let currents = Array.map (fun n -> Sp.Series_chain.current ~n ~v_top:1.2 ()) ns in
  let voltages =
    Array.map (fun n -> Sp.Series_chain.voltage_for_current ~n ~i_target:5.5e-6 ()) ns
  in
  let xs = Array.map float_of_int ns in
  let slope, intercept = Lattice_numerics.Stats.linear_regression xs voltages in
  let fitted = Array.map (fun x -> (slope *. x) +. intercept) xs in
  {
    ns;
    currents;
    voltages;
    decay_ratio = currents.(0) /. currents.(max_n - 1);
    linearity_r2 = Lattice_numerics.Stats.r_squared voltages fitted;
  }

let report ?max_n () =
  let r = run ?max_n () in
  let last = Array.length r.ns - 1 in
  let at n = r.currents.(n - 1) in
  let rows =
    [
      Report.row_f ~id:"Fig12a" ~metric:"I at N=1, uA" ~paper:11.12 ~measured:(at 1 *. 1e6) ();
      Report.row_f ~id:"Fig12a" ~metric:"I at N=5, uA" ~paper:2.2
        ~measured:(at (Int.min 5 (last + 1)) *. 1e6) ();
      Report.row_f ~id:"Fig12a" ~metric:"I at N=21, uA" ~paper:0.52
        ~measured:(r.currents.(last) *. 1e6) ();
      Report.row_f ~id:"Fig12a" ~metric:"decay ratio I(1)/I(N)" ~paper:21.4
        ~measured:r.decay_ratio ~note:"shape of the decay curve" ();
      Report.row_f ~id:"Fig12b" ~metric:"V for 5.5 uA at N=21, V" ~paper:2.5
        ~measured:r.voltages.(last) ();
      Report.row_f ~id:"Fig12b" ~metric:"linearity R^2 of V(N)" ~paper:nan
        ~measured:r.linearity_r2 ~note:"paper: 'values increase almost linearly'" ();
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "  N    I @ 1.2 V (uA)    V @ 5.5 uA (V)\n";
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "  %-3d  %14.4g    %14.4g\n" n (r.currents.(i) *. 1e6) r.voltages.(i)))
    r.ns;
  { Report.title = "Fig 12: switches in series (drive capability)"; rows; body = Buffer.contents buf }
