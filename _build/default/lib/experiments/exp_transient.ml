module Sp = Lattice_spice

type result = {
  times : float array;
  out : float array;
  v_low : float;
  v_high : float;
  rise_time : float option;
  fall_time : float option;
  functional_pass : bool;
  slot_values : (int * float * bool) list;
}

let run ?(integrator = Sp.Transient.Trapezoidal) ?(bit_time = 100e-9) ?(h = 0.5e-9) () =
  let grid = Lattice_synthesis.Library.xor3_3x3 in
  let vdd = 1.2 in
  let lc =
    Sp.Lattice_circuit.build grid ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd ~bit_time)
  in
  let options = { Sp.Transient.default_options with integrator } in
  let r =
    Sp.Transient.run ~options lc.Sp.Lattice_circuit.netlist ~h ~t_stop:(8.0 *. bit_time)
      ~record:[ lc.Sp.Lattice_circuit.output_node ] ()
  in
  let out = Sp.Transient.signal r lc.Sp.Lattice_circuit.output_node in
  let times = r.Sp.Transient.times in
  let v_low, v_high = Sp.Measure.steady_levels times out ~settle:(bit_time /. 5.0) in
  let slot_values =
    List.map
      (fun k ->
        let t = (float_of_int k +. 0.95) *. bit_time in
        let v = Sp.Measure.value_at times out t in
        (* binary-counter stimulus: input i is bit i of the combo index;
           the circuit computes NOT XOR3 *)
        let parity = (k land 1) lxor ((k lsr 1) land 1) lxor ((k lsr 2) land 1) in
        (k, v, parity = 0))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let functional_pass =
    List.for_all (fun (_, v, expect_one) -> Bool.equal (v > vdd /. 2.0) expect_one) slot_values
  in
  {
    times;
    out;
    v_low;
    v_high;
    rise_time = Sp.Measure.rise_time times out ~low:v_low ~high:v_high;
    fall_time = Sp.Measure.fall_time times out ~low:v_low ~high:v_high;
    functional_pass;
    slot_values;
  }

let report () =
  let r = run () in
  let opt_ns = function Some t -> Printf.sprintf "%.3g" (t *. 1e9) | None -> "-" in
  let rows =
    [
      Report.row ~id:"Fig11" ~metric:"computes NOT XOR3 over all 8 combos" ~paper:"yes"
        ~measured:(if r.functional_pass then "yes" else "NO") ();
      Report.row_f ~id:"Fig11" ~metric:"zero-state output, V" ~paper:0.22 ~measured:r.v_low ();
      Report.row ~id:"Fig11" ~metric:"rise time (10-90%), ns" ~paper:"11.3"
        ~measured:(opt_ns r.rise_time) ();
      Report.row ~id:"Fig11" ~metric:"fall time (90-10%), ns" ~paper:"4.7"
        ~measured:(opt_ns r.fall_time) ();
    ]
  in
  let body =
    Sp.Measure.ascii_plot ~width:64 ~height:12 ~label:"out (inverse XOR3)" r.times r.out
  in
  { Report.title = "Fig 11: transient of the inverse XOR3 lattice"; rows; body }
