(** Paper-vs-measured reporting shared by the bench harness, the CLI and
    EXPERIMENTS.md generation. *)

type row = {
  id : string;  (** experiment id, e.g. ["Fig11"] *)
  metric : string;
  paper : string;  (** value as printed in the paper, or ["-"] *)
  measured : string;
  note : string;
}

type t = {
  title : string;
  rows : row list;
  body : string;  (** free-form text: tables, ASCII plots *)
}

(** [row ~id ~metric ~paper ~measured ?note ()] builds a row from
    preformatted strings. *)
val row : id:string -> metric:string -> paper:string -> measured:string -> ?note:string -> unit -> row

(** [row_f] formats float values with [%.4g]; [paper = nan] renders
    as ["-"]. *)
val row_f : id:string -> metric:string -> paper:float -> measured:float -> ?note:string -> unit -> row

(** [render report] lays the title, the row table and the body out for a
    terminal. *)
val render : t -> string
