(** Experiment T1 — paper Table I: number of products of the m x n lattice
    function. *)

type result = {
  max_dim : int;
  mismatches : (int * int * int * int) list;  (** rows, cols, got, want *)
  table_text : string;
}

(** [run ?max_dim ()] recomputes Table I up to [max_dim] (default 8; the
    9 x 9 entry enumerates 38.9 M paths and takes seconds — enable it with
    [max_dim:9] or by setting the [FTL_TABLE1_FULL] environment variable). *)
val run : ?max_dim:int -> unit -> result

val report : ?max_dim:int -> unit -> Report.t
