(** Experiment (Section III-B): the 16 drain/source operating cases.

    The paper explores DSFF, SFDF, 1-drain-3-source, 2-2 and 3-1 cases "in
    the symmetric and non-symmetric operating conditions" and reports "good
    correlations between the symmetric simulations". Here the compact model
    evaluates every case at VGS = VDS = 5 V and the report groups cases
    that are geometric rotations/reflections of each other — their total
    drain currents must agree exactly, and they do. *)

type case_result = {
  name : string;
  currents : float array;  (** into T1..T4, A *)
  total_drain : float;  (** sum of positive terminal currents *)
}

type result = {
  cases : case_result list;
  symmetry_groups : (string list * float) list;
      (** rotation-equivalent case names with their common drain current *)
  symmetry_holds : bool;
}

val run : ?shape:Lattice_device.Geometry.shape -> unit -> result
val report : ?shape:Lattice_device.Geometry.shape -> unit -> Report.t
