(** Experiment F12 — paper Fig 12: drive capability of series-connected
    switches.

    (a) current through a chain of N ON switches at a constant 1.2 V
    (paper: 11.12 uA at N = 1, ~2.2 uA at N = 5, 1-2 uA for 5..11,
    0.52 uA at N = 21);
    (b) supply voltage required for a constant 5.5 uA versus N (paper:
    almost linear, reaching 2.5 V at N = 21). *)

type result = {
  ns : int array;  (** chain lengths 1..21 *)
  currents : float array;  (** Fig 12a, A *)
  voltages : float array;  (** Fig 12b, V *)
  decay_ratio : float;  (** I(1) / I(21); paper: 11.12 / 0.52 ~ 21.4 *)
  linearity_r2 : float;  (** R^2 of a linear fit to Fig 12b *)
}

val run : ?max_n:int -> unit -> result
val report : ?max_n:int -> unit -> Report.t
