(** Extension experiment (paper Section VI-A): maximum frequency and
    dynamic energy.

    The paper plans an analysis including "power consumption, delay
    (maximum frequency), phase margin". Measured here for the XOR3
    circuit, in both load styles:

    - small-signal bandwidth of the output node (the -3 dB corner of the
      supply-to-output transfer — the output-pole proxy for maximum
      operating frequency) and its phase at the corner;
    - dynamic energy per full 8-combination input cycle, by integrating the
      supply current over the Fig 11 transient. *)

type style_metrics = {
  f3db_hz : float option;  (** output-high state (weak for n-type pull-up) *)
  f3db_low_hz : float option;  (** output-low state (strongly driven) *)
  phase_at_f3db_deg : float;
  cycle_energy_j : float;  (** energy drawn from VDD over one 8-slot cycle *)
}

type result = {
  resistor : style_metrics;
  complementary : style_metrics;
  bandwidth_gain : float;  (** complementary f3db / resistor f3db *)
}

val run : ?bit_time:float -> unit -> result
val report : unit -> Report.t
