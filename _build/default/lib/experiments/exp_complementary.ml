module Sp = Lattice_spice
module Lib = Lattice_synthesis.Library

type style_result = {
  static_power_per_state : float array;
  static_power_mean : float;
  v_low : float;
  v_high : float;
  rise_time : float option;
  fall_time : float option;
  mid_rise : float option;
  functional_pass : bool;
}

type result = {
  resistor : style_result;
  complementary : style_result;
  power_reduction : float;
  rise_speedup : float;
}

let vdd = 1.2

let build_circuit style ~stimulus =
  match style with
  | `Resistor -> Sp.Lattice_circuit.build Lib.xor3_3x3 ~stimulus
  | `Complementary ->
    Sp.Lattice_circuit.build_complementary ~pull_up:Lib.xnor3_3x3 ~pull_down:Lib.xor3_3x3
      ~stimulus ()

(* supply power drawn at DC for one input combination *)
let static_power style m =
  let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
  let lc = build_circuit style ~stimulus in
  let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
  match Sp.Netlist.vsource_index lc.Sp.Lattice_circuit.netlist "VDD" with
  | Some idx ->
    let i_into_source = x.(Sp.Netlist.vsource_row lc.Sp.Lattice_circuit.netlist idx) in
    -.i_into_source *. vdd
  | None -> assert false

let run_style ?(bit_time = 100e-9) ?(h = 0.5e-9) style =
  let static_power_per_state = Array.init 8 (static_power style) in
  let lc =
    build_circuit style ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd ~bit_time)
  in
  let r =
    Sp.Transient.run lc.Sp.Lattice_circuit.netlist ~h ~t_stop:(8.0 *. bit_time)
      ~record:[ lc.Sp.Lattice_circuit.output_node ] ()
  in
  let out = Sp.Transient.signal r lc.Sp.Lattice_circuit.output_node in
  let times = r.Sp.Transient.times in
  let v_low, v_high = Sp.Measure.steady_levels times out ~settle:(bit_time /. 5.0) in
  let functional_pass =
    List.for_all
      (fun k ->
        let t = (float_of_int k +. 0.95) *. bit_time in
        let v = Sp.Measure.value_at times out t in
        let parity = (k land 1) lxor ((k lsr 1) land 1) lxor ((k lsr 2) land 1) in
        Bool.equal (v > vdd /. 2.0) (parity = 0))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  {
    static_power_per_state;
    static_power_mean = Lattice_numerics.Stats.mean static_power_per_state;
    v_low;
    v_high;
    rise_time = Sp.Measure.rise_time times out ~low:v_low ~high:v_high;
    fall_time = Sp.Measure.fall_time times out ~low:v_low ~high:v_high;
    mid_rise = Sp.Measure.edge_between times out ~from_level:(0.2 *. vdd) ~to_level:(0.5 *. vdd);
    functional_pass;
  }

let run ?bit_time ?h () =
  let resistor = run_style ?bit_time ?h `Resistor in
  let complementary = run_style ?bit_time ?h `Complementary in
  let rise_speedup =
    match (resistor.rise_time, complementary.rise_time) with
    | Some a, Some b -> a /. b
    | Some _, None | None, Some _ | None, None -> nan
  in
  {
    resistor;
    complementary;
    power_reduction = resistor.static_power_mean /. complementary.static_power_mean;
    rise_speedup;
  }

let report () =
  let r = run () in
  let opt_ns = function Some t -> Printf.sprintf "%.3g" (t *. 1e9) | None -> "-" in
  let rows =
    [
      Report.row ~id:"ExtVIa" ~metric:"both styles functional" ~paper:"yes"
        ~measured:(if r.resistor.functional_pass && r.complementary.functional_pass then "yes" else "NO")
        ();
      Report.row_f ~id:"ExtVIa" ~metric:"static power, resistor load, uW" ~paper:nan
        ~measured:(r.resistor.static_power_mean *. 1e6) ();
      Report.row_f ~id:"ExtVIa" ~metric:"static power, complementary, uW" ~paper:nan
        ~measured:(r.complementary.static_power_mean *. 1e6)
        ~note:"paper: 'almost zero'" ();
      Report.row_f ~id:"ExtVIa" ~metric:"static power reduction, x" ~paper:nan
        ~measured:r.power_reduction ();
      Report.row ~id:"ExtVIa" ~metric:"rise time resistor -> compl., ns"
        ~paper:"eliminates pull-up dominance"
        ~measured:(Printf.sprintf "%s -> %s" (opt_ns r.resistor.rise_time)
             (opt_ns r.complementary.rise_time))
        ~note:"10-90%: n-type pass tail dominates" ();
      Report.row ~id:"ExtVIa" ~metric:"mid-swing rise (0.2->0.5 VDD), ns" ~paper:"-"
        ~measured:(Printf.sprintf "%s -> %s" (opt_ns r.resistor.mid_rise)
             (opt_ns r.complementary.mid_rise))
        ~note:"active pull-up wins below mid-swing" ();
      Report.row_f ~id:"ExtVIa" ~metric:"V_OH complementary (n-type pass), V" ~paper:nan
        ~measured:r.complementary.v_high
        ~note:"degraded by ~Vth: needs p-type switch" ();
      Report.row_f ~id:"ExtVIa" ~metric:"V_OL complementary, V" ~paper:nan
        ~measured:r.complementary.v_low ();
    ]
  in
  {
    Report.title = "Extension (paper Sec VI-A): complementary lattice structure";
    rows;
    body = "";
  }
