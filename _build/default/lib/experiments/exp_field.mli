(** Experiment F8 — paper Fig 8: current-density vector profiles of the
    three devices under electric field (DSSS, HfO2).

    The paper's claim is qualitative: "the cross shaped gate offers a
    uniform current vector profile across terminals when compared to the
    square shaped device". The measured proxy is the coefficient of
    variation of the per-source current split (and of |J| over the channel
    region). *)

type result = {
  square : Lattice_device.Field2d.result;
  cross : Lattice_device.Field2d.result;
  junctionless : Lattice_device.Field2d.result;
  cross_more_uniform : bool;  (** the paper's ordering holds *)
}

val run : ?n:int -> unit -> result
val report : ?n:int -> unit -> Report.t
