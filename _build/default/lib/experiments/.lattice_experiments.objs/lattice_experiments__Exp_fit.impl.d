lib/experiments/exp_fit.ml: Array Buffer Lattice_device Lattice_fit Printf Report
