lib/experiments/exp_frequency.ml: Lattice_spice Lattice_synthesis Printf Report
