lib/experiments/report.ml: Buffer Float List Printf String
