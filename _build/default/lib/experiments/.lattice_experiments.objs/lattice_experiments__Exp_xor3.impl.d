lib/experiments/exp_xor3.ml: Lattice_boolfn Lattice_core Lattice_synthesis Option Printf Report
