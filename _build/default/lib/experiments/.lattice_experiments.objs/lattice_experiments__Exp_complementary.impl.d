lib/experiments/exp_complementary.ml: Array Bool Lattice_numerics Lattice_spice Lattice_synthesis List Printf Report
