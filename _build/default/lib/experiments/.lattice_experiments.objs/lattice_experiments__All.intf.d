lib/experiments/all.mli: Report
