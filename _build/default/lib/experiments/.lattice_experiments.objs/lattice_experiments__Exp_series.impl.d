lib/experiments/exp_series.ml: Array Buffer Int Lattice_numerics Lattice_spice Printf Report
