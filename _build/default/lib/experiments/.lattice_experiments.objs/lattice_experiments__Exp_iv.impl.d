lib/experiments/exp_iv.ml: Array Buffer Float Lattice_device Lattice_numerics List Printf Report
