lib/experiments/all.ml: Exp_cases Exp_complementary Exp_field Exp_fit Exp_frequency Exp_iv Exp_lattice_function Exp_series Exp_table1 Exp_table2 Exp_transient Exp_xor3 Lattice_device List Report
