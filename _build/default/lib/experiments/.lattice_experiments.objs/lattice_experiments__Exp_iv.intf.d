lib/experiments/exp_iv.mli: Lattice_device Report
