lib/experiments/exp_field.mli: Lattice_device Report
