lib/experiments/exp_series.mli: Report
