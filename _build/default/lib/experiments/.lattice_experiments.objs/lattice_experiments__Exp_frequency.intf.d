lib/experiments/exp_frequency.mli: Report
