lib/experiments/exp_complementary.mli: Report
