lib/experiments/exp_table1.ml: Int Lattice_core List Printf Report Sys
