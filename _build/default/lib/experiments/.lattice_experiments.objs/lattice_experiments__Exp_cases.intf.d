lib/experiments/exp_cases.mli: Lattice_device Report
