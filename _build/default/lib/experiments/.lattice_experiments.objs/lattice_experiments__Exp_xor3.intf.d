lib/experiments/exp_xor3.mli: Report
