lib/experiments/exp_table2.ml: Lattice_device List Printf Report
