lib/experiments/exp_field.ml: Array Lattice_device Printf Report String
