lib/experiments/report.mli:
