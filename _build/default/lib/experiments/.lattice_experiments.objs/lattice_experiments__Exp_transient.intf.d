lib/experiments/exp_transient.mli: Lattice_spice Report
