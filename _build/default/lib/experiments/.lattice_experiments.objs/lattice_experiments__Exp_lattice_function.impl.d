lib/experiments/exp_lattice_function.ml: Lattice_core List Report String
