lib/experiments/exp_fit.mli: Lattice_fit Report
