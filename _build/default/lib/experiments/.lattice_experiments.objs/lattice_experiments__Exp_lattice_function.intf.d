lib/experiments/exp_lattice_function.mli: Report
