lib/experiments/exp_cases.ml: Array Buffer Float Hashtbl Lattice_device List Option Printf Report
