lib/experiments/exp_transient.ml: Bool Lattice_spice Lattice_synthesis List Printf Report
