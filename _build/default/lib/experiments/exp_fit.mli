(** Experiment F10 — paper Fig 10 / Section IV: fitting the level-1 MOSFET
    equations to the square-device (HfO2) I-V data and extracting Kp, Vth
    and lambda. *)

type result = {
  extraction : Lattice_fit.Fit.extraction;
  scenario2 : Lattice_fit.Fit.scenario;  (** the IDS-VDS sweep Fig 10 plots *)
  predicted : float array;  (** fitted model over [scenario2.xs] *)
  vth_electrostatic : float;  (** what the threshold model predicted *)
}

val run : unit -> result
val report : unit -> Report.t
